// The campus scale-harness mode (-bench-presets campus): the two-level
// merge's trajectory at ~1000 radios.
//
// The harness pre-generates a Campus() trace directory once (reused across
// runs via -bench-work-dir: generation dominates the wall time, the
// measurements don't), then emits four rows:
//
//   - "replay": every building replayed concurrently at line rate through
//     scenario.Replay's pacing hook into a rotating capture — the
//     reflector-style ingest check. x_realtime ~= 1.0 proves the capture
//     side sustains line rate; events_per_sec is the sustained record
//     rate. JFrame fields are zero (replay moves records, not jframes).
//   - "flat": the single-process baseline — core.RunFrom over the union
//     of every building's traces (tracefile.OpenDirs), bridged by the
//     campus meta's anchor clock group, full truth-free pass set inline.
//   - "hier_unify": level 1 of the hierarchical path — a pool of
//     per-building unify workers (hmerge.UnifyDir) writing sorted
//     intermediate streams; merge_ms is the whole level's wall time.
//   - "hier_global": level 2 — core.RunHierarchical's k-way merge over
//     the intermediate streams, same pass set inline. This row carries
//     the hierarchical path's heap peak and x_realtime, which
//     -bench-assert-campus-heap / -bench-assert-campus-speed gate
//     against the flat row in CI.
//
// Wall-clock reads are this harness's purpose (line-rate pacing, row
// timings), as in the rest of the bench.
//jiglint:allow wallclock

package main

import (
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/hmerge"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tracefile"
)

// campusBenchArgs collects the campus-mode flag values.
type campusBenchArgs struct {
	buildings   int
	day         time.Duration
	assertHeap  float64
	assertSpeed float64
}

// campusReplaySegmentUS is the replayed capture's rotation period, matching
// the jigd row's window.
const campusReplaySegmentUS = 5_000_000

// benchCampus measures the campus rows over dir (generated there on first
// use, reused afterwards). Returns the rows plus whether every campus gate
// passed.
func benchCampus(dir string, workers int, a campusBenchArgs) ([]benchRow, bool) {
	camp := scenario.Campus()
	if a.buildings > 0 {
		camp.Buildings = a.buildings
	}
	if a.day > 0 {
		camp.Building.Day = sim.Time(a.day.Nanoseconds())
	}

	// Generate once; a kept work dir is reused as long as it matches the
	// requested shape (the trace bytes are deterministic in the config).
	var genRecords int64
	meta, merr := scenario.ReadMeta(dir)
	bds, berr := scenario.ListBuildings(dir)
	switch {
	case merr != nil || berr != nil:
		t0 := time.Now()
		n, err := scenario.RunCampus(camp, dir, workers)
		if err != nil {
			log.Fatalf("campus: generate: %v", err)
		}
		genRecords = n
		if meta, err = scenario.ReadMeta(dir); err != nil {
			log.Fatalf("campus: %v", err)
		}
		if bds, err = scenario.ListBuildings(dir); err != nil {
			log.Fatalf("campus: %v", err)
		}
		log.Printf("campus: generated %d buildings (%d radios), %d records in %v",
			camp.Buildings, camp.NumRadios(), n, time.Since(t0).Round(time.Millisecond))
	case len(bds) != camp.Buildings || meta.DaySec != camp.Building.Day.SecondsF():
		log.Fatalf("campus: work dir %s holds %d buildings over a %.0fs day, want %d over %.0fs — remove it to regenerate",
			dir, len(bds), meta.DaySec, camp.Buildings, camp.Building.Day.SecondsF())
	default:
		log.Printf("campus: reusing %s (%d buildings, %d radios)", dir, len(bds), camp.NumRadios())
	}

	base := benchRow{
		Preset: "campus", Mode: "",
		Pods:    camp.Buildings * camp.Building.Pods,
		Radios:  camp.NumRadios(),
		APs:     camp.Buildings * camp.Building.APs,
		Clients: camp.Buildings * camp.Building.Clients,
		DaySec:  camp.Building.Day.SecondsF(),
	}
	apSet := scenario.APSet(meta.APs)
	isAP := func(m dot80211.MAC) bool { return apSet[m] }
	params := analysis.PassParams{SlotUS: camp.Building.HourDur().US64(), MinPackets: 50, IsAP: isAP}
	ccfg := core.DefaultConfig()
	ccfg.Workers = workers

	// Level 1: the per-building unify worker pool. One stream per building;
	// merge_ms is the whole level's wall time (workers run concurrently, as
	// they would as separate processes on separate machines).
	streamDir := dir + ".streams"
	if err := os.MkdirAll(streamDir, 0o755); err != nil {
		log.Fatalf("campus: %v", err)
	}
	pool := workers
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	if pool > len(bds) {
		pool = len(bds)
	}
	paths := make([]string, len(bds))
	smetas := make([]*hmerge.Meta, len(bds))
	errs := make([]error, len(bds))
	runtime.GC()
	h := startHeapSampler()
	t1 := time.Now()
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(bds) {
					return
				}
				bmeta, err := scenario.ReadMeta(bds[i])
				if err != nil {
					errs[i] = err
					continue
				}
				out := filepath.Join(streamDir, filepath.Base(bds[i])+".jfs")
				m, err := hmerge.UnifyDir(bds[i], out, bmeta.ClockGroups, hmerge.UnifyConfig{Workers: 1})
				if err != nil {
					errs[i] = err
					continue
				}
				paths[i], smetas[i] = out, m
			}
		}()
	}
	wg.Wait()
	unifyWall := time.Since(t1)
	hierUnify := base
	hierUnify.Mode = "hier_unify"
	hierUnify.HeapPeakBytes = h.Stop()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("campus/hier_unify: %s: %v", bds[i], err)
		}
	}
	var events, jframes int64
	for _, m := range smetas {
		events += m.Unify.Events
		jframes += m.JFrames
	}
	records := genRecords
	if records == 0 {
		records = events // every monitor record passes through the unifiers
	}
	hierUnify.JFrames = jframes
	hierUnify.Events = events
	hierUnify.MergeMS = unifyWall.Milliseconds()
	hierUnify.FramesPerSec = float64(jframes) / unifyWall.Seconds()
	hierUnify.EventsPerSec = float64(events) / unifyWall.Seconds()
	hierUnify.XRealtime = base.DaySec / unifyWall.Seconds()
	hierUnify.BytesPerFrame = float64(hierUnify.HeapPeakBytes) / float64(jframes)

	// Level 2: the global k-way merge over the intermediate streams, full
	// pass set inline — the row the campus gates ride on.
	hierPasses, err := analysis.NewPasses("all", params)
	if err != nil {
		log.Fatalf("campus: %v", err)
	}
	hcfg := ccfg
	hcfg.Passes = analysis.CorePasses(hierPasses)
	hierGlobal := base
	hierGlobal.Mode = "hier_global"
	runtime.GC()
	h = startHeapSampler()
	t2 := time.Now()
	hres, err := core.RunHierarchicalPaths(paths, hcfg, nil)
	globalWall := time.Since(t2)
	if err != nil {
		log.Fatalf("campus/hier_global: %v", err)
	}
	tFin := time.Now()
	for _, p := range hierPasses {
		benchSink(p.Finalize())
	}
	hierGlobal.AnalysisMS = time.Since(tFin).Milliseconds()
	hierGlobal.HeapPeakBytes = h.Stop()
	hierGlobal.JFrames = hres.UnifyStats.JFrames
	hierGlobal.Events = hres.UnifyStats.Events
	hierGlobal.MergeMS = globalWall.Milliseconds()
	hierGlobal.FramesPerSec = float64(hres.UnifyStats.JFrames) / globalWall.Seconds()
	hierGlobal.EventsPerSec = float64(hres.UnifyStats.Events) / globalWall.Seconds()
	hierGlobal.XRealtime = base.DaySec / globalWall.Seconds()
	hierGlobal.BytesPerFrame = float64(hierGlobal.HeapPeakBytes) / float64(hres.UnifyStats.JFrames)

	// The flat baseline: one process bootstrapping and unifying all ~1000
	// radios at once over the union trace set, bridged by the campus meta's
	// cross-building anchor clock group.
	fts, err := tracefile.OpenDirs(bds...)
	if err != nil {
		log.Fatalf("campus/flat: %v", err)
	}
	flatPasses, err := analysis.NewPasses("all", params)
	if err != nil {
		log.Fatalf("campus: %v", err)
	}
	fcfg := ccfg
	fcfg.Passes = analysis.CorePasses(flatPasses)
	flat := base
	flat.Mode = "flat"
	runtime.GC()
	h = startHeapSampler()
	t3 := time.Now()
	fres, err := core.RunFrom(fts, meta.ClockGroups, fcfg, nil)
	flatWall := time.Since(t3)
	if err != nil {
		log.Fatalf("campus/flat: %v", err)
	}
	tFin = time.Now()
	for _, p := range flatPasses {
		benchSink(p.Finalize())
	}
	flat.AnalysisMS = time.Since(tFin).Milliseconds()
	flat.HeapPeakBytes = h.Stop()
	flat.JFrames = fres.UnifyStats.JFrames
	flat.Events = fres.UnifyStats.Events
	flat.MergeMS = flatWall.Milliseconds()
	flat.FramesPerSec = float64(fres.UnifyStats.JFrames) / flatWall.Seconds()
	flat.EventsPerSec = float64(fres.UnifyStats.Events) / flatWall.Seconds()
	flat.XRealtime = base.DaySec / flatWall.Seconds()
	flat.BytesPerFrame = float64(flat.HeapPeakBytes) / float64(fres.UnifyStats.JFrames)
	benchSinkDump = nil
	if err := os.RemoveAll(streamDir); err != nil {
		log.Fatalf("campus: %v", err)
	}

	// The line-rate replay: every building re-emitted concurrently into a
	// rotating capture, paced so each record lands at its recorded offset
	// from the trace's start. Takes one compressed day of wall time by
	// construction; x_realtime ~= 1.0 means the pacing never fell behind.
	capDir := dir + ".capture"
	replay := base
	replay.Mode = "replay"
	rerrs := make([]error, len(bds))
	runtime.GC()
	h = startHeapSampler()
	t4 := time.Now()
	var rwg sync.WaitGroup
	for i, bdir := range bds {
		rwg.Add(1)
		go func(i int, bdir string) {
			defer rwg.Done()
			start := time.Now()
			rerrs[i] = scenario.Replay(scenario.ReplayConfig{
				SrcDir:    bdir,
				DstDir:    filepath.Join(capDir, filepath.Base(bdir)),
				SegmentUS: campusReplaySegmentUS,
				Pace: func(relUS int64) {
					if d := time.Duration(relUS)*time.Microsecond - time.Since(start); d > 0 {
						time.Sleep(d)
					}
				},
				MarkDone: true,
			})
		}(i, bdir)
	}
	rwg.Wait()
	replayWall := time.Since(t4)
	replay.HeapPeakBytes = h.Stop()
	for i, err := range rerrs {
		if err != nil {
			log.Fatalf("campus/replay: %s: %v", bds[i], err)
		}
	}
	if err := os.RemoveAll(capDir); err != nil {
		log.Fatalf("campus: %v", err)
	}
	replay.Events = records
	replay.MergeMS = replayWall.Milliseconds()
	replay.EventsPerSec = float64(records) / replayWall.Seconds()
	// Replay moves monitor records, not jframes: report the sustained
	// record rate and leave the jframe fields absent (omitted from the
	// JSON) rather than emitting misleading zeros.
	replay.RecordsPerSec = replay.EventsPerSec
	replay.XRealtime = base.DaySec / replayWall.Seconds()

	rows := []benchRow{replay, flat, hierUnify, hierGlobal}
	for i := range rows {
		rows[i].MonitorRecords = records
	}

	log.Printf("campus: replay sustained %.2fx realtime (%.0f records/s across %d buildings)",
		replay.XRealtime, replay.RecordsPerSec, len(bds))
	log.Printf("campus: flat %.1f MB heap, %.0f frames/s (%.1fx realtime)",
		float64(flat.HeapPeakBytes)/1e6, flat.FramesPerSec, flat.XRealtime)
	log.Printf("campus: hier %.1f MB heap, %.0f frames/s (%.1fx realtime) after %.1fs level-1 unify (%.1f MB)",
		float64(hierGlobal.HeapPeakBytes)/1e6, hierGlobal.FramesPerSec, hierGlobal.XRealtime,
		unifyWall.Seconds(), float64(hierUnify.HeapPeakBytes)/1e6)

	ok := true
	if a.assertHeap > 0 && float64(hierGlobal.HeapPeakBytes) >= a.assertHeap*float64(flat.HeapPeakBytes) {
		log.Printf("FAIL campus: hierarchical peak heap %d >= %.0f%% of flat %d",
			hierGlobal.HeapPeakBytes, 100*a.assertHeap, flat.HeapPeakBytes)
		ok = false
	}
	if a.assertSpeed > 0 && hierGlobal.XRealtime < a.assertSpeed*flat.XRealtime {
		log.Printf("FAIL campus: hierarchical x_realtime %.2f < %.2f x flat %.2f",
			hierGlobal.XRealtime, a.assertSpeed, flat.XRealtime)
		ok = false
	}
	return rows, ok
}
