// The -bench-json mode: the pipeline's memory/throughput trajectory.
//
// For each requested preset the harness generates one trace directory
// (spilled to disk as the radios produce it, like jigsim), then merges it
// twice — once streaming from the file-backed sources (the out-of-core
// path) and once from an in-memory buffer set (the compatibility path) —
// sampling the Go heap across each merge. The two JSON rows per preset
// make unbounded-buffering regressions visible: the streaming row's
// heap_peak_bytes must stay a small fraction of the in-memory row's, which
// -bench-assert-streaming enforces in CI under GOMEMLIMIT.
//
// Two more rows per preset profile the analysis layer the same way: the
// full truth-free report set run as inline streaming passes over the
// streaming merge ("analysis_inline") versus retained via
// KeepJFrames/KeepExchanges and analyzed post hoc from the slices
// ("analysis_posthoc"). -bench-assert-inline gates their heap ratio: the
// inline row must stay a small fraction of the slice-based row's, pinning
// the win that lets building-scale analysis run at streaming heap.
//
// A fifth row per preset ("jigd_windowed") profiles the daemon's read
// path: the trace directory replayed into a rotating capture, tailed
// through a TailSet, with the full pass set behind a serve.Monitor that
// finalizes and evicts per window on the serial pipeline — sustained
// frames/sec and peak heap for an always-on jigd over the same capture.
// -bench-assert-jigd gates that row's heap against the slice-based
// analysis run's, pinning the daemon's bounded-memory claim.
//
// The "campus" preset takes a different path entirely — the two-level
// scale harness in campus.go (rows replay/flat/hier_unify/hier_global,
// gated by -bench-assert-campus-*).
//
// Measuring wall time is this harness's purpose: the rows above are
// real-time throughput numbers, not simulation outputs.
//jiglint:allow wallclock

package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/tracefile"
)

// benchRow is one merge measurement in BENCH_pipeline.json.
type benchRow struct {
	Preset  string  `json:"preset"`
	Mode    string  `json:"mode"` // streaming, inmemory, analysis_inline, analysis_posthoc, jigd_windowed; campus: replay, flat, hier_unify, hier_global
	Pods    int     `json:"pods"`
	Radios  int     `json:"radios"`
	APs     int     `json:"aps"`
	Clients int     `json:"clients"`
	DaySec  float64 `json:"day_sec"`

	// Workers marks a workers-sweep row (-bench-workers): the pipeline
	// worker count the row was measured at. Absent on the standard rows,
	// which run at the -workers flag's value.
	Workers int `json:"workers,omitempty"`

	MonitorRecords int64 `json:"monitor_records"`
	// JFrames (and the frames_per_sec/bytes_per_frame rates below) are
	// omitted on rows that move records rather than jframes — the campus
	// "replay" row reports records_per_sec instead, and the assert gates
	// skip absent fields.
	JFrames int64 `json:"jframes,omitempty"`
	Events  int64 `json:"events"`
	MergeMS int64 `json:"merge_ms"`
	// AnalysisMS is the time spent in analysis after the merge returns:
	// the whole slice-based report set on "analysis_posthoc" rows, only
	// the pass Finalize calls on "analysis_inline" rows (their analysis
	// work rides inside the merge). MergeMS never includes it.
	AnalysisMS   int64   `json:"analysis_ms,omitempty"`
	FramesPerSec float64 `json:"frames_per_sec,omitempty"`
	EventsPerSec float64 `json:"events_per_sec"`
	// RecordsPerSec is the sustained monitor-record rate on rows whose unit
	// of work is the record (campus "replay").
	RecordsPerSec float64 `json:"records_per_sec,omitempty"`
	XRealtime     float64 `json:"x_realtime"`
	// HeapPeakBytes is the sampled peak Go heap during the merge;
	// BytesPerFrame normalizes it by unified jframes. An in-memory merge's
	// bytes-per-frame grows with trace length (the whole compressed set is
	// resident); a streaming merge's stays flat — the out-of-core
	// invariant this file's trajectory pins.
	HeapPeakBytes uint64  `json:"heap_peak_bytes"`
	BytesPerFrame float64 `json:"bytes_per_frame,omitempty"`
	// AllocsPerFrame is the merge's heap allocations (Mallocs delta across
	// the measured RunFrom, analysis excluded) per unified jframe — the
	// pooled frame lifecycle's regression metric, gated by
	// -bench-assert-allocs. Absent on campus rows.
	AllocsPerFrame float64 `json:"allocs_per_frame,omitempty"`
	// WindowsClosed counts the analysis windows the monitor finalized on a
	// "jigd_windowed" row (absent elsewhere).
	WindowsClosed int64 `json:"windows_closed,omitempty"`
}

// heapSampler polls runtime.ReadMemStats in the background recording peak
// HeapAlloc. ReadMemStats briefly stops the world, so the period is kept
// coarse relative to the merges it profiles.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64
}

func startHeapSampler() *heapSampler {
	h := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			old := h.peak.Load()
			if ms.HeapAlloc <= old || h.peak.CompareAndSwap(old, ms.HeapAlloc) {
				return
			}
		}
	}
	sample()
	go func() {
		defer close(h.done)
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				sample()
				return
			case <-t.C:
				sample()
			}
		}
	}()
	return h
}

// Stop ends sampling and returns the peak heap seen.
func (h *heapSampler) Stop() uint64 {
	close(h.stop)
	<-h.done
	return h.peak.Load()
}

// benchArgs collects the -bench-json flag values.
type benchArgs struct {
	path, presets                             string
	day                                       time.Duration
	workers                                   int
	workDir                                   string
	workersSweep                              []int
	assertStreaming, assertInline, assertJigd float64
	assertFPS, assertAllocs                   float64
	campus                                    campusBenchArgs
}

// runBenchJSON measures every preset and writes the JSON rows to a.path.
func runBenchJSON(a benchArgs) {
	// Aggressive GC during profiling: with the default GOGC the heap
	// balloons to ~2x the live set before a collection, and that slack —
	// not the pipeline's working set — would dominate small runs' peaks.
	debug.SetGCPercent(10)
	workers := a.workers
	workDir := a.workDir
	keep := workDir != ""
	if workDir == "" {
		d, err := os.MkdirTemp("", "jigbench-")
		if err != nil {
			log.Fatal(err)
		}
		workDir = d
		defer os.RemoveAll(d)
	}

	var rows []benchRow
	failed := false
	for _, name := range strings.Split(a.presets, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		dir := filepath.Join(workDir, name)
		if name == "campus" {
			// The campus scale harness (campus.go): its own generation,
			// row set and gates.
			crows, ok := benchCampus(dir, workers, a.campus)
			rows = append(rows, crows...)
			if !ok {
				failed = true
			}
			if !keep {
				if err := os.RemoveAll(dir); err != nil {
					log.Fatal(err)
				}
			}
			continue
		}
		cfg, err := benchPreset(name)
		if err != nil {
			log.Fatal(err)
		}
		if a.day > 0 {
			cfg.Day = sim.Time(a.day.Nanoseconds())
		}
		stream, inmem, inline, posthoc, jigd, sweep := benchOnePreset(name, cfg, dir, workers, a.workersSweep)
		rows = append(rows, stream, inmem, inline, posthoc, jigd)
		rows = append(rows, sweep...)
		if !keep {
			if err := os.RemoveAll(dir); err != nil {
				log.Fatal(err)
			}
		}
		log.Printf("%s: streaming heap %.1f MB vs in-memory %.1f MB (%.1f%%), %.0f frames/s, %.1f allocs/frame",
			name, float64(stream.HeapPeakBytes)/1e6, float64(inmem.HeapPeakBytes)/1e6,
			100*float64(stream.HeapPeakBytes)/float64(inmem.HeapPeakBytes), stream.FramesPerSec,
			stream.AllocsPerFrame)
		log.Printf("%s: inline-pass analysis heap %.1f MB vs slice-based %.1f MB (%.1f%%)",
			name, float64(inline.HeapPeakBytes)/1e6, float64(posthoc.HeapPeakBytes)/1e6,
			100*float64(inline.HeapPeakBytes)/float64(posthoc.HeapPeakBytes))
		log.Printf("%s: jigd windowed heap %.1f MB over %d windows (%.1f%% of slice-based), %.0f frames/s sustained",
			name, float64(jigd.HeapPeakBytes)/1e6, jigd.WindowsClosed,
			100*float64(jigd.HeapPeakBytes)/float64(posthoc.HeapPeakBytes), jigd.FramesPerSec)
		if a.assertStreaming > 0 && float64(stream.HeapPeakBytes) >= a.assertStreaming*float64(inmem.HeapPeakBytes) {
			log.Printf("FAIL %s: streaming peak heap %d >= %.0f%% of in-memory %d",
				name, stream.HeapPeakBytes, 100*a.assertStreaming, inmem.HeapPeakBytes)
			failed = true
		}
		if a.assertInline > 0 && float64(inline.HeapPeakBytes) >= a.assertInline*float64(posthoc.HeapPeakBytes) {
			log.Printf("FAIL %s: inline-pass analysis peak heap %d >= %.0f%% of slice-based %d",
				name, inline.HeapPeakBytes, 100*a.assertInline, posthoc.HeapPeakBytes)
			failed = true
		}
		if a.assertJigd > 0 && float64(jigd.HeapPeakBytes) >= a.assertJigd*float64(posthoc.HeapPeakBytes) {
			log.Printf("FAIL %s: jigd windowed peak heap %d >= %.0f%% of slice-based %d",
				name, jigd.HeapPeakBytes, 100*a.assertJigd, posthoc.HeapPeakBytes)
			failed = true
		}
		// Rate gates skip rows whose metric is absent (zero means the row
		// doesn't measure that unit of work, not a measured zero).
		if a.assertFPS > 0 && stream.FramesPerSec > 0 && stream.FramesPerSec < a.assertFPS {
			log.Printf("FAIL %s: streaming merge %.0f frames/s < required %.0f",
				name, stream.FramesPerSec, a.assertFPS)
			failed = true
		}
		if a.assertAllocs > 0 && stream.AllocsPerFrame > a.assertAllocs {
			log.Printf("FAIL %s: streaming merge %.2f allocs/frame > ceiling %.2f",
				name, stream.AllocsPerFrame, a.assertAllocs)
			failed = true
		}
	}

	f, err := os.Create(a.path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	for i := range rows {
		if err := enc.Encode(&rows[i]); err != nil {
			_ = f.Close() // best-effort cleanup; the encode error is already fatal
			log.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d rows to %s", len(rows), a.path)
	if failed {
		os.Exit(1)
	}
}

// benchOnePreset generates one trace directory, merges it both ways,
// profiles the truth-free analysis report set both ways (inline passes vs
// retained slices), then profiles jigd's windowed read path over a
// replayed rotating capture of the same traces.
func benchOnePreset(name string, cfg scenario.Config, dir string, workers int, workersSweep []int) (stream, inmem, inline, posthoc, jigd benchRow, sweep []benchRow) {
	cfg.SpillDir = dir
	t0 := time.Now()
	out, err := scenario.Run(cfg)
	if err != nil {
		log.Fatalf("%s: simulate: %v", name, err)
	}
	log.Printf("%s: simulated %d radios, %d records in %v",
		name, len(out.Indexes), out.MonitorRecords, time.Since(t0).Round(time.Millisecond))
	// A kept work dir should be a complete trace directory (usable by
	// jigsaw/jiganalyze), so persist the sidecar too.
	if err := scenario.WriteMeta(dir, scenario.MetaFromOutput(out)); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	base := benchRow{
		Preset: name, Pods: cfg.Pods, Radios: len(out.Indexes),
		APs: cfg.APs, Clients: cfg.Clients, DaySec: cfg.Day.SecondsF(),
		MonitorRecords: out.MonitorRecords,
	}
	groups := out.ClockGroups
	// The analysis rows need only the AP roster and the slot width — keep
	// those, then drop the simulation output (ground truth, wired tap)
	// before profiling: the rows measure the pipeline, not the simulator.
	apSet := scenario.APSet(out.APs)
	isAP := func(m dot80211.MAC) bool { return apSet[m] }
	hourUS := cfg.HourDur().US64()
	out = nil

	ccfg := core.DefaultConfig()
	ccfg.Workers = workers

	measure := func(mode string, ts *tracefile.TraceSet, cfg core.Config, analyze func(*core.Result) time.Duration) benchRow {
		row := base
		row.Mode = mode
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		h := startHeapSampler()
		t1 := time.Now()
		res, err := core.RunFrom(ts, groups, cfg, nil)
		dur := time.Since(t1)
		if err != nil {
			log.Fatalf("%s/%s: merge: %v", name, mode, err)
		}
		// Mallocs delta before the analysis callback: the allocs-per-frame
		// metric charges the merge alone (plus the sampler's negligible own
		// allocation), not the finalized reports.
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if res.UnifyStats.JFrames > 0 {
			row.AllocsPerFrame = float64(after.Mallocs-before.Mallocs) / float64(res.UnifyStats.JFrames)
		}
		if analyze != nil {
			row.AnalysisMS = analyze(res).Milliseconds()
		}
		row.HeapPeakBytes = h.Stop()
		row.JFrames = res.UnifyStats.JFrames
		row.Events = res.UnifyStats.Events
		row.MergeMS = dur.Milliseconds()
		row.FramesPerSec = float64(res.UnifyStats.JFrames) / dur.Seconds()
		row.EventsPerSec = float64(res.UnifyStats.Events) / dur.Seconds()
		row.XRealtime = row.DaySec / dur.Seconds()
		if res.UnifyStats.JFrames > 0 {
			row.BytesPerFrame = float64(row.HeapPeakBytes) / float64(res.UnifyStats.JFrames)
		}
		return row
	}

	ts, err := tracefile.OpenDir(dir)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	stream = measure("streaming", ts, ccfg, nil)

	// The workers sweep axis (-bench-workers): the streaming merge at each
	// requested worker count, plus a serial-pipeline row with only the
	// sharded coalescer widened — so the trajectory records multi-core
	// headroom (and the coalescer's share of it) when run on a bigger box.
	for _, w := range workersSweep {
		wcfg := ccfg
		wcfg.Workers = w
		row := measure("streaming", ts, wcfg, nil)
		row.Workers = w
		sweep = append(sweep, row)

		scfg := ccfg
		scfg.Workers = 1
		scfg.Unify.CoalesceWorkers = w
		row = measure("coalesce", ts, scfg, nil)
		row.Workers = w
		sweep = append(sweep, row)
		log.Printf("%s: workers=%d streaming %.0f frames/s, coalesce-only %.0f frames/s",
			name, w, sweep[len(sweep)-2].FramesPerSec, row.FramesPerSec)
	}

	// The in-memory path: the whole compressed trace set resident, as
	// core.Run's buffer map requires.
	bufs := make(map[int32][]byte, ts.Len())
	for _, r := range ts.Radios() {
		b, err := os.ReadFile(tracefile.TracePath(dir, r))
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		bufs[r] = b
	}
	inmem = measure("inmemory", tracefile.NewBufferSet(bufs), ccfg, nil)
	bufs = nil

	// Analysis trajectory over the streaming sources: the truth-free
	// report set (what jiganalyze runs on a trace directory) as inline
	// passes, then the same reports from retained slices.
	params := analysis.PassParams{SlotUS: hourUS, MinPackets: 50, IsAP: isAP}
	inlineCfg := ccfg
	passes, err := analysis.NewPasses("all", params)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	inlineCfg.Passes = analysis.CorePasses(passes)
	inline = measure("analysis_inline", ts, inlineCfg, func(*core.Result) time.Duration {
		t := time.Now()
		for _, p := range passes {
			benchSink(p.Finalize())
		}
		return time.Since(t)
	})

	posthocCfg := ccfg
	posthocCfg.KeepJFrames = true
	posthocCfg.KeepExchanges = true
	posthoc = measure("analysis_posthoc", ts, posthocCfg, func(res *core.Result) time.Duration {
		t := time.Now()
		benchSink(analysis.Summarize(res, res.JFrames))
		benchSink(analysis.TimeSeries(res.JFrames, hourUS))
		benchSink(analysis.Interference(res.JFrames, res.Exchanges, 50, isAP))
		benchSink(analysis.Protection(res.JFrames, hourUS, hourUS))
		benchSink(analysis.Diagnose(res.JFrames, res.Exchanges))
		benchSink(analysis.TCPLoss(analysis.TransportFlowLosses(res.Transport, 5)))
		benchSink(analysis.DetectHandoffs(res.Exchanges, isAP))
		return time.Since(t)
	})
	benchSinkDump = nil

	// The jigd trajectory: replay the directory into a rotating capture
	// (the daemon's input shape), tail it, and run the same pass set
	// behind a windowed monitor on the serial pipeline — per-window
	// finalize and eviction, exactly the daemon's bounded-state path. The
	// replay itself is setup, not part of the measured merge.
	const windowUS = 5_000_000
	capDir := dir + ".capture"
	if err := scenario.Replay(scenario.ReplayConfig{
		SrcDir: dir, DstDir: capDir, SegmentUS: windowUS, MarkDone: true,
	}); err != nil {
		log.Fatalf("%s: replay: %v", name, err)
	}
	tail := tracefile.NewTailSet(capDir)
	if _, err := tail.Scan(); err != nil {
		log.Fatalf("%s: scan capture: %v", name, err)
	}
	tail.Finish() // capture is complete: readers must drain, not block
	wPasses, err := analysis.NewPasses("all", params)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	mon, err := serve.NewMonitor(serve.MonitorConfig{WindowUS: windowUS, Passes: wPasses})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	jigdCfg := ccfg
	jigdCfg.Workers = 1 // the daemon's serial live path
	jigdCfg.SnapshotEveryUS = windowUS
	jigdCfg.Passes = []core.Pass{mon}
	jigd = measure("jigd_windowed", tail.TraceSet(), jigdCfg, func(*core.Result) time.Duration {
		t := time.Now()
		mon.Flush()
		return time.Since(t)
	})
	jigd.WindowsClosed = mon.Summary().WindowsClosed
	if err := os.RemoveAll(capDir); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return stream, inmem, inline, posthoc, jigd, sweep
}

// benchSinkDump keeps finalized reports reachable until both measurements
// complete, so the comparison charges each mode its report footprint.
var benchSinkDump []any

func benchSink(v any) { benchSinkDump = append(benchSinkDump, v) }

// benchPreset resolves a preset name for -bench-presets and -sweep-scale
// (the shared scenario.Preset registry, minus the empty-name default).
func benchPreset(name string) (scenario.Config, error) {
	if name == "" {
		return scenario.Config{}, fmt.Errorf("empty preset name")
	}
	return scenario.Preset(name)
}
