// Command jigbench regenerates every table and figure of the paper's
// evaluation end-to-end at a chosen scale and prints paper-vs-measured for
// each, in the order they appear in the paper. This is the harness behind
// EXPERIMENTS.md.
//
// With -sweep it becomes a batch harness instead: it fans a list of
// scenario configurations (the cartesian product of deployments, 802.11b
// fractions and seeds) across a worker pool, runs the full
// simulate-merge-analyze pipeline on each, and emits one JSON row per
// scenario — the config-sweep workload for studying how the system behaves
// across operating points.
//
// Usage:
//
//	jigbench                 # default reduced scale (fast)
//	jigbench -paperscale     # 39 pods / 156 radios / 39 APs
//	jigbench -fig 9          # a single figure
//	jigbench -workers 8      # pipeline parallelism (0 = GOMAXPROCS)
//
//	jigbench -sweep -sweep-pods 6,9,12 -sweep-bfrac 0.1,0.3 \
//	         -sweep-seeds 1,2,3 -sweep-day 60s -workers 4
//
//	jigbench -bench-json BENCH_pipeline.json -bench-presets campus \
//	         -bench-work-dir /data/campus    # the two-level scale harness
//
// -sweep-cc adds a congestion-control axis to the grid: a pipe-separated
// list of per-flow CC mixes ("fixed|reno=1,cubic=1,bbr=1"), each mix a
// weighted spec as accepted by cc.ParseMixSpec. Non-fixed mixes run over
// the bounded bottleneck queue so the controllers contend for real buffer,
// and each JSON row reports the mix, per-algorithm goodput and the CC
// fingerprinter's accuracy against ground truth.
//
// Progress logs and benchmark rows report real elapsed time, so
// wall-clock reads here are deliberate.
//jiglint:allow wallclock

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/unify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jigbench: ")
	var (
		paperscale = flag.Bool("paperscale", false, "full 39-pod deployment")
		fig        = flag.String("fig", "all", "which figure/table: 2,4,6,7,8,9,10,11,table1,all")
		seed       = flag.Int64("seed", 3, "seed")
		workers    = flag.Int("workers", 0, "pipeline workers in figure mode / pool size in sweep mode (0 = GOMAXPROCS)")

		sweep        = flag.Bool("sweep", false, "batch mode: sweep scenario configs, one JSON row each")
		sweepPods    = flag.String("sweep-pods", "6,9,12", "comma-separated pod counts")
		sweepAPs     = flag.String("sweep-aps", "", "AP counts parallel to -sweep-pods (default: same as pods)")
		sweepClients = flag.String("sweep-clients", "", "client counts parallel to -sweep-pods (default: 2x pods)")
		sweepBFrac   = flag.String("sweep-bfrac", "0.3", "comma-separated 802.11b client fractions")
		sweepSeeds   = flag.String("sweep-seeds", "1,2,3", "comma-separated seeds")
		sweepDay     = flag.Duration("sweep-day", 60*time.Second, "compressed day per scenario")
		sweepCC      = flag.String("sweep-cc", "fixed", "pipe-separated CC mixes, e.g. 'fixed|reno=1,cubic=1,bbr=1'")
		sweepQueue   = flag.Int("sweep-queue-pkts", 32, "bottleneck FIFO depth for non-fixed CC mixes")
		sweepBtl     = flag.Float64("sweep-bottleneck-mbps", 30, "bottleneck drain rate for non-fixed CC mixes")
		sweepMobile  = flag.String("sweep-mobility", "0", "comma-separated mobile-client counts (adds a mobility axis; rows gain handoff metrics)")
		sweepHyst    = flag.Float64("sweep-roam-hysteresis-db", 0, "roam hysteresis for mobile scenarios (0 = default)")
		sweepScale   = flag.String("sweep-scale", "", "comma-separated scale presets (default,paper,building) replacing the -sweep-pods deployment axis; rows gain a scale field")
		sweepSpill   = flag.String("sweep-spill-root", "", "stream each sweep scenario's traces through a subdirectory of this root (out-of-core sweeps; removed after measuring)")
		mergeWorkers = flag.Int("merge-workers", 1, "pipeline workers inside each sweep scenario (1 keeps the pool unoversubscribed)")

		benchJSON    = flag.String("bench-json", "", "write pipeline bench rows (frames/sec, heap_peak_bytes) to this file, e.g. BENCH_pipeline.json")
		benchPresets = flag.String("bench-presets", "default,building", "comma-separated presets for -bench-json (default, paper, building)")
		benchDay     = flag.Duration("bench-day", 0, "override each bench preset's compressed day (0 = preset value)")
		benchWork    = flag.String("bench-work-dir", "", "trace work directory for -bench-json (default: a temp dir, removed afterwards)")
		benchWorkers = flag.String("bench-workers", "", "comma-separated worker counts adding a workers sweep axis to -bench-json, e.g. 1,2,4,8 (streaming + coalesce-only rows per count; empty disables)")
		benchAssert  = flag.Float64("bench-assert-streaming", 0, "fail unless streaming peak heap < this fraction of the in-memory merge's (e.g. 0.25); 0 disables")
		benchInline  = flag.Float64("bench-assert-inline", 0, "fail unless inline-pass analysis peak heap < this fraction of the slice-based (KeepJFrames/KeepExchanges) analysis run's (e.g. 0.30); 0 disables")
		benchJigd    = flag.Float64("bench-assert-jigd", 0, "fail unless the jigd windowed-monitor peak heap < this fraction of the slice-based analysis run's (e.g. 0.30); 0 disables")

		benchFPS    = flag.Float64("bench-assert-fps", 0, "fail unless each preset's streaming merge sustains >= this many frames/sec; 0 disables")
		benchAllocs = flag.Float64("bench-assert-allocs", 0, "fail unless each preset's streaming merge stays <= this many heap allocs per jframe; 0 disables")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file before exiting (skipped when a bench gate fails)")

		benchCampusBuildings = flag.Int("bench-campus-buildings", 0, "override the Campus() building count for the campus bench preset (0 = preset's 10)")
		benchCampusDay       = flag.Duration("bench-campus-day", 0, "override the Campus() per-building compressed day (0 = preset's 6m)")
		benchCampusHeap      = flag.Float64("bench-assert-campus-heap", 0, "fail unless the hierarchical campus merge's peak heap < this fraction of the flat merge's; 0 disables")
		benchCampusSpeed     = flag.Float64("bench-assert-campus-speed", 0, "fail unless the hierarchical campus merge's x_realtime >= this multiple of the flat merge's; 0 disables")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer writeHeapProfile(*memprofile)
	}

	if *benchJSON != "" {
		runBenchJSON(benchArgs{
			path: *benchJSON, presets: *benchPresets, day: *benchDay,
			workers: *workers, workDir: *benchWork,
			workersSweep:    parseInts(*benchWorkers),
			assertStreaming: *benchAssert, assertInline: *benchInline, assertJigd: *benchJigd,
			assertFPS: *benchFPS, assertAllocs: *benchAllocs,
			campus: campusBenchArgs{
				buildings: *benchCampusBuildings, day: *benchCampusDay,
				assertHeap: *benchCampusHeap, assertSpeed: *benchCampusSpeed,
			},
		})
		return
	}
	if *sweep {
		runSweep(sweepArgs{
			pods: *sweepPods, aps: *sweepAPs, clients: *sweepClients,
			bfrac: *sweepBFrac, seeds: *sweepSeeds, day: *sweepDay,
			ccMixes: *sweepCC, queuePkts: *sweepQueue, btlMbps: *sweepBtl,
			mobility: *sweepMobile, roamHystDB: *sweepHyst,
			scales: *sweepScale, spillRoot: *sweepSpill,
			poolWorkers: *workers, mergeWorkers: *mergeWorkers,
		})
		return
	}
	runFigures(*paperscale, *fig, *seed, *workers)
}

// writeHeapProfile dumps an allocation snapshot for -memprofile. A GC
// first makes the live set exact (the heap profile is otherwise up to one
// cycle stale).
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// sweepArgs collects the batch-mode flag values.
type sweepArgs struct {
	pods, aps, clients string
	bfrac, seeds       string
	ccMixes            string
	queuePkts          int
	btlMbps            float64
	mobility           string
	roamHystDB         float64
	scales             string
	spillRoot          string
	day                time.Duration
	poolWorkers        int
	mergeWorkers       int
}

// sweepRow is one scenario's JSON record: its operating point plus the
// headline metrics of every pipeline stage.
type sweepRow struct {
	Pods      int     `json:"pods"`
	Radios    int     `json:"radios"`
	APs       int     `json:"aps"`
	Clients   int     `json:"clients"`
	BFraction float64 `json:"b_fraction"`
	Seed      int64   `json:"seed"`
	DaySec    float64 `json:"day_sec"`
	CCMix     string  `json:"cc_mix"`
	// Scale names the -sweep-scale preset the row ran at ("" on
	// pods-axis rows).
	Scale string `json:"scale,omitempty"`
	// MobileClients is the scenario's mobility operating point; the
	// handoff fields below are zero/absent semantics like the CC fields:
	// on a mobility row (MobileClients > 0) a zero means "measured,
	// nothing happened".
	MobileClients int `json:"mobile_clients"`

	MonitorRecords  int64   `json:"monitor_records"`
	Transmissions   int     `json:"transmissions"`
	JFrames         int64   `json:"jframes"`
	Exchanges       int64   `json:"exchanges"`
	Flows           int64   `json:"flows"`
	CompleteFlows   int64   `json:"complete_flows"`
	DispersionP90US int64   `json:"dispersion_p90_us"`
	DispersionP99US int64   `json:"dispersion_p99_us"`
	CoverageOverall float64 `json:"coverage_overall"`
	WirelessShare   float64 `json:"tcp_wireless_loss_share"`
	// PerCCGoodputBps is ground-truth goodput by congestion-control
	// algorithm; CCAccuracy/CCClassified score the transport
	// fingerprinter against that truth. None are omitempty: on a mixed-CC
	// row (CCMix != "fixed") zero/empty values mean "measured, nothing
	// there", which must stay distinguishable from a fixed row's
	// "not measured" (null map, absent accuracy semantics).
	PerCCGoodputBps map[string]float64 `json:"per_cc_goodput_bps"`
	CCAccuracy      float64            `json:"cc_fingerprint_accuracy"`
	CCClassified    int                `json:"cc_fingerprint_classified"`
	// CCAccuracyWired scores the same fingerprinter over the wired
	// distribution tap — the pre-MAC vantage where window dynamics
	// survive serialization (see analysis.WiredCCFingerprints).
	CCAccuracyWired   float64 `json:"cc_fingerprint_accuracy_wired"`
	CCClassifiedWired int     `json:"cc_fingerprint_classified_wired"`
	// Handoff metrics (mobility rows): ground-truth counts, the
	// air-reconstructed detector's counts and recall, and mean
	// decision-to-reassociation latency.
	HandoffsTruth        int     `json:"handoffs_truth"`
	HandoffsDetected     int     `json:"handoffs_detected"`
	HandoffRecall        float64 `json:"handoff_recall"`
	HandoffMeanLatencyMS float64 `json:"handoff_mean_latency_ms"`
	MergeMS              int64   `json:"merge_ms"`
	XRealtime            float64 `json:"x_realtime"`
	// HeapPeakBytes/BytesPerFrame profile the row's merge the same way
	// the -bench-json rows do. The sampler reads process-wide heap, so
	// with a pool (-workers > 1) concurrent scenarios inflate each
	// other's peaks — treat the values as upper bounds there.
	HeapPeakBytes uint64  `json:"heap_peak_bytes"`
	BytesPerFrame float64 `json:"bytes_per_frame"`
	Err           string  `json:"err,omitempty"`
}

// runSweep fans the config grid across scenario.RunBatch and prints one
// JSON row per scenario, in grid order, to stdout.
func runSweep(a sweepArgs) {
	// The deployment axis: either pod counts or named scale presets.
	type deployment struct {
		scale                  string
		cfg                    scenario.Config
		pods, apCount, clients int
	}
	var deployments []deployment
	if strings.TrimSpace(a.scales) != "" {
		for _, name := range strings.Split(a.scales, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			cfg, err := benchPreset(name)
			if err != nil {
				log.Fatalf("sweep: %v", err)
			}
			deployments = append(deployments, deployment{
				scale: name, cfg: cfg,
				pods: cfg.Pods, apCount: cfg.APs, clients: cfg.Clients,
			})
		}
		if len(deployments) == 0 {
			log.Fatal("sweep: empty -sweep-scale")
		}
	} else {
		pods := parseInts(a.pods)
		if len(pods) == 0 {
			log.Fatal("sweep: empty -sweep-pods")
		}
		aps := parseIntsDefault(a.aps, pods, func(p int) int { return p })
		clients := parseIntsDefault(a.clients, pods, func(p int) int { return 2 * p })
		for i, p := range pods {
			deployments = append(deployments, deployment{
				cfg: scenario.Default(), pods: p, apCount: aps[i], clients: clients[i],
			})
		}
	}
	bfracs := parseFloats(a.bfrac)
	seeds := parseInts64(a.seeds)
	if len(bfracs) == 0 || len(seeds) == 0 {
		log.Fatal("sweep: empty -sweep-bfrac or -sweep-seeds")
	}
	mixes := parseMixes(a.ccMixes)
	mobiles := parseInts(a.mobility)
	if len(mobiles) == 0 {
		mobiles = []int{0}
	}
	if a.spillRoot != "" {
		if err := os.MkdirAll(a.spillRoot, 0o755); err != nil {
			log.Fatalf("sweep: %v", err)
		}
	}

	var cfgs []scenario.Config
	var scales []string
	for _, d := range deployments {
		for _, bf := range bfracs {
			for _, sd := range seeds {
				for _, mix := range mixes {
					for _, mob := range mobiles {
						cfg := d.cfg
						cfg.Pods, cfg.APs, cfg.Clients = d.pods, d.apCount, d.clients
						cfg.BFraction = bf
						cfg.Seed = sd
						cfg.Day = sim.Time(a.day.Nanoseconds())
						// The CC axis overrides a preset's mix only when it
						// asks for a real mix; "fixed" keeps the preset's.
						if len(mix) > 0 {
							cfg.CCMix = mix
							cfg.WiredQueuePkts = a.queuePkts
							cfg.WiredBottleneckMbps = a.btlMbps
						} else if d.scale == "" {
							cfg.CCMix = nil
						}
						cfg.MobileClients = mob
						cfg.RoamHysteresisDB = a.roamHystDB
						if a.spillRoot != "" {
							cfg.SpillDir = filepath.Join(a.spillRoot, fmt.Sprintf("s%04d", len(cfgs)))
						}
						cfgs = append(cfgs, cfg)
						scales = append(scales, d.scale)
					}
				}
			}
		}
	}
	log.Printf("sweep: %d scenarios (%d deployments x %d b-fractions x %d seeds x %d cc-mixes x %d mobility), pool=%d",
		len(cfgs), len(deployments), len(bfracs), len(seeds), len(mixes), len(mobiles), a.poolWorkers)

	rows := make([]sweepRow, len(cfgs))
	t0 := time.Now()
	results := scenario.RunBatch(cfgs, a.poolWorkers, func(idx int, out *scenario.Output) error {
		rows[idx] = measureScenario(out, a.mergeWorkers)
		if out.TraceDir != "" {
			// Spilled sweep traces are scratch space; reclaim as we go.
			return os.RemoveAll(out.TraceDir)
		}
		return nil
	})
	for i, r := range results {
		rows[i].Pods = cfgs[i].Pods
		rows[i].APs = cfgs[i].APs
		rows[i].Clients = cfgs[i].Clients
		rows[i].BFraction = cfgs[i].BFraction
		rows[i].Seed = cfgs[i].Seed
		rows[i].DaySec = cfgs[i].Day.SecondsF()
		rows[i].CCMix = cc.FormatMix(cfgs[i].CCMix)
		rows[i].MobileClients = cfgs[i].MobileClients
		rows[i].Scale = scales[i]
		if r.Err != nil {
			rows[i].Err = r.Err.Error()
		}
	}

	enc := json.NewEncoder(os.Stdout)
	for i := range rows {
		if err := enc.Encode(&rows[i]); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("sweep: done in %v", time.Since(t0).Round(time.Millisecond))
}

// measureScenario runs the pipeline over one scenario's traces and distills
// the row metrics. Runs inside the batch pool. Traces are consumed through
// the scenario's TraceSet, so spilled (out-of-core) scenarios stream from
// disk and in-memory ones from their buffers, identically; the coverage
// and handoff analyses run as inline streaming passes, so nothing retains
// the exchange stream.
func measureScenario(out *scenario.Output, mergeWorkers int) sweepRow {
	var row sweepRow
	row.Radios = len(out.Indexes) // the true monitor count (0 on scenario error)
	row.MonitorRecords = out.MonitorRecords
	row.Transmissions = len(out.Truth)

	ccfg := core.DefaultConfig()
	ccfg.Workers = mergeWorkers
	covPass := analysis.NewCoveragePass(out)
	ccfg.Passes = []core.Pass{covPass}
	var roamPass *analysis.RoamingPass
	if out.Cfg.MobileClients > 0 {
		apSet := scenario.APSet(out.APs)
		roamPass = analysis.NewRoamingPass(func(m dot80211.MAC) bool { return apSet[m] })
		ccfg.Passes = append(ccfg.Passes, roamPass)
	}
	h := startHeapSampler()
	t1 := time.Now()
	res, err := core.RunFrom(out.TraceSet(), out.ClockGroups, ccfg, nil)
	mergeDur := time.Since(t1)
	row.HeapPeakBytes = h.Stop()
	if err != nil {
		row.Err = err.Error()
		return row
	}

	row.JFrames = res.UnifyStats.JFrames
	row.Exchanges = res.LLCStats.Exchanges
	row.Flows = res.Transport.Stats.Flows
	row.CompleteFlows = res.Transport.Stats.CompleteFlows
	row.DispersionP90US = res.Dispersion.Percentile(0.90)
	row.DispersionP99US = res.Dispersion.Percentile(0.99)
	row.CoverageOverall = covPass.Finalize().(*analysis.CoverageReport).Overall
	rep := analysis.TCPLoss(analysis.TransportFlowLosses(res.Transport, 5))
	row.WirelessShare = rep.WirelessShare
	if len(out.Cfg.CCMix) > 0 {
		row.PerCCGoodputBps = make(map[string]float64)
		for _, r := range analysis.CCFairness(out.FlowCCs, out.Cfg.Day.SecondsF()) {
			row.PerCCGoodputBps[r.Algo] = r.GoodputBps
		}
		conf := analysis.CCConfusionReport(out.FlowCCs, res.Transport.FingerprintCC())
		row.CCAccuracy = conf.Accuracy
		row.CCClassified = conf.Classified
		wired := analysis.CCConfusionReport(out.FlowCCs, analysis.WiredCCFingerprints(out))
		row.CCAccuracyWired = wired.Accuracy
		row.CCClassifiedWired = wired.Classified
	}
	if roamPass != nil {
		rep := roamPass.Finalize().(*analysis.RoamingReport)
		sc := analysis.ScoreHandoffs(out.Handoffs, rep)
		row.HandoffsTruth = sc.Truth
		row.HandoffsDetected = sc.Events
		row.HandoffRecall = sc.Recall
		row.HandoffMeanLatencyMS = rep.MeanLatencyUS / 1e3
	}
	row.MergeMS = mergeDur.Milliseconds()
	row.XRealtime = out.Cfg.Day.SecondsF() / mergeDur.Seconds()
	if row.JFrames > 0 {
		row.BytesPerFrame = float64(row.HeapPeakBytes) / float64(row.JFrames)
	}
	return row
}

// parseMixes splits the pipe-separated -sweep-cc grid axis. An empty entry
// or a pure-fixed spec ("fixed", "fixed=1") denotes the compatibility mode
// (nil mix: no per-flow rng draw, no bottleneck queue) — the same
// semantics cmd/jigsim gives -cc.
func parseMixes(s string) []map[string]float64 {
	var out []map[string]float64
	for _, part := range strings.Split(s, "|") {
		mix, err := cc.ParseMixSpec(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("sweep: %v", err)
		}
		m, err := cc.NewMix(mix)
		if err != nil {
			log.Fatalf("sweep: %v", err)
		}
		if m == nil {
			mix = nil // effectively pure-fixed: the compatibility baseline
		}
		out = append(out, mix)
	}
	if len(out) == 0 {
		out = append(out, nil)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			log.Fatalf("sweep: bad int %q", p)
		}
		out = append(out, v)
	}
	return out
}

// parseIntsDefault parses a list parallel to base, deriving missing entries
// with fn.
func parseIntsDefault(s string, base []int, fn func(int) int) []int {
	if strings.TrimSpace(s) == "" {
		out := make([]int, len(base))
		for i, b := range base {
			out[i] = fn(b)
		}
		return out
	}
	out := parseInts(s)
	if len(out) != len(base) {
		log.Fatalf("sweep: list %q must parallel -sweep-pods (%d entries)", s, len(base))
	}
	return out
}

func parseInts64(s string) []int64 {
	var out []int64
	for _, v := range parseInts(s) {
		out = append(out, int64(v))
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			log.Fatalf("sweep: bad float %q", p)
		}
		out = append(out, v)
	}
	return out
}

// runFigures is the original paper-vs-measured mode.
func runFigures(paperscale bool, fig string, seed int64, workers int) {
	cfg := scenario.Default()
	cfg.Seed = seed
	cfg.BFraction = 0.3
	if paperscale {
		cfg = scenario.PaperScale()
		cfg.Seed = seed
	} else {
		cfg.Pods, cfg.APs, cfg.Clients = 12, 12, 24
		cfg.Day = 120 * sim.Second
	}

	fmt.Printf("scenario: %d pods (%d radios), %d APs, %d clients, day=%v\n",
		cfg.Pods, cfg.Pods*4, cfg.APs, cfg.Clients, time.Duration(cfg.Day))
	t0 := time.Now()
	out, err := scenario.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated in %v: %d monitor records, %d transmissions\n",
		time.Since(t0).Round(time.Millisecond), out.MonitorRecords, len(out.Truth))

	want := func(f string) bool { return fig == "all" || fig == f }
	line := func(id, what, paper, measured string) {
		fmt.Printf("%-8s %-42s paper: %-22s measured: %s\n", id, what, paper, measured)
	}

	// Every analysis runs as a streaming pass fed inline by the merge —
	// nothing retains the jframe or exchange streams, even at -paperscale.
	apSet := scenario.APSet(out.APs)
	isAP := func(m dot80211.MAC) bool { return apSet[m] }
	hourUS := out.Cfg.HourDur().US64()
	ccfg := core.DefaultConfig()
	ccfg.Workers = workers
	var (
		sum  *analysis.SummaryPass
		cov  *analysis.CoveragePass
		ts   *analysis.TimeSeriesPass
		intf *analysis.InterferencePass
		prot *analysis.ProtectionPass
		loss *analysis.TCPLossPass
		viz  *analysis.VizPass
	)
	add := func(p core.Pass) { ccfg.Passes = append(ccfg.Passes, p) }
	if want("table1") {
		sum = analysis.NewSummaryPass()
		add(sum)
	}
	if want("6") {
		cov = analysis.NewCoveragePass(out)
		add(cov)
	}
	if want("8") {
		ts = analysis.NewTimeSeriesPass(hourUS)
		add(ts)
	}
	if want("9") {
		intf = analysis.NewInterferencePass(100, isAP)
		add(intf)
	}
	if want("10") {
		prot = analysis.NewProtectionPass(hourUS, hourUS)
		add(prot)
	}
	if want("11") {
		loss = analysis.NewTCPLossPass(5)
		add(loss)
	}
	if want("2") {
		// A 4 ms window in the middle of the compressed day (the slice era
		// centered on the median retained jframe; without retention, the
		// day's midpoint is the streaming equivalent).
		viz = analysis.NewVizPassRelative(int64(out.Cfg.Day.SecondsF()*5e5), 4000, 96)
		add(viz)
	}
	var firstUS, lastUS, nJF int64
	sink := &core.Sink{OnJFrame: func(j *unify.JFrame) {
		if nJF == 0 {
			firstUS = j.UnivUS
		}
		lastUS = j.UnivUS
		nJF++
	}}
	t1 := time.Now()
	res, err := core.RunFrom(out.TraceSet(), out.ClockGroups, ccfg, sink)
	if err != nil {
		log.Fatal(err)
	}
	mergeTime := time.Since(t1)

	fmt.Println()
	if want("table1") {
		s := sum.Finalize().(*analysis.TraceSummary)
		line("Table 1", "error events share", "47%", fmt.Sprintf("%.0f%%", s.ErrorEventPct))
		line("Table 1", "observations per transmission", "2.97", fmt.Sprintf("%.2f", s.AvgInstances))
		line("Table 1", "clients / APs seen", "1026 / 39 (full bldg)",
			fmt.Sprintf("%d / %d (scaled)", s.UniqueClients, s.UniqueAPs))
	}
	if want("4") {
		line("Fig 4", "dispersion p90", "<10 us",
			fmt.Sprintf("%d us", res.Dispersion.Percentile(0.90)))
		line("Fig 4", "dispersion p99", "<20 us",
			fmt.Sprintf("%d us", res.Dispersion.Percentile(0.99)))
	}
	if want("6") {
		covRep := cov.Finalize().(*analysis.CoverageReport)
		oracle, _ := analysis.OracleCoverage(out)
		line("Fig 6", "wired packets seen wirelessly", "97%", fmt.Sprintf("%.0f%%", 100*covRep.Overall))
		line("Fig 6", "AP stations at >=95% coverage", "94%", fmt.Sprintf("%.0f%%", 100*covRep.APsOver95))
		line("Fig 6", "client stations at >=95%", "78%", fmt.Sprintf("%.0f%%", 100*covRep.ClientsOver95))
		line("§6", "oracle link-event coverage", "95%", fmt.Sprintf("%.0f%%", 100*oracle))
	}
	if want("7") {
		full := cfg.Pods
		counts := []int{full, full * 3 / 4, full / 2}
		rows, err := analysis.PodSweep(out, counts)
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range rows {
			paper := []string{"92% cli / 94% AP", "71% cli / ~94% AP", "68% cli / ~94% AP"}[min(i, 2)]
			line("Fig 7", fmt.Sprintf("coverage with %d pods", r.Pods), paper,
				fmt.Sprintf("%.0f%% cli / %.0f%% AP (synced=%v)",
					100*r.ClientCoverage, 100*r.APCoverage, r.Synced))
		}
	}
	if want("8") {
		slots := ts.Finalize().([]analysis.ActivitySlot)
		peak, night := 0, 0
		for i, s := range slots {
			if i >= 10 && i <= 16 && s.ActiveClients > peak {
				peak = s.ActiveClients
			}
			if i >= 1 && i <= 5 && s.ActiveClients > night {
				night = s.ActiveClients
			}
		}
		line("Fig 8", "diurnal activity (peak vs night clients)", "strong diurnal",
			fmt.Sprintf("%d vs %d", peak, night))
		line("Fig 8", "broadcast airtime share", "~10%",
			fmt.Sprintf("%.0f%%", 100*analysis.BroadcastAirtimeShare(slots)))
	}
	if want("9") {
		rep := intf.Finalize().(*analysis.InterferenceReport)
		line("Fig 9", "pairs with interference", "88%",
			fmt.Sprintf("%.0f%% (%d pairs)", 100*rep.FractionWithInterference, len(rep.Pairs)))
		line("Fig 9", "median interference loss X", "0.025",
			fmt.Sprintf("%.4f", rep.XPercentile(0.5)))
		line("Fig 9", "p90 interference loss X", ">=0.1 for 10%",
			fmt.Sprintf("%.4f", rep.XPercentile(0.9)))
		line("Fig 9", "avg background loss", "0.12",
			fmt.Sprintf("%.3f", rep.AvgBackgroundLoss))
		line("Fig 9", "AP share of interfered senders", "56%",
			fmt.Sprintf("%.0f%%", 100*rep.SenderSplitAP))
	}
	if want("10") {
		rep := prot.Finalize().(*analysis.ProtectionReport)
		over, protected := 0, 0
		for _, s := range rep.Slots {
			over += s.Overprotective
			protected += s.ProtectedAPs
		}
		line("Fig 10", "overprotective AP slot-share", "common with 1h timeout",
			fmt.Sprintf("%d of %d protected slots", over, protected))
		line("Fig 10", "peak affected g clients", "25-50%",
			fmt.Sprintf("%.0f%%", 100*rep.PeakAffectedShare))
		line("fn 7", "protection overhead factor", "1.98",
			fmt.Sprintf("%.2f", rep.PotentialSpeedup))
	}
	if want("11") {
		rep := loss.Finalize().(*analysis.TCPLossReport)
		line("Fig 11", "wireless share of TCP loss", "dominant",
			fmt.Sprintf("%.0f%% (%d losses over %d flows)", 100*rep.WirelessShare, rep.TotalLosses, rep.Flows))
	}
	if want("2") && nJF > 1000 {
		fmt.Println("\nFig 2: synchronized trace visualization")
		fmt.Print(viz.Finalize().(string))
	}
	if want("§4") || fig == "all" {
		span := lastUS - firstUS
		line("§4", "merge faster than real time", "required",
			fmt.Sprintf("%.1fx (%v for %s of trace)", float64(span)/float64(mergeTime.Microseconds()),
				mergeTime.Round(time.Millisecond), time.Duration(span*1000).Round(time.Second)))
	}
	inf := analysis.Inference(res.LLCStats)
	line("§5", "attempts needing inference", "0.58%", fmt.Sprintf("%.2f%%", 100*inf.AttemptRate()))
	line("§5", "exchanges needing inference", "0.14%", fmt.Sprintf("%.2f%%", 100*inf.ExchangeRate()))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
