// Command jigsaw merges per-radio jigdump traces into a single synchronized
// trace: bootstrap synchronization, frame unification and link/transport
// reconstruction (the paper's full pipeline), printing the merge statistics
// and optionally a Figure-2-style visualization of a time window.
//
// Usage:
//
//	jigsaw -in traces/ [-viz 1.5s -vizdur 5ms]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/unify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jigsaw: ")
	var (
		in     = flag.String("in", "traces", "directory of radio*.jig traces + meta.json")
		viz    = flag.Duration("viz", -1, "visualize the merged trace at this offset (e.g. 1.5s)")
		vizdur = flag.Duration("vizdur", 5*time.Millisecond, "visualization window length")
		width  = flag.Int("width", 100, "visualization width in columns")
	)
	flag.Parse()

	traces := map[int32][]byte{}
	paths, err := filepath.Glob(filepath.Join(*in, "radio*.jig"))
	if err != nil || len(paths) == 0 {
		log.Fatalf("no traces found in %s", *in)
	}
	for _, p := range paths {
		var radio int32
		base := filepath.Base(p)
		if _, err := fmt.Sscanf(base, "radio%d.jig", &radio); err != nil {
			continue
		}
		b, err := os.ReadFile(p)
		if err != nil {
			log.Fatal(err)
		}
		traces[radio] = b
	}

	var meta struct {
		ClockGroups [][]int32
		Clients     []scenario.ClientInfo
		APs         []scenario.APInfo
	}
	if mb, err := os.ReadFile(filepath.Join(*in, "meta.json")); err == nil {
		_ = json.Unmarshal(mb, &meta)
	}

	cfg := core.DefaultConfig()
	cfg.KeepJFrames = *viz >= 0
	var firstUS, lastUS int64
	var nJF int64
	sink := &core.Sink{OnJFrame: func(j *unify.JFrame) {
		if nJF == 0 {
			firstUS = j.UnivUS
		}
		lastUS = j.UnivUS
		nJF++
	}}
	start := time.Now()
	res, err := core.Run(traces, meta.ClockGroups, cfg, sink)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	st := res.UnifyStats
	fmt.Printf("radios merged:      %d (root r%d, %d reference frames)\n",
		len(res.Bootstrap.OffsetUS), res.Bootstrap.Root, res.Bootstrap.RefFrames)
	if !res.Bootstrap.Synced() {
		fmt.Printf("UNSYNCED radios:    %v\n", res.Bootstrap.Unsynced)
	}
	fmt.Printf("events consumed:    %d (%.1f%% phy/CRC errors)\n", st.Events,
		100*float64(st.PhyErrors+st.CRCErrors)/float64(max64(st.Events, 1)))
	fmt.Printf("jframes:            %d (%.2f events per jframe)\n", st.JFrames,
		float64(st.Unified)/float64(max64(st.JFrames, 1)))
	fmt.Printf("resyncs applied:    %d\n", st.Resyncs)
	fmt.Printf("dispersion:         p50=%dus p90=%dus p99=%dus\n",
		res.Dispersion.Percentile(0.5), res.Dispersion.Percentile(0.9), res.Dispersion.Percentile(0.99))
	fmt.Printf("frame exchanges:    %d (%d attempts, %.2f%% inferred)\n",
		res.LLCStats.Exchanges, res.LLCStats.Attempts,
		100*float64(res.LLCStats.InferredAttempts)/float64(max64(res.LLCStats.Attempts, 1)))
	fmt.Printf("tcp flows:          %d (%d complete handshakes)\n",
		res.Transport.Stats.Flows, res.Transport.Stats.CompleteFlows)
	fmt.Printf("oracle resolutions: %d, monitor omissions: %d\n",
		res.Transport.Stats.ResolvedByOracle, res.Transport.Stats.MonitorOmissions)
	speedup := float64(lastUS-firstUS) / float64(elapsed.Microseconds()+1)
	fmt.Printf("merge wall time:    %v (%.1fx faster than real time over %d events)\n",
		elapsed.Round(time.Millisecond), speedup, st.Events)

	if *viz >= 0 && len(res.JFrames) > 0 {
		from := res.JFrames[0].UnivUS + viz.Microseconds()
		s := analysis.Visualize(res.JFrames, from, from+vizdur.Microseconds(), *width)
		fmt.Println(strings.TrimRight(s, "\n"))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
