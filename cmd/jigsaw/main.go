// Command jigsaw merges per-radio jigdump traces into a single synchronized
// trace: bootstrap synchronization, frame unification and link/transport
// reconstruction (the paper's full pipeline), printing the merge statistics
// and optionally a Figure-2-style visualization of a time window.
//
// Traces are streamed from the directory (file-backed sources, one
// decompressed block per radio in memory), so a trace set far larger than
// RAM merges in bounded memory.
//
// Usage:
//
//	jigsaw traces/ [-viz 1.5s -vizdur 5ms]
//	jigsaw -in traces/        # equivalent flag spelling
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/tracefile"
	"repro/internal/unify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jigsaw: ")
	var (
		in      = flag.String("in", "traces", "directory of radio traces + meta.json")
		viz     = flag.Duration("viz", -1, "visualize the merged trace at this offset (e.g. 1.5s)")
		vizdur  = flag.Duration("vizdur", 5*time.Millisecond, "visualization window length")
		width   = flag.Int("width", 100, "visualization width in columns")
		workers = flag.Int("workers", 0, "pipeline workers (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()
	dir := *in
	if flag.NArg() == 1 {
		dir = flag.Arg(0)
	} else if flag.NArg() > 1 {
		log.Fatalf("expected at most one trace directory argument, got %q", flag.Args())
	}

	traces, err := tracefile.OpenDir(dir)
	if err != nil {
		log.Fatal(err)
	}

	meta, err := scenario.ReadMeta(dir)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Tolerable: merging still works, but radios on disjoint channels
		// cannot be bridged without the monitor clock groups.
		log.Printf("warning: no %s in %s; merging without clock-group bridging", scenario.MetaFileName, dir)
	case err != nil:
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Workers = *workers
	// The visualization is a streaming pass over a bounded window, so even
	// a -viz run retains nothing of the merged trace.
	var vizPass *analysis.VizPass
	if *viz >= 0 {
		vizPass = analysis.NewVizPassRelative(viz.Microseconds(), vizdur.Microseconds(), *width)
		cfg.Passes = []core.Pass{vizPass}
	}
	var firstUS, lastUS int64
	var nJF int64
	sink := &core.Sink{OnJFrame: func(j *unify.JFrame) {
		if nJF == 0 {
			firstUS = j.UnivUS
		}
		lastUS = j.UnivUS
		nJF++
	}}
	start := time.Now() //jiglint:allow wallclock (merge progress timing, not simulation)
	res, err := core.RunFrom(traces, meta.ClockGroups, cfg, sink)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start) //jiglint:allow wallclock

	st := res.UnifyStats
	fmt.Printf("radios merged:      %d (root r%d, %d reference frames)\n",
		len(res.Bootstrap.OffsetUS), res.Bootstrap.Root, res.Bootstrap.RefFrames)
	if !res.Bootstrap.Synced() {
		fmt.Printf("UNSYNCED radios:    %v\n", res.Bootstrap.Unsynced)
	}
	fmt.Printf("events consumed:    %d (%.1f%% phy/CRC errors)\n", st.Events,
		100*float64(st.PhyErrors+st.CRCErrors)/float64(max64(st.Events, 1)))
	fmt.Printf("jframes:            %d (%.2f events per jframe)\n", st.JFrames,
		float64(st.Unified)/float64(max64(st.JFrames, 1)))
	fmt.Printf("resyncs applied:    %d\n", st.Resyncs)
	fmt.Printf("dispersion:         p50=%dus p90=%dus p99=%dus\n",
		res.Dispersion.Percentile(0.5), res.Dispersion.Percentile(0.9), res.Dispersion.Percentile(0.99))
	fmt.Printf("frame exchanges:    %d (%d attempts, %.2f%% inferred)\n",
		res.LLCStats.Exchanges, res.LLCStats.Attempts,
		100*float64(res.LLCStats.InferredAttempts)/float64(max64(res.LLCStats.Attempts, 1)))
	fmt.Printf("tcp flows:          %d (%d complete handshakes)\n",
		res.Transport.Stats.Flows, res.Transport.Stats.CompleteFlows)
	fmt.Printf("oracle resolutions: %d, monitor omissions: %d\n",
		res.Transport.Stats.ResolvedByOracle, res.Transport.Stats.MonitorOmissions)
	speedup := float64(lastUS-firstUS) / float64(elapsed.Microseconds()+1)
	fmt.Printf("merge wall time:    %v (%.1fx faster than real time over %d events)\n",
		elapsed.Round(time.Millisecond), speedup, st.Events)

	if vizPass != nil && nJF > 0 {
		fmt.Println(strings.TrimRight(vizPass.Finalize().(string), "\n"))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
