// Command jigunify is the per-building unify worker of the hierarchical
// (campus-scale) pipeline: it bootstraps and unifies one building's trace
// directory into a sorted intermediate jframe stream plus a metadata
// sidecar — the level-1 half of the two-level merge that core's
// RunHierarchical (or jiganalyze pointed at a campus directory) completes.
//
// Unification is deterministic, so running one jigunify process per
// building on separate machines produces byte-identical files to a single
// process running a goroutine pool over the same directories; the outputs
// compose either way.
//
// Usage:
//
//	jigunify -in traces/building-00 -out streams/building-00.jfs
//
// Clock groups come from the building directory's meta.json.
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/hmerge"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jigunify: ")
	var (
		in      = flag.String("in", "", "building trace directory (radio-<id>.jig + meta.json)")
		out     = flag.String("out", "", "output intermediate stream (sidecar written next to it)")
		workers = flag.Int("workers", 0, "bootstrap pre-scan parallelism (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	meta, err := scenario.ReadMeta(*in)
	if err != nil {
		log.Fatalf("read %s meta: %v (a building trace directory needs its meta.json for clock groups)", *in, err)
	}
	m, err := hmerge.UnifyDir(*in, *out, meta.ClockGroups, hmerge.UnifyConfig{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s: %d radios -> %d jframes, span %.1fs, %d resyncs",
		m.Building, len(m.Radios), m.JFrames,
		float64(m.LastUnivUS-m.FirstUnivUS)/1e6, m.Unify.Resyncs)
}
