// Command jiglint runs the jiglint analyzer suite (internal/lint) — the
// mechanized form of Jigsaw's determinism and streaming-memory
// invariants — over Go packages, in the spirit of a
// golang.org/x/tools/go/analysis multichecker.
//
// Usage:
//
//	jiglint [-checkers name,name] [packages]
//	jiglint -list
//
// With no packages, ./... is analyzed. The exit code is 0 when no
// findings survive //jiglint:allow suppression, 1 when findings are
// reported, and 2 on usage or load errors — so CI can gate on it
// directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("jiglint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	list := fs.Bool("list", false, "describe the available checkers and exit")
	checkers := fs.String("checkers", "", "comma-separated subset of checkers to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jiglint [-checkers name,name] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := lint.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checkers != "" {
		byName := make(map[string]*lint.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		var sel []*lint.Analyzer
		for _, name := range strings.Split(*checkers, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "jiglint: unknown checker %q (run jiglint -list)\n", name)
				return 2
			}
			sel = append(sel, a)
		}
		suite = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "jiglint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jiglint: %v\n", err)
		return 2
	}
	findings, err := lint.RunAnalyzers(pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jiglint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "jiglint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
