// Command jigsim runs the building-scale 802.11b/g substrate simulation and
// writes per-radio jigdump traces (plus their metadata indexes), the wired
// distribution-network trace, and a ground-truth summary to a directory.
// Traces stream to disk as the monitor radios produce them (the scenario's
// SpillDir machinery), so peak memory is independent of capture length —
// the building-scale preset generates trace sets far larger than RAM.
//
// Usage:
//
//	jigsim -o traces/ -pods 39 -aps 39 -clients 64 -day 240s [-seed 1]
//	jigsim -o traces/ -preset building    # out-of-core §5-scale deployment
//
// Congestion control: -cc assigns per-flow controllers, either one
// algorithm ("-cc bbr") or a weighted mix ("-cc reno=0.5,cubic=0.3,bbr=0.2");
// the default (empty) keeps the fixed-window compatibility mode. With a mix,
// -queue-pkts / -bottleneck-mbps bound the wired bottleneck FIFO so the
// controllers have real queue dynamics to fight over.
//
// Mobility: -mobility N makes the first N clients walk waypoint paths with
// the RSSI-threshold roaming state machine enabled (-mobile-speed-mps,
// -roam-hysteresis-db tune it); the run log then reports handoff counts,
// mean handoff latency and the per-CC disruption table.
//
// Live replay: -replay re-emits an existing trace directory into a
// growing capture directory of rotating sealed segments — the input shape
// jigd tails:
//
//	jigsim -replay traces/ -o capture/ -pace 10 -segment 2s
//
// -pace R plays trace time at R× wall-clock speed (0 = as fast as
// possible); -segment sets the rotation period in trace time. The
// capture-done marker is written at the end so tailing daemons finish.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cc"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tracefile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jigsim: ")
	var (
		out     = flag.String("out", "traces", "output directory")
		outS    = flag.String("o", "", "output directory (shorthand for -out)")
		preset  = flag.String("preset", "", "scenario preset: default, paper, mixedcc, roaming, building (flags below override its fields)")
		pods    = flag.Int("pods", 0, "sensor pods (4 radios each); paper scale: 39 (0 = preset value)")
		aps     = flag.Int("aps", 0, "production APs; paper scale: 39 (0 = preset value)")
		clients = flag.Int("clients", 0, "wireless clients (0 = preset value)")
		day     = flag.Duration("day", 0, "compressed day duration (0 = preset value)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		bfrac   = flag.Float64("bfrac", 0.2, "fraction of 802.11b clients")
		ccSpec  = flag.String("cc", "", "per-flow congestion control: name or weighted mix, e.g. reno=0.5,cubic=0.3,bbr=0.2 (empty = preset value)")
		qPkts   = flag.Int("queue-pkts", 0, "wired bottleneck FIFO depth in packets (0 = preset value)")
		btlMbps = flag.Float64("bottleneck-mbps", 0, "wired bottleneck drain rate in Mbps (0 = preset value)")

		mobility  = flag.Int("mobility", 0, "number of mobile clients walking waypoint paths (0 = preset value)")
		moveSpeed = flag.Float64("mobile-speed-mps", 0, "mobile clients' walking speed in m/s (0 = 1.2)")
		roamHyst  = flag.Float64("roam-hysteresis-db", 0, "dB a candidate AP must beat the serving AP by before a mobile client roams (0 = 6)")

		campus        = flag.Int("campus", 0, "generate a campus of this many buildings into -o (building-NN subdirectories; scenario.Campus template, -pods/-aps/-clients/-day override per building)")
		campusWorkers = flag.Int("campus-workers", 0, "campus: concurrent building simulations (0 = GOMAXPROCS)")

		replaySrc = flag.String("replay", "", "replay this trace directory into -o as a live capture (instead of simulating)")
		pace      = flag.Float64("pace", 0, "replay: trace-time speedup over wall clock (0 = as fast as possible)")
		segment   = flag.Duration("segment", 2*time.Second, "replay: segment rotation period in trace time")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q (did you mean -o %s?)", flag.Args(), flag.Arg(0))
	}
	dir := *out
	if *outS != "" {
		dir = *outS
	}
	if dir == "" {
		log.Fatal("empty output directory")
	}
	if *replaySrc != "" {
		if err := replay(*replaySrc, dir, *pace, *segment); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *campus > 0 {
		camp := scenario.Campus()
		camp.Buildings = *campus
		camp.Seed = *seed
		if *pods != 0 {
			camp.Building.Pods = *pods
		}
		if *aps != 0 {
			camp.Building.APs = *aps
		}
		if *clients != 0 {
			camp.Building.Clients = *clients
		}
		if *day != 0 {
			camp.Building.Day = sim.Time(day.Nanoseconds())
		}
		start := time.Now() //jiglint:allow wallclock (generation progress timing)
		records, err := scenario.RunCampus(camp, dir, *campusWorkers)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("campus: %d buildings (%d radios) simulated %v each in %v, %d monitor records, traces in %s",
			camp.Buildings, camp.NumRadios(), time.Duration(camp.Building.Day),
			time.Since(start).Round(time.Millisecond), records, dir) //jiglint:allow wallclock
		return
	}

	cfg, err := scenario.Preset(*preset)
	if err != nil {
		log.Fatal(err)
	}
	if *pods != 0 {
		cfg.Pods = *pods
	}
	if *aps != 0 {
		cfg.APs = *aps
	}
	if *clients != 0 {
		cfg.Clients = *clients
	}
	if *pods < 0 || *aps < 0 || *clients < 0 {
		log.Fatalf("negative deployment size (pods=%d aps=%d clients=%d)", *pods, *aps, *clients)
	}
	if *day < 0 {
		log.Fatalf("negative -day %v", *day)
	}
	if *day != 0 {
		cfg.Day = sim.Time(day.Nanoseconds())
	}
	cfg.Seed = *seed
	cfg.BFraction = *bfrac
	if *bfrac < 0 || *bfrac > 1 {
		log.Fatalf("-bfrac %v outside [0,1]", *bfrac)
	}
	if *ccSpec != "" {
		mix, err := cc.ParseMixSpec(*ccSpec)
		if err != nil {
			log.Fatal(err)
		}
		m, err := cc.NewMix(mix)
		if err != nil {
			log.Fatal(err)
		}
		if m == nil {
			// "-cc fixed" means the compatibility path itself: a nil mix
			// draws nothing from the workload rng, keeping traces
			// bit-identical.
			mix = nil
		}
		cfg.CCMix = mix
	}
	if *qPkts != 0 {
		cfg.WiredQueuePkts = *qPkts
	}
	if *btlMbps != 0 {
		cfg.WiredBottleneckMbps = *btlMbps
	}
	if *mobility != 0 {
		cfg.MobileClients = *mobility
	}
	if *moveSpeed != 0 {
		cfg.MoveSpeedMPS = *moveSpeed
	}
	if *roamHyst != 0 {
		cfg.RoamHysteresisDB = *roamHyst
	}
	// Stream traces straight into the output directory: generation never
	// holds a whole trace in memory. Clear any earlier run's radio files
	// first — a rerun at a smaller scale (or with the pre-directory
	// radioNNN.jig naming) must not leave stale traces for jigsaw to
	// merge alongside the fresh ones.
	if err := clearStaleTraces(dir); err != nil {
		log.Fatal(err)
	}
	cfg.SpillDir = dir

	start := time.Now() //jiglint:allow wallclock (generation progress timing)
	res, err := scenario.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for radio, idx := range res.Indexes {
		f, err := os.Create(tracefile.IndexPath(dir, radio))
		if err != nil {
			log.Fatal(err)
		}
		if err := tracefile.WriteIndex(f, idx); err != nil {
			_ = f.Close() // best-effort cleanup; the write error is already fatal
			log.Fatalf("writing index for radio %d: %v", radio, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("closing index for radio %d: %v", radio, err)
		}
	}
	if err := scenario.WriteMeta(dir, scenario.MetaFromOutput(res)); err != nil {
		log.Fatal(err)
	}

	log.Printf("simulated %v of network time in %v", time.Duration(cfg.Day), time.Since(start).Round(time.Millisecond)) //jiglint:allow wallclock
	log.Printf("%d radios, %d monitor records, %d transmissions, %d wired packets",
		len(res.Indexes), res.MonitorRecords, len(res.Truth), len(res.Wired))
	log.Printf("flows: %d started, %d completed", res.FlowsStarted, res.FlowsCompleted)
	if len(cfg.CCMix) > 0 {
		log.Printf("cc mix %s, per-algorithm shares:", cc.FormatMix(cfg.CCMix))
		for _, line := range splitLines(analysis.FairnessTable(
			analysis.CCFairness(res.FlowCCs, cfg.Day.SecondsF()))) {
			log.Print(line)
		}
	}
	if cfg.MobileClients > 0 {
		completed := 0
		var latSum int64
		for _, h := range res.Handoffs {
			if h.Completed {
				completed++
				latSum += h.LatencyUS()
			}
		}
		mean := 0.0
		if completed > 0 {
			mean = float64(latSum) / float64(completed) / 1e3
		}
		log.Printf("mobility: %d mobile clients, %d handoffs (%d completed), mean handoff latency %.1f ms",
			len(res.MobileMACs), len(res.Handoffs), completed, mean)
		for _, line := range splitLines(analysis.RoamingTable(nil, analysis.RoamDisruptionByCC(res))) {
			log.Print(line)
		}
	}
	log.Printf("traces written to %s", dir)
}

// replay re-emits src into dst as a live capture directory, pacing trace
// time against the wall clock at the requested speedup. The pacing sleep
// is the cmd-edge wall-clock dependency; the library replay itself is
// deterministic.
func replay(src, dst string, pace float64, segment time.Duration) error {
	if pace < 0 {
		return fmt.Errorf("negative -pace %v", pace)
	}
	cfg := scenario.ReplayConfig{
		SrcDir:    src,
		DstDir:    dst,
		SegmentUS: segment.Microseconds(),
		MarkDone:  true,
	}
	if pace > 0 {
		start := time.Now() //jiglint:allow wallclock (replay pacing is wall-clock by definition)
		cfg.Pace = func(relUS int64) {
			due := time.Duration(float64(relUS)/pace) * time.Microsecond
			if ahead := due - time.Since(start); ahead > 0 { //jiglint:allow wallclock (replay pacing)
				time.Sleep(ahead)
			}
		}
	}
	start := time.Now() //jiglint:allow wallclock (progress timing)
	if err := scenario.Replay(cfg); err != nil {
		return err
	}
	log.Printf("replayed %s into %s in %v (pace %.3gx, %v segments)",
		src, dst, time.Since(start).Round(time.Millisecond), pace, segment) //jiglint:allow wallclock
	return nil
}

// clearStaleTraces removes radio trace and index files left in dir by a
// previous run. Only files matching the trace naming convention are
// touched; a missing directory is fine (the scenario creates it).
func clearStaleTraces(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		isIdx := strings.HasSuffix(name, ".idx")
		probe := name
		if isIdx {
			probe = strings.TrimSuffix(name, ".idx") + ".jig"
		}
		if _, ok := tracefile.ParseTraceName(probe); !ok {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("removing stale %s: %w", name, err)
		}
	}
	return nil
}

// splitLines breaks a table into log lines, dropping the trailing blank.
func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}
