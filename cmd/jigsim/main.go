// Command jigsim runs the building-scale 802.11b/g substrate simulation and
// writes per-radio jigdump traces (plus their metadata indexes), the wired
// distribution-network trace, and a ground-truth summary to a directory.
//
// Usage:
//
//	jigsim -out traces/ -pods 39 -aps 39 -clients 64 -day 240s [-seed 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tracefile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jigsim: ")
	var (
		out     = flag.String("out", "traces", "output directory")
		pods    = flag.Int("pods", 8, "sensor pods (4 radios each); paper scale: 39")
		aps     = flag.Int("aps", 9, "production APs; paper scale: 39")
		clients = flag.Int("clients", 16, "wireless clients")
		day     = flag.Duration("day", 120*time.Second, "compressed day duration")
		seed    = flag.Int64("seed", 1, "simulation seed")
		bfrac   = flag.Float64("bfrac", 0.2, "fraction of 802.11b clients")
	)
	flag.Parse()

	cfg := scenario.Default()
	cfg.Pods, cfg.APs, cfg.Clients = *pods, *aps, *clients
	cfg.Day = sim.Time(day.Nanoseconds())
	cfg.Seed = *seed
	cfg.BFraction = *bfrac

	start := time.Now()
	res, err := scenario.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for radio, buf := range res.Traces {
		path := filepath.Join(*out, fmt.Sprintf("radio%03d.jig", radio))
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		idxPath := filepath.Join(*out, fmt.Sprintf("radio%03d.idx", radio))
		f, err := os.Create(idxPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracefile.WriteIndex(f, res.Indexes[radio]); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	meta := struct {
		ClockGroups [][]int32
		Clients     []scenario.ClientInfo
		APs         []scenario.APInfo
	}{res.ClockGroups, res.Clients, res.APs}
	mb, _ := json.MarshalIndent(meta, "", "  ")
	if err := os.WriteFile(filepath.Join(*out, "meta.json"), mb, 0o644); err != nil {
		log.Fatal(err)
	}

	log.Printf("simulated %v of network time in %v", *day, time.Since(start).Round(time.Millisecond))
	log.Printf("%d radios, %d monitor records, %d transmissions, %d wired packets",
		len(res.Traces), res.MonitorRecords, len(res.Truth), len(res.Wired))
	log.Printf("flows: %d started, %d completed", res.FlowsStarted, res.FlowsCompleted)
	log.Printf("traces written to %s", *out)
}
