// Command jigsim runs the building-scale 802.11b/g substrate simulation and
// writes per-radio jigdump traces (plus their metadata indexes), the wired
// distribution-network trace, and a ground-truth summary to a directory.
//
// Usage:
//
//	jigsim -out traces/ -pods 39 -aps 39 -clients 64 -day 240s [-seed 1]
//
// Congestion control: -cc assigns per-flow controllers, either one
// algorithm ("-cc bbr") or a weighted mix ("-cc reno=0.5,cubic=0.3,bbr=0.2");
// the default (empty) keeps the fixed-window compatibility mode. With a mix,
// -queue-pkts / -bottleneck-mbps bound the wired bottleneck FIFO so the
// controllers have real queue dynamics to fight over.
//
// Mobility: -mobility N makes the first N clients walk waypoint paths with
// the RSSI-threshold roaming state machine enabled (-mobile-speed-mps,
// -roam-hysteresis-db tune it); the run log then reports handoff counts,
// mean handoff latency and the per-CC disruption table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cc"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tracefile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jigsim: ")
	var (
		out     = flag.String("out", "traces", "output directory")
		pods    = flag.Int("pods", 8, "sensor pods (4 radios each); paper scale: 39")
		aps     = flag.Int("aps", 9, "production APs; paper scale: 39")
		clients = flag.Int("clients", 16, "wireless clients")
		day     = flag.Duration("day", 120*time.Second, "compressed day duration")
		seed    = flag.Int64("seed", 1, "simulation seed")
		bfrac   = flag.Float64("bfrac", 0.2, "fraction of 802.11b clients")
		ccSpec  = flag.String("cc", "", "per-flow congestion control: name or weighted mix, e.g. reno=0.5,cubic=0.3,bbr=0.2 (empty = fixed window)")
		qPkts   = flag.Int("queue-pkts", 0, "wired bottleneck FIFO depth in packets (0 = unqueued legacy wire)")
		btlMbps = flag.Float64("bottleneck-mbps", 0, "wired bottleneck drain rate in Mbps (0 = 100)")

		mobility  = flag.Int("mobility", 0, "number of mobile clients walking waypoint paths (0 = everyone stationary)")
		moveSpeed = flag.Float64("mobile-speed-mps", 0, "mobile clients' walking speed in m/s (0 = 1.2)")
		roamHyst  = flag.Float64("roam-hysteresis-db", 0, "dB a candidate AP must beat the serving AP by before a mobile client roams (0 = 6)")
	)
	flag.Parse()

	cfg := scenario.Default()
	cfg.Pods, cfg.APs, cfg.Clients = *pods, *aps, *clients
	cfg.Day = sim.Time(day.Nanoseconds())
	cfg.Seed = *seed
	cfg.BFraction = *bfrac
	mix, err := cc.ParseMixSpec(*ccSpec)
	if err != nil {
		log.Fatal(err)
	}
	m, err := cc.NewMix(mix)
	if err != nil {
		log.Fatal(err)
	}
	if m == nil {
		// "-cc fixed" means the compatibility path itself: a nil mix draws
		// nothing from the workload rng, keeping traces bit-identical.
		mix = nil
	}
	cfg.CCMix = mix
	cfg.WiredQueuePkts = *qPkts
	cfg.WiredBottleneckMbps = *btlMbps
	cfg.MobileClients = *mobility
	cfg.MoveSpeedMPS = *moveSpeed
	cfg.RoamHysteresisDB = *roamHyst

	start := time.Now()
	res, err := scenario.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for radio, buf := range res.Traces {
		path := filepath.Join(*out, fmt.Sprintf("radio%03d.jig", radio))
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		idxPath := filepath.Join(*out, fmt.Sprintf("radio%03d.idx", radio))
		f, err := os.Create(idxPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracefile.WriteIndex(f, res.Indexes[radio]); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	meta := struct {
		ClockGroups [][]int32
		Clients     []scenario.ClientInfo
		APs         []scenario.APInfo
	}{res.ClockGroups, res.Clients, res.APs}
	mb, _ := json.MarshalIndent(meta, "", "  ")
	if err := os.WriteFile(filepath.Join(*out, "meta.json"), mb, 0o644); err != nil {
		log.Fatal(err)
	}

	log.Printf("simulated %v of network time in %v", *day, time.Since(start).Round(time.Millisecond))
	log.Printf("%d radios, %d monitor records, %d transmissions, %d wired packets",
		len(res.Traces), res.MonitorRecords, len(res.Truth), len(res.Wired))
	log.Printf("flows: %d started, %d completed", res.FlowsStarted, res.FlowsCompleted)
	if len(cfg.CCMix) > 0 {
		log.Printf("cc mix %s, per-algorithm shares:", cc.FormatMix(cfg.CCMix))
		for _, line := range splitLines(analysis.FairnessTable(
			analysis.CCFairness(res.FlowCCs, cfg.Day.SecondsF()))) {
			log.Print(line)
		}
	}
	if cfg.MobileClients > 0 {
		completed := 0
		var latSum int64
		for _, h := range res.Handoffs {
			if h.Completed {
				completed++
				latSum += h.LatencyUS()
			}
		}
		mean := 0.0
		if completed > 0 {
			mean = float64(latSum) / float64(completed) / 1e3
		}
		log.Printf("mobility: %d mobile clients, %d handoffs (%d completed), mean handoff latency %.1f ms",
			len(res.MobileMACs), len(res.Handoffs), completed, mean)
		for _, line := range splitLines(analysis.RoamingTable(nil, analysis.RoamDisruptionByCC(res))) {
			log.Print(line)
		}
	}
	log.Printf("traces written to %s", *out)
}

// splitLines breaks a table into log lines, dropping the trailing blank.
func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}
