// benchdiff compares two BENCH_pipeline.json files and fails on throughput
// regressions: for every gated row present in both files (matched by
// preset+mode+workers), the new frames_per_sec must not fall more than
// -max-regress below the old. Rows that don't carry frames_per_sec (e.g.
// the campus replay row, which moves records rather than jframes) are
// skipped, as are rows present on only one side — the diff gates rates, it
// does not police row-set changes.
//
//	benchdiff -old BENCH_pipeline.json -new /tmp/bench_new.json
//
// Exit status 1 on any regression beyond the threshold. Improvements and
// small wobble are reported but pass. Intended for CI: run the bench into a
// fresh file and diff it against the checked-in trajectory before
// committing a regenerated baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
)

// row is the subset of a bench row benchdiff compares.
type row struct {
	Preset       string  `json:"preset"`
	Mode         string  `json:"mode"`
	Workers      int     `json:"workers"`
	FramesPerSec float64 `json:"frames_per_sec"`
}

func (r row) key() string { return fmt.Sprintf("%s/%s/w%d", r.Preset, r.Mode, r.Workers) }

// load reads one bench file (a stream of JSON objects, one per line) into a
// key→row map. Duplicate keys keep the last row, matching how a reader
// scanning the file would resolve them.
func load(path string) (map[string]row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows := make(map[string]row)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r row
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		rows[r.key()] = r
	}
	return rows, sc.Err()
}

func main() {
	oldPath := flag.String("old", "", "baseline bench file (e.g. the checked-in BENCH_pipeline.json)")
	newPath := flag.String("new", "", "candidate bench file to compare against the baseline")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum tolerated fractional frames_per_sec drop on any gated row")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		log.Fatal("benchdiff: -old and -new are both required")
	}

	oldRows, err := load(*oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newRows, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}

	keys := make([]string, 0, len(oldRows))
	for k := range oldRows {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	failed := false
	compared := 0
	for _, k := range keys {
		o := oldRows[k]
		n, ok := newRows[k]
		if !ok || o.FramesPerSec <= 0 || n.FramesPerSec <= 0 {
			continue // absent row or rate-free row: not gated
		}
		compared++
		delta := n.FramesPerSec/o.FramesPerSec - 1
		status := "ok"
		if delta < -*maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-4s %-40s %12.0f -> %12.0f  (%+.1f%%)\n", status, k, o.FramesPerSec, n.FramesPerSec, 100*delta)
	}
	if compared == 0 {
		log.Fatal("benchdiff: no comparable frames_per_sec rows between the two files")
	}
	if failed {
		fmt.Printf("benchdiff: frames_per_sec regressed more than %.0f%% on at least one gated row\n", 100**maxRegress)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d gated rows within %.0f%%\n", compared, 100**maxRegress)
}
