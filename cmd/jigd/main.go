// Command jigd is the always-on monitoring daemon: it tails a growing
// capture directory (rotating per-radio segments, as written by a live
// capture or jigsim -replay), feeds newly sealed segments through the
// Jigsaw pipeline incrementally, and serves the streaming analyses over
// HTTP while the capture is still growing.
//
//	jigd -dir capture/ -http localhost:8970 -window 5s
//
// Endpoints: /healthz (readiness), /summary (cumulative pipeline stats),
// /reports/<pass> (latest closed-window report, jiganalyze -json rows),
// /metrics (frames/sec, watermark lag, heap). Analysis state is bounded:
// every pass finalizes per window and evicts sliding state behind the
// delivery frontier, so heap stays flat no matter how long the capture
// runs. SIGINT/SIGTERM drains the pipeline, closes the trailing window
// and exits cleanly; when the capture marks itself done, jigd finishes
// the trace and keeps serving the final reports until signalled.
//
//jiglint:allow wallclock (daemon edge: polling cadence and shutdown timeouts are wall-clock by nature)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/tracefile"
)

func main() {
	log.SetFlags(log.Ltime)
	log.SetPrefix("jigd: ")
	var (
		dir     = flag.String("dir", "", "capture directory to tail (required)")
		addr    = flag.String("http", "localhost:8970", "HTTP listen address")
		window  = flag.Duration("window", 5*time.Second, "analysis window length in trace time")
		slack   = flag.Duration("slack", time.Duration(serve.DefaultSlackUS)*time.Microsecond, "frontier slack before a window closes (covers pipeline reordering)")
		poll    = flag.Duration("poll", 200*time.Millisecond, "directory scan interval")
		passesF = flag.String("passes", "all", "which analyses to serve (comma-separated, or 'all')")
	)
	flag.Parse()
	if *dir == "" {
		log.Fatal("-dir is required")
	}
	if *window <= 0 {
		log.Fatalf("invalid -window %v", *window)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *dir, *addr, *window, *slack, *poll, *passesF); err != nil {
		log.Fatal(err)
	}
}

// waitMeta polls until the capture's meta.json appears (the writer copies
// it in before the first segment seals).
func waitMeta(ctx context.Context, dir string, poll time.Duration) (scenario.Meta, error) {
	for {
		meta, err := scenario.ReadMeta(dir)
		if err == nil {
			return meta, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return scenario.Meta{}, err
		}
		select {
		case <-ctx.Done():
			return scenario.Meta{}, fmt.Errorf("interrupted waiting for %s in %s", scenario.MetaFileName, dir)
		case <-time.After(poll):
		}
	}
}

// waitRoster polls Scan until every roster radio has at least one sealed
// segment, so the trace set fixed by TraceSet() covers the deployment.
func waitRoster(ctx context.Context, ts *tracefile.TailSet, roster []int32, poll time.Duration) error {
	for {
		if _, err := ts.Scan(); err != nil {
			return fmt.Errorf("scanning capture dir: %w", err)
		}
		ready := 0
		for _, r := range roster {
			if ts.SealedSegments(r) > 0 {
				ready++
			}
		}
		if ready == len(roster) {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("interrupted waiting for first sealed segment (%d/%d radios ready)", ready, len(roster))
		case <-time.After(poll):
		}
	}
}

func run(ctx context.Context, dir, addr string, window, slack, poll time.Duration, selector string) error {
	meta, err := waitMeta(ctx, dir, poll)
	if err != nil {
		return err
	}
	var roster []int32
	for _, g := range meta.ClockGroups {
		roster = append(roster, g...)
	}
	if len(roster) == 0 {
		return fmt.Errorf("%s in %s lists no radios", scenario.MetaFileName, dir)
	}
	log.Printf("capture %s: %d radios, %d APs", dir, len(roster), len(meta.APs))

	tail := tracefile.NewTailSet(dir)
	if err := waitRoster(ctx, tail, roster, poll); err != nil {
		return err
	}

	// Passes over the live stream: same registry and parameters as
	// jiganalyze directory mode (no simulator ground truth available).
	daySec := meta.DaySec
	if daySec == 0 {
		daySec = 86_400
	}
	apSet := scenario.APSet(meta.APs)
	params := analysis.PassParams{
		SlotUS:     int64(daySec * 1e6 / 24),
		MinPackets: 50,
		IsAP:       func(m dot80211.MAC) bool { return apSet[m] },
	}
	passes, err := analysis.NewPasses(selector, params)
	if err != nil {
		return err
	}
	mon, err := serve.NewMonitor(serve.MonitorConfig{
		WindowUS: window.Microseconds(),
		SlackUS:  slack.Microseconds(),
		Passes:   passes,
		OnWindow: func(endUS int64) { log.Printf("window closed at %s trace time", time.Duration(endUS)*time.Microsecond) },
	})
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:    addr,
		Handler: serve.NewServer(mon, serve.Info{Dir: dir, Radios: roster}),
	}
	httpErr := make(chan error, 1)
	go func() {
		log.Printf("serving on http://%s", addr)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			httpErr <- err
		}
		close(httpErr)
	}()

	// Scan pump: pick up newly sealed segments until the capture is done
	// or we are told to stop; either way Finish unblocks the tail readers
	// so the pipeline drains.
	go func() {
		defer tail.Finish()
		t := time.NewTicker(poll)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if _, err := tail.Scan(); err != nil {
					log.Printf("scan: %v", err)
					return
				}
				if tail.Done() {
					log.Printf("capture marked done")
					return
				}
			}
		}
	}()

	ccfg := core.DefaultConfig()
	ccfg.Workers = 1 // serial path: required for live result snapshots
	ccfg.SnapshotEveryUS = window.Microseconds()
	ccfg.Passes = []core.Pass{mon}
	res, err := core.RunFrom(tail.TraceSet(), meta.ClockGroups, ccfg, nil)
	if err != nil {
		_ = srv.Close() // tearing down on a fatal pipeline error
		return fmt.Errorf("pipeline: %w", err)
	}
	mon.Flush()
	log.Printf("pipeline drained: %d jframes, %d windows served", res.UnifyStats.JFrames, mon.Summary().WindowsClosed)

	// Natural end of capture: keep serving the final reports until
	// signalled. On a signal the context is already done and we shut down
	// immediately.
	select {
	case <-ctx.Done():
	case err := <-httpErr:
		if err != nil {
			return fmt.Errorf("http: %w", err)
		}
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err, ok := <-httpErr; ok && err != nil {
		return fmt.Errorf("http: %w", err)
	}
	log.Printf("clean exit")
	return nil
}
