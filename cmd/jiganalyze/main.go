// Command jiganalyze runs an end-to-end scenario plus pipeline and prints
// the paper's §6/§7 analyses: trace summary (Table 1), coverage (Fig. 6),
// activity time series (Fig. 8), interference (Fig. 9), protection mode
// (Fig. 10) and TCP loss (Fig. 11).
//
// Usage:
//
//	jiganalyze [-pods 8 -aps 9 -clients 16 -day 120s] [-exp all|table1|coverage|timeseries|interference|protection|diagnose|tcploss]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jiganalyze: ")
	var (
		pods    = flag.Int("pods", 8, "sensor pods")
		aps     = flag.Int("aps", 9, "APs")
		clients = flag.Int("clients", 16, "clients")
		day     = flag.Duration("day", 120*time.Second, "compressed day")
		seed    = flag.Int64("seed", 1, "seed")
		exp     = flag.String("exp", "all", "which analysis to print")
		workers = flag.Int("workers", 0, "pipeline workers (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	cfg := scenario.Default()
	cfg.Pods, cfg.APs, cfg.Clients = *pods, *aps, *clients
	cfg.Day = sim.Time(day.Nanoseconds())
	cfg.Seed = *seed

	out, err := scenario.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ccfg := core.DefaultConfig()
	ccfg.Workers = *workers
	ccfg.KeepExchanges = true
	ccfg.KeepJFrames = true
	res, err := core.Run(core.TracesFromBuffers(out.Traces), out.ClockGroups, ccfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		fmt.Println("== Table 1: trace summary ==")
		fmt.Print(analysis.Summarize(res, res.JFrames).String())
		inf := analysis.Inference(res.LLCStats)
		fmt.Printf("%-28s %.3f%% attempts, %.3f%% exchanges\n\n",
			"inference required", 100*inf.AttemptRate(), 100*inf.ExchangeRate())
	}
	if want("fig4") || want("all") {
		fmt.Println("== Fig. 4: group dispersion CDF ==")
		for _, p := range []float64{0.5, 0.75, 0.9, 0.95, 0.99} {
			fmt.Printf("p%-3.0f %4d us\n", p*100, res.Dispersion.Percentile(p))
		}
		fmt.Println()
	}
	if want("coverage") {
		fmt.Println("== Fig. 6 / §6: wired-trace coverage ==")
		cov := analysis.Coverage(out, res.Exchanges)
		fmt.Printf("overall %.1f%% of %d wired packets seen wirelessly\n", 100*cov.Overall, cov.TotalWired)
		fmt.Printf("clients: %.1f%% aggregate, %.0f%% of stations at 100%%, %.0f%% at >=95%%\n",
			100*cov.ClientCoverage, 100*cov.ClientsAt100, 100*cov.ClientsOver95)
		fmt.Printf("APs:     %.1f%% aggregate, %.0f%% of stations at 100%%, %.0f%% at >=95%%\n",
			100*cov.APCoverage, 100*cov.APsAt100, 100*cov.APsOver95)
		oracle, _ := analysis.OracleCoverage(out)
		fmt.Printf("oracle (ground truth) coverage of client events: %.1f%%\n\n", 100*oracle)
	}
	if want("timeseries") {
		fmt.Println("== Fig. 8: activity time series (per compressed hour) ==")
		slots := analysis.TimeSeries(res.JFrames, out.Cfg.HourDur().US64())
		fmt.Printf("%4s %7s %5s %10s %10s %9s %9s\n", "hr", "clients", "APs", "data B", "mgmt B", "beacon B", "ARP B")
		for i, s := range slots {
			fmt.Printf("%4d %7d %5d %10d %10d %9d %9d\n",
				i, s.ActiveClients, s.ActiveAPs, s.DataBytes, s.MgmtBytes, s.BeaconBytes, s.ARPBytes)
		}
		fmt.Printf("broadcast airtime share: %.1f%%\n\n", 100*analysis.BroadcastAirtimeShare(slots))
	}
	if want("interference") {
		fmt.Println("== Fig. 9: interference loss rate ==")
		apSet := map[dot80211.MAC]bool{}
		for _, ap := range out.APs {
			apSet[ap.MAC] = true
		}
		rep := analysis.Interference(res.JFrames, res.Exchanges, 50, func(m dot80211.MAC) bool { return apSet[m] })
		fmt.Printf("(s,r) pairs with >=50 packets: %d of %d\n", len(rep.Pairs), rep.PairsConsidered)
		fmt.Printf("pairs with interference: %.0f%% (paper 88%%); negative Pi truncated: %.0f%% (paper 11%%)\n",
			100*rep.FractionWithInterference, 100*rep.NegativePiFraction)
		fmt.Printf("avg background loss rate: %.3f (paper 0.12)\n", rep.AvgBackgroundLoss)
		fmt.Printf("AP share among interfered senders: %.0f%% (paper 56%%)\n", 100*rep.SenderSplitAP)
		for _, p := range []float64{0.5, 0.9, 0.95} {
			fmt.Printf("X p%-3.0f = %.4f\n", p*100, rep.XPercentile(p))
		}
		fmt.Println()
	}
	if want("protection") {
		fmt.Println("== Fig. 10: overprotective APs ==")
		slotUS := out.Cfg.HourDur().US64()
		rep := analysis.Protection(res.JFrames, slotUS, slotUS)
		fmt.Printf("%4s %10s %15s %10s %12s\n", "hr", "protected", "overprotective", "g active", "g affected")
		for i, s := range rep.Slots {
			if s.ProtectedAPs == 0 && s.ActiveGClients == 0 {
				continue
			}
			fmt.Printf("%4d %10d %15d %10d %12d\n",
				i, s.ProtectedAPs, s.Overprotective, s.ActiveGClients, s.GOnOverprotected)
		}
		fmt.Printf("peak affected g-client share: %.0f%% (paper 25-50%%)\n", 100*rep.PeakAffectedShare)
		fmt.Printf("potential throughput factor without protection: %.2f (paper 1.98)\n\n", rep.PotentialSpeedup)
	}
	if want("diagnose") {
		fmt.Println("== §8: per-station diagnosis (top airtime consumers) ==")
		diags := analysis.Diagnose(res.JFrames, res.Exchanges)
		n := 0
		for _, d := range diags {
			if n >= 8 {
				break
			}
			n++
			fmt.Printf("%v  airtime %5.1f%%  rate %5.1f Mbps  retries/exch %.2f\n",
				d.MAC, 100*d.AirtimeShare, d.MeanRateMbps, d.RetryRate)
			for _, f := range d.Findings {
				fmt.Printf("    ! %s\n", f)
			}
		}
		fmt.Println()
	}
	if want("tcploss") {
		fmt.Println("== Fig. 11: TCP loss ==")
		var rates []analysis.FlowLoss
		for _, r := range res.Transport.LossRates(5) {
			rates = append(rates, analysis.FlowLoss{
				DataSegs: r.DataSegs, Losses: r.Losses,
				WirelessLoss: r.WirelessLoss, WiredLoss: r.WiredLoss, LossRate: r.LossRate,
			})
		}
		rep := analysis.TCPLoss(rates)
		fmt.Printf("flows analyzed: %d, total losses: %d\n", rep.Flows, rep.TotalLosses)
		fmt.Printf("wireless share of classified losses: %.0f%% (paper: wireless dominant)\n",
			100*rep.WirelessShare)
	}
}
