// Command jiganalyze prints the paper's §6/§7 analyses: trace summary
// (Table 1), coverage (Fig. 6), activity time series (Fig. 8), interference
// (Fig. 9), protection mode (Fig. 10), per-station diagnosis (§8), TCP loss
// (Fig. 11) and air-reconstructed roaming handoffs.
//
// Three modes:
//
//	jiganalyze [-pods 8 -aps 9 -clients 16 -day 120s]   # simulate + analyze
//	jiganalyze traces/                                  # analyze a trace directory
//	jiganalyze campus/                                  # hierarchical: building-NN subdirectories
//
// A directory containing building-NN subdirectories (the layout
// jigsim -campus writes) is analyzed hierarchically: each building is
// unified into a sorted intermediate jframe stream by a per-building worker
// pool (level 1), then the global k-way merge drives the same passes over
// the combined stream (level 2, core.RunHierarchical). Reports are
// unchanged; memory stays bounded by the per-building unifier windows plus
// the merge frontier.
//
// Every analysis runs as a streaming pass (internal/analysis) fed inline
// by the pipeline, so nothing retains the jframe or exchange streams:
// directory mode analyzes trace sets far larger than RAM at streaming
// heap, emitting the full report set. Deployment metadata (clock groups,
// AP roster, day duration, seed) comes from the meta.json sidecar there;
// the only reports skipped are those that genuinely need the simulator's
// wired tap / ground truth, each announced with an explicit line. In
// simulate mode, -spill-dir streams generated traces through a directory
// instead of holding them in memory — required for building-scale runs.
//
// -passes selects which reports to run (comma-separated section names, or
// "all").
//
// -json replaces the text report with a JSON array of sections — the
// analysis.Section encoding, one element per selected report, byte-wise
// the same rows jigd serves at /reports/<pass>. Sections that need
// simulator ground truth are skipped (announced on stderr) in directory
// mode, exactly as in text mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/hmerge"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tracefile"
)

// section maps one report section to the streaming pass (if any) behind it.
type section struct {
	name       string // -passes token
	pass       string // analysis registry name ("" = derived from Result only)
	needsTruth bool   // requires simulator ground truth (wired tap / oracle)
}

// sections lists the report set in print order.
var sections = []section{
	{name: "table1", pass: "summary"},
	{name: "fig4"}, // dispersion CDF, accumulated by the pipeline itself
	{name: "coverage", pass: "coverage", needsTruth: true},
	{name: "timeseries", pass: "timeseries"},
	{name: "interference", pass: "interference"},
	{name: "protection", pass: "protection"},
	{name: "diagnose", pass: "diagnose"},
	{name: "tcploss", pass: "tcploss"},
	{name: "roam", pass: "roam"},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("jiganalyze: ")
	var (
		in       = flag.String("in", "", "analyze this trace directory instead of simulating")
		pods     = flag.Int("pods", 8, "sensor pods (simulate mode)")
		aps      = flag.Int("aps", 9, "APs (simulate mode)")
		clients  = flag.Int("clients", 16, "clients (simulate mode)")
		day      = flag.Duration("day", 120*time.Second, "compressed day (simulate mode)")
		seed     = flag.Int64("seed", 1, "seed (simulate mode)")
		spillDir = flag.String("spill-dir", "", "simulate mode: stream generated traces through this directory instead of memory")
		passesF  = flag.String("passes", "", "which reports to run: comma-separated section names, or 'all' (default)")
		exp      = flag.String("exp", "all", "deprecated alias for -passes")
		workers  = flag.Int("workers", 0, "pipeline workers (0 = GOMAXPROCS, 1 = serial)")
		jsonOut  = flag.Bool("json", false, "emit reports as a JSON array of sections (jigd's /reports encoding) instead of text")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file before exiting")
	)
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// A GC first makes the live set exact (the heap profile is
		// otherwise up to one cycle stale).
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	dir := *in
	if flag.NArg() == 1 {
		dir = flag.Arg(0)
	} else if flag.NArg() > 1 {
		log.Fatalf("expected at most one trace directory argument, got %q", flag.Args())
	}
	selector := *exp
	if *passesF != "" {
		selector = *passesF
	}
	want, err := parseSelector(selector)
	if err != nil {
		log.Fatal(err)
	}

	var (
		traces      *tracefile.TraceSet
		clockGroups [][]int32
		apInfos     []scenario.APInfo
		hourUS      int64
		out         *scenario.Output // nil in directory mode: no ground truth
	)
	var buildingDirs []string // non-nil: campus layout, hierarchical path
	if dir != "" {
		meta, err := scenario.ReadMeta(dir)
		if err != nil {
			log.Fatal(err)
		}
		if bds, berr := scenario.ListBuildings(dir); berr == nil {
			buildingDirs = bds
		} else {
			traces, err = tracefile.OpenDir(dir)
			if err != nil {
				log.Fatal(err)
			}
		}
		clockGroups = meta.ClockGroups
		apInfos = meta.APs
		daySec := meta.DaySec
		if daySec == 0 {
			daySec = day.Seconds()
			log.Printf("warning: %s has no DaySec; slicing time by -day %v", scenario.MetaFileName, *day)
		}
		if buildingDirs != nil {
			log.Printf("campus directory %s: %d buildings, %d APs, day %.0fs, seed %d",
				dir, len(buildingDirs), len(apInfos), daySec, meta.Seed)
		} else {
			log.Printf("trace directory %s: %d radios, %d APs, day %.0fs, seed %d",
				dir, traces.Len(), len(apInfos), daySec, meta.Seed)
		}
		hourUS = int64(daySec * 1e6 / 24)
	} else {
		if *pods <= 0 || *aps <= 0 || *clients < 0 {
			log.Fatalf("invalid deployment (pods=%d aps=%d clients=%d)", *pods, *aps, *clients)
		}
		if *day <= 0 {
			log.Fatalf("invalid -day %v", *day)
		}
		cfg := scenario.Default()
		cfg.Pods, cfg.APs, cfg.Clients = *pods, *aps, *clients
		cfg.Day = sim.Time(day.Nanoseconds())
		cfg.Seed = *seed
		cfg.SpillDir = *spillDir

		var err error
		out, err = scenario.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		traces = out.TraceSet()
		clockGroups = out.ClockGroups
		apInfos = out.APs
		hourUS = out.Cfg.HourDur().US64()
	}

	apSet := scenario.APSet(apInfos)
	params := analysis.PassParams{
		SlotUS:     hourUS,
		MinPackets: 50,
		IsAP:       func(m dot80211.MAC) bool { return apSet[m] },
		Out:        out,
	}
	var names []string
	for _, sec := range sections {
		if !want(sec.name) || sec.pass == "" || (sec.needsTruth && out == nil) {
			continue
		}
		names = append(names, sec.pass)
	}
	var passes []analysis.Pass
	if len(names) > 0 { // an empty selector list must not expand to "all"
		var err error
		passes, err = analysis.NewPasses(strings.Join(names, ","), params)
		if err != nil {
			log.Fatal(err)
		}
	}
	byName := make(map[string]analysis.Pass, len(passes))
	for _, p := range passes {
		byName[p.Name()] = p
	}

	ccfg := core.DefaultConfig()
	ccfg.Workers = *workers
	ccfg.Passes = analysis.CorePasses(passes)
	var res *core.Result
	if buildingDirs != nil {
		res, err = runCampus(buildingDirs, ccfg, *workers)
	} else {
		res, err = core.RunFrom(traces, clockGroups, ccfg, nil)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		emitJSON(want, byName, res, out)
		return
	}

	if want("table1") {
		fmt.Println("== Table 1: trace summary ==")
		fmt.Print(byName["summary"].Finalize().(*analysis.TraceSummary).String())
		inf := analysis.Inference(res.LLCStats)
		fmt.Printf("%-28s %.3f%% attempts, %.3f%% exchanges\n\n",
			"inference required", 100*inf.AttemptRate(), 100*inf.ExchangeRate())
	}
	if want("fig4") {
		fmt.Println("== Fig. 4: group dispersion CDF ==")
		for _, p := range []float64{0.5, 0.75, 0.9, 0.95, 0.99} {
			fmt.Printf("p%-3.0f %4d us\n", p*100, res.Dispersion.Percentile(p))
		}
		fmt.Println()
	}
	if want("coverage") {
		if out == nil {
			fmt.Println("== Fig. 6 / §6: wired-trace coverage: skipped — needs the wired distribution tap and simulator ground truth (a trace directory carries neither) ==")
			fmt.Println()
		} else {
			fmt.Println("== Fig. 6 / §6: wired-trace coverage ==")
			cov := byName["coverage"].Finalize().(*analysis.CoverageReport)
			fmt.Printf("overall %.1f%% of %d wired packets seen wirelessly\n", 100*cov.Overall, cov.TotalWired)
			fmt.Printf("clients: %.1f%% aggregate, %.0f%% of stations at 100%%, %.0f%% at >=95%%\n",
				100*cov.ClientCoverage, 100*cov.ClientsAt100, 100*cov.ClientsOver95)
			fmt.Printf("APs:     %.1f%% aggregate, %.0f%% of stations at 100%%, %.0f%% at >=95%%\n",
				100*cov.APCoverage, 100*cov.APsAt100, 100*cov.APsOver95)
			oracle, _ := analysis.OracleCoverage(out)
			fmt.Printf("oracle (ground truth) coverage of client events: %.1f%%\n\n", 100*oracle)
		}
	}
	if want("timeseries") {
		fmt.Println("== Fig. 8: activity time series (per compressed hour) ==")
		slots := byName["timeseries"].Finalize().([]analysis.ActivitySlot)
		fmt.Printf("%4s %7s %5s %10s %10s %9s %9s\n", "hr", "clients", "APs", "data B", "mgmt B", "beacon B", "ARP B")
		for i, s := range slots {
			fmt.Printf("%4d %7d %5d %10d %10d %9d %9d\n",
				i, s.ActiveClients, s.ActiveAPs, s.DataBytes, s.MgmtBytes, s.BeaconBytes, s.ARPBytes)
		}
		fmt.Printf("broadcast airtime share: %.1f%%\n\n", 100*analysis.BroadcastAirtimeShare(slots))
	}
	if want("interference") {
		fmt.Println("== Fig. 9: interference loss rate ==")
		rep := byName["interference"].Finalize().(*analysis.InterferenceReport)
		fmt.Printf("(s,r) pairs with >=50 packets: %d of %d\n", len(rep.Pairs), rep.PairsConsidered)
		fmt.Printf("pairs with interference: %.0f%% (paper 88%%); negative Pi truncated: %.0f%% (paper 11%%)\n",
			100*rep.FractionWithInterference, 100*rep.NegativePiFraction)
		fmt.Printf("avg background loss rate: %.3f (paper 0.12)\n", rep.AvgBackgroundLoss)
		fmt.Printf("AP share among interfered senders: %.0f%% (paper 56%%)\n", 100*rep.SenderSplitAP)
		for _, p := range []float64{0.5, 0.9, 0.95} {
			fmt.Printf("X p%-3.0f = %.4f\n", p*100, rep.XPercentile(p))
		}
		fmt.Println()
	}
	if want("protection") {
		fmt.Println("== Fig. 10: overprotective APs ==")
		rep := byName["protection"].Finalize().(*analysis.ProtectionReport)
		fmt.Printf("%4s %10s %15s %10s %12s\n", "hr", "protected", "overprotective", "g active", "g affected")
		for i, s := range rep.Slots {
			if s.ProtectedAPs == 0 && s.ActiveGClients == 0 {
				continue
			}
			fmt.Printf("%4d %10d %15d %10d %12d\n",
				i, s.ProtectedAPs, s.Overprotective, s.ActiveGClients, s.GOnOverprotected)
		}
		fmt.Printf("peak affected g-client share: %.0f%% (paper 25-50%%)\n", 100*rep.PeakAffectedShare)
		fmt.Printf("potential throughput factor without protection: %.2f (paper 1.98)\n\n", rep.PotentialSpeedup)
	}
	if want("diagnose") {
		fmt.Println("== §8: per-station diagnosis (top airtime consumers) ==")
		diags := byName["diagnose"].Finalize().([]analysis.StationDiagnosis)
		n := 0
		for _, d := range diags {
			if n >= 8 {
				break
			}
			n++
			fmt.Printf("%v  airtime %5.1f%%  rate %5.1f Mbps  retries/exch %.2f\n",
				d.MAC, 100*d.AirtimeShare, d.MeanRateMbps, d.RetryRate)
			for _, f := range d.Findings {
				fmt.Printf("    ! %s\n", f)
			}
		}
		fmt.Println()
	}
	if want("tcploss") {
		fmt.Println("== Fig. 11: TCP loss ==")
		rep := byName["tcploss"].Finalize().(*analysis.TCPLossReport)
		fmt.Printf("flows analyzed: %d, total losses: %d\n", rep.Flows, rep.TotalLosses)
		fmt.Printf("wireless share of classified losses: %.0f%% (paper: wireless dominant)\n\n",
			100*rep.WirelessShare)
	}
	if want("roam") {
		fmt.Println("== Roaming: handoffs reconstructed from the air ==")
		rep := byName["roam"].Finalize().(*analysis.RoamingReport)
		fmt.Print(analysis.RoamingTable(rep, nil))
		if out != nil {
			sc := analysis.ScoreHandoffs(out.Handoffs, rep)
			if sc.Truth > 0 {
				fmt.Printf("vs ground truth: %d/%d matched (recall %.0f%%), mean completion error %.1f ms\n",
					sc.Matched, sc.Truth, 100*sc.Recall, sc.MeanAbsEndErrUS/1e3)
			}
			if rows := analysis.RoamDisruptionByCC(out); len(rows) > 0 {
				fmt.Print(analysis.RoamingTable(nil, rows))
			}
		} else {
			fmt.Println("handoff scoring / per-CC disruption: skipped — needs simulator ground truth (not carried by a trace directory)")
		}
	}
}

// runCampus executes the hierarchical pipeline over a campus layout:
// level 1 unifies each building directory into an intermediate stream
// (worker pool, one stream per building, written to a temporary directory),
// level 2 k-way-merges the streams and drives the configured passes.
func runCampus(buildingDirs []string, ccfg core.Config, workers int) (*core.Result, error) {
	streamDir, err := os.MkdirTemp("", "jiganalyze-hmerge-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(streamDir)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool := workers
	if pool > len(buildingDirs) {
		pool = len(buildingDirs)
	}
	paths := make([]string, len(buildingDirs))
	errs := make([]error, len(buildingDirs))
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(buildingDirs) {
					return
				}
				bdir := buildingDirs[i]
				meta, err := scenario.ReadMeta(bdir)
				if err != nil {
					errs[i] = err
					continue
				}
				out := filepath.Join(streamDir, filepath.Base(bdir)+".jfs")
				if _, err := hmerge.UnifyDir(bdir, out, meta.ClockGroups, hmerge.UnifyConfig{Workers: 1}); err != nil {
					errs[i] = err
					continue
				}
				paths[i] = out
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("unify %s: %w", buildingDirs[i], err)
		}
	}
	return core.RunHierarchicalPaths(paths, ccfg, nil)
}

// emitJSON prints the selected reports as a JSON array of sections in
// print order. Pass-backed sections use the shared Section encoding
// (identical to jigd's /reports/<pass>); fig4, which is derived from the
// pipeline result rather than a pass, gets a section of percentile rows.
func emitJSON(want func(string) bool, byName map[string]analysis.Pass, res *core.Result, out *scenario.Output) {
	var secs []analysis.Section
	for _, sec := range sections {
		if !want(sec.name) {
			continue
		}
		if sec.name == "fig4" {
			type prow struct {
				P  float64 `json:"p"`
				US int64   `json:"dispersion_us"`
			}
			rows := make([]prow, 0, 5)
			for _, p := range []float64{0.5, 0.75, 0.9, 0.95, 0.99} {
				rows = append(rows, prow{P: p, US: res.Dispersion.Percentile(p)})
			}
			secs = append(secs, analysis.Section{Pass: "fig4", Rows: rows})
			continue
		}
		if sec.pass == "" {
			continue
		}
		if sec.needsTruth && out == nil {
			log.Printf("%s: skipped — needs simulator ground truth", sec.name)
			continue
		}
		s, err := analysis.SectionJSON(sec.pass, byName[sec.pass].Finalize())
		if err != nil {
			log.Fatal(err)
		}
		secs = append(secs, s)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(secs); err != nil {
		log.Fatal(err)
	}
}

// parseSelector resolves the -passes/-exp value into a membership test.
func parseSelector(sel string) (func(string) bool, error) {
	sel = strings.TrimSpace(sel)
	if sel == "" || sel == "all" {
		return func(string) bool { return true }, nil
	}
	known := make(map[string]bool, len(sections))
	names := make([]string, len(sections))
	for i, sec := range sections {
		known[sec.name] = true
		names[i] = sec.name
	}
	want := map[string]bool{}
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown report %q (have: %s)", name, strings.Join(names, ", "))
		}
		want[name] = true
	}
	return func(s string) bool { return want[s] }, nil
}
