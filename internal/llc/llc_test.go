package llc

import (
	"io"
	"testing"

	"repro/internal/dot80211"
	"repro/internal/unify"
)

var (
	sta = dot80211.MAC{2, 0, 0, 0, 0, 1}
	ap  = dot80211.MAC{0xaa, 0, 0, 0, 0, 1}
)

// jf wraps a frame into a valid jframe at time us.
func jf(f dot80211.Frame, us int64, rate dot80211.Rate) *unify.JFrame {
	return &unify.JFrame{
		UnivUS: us, Frame: f, Wire: f.Encode(), Rate: rate, Channel: 1, Valid: true,
		Instances: []unify.Instance{{Radio: 0, UnivUS: us, FCSOK: true}},
	}
}

// dataJF builds a unicast data jframe with correct Duration.
func dataJF(tx, rx dot80211.MAC, seq uint16, us int64, retry bool) *unify.JFrame {
	f := dot80211.NewData(rx, tx, ap, seq, []byte{byte(seq), byte(us)})
	f.Duration = dot80211.NAVForDataExchange(dot80211.Rate11Mbps, dot80211.LongPreamble)
	if retry {
		f.Flags |= dot80211.FlagRetry
	}
	return jf(f, us, dot80211.Rate11Mbps)
}

// ackJF builds the matching ACK jframe: SIFS after the data frame ends.
func ackJF(dataTx dot80211.MAC, data *unify.JFrame) *unify.JFrame {
	return jf(dot80211.NewAck(dataTx), data.EndUS()+dot80211.SIFS, dot80211.Rate2Mbps)
}

// runSeq processes jframes and returns exchanges.
func runSeq(t *testing.T, js ...*unify.JFrame) ([]*Exchange, *Stats) {
	t.Helper()
	i := 0
	ex, st, err := Run(func() (*unify.JFrame, error) {
		if i >= len(js) {
			return nil, io.EOF
		}
		j := js[i]
		i++
		return j, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ex, st
}

func TestSimpleExchangeWithAck(t *testing.T) {
	d := dataJF(sta, ap, 10, 1000, false)
	a := ackJF(sta, d)
	exs, st := runSeq(t, d, a)
	if len(exs) != 1 {
		t.Fatalf("got %d exchanges", len(exs))
	}
	ex := exs[0]
	if ex.Delivery != DeliveryObserved {
		t.Errorf("delivery = %v, want observed", ex.Delivery)
	}
	if len(ex.Attempts) != 1 || !ex.Attempts[0].Acked() {
		t.Error("attempt structure wrong")
	}
	if ex.Transmitter != sta || ex.Receiver != ap || ex.Seq != 10 {
		t.Error("addressing wrong")
	}
	if st.Attempts != 1 || st.Exchanges != 1 || st.InferredAttempts != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRetransmissionsCoalesce(t *testing.T) {
	d1 := dataJF(sta, ap, 20, 1000, false)
	d2 := dataJF(sta, ap, 20, 5000, true) // retry, same seq (R2)
	a := ackJF(sta, d2)
	exs, _ := runSeq(t, d1, d2, a)
	if len(exs) != 1 {
		t.Fatalf("got %d exchanges, want 1", len(exs))
	}
	ex := exs[0]
	if len(ex.Attempts) != 2 {
		t.Fatalf("attempts = %d, want 2", len(ex.Attempts))
	}
	if ex.Retransmissions() != 1 {
		t.Error("retransmission count")
	}
	if ex.Delivery != DeliveryObserved {
		t.Errorf("delivery = %v", ex.Delivery)
	}
	if ex.Attempts[0].Acked() || !ex.Attempts[1].Acked() {
		t.Error("ACK attached to wrong attempt")
	}
}

func TestSequenceAdvanceClosesExchange(t *testing.T) {
	d1 := dataJF(sta, ap, 30, 1000, false) // no ACK observed
	d2 := dataJF(sta, ap, 31, 9000, false) // R3: new exchange
	a2 := ackJF(sta, d2)
	exs, _ := runSeq(t, d1, d2, a2)
	if len(exs) != 2 {
		t.Fatalf("got %d exchanges, want 2", len(exs))
	}
	if exs[0].Delivery != DeliveryUnknown {
		t.Errorf("first exchange delivery = %v, want unknown", exs[0].Delivery)
	}
	if exs[1].Delivery != DeliveryObserved {
		t.Errorf("second exchange delivery = %v", exs[1].Delivery)
	}
}

func TestBroadcastIsR1(t *testing.T) {
	f := dot80211.NewData(dot80211.Broadcast, ap, ap, 40, []byte("arp"))
	exs, st := runSeq(t, jf(f, 1000, dot80211.Rate1Mbps))
	if len(exs) != 1 {
		t.Fatalf("got %d exchanges", len(exs))
	}
	if !exs[0].Broadcast || exs[0].Delivery != DeliveryBroadcast {
		t.Error("broadcast exchange misclassified")
	}
	if st.Attempts != 1 {
		t.Error("broadcast attempt not counted")
	}
}

func TestBeaconIsBroadcastExchange(t *testing.T) {
	b := dot80211.NewBeacon(ap, 50, 12345, "net")
	exs, _ := runSeq(t, jf(b, 1000, dot80211.Rate1Mbps))
	if len(exs) != 1 || !exs[0].Broadcast {
		t.Error("beacon should form a broadcast exchange")
	}
}

func TestCTSToSelfAttaches(t *testing.T) {
	cts := dot80211.NewCTSToSelf(sta, dot80211.NAVForCTSToSelf(100, dot80211.Rate54Mbps, dot80211.LongPreamble))
	ctsJ := jf(cts, 1000, dot80211.Rate2Mbps)
	d := dataJF(sta, ap, 60, ctsJ.EndUS()+dot80211.SIFS, false)
	a := ackJF(sta, d)
	exs, _ := runSeq(t, ctsJ, d, a)
	if len(exs) != 1 {
		t.Fatalf("got %d exchanges", len(exs))
	}
	at := exs[0].Attempts[0]
	if at.CTS == nil {
		t.Fatal("CTS-to-self not attached to the attempt")
	}
	if at.StartUS != 1000 {
		t.Error("attempt start should be the CTS time")
	}
}

func TestCTSTooEarlyNotAttached(t *testing.T) {
	cts := dot80211.NewCTSToSelf(sta, 500)
	ctsJ := jf(cts, 1000, dot80211.Rate2Mbps)
	d := dataJF(sta, ap, 61, ctsJ.EndUS()+5_000, false) // 5 ms later: unrelated
	a := ackJF(sta, d)
	exs, _ := runSeq(t, ctsJ, d, a)
	if exs[0].Attempts[0].CTS != nil {
		t.Error("stale CTS attached despite timing mismatch")
	}
}

func TestAckTimingWindowRejectsLateAck(t *testing.T) {
	// An ACK long after the Duration window must not bind to the data
	// frame (it belongs to some unobserved later transmission).
	d := dataJF(sta, ap, 70, 1000, false)
	late := jf(dot80211.NewAck(sta), d.EndUS()+10_000, dot80211.Rate2Mbps)
	d2 := dataJF(sta, ap, 71, 40_000, false) // closes first exchange
	exs, st := runSeq(t, d, late, d2)
	if exs[0].Attempts[0].Acked() {
		t.Error("late ACK incorrectly bound to attempt")
	}
	if st.OrphanAcks != 1 {
		t.Errorf("orphan acks = %d, want 1", st.OrphanAcks)
	}
	// The orphan + seq advance ⇒ first exchange delivered by inference.
	if exs[0].Delivery != DeliveryInferred {
		t.Errorf("delivery = %v, want inferred", exs[0].Delivery)
	}
}

func TestMissingDataInferredFromOrphanAck(t *testing.T) {
	// Sender's data frame at seq 80 is observed; its retry is NOT; the
	// ACK for the retry is. Then seq 81 appears. The orphan ACK must
	// resolve exchange 80 as delivered with an inferred attempt (§5.1).
	d1 := dataJF(sta, ap, 80, 1000, false)
	orphan := jf(dot80211.NewAck(sta), 8_000, dot80211.Rate2Mbps)
	d2 := dataJF(sta, ap, 81, 20_000, false)
	a2 := ackJF(sta, d2)
	exs, st := runSeq(t, d1, orphan, d2, a2)
	if len(exs) != 2 {
		t.Fatalf("got %d exchanges, want 2", len(exs))
	}
	first := exs[0]
	if first.Delivery != DeliveryInferred {
		t.Errorf("delivery = %v, want inferred", first.Delivery)
	}
	if len(first.Attempts) != 2 || !first.Attempts[1].Inferred {
		t.Error("inferred attempt missing")
	}
	if st.InferredAttempts != 1 {
		t.Errorf("inferred attempts = %d", st.InferredAttempts)
	}
	if !first.Inferred {
		t.Error("exchange not marked inferred")
	}
}

func TestSequenceGapFlushes(t *testing.T) {
	d1 := dataJF(sta, ap, 90, 1000, false)
	d2 := dataJF(sta, ap, 95, 10_000, false) // R4: gap of 5
	exs, st := runSeq(t, d1, d2)
	if len(exs) != 2 {
		t.Fatalf("got %d exchanges", len(exs))
	}
	if exs[0].Delivery != DeliveryUnknown {
		t.Error("gap-closed exchange should stay unknown")
	}
	if st.InferredAttempts != 0 {
		t.Error("R4 makes no inferences")
	}
}

func TestSeqGapFlushesOrphanUnassigned(t *testing.T) {
	d1 := dataJF(sta, ap, 100, 1000, false)
	orphan := jf(dot80211.NewAck(sta), 9_000, dot80211.Rate2Mbps)
	d2 := dataJF(sta, ap, 105, 20_000, false) // gap
	exs, st := runSeq(t, d1, orphan, d2)
	if st.FlushedUnassigned != 1 {
		t.Errorf("flushed = %d, want 1", st.FlushedUnassigned)
	}
	for _, ex := range exs {
		if ex.Inferred {
			t.Error("R4 path must not infer")
		}
	}
}

func TestRetryExhaustionFails(t *testing.T) {
	var js []*unify.JFrame
	for i := 0; i < 7; i++ {
		js = append(js, dataJF(sta, ap, 110, int64(1000+i*3000), i > 0))
	}
	js = append(js, dataJF(sta, ap, 111, 60_000, false)) // next exchange
	exs, _ := runSeq(t, js...)
	if len(exs) < 1 {
		t.Fatal("no exchanges")
	}
	if exs[0].Delivery != DeliveryFailed {
		t.Errorf("delivery = %v, want failed after 7 silent attempts", exs[0].Delivery)
	}
	if len(exs[0].Attempts) != 7 {
		t.Errorf("attempts = %d", len(exs[0].Attempts))
	}
}

func TestInterleavedSenders(t *testing.T) {
	sta2 := dot80211.MAC{2, 0, 0, 0, 0, 2}
	dA := dataJF(sta, ap, 1, 1000, false)
	dB := dataJF(sta2, ap, 500, 1500, false)
	aA := ackJF(sta, dA)
	aB := ackJF(sta2, dB)
	exs, _ := runSeq(t, dA, dB, aA, aB)
	if len(exs) != 2 {
		t.Fatalf("got %d exchanges", len(exs))
	}
	for _, ex := range exs {
		if ex.Delivery != DeliveryObserved {
			t.Errorf("sender %v delivery = %v", ex.Transmitter, ex.Delivery)
		}
	}
}

func TestExchangeTimeout(t *testing.T) {
	d1 := dataJF(sta, ap, 120, 1000, false)
	// A frame from another sender 600 ms later advances time enough to
	// expire sta's exchange.
	other := dot80211.MAC{2, 0, 0, 0, 0, 3}
	d2 := dataJF(other, ap, 7, 601_000, false)
	exs, _ := runSeq(t, d1, d2)
	found := false
	for _, ex := range exs {
		if ex.Transmitter == sta {
			found = true
			if ex.Delivery != DeliveryUnknown {
				t.Errorf("timed-out exchange delivery = %v", ex.Delivery)
			}
		}
	}
	if !found {
		t.Error("timed-out exchange never emitted")
	}
}

func TestUnifiedAckOnlyExchange(t *testing.T) {
	// A lone orphan ACK with no surrounding traffic becomes a fully
	// inferred exchange at flush.
	orphan := jf(dot80211.NewAck(sta), 5_000, dot80211.Rate2Mbps)
	exs, st := runSeq(t, orphan)
	if len(exs) != 1 {
		t.Fatalf("got %d exchanges", len(exs))
	}
	if !exs[0].Inferred || exs[0].Delivery != DeliveryInferred {
		t.Error("lone ACK should yield an inferred exchange")
	}
	if st.InferredExchanges != 1 {
		t.Errorf("inferred exchanges = %d", st.InferredExchanges)
	}
}

func TestInvalidJFramesIgnored(t *testing.T) {
	bad := &unify.JFrame{UnivUS: 1000, Valid: false}
	d := dataJF(sta, ap, 130, 2000, false)
	a := ackJF(sta, d)
	exs, st := runSeq(t, bad, d, a)
	if len(exs) != 1 {
		t.Fatalf("got %d exchanges", len(exs))
	}
	if st.JFrames != 2 {
		t.Errorf("processed jframes = %d, want 2 valid", st.JFrames)
	}
}

func TestDeliveryStrings(t *testing.T) {
	for d, want := range map[Delivery]string{
		DeliveryUnknown: "unknown", DeliveryObserved: "delivered",
		DeliveryInferred: "delivered-inferred", DeliveryBroadcast: "broadcast",
		DeliveryFailed: "failed",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q", d, d.String())
		}
	}
}

func TestExchangeDataAccessor(t *testing.T) {
	d := dataJF(sta, ap, 140, 1000, false)
	a := ackJF(sta, d)
	exs, _ := runSeq(t, d, a)
	if exs[0].Data() != d {
		t.Error("Data() should return the first captured data jframe")
	}
	empty := &Exchange{Attempts: []*Attempt{{Inferred: true}}}
	if empty.Data() != nil {
		t.Error("all-inferred exchange has no data jframe")
	}
}

func TestRTSCTSExchangeReconstruction(t *testing.T) {
	// RTS → CTS → DATA → ACK: the full four-frame exchange of §2,
	// reassembled into one attempt.
	rts := dot80211.NewRTS(ap, sta, 500)
	rtsJ := jf(rts, 1000, dot80211.Rate2Mbps)
	cts := dot80211.NewCTSToSelf(sta, 400) // CTS response addressed to the RTS sender
	ctsJ := jf(cts, rtsJ.EndUS()+dot80211.SIFS, dot80211.Rate2Mbps)
	d := dataJF(sta, ap, 200, ctsJ.EndUS()+dot80211.SIFS, false)
	a := ackJF(sta, d)
	exs, _ := runSeq(t, rtsJ, ctsJ, d, a)
	if len(exs) != 1 {
		t.Fatalf("got %d exchanges", len(exs))
	}
	at := exs[0].Attempts[0]
	if at.RTS == nil || at.CTS == nil {
		t.Fatalf("RTS/CTS not attached: rts=%v cts=%v", at.RTS != nil, at.CTS != nil)
	}
	if at.StartUS != 1000 {
		t.Errorf("attempt start = %d, want the RTS time", at.StartUS)
	}
	if exs[0].Delivery != DeliveryObserved {
		t.Errorf("delivery = %v", exs[0].Delivery)
	}
}

func TestStaleRTSExpires(t *testing.T) {
	rts := dot80211.NewRTS(ap, sta, 100)
	rtsJ := jf(rts, 1000, dot80211.Rate2Mbps)
	d := dataJF(sta, ap, 201, 50_000, false) // far beyond the RTS reservation
	a := ackJF(sta, d)
	exs, _ := runSeq(t, rtsJ, d, a)
	if exs[0].Attempts[0].RTS != nil {
		t.Error("stale RTS attached to unrelated data")
	}
}
