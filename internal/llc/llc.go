// Package llc reconstructs link-layer conversations from the unified jframe
// stream (§5.1): it assembles jframes into transmission attempts (an
// optional CTS-to-self, a DATA/management frame, and the trailing ACK,
// associated by MAC address and by the Duration field's prediction of when
// an ACK must land), then composes attempts into frame exchanges using the
// sequence-number FSM (rules R1–R4) plus the paper's heuristics, inferring
// the presence of transmissions the monitors missed.
package llc

import (
	"io"
	"math"

	"repro/internal/dot80211"
	"repro/internal/unify"
)

// Delivery classifies the outcome of a frame exchange as seen (or inferred)
// from the passive vantage point.
type Delivery uint8

// Delivery outcomes.
const (
	// DeliveryUnknown: no ACK observed — the frame may have been lost, or
	// the ACK may simply not have been captured. §5.2's transport oracle
	// disambiguates where TCP state allows.
	DeliveryUnknown Delivery = iota
	// DeliveryObserved: the ACK was captured.
	DeliveryObserved
	// DeliveryInferred: no ACK seen for the final attempt, but subsequent
	// sender behaviour (sequence advance, orphan ACK timing) implies
	// delivery.
	DeliveryInferred
	// DeliveryBroadcast: broadcast/multicast frames have no ARQ; delivery
	// is undefined at the link layer.
	DeliveryBroadcast
	// DeliveryFailed: the sender abandoned the exchange (observed retries
	// exhausted with no delivery evidence).
	DeliveryFailed
)

// String names the delivery verdict.
func (d Delivery) String() string {
	switch d {
	case DeliveryObserved:
		return "delivered"
	case DeliveryInferred:
		return "delivered-inferred"
	case DeliveryBroadcast:
		return "broadcast"
	case DeliveryFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Attempt is one transmission attempt: up to three jframes (CTS-to-self,
// DATA, ACK) associated into a single MAC transaction.
type Attempt struct {
	RTS  *unify.JFrame // optional RTS preceding the exchange
	CTS  *unify.JFrame // optional protection CTS-to-self or RTS response
	Data *unify.JFrame // nil when the data frame itself was inferred
	Ack  *unify.JFrame // optional

	Transmitter dot80211.MAC
	Receiver    dot80211.MAC
	Seq         uint16
	HasSeq      bool
	Retry       bool
	StartUS     int64
	EndUS       int64
	// Inferred marks attempts whose existence or composition required
	// inference (missing DATA deduced from CTS/ACK timing).
	Inferred bool
}

// Acked reports whether this attempt ended with a captured ACK.
func (a *Attempt) Acked() bool { return a.Ack != nil }

// Exchange is a complete frame exchange: every transmission attempt
// (including retransmissions) of one MSDU, ending in delivery or
// abandonment.
type Exchange struct {
	Attempts    []*Attempt
	Transmitter dot80211.MAC
	Receiver    dot80211.MAC
	Seq         uint16
	Broadcast   bool
	Delivery    Delivery
	Inferred    bool
	StartUS     int64
	EndUS       int64
	// CloseUS is the universal time at which the exchange's fate was
	// decided: the closing frame's timestamp for direct closes, the orphan
	// ACK's timestamp for inferred completions, and lastSeen plus the
	// exchange timeout for abandonment. Unlike the moment of emission
	// (which depends on when the reconstructor's clock happened to
	// advance), CloseUS is a pure function of the sender's frame
	// subsequence, so sharded reconstructors stamp identical values and a
	// (CloseUS, ...) sort yields one canonical exchange order.
	CloseUS int64
}

// Data returns the first attempt's data jframe (nil if all inferred).
func (e *Exchange) Data() *unify.JFrame {
	for _, a := range e.Attempts {
		if a.Data != nil {
			return a.Data
		}
	}
	return nil
}

// frames visits every jframe the exchange's attempts hold.
func (e *Exchange) frames(fn func(*unify.JFrame)) {
	for _, a := range e.Attempts {
		if a.RTS != nil {
			fn(a.RTS)
		}
		if a.CTS != nil {
			fn(a.CTS)
		}
		if a.Data != nil {
			fn(a.Data)
		}
		if a.Ack != nil {
			fn(a.Ack)
		}
	}
}

// Retain adds one ownership reference to every jframe the exchange holds,
// for holders that keep the exchange past the observation that delivered
// it (see the unify package's ownership rules).
func (e *Exchange) Retain() { e.frames((*unify.JFrame).Retain) }

// Release drops the exchange's ownership of its jframes. After the last
// holder releases, the frames' storage is recycled; the exchange and its
// attempts must not be touched again.
func (e *Exchange) Release() { e.frames((*unify.JFrame).Release) }

// Retransmissions counts attempts beyond the first.
func (e *Exchange) Retransmissions() int { return len(e.Attempts) - 1 }

// Timing tolerances (µs).
const (
	// ackSlackUS pads the Duration-predicted ACK arrival window to absorb
	// synchronization dispersion (Fig. 4: ≤20 µs for 99% of jframes).
	ackSlackUS = 60
	// ctsGapMaxUS bounds CTS-to-self → DATA separation (SIFS plus slack).
	ctsGapMaxUS = dot80211.SIFS + 60
	// exchangeTimeoutUS closes an exchange with no further activity:
	// "almost all frame exchanges can complete within 500 ms".
	exchangeTimeoutUS = 500_000
)

// Stats counts reconstruction outcomes (§5.1 reports 0.58% of attempts and
// 0.14% of exchanges requiring inference).
type Stats struct {
	JFrames           int64
	Attempts          int64
	InferredAttempts  int64
	Exchanges         int64
	InferredExchanges int64
	OrphanAcks        int64
	FlushedUnassigned int64
}

// Add accumulates another reconstructor's counters (sharded pipelines sum
// per-shard stats into the totals an unsharded run would report).
func (s *Stats) Add(o Stats) {
	s.JFrames += o.JFrames
	s.Attempts += o.Attempts
	s.InferredAttempts += o.InferredAttempts
	s.Exchanges += o.Exchanges
	s.InferredExchanges += o.InferredExchanges
	s.OrphanAcks += o.OrphanAcks
	s.FlushedUnassigned += o.FlushedUnassigned
}

// Reconstructor consumes jframes in universal-time order and emits frame
// exchanges as they close.
type Reconstructor struct {
	Stats Stats

	// pendingCTS holds CTS frames awaiting their protected DATA, keyed by
	// the protected transmitter (CTS-to-self carries it in Addr1; an RTS
	// response is likewise addressed to the data transmitter).
	pendingCTS map[dot80211.MAC]*unify.JFrame
	// pendingRTS holds RTS frames awaiting their CTS/DATA, keyed by the
	// transmitter (RTS carries it in Addr2).
	pendingRTS map[dot80211.MAC]*unify.JFrame
	// awaiting is the open attempt per transmitter whose ACK window is
	// still open.
	awaiting map[dot80211.MAC]*openAttempt
	// senders holds per-transmitter exchange state.
	senders map[dot80211.MAC]*senderState

	out       []*Exchange
	now       int64
	watermark int64
}

type openAttempt struct {
	attempt  *Attempt
	deadline int64 // latest universal time an ACK may arrive
}

type senderState struct {
	cur       *Exchange
	lastSeen  int64
	orphanAck *unify.JFrame // queued ACK awaiting position resolution
}

// NewReconstructor creates an empty reconstructor.
func NewReconstructor() *Reconstructor {
	return &Reconstructor{
		pendingCTS: make(map[dot80211.MAC]*unify.JFrame),
		pendingRTS: make(map[dot80211.MAC]*unify.JFrame),
		awaiting:   make(map[dot80211.MAC]*openAttempt),
		senders:    make(map[dot80211.MAC]*senderState),
		now:        math.MinInt64,
		watermark:  math.MinInt64,
	}
}

// ConversationKey returns the MAC address that keys every piece of
// reconstructor state a valid jframe can touch: the transmitter for
// DATA/management/RTS frames, the addressee (the protected or acknowledged
// transmitter) for CTS and ACK. Feeding each jframe to the reconstructor
// owning its key partitions the stream without changing any per-sender
// outcome, which is the sharding contract the parallel pipeline relies on.
func ConversationKey(j *unify.JFrame) dot80211.MAC {
	f := &j.Frame
	if f.Type == dot80211.TypeControl && f.Subtype != dot80211.SubtypeRTS {
		// CTS carries the protected transmitter in Addr1; ACK carries the
		// acknowledged transmitter in Addr1.
		return f.Addr1
	}
	return f.Addr2
}

// Tick advances the reconstructor's clock without delivering a frame,
// expiring timed-out state exactly as an unrelated sender's frame would in
// an unsharded run. Safe at any time ≤ the next frame's timestamp; outcomes
// never depend on tick cadence (expiry stamps are deterministic).
func (r *Reconstructor) Tick(univUS int64) {
	if univUS <= r.now {
		return
	}
	r.now = univUS
	r.expire()
}

// Watermark returns a lower bound on the CloseUS of every exchange this
// reconstructor can still emit: no future Take or Flush will yield an
// exchange stamped earlier. The parallel pipeline's merger releases heap
// entries strictly below the minimum watermark across shards, keeping the
// merged stream in canonical order while it flows.
func (r *Reconstructor) Watermark() int64 { return r.watermark }

// Process feeds one jframe; completed exchanges become available via Take.
func (r *Reconstructor) Process(j *unify.JFrame) {
	if !j.Valid {
		return // corrupted/phy-only jframes carry no reconstruction weight
	}
	r.Stats.JFrames++
	r.now = j.UnivUS
	r.expire()

	// Ownership: Process borrows j from the caller. Every slot that keeps
	// a frame past this call (pending CTS/RTS, attempts, orphan ACKs)
	// holds exactly one reference, taken on store and dropped when the
	// slot is cleared; attaching a pending frame to an attempt transfers
	// the slot's reference.
	f := &j.Frame
	switch {
	case f.Type == dot80211.TypeControl && f.Subtype == dot80211.SubtypeRTS:
		// RTS: Addr2 is the transmitter about to send data.
		j.Retain()
		if old := r.pendingRTS[f.Addr2]; old != nil {
			old.Release()
		}
		r.pendingRTS[f.Addr2] = j
	case f.IsCTS():
		// CTS-to-self carries the protecting transmitter in Addr1; a CTS
		// answering an RTS is addressed to the data transmitter the same
		// way, so one pending slot serves both.
		j.Retain()
		if old := r.pendingCTS[f.Addr1]; old != nil {
			old.Release()
		}
		r.pendingCTS[f.Addr1] = j
	case f.IsACK():
		r.handleAck(j)
	case f.IsData() || f.Type == dot80211.TypeManagement:
		r.handleData(j)
	}
}

// expire closes ACK windows and exchanges that have timed out by r.now, and
// recomputes the watermark from the remaining open state. Expiry timing is
// result-neutral: whenever a sender's next frame arrives, Process runs
// expire first, so state past its deadline is gone by then whether or not
// an intervening frame (or Tick) cleared it earlier — and timed-out closes
// are stamped with their deadline, not with r.now.
func (r *Reconstructor) expire() {
	for tx, oa := range r.awaiting {
		if r.now > oa.deadline {
			delete(r.awaiting, tx)
		}
	}
	wm := r.now
	for tx, ss := range r.senders {
		// An orphan ACK whose sender has no open exchange can only ever
		// resolve to a fully inferred exchange (resolveOrphan runs before a
		// new exchange opens); once it ages past the exchange timeout, emit
		// that now instead of pinning the watermark until the next frame.
		if ss.orphanAck != nil && ss.cur == nil && r.now-ss.orphanAck.UnivUS > exchangeTimeoutUS {
			r.resolveOrphan(ss, 0)
		}
		if ss.cur != nil && r.now-ss.lastSeen > exchangeTimeoutUS {
			r.closeExchange(ss, DeliveryUnknown, ss.lastSeen+exchangeTimeoutUS)
		}
		if ss.cur == nil && ss.orphanAck == nil && r.now-ss.lastSeen > exchangeTimeoutUS {
			delete(r.senders, tx)
			continue
		}
		if ss.cur != nil {
			if s := ss.lastSeen + exchangeTimeoutUS; s < wm {
				wm = s
			}
		}
		if ss.orphanAck != nil {
			if s := ss.orphanAck.UnivUS; s < wm {
				wm = s
			}
		}
	}
	r.watermark = wm
	for tx, cts := range r.pendingCTS {
		// The Duration field reserves the medium from the frame's end.
		if r.now > cts.EndUS()+int64(cts.Frame.Duration)+ackSlackUS {
			delete(r.pendingCTS, tx)
			cts.Release()
		}
	}
	for tx, rts := range r.pendingRTS {
		if r.now > rts.EndUS()+int64(rts.Frame.Duration)+ackSlackUS {
			delete(r.pendingRTS, tx)
			rts.Release()
		}
	}
}

// handleData starts a transmission attempt for a DATA or management frame.
func (r *Reconstructor) handleData(j *unify.JFrame) {
	f := &j.Frame
	tx := f.Addr2
	j.Retain()
	a := &Attempt{
		Data:        j,
		Transmitter: tx,
		Receiver:    f.Addr1,
		Seq:         f.Seq,
		HasSeq:      true,
		Retry:       f.Retry(),
		StartUS:     j.UnivUS,
		EndUS:       j.EndUS(),
	}
	// Attach a preceding CTS (protection or RTS response) if timing fits
	// (the pending slot's reference transfers to the attempt), and the RTS
	// before that. Either way the pending slot empties: an unattachable
	// frame is dropped.
	if cts, ok := r.pendingCTS[tx]; ok {
		delete(r.pendingCTS, tx)
		if gap := j.UnivUS - cts.EndUS(); gap >= 0 && gap <= ctsGapMaxUS {
			a.CTS = cts
			a.StartUS = cts.UnivUS
		} else {
			cts.Release()
		}
	}
	if rts, ok := r.pendingRTS[tx]; ok {
		delete(r.pendingRTS, tx)
		start := j.UnivUS
		if a.CTS != nil {
			start = a.CTS.UnivUS
		}
		if gap := start - rts.EndUS(); gap >= 0 && gap <= ctsGapMaxUS {
			a.RTS = rts
			a.StartUS = rts.UnivUS
		} else {
			rts.Release()
		}
	}
	r.Stats.Attempts++

	if f.Addr1.IsMulticast() {
		// R1: broadcast — attempt and exchange are identical.
		ss := r.sender(tx)
		r.assignAttempt(ss, a, true)
		return
	}
	// Unicast: open the ACK window predicted by the Duration field. If the
	// Duration is absent (0), fall back to SIFS + slowest ACK.
	window := int64(f.Duration)
	if window == 0 {
		window = dot80211.SIFS + 304 // 1 Mbps long-preamble ACK
	}
	a.EndUS = j.EndUS()
	r.awaiting[tx] = &openAttempt{attempt: a, deadline: j.EndUS() + window + ackSlackUS}
	ss := r.sender(tx)
	r.assignAttempt(ss, a, false)
}

// handleAck matches an ACK to the open attempt of its addressee, or queues
// it as an orphan for later inference.
func (r *Reconstructor) handleAck(j *unify.JFrame) {
	dataTx := j.Frame.Addr1 // the station being acknowledged
	if oa, ok := r.awaiting[dataTx]; ok && j.UnivUS <= oa.deadline {
		j.Retain()
		oa.attempt.Ack = j
		oa.attempt.EndUS = j.EndUS()
		delete(r.awaiting, dataTx)
		// A captured ACK completes the exchange.
		if ss := r.senders[dataTx]; ss != nil && ss.cur != nil {
			ss.lastSeen = r.now
			r.closeExchange(ss, DeliveryObserved, r.now)
		}
		return
	}
	// Orphan: the DATA (or the whole attempt) was not captured. Queue it
	// until more frames from this sender resolve its position (§5.1).
	r.Stats.OrphanAcks++
	ss := r.sender(dataTx)
	j.Retain()
	if ss.orphanAck != nil {
		ss.orphanAck.Release()
	}
	ss.orphanAck = j
	ss.lastSeen = r.now
}

// sender returns (creating) per-transmitter state.
func (r *Reconstructor) sender(tx dot80211.MAC) *senderState {
	ss := r.senders[tx]
	if ss == nil {
		ss = &senderState{}
		r.senders[tx] = ss
	}
	return ss
}

// assignAttempt routes an attempt into the sender's exchange stream,
// applying R1–R4.
func (r *Reconstructor) assignAttempt(ss *senderState, a *Attempt, broadcast bool) {
	ss.lastSeen = r.now

	if broadcast {
		// R1: close any open exchange first (the sender moved on).
		if ss.cur != nil {
			r.resolveOrphan(ss, a.Seq)
			if ss.cur != nil {
				r.closeExchange(ss, DeliveryUnknown, r.now)
			}
		}
		ex := &Exchange{
			Attempts: []*Attempt{a}, Transmitter: a.Transmitter,
			Receiver: a.Receiver, Seq: a.Seq, Broadcast: true,
			Delivery: DeliveryBroadcast, StartUS: a.StartUS, EndUS: a.EndUS,
			CloseUS: r.now,
		}
		r.emit(ex)
		return
	}

	if ss.cur != nil {
		delta := int((a.Seq - ss.cur.Seq) & 0x0fff)
		switch {
		case delta == 0:
			// R2: retransmission of the current exchange.
			ss.cur.Attempts = append(ss.cur.Attempts, a)
			ss.cur.EndUS = a.EndUS
			return
		case delta == 1:
			// R3: new exchange. Resolve any queued orphan ACK first: it
			// belonged to a missing final retry of the current exchange.
			r.resolveOrphan(ss, a.Seq)
			if ss.cur != nil {
				r.closeExchange(ss, DeliveryUnknown, r.now)
			}
		default:
			// R4: sequence gap — no inferences; flush.
			if ss.orphanAck != nil {
				ss.orphanAck.Release()
				ss.orphanAck = nil
				r.Stats.FlushedUnassigned++
			}
			r.closeExchange(ss, DeliveryUnknown, r.now)
		}
	} else {
		r.resolveOrphan(ss, a.Seq)
	}
	ss.cur = &Exchange{
		Attempts: []*Attempt{a}, Transmitter: a.Transmitter,
		Receiver: a.Receiver, Seq: a.Seq,
		StartUS: a.StartUS, EndUS: a.EndUS,
	}
}

// resolveOrphan decides what a queued orphan ACK meant, given that the
// sender's next sequence number is nextSeq. If an exchange is open and the
// orphan arrived within its window, the missing data frame was a (final)
// retry of that exchange: the exchange completes as delivered-inferred,
// with an inferred attempt holding the ACK. (Heuristics: data frames are
// more likely lost than ACKs; exchanges complete within 500 ms.)
func (r *Reconstructor) resolveOrphan(ss *senderState, nextSeq uint16) {
	if ss.orphanAck == nil {
		return
	}
	// The orphan slot's frame reference transfers to the inferred attempt
	// built below (both branches store the ack).
	ack := ss.orphanAck
	ss.orphanAck = nil
	if ss.cur != nil && ack.UnivUS-ss.cur.StartUS < exchangeTimeoutUS &&
		ack.UnivUS >= ss.cur.StartUS {
		inf := &Attempt{
			Ack:         ack,
			Transmitter: ss.cur.Transmitter,
			Receiver:    ss.cur.Receiver,
			Seq:         ss.cur.Seq, HasSeq: true,
			StartUS: ack.UnivUS, EndUS: ack.EndUS(),
			Inferred: true,
		}
		r.Stats.Attempts++
		r.Stats.InferredAttempts++
		ss.cur.Attempts = append(ss.cur.Attempts, inf)
		ss.cur.EndUS = inf.EndUS
		ss.cur.Inferred = true
		// The exchange's fate was sealed when the orphan ACK landed; stamp
		// that, not the (cadence-dependent) moment the inference ran.
		r.closeExchange(ss, DeliveryInferred, ack.UnivUS)
		return
	}
	// No open exchange to bind to: the entire exchange (data + all
	// context) was missed except this ACK. Emit a fully inferred exchange.
	inf := &Attempt{
		Ack:         ack,
		Transmitter: ack.Frame.Addr1,
		StartUS:     ack.UnivUS, EndUS: ack.EndUS(),
		Inferred: true,
	}
	r.Stats.Attempts++
	r.Stats.InferredAttempts++
	ex := &Exchange{
		Attempts: []*Attempt{inf}, Transmitter: ack.Frame.Addr1,
		Delivery: DeliveryInferred, Inferred: true,
		StartUS: inf.StartUS, EndUS: inf.EndUS,
		CloseUS: ack.UnivUS,
	}
	r.Stats.InferredExchanges++
	r.emit(ex)
}

// closeExchange finalizes the sender's current exchange, stamping closeUS
// (which call sites derive only from the sender's own frames, never from
// when the reconstructor's clock happened to advance).
func (r *Reconstructor) closeExchange(ss *senderState, verdict Delivery, closeUS int64) {
	ex := ss.cur
	if ex == nil {
		return
	}
	ex.CloseUS = closeUS
	ss.cur = nil
	// An observed ACK on any attempt upgrades the verdict.
	for _, a := range ex.Attempts {
		if a.Acked() && !a.Inferred {
			verdict = DeliveryObserved
		}
	}
	if verdict == DeliveryUnknown {
		// Retries exhausted? If we saw a long retry train with no ACK the
		// exchange very likely failed; with few attempts it is ambiguous.
		if len(ex.Attempts) >= 7 {
			verdict = DeliveryFailed
		}
	}
	ex.Delivery = verdict
	if ex.Inferred {
		r.Stats.InferredExchanges++
	}
	r.emit(ex)
}

// emit queues a finished exchange for Take.
func (r *Reconstructor) emit(ex *Exchange) {
	r.Stats.Exchanges++
	r.out = append(r.out, ex)
}

// Take returns exchanges completed so far and clears the buffer.
func (r *Reconstructor) Take() []*Exchange {
	out := r.out
	r.out = nil
	return out
}

// Flush closes every open exchange at end of trace and returns the
// remainder. Flushed exchanges are stamped as if the stream had run on to
// their timeout, so truncating a trace at different points (or sharding it)
// yields the same stamps.
func (r *Reconstructor) Flush() []*Exchange {
	for _, ss := range r.senders {
		r.resolveOrphan(ss, 0)
		if ss.cur != nil {
			r.closeExchange(ss, DeliveryUnknown, ss.lastSeen+exchangeTimeoutUS)
		}
	}
	r.watermark = math.MaxInt64
	return r.Take()
}

// Run drains a jframe iterator through the reconstructor, returning all
// exchanges in completion order.
func Run(next func() (*unify.JFrame, error)) ([]*Exchange, *Stats, error) {
	r := NewReconstructor()
	var out []*Exchange
	for {
		j, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, &r.Stats, err
		}
		r.Process(j)
		out = append(out, r.Take()...)
	}
	out = append(out, r.Flush()...)
	return out, &r.Stats, nil
}
