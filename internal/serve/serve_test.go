package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/sim"
)

// liveRun drives a small scenario through the serial pipeline with a
// Monitor as the only core pass, the way jigd runs it.
func liveRun(t *testing.T, windowUS int64) (*serve.Monitor, []int64) {
	t.Helper()
	cfg := scenario.Default()
	cfg.Pods, cfg.APs, cfg.Clients = 4, 4, 6
	cfg.Day = 20 * sim.Second
	cfg.Seed = 5
	out, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	apSet := scenario.APSet(out.APs)
	passes, err := analysis.NewPasses("all", analysis.PassParams{
		SlotUS:     windowUS,
		MinPackets: 50,
		IsAP:       func(m dot80211.MAC) bool { return apSet[m] },
		Out:        out,
	})
	if err != nil {
		t.Fatal(err)
	}
	var closes []int64
	mon, err := serve.NewMonitor(serve.MonitorConfig{
		WindowUS: windowUS,
		Passes:   passes,
		OnWindow: func(endUS int64) { closes = append(closes, endUS) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.DefaultConfig()
	ccfg.Workers = 1
	ccfg.SnapshotEveryUS = windowUS
	ccfg.Passes = []core.Pass{mon}
	if _, err := core.Run(core.TracesFromBuffers(out.Traces), out.ClockGroups, ccfg, nil); err != nil {
		t.Fatal(err)
	}
	mon.Flush()
	return mon, closes
}

func TestMonitorWindows(t *testing.T) {
	const windowUS = 4_000_000
	mon, closes := liveRun(t, windowUS)

	if !mon.Healthy() {
		t.Fatal("monitor not healthy after a full run")
	}
	// ~20 compressed seconds at 4 s windows: at least 3 closes (the tail
	// window closes in Flush).
	if len(closes) < 3 {
		t.Fatalf("window closes = %v, want >= 3", closes)
	}
	for i := 1; i < len(closes); i++ {
		if closes[i] <= closes[i-1] {
			t.Fatalf("window ends not increasing: %v", closes)
		}
	}

	sum := mon.Summary()
	if sum.WindowsClosed != int64(len(closes)) {
		t.Errorf("WindowsClosed = %d, want %d", sum.WindowsClosed, len(closes))
	}
	if sum.Unify.JFrames == 0 {
		t.Error("summary unify stats empty; SetResult snapshots not forwarded")
	}
	if sum.LastWindowEnd != closes[len(closes)-1] {
		t.Errorf("LastWindowEnd = %d, want %d", sum.LastWindowEnd, closes[len(closes)-1])
	}

	for _, name := range mon.PassNames() {
		rep, ok := mon.Report(name)
		if !ok {
			t.Errorf("no report for pass %q", name)
			continue
		}
		if rep.Pass != name {
			t.Errorf("report pass = %q, want %q", rep.Pass, name)
		}
		if rep.WindowEndUS <= rep.WindowStartUS {
			t.Errorf("%s: degenerate window [%d, %d]", name, rep.WindowStartUS, rep.WindowEndUS)
		}
		if _, err := json.Marshal(rep); err != nil {
			t.Errorf("%s: report does not marshal: %v", name, err)
		}
	}

	c := mon.Metrics()
	if c.FramesTotal == 0 || c.ExchangesTotal == 0 {
		t.Errorf("counters empty: %+v", c)
	}
}

func TestMonitorRejectsBadConfig(t *testing.T) {
	if _, err := serve.NewMonitor(serve.MonitorConfig{WindowUS: 0}); err == nil {
		t.Error("zero window must fail")
	}
	if _, err := serve.NewMonitor(serve.MonitorConfig{WindowUS: 1}); err == nil {
		t.Error("no passes must fail")
	}
}

// TestServerEndpoints exercises the HTTP surface end to end in-process:
// all four endpoints over a finished live run.
func TestServerEndpoints(t *testing.T) {
	mon, _ := liveRun(t, 4_000_000)
	srv := httptest.NewServer(serve.NewServer(mon, serve.Info{Dir: "test", Radios: []int32{0, 1}}))
	defer srv.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content type %q", path, ct)
		}
		return resp.StatusCode, b
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d", code)
	}

	code, body := get("/summary")
	if code != http.StatusOK {
		t.Fatalf("/summary = %d", code)
	}
	var sum map[string]any
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatalf("/summary not JSON: %v", err)
	}
	if sum["windows_closed"].(float64) < 3 {
		t.Errorf("/summary windows_closed = %v", sum["windows_closed"])
	}

	for _, name := range mon.PassNames() {
		code, body := get("/reports/" + name)
		if code != http.StatusOK {
			t.Errorf("/reports/%s = %d", name, code)
			continue
		}
		var rep map[string]any
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Errorf("/reports/%s not JSON: %v", name, err)
			continue
		}
		if rep["pass"] != name {
			t.Errorf("/reports/%s pass = %v", name, rep["pass"])
		}
		if _, ok := rep["rows"]; !ok {
			t.Errorf("/reports/%s has no rows", name)
		}
	}

	if code, _ := get("/reports/nonesuch"); code != http.StatusNotFound {
		t.Errorf("/reports/nonesuch = %d, want 404", code)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	var met map[string]any
	if err := json.Unmarshal(body, &met); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	for _, key := range []string{"frames_total", "frames_per_sec", "heap_alloc_bytes", "watermark_lag_us"} {
		if _, ok := met[key]; !ok {
			t.Errorf("/metrics missing %q", key)
		}
	}
}

// TestHealthzBeforeFirstWindow pins the readiness gate: a fresh monitor
// serves 503 until a window closes.
func TestHealthzBeforeFirstWindow(t *testing.T) {
	passes, err := analysis.NewPasses("summary", analysis.PassParams{SlotUS: 1})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := serve.NewMonitor(serve.MonitorConfig{WindowUS: 1_000_000, Passes: passes})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.NewServer(mon, serve.Info{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz before first window = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/reports/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/reports/summary before first window = %d, want 503", resp.StatusCode)
	}
}
