// Package serve hosts jigd's live-monitoring layer: a Monitor that rides
// inside the pipeline as a core.Pass and publishes windowed analysis
// reports, plus the HTTP surface over it.
//
// # Watermark and eviction contract
//
// The Monitor is the driver side of analysis.WindowedPass. It observes the
// raw jframe stream to maintain a frontier (the maximum UnivUS emitted so
// far) and buffers every event whose timestamp lies beyond the open
// report window. Because the unifier's emission order can locally invert
// by up to its search window, a window [start, end] only closes once the
// frontier reaches end + SlackUS: at that point every jframe with UnivUS
// <= end has been emitted, the buffered window events are delivered in
// arrival order, and each pass's FinalizeWindow(end) is called followed
// by Evict(end). Passes therefore never observe an event beyond the
// boundary before the boundary's FinalizeWindow — the precondition that
// makes windowed reports equal one-shot reports over the window's
// subsequence (see TestWindowedPassParity). Eviction trails the delivery
// frontier by construction, so sliding state (the interference overlap
// index) is pruned only behind what has already been consumed.
//
// All pipeline-facing methods (ObserveJFrame, ObserveExchange, SetResult,
// Flush) run on the pipeline goroutine, serialized by core's Pass
// contract. The read side (Healthy, Summary, Report, Metrics) is safe
// from any goroutine: closed-window reports are detached snapshots
// published under a lock, and counters are atomics — HTTP handlers never
// touch pass state.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/unify"
)

// DefaultSlackUS is how far the frontier must clear a window boundary
// before the window closes. It must cover BOTH reordering sources between
// stream time and delivery: the unifier's emission-order inversion (its
// search window, ~100 ms) and the reconstructor's watermark lag (exchanges
// stay open up to the 500 ms exchange timeout before their close releases,
// and core releases them only after observing the jframe that advanced the
// watermark). 1 s covers both with margin; configuring less risks an
// exchange being delivered after its window already closed.
const DefaultSlackUS = 1_000_000

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	// WindowUS is the report window length in universal microseconds.
	WindowUS int64
	// SlackUS delays window closes past the boundary to cover emission
	// reordering (0: DefaultSlackUS).
	SlackUS int64
	// Passes are the analyses to serve; every one must implement
	// analysis.WindowedPass.
	Passes []analysis.Pass
	// OnWindow, when non-nil, runs on the pipeline goroutine after each
	// window closes — the hook jigd logs from and jigbench samples heap
	// under.
	OnWindow func(endUS int64)
}

// WindowReport is one pass's report for one closed window — the Section
// encoding jiganalyze -json emits, plus the window bounds.
type WindowReport struct {
	analysis.Section
	WindowStartUS int64 `json:"window_start_us"`
	WindowEndUS   int64 `json:"window_end_us"`
}

// pendingEvent is one buffered stream event past the open window's end.
// The buffer slot holds a reference on whichever object it carries
// (retained on append, released after the pump or Flush delivers it).
type pendingEvent struct {
	j  *unify.JFrame
	ex *llc.Exchange
}

// retain takes the buffer slot's reference.
func (e pendingEvent) retain() {
	if e.j != nil {
		e.j.Retain()
	} else {
		e.ex.Retain()
	}
}

// release drops the buffer slot's reference.
func (e pendingEvent) release() {
	if e.j != nil {
		e.j.Release()
	} else {
		e.ex.Release()
	}
}

func (e pendingEvent) timeUS() int64 {
	if e.j != nil {
		return e.j.UnivUS
	}
	return e.ex.CloseUS
}

// Monitor drives windowed passes inside a live pipeline run and publishes
// their reports. It implements core.Pass and core.ResultSink; run it as
// the only entry in core.Config.Passes on the serial path (jigd does).
type Monitor struct {
	windowUS int64
	slackUS  int64
	passes   []analysis.WindowedPass
	onWindow func(endUS int64)

	// Pipeline-goroutine state.
	started         bool
	winStartUS      int64
	winEndUS        int64
	frontierUS      int64
	pending         []pendingEvent
	winHasData      bool
	lastClosedEndUS int64
	lastResult      *core.Result

	// Cross-goroutine state.
	framesTotal    atomic.Int64
	exchangesTotal atomic.Int64
	frontierAtomic atomic.Int64
	deliveredUS    atomic.Int64 // exchange delivery frontier (watermark lag's far side)
	windowsClosed  atomic.Int64

	mu      sync.RWMutex
	reports map[string]WindowReport
	stats   SummaryStats
}

// SummaryStats is the cumulative pipeline view /summary serves; a
// detached copy refreshed at every result snapshot and window close.
type SummaryStats struct {
	Unify         unify.Stats `json:"unify"`
	LLC           llc.Stats   `json:"llc"`
	WindowsClosed int64       `json:"windows_closed"`
	WindowUS      int64       `json:"window_us"`
	LastWindowEnd int64       `json:"last_window_end_us"`
	Passes        []string    `json:"passes"`
}

// NewMonitor validates the pass set and builds a Monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if cfg.WindowUS <= 0 {
		return nil, fmt.Errorf("serve: WindowUS must be positive, have %d", cfg.WindowUS)
	}
	if cfg.SlackUS <= 0 {
		cfg.SlackUS = DefaultSlackUS
	}
	if len(cfg.Passes) == 0 {
		return nil, fmt.Errorf("serve: no passes")
	}
	m := &Monitor{
		windowUS: cfg.WindowUS,
		slackUS:  cfg.SlackUS,
		onWindow: cfg.OnWindow,
		reports:  make(map[string]WindowReport, len(cfg.Passes)),
	}
	for _, p := range cfg.Passes {
		wp, ok := p.(analysis.WindowedPass)
		if !ok {
			return nil, fmt.Errorf("serve: pass %q (%T) does not implement WindowedPass", p.Name(), p)
		}
		m.passes = append(m.passes, wp)
	}
	return m, nil
}

// PassNames lists the served passes in registry order.
func (m *Monitor) PassNames() []string {
	names := make([]string, len(m.passes))
	for i, p := range m.passes {
		names[i] = p.Name()
	}
	return names
}

// ObserveJFrame implements core.Pass. Window closes are pumped BEFORE the
// incoming jframe advances the frontier: core releases an iteration's
// exchanges only after delivering its jframe, so the frontier as of the
// previous jframe is the newest time for which "every exchange at or
// before winEnd has been delivered" is known to hold (given SlackUS covers
// the watermark lag). Pumping against the pre-update frontier — and never
// from the exchange callback — keeps a late-released exchange from landing
// after its window closed, even across idle gaps in the trace.
func (m *Monitor) ObserveJFrame(j *unify.JFrame) {
	m.framesTotal.Add(1)
	m.pump()
	if !m.started {
		m.started = true
		m.winStartUS = j.UnivUS
		m.winEndUS = j.UnivUS + m.windowUS
	}
	if j.UnivUS > m.frontierUS {
		m.frontierUS = j.UnivUS
		m.frontierAtomic.Store(j.UnivUS)
	}
	if j.UnivUS <= m.winEndUS {
		m.deliverJFrame(j)
	} else {
		e := pendingEvent{j: j}
		e.retain()
		m.pending = append(m.pending, e)
	}
}

// ObserveExchange implements core.Pass. Exchanges arrive in canonical
// close order; anything beyond the open window waits for the pump (see
// ObserveJFrame for why the exchange callback itself never closes
// windows).
func (m *Monitor) ObserveExchange(ex *llc.Exchange) {
	m.exchangesTotal.Add(1)
	if ex.CloseUS <= m.winEndUS {
		m.deliverExchange(ex)
	} else {
		e := pendingEvent{ex: ex}
		e.retain()
		m.pending = append(m.pending, e)
	}
}

// SetResult implements core.ResultSink: forwarded to every pass (their
// result-derived report fields refresh), and the cumulative stats
// snapshot is republished. With core.Config.SnapshotEveryUS set this
// fires throughout the run, not only at the end.
func (m *Monitor) SetResult(res *core.Result) {
	m.lastResult = res
	for _, p := range m.passes {
		if rs, ok := analysis.Pass(p).(core.ResultSink); ok {
			rs.SetResult(res)
		}
	}
	m.publishStats()
}

func (m *Monitor) deliverJFrame(j *unify.JFrame) {
	m.winHasData = true
	for _, p := range m.passes {
		p.ObserveJFrame(j)
	}
}

func (m *Monitor) deliverExchange(ex *llc.Exchange) {
	m.winHasData = true
	m.deliveredUS.Store(ex.CloseUS)
	for _, p := range m.passes {
		p.ObserveExchange(ex)
	}
}

// pump closes every window the frontier has cleared.
func (m *Monitor) pump() {
	for m.started && m.frontierUS >= m.winEndUS+m.slackUS {
		m.closeWindow(m.winEndUS)
		m.winStartUS = m.winEndUS
		m.winEndUS += m.windowUS
		// Release the buffered events now inside the open window, in
		// arrival order.
		kept := m.pending[:0]
		for _, e := range m.pending {
			if e.timeUS() <= m.winEndUS {
				if e.j != nil {
					m.deliverJFrame(e.j)
				} else {
					m.deliverExchange(e.ex)
				}
				e.release()
			} else {
				kept = append(kept, e)
			}
		}
		for i := len(kept); i < len(m.pending); i++ {
			m.pending[i] = pendingEvent{}
		}
		m.pending = kept
	}
}

// closeWindow finalizes every pass at upToUS and publishes the reports.
func (m *Monitor) closeWindow(upToUS int64) {
	snaps := make(map[string]WindowReport, len(m.passes))
	for _, p := range m.passes {
		rep := p.FinalizeWindow(upToUS)
		sec, err := analysis.SectionJSON(p.Name(), rep)
		if err != nil {
			// Registry drift: serve an explicit error section rather than
			// dropping the pass silently.
			sec = analysis.Section{Pass: p.Name(), Summary: err.Error(), Rows: []struct{}{}}
		}
		snaps[p.Name()] = WindowReport{
			Section:       sec,
			WindowStartUS: m.winStartUS,
			WindowEndUS:   upToUS,
		}
		p.Evict(upToUS)
	}
	m.windowsClosed.Add(1)
	m.winHasData = false
	m.lastClosedEndUS = upToUS
	m.mu.Lock()
	for name, r := range snaps {
		m.reports[name] = r
	}
	m.mu.Unlock()
	m.publishStats()
	if m.onWindow != nil {
		m.onWindow(upToUS)
	}
}

// publishStats refreshes the /summary snapshot from the latest result.
func (m *Monitor) publishStats() {
	s := SummaryStats{
		WindowsClosed: m.windowsClosed.Load(),
		WindowUS:      m.windowUS,
		LastWindowEnd: m.lastClosedEndUS,
		Passes:        m.PassNames(),
	}
	if m.lastResult != nil {
		s.Unify = m.lastResult.UnifyStats
		s.LLC = m.lastResult.LLCStats
	}
	m.mu.Lock()
	m.stats = s
	m.mu.Unlock()
}

// Flush closes the trailing partial window after the pipeline drains.
// Call it once, after core.RunFrom returns (SetResult has already fired
// with the final stats by then).
func (m *Monitor) Flush() {
	if !m.started {
		return
	}
	for _, e := range m.pending {
		if e.j != nil {
			m.deliverJFrame(e.j)
		} else {
			m.deliverExchange(e.ex)
		}
		e.release()
	}
	m.pending = nil
	end := m.winEndUS
	if m.frontierUS > end {
		end = m.frontierUS
	}
	if m.winHasData {
		m.closeWindow(end)
	}
}

// Healthy reports whether at least one window has closed — the readiness
// signal /healthz serves.
func (m *Monitor) Healthy() bool { return m.windowsClosed.Load() > 0 }

// Summary returns the cumulative stats snapshot.
func (m *Monitor) Summary() SummaryStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// Report returns the latest closed-window report for one pass.
func (m *Monitor) Report(pass string) (WindowReport, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r, ok := m.reports[pass]
	return r, ok
}

// Counters is the live progress view /metrics serves.
type Counters struct {
	FramesTotal    int64 `json:"frames_total"`
	ExchangesTotal int64 `json:"exchanges_total"`
	FrontierUS     int64 `json:"frontier_us"`
	DeliveredUS    int64 `json:"delivered_us"`
	// WatermarkLagUS is how far exchange delivery trails the jframe
	// frontier — the pipeline's in-flight span.
	WatermarkLagUS int64 `json:"watermark_lag_us"`
	WindowsClosed  int64 `json:"windows_closed"`
}

// Metrics returns the current counters.
func (m *Monitor) Metrics() Counters {
	c := Counters{
		FramesTotal:    m.framesTotal.Load(),
		ExchangesTotal: m.exchangesTotal.Load(),
		FrontierUS:     m.frontierAtomic.Load(),
		DeliveredUS:    m.deliveredUS.Load(),
		WindowsClosed:  m.windowsClosed.Load(),
	}
	if c.FrontierUS > c.DeliveredUS && c.DeliveredUS > 0 {
		c.WatermarkLagUS = c.FrontierUS - c.DeliveredUS
	}
	return c
}
