//jiglint:allow wallclock (HTTP edge: uptime and rate metrics are wall-clock by nature)

package serve

import (
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"time"
)

// Info is the static daemon identity /summary reports alongside the
// pipeline stats.
type Info struct {
	Dir    string  `json:"dir"`
	Radios []int32 `json:"radios"`
}

// Server is jigd's HTTP surface over a Monitor. Endpoints:
//
//	GET /healthz          200 once the first window has closed, else 503
//	GET /summary          cumulative pipeline stats + daemon identity
//	GET /reports/<pass>   latest closed-window Section for one pass
//	GET /metrics          live counters, rates and heap stats
//
// All responses are JSON. The handlers read only detached snapshots and
// atomics, never pass state, so they are safe while the pipeline runs.
type Server struct {
	mon     *Monitor
	info    Info
	started time.Time
	mux     *http.ServeMux
}

// NewServer builds the HTTP surface. The returned Server is an
// http.Handler; wrap it in an http.Server to listen.
func NewServer(mon *Monitor, info Info) *Server {
	s := &Server{mon: mon, info: info, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/summary", s.handleSummary)
	mux.HandleFunc("/reports/", s.handleReport)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON encodes one response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.mon.Healthy() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "waiting", "detail": "no analysis window closed yet",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Info Info `json:"info"`
		SummaryStats
		UptimeSec float64 `json:"uptime_sec"`
	}{s.info, s.mon.Summary(), time.Since(s.started).Seconds()})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	pass := strings.TrimPrefix(r.URL.Path, "/reports/")
	if pass == "" {
		writeJSON(w, http.StatusOK, map[string]any{"passes": s.mon.PassNames()})
		return
	}
	rep, ok := s.mon.Report(pass)
	if !ok {
		known := false
		for _, name := range s.mon.PassNames() {
			if name == pass {
				known = true
				break
			}
		}
		if !known {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"error": "unknown pass", "passes": s.mon.PassNames(),
			})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "no window closed yet for pass", "pass": pass,
		})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// metricsBody is the /metrics response.
type metricsBody struct {
	Counters
	FramesPerSec float64 `json:"frames_per_sec"`
	UptimeSec    float64 `json:"uptime_sec"`
	HeapAllocB   uint64  `json:"heap_alloc_bytes"`
	HeapSysB     uint64  `json:"heap_sys_bytes"`
	NumGC        uint32  `json:"num_gc"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c := s.mon.Metrics()
	up := time.Since(s.started).Seconds()
	body := metricsBody{
		Counters:   c,
		UptimeSec:  up,
		HeapAllocB: ms.HeapAlloc, HeapSysB: ms.HeapSys, NumGC: ms.NumGC,
	}
	if up > 0 {
		body.FramesPerSec = float64(c.FramesTotal) / up
	}
	writeJSON(w, http.StatusOK, body)
}
