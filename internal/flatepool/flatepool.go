// Package flatepool pools DEFLATE codec state across the repo's block
// formats (the tracefile capture format and hmerge's .jfs intermediate
// streams). A flate.Writer carries large internal hash/window state and a
// flate reader a sliding window; allocating either per 64 KB block used
// to dominate the codec paths' allocations. Both are Reset onto their
// next destination/source when taken from a pool, so steady-state block
// compression and decompression allocate nothing.
package flatepool

import (
	"compress/flate"
	"io"
	"sync"
)

var writers = sync.Pool{}

// GetWriter returns a pooled DEFLATE compressor reset onto dst,
// compressing at flate.BestSpeed (every block format here trades ratio
// for throughput). Return it with PutWriter after Close.
func GetWriter(dst io.Writer) *flate.Writer {
	if fw, ok := writers.Get().(*flate.Writer); ok {
		fw.Reset(dst)
		return fw
	}
	fw, err := flate.NewWriter(dst, flate.BestSpeed)
	if err != nil {
		// BestSpeed is a valid level; NewWriter cannot fail on it.
		panic(err)
	}
	return fw
}

// PutWriter recycles a compressor obtained from GetWriter.
func PutWriter(fw *flate.Writer) { writers.Put(fw) }

var readers = sync.Pool{}

// GetReader returns a pooled DEFLATE decompressor reset onto src (the
// stdlib reader's flate.Resetter rewinds one onto the next block's
// bytes). Return it with PutReader. The result also implements
// flate.Resetter, so a caller holding one across blocks can Reset it
// directly.
func GetReader(src io.Reader) io.ReadCloser {
	if fr, ok := readers.Get().(io.ReadCloser); ok {
		if err := fr.(flate.Resetter).Reset(src, nil); err == nil {
			return fr
		}
	}
	return flate.NewReader(src)
}

// PutReader recycles a decompressor obtained from GetReader; nil is
// ignored so error paths can return unconditionally.
func PutReader(fr io.ReadCloser) {
	if fr != nil {
		readers.Put(fr)
	}
}
