package scenario_test

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tracefile"
)

// replaySourceDir spills a small scenario into a trace directory.
func replaySourceDir(t *testing.T) (string, *scenario.Output) {
	t.Helper()
	cfg := scenario.Default()
	cfg.Pods, cfg.APs, cfg.Clients = 3, 3, 4
	cfg.Day = 10 * sim.Second
	cfg.Seed = 4
	out, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for r, buf := range out.Traces {
		if err := os.WriteFile(tracefile.TracePath(dir, r), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := scenario.WriteMeta(dir, scenario.MetaFromOutput(out)); err != nil {
		t.Fatal(err)
	}
	return dir, out
}

// readAllVia drains one radio through a TraceSet.
func readAllVia(t *testing.T, ts *tracefile.TraceSet, radio int32) []tracefile.Record {
	t.Helper()
	rc, err := ts.Open(radio)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	recs, err := tracefile.ReadAll(rc)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return recs
}

func TestReplayPreservesRecords(t *testing.T) {
	src, _ := replaySourceDir(t)
	dst := t.TempDir()
	var paced int
	err := scenario.Replay(scenario.ReplayConfig{
		SrcDir: src, DstDir: dst, SegmentUS: 1_000_000,
		Pace:     func(relUS int64) { paced++ },
		MarkDone: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if paced == 0 {
		t.Fatal("pace hook never fired")
	}

	// meta.json must be byte-identical, and present before any reader needs
	// the roster.
	sm, err := os.ReadFile(filepath.Join(src, scenario.MetaFileName))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := os.ReadFile(filepath.Join(dst, scenario.MetaFileName))
	if err != nil {
		t.Fatal(err)
	}
	if string(sm) != string(dm) {
		t.Fatal("replay altered meta.json")
	}

	srcTS, err := tracefile.OpenDir(src)
	if err != nil {
		t.Fatal(err)
	}

	// The destination is a finished capture directory: tail it to EOF.
	tail := tracefile.NewTailSet(dst)
	if _, err := tail.Scan(); err != nil {
		t.Fatal(err)
	}
	if !tail.Done() {
		t.Fatal("capture.done marker not noticed")
	}
	dstTS := tail.TraceSet()

	srcRadios := srcTS.Radios()
	if got := dstTS.Radios(); !reflect.DeepEqual(got, srcRadios) {
		t.Fatalf("radios = %v, want %v", got, srcRadios)
	}
	for _, r := range srcRadios {
		want := readAllVia(t, srcTS, r)
		got := readAllVia(t, dstTS, r)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("radio %d: replayed records differ (%d vs %d)", r, len(got), len(want))
		}
		if tail.SealedSegments(r) < 2 {
			t.Errorf("radio %d: only %d segments; rotation did not engage", r, tail.SealedSegments(r))
		}
	}
}

func TestReplayRejectsBadConfig(t *testing.T) {
	if err := scenario.Replay(scenario.ReplayConfig{SrcDir: "x", DstDir: "y"}); err == nil {
		t.Error("zero SegmentUS should fail")
	}
	if err := scenario.Replay(scenario.ReplayConfig{
		SrcDir: t.TempDir(), DstDir: t.TempDir(), SegmentUS: 1,
	}); err == nil {
		t.Error("source without meta.json should fail")
	}
}
