// Client mobility: deterministic waypoint paths stepped on the simulation
// clock. A mobile client walks back and forth across its floor through the
// full X extent of the building, so its serving link inevitably collapses
// and the mac-layer roaming state machine hands it off between APs — the
// workload class behind the handoff-analysis experiments.
package scenario

import (
	"repro/internal/building"
	"repro/internal/dot80211"
	"repro/internal/mac"
	"repro/internal/sim"
)

// Mobility constants.
const (
	// mobilityStep is the position-update period. 200 ms at walking speed
	// moves ~30 cm per step: smooth relative to the propagation model's
	// meter-scale sensitivity, cheap relative to the MAC event rate.
	mobilityStep = 200 * sim.Millisecond
	// defaultMoveSpeedMPS is indoor walking pace.
	defaultMoveSpeedMPS = 1.2
	// waypointMarginM keeps waypoints off the exterior walls.
	waypointMarginM = 6.0
)

// setupMobility makes the first Config.MobileClients clients mobile:
// ground-truth roaming hooks, the mac roaming state machine, a waypoint
// walk, and a day-long flow loop so handoffs always have in-flight TCP to
// disrupt. Called only when MobileClients > 0, after buildWorld.
func (s *state) setupMobility() {
	// Cap at the regular-client roster: s.clients may already hold the §6
	// oracle (scheduleOracle runs first), which drives its own teleports
	// and must not get a second, fighting mobility controller.
	n := s.cfg.MobileClients
	if n > s.cfg.Clients {
		n = s.cfg.Clients
	}
	for i := 0; i < n; i++ {
		s.makeMobile(s.clients[i])
	}
}

// makeMobile wires one client for mobility and roaming.
func (s *state) makeMobile(cl *client) {
	mc := cl.mc
	s.out.MobileMACs = append(s.out.MobileMACs, cl.info.MAC)

	// Ground truth: OnRoam opens a handoff record; the association
	// completing closes it and repoints downlink routing at the new AP.
	pending := -1
	mc.OnRoam = func(from, to dot80211.MAC) {
		pending = len(s.out.Handoffs)
		s.out.Handoffs = append(s.out.Handoffs, Handoff{
			Client: cl.info.MAC, FromAP: from, ToAP: to,
			DecideUS: s.eng.Now().US64(),
		})
		cl.ready = false
	}
	prevAssoc := mc.OnAssociated
	mc.OnAssociated = func() {
		if pending >= 0 {
			h := &s.out.Handoffs[pending]
			h.CompleteUS = s.eng.Now().US64()
			h.Completed = true
			pending = -1
		}
		if idx, ok := s.apIndexOf(mc.BSSID()); ok {
			cl.info.APIndex = idx
		}
		prevAssoc()
	}
	mc.EnableRoaming(mac.RoamConfig{HysteresisDB: s.cfg.RoamHysteresisDB})

	s.walkWaypoints(cl)

	// Mobile clients associate at dawn and keep a flow loop running all
	// day (on top of any sampled sessions), so every handoff disrupts
	// real transport state.
	s.eng.At(0, func() {
		if !mc.IsAssociated() && mc.BSSID().IsZero() {
			mc.Associate(apMAC(s.cfg.IndexBase + cl.info.APIndex))
		}
		s.flowLoop(cl, s.cfg.Day)
	})
}

// walkWaypoints schedules the client's piecewise-linear path: waypoints
// alternate between the two ends of the building on the client's starting
// floor, with jittered Y, and the position steps along each segment at the
// configured speed every mobilityStep.
func (s *state) walkWaypoints(cl *client) {
	speed := s.cfg.MoveSpeedMPS
	if speed <= 0 {
		speed = defaultMoveSpeedMPS
	}
	z := cl.info.Pos.Z

	// Enough waypoints to keep walking past the horizon.
	span := building.BuildingXM - 2*waypointMarginM
	crossings := int(speed*s.cfg.Day.SecondsF()/span) + 2
	waypoints := make([]building.Point, crossings)
	// Head for the far end first so the first leg is a long one.
	startLeft := cl.info.Pos.X < building.BuildingXM/2
	for i := range waypoints {
		x := waypointMarginM
		if startLeft == (i%2 == 0) {
			x = building.BuildingXM - waypointMarginM
		}
		waypoints[i] = building.Point{
			X: x,
			Y: waypointMarginM + s.rng.Float64()*(building.BuildingYM-2*waypointMarginM),
			Z: z,
		}
	}

	pos := cl.info.Pos
	target := 0
	stepM := speed * mobilityStep.SecondsF()
	var step func()
	step = func() {
		for target < len(waypoints) {
			wp := waypoints[target]
			d := pos.Distance(wp)
			if d > stepM {
				f := stepM / d
				pos = building.Point{
					X: pos.X + (wp.X-pos.X)*f,
					Y: pos.Y + (wp.Y-pos.Y)*f,
					Z: pos.Z + (wp.Z-pos.Z)*f,
				}
				break
			}
			pos = wp
			target++
		}
		s.med.SetPosition(cl.info.Node, pos)
		if target < len(waypoints) {
			s.eng.After(mobilityStep, step)
		}
	}
	s.eng.At(mobilityStep, step)
}

// apIndexOf maps an AP MAC back to its roster index.
func (s *state) apIndexOf(m dot80211.MAC) (int, bool) {
	for i := range s.apInfo {
		if s.apInfo[i].MAC == m {
			return i, true
		}
	}
	return 0, false
}
