package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dot80211"
)

// Meta is the sidecar metadata written next to a trace directory
// (meta.json): everything the analysis side needs that the jigdump format
// itself does not carry. Field names are the JSON wire format — keep them
// stable, archived trace directories reference them.
type Meta struct {
	ClockGroups [][]int32
	Clients     []ClientInfo
	APs         []APInfo
	// DaySec is the compressed-day duration in seconds (0 in directories
	// written before it existed; time-sliced analyses then need it from
	// the caller).
	DaySec float64 `json:",omitempty"`
	Seed   int64   `json:",omitempty"`
}

// MetaFileName is the sidecar's name inside a trace directory.
const MetaFileName = "meta.json"

// APSet builds the infrastructure-MAC membership test the analyses take
// (analysis.PassParams.IsAP) from an AP roster — a simulation's ground
// truth or a trace directory's meta.json.
func APSet(aps []APInfo) map[dot80211.MAC]bool {
	set := make(map[dot80211.MAC]bool, len(aps))
	for _, ap := range aps {
		set[ap.MAC] = true
	}
	return set
}

// MetaFromOutput distills a run's sidecar metadata.
func MetaFromOutput(out *Output) Meta {
	return Meta{
		ClockGroups: out.ClockGroups,
		Clients:     out.Clients,
		APs:         out.APs,
		DaySec:      out.Cfg.Day.SecondsF(),
		Seed:        out.Cfg.Seed,
	}
}

// WriteMeta persists the sidecar into dir.
func WriteMeta(dir string, m Meta) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: marshal meta: %w", err)
	}
	path := filepath.Join(dir, MetaFileName)
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("scenario: write %s: %w", path, err)
	}
	return nil
}

// ReadMeta loads the sidecar from dir. A missing file is returned as
// os.ErrNotExist (callers may proceed without bridging metadata); a present
// but unparsable file is an error — silently analyzing without clock groups
// produces wrong, not degraded, output.
func ReadMeta(dir string) (Meta, error) {
	var m Meta
	path := filepath.Join(dir, MetaFileName)
	b, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("scenario: parse %s: %w", path, err)
	}
	return m, nil
}
