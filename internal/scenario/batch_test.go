package scenario

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

func tinyCfg(seed int64) Config {
	cfg := Default()
	cfg.Seed = seed
	cfg.Pods, cfg.APs, cfg.Clients = 2, 2, 3
	cfg.Day = 10 * sim.Second
	cfg.NoiseSources = 0
	return cfg
}

// TestRunBatchMatchesDirectRuns: batch execution must be a pure fan-out —
// each slot's output identical to running its config directly, regardless
// of worker count.
func TestRunBatchMatchesDirectRuns(t *testing.T) {
	cfgs := []Config{tinyCfg(1), tinyCfg(2), tinyCfg(3), tinyCfg(4)}
	results := RunBatch(cfgs, 3, nil)
	if len(results) != len(cfgs) {
		t.Fatalf("got %d results, want %d", len(results), len(cfgs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if r.Index != i || r.Out == nil {
			t.Fatalf("result %d misplaced or empty: %+v", i, r)
		}
		direct, err := Run(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if r.Out.MonitorRecords != direct.MonitorRecords ||
			len(r.Out.Truth) != len(direct.Truth) ||
			r.Out.FlowsCompleted != direct.FlowsCompleted {
			t.Errorf("result %d diverges from direct run: records %d vs %d, truth %d vs %d, flows %d vs %d",
				i, r.Out.MonitorRecords, direct.MonitorRecords,
				len(r.Out.Truth), len(direct.Truth),
				r.Out.FlowsCompleted, direct.FlowsCompleted)
		}
	}
}

// TestRunBatchProcessCallback: the callback consumes outputs inside the
// pool (results hold no Output) and its error lands in the right slot.
func TestRunBatchProcessCallback(t *testing.T) {
	cfgs := []Config{tinyCfg(1), tinyCfg(2), tinyCfg(3)}
	var calls int64
	wantErr := errors.New("boom")
	results := RunBatch(cfgs, 0, func(idx int, out *Output) error {
		atomic.AddInt64(&calls, 1)
		if out == nil || out.MonitorRecords == 0 {
			t.Errorf("callback %d: empty output", idx)
		}
		if idx == 1 {
			return wantErr
		}
		return nil
	})
	if calls != int64(len(cfgs)) {
		t.Fatalf("callback ran %d times, want %d", calls, len(cfgs))
	}
	for i, r := range results {
		if r.Out != nil {
			t.Errorf("result %d retained output despite callback", i)
		}
		if i == 1 && !errors.Is(r.Err, wantErr) {
			t.Errorf("result 1 error = %v, want boom", r.Err)
		}
		if i != 1 && r.Err != nil {
			t.Errorf("result %d error = %v", i, r.Err)
		}
	}
}

// TestRunBatchBadConfig: a failing config reports its error without
// disturbing its neighbours.
func TestRunBatchBadConfig(t *testing.T) {
	bad := tinyCfg(1)
	bad.Pods = 0
	results := RunBatch([]Config{tinyCfg(1), bad}, 2, nil)
	if results[0].Err != nil || results[0].Out == nil {
		t.Errorf("good config failed: %+v", results[0])
	}
	if results[1].Err == nil {
		t.Error("bad config did not error")
	}
}
