package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/tracefile"
)

// spillCfg is a small scenario for spill tests; everything but the trace
// sink must be independent of SpillDir.
func spillCfg(seed int64) Config {
	cfg := Default()
	cfg.Seed = seed
	cfg.Pods, cfg.APs, cfg.Clients = 4, 4, 6
	cfg.Day = 20 * sim.Second
	return cfg
}

// TestSpillDirMatchesBuffers: generation with SpillDir must write exactly
// the bytes the in-memory run buffers, radio for radio — the out-of-core
// path is a different sink, not a different trace.
func TestSpillDirMatchesBuffers(t *testing.T) {
	mem, err := Run(spillCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := spillCfg(5)
	cfg.SpillDir = dir
	sp, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Traces) != 0 {
		t.Errorf("spill run buffered %d traces in memory", len(sp.Traces))
	}
	if sp.TraceDir != dir {
		t.Errorf("TraceDir = %q, want %q", sp.TraceDir, dir)
	}
	if len(mem.Traces) == 0 {
		t.Fatal("in-memory run produced no traces")
	}
	for r, buf := range mem.Traces {
		got, err := os.ReadFile(tracefile.TracePath(dir, r))
		if err != nil {
			t.Fatalf("radio %d: %v", r, err)
		}
		want := buf.Bytes()
		if len(got) != len(want) {
			t.Fatalf("radio %d: spilled %d bytes, buffered %d", r, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("radio %d: spilled trace diverges at byte %d", r, i)
			}
		}
	}
	// The directory-backed TraceSet must cover the same radios.
	ts := sp.TraceSet()
	if ts.Len() != len(mem.Traces) {
		t.Errorf("TraceSet covers %d radios, want %d", ts.Len(), len(mem.Traces))
	}
	// And tracefile.OpenDir must find the same files.
	od, err := tracefile.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if od.Len() != len(mem.Traces) {
		t.Errorf("OpenDir found %d radios, want %d", od.Len(), len(mem.Traces))
	}
}

// TestSpillDirUnwritable: a failing spill target must surface as an error,
// not a silent partial trace set.
func TestSpillDirUnwritable(t *testing.T) {
	dir := t.TempDir()
	blocked := filepath.Join(dir, "blocked")
	// A regular file where the directory should go makes MkdirAll fail.
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := spillCfg(1)
	cfg.SpillDir = filepath.Join(blocked, "traces")
	if _, err := Run(cfg); err == nil {
		t.Fatal("unwritable SpillDir accepted")
	}
}
