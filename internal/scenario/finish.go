package scenario

import "fmt"

// finish closes trace writers and returns the output bundle.
func (s *state) finish() (*Output, error) {
	for _, m := range s.monitors {
		m.flush()
		if err := m.w.Close(); err != nil {
			return nil, fmt.Errorf("scenario: closing trace for radio %d: %w", m.id, err)
		}
		s.out.Indexes[int32(m.id)] = m.w.Index()
	}
	// Backfill ground truth for flows still open at the horizon so the
	// fairness analysis sees their partial progress.
	horizonUS := s.cfg.Day.US64()
	for _, cl := range s.clients {
		for _, fs := range cl.flows {
			rec := &s.out.FlowCCs[fs.truthIdx]
			rec.EndUS = horizonUS
			rec.BytesAcked = fs.ep.Stats.BytesAcked + fs.server.Stats.BytesAcked
		}
	}
	return s.out, nil
}
