package scenario

import "fmt"

// finish closes trace writers (flushing spill files to disk) and returns
// the output bundle. Every monitor is flushed and closed even when an
// earlier one fails — a batch caller keeps running after a scenario
// error, so an early return here would leak the remaining spill files'
// descriptors — and the first failure is reported.
func (s *state) finish() (*Output, error) {
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, m := range s.monitors {
		m.flush()
		if err := m.w.Close(); err != nil {
			fail(fmt.Errorf("scenario: closing trace for radio %d: %w", m.id, err))
		}
		if m.werr != nil {
			fail(fmt.Errorf("scenario: writing trace for radio %d: %w", m.id, m.werr))
		}
		if m.f != nil {
			if err := m.bw.Flush(); err != nil {
				fail(fmt.Errorf("scenario: flushing spilled trace for radio %d: %w", m.id, err))
			}
			if err := m.f.Close(); err != nil {
				fail(fmt.Errorf("scenario: closing spilled trace for radio %d: %w", m.id, err))
			}
		}
		s.out.Indexes[int32(m.id)] = m.w.Index()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// Backfill ground truth for flows still open at the horizon so the
	// fairness analysis sees their partial progress.
	horizonUS := s.cfg.Day.US64()
	for _, cl := range s.clients {
		for _, fs := range cl.flows {
			rec := &s.out.FlowCCs[fs.truthIdx]
			rec.EndUS = horizonUS
			rec.BytesAcked = fs.ep.Stats.BytesAcked + fs.server.Stats.BytesAcked
		}
	}
	return s.out, nil
}
