package scenario

import "fmt"

// finish closes trace writers and returns the output bundle.
func (s *state) finish() (*Output, error) {
	for _, m := range s.monitors {
		m.flush()
		if err := m.w.Close(); err != nil {
			return nil, fmt.Errorf("scenario: closing trace for radio %d: %w", m.id, err)
		}
		s.out.Indexes[int32(m.id)] = m.w.Index()
	}
	return s.out, nil
}
