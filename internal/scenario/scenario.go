// Package scenario assembles the full substrate — building, medium, APs,
// clients, monitors, wired network, workload — runs a compressed "day" of
// the production network, and emits everything the paper's pipeline and
// experiments consume:
//
//   - one jigdump-format trace per monitor radio (156 at paper scale),
//     timestamped by imperfect per-monitor clocks;
//   - the lossless wired distribution-network trace (§6's comparison set);
//   - the ground-truth transmission log (the §6 oracle);
//   - the roster of APs and clients with PHY modes and positions.
//
// Time compression: the simulated day maps 24 "hours" onto Config.Day of
// simulation time. MAC and TCP dynamics run at natural timescales; only the
// workload schedule compresses. EXPERIMENTS.md documents the scaling.
package scenario

import (
	"bytes"
	"fmt"

	"repro/internal/cc"
	"repro/internal/clock"

	"repro/internal/building"
	"repro/internal/dot80211"
	"repro/internal/mac"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/tracefile"
)

// Node-id namespaces on the medium.
const (
	nodeMonitorBase = 0     // monitor radios: 0..NumRadios-1
	nodeAPBase      = 10000 // APs
	nodeClientBase  = 20000 // clients
	nodeNoiseBase   = 30000 // noise sources
)

// Config parameterizes a scenario run.
type Config struct {
	Seed    int64
	Pods    int // sensor pods (4 radios each); paper: 39
	APs     int // production APs; paper: 39
	Clients int
	// BFraction of clients are legacy 802.11b (they trigger protection).
	BFraction float64
	// Day is the compressed duration representing 24 hours.
	Day sim.Time
	// FlowMeanGap is the mean pause between flows for an active client.
	FlowMeanGap sim.Time
	// ARPInterval is the Vernier management server's sweep period; every
	// sweep broadcasts through every AP nearly simultaneously (§7.1).
	ARPInterval sim.Time
	// ProbeInterval is the clients' background scan period.
	ProbeInterval sim.Time
	// OfficeInterval is the MS-Office license broadcast period per
	// afflicted client (footnote 6).
	OfficeInterval sim.Time
	// ProtectionTimeout for all APs (paper default: one hour).
	ProtectionTimeout sim.Time
	// BrokenRetryFrac of clients retransmit without the retry bit
	// (footnote 5's Intel quirk).
	BrokenRetryFrac float64
	// NoiseSources is the number of microwave-oven interferers.
	NoiseSources int
	// SnapLen for monitor captures.
	SnapLen int
	// WiredLossProb on the distribution network.
	WiredLossProb float64
	// OracleLocations, when positive, adds one roaming "oracle laptop"
	// (§6's controlled experiment) that visits this many locations spread
	// through the building, generating the web/ssh/scp workload at each.
	OracleLocations int
	// CCMix maps congestion-control algorithm names (cc.Reno, cc.Cubic,
	// cc.BBR, cc.Fixed) to per-flow selection weights. Empty means every
	// flow runs the fixed-window compatibility controller, reproducing the
	// pre-cc substrate bit-for-bit.
	CCMix map[string]float64
	// WiredQueuePkts, when positive, bounds the per-destination bottleneck
	// FIFO on the wired path so congestion controllers see real
	// queue-dependent loss and RTT; zero keeps the legacy unqueued wire.
	WiredQueuePkts int
	// WiredBottleneckMbps is the bottleneck drain rate when the queue is
	// enabled (0 picks the wired default of 100 Mbps).
	WiredBottleneckMbps float64
	// FlowScale multiplies every sampled flow's transfer sizes (0 = 1).
	// Congestion-control experiments set it above 1: the enterprise mix's
	// short web flows end during slow start, where every controller looks
	// alike — fairness and fingerprinting need flows that reach steady
	// state.
	FlowScale float64
	// MobileClients makes the first N clients mobile: each walks a
	// deterministic waypoint path through the building on the sim clock
	// with the RSSI-threshold roaming state machine enabled, so it hands
	// off between APs as its serving link collapses. Zero (the default)
	// keeps every client stationary and changes nothing else.
	MobileClients int
	// MoveSpeedMPS is the mobile clients' walking speed (0 = 1.2 m/s).
	MoveSpeedMPS float64
	// RoamHysteresisDB is how much stronger a candidate AP must be before
	// a mobile client roams to it (0 = mac.DefaultRoamHysteresisDB).
	RoamHysteresisDB float64
	// RadioIDBase offsets every monitor radio's id (trace filename and
	// medium node id). Campus generation gives each building a disjoint
	// stride so per-building trace directories can merge into one namespace;
	// RadioIDBase + 4*Pods must stay below the AP node base.
	RadioIDBase int32
	// IndexBase offsets the building's AP/client/server identity indices
	// (MAC addresses and client IPs), keeping campus-wide identities
	// disjoint the same way. Building-local roster indices (ClientInfo.
	// APIndex etc.) remain zero-based.
	IndexBase int
	// NTPAnchor zeroes the first monitor clock's offset/skew/drift, making
	// it a truthful universal-time anchor (the real deployment's footnote-4
	// NTP alignment). Campus generation sets it so a cross-building anchor
	// clock group can bridge otherwise-disjoint buildings in a flat merge;
	// the same number of rng draws happens either way, so enabling it does
	// not shift any other sampled value.
	NTPAnchor bool
	// SpillDir, when non-empty, streams every monitor's trace to
	// radio-<id>.jig in this directory as the radios produce records,
	// instead of accumulating compressed buffers in memory. The directory
	// is created if missing. Output.Traces stays empty; consume the run
	// through Output.TraceSet() (directory-backed) and core.RunFrom. This
	// is what makes building-scale captures — far larger than RAM —
	// generatable at all.
	SpillDir string
}

// Default returns a laptop-scale configuration suitable for tests: a
// quarter of the building for a few compressed hours.
func Default() Config {
	return Config{
		Seed: 1, Pods: 8, APs: 9, Clients: 16, BFraction: 0.2,
		Day: 120 * sim.Second, FlowMeanGap: 10 * sim.Second,
		ARPInterval: 2 * sim.Second, ProbeInterval: 20 * sim.Second,
		OfficeInterval:    15 * sim.Second,
		ProtectionTimeout: mac.DefaultProtectionTimeout,
		BrokenRetryFrac:   0.03, NoiseSources: 1,
		SnapLen: tracefile.DefaultSnapLen, WiredLossProb: 0.002,
	}
}

// PaperScale returns the full deployment: 39 pods (156 radios), 39 APs.
func PaperScale() Config {
	c := Default()
	c.Pods, c.APs, c.Clients = 39, 39, 64
	c.Day = 240 * sim.Second
	return c
}

// MixedCC returns Default with an even Reno/CUBIC/BBR flow mix contending
// for a finite bottleneck queue — the workload behind the fairness and
// CC-fingerprinting experiments (cf. arXiv:2505.07741's BBR-vs-CUBIC
// sharing study).
func MixedCC() Config {
	c := Default()
	c.CCMix = map[string]float64{cc.Reno: 1, cc.Cubic: 1, cc.BBR: 1}
	c.WiredQueuePkts = 32
	c.WiredBottleneckMbps = 30
	c.FlowScale = 8
	return c
}

// Roaming returns Default with mobile clients walking the building under a
// mixed-CC load: the workload behind the handoff-analysis experiments.
// Mobile stations hand off between APs mid-flow, so the pipeline sees
// disassociation/reassociation sequences, scan probe bursts, rate-ladder
// restarts, and TCP flows disrupted by the off-channel gaps.
func Roaming() Config {
	c := Default()
	c.MobileClients = 4
	c.MoveSpeedMPS = 1.5
	c.RoamHysteresisDB = 4
	c.CCMix = map[string]float64{cc.Reno: 1, cc.Cubic: 1, cc.BBR: 1}
	c.WiredQueuePkts = 32
	c.WiredBottleneckMbps = 30
	c.FlowScale = 4
	return c
}

// BuildingScale returns the paper-§5-shaped deployment the pipeline must
// handle out-of-core: 30 pods (120 monitor radios), 12 production APs and
// 48 clients running a mixed Reno/CUBIC/BBR flow load over a bounded
// bottleneck for several minutes of compressed sim time. The trace set is
// deliberately far larger than Default()'s; run it with Config.SpillDir
// set (jigsim -preset building -o <dir>) so generation streams to disk,
// and feed the pipeline through core.RunFrom so merging streams too.
func BuildingScale() Config {
	c := Default()
	c.Pods, c.APs, c.Clients = 30, 12, 48
	c.Day = 300 * sim.Second
	c.CCMix = map[string]float64{cc.Reno: 1, cc.Cubic: 1, cc.BBR: 1}
	c.WiredQueuePkts = 32
	c.WiredBottleneckMbps = 30
	c.FlowScale = 4
	return c
}

// Preset resolves a named configuration preset — the single registry the
// CLIs share, so a new preset lands everywhere at once.
func Preset(name string) (Config, error) {
	switch name {
	case "", "default":
		return Default(), nil
	case "paper":
		return PaperScale(), nil
	case "mixedcc":
		return MixedCC(), nil
	case "roaming":
		return Roaming(), nil
	case "building":
		return BuildingScale(), nil
	}
	return Config{}, fmt.Errorf("scenario: unknown preset %q (default, paper, mixedcc, roaming, building)", name)
}

// Handoff is the simulator's ground-truth record of one client handoff:
// the roaming state machine's decision and, if the handshake with the new
// AP completed, when. The analysis layer's handoff detector is scored
// against these.
type Handoff struct {
	Client dot80211.MAC
	FromAP dot80211.MAC
	ToAP   dot80211.MAC
	// DecideUS is when the roamer committed (before the disassociation
	// went on air); CompleteUS is when the new association finished.
	DecideUS   int64
	CompleteUS int64
	Completed  bool
}

// LatencyUS returns the handoff's decision-to-association latency (0 for
// handoffs that never completed).
func (h Handoff) LatencyUS() int64 {
	if !h.Completed {
		return 0
	}
	return h.CompleteUS - h.DecideUS
}

// WiredPacket is one packet observed at the wired distribution tap.
type WiredPacket struct {
	TimeUS    int64
	Seg       tcpsim.Segment
	Src, Dst  dot80211.MAC
	Delivered bool
	Downlink  bool // toward a wireless client
}

// TxKind classifies a ground-truth transmission.
type TxKind uint8

// Transmission kinds.
const (
	TxData TxKind = iota
	TxMgmt
	TxAck
	TxCTS
	TxOther
	TxNoise
)

// TxSummary is the ground-truth record of one physical transmission: the
// §6 oracle knows everything the monitors might have missed.
type TxSummary struct {
	ID      uint64
	Src     radio.NodeID
	SrcMAC  dot80211.MAC
	Dest    dot80211.MAC
	Kind    TxKind
	Channel dot80211.Channel
	Rate    dot80211.Rate
	StartUS int64 // true time
	Seq     uint16
	Retry   bool
	Unicast bool
	WireLen int
}

// FlowCC is the simulator's ground-truth record of one TCP flow: which
// congestion controller drove it and what it achieved. The transport
// fingerprinter's confusion matrix is scored against this.
type FlowCC struct {
	Key  tcpsim.FlowKey
	Algo string // cc algorithm name
	// ClientIP/ClientPort identify the wireless side; ServerIP the peer.
	ClientIP   uint32
	ClientPort uint16
	ServerIP   uint32
	// UpBytes/DownBytes are the application bytes the workload asked for;
	// BytesAcked is what both endpoints actually had acknowledged.
	UpBytes, DownBytes int64
	BytesAcked         int64
	StartUS, EndUS     int64
	Completed          bool
}

// ClientInfo describes one client in the roster.
type ClientInfo struct {
	MAC     dot80211.MAC
	IP      uint32
	PHY     mac.PHYMode
	APIndex int
	Node    radio.NodeID
	Pos     building.Point
}

// APInfo describes one AP.
type APInfo struct {
	MAC     dot80211.MAC
	Channel dot80211.Channel
	Node    radio.NodeID
	Pos     building.Point
}

// Output bundles everything a run produces.
type Output struct {
	Cfg      Config
	Building *building.Building
	// Traces holds the per-radio compressed jigdump traces when the run
	// accumulated them in memory; empty when Config.SpillDir streamed them
	// to disk (see TraceDir). TraceSet() abstracts over both.
	Traces map[int32]*bytes.Buffer // radio id → compressed jigdump trace
	// TraceDir is the directory the traces were spilled to (mirrors
	// Config.SpillDir; empty for in-memory runs).
	TraceDir    string
	Indexes     map[int32][]tracefile.IndexEntry
	ClockGroups [][]int32 // radios sharing a physical clock (per monitor)
	Wired       []WiredPacket
	Truth       []TxSummary
	// CapturedValid[txID] counts monitor radios that decoded transmission
	// txID; CapturedAny counts radios that recorded any evidence of it.
	CapturedValid map[uint64]int
	CapturedAny   map[uint64]int
	// CapturedCorrupt / CapturedPhy break CapturedAny down by outcome.
	CapturedCorrupt map[uint64]int
	CapturedPhy     map[uint64]int
	Clients         []ClientInfo
	APs             []APInfo
	// FlowsCompleted counts TCP connections that ran to completion.
	FlowsCompleted int
	FlowsStarted   int
	// FlowCCs is per-flow congestion-control ground truth, in flow start
	// order (flows still open at day end have Completed false and EndUS at
	// the horizon).
	FlowCCs []FlowCC
	// MonitorRecords counts captured records across all radios.
	MonitorRecords int64
	// MonitorClocks exposes each radio's true clock model for validation
	// tests and diagnostics (the pipeline itself never sees these).
	MonitorClocks map[int32]*clock.Clock
	// OracleMAC is the roaming oracle client's address (zero if disabled).
	OracleMAC dot80211.MAC
	// MobileMACs lists the mobile clients' addresses, in client order
	// (empty when Config.MobileClients is zero).
	MobileMACs []dot80211.MAC
	// Handoffs is per-handoff ground truth from the mobile clients'
	// roaming state machines, in decision order.
	Handoffs []Handoff
}

// HourDur returns the simulated duration of one compressed hour.
func (c Config) HourDur() sim.Time { return c.Day / 24 }

// TraceSet returns the run's monitor traces as a tracefile.TraceSet:
// directory-backed when the run spilled to disk, buffer-backed otherwise.
// This is the form core.RunFrom consumes.
func (o *Output) TraceSet() *tracefile.TraceSet {
	if o.TraceDir == "" {
		sources := make(map[int32]tracefile.Source, len(o.Traces))
		for r, buf := range o.Traces {
			sources[r] = tracefile.BufferSource(buf.Bytes())
		}
		return tracefile.NewTraceSet(sources)
	}
	sources := make(map[int32]tracefile.Source, len(o.Indexes))
	for r := range o.Indexes {
		sources[r] = tracefile.FileSource(tracefile.TracePath(o.TraceDir, r))
	}
	return tracefile.NewTraceSet(sources)
}

// Run executes the scenario and returns its output.
func Run(cfg Config) (*Output, error) {
	if cfg.Pods <= 0 || cfg.APs <= 0 {
		return nil, fmt.Errorf("scenario: need pods and APs")
	}
	if cfg.RadioIDBase < 0 || int(cfg.RadioIDBase)+4*cfg.Pods > nodeAPBase {
		return nil, fmt.Errorf("scenario: RadioIDBase %d leaves radios outside [0, %d)", cfg.RadioIDBase, nodeAPBase)
	}
	mix, err := cc.NewMix(cfg.CCMix)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s := newState(cfg)
	s.ccMix = mix
	if err := s.buildWorld(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s.scheduleWorkload()
	s.eng.Run(cfg.Day)
	return s.finish()
}
