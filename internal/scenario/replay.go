package scenario

import (
	"container/heap"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/tracefile"
)

// ReplayConfig drives Replay: re-emit a recorded trace directory into a
// live capture directory (rotating sealed segments plus an active tail),
// the shape jigd tails.
type ReplayConfig struct {
	// SrcDir is a trace directory (radio-<id>.jig + meta.json).
	SrcDir string
	// DstDir receives the capture-directory layout; created if missing.
	DstDir string
	// SegmentUS is the destination's rotation period in trace time.
	SegmentUS int64
	// Pace, when non-nil, is called before each record is written with the
	// record's timestamp relative to the trace's first record. The cmd
	// edge injects wall-clock sleeps here; a nil Pace replays as fast as
	// possible, keeping the library deterministic.
	Pace func(relUS int64)
	// MarkDone writes the capture-done marker after the final seal, so
	// tailing readers terminate instead of waiting for more segments.
	MarkDone bool
}

// replayStream is one radio's cursor into the source trace.
type replayStream struct {
	radio int32
	r     *tracefile.Reader
	rec   tracefile.Record
}

// replayHeap orders streams by next-record time, radio as tiebreak, so the
// merged emission is deterministic.
type replayHeap []*replayStream

func (h replayHeap) Len() int { return len(h) }
func (h replayHeap) Less(i, j int) bool {
	if h[i].rec.LocalUS != h[j].rec.LocalUS {
		return h[i].rec.LocalUS < h[j].rec.LocalUS
	}
	return h[i].radio < h[j].radio
}
func (h replayHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *replayHeap) Push(x any)   { *h = append(*h, x.(*replayStream)) }
func (h *replayHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// Replay re-emits SrcDir's recorded traces into DstDir as a live capture:
// meta.json is copied up front (a tailing consumer needs the roster before
// the first segment seals), then every radio's records stream through
// per-radio rotating segment writers in globally merged time order, so
// segments seal in roughly the interleaving a real capture would produce.
// Record contents are preserved exactly; only the container changes.
func Replay(cfg ReplayConfig) error {
	if cfg.SegmentUS <= 0 {
		return fmt.Errorf("scenario: replay needs SegmentUS > 0, have %d", cfg.SegmentUS)
	}
	meta, err := os.ReadFile(filepath.Join(cfg.SrcDir, MetaFileName))
	if err != nil {
		return fmt.Errorf("scenario: replay source meta: %w", err)
	}
	if err := os.MkdirAll(cfg.DstDir, 0o755); err != nil {
		return fmt.Errorf("scenario: replay dst: %w", err)
	}
	if err := os.WriteFile(filepath.Join(cfg.DstDir, MetaFileName), meta, 0o644); err != nil {
		return fmt.Errorf("scenario: replay dst meta: %w", err)
	}

	ts, err := tracefile.OpenDir(cfg.SrcDir)
	if err != nil {
		return err
	}
	h := &replayHeap{}
	writers := make(map[int32]*tracefile.DirRotatingWriter, ts.Len())
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			_ = c.Close() // read-side cleanup; replay errors surface elsewhere
		}
	}()
	for _, radio := range ts.Radios() {
		rc, err := ts.Open(radio)
		if err != nil {
			return fmt.Errorf("scenario: replay open radio %d: %w", radio, err)
		}
		closers = append(closers, rc)
		s := &replayStream{radio: radio, r: tracefile.NewReader(rc)}
		s.rec, err = s.r.Next()
		if err == io.EOF {
			continue // empty trace: nothing to replay for this radio
		}
		if err != nil {
			return fmt.Errorf("scenario: replay radio %d: %w", radio, err)
		}
		writers[radio] = tracefile.NewDirRotatingWriter(cfg.DstDir, radio, cfg.SegmentUS)
		heap.Push(h, s)
	}

	var firstUS int64
	if h.Len() > 0 {
		firstUS = (*h)[0].rec.LocalUS
	}
	for h.Len() > 0 {
		s := (*h)[0]
		if cfg.Pace != nil {
			cfg.Pace(s.rec.LocalUS - firstUS)
		}
		if err := writers[s.radio].WriteRecord(s.rec); err != nil {
			return fmt.Errorf("scenario: replay write radio %d: %w", s.radio, err)
		}
		var err error
		s.rec, err = s.r.Next()
		if err == io.EOF {
			heap.Pop(h)
			continue
		}
		if err != nil {
			return fmt.Errorf("scenario: replay radio %d: %w", s.radio, err)
		}
		heap.Fix(h, 0)
	}
	for _, radio := range ts.Radios() {
		w := writers[radio]
		if w == nil {
			continue
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("scenario: replay close radio %d: %w", radio, err)
		}
	}
	if cfg.MarkDone {
		return tracefile.MarkCaptureDone(cfg.DstDir)
	}
	return nil
}
