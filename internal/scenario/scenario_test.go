package scenario

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/tracefile"
)

// quickCfg is a small fast configuration for unit tests.
func quickCfg() Config {
	c := Default()
	c.Pods, c.APs, c.Clients = 4, 4, 8
	c.Day = 30 * sim.Second
	c.FlowMeanGap = 5 * sim.Second
	return c
}

func TestRunProducesTraces(t *testing.T) {
	out, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 16 {
		t.Fatalf("traces = %d, want 16 (4 pods x 4 radios)", len(out.Traces))
	}
	if len(out.ClockGroups) != 8 {
		t.Errorf("clock groups = %d, want 8 (2 per pod)", len(out.ClockGroups))
	}
	if out.MonitorRecords == 0 {
		t.Fatal("monitors captured nothing")
	}
	// Every trace must parse and be time-ordered per radio.
	total := 0
	for rid, buf := range out.Traces {
		recs, err := tracefile.ReadAll(buf)
		if err != nil {
			t.Fatalf("radio %d trace: %v", rid, err)
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].LocalUS < recs[i-1].LocalUS {
				t.Fatalf("radio %d trace out of order at %d", rid, i)
			}
		}
		total += len(recs)
	}
	if int64(total) != out.MonitorRecords {
		t.Errorf("trace records %d != counter %d", total, out.MonitorRecords)
	}
}

func TestRunGroundTruthAndWired(t *testing.T) {
	out, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Truth) == 0 {
		t.Fatal("no ground truth")
	}
	kinds := map[TxKind]int{}
	for _, tx := range out.Truth {
		kinds[tx.Kind]++
	}
	if kinds[TxMgmt] == 0 {
		t.Error("no management transmissions (beacons!)")
	}
	if kinds[TxData] == 0 {
		t.Error("no data transmissions")
	}
	if kinds[TxAck] == 0 {
		t.Error("no ACKs")
	}
	if kinds[TxNoise] == 0 {
		t.Error("no noise bursts despite a noise source")
	}
	if len(out.Wired) == 0 {
		t.Error("wired tap empty")
	}
	if out.FlowsStarted == 0 {
		t.Error("no flows started")
	}
	if out.FlowsCompleted == 0 {
		t.Error("no flows completed")
	}
}

func TestRunClientsAssociateAndMix(t *testing.T) {
	cfg := quickCfg()
	cfg.Clients = 12
	cfg.BFraction = 0.5
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b, g int
	for _, c := range out.Clients {
		if c.PHY == mac.PHY80211b {
			b++
		} else {
			g++
		}
	}
	if b == 0 || g == 0 {
		t.Errorf("phy mix degenerate: b=%d g=%d", b, g)
	}
}

func TestRunCapturedCoverage(t *testing.T) {
	out, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Count what fraction of AP unicast data transmissions were captured
	// by at least one monitor; pods sit near APs, so this should be high.
	var apTx, captured int
	for _, tx := range out.Truth {
		if tx.Kind == TxData && tx.Unicast && tx.SrcMAC[0] == 0xaa {
			apTx++
			if out.CapturedValid[tx.ID] > 0 {
				captured++
			}
		}
	}
	if apTx == 0 {
		t.Skip("no AP unicast data in this configuration")
	}
	cov := float64(captured) / float64(apTx)
	if cov < 0.7 {
		t.Errorf("AP data coverage = %.2f, want high (paper: ~0.97)", cov)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.MonitorRecords != b.MonitorRecords || len(a.Truth) != len(b.Truth) ||
		a.FlowsCompleted != b.FlowsCompleted {
		t.Errorf("runs differ: %d/%d records, %d/%d truth, %d/%d flows",
			a.MonitorRecords, b.MonitorRecords, len(a.Truth), len(b.Truth),
			a.FlowsCompleted, b.FlowsCompleted)
	}
}

func TestRunRejectsEmpty(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestHourDur(t *testing.T) {
	c := Config{Day: 24 * sim.Second}
	if c.HourDur() != sim.Second {
		t.Error("HourDur wrong")
	}
}

func TestOracleRoamingClient(t *testing.T) {
	cfg := quickCfg()
	cfg.Day = 40 * sim.Second
	cfg.OracleLocations = 4
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.OracleMAC.IsZero() {
		t.Fatal("no oracle MAC recorded")
	}
	// The oracle client must appear in the roster and generate traffic.
	var found bool
	for _, c := range out.Clients {
		if c.MAC == out.OracleMAC {
			found = true
		}
	}
	if !found {
		t.Fatal("oracle not in roster")
	}
	var oracleTx, mgmtTx int
	for _, tx := range out.Truth {
		if tx.SrcMAC == out.OracleMAC {
			oracleTx++
			if tx.Kind == TxMgmt {
				mgmtTx++
			}
		}
	}
	if oracleTx < 50 {
		t.Errorf("oracle generated only %d transmissions", oracleTx)
	}
	// Roaming means repeated association handshakes.
	if mgmtTx < 8 {
		t.Errorf("oracle mgmt transmissions = %d; expected reassociations at 4 locations", mgmtTx)
	}
}

func TestOracleDisabledByDefault(t *testing.T) {
	out, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !out.OracleMAC.IsZero() {
		t.Error("oracle enabled without OracleLocations")
	}
}

func TestMixedCCScenario(t *testing.T) {
	cfg := MixedCC()
	cfg.Pods, cfg.APs, cfg.Clients = 4, 4, 10
	cfg.Day = 40 * sim.Second
	cfg.FlowMeanGap = 4 * sim.Second
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.FlowCCs) == 0 {
		t.Fatal("no flow ground truth recorded")
	}
	if len(out.FlowCCs) != out.FlowsStarted {
		t.Errorf("FlowCCs = %d, FlowsStarted = %d", len(out.FlowCCs), out.FlowsStarted)
	}
	byAlgo := map[string]int{}
	bytesBy := map[string]int64{}
	for _, f := range out.FlowCCs {
		byAlgo[f.Algo]++
		bytesBy[f.Algo] += f.BytesAcked
		if f.Algo == "fixed" {
			t.Errorf("fixed-window flow in a reno/cubic/bbr mix: %+v", f)
		}
	}
	if len(byAlgo) < 3 {
		t.Errorf("CC mix degenerate: %v", byAlgo)
	}
	active := 0
	for algo, b := range bytesBy {
		if b > 0 {
			active++
		} else {
			t.Logf("algo %s moved no bytes (%d flows)", algo, byAlgo[algo])
		}
	}
	if active < 2 {
		t.Errorf("fewer than two algorithms moved data: %v", bytesBy)
	}
	if out.FlowsCompleted == 0 {
		t.Error("no mixed-CC flows completed")
	}
}

func TestMixedCCDeterministic(t *testing.T) {
	cfg := MixedCC()
	cfg.Pods, cfg.APs, cfg.Clients = 3, 3, 6
	cfg.Day = 20 * sim.Second
	run := func() *Output {
		out, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.MonitorRecords != b.MonitorRecords || a.FlowsCompleted != b.FlowsCompleted ||
		len(a.FlowCCs) != len(b.FlowCCs) {
		t.Fatalf("mixed-CC runs differ: %d/%d records, %d/%d completed, %d/%d flows",
			a.MonitorRecords, b.MonitorRecords, a.FlowsCompleted, b.FlowsCompleted,
			len(a.FlowCCs), len(b.FlowCCs))
	}
	for i := range a.FlowCCs {
		if a.FlowCCs[i] != b.FlowCCs[i] {
			t.Fatalf("flow %d truth differs:\n  a=%+v\n  b=%+v", i, a.FlowCCs[i], b.FlowCCs[i])
		}
	}
}

func TestCCMixRejectsUnknownAlgo(t *testing.T) {
	cfg := quickCfg()
	cfg.CCMix = map[string]float64{"vegas": 1}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown CC algorithm accepted")
	}
}
