package scenario

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/building"
	"repro/internal/cc"
	"repro/internal/clock"
	"repro/internal/dot80211"
	"repro/internal/mac"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/tracefile"
)

// state is the live simulation.
type state struct {
	cfg   Config
	eng   *sim.Engine
	med   *radio.Medium
	bld   *building.Building
	wired *tcpsim.WiredNet
	rng   *rand.Rand

	monitors []*monitorRadio
	aps      []*mac.AP
	apInfo   []APInfo
	clients  []*client
	servers  map[int]*serverHost
	out      *Output

	// ccMix assigns a congestion controller per flow (nil = fixed-window
	// for everyone, the compatibility path).
	ccMix *cc.Mix

	nextPort uint16
}

// client couples the MAC client with its transport demux and schedule.
type client struct {
	info ClientInfo
	mc   *mac.Client
	// flows in progress keyed by local port.
	flows map[uint16]*flowState
	ready bool
}

type flowState struct {
	ep     *tcpsim.Endpoint
	server *tcpsim.Endpoint
	// truthIdx locates this flow's FlowCC record in Output.FlowCCs.
	truthIdx int
}

// monitorRadio captures everything its radio hears into a trace writer.
//
// Reception events complete at frame end but are timestamped at frame
// start (like the Atheros RX timestamp), so overlapping transmissions can
// complete out of timestamp order; a short reorder buffer restores the
// per-radio time order the jigdump format guarantees.
type monitorRadio struct {
	radio.NopListener
	s       *state
	id      radio.NodeID
	ch      dot80211.Channel
	clk     *clock.Clock
	w       *tracefile.Writer
	pending []tracefile.Record
	// Spill backing (nil for in-memory runs): records stream through bw
	// into f as they are captured instead of accumulating in a buffer.
	f  *os.File
	bw *bufio.Writer
	// werr latches the first trace-write failure; the capture callback
	// cannot return it, so finish() surfaces it.
	werr error
}

// write appends one record to the trace, latching the first failure.
func (m *monitorRadio) write(rec tracefile.Record) {
	if err := m.w.WriteRecord(rec); err != nil && m.werr == nil {
		m.werr = err
	}
}

// reorderWindowUS bounds how far records can arrive out of order: the
// longest frame airtime (~12 ms at 1 Mbps) plus slack.
const reorderWindowUS = 20_000

// spillWriteBufSize sizes the write buffer in front of each spilled trace
// file; compressed blocks flush ~64 KB at a time, so this batches a couple
// of blocks per syscall without holding meaningful memory per radio.
const spillWriteBufSize = 128 * 1024

// OnReceive implements radio.Listener for a passive monitor.
func (m *monitorRadio) OnReceive(info radio.RxInfo) {
	rec := tracefile.Record{
		LocalUS: m.clk.LocalUS(int64(info.Start)),
		RadioID: int32(m.id),
		Channel: uint8(m.ch),
		RSSIdBm: int8(info.RSSIdBm),
		Rate:    uint16(info.Rate),
	}
	switch info.Outcome {
	case radio.RxOK:
		rec.Flags = tracefile.FlagFCSOK
		rec.Frame = append([]byte(nil), info.Bytes...)
		m.s.out.CapturedValid[info.TxID]++
	case radio.RxCorrupt:
		rec.Frame = info.Bytes // already a private damaged copy
		m.s.out.CapturedCorrupt[info.TxID]++
	case radio.RxPhyError:
		rec.Flags = tracefile.FlagPhyErr
		m.s.out.CapturedPhy[info.TxID]++
	default:
		return
	}
	m.s.out.CapturedAny[info.TxID]++
	m.s.out.MonitorRecords++

	// Insert in timestamp order (inversions are rare and shallow).
	i := len(m.pending)
	for i > 0 && m.pending[i-1].LocalUS > rec.LocalUS {
		i--
	}
	m.pending = append(m.pending, tracefile.Record{})
	copy(m.pending[i+1:], m.pending[i:])
	m.pending[i] = rec
	// Flush everything older than the reorder window.
	cut := 0
	newest := m.pending[len(m.pending)-1].LocalUS
	for cut < len(m.pending) && m.pending[cut].LocalUS < newest-reorderWindowUS {
		m.write(m.pending[cut])
		cut++
	}
	m.pending = m.pending[cut:]
}

// flush drains the reorder buffer at end of run.
func (m *monitorRadio) flush() {
	for _, rec := range m.pending {
		m.write(rec)
	}
	m.pending = nil
}

func newState(cfg Config) *state {
	eng := sim.NewEngine(cfg.Seed)
	s := &state{
		cfg: cfg, eng: eng,
		med: radio.NewMedium(eng, radio.NewPropagation(cfg.Seed)),
		rng: eng.NewStream(0x5ce9a410),
		out: &Output{
			Cfg:             cfg,
			Traces:          make(map[int32]*bytes.Buffer),
			Indexes:         make(map[int32][]tracefile.IndexEntry),
			CapturedValid:   make(map[uint64]int),
			CapturedAny:     make(map[uint64]int),
			CapturedCorrupt: make(map[uint64]int),
			CapturedPhy:     make(map[uint64]int),
			MonitorClocks:   make(map[int32]*clock.Clock),
		},
		nextPort: 40000,
	}
	s.wired = tcpsim.NewWiredNet(eng)
	s.wired.LossProb = cfg.WiredLossProb
	s.wired.QueuePkts = cfg.WiredQueuePkts
	if cfg.WiredBottleneckMbps > 0 {
		// Mbps → bytes/µs: 1 Mbps = 0.125 bytes/µs.
		s.wired.BottleneckBytesPerUS = cfg.WiredBottleneckMbps * 0.125
	}
	return s
}

func apMAC(i int) dot80211.MAC  { return dot80211.MAC{0xaa, 0, 0, 0, byte(i >> 8), byte(i)} }
func cliMAC(i int) dot80211.MAC { return dot80211.MAC{0xc2, 0, 0, 0, byte(i >> 8), byte(i)} }

// serverMAC identifies upstream hosts on the wired side.
func serverMAC(i int) dot80211.MAC { return dot80211.MAC{0xee, 0, 0, 0, byte(i >> 8), byte(i)} }

const (
	clientIPBase = 0x0a_00_00_00
	serverIPBase = 0x0b_00_00_00
	numServers   = 16
)

// buildWorld creates geometry, monitors, APs, clients and wiring. The only
// error source is trace spilling (directory creation, file opens).
func (s *state) buildWorld() error {
	cfg := s.cfg
	s.bld = building.New(building.Config{NumPods: cfg.Pods, NumAPs: cfg.APs, Seed: cfg.Seed})
	s.out.Building = s.bld

	if cfg.SpillDir != "" {
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			return fmt.Errorf("spill dir: %w", err)
		}
		s.out.TraceDir = cfg.SpillDir
	}

	// Ground-truth hook.
	s.med.OnTransmit = s.recordTruth

	// Monitors: 4 radios per pod covering channels 1/6/11 (+1 repeat),
	// two radios per monitor sharing one clock (§3.3).
	chans := []dot80211.Channel{1, 6, 11}
	firstClock := true
	for _, pod := range s.bld.Pods {
		for m := 0; m < 2; m++ {
			// Draw the clock parameters unconditionally so NTPAnchor leaves
			// the rng stream (and every later sample) unchanged.
			off := s.rng.Int63n(100_000_000) - 50_000_000 // ±50 ms
			skew := s.rng.NormFloat64() * 20              // well under 100 ppm
			drift := s.rng.NormFloat64() * 1.5
			if cfg.NTPAnchor && firstClock {
				off, skew, drift = 0, 0, 0
			}
			firstClock = false
			clk := &clock.Clock{OffsetNS: off, SkewPPM: skew, DriftPPMH: drift}
			var group []int32
			for r := 0; r < 2; r++ {
				ri := int(cfg.RadioIDBase) + int(pod.Radios[m*2+r])
				ch := chans[(int(pod.ID)+m*2+r)%len(chans)]
				mr := &monitorRadio{s: s, id: radio.NodeID(ri), ch: ch, clk: clk}
				if cfg.SpillDir != "" {
					f, err := os.Create(tracefile.TracePath(cfg.SpillDir, int32(ri)))
					if err != nil {
						return fmt.Errorf("spill trace for radio %d: %w", ri, err)
					}
					mr.f = f
					mr.bw = bufio.NewWriterSize(f, spillWriteBufSize)
					mr.w = tracefile.NewWriter(mr.bw)
				} else {
					buf := &bytes.Buffer{}
					s.out.Traces[int32(ri)] = buf
					mr.w = tracefile.NewWriter(buf)
				}
				mr.w.SetSnapLen(cfg.SnapLen)
				s.out.MonitorClocks[int32(ri)] = clk
				s.monitors = append(s.monitors, mr)
				s.med.Register(mr.id, pod.Pos, ch, mr, false)
				group = append(group, int32(ri))
			}
			s.out.ClockGroups = append(s.out.ClockGroups, group)
		}
	}

	// APs. MACs are campus-global (IndexBase); node ids and roster indices
	// stay building-local.
	for i, apDesc := range s.bld.APs {
		id := radio.NodeID(nodeAPBase + i)
		cfgAP := mac.Config{
			ID: id, MAC: apMAC(cfg.IndexBase + i), Channel: dot80211.Channel(apDesc.Channel),
		}
		ap := mac.NewAP(s.eng, s.med, apDesc.Pos, cfgAP, "jigsaw-net")
		ap.ProtectionTimeout = cfg.ProtectionTimeout
		ap.ToWired = s.uplinkFromAP
		s.aps = append(s.aps, ap)
		s.apInfo = append(s.apInfo, APInfo{
			MAC: apMAC(cfg.IndexBase + i), Channel: dot80211.Channel(apDesc.Channel), Node: id, Pos: apDesc.Pos,
		})
	}
	s.out.APs = s.apInfo

	// Clients: placed in offices, associated to the strongest AP.
	for i := 0; i < cfg.Clients; i++ {
		pos := building.ClientArea(s.rng)
		id := radio.NodeID(nodeClientBase + i)
		phy := mac.PHY80211g
		if s.rng.Float64() < cfg.BFraction {
			phy = mac.PHY80211b
		}
		// Pick the AP with the best downlink RSSI at this client, but a
		// b-only client can only join an AP whose channel it can use (all
		// can; b clients just never decode OFDM).
		ccfg := mac.Config{
			ID: id, MAC: cliMAC(cfg.IndexBase + i), PHY: phy,
			BrokenRetryBit: s.rng.Float64() < cfg.BrokenRetryFrac,
		}
		// Register a probe node to measure RSSI, then create for real.
		bestAP, bestRSSI := 0, -1e9
		s.med.Register(id, pos, 1, radio.NopListener{}, false)
		for ai := range s.aps {
			r := s.med.RSSIBetween(radio.NodeID(nodeAPBase+ai), id, radio.APTxPowerDBm)
			if r > bestRSSI {
				bestRSSI, bestAP = r, ai
			}
		}
		ccfg.Channel = s.apInfo[bestAP].Channel
		mc := mac.NewClient(s.eng, s.med, pos, ccfg)
		cl := &client{
			info: ClientInfo{
				MAC: cliMAC(cfg.IndexBase + i), IP: clientIPBase + uint32(cfg.IndexBase+i), PHY: phy,
				APIndex: bestAP, Node: id, Pos: pos,
			},
			mc:    mc,
			flows: make(map[uint16]*flowState),
		}
		mc.FromWireless = func(src dot80211.MAC, payload []byte) { s.downlinkToClient(cl, payload) }
		mc.OnAssociated = func() { cl.ready = true }
		s.clients = append(s.clients, cl)
		s.out.Clients = append(s.out.Clients, cl.info)

		// Attach the client's wired-side address: downlink segments are
		// forwarded to its AP for wireless delivery. Mobile clients route
		// through whichever AP they are currently associated with (the
		// distribution network learns the move, like a real switch fabric
		// after a reassociation); stationary clients keep the cheaper
		// fixed binding.
		capturedMAC := cliMAC(cfg.IndexBase + i)
		if i < cfg.MobileClients {
			s.wired.Attach(capturedMAC, func(seg tcpsim.Segment) {
				ap := s.aps[cl.info.APIndex]
				ap.SendToClient(capturedMAC, serverMAC(int(seg.SrcIP-serverIPBase)), seg.Encode(), nil)
			})
		} else {
			capturedAP := s.aps[bestAP]
			s.wired.Attach(capturedMAC, func(seg tcpsim.Segment) {
				capturedAP.SendToClient(capturedMAC, serverMAC(int(seg.SrcIP-serverIPBase)), seg.Encode(), nil)
			})
		}
	}

	// Wired tap.
	s.wired.Tap = func(seg tcpsim.Segment, src, dst dot80211.MAC, delivered bool) {
		s.out.Wired = append(s.out.Wired, WiredPacket{
			TimeUS: s.eng.Now().US64(), Seg: seg, Src: src, Dst: dst,
			Delivered: delivered, Downlink: dst[0] == 0xc2,
		})
	}

	// Noise sources (microwave ovens in kitchenettes).
	for i := 0; i < cfg.NoiseSources; i++ {
		id := radio.NodeID(nodeNoiseBase + i)
		pos := building.ClientArea(s.rng)
		s.med.Register(id, pos, dot80211.Channel(6), radio.NopListener{}, false)
		s.scheduleNoise(id)
	}
	return nil
}

// recordTruth logs every physical transmission.
func (s *state) recordTruth(r radio.TxRecord) {
	t := TxSummary{
		ID: r.ID, Src: r.Src, Channel: r.Channel, Rate: r.Rate,
		StartUS: int64(r.Start / 1000), WireLen: len(r.Bytes),
	}
	if r.Noise {
		t.Kind = TxNoise
	} else if f, err := dot80211.Decode(r.Bytes); err == nil {
		t.SrcMAC = f.Transmitter()
		t.Dest = f.Addr1
		t.Seq = f.Seq
		t.Retry = f.Retry()
		t.Unicast = !f.Addr1.IsMulticast()
		switch {
		case f.IsData():
			t.Kind = TxData
		case f.Type == dot80211.TypeManagement:
			t.Kind = TxMgmt
		case f.IsACK():
			t.Kind = TxAck
		case f.IsCTS():
			t.Kind = TxCTS
		default:
			t.Kind = TxOther
		}
	}
	s.out.Truth = append(s.out.Truth, t)
}

// uplinkFromAP bridges client frames onto the wired network.
func (s *state) uplinkFromAP(src, dst dot80211.MAC, payload []byte) {
	seg, err := tcpsim.DecodeSegment(payload)
	if err != nil {
		return // ARP/Office broadcasts and other non-TCP traffic die here
	}
	remote := seg.DstIP >= serverIPBase && int(seg.DstIP-serverIPBase)%3 == 0
	s.wired.Forward(src, dst, seg, remote)
}

// downlinkToClient demuxes a received segment to the owning flow endpoint.
func (s *state) downlinkToClient(cl *client, payload []byte) {
	seg, err := tcpsim.DecodeSegment(payload)
	if err != nil {
		return
	}
	if fs, ok := cl.flows[seg.DstPort]; ok {
		fs.ep.OnSegment(seg)
	}
}

// scheduleNoise arranges microwave bursts around the lunch hours.
func (s *state) scheduleNoise(id radio.NodeID) {
	hour := s.cfg.HourDur()
	start := sim.Time(11.5 * float64(hour))
	end := sim.Time(13.5 * float64(hour))
	var burst func()
	burst = func() {
		now := s.eng.Now()
		if now > end {
			return
		}
		if now >= start {
			// Magnetron duty cycle: ~8 ms on, ~12 ms off.
			s.med.EmitNoise(id, 15, 6, 8*sim.Millisecond)
		}
		gap := 12*sim.Millisecond + sim.Time(s.rng.Int63n(int64(8*sim.Millisecond)))
		s.eng.After(8*sim.Millisecond+gap, burst)
	}
	s.eng.At(start, burst)
}
