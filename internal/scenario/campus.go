// Campus generation: many buildings, one namespace. Each building is an
// independent deterministic scenario (its own seed, medium, workload) whose
// identities — monitor radio ids, AP/client MACs, client IPs, server pool —
// are offset into a disjoint per-building stride, so the per-building trace
// directories compose into one campus without collisions. Buildings are
// RF-isolated (separate media: no cross-building interference, like real
// buildings hundreds of meters apart) and conversation-disjoint, which is
// exactly the structure the hierarchical merge exploits.
package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/cc"
	"repro/internal/sim"
)

// Per-building identity strides. Radio ids must stay under the AP node
// base (10000), so radioStride bounds a building at 250 pods; indexStride
// bounds its AP+client+server rosters at 4096 identities. Both are far
// above any preset.
const (
	campusRadioStride = 1000
	campusIndexStride = 4096
)

// CampusConfig parameterizes a campus: one per-building template replicated
// across Buildings buildings with disjoint seeds and identity strides.
type CampusConfig struct {
	// Buildings is the number of buildings (each an independent scenario).
	Buildings int
	// Seed seeds building k with Seed + k.
	Seed int64
	// Building is the per-building template; its Seed, RadioIDBase,
	// IndexBase, NTPAnchor and SpillDir are overridden per building.
	Building Config
}

// Campus returns the campus-scale preset: 10 buildings × 24 pods = 960
// monitor radios watching 100 APs and 400 clients under the mixed-CC
// workload for a 6-minute compressed day — the ~1000-radio deployment the
// paper envisions, an order of magnitude past BuildingScale.
func Campus() CampusConfig {
	b := Default()
	b.Pods, b.APs, b.Clients = 24, 10, 40
	b.Day = 360 * sim.Second
	b.CCMix = map[string]float64{cc.Reno: 1, cc.Cubic: 1, cc.BBR: 1}
	b.WiredQueuePkts = 32
	b.WiredBottleneckMbps = 30
	b.FlowScale = 4
	return CampusConfig{Buildings: 10, Seed: 1, Building: b}
}

// NumRadios returns the campus's total monitor-radio count.
func (c CampusConfig) NumRadios() int { return c.Buildings * c.Building.Pods * 4 }

// BuildingConfig instantiates building k's scenario config: the template
// with building-k seed and identity strides. The first monitor clock is
// NTP-anchored so the campus anchor clock group (see ClockGroups) is
// truthful.
func (c CampusConfig) BuildingConfig(k int) Config {
	cfg := c.Building
	cfg.Seed = c.Seed + int64(k)
	cfg.RadioIDBase = int32(k * campusRadioStride)
	cfg.IndexBase = k * campusIndexStride
	cfg.NTPAnchor = true
	return cfg
}

// BuildingDirName names building k's trace directory inside a campus
// directory.
func BuildingDirName(k int) string { return fmt.Sprintf("building-%02d", k) }

// ListBuildings returns a campus directory's building trace directories in
// building order.
func ListBuildings(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("scenario: campus dir: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && len(e.Name()) > len("building-") && e.Name()[:len("building-")] == "building-" {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: no building-* directories in %s", dir)
	}
	return out, nil
}

// AnchorClockGroup lists each building's NTP-anchored first radio as one
// cross-building clock group. Within a building the anchor radio's clock is
// truthful (BuildingConfig sets NTPAnchor), so declaring the anchors
// mutually synchronized is also truthful — it is what lets a flat merge
// over the union of buildings bridge their otherwise-disjoint channels.
func (c CampusConfig) AnchorClockGroup() []int32 {
	g := make([]int32, c.Buildings)
	for k := range g {
		g[k] = int32(k * campusRadioStride)
	}
	return g
}

// RunCampus generates every building's trace directory under dir
// (building-00, building-01, ...) across a pool of workers, writing each
// building's meta.json plus a campus-level meta.json in dir whose rosters
// and clock groups are the buildings' concatenated, with the cross-building
// anchor clock group appended. Returns total monitor records.
func RunCampus(c CampusConfig, dir string, workers int) (int64, error) {
	if c.Buildings <= 0 {
		return 0, fmt.Errorf("scenario: campus needs buildings")
	}
	if c.Building.Pods*4 > campusRadioStride {
		return 0, fmt.Errorf("scenario: building has %d radios, stride is %d", c.Building.Pods*4, campusRadioStride)
	}
	cfgs := make([]Config, c.Buildings)
	for k := range cfgs {
		cfg := c.BuildingConfig(k)
		cfg.SpillDir = filepath.Join(dir, BuildingDirName(k))
		cfgs[k] = cfg
	}
	var mu sync.Mutex
	metas := make([]Meta, c.Buildings)
	var records int64
	results := RunBatch(cfgs, workers, func(k int, out *Output) error {
		m := MetaFromOutput(out)
		if err := WriteMeta(cfgs[k].SpillDir, m); err != nil {
			return err
		}
		mu.Lock()
		metas[k] = m
		records += out.MonitorRecords
		mu.Unlock()
		return nil
	})
	for _, r := range results {
		if r.Err != nil {
			return 0, fmt.Errorf("scenario: campus %s: %w", BuildingDirName(r.Index), r.Err)
		}
	}
	campus := Meta{
		DaySec: c.Building.Day.SecondsF(),
		Seed:   c.Seed,
	}
	for _, m := range metas {
		campus.ClockGroups = append(campus.ClockGroups, m.ClockGroups...)
		campus.Clients = append(campus.Clients, m.Clients...)
		campus.APs = append(campus.APs, m.APs...)
	}
	campus.ClockGroups = append(campus.ClockGroups, c.AnchorClockGroup())
	if err := WriteMeta(dir, campus); err != nil {
		return 0, err
	}
	return records, nil
}
