package scenario

import (
	"repro/internal/building"
	"repro/internal/cc"
	"repro/internal/dot80211"
	"repro/internal/mac"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/workload"
)

// scheduleWorkload sets up client sessions, flows and the broadcast
// pathologies across the compressed day.
func (s *state) scheduleWorkload() {
	hour := s.cfg.HourDur()

	if s.cfg.OracleLocations > 0 {
		s.scheduleOracle()
	}
	if s.cfg.MobileClients > 0 {
		s.setupMobility()
	}

	for ci, cl := range s.clients {
		cl := cl
		sessions := workload.SampleSessions(s.rng)
		for _, sess := range sessions {
			start := sim.Time(sess.StartHour * float64(hour))
			end := start + sim.Time(sess.Hours*float64(hour))
			if end > s.cfg.Day {
				end = s.cfg.Day
			}
			s.eng.At(start, func() { s.startSession(cl, end) })
		}
		// Background scans (probe requests) while powered on.
		if s.cfg.ProbeInterval > 0 {
			jitter := sim.Time(s.rng.Int63n(int64(s.cfg.ProbeInterval) + 1))
			s.eng.At(jitter, func() { s.probeLoop(cl) })
		}
		// MS-Office license broadcasts from afflicted clients (fn. 6).
		if s.cfg.OfficeInterval > 0 && s.rng.Float64() < workload.OfficeClientFraction {
			_ = ci
			s.eng.At(sim.Time(s.rng.Int63n(int64(s.cfg.OfficeInterval)+1)), func() { s.officeLoop(cl) })
		}
	}

	// Vernier management-server ARP sweeps: one wired broadcast fans out
	// through every AP at nearly the same instant (§7.1).
	if s.cfg.ARPInterval > 0 {
		s.eng.At(s.cfg.ARPInterval, s.arpSweep)
	}
}

// startSession associates the client (if needed) and begins its flow loop.
func (s *state) startSession(cl *client, end sim.Time) {
	if !cl.ready && !cl.mc.IsAssociated() && cl.mc.BSSID().IsZero() {
		cl.mc.Associate(apMAC(s.cfg.IndexBase + cl.info.APIndex))
	}
	s.flowLoop(cl, end)
}

// flowLoop launches flows with exponential gaps until the session ends.
func (s *state) flowLoop(cl *client, end sim.Time) {
	if s.eng.Now() >= end {
		return
	}
	if cl.ready {
		s.startFlow(cl)
	}
	gap := sim.Time(float64(s.cfg.FlowMeanGap) * s.rng.ExpFloat64())
	if gap < 100*sim.Millisecond {
		gap = 100 * sim.Millisecond
	}
	s.eng.After(gap, func() { s.flowLoop(cl, end) })
}

// startFlow creates a TCP connection between the client and a server.
func (s *state) startFlow(cl *client) {
	spec := workload.SampleFlow(s.rng)
	if s.cfg.FlowScale > 0 && s.cfg.FlowScale != 1 {
		spec.UpBytes = int64(float64(spec.UpBytes) * s.cfg.FlowScale)
		spec.DownBytes = int64(float64(spec.DownBytes) * s.cfg.FlowScale)
	}
	// Server indices are campus-global from the draw (IndexBase offsets the
	// per-building pool), so every MAC/IP derived from them — including the
	// seg.SrcIP-serverIPBase recomputations on the wired side — needs no
	// further adjustment.
	srv := s.cfg.IndexBase + s.rng.Intn(numServers)
	srvIP := uint32(serverIPBase + srv)
	srvMAC := serverMAC(srv)
	port := s.nextPort
	s.nextPort++
	if s.nextPort < 40000 {
		s.nextPort = 40000
	}

	// Client endpoint: segments ride the wireless uplink.
	cep := tcpsim.NewEndpoint(s.eng, cl.info.IP, port, func(seg tcpsim.Segment) {
		cl.mc.SendUplink(srvMAC, seg.Encode(), nil)
	})
	// Server endpoint: segments traverse the wired network to the AP.
	cliMACv := cl.info.MAC
	remote := spec.Remote
	sep := tcpsim.NewEndpoint(s.eng, srvIP, 80, func(seg tcpsim.Segment) {
		s.wired.Forward(srvMAC, cliMACv, seg, remote)
	})
	// Per-flow congestion control: both sides run the sampled algorithm
	// (fixed compatibility mode draws nothing from the rng at all).
	algo := cc.Fixed
	if s.ccMix != nil {
		algo = s.ccMix.Pick(s.rng.Float64())
		if algo != cc.Fixed {
			cep.SetCongestionControl(cc.MustNew(algo, tcpsim.MSS))
			sep.SetCongestionControl(cc.MustNew(algo, tcpsim.MSS))
		}
	}
	sep.Listen(spec.DownBytes)

	fs := &flowState{ep: cep, server: sep, truthIdx: len(s.out.FlowCCs)}
	cl.flows[port] = fs
	s.out.FlowsStarted++
	s.out.FlowCCs = append(s.out.FlowCCs, FlowCC{
		Key: (&tcpsim.Segment{
			SrcIP: cl.info.IP, SrcPort: port, DstIP: srvIP, DstPort: 80,
		}).Key(),
		Algo:     algo,
		ClientIP: cl.info.IP, ClientPort: port, ServerIP: srvIP,
		UpBytes: spec.UpBytes, DownBytes: spec.DownBytes,
		StartUS: s.eng.Now().US64(),
	})

	done := func(ok bool) {
		if _, live := cl.flows[port]; live {
			delete(cl.flows, port)
			if ok {
				s.out.FlowsCompleted++
			}
			rec := &s.out.FlowCCs[fs.truthIdx]
			rec.Completed = ok
			rec.EndUS = s.eng.Now().US64()
			rec.BytesAcked = cep.Stats.BytesAcked + sep.Stats.BytesAcked
		}
	}
	cep.Done = done
	// The server handler must receive uplink segments: attach a per-flow
	// demux under the server MAC the first time it is used.
	s.attachServer(srv)

	cep.Connect(srvIP, 80, spec.UpBytes)
}

// serverHosts demuxes uplink segments to per-flow server endpoints.
type serverHost struct {
	flows map[tcpsim.FlowKey]*tcpsim.Endpoint
}

// attachServer lazily registers a server MAC on the wired network.
func (s *state) attachServer(idx int) {
	if s.servers == nil {
		s.servers = make(map[int]*serverHost)
	}
	if _, ok := s.servers[idx]; ok {
		return
	}
	sh := &serverHost{flows: make(map[tcpsim.FlowKey]*tcpsim.Endpoint)}
	s.servers[idx] = sh
	s.wired.Attach(serverMAC(idx), func(seg tcpsim.Segment) {
		key := seg.Key()
		ep := sh.flows[key]
		if ep == nil {
			// Locate the flow by the client's registration.
			ep = s.lookupServerEndpoint(seg)
			if ep == nil {
				return
			}
			sh.flows[key] = ep
		}
		ep.OnSegment(seg)
	})
}

// lookupServerEndpoint finds the server endpoint for a segment by asking
// the owning client's flow table.
func (s *state) lookupServerEndpoint(seg tcpsim.Segment) *tcpsim.Endpoint {
	ci := int(seg.SrcIP-clientIPBase) - s.cfg.IndexBase
	if ci < 0 || ci >= len(s.clients) {
		return nil
	}
	if fs, ok := s.clients[ci].flows[seg.SrcPort]; ok {
		return fs.server
	}
	return nil
}

// probeLoop issues background scans.
func (s *state) probeLoop(cl *client) {
	cl.mc.Scan()
	gap := s.cfg.ProbeInterval + sim.Time(s.rng.Int63n(int64(s.cfg.ProbeInterval)+1))
	s.eng.After(gap, func() { s.probeLoop(cl) })
}

// officeLoop broadcasts the MS-Office license announcement.
func (s *state) officeLoop(cl *client) {
	if cl.ready {
		body := append([]byte("MSOFFICE-LICENSE-UDP2222:"), cl.info.MAC[:]...)
		cl.mc.SendLocalBroadcast(body)
	}
	s.eng.After(s.cfg.OfficeInterval, func() { s.officeLoop(cl) })
}

// arpSweep broadcasts a Vernier-style "who-has" through every AP at nearly
// the same moment — they interfere with themselves across the building.
func (s *state) arpSweep() {
	body := []byte("ARP who-has? tell vernier-mgmt")
	for _, ap := range s.aps {
		ap := ap
		// Wired fan-out jitter is microseconds: effectively simultaneous.
		s.eng.After(sim.Time(s.rng.Int63n(int64(200*sim.Microsecond))), func() {
			ap.SendBroadcastDownlink(serverMAC(s.cfg.IndexBase), body)
		})
	}
	s.eng.After(s.cfg.ARPInterval, s.arpSweep)
}

// scheduleOracle adds the §6 controlled experiment: one roaming "oracle
// laptop" visiting locations throughout the building (three per wing per
// floor in the paper), generating the web/ssh/scp workload at each, while
// the ground-truth log records every link-level event it generates.
func (s *state) scheduleOracle() {
	idx := len(s.clients)
	gidx := s.cfg.IndexBase + idx
	pos := building.ClientArea(s.rng)
	id := radio.NodeID(nodeClientBase + idx)
	ccfg := mac.Config{ID: id, MAC: cliMAC(gidx), Channel: 1, PHY: mac.PHY80211g}
	s.med.Register(id, pos, 1, radio.NopListener{}, false)
	bestAP := s.strongestAP(id)
	ccfg.Channel = s.apInfo[bestAP].Channel
	mc := mac.NewClient(s.eng, s.med, pos, ccfg)
	cl := &client{
		info: ClientInfo{
			MAC: cliMAC(gidx), IP: clientIPBase + uint32(gidx), PHY: mac.PHY80211g,
			APIndex: bestAP, Node: id, Pos: pos,
		},
		mc:    mc,
		flows: make(map[uint16]*flowState),
	}
	mc.FromWireless = func(src dot80211.MAC, payload []byte) { s.downlinkToClient(cl, payload) }
	mc.OnAssociated = func() { cl.ready = true }
	s.clients = append(s.clients, cl)
	s.out.Clients = append(s.out.Clients, cl.info)
	s.out.OracleMAC = cl.info.MAC

	// Downlink routing must follow the roaming client's current AP.
	oracleMAC := cl.info.MAC
	s.wired.Attach(oracleMAC, func(seg tcpsim.Segment) {
		ap := s.aps[cl.info.APIndex]
		ap.SendToClient(oracleMAC, serverMAC(int(seg.SrcIP-serverIPBase)), seg.Encode(), nil)
	})

	dwell := s.cfg.Day / sim.Time(s.cfg.OracleLocations)
	visit := func(n int) {}
	visit = func(n int) {
		if n >= s.cfg.OracleLocations {
			return
		}
		loc := building.ClientArea(s.rng)
		s.med.SetPosition(id, loc)
		cl.info.Pos = loc
		best := s.strongestAP(id)
		cl.info.APIndex = best
		cl.ready = false
		s.med.SetChannel(id, dot80211.Channel(s.apInfo[best].Channel))
		cl.mc.Reassociate(apMAC(s.cfg.IndexBase + best))
		s.eng.After(dwell, func() { visit(n + 1) })
	}
	s.eng.At(0, func() {
		visit(0)
		s.flowLoop(cl, s.cfg.Day)
	})
}

// strongestAP returns the index of the AP with the best downlink RSSI at a
// node's current position.
func (s *state) strongestAP(id radio.NodeID) int {
	best, bestRSSI := 0, -1e9
	for ai := range s.aps {
		r := s.med.RSSIBetween(radio.NodeID(nodeAPBase+ai), id, radio.APTxPowerDBm)
		if r > bestRSSI {
			bestRSSI, best = r, ai
		}
	}
	return best
}
