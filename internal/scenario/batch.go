// Batch execution: fan a list of scenario configurations across a worker
// pool. Every scenario is an independent deterministic simulation (its RNG
// is seeded from its Config), so batches parallelize perfectly and results
// do not depend on scheduling — the config-sweep workload the paper's
// evaluation methodology implies (one deployment per operating point).
package scenario

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchResult pairs one config of a batch with what its run produced.
type BatchResult struct {
	Index int
	Cfg   Config
	// Out is the scenario output, retained only when RunBatch was called
	// without a process callback (a callback consumes outputs inside the
	// pool so a long sweep never holds every trace in memory at once).
	Out *Output
	// Err is the scenario error, or the process callback's error.
	Err error
}

// RunBatch simulates every config across a pool of workers (0 = GOMAXPROCS)
// and returns results indexed like cfgs. If process is non-nil it is
// invoked inside the pool as each scenario completes — it runs concurrently
// for distinct indices and must be safe for that — and the output is
// released afterwards instead of being retained in the result.
func RunBatch(cfgs []Config, workers int, process func(idx int, out *Output) error) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]BatchResult, len(cfgs))
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(cfgs) {
					return
				}
				r := BatchResult{Index: i, Cfg: cfgs[i]}
				out, err := Run(cfgs[i])
				switch {
				case err != nil:
					r.Err = err
				case process != nil:
					r.Err = process(i, out)
				default:
					r.Out = out
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	return results
}
