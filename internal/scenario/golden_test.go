package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"testing"
)

// goldenDefaultTraceSHA256 pins the digest of scenario.Default()'s entire
// serialized monitor-trace set. Every substrate change that is supposed to
// be backward compatible (new scenario features behind config gates, rng
// re-plumbing, MAC refactors) must keep the default scenario bit-for-bit:
// a digest change here means every archived trace and every downstream
// golden number silently shifted.
//
// Repin (only for an INTENTIONAL compatibility break):
//
//	go test ./internal/scenario -run TestDefaultTraceGolden -v
//
// and copy the "got" digest printed in the failure into this constant,
// noting the break in CHANGES.md.
const goldenDefaultTraceSHA256 = "b3d0f81f5aee7618ac3078dfd03cd34b42d6da899cf82df6a4b1ebdb2c51c47a"

// TraceDigest hashes a run's per-radio traces in radio-id order: id,
// length, bytes. The digest covers exactly what jigsim would write to
// disk.
func TraceDigest(out *Output) string {
	ids := make([]int32, 0, len(out.Traces))
	for id := range out.Traces {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := sha256.New()
	var hdr [12]byte
	for _, id := range ids {
		b := out.Traces[id].Bytes()
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(id))
		binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(b)))
		h.Write(hdr[:])
		h.Write(b)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestDefaultTraceGolden is the compatibility gate PR 2 only checked by
// hand: the default scenario's trace set must stay byte-identical.
func TestDefaultTraceGolden(t *testing.T) {
	out, err := Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	got := TraceDigest(out)
	if got != goldenDefaultTraceSHA256 {
		t.Fatalf("scenario.Default() trace digest changed:\n  got  %s\n  want %s\n"+
			"If this break is intentional, repin goldenDefaultTraceSHA256 with the got value and document it in CHANGES.md.",
			got, goldenDefaultTraceSHA256)
	}
}
