package workload

import (
	"math/rand"
	"testing"
)

func TestDiurnalShape(t *testing.T) {
	// Midday beats night; the curve is everywhere positive and bounded.
	if DiurnalWeight(12) <= DiurnalWeight(3) {
		t.Error("midday should beat 3am")
	}
	if DiurnalWeight(14) <= DiurnalWeight(21) {
		t.Error("afternoon should beat late evening")
	}
	for h := 0.0; h < 24; h += 0.25 {
		w := DiurnalWeight(h)
		if w <= 0 || w > 1.01 {
			t.Fatalf("weight(%f) = %f out of range", h, w)
		}
	}
}

func TestDiurnalWraps(t *testing.T) {
	if DiurnalWeight(-1) != DiurnalWeight(23) {
		t.Error("negative hours should wrap")
	}
	if DiurnalWeight(25) != DiurnalWeight(1) {
		t.Error("hours ≥24 should wrap")
	}
}

func TestMeetingBumps(t *testing.T) {
	// On-the-hour bumps during the working day (Fig. 8b's burstiness).
	if DiurnalWeight(13.05) <= DiurnalWeight(13.3) {
		t.Error("on-the-hour bump missing")
	}
}

func TestSampleSessionsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	overnight := 0
	for i := 0; i < 500; i++ {
		ss := SampleSessions(rng)
		if len(ss) == 0 {
			t.Fatal("no sessions")
		}
		for _, s := range ss {
			if s.StartHour < 0 || s.StartHour >= 24 {
				t.Fatalf("start hour %f", s.StartHour)
			}
			if s.Hours <= 0 {
				t.Fatalf("duration %f", s.Hours)
			}
		}
		if len(ss) == 1 && ss[0].Hours == 24 {
			overnight++
		}
	}
	// ~10% of clients are always-on devices.
	if overnight < 20 || overnight > 100 {
		t.Errorf("overnight clients = %d/500, want ≈50", overnight)
	}
}

func TestSessionStartsFollowDiurnal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	day, night := 0, 0
	for i := 0; i < 2000; i++ {
		for _, s := range SampleSessions(rng) {
			if s.Hours == 24 {
				continue
			}
			if s.StartHour >= 10 && s.StartHour < 17 {
				day++
			}
			if s.StartHour >= 0 && s.StartHour < 6 {
				night++
			}
		}
	}
	if day <= night*2 {
		t.Errorf("daytime starts (%d) should dominate nighttime (%d)", day, night)
	}
}

func TestSampleFlowMix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kinds := map[FlowKind]int{}
	for i := 0; i < 5000; i++ {
		fs := SampleFlow(rng)
		kinds[fs.Kind]++
		if fs.UpBytes <= 0 || fs.DownBytes <= 0 {
			t.Fatalf("degenerate flow: %+v", fs)
		}
		switch fs.Kind {
		case FlowWeb:
			if fs.DownBytes < fs.UpBytes {
				t.Fatalf("web flows download: %+v", fs)
			}
		case FlowSCP:
			if fs.UpBytes < 10_000 && fs.DownBytes < 10_000 {
				t.Fatalf("scp flows are bulk: %+v", fs)
			}
		}
	}
	if kinds[FlowWeb] < kinds[FlowSSH] || kinds[FlowSSH] < kinds[FlowSCP] {
		t.Errorf("mix ordering wrong: %v", kinds)
	}
	for _, k := range []FlowKind{FlowWeb, FlowSSH, FlowSCP} {
		if kinds[k] == 0 {
			t.Errorf("kind %v never sampled", k)
		}
	}
}

func TestFlowKindString(t *testing.T) {
	if FlowWeb.String() != "web" || FlowSSH.String() != "ssh" || FlowSCP.String() != "scp" {
		t.Error("kind names")
	}
}
