// Package workload models the user population and traffic mix of the
// production network (§7.1): a diurnal activity pattern peaking between
// late morning and late afternoon, a mix of short web flows, interactive
// ssh sessions and bulk scp copies (the same mix the §6 oracle experiment
// generated), plus the broadcast pathologies the paper calls out — the
// Vernier management server's periodic ARPs and the Mac MS-Office
// license-announcement UDP broadcasts (footnote 6).
package workload

import "math/rand"

// DiurnalWeight returns the relative client-activity level at an hour of
// day in [0, 24). The shape follows Fig. 8(a): most clients active from
// 10am to 5pm, many in the early morning and well into the night, and a
// floor of always-on devices overnight.
func DiurnalWeight(hour float64) float64 {
	for hour < 0 {
		hour += 24
	}
	for hour >= 24 {
		hour -= 24
	}
	switch {
	case hour < 6:
		return 0.12 // overnight background devices
	case hour < 8:
		return 0.18
	case hour < 10:
		return 0.30 + (hour-8)/2*0.45 // morning ramp
	case hour < 17:
		return 0.85 + 0.15*bump(hour) // working-day plateau with meeting bumps
	case hour < 20:
		return 0.75 - (hour-17)/3*0.35 // evening decline
	default:
		return 0.25
	}
}

// bump adds the on-the-hour meeting burstiness Fig. 8(b) notes: traffic
// bursts start on hour and half-hour boundaries.
func bump(hour float64) float64 {
	frac := hour - float64(int(hour))
	if frac < 0.15 || (frac > 0.5 && frac < 0.65) {
		return 1.0
	}
	return 0.0
}

// Session is one contiguous active period for a client.
type Session struct {
	StartHour float64
	Hours     float64
}

// SampleSessions draws a client's active periods across a day, weighted by
// the diurnal template. Overnight devices get a single day-long session.
func SampleSessions(rng *rand.Rand) []Session {
	if rng.Float64() < 0.10 {
		// Always-on laptop left running (the overnight population).
		return []Session{{StartHour: 0, Hours: 24}}
	}
	n := 1 + rng.Intn(3)
	out := make([]Session, 0, n)
	for i := 0; i < n; i++ {
		// Rejection-sample a start hour from the diurnal curve.
		var h float64
		for {
			h = rng.Float64() * 24
			if rng.Float64() < DiurnalWeight(h) {
				break
			}
		}
		out = append(out, Session{StartHour: h, Hours: 0.5 + rng.ExpFloat64()*1.5})
	}
	return out
}

// FlowKind labels the traffic classes of the §6 oracle workload.
type FlowKind uint8

// Flow kinds.
const (
	FlowWeb FlowKind = iota // short request, modest response
	FlowSSH                 // interactive: small both ways
	FlowSCP                 // bulk copy
)

// String names the kind.
func (k FlowKind) String() string {
	switch k {
	case FlowWeb:
		return "web"
	case FlowSSH:
		return "ssh"
	default:
		return "scp"
	}
}

// FlowSpec describes one TCP connection to generate.
type FlowSpec struct {
	Kind      FlowKind
	UpBytes   int64 // client → server application bytes
	DownBytes int64 // server → client application bytes
	Remote    bool  // Internet host (higher RTT) vs local distribution net
}

// SampleFlow draws a flow from the paper's mix: mostly web browsing,
// interactive ssh, occasional bulk copies ("producing both short and long
// flows as well as small and large packets").
func SampleFlow(rng *rand.Rand) FlowSpec {
	r := rng.Float64()
	switch {
	case r < 0.62:
		return FlowSpec{
			Kind:      FlowWeb,
			UpBytes:   300 + rng.Int63n(1200),
			DownBytes: 2_000 + rng.Int63n(120_000),
			Remote:    rng.Float64() < 0.8,
		}
	case r < 0.85:
		return FlowSpec{
			Kind:      FlowSSH,
			UpBytes:   200 + rng.Int63n(3_000),
			DownBytes: 500 + rng.Int63n(8_000),
			Remote:    rng.Float64() < 0.3,
		}
	default:
		up := rng.Float64() < 0.5
		size := 50_000 + rng.Int63n(400_000)
		fs := FlowSpec{Kind: FlowSCP, Remote: false}
		if up {
			fs.UpBytes, fs.DownBytes = size, 2_000
		} else {
			fs.UpBytes, fs.DownBytes = 2_000, size
		}
		return fs
	}
}

// Broadcast pathologies (§7.1).

// VernierARPIntervalHours is how often the management server ARP-sweeps
// registered clients; the paper identifies it as the largest ARP source.
// Expressed per simulated hour and scaled by the scenario's compression.
const VernierARPPerHour = 360 // one sweep every 10 s of wall time

// OfficeBroadcastPerHour is the per-infected-client rate of MS-Office
// license broadcasts (footnote 6: almost 100,000 frames in the day trace).
const OfficeBroadcastPerHour = 60

// OfficeClientFraction is the share of clients running the broadcasting
// Mac Office suite.
const OfficeClientFraction = 0.08
