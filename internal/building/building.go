// Package building models the physical environment of the deployment: a
// four-story, 150,000 sq ft office building (the UCSD CSE building of §3.1)
// with production access points and wireless sensor pods placed through it.
//
// The geometry matters because radio propagation — and therefore which
// monitors overhear which transmissions, the raw material of Jigsaw's
// synchronization — is governed by distance and by the walls and floors
// between transmitter and receiver.
package building

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a 3-D position in meters. Z increases with floor height.
type Point struct{ X, Y, Z float64 }

// Distance returns the Euclidean distance between two points in meters.
func (p Point) Distance(q Point) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Dimensions of the modeled building. Four floors of ~115 m x 30 m wings is
// ≈ 150,000 sq ft total, matching the paper.
const (
	FloorsCount   = 4
	FloorHeightM  = 4.0
	BuildingXM    = 115.0
	BuildingYM    = 30.0
	InteriorWallM = 8.0 // mean spacing of interior walls along a path
)

// Floor returns which floor (0-based) a point is on.
func (p Point) Floor() int {
	f := int(p.Z / FloorHeightM)
	if f < 0 {
		f = 0
	}
	if f >= FloorsCount {
		f = FloorsCount - 1
	}
	return f
}

// PodID identifies a sensor pod; RadioID identifies one of the four radios
// of a pod (two per monitor, two monitors per pod, §3.2).
type (
	PodID   int
	RadioID int
)

// Pod is a wireless sensor pod: two monitors a meter apart, four radios
// total, all timestamping with per-monitor clocks. For passive monitoring
// the two monitors are proximate enough to abstract as a single vantage
// point (§3.2), which we model as a single position.
type Pod struct {
	ID       PodID
	Pos      Point
	Radios   []RadioID // 4 radios
	Monitors [][2]int  // index pairs into Radios sharing one clock: {0,1},{2,3}
}

// AP is a production access point.
type AP struct {
	Index int
	Pos   Point
	// Channel assignment: production deployments stripe 1/6/11.
	Channel int
}

// Building is the full environment: geometry plus placements.
type Building struct {
	Pods []Pod
	APs  []AP
}

// Config parameterizes generation.
type Config struct {
	NumPods int // paper: 39
	NumAPs  int // paper: 39 shown + 5 basement = 44; we default 39
	Seed    int64
}

// DefaultConfig mirrors the paper's deployment scale.
func DefaultConfig() Config { return Config{NumPods: 39, NumAPs: 39, Seed: 1} }

// New generates a building with pods and APs laid out on a per-floor grid
// with jitter, mimicking Figure 1: APs along corridors, pods between and
// among them. Pod i's radios are RadioID(4i..4i+3).
func New(cfg Config) *Building {
	if cfg.NumPods <= 0 {
		cfg.NumPods = 39
	}
	if cfg.NumAPs <= 0 {
		cfg.NumAPs = 39
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := &Building{}

	place := func(n int, corridor bool) []Point {
		// Distribute n positions over floors; within a floor, along a grid.
		pts := make([]Point, 0, n)
		perFloor := (n + FloorsCount - 1) / FloorsCount
		for f := 0; f < FloorsCount && len(pts) < n; f++ {
			m := perFloor
			if rem := n - len(pts); m > rem {
				m = rem
			}
			for i := 0; i < m; i++ {
				x := (float64(i) + 0.5) / float64(m) * BuildingXM
				y := BuildingYM / 2
				if !corridor {
					// Pods sit between corridor and offices: offset in Y.
					if i%2 == 0 {
						y = BuildingYM * 0.3
					} else {
						y = BuildingYM * 0.7
					}
				}
				pts = append(pts, Point{
					X: x + rng.NormFloat64()*3,
					Y: y + rng.NormFloat64()*2,
					Z: float64(f)*FloorHeightM + 2.5, // ceiling mounted
				})
			}
		}
		return pts
	}

	apPts := place(cfg.NumAPs, true)
	for i, p := range apPts {
		b.APs = append(b.APs, AP{Index: i, Pos: p, Channel: []int{1, 6, 11}[i%3]})
	}
	podPts := place(cfg.NumPods, false)
	for i, p := range podPts {
		pod := Pod{ID: PodID(i), Pos: p}
		for r := 0; r < 4; r++ {
			pod.Radios = append(pod.Radios, RadioID(i*4+r))
		}
		pod.Monitors = [][2]int{{0, 1}, {2, 3}}
		b.Pods = append(b.Pods, pod)
	}
	return b
}

// RadioPod maps a RadioID back to its pod index.
func (b *Building) RadioPod(r RadioID) PodID { return PodID(int(r) / 4) }

// NumRadios returns the total radio count (4 per pod; 156 at full scale).
func (b *Building) NumRadios() int { return len(b.Pods) * 4 }

// WallsBetween estimates the number of interior walls a straight path
// between two points crosses on the same floor, from the in-plane distance
// and mean wall spacing. Floors crossed are counted separately because
// concrete slabs attenuate far more than drywall.
func WallsBetween(a, c Point) (walls, floors int) {
	dx, dy := a.X-c.X, a.Y-c.Y
	planar := math.Sqrt(dx*dx + dy*dy)
	walls = int(planar / InteriorWallM)
	df := a.Floor() - c.Floor()
	if df < 0 {
		df = -df
	}
	return walls, df
}

// ClientArea returns a uniformly random office position for placing a
// wireless client (clients are dispersed through offices, not corridors).
func ClientArea(rng *rand.Rand) Point {
	return Point{
		X: rng.Float64() * BuildingXM,
		Y: rng.Float64() * BuildingYM,
		Z: float64(rng.Intn(FloorsCount))*FloorHeightM + 1.0, // desk height
	}
}

// ReducePods returns a copy of the building keeping only n pods, removed by
// "visual redundancy" as in §6: pods whose nearest remaining pod is closest
// are dropped first, approximating removing overlapping coverage. This is
// exactly the kind of floorplan-only knowledge the authors used.
func (b *Building) ReducePods(n int) *Building {
	if n >= len(b.Pods) {
		return b
	}
	keep := append([]Pod(nil), b.Pods...)
	for len(keep) > n {
		// Find the pod with the smallest distance to its nearest neighbor.
		worst, worstD := -1, math.Inf(1)
		for i, p := range keep {
			nearest := math.Inf(1)
			for j, q := range keep {
				if i == j {
					continue
				}
				if d := p.Pos.Distance(q.Pos); d < nearest {
					nearest = d
				}
			}
			if nearest < worstD {
				worstD, worst = nearest, i
			}
		}
		keep = append(keep[:worst], keep[worst+1:]...)
	}
	nb := &Building{APs: b.APs, Pods: keep}
	return nb
}

// String summarizes the building for logs.
func (b *Building) String() string {
	return fmt.Sprintf("building{%d pods (%d radios), %d APs, %d floors}",
		len(b.Pods), b.NumRadios(), len(b.APs), FloorsCount)
}
