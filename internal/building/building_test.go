package building

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDefaultScale(t *testing.T) {
	b := New(DefaultConfig())
	if len(b.Pods) != 39 {
		t.Errorf("pods = %d, want 39", len(b.Pods))
	}
	if b.NumRadios() != 156 {
		t.Errorf("radios = %d, want 156", b.NumRadios())
	}
	if len(b.APs) != 39 {
		t.Errorf("APs = %d, want 39", len(b.APs))
	}
}

func TestPodStructure(t *testing.T) {
	b := New(DefaultConfig())
	for _, p := range b.Pods {
		if len(p.Radios) != 4 {
			t.Fatalf("pod %d has %d radios", p.ID, len(p.Radios))
		}
		if len(p.Monitors) != 2 {
			t.Fatalf("pod %d has %d monitors", p.ID, len(p.Monitors))
		}
		for _, r := range p.Radios {
			if b.RadioPod(r) != p.ID {
				t.Fatalf("RadioPod(%d) = %d, want %d", r, b.RadioPod(r), p.ID)
			}
		}
	}
}

func TestAPChannelStriping(t *testing.T) {
	b := New(DefaultConfig())
	seen := map[int]int{}
	for _, ap := range b.APs {
		seen[ap.Channel]++
	}
	for _, ch := range []int{1, 6, 11} {
		if seen[ch] < 10 {
			t.Errorf("channel %d only on %d APs", ch, seen[ch])
		}
	}
}

func TestPositionsInsideBuilding(t *testing.T) {
	b := New(DefaultConfig())
	check := func(p Point, what string) {
		if p.X < -15 || p.X > BuildingXM+15 || p.Y < -15 || p.Y > BuildingYM+15 {
			t.Errorf("%s out of footprint: %+v", what, p)
		}
		if f := p.Floor(); f < 0 || f >= FloorsCount {
			t.Errorf("%s floor %d out of range", what, f)
		}
	}
	for _, ap := range b.APs {
		check(ap.Pos, "AP")
	}
	for _, pod := range b.Pods {
		check(pod.Pos, "pod")
	}
}

func TestAllFloorsCovered(t *testing.T) {
	b := New(DefaultConfig())
	podFloors, apFloors := map[int]bool{}, map[int]bool{}
	for _, p := range b.Pods {
		podFloors[p.Pos.Floor()] = true
	}
	for _, a := range b.APs {
		apFloors[a.Pos.Floor()] = true
	}
	for f := 0; f < FloorsCount; f++ {
		if !podFloors[f] {
			t.Errorf("no pods on floor %d", f)
		}
		if !apFloors[f] {
			t.Errorf("no APs on floor %d", f)
		}
	}
}

func TestDistance(t *testing.T) {
	a := Point{0, 0, 0}
	b := Point{3, 4, 0}
	if d := a.Distance(b); d != 5 {
		t.Errorf("distance = %f", d)
	}
	if d := a.Distance(a); d != 0 {
		t.Errorf("self distance = %f", d)
	}
}

func TestWallsBetween(t *testing.T) {
	a := Point{0, 0, 2}
	b := Point{40, 0, 2}
	w, f := WallsBetween(a, b)
	if w != 5 {
		t.Errorf("walls = %d, want 5 (40m / 8m spacing)", w)
	}
	if f != 0 {
		t.Errorf("floors = %d, want 0", f)
	}
	c := Point{0, 0, 2 + 2*FloorHeightM}
	_, f = WallsBetween(a, c)
	if f != 2 {
		t.Errorf("floors = %d, want 2", f)
	}
}

func TestReducePods(t *testing.T) {
	b := New(DefaultConfig())
	for _, n := range []int{30, 20, 10} {
		r := b.ReducePods(n)
		if len(r.Pods) != n {
			t.Errorf("ReducePods(%d) kept %d", n, len(r.Pods))
		}
		if len(r.APs) != len(b.APs) {
			t.Error("ReducePods must not touch APs")
		}
	}
	// Reducing to current size or more is the identity.
	if r := b.ReducePods(len(b.Pods)); r != b {
		t.Error("ReducePods(n>=len) should return the receiver")
	}
	// Original must be unmodified.
	if len(b.Pods) != 39 {
		t.Error("ReducePods mutated the original")
	}
}

func TestReducePodsKeepsSpread(t *testing.T) {
	// The removal heuristic drops redundant (clustered) pods, so the
	// remaining set should preserve floor coverage at n=20.
	b := New(DefaultConfig())
	r := b.ReducePods(20)
	floors := map[int]bool{}
	for _, p := range r.Pods {
		floors[p.Pos.Floor()] = true
	}
	if len(floors) < 3 {
		t.Errorf("only %d floors covered after reduction", len(floors))
	}
}

func TestClientArea(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		p := ClientArea(rng)
		if p.X < 0 || p.X > BuildingXM || p.Y < 0 || p.Y > BuildingYM {
			t.Fatalf("client outside building: %+v", p)
		}
	}
}

func TestQuickDistanceMetric(t *testing.T) {
	// Property: distance is symmetric and satisfies the triangle inequality.
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay), 0}
		b := Point{float64(bx), float64(by), 0}
		c := Point{float64(cx), float64(cy), 0}
		if a.Distance(b) != b.Distance(a) {
			return false
		}
		return a.Distance(c) <= a.Distance(b)+b.Distance(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringer(t *testing.T) {
	b := New(DefaultConfig())
	if s := b.String(); s == "" {
		t.Error("empty String()")
	}
}
