// Package baseline implements the comparison points the paper positions
// Jigsaw against:
//
//   - BeaconSync: Yeo et al.'s approach — synchronize traces using beacon
//     frames from APs as the only references, with no skew tracking or
//     continuous resynchronization. Works for a handful of monitors near
//     one AP; at building scale it degrades because beacons from one AP do
//     not cover all monitors and clock skew between beacons goes
//     uncorrected.
//   - NaiveMerge: a mergecap-style union of traces by raw local timestamps,
//     deduplicating only exact (timestamp, content) matches. This is what
//     conventional tooling offers and it neither unifies duplicates (clock
//     offsets differ) nor orders frames correctly.
//
// The ablation benches quantify both against Jigsaw's synchronization.
package baseline

import (
	"sort"

	"repro/internal/dot80211"
	"repro/internal/timesync"
	"repro/internal/tracefile"
)

// BeaconSyncResult mirrors timesync.Result for the beacon-only algorithm.
type BeaconSyncResult struct {
	OffsetUS map[int32]int64
	Unsynced []int32
}

// Synced reports whether all radios were covered.
func (r *BeaconSyncResult) Synced() bool { return len(r.Unsynced) == 0 }

// BeaconSync computes per-radio offsets using only beacon frames observed
// in the window, anchored pairwise like Yeo et al.'s merge. It uses the
// same transitive BFS as Jigsaw's bootstrap but restricted to beacons, and
// applies no skew model afterwards.
func BeaconSync(recs []tracefile.Record) *BeaconSyncResult {
	radios := map[int32]bool{}
	type obs struct {
		radio int32
		local int64
	}
	sets := map[uint64][]obs{}
	for i := range recs {
		rec := &recs[i]
		radios[rec.RadioID] = true
		if !rec.FCSOK() {
			continue
		}
		f, _, err := dot80211.DecodeCapture(rec.Frame)
		if err != nil || !f.IsBeacon() {
			continue
		}
		key := timesync.ContentKey(rec.Frame)
		sets[key] = append(sets[key], obs{rec.RadioID, rec.LocalUS})
	}
	type edge struct {
		to    int32
		delta int64
	}
	adj := map[int32][]edge{}
	// Build adjacency in sorted content-key order: the BFS below assigns
	// each radio's offset through the first edge that reaches it, so
	// insertion order must not depend on map iteration (the timesync
	// bootstrap had this exact bug; jiglint's mapiterorder now flags it).
	keys := make([]uint64, 0, len(sets))
	for k := range sets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		os := sets[k]
		if len(os) < 2 {
			continue
		}
		base := os[0]
		for _, o := range os[1:] {
			adj[base.radio] = append(adj[base.radio], edge{o.radio, base.local - o.local})
			adj[o.radio] = append(adj[o.radio], edge{base.radio, o.local - base.local})
		}
	}
	all := make([]int32, 0, len(radios))
	for r := range radios {
		all = append(all, r)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := &BeaconSyncResult{OffsetUS: map[int32]int64{}}
	if len(all) == 0 {
		return res
	}
	res.OffsetUS[all[0]] = 0
	queue := []int32{all[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if _, ok := res.OffsetUS[e.to]; ok {
				continue
			}
			res.OffsetUS[e.to] = res.OffsetUS[cur] + e.delta
			queue = append(queue, e.to)
		}
	}
	for _, r := range all {
		if _, ok := res.OffsetUS[r]; !ok {
			res.Unsynced = append(res.Unsynced, r)
		}
	}
	return res
}

// MergedFrame is one entry of a naive merge.
type MergedFrame struct {
	LocalUS int64
	Radio   int32
	Frame   []byte
}

// NaiveMerge unions traces sorted by raw local timestamps, collapsing only
// records whose timestamp difference is within tolUS AND whose bytes match
// exactly — mergecap's model. Returns the merged list and how many
// duplicates it managed to collapse (Jigsaw collapses nearly all; the naive
// merge collapses almost none because local clocks disagree by far more
// than tolUS).
func NaiveMerge(traces map[int32][]tracefile.Record, tolUS int64) ([]MergedFrame, int) {
	var all []MergedFrame
	for radio, recs := range traces {
		for _, r := range recs {
			if len(r.Frame) == 0 {
				continue
			}
			all = append(all, MergedFrame{r.LocalUS, radio, r.Frame})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].LocalUS != all[j].LocalUS {
			return all[i].LocalUS < all[j].LocalUS
		}
		return all[i].Radio < all[j].Radio
	})
	out := all[:0]
	collapsed := 0
	for _, f := range all {
		dup := false
		for k := len(out) - 1; k >= 0 && f.LocalUS-out[k].LocalUS <= tolUS; k-- {
			if string(out[k].Frame) == string(f.Frame) {
				dup = true
				break
			}
		}
		if dup {
			collapsed++
			continue
		}
		out = append(out, f)
	}
	return out, collapsed
}

// SyncErrorUS measures, for a set of per-radio offsets, the worst-case
// disagreement in placing shared reference frames: for every frame heard by
// ≥2 radios, the spread of (local + offset) across its receivers. This is
// the baseline equivalent of Jigsaw's group dispersion.
func SyncErrorUS(recs []tracefile.Record, offsets map[int32]int64) []int64 {
	type obs struct {
		radio int32
		local int64
	}
	sets := map[uint64][]obs{}
	for i := range recs {
		rec := &recs[i]
		if !rec.FCSOK() {
			continue
		}
		f, _, err := dot80211.DecodeCapture(rec.Frame)
		if err != nil || !f.UniqueForSync() {
			continue
		}
		key := timesync.ContentKey(rec.Frame)
		sets[key] = append(sets[key], obs{rec.RadioID, rec.LocalUS})
	}
	var out []int64
	for _, os := range sets {
		var lo, hi int64
		n := 0
		for _, o := range os {
			off, ok := offsets[o.radio]
			if !ok {
				continue
			}
			u := o.local + off
			if n == 0 || u < lo {
				lo = u
			}
			if n == 0 || u > hi {
				hi = u
			}
			n++
		}
		if n >= 2 {
			out = append(out, hi-lo)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
