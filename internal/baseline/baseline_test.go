package baseline

import (
	"testing"

	"repro/internal/dot80211"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/timesync"
	"repro/internal/tracefile"
)

func beaconRec(radio int32, localUS int64, ap byte, tsf uint64) tracefile.Record {
	f := dot80211.NewBeacon(dot80211.MAC{0xaa, 0, 0, 0, 0, ap}, uint16(tsf)&0xfff, tsf, "net")
	return tracefile.Record{
		LocalUS: localUS, RadioID: radio, Channel: 1,
		Rate: uint16(dot80211.Rate1Mbps), Flags: tracefile.FlagFCSOK, Frame: f.Encode(),
	}
}

func dataRec(radio int32, localUS int64, seq uint16) tracefile.Record {
	f := dot80211.NewData(dot80211.MAC{2, 9}, dot80211.MAC{2, 1}, dot80211.MAC{2, 3}, seq, []byte{byte(seq)})
	return tracefile.Record{
		LocalUS: localUS, RadioID: radio, Channel: 1,
		Rate: uint16(dot80211.Rate11Mbps), Flags: tracefile.FlagFCSOK, Frame: f.Encode(),
	}
}

func TestBeaconSyncSimple(t *testing.T) {
	recs := []tracefile.Record{
		beaconRec(0, 1000, 1, 42), beaconRec(1, 6000, 1, 42),
	}
	res := BeaconSync(recs)
	if !res.Synced() {
		t.Fatalf("unsynced: %v", res.Unsynced)
	}
	if d := res.OffsetUS[0] - res.OffsetUS[1]; d != 5000 {
		t.Errorf("offset delta = %d, want 5000", d)
	}
}

func TestBeaconSyncIgnoresData(t *testing.T) {
	// Only data frames shared: beacon-only sync fails where Jigsaw works.
	recs := []tracefile.Record{
		dataRec(0, 1000, 7), dataRec(1, 2000, 7),
	}
	res := BeaconSync(recs)
	if res.Synced() {
		t.Error("beacon sync should not use data frames")
	}
	boot, err := timesync.Bootstrap(recs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !boot.Synced() {
		t.Error("Jigsaw bootstrap should sync via data frames")
	}
}

func TestBeaconSyncPartitionAcrossAPs(t *testing.T) {
	// Radios 0,1 hear AP1; radios 2,3 hear AP2; nothing bridges.
	recs := []tracefile.Record{
		beaconRec(0, 1000, 1, 10), beaconRec(1, 1100, 1, 10),
		beaconRec(2, 2000, 2, 20), beaconRec(3, 2100, 2, 20),
	}
	res := BeaconSync(recs)
	if res.Synced() {
		t.Error("disjoint beacon domains should partition")
	}
}

// TestBeaconSyncDeterministic pins the fix jiglint's mapiterorder
// checker demanded: adjacency was built by ranging over the reference-
// set map, and with two beacon references giving inconsistent pairwise
// deltas (clock noise between beacons — exactly what BeaconSync's
// missing skew model produces), the BFS's first-path-wins assignment
// made OffsetUS depend on map iteration order. Go randomizes that order
// per range statement, so with the bug present identical inputs
// disagree with themselves within a single process; with the sorted-key
// fix every run must pick the same path.
func TestBeaconSyncDeterministic(t *testing.T) {
	recs := []tracefile.Record{
		// Reference A (ap 1): r0@0, r1@10  → delta -10.
		beaconRec(0, 0, 1, 10), beaconRec(1, 10, 1, 10),
		// Reference B (ap 2): r0@100, r1@130 → delta -30 (inconsistent).
		beaconRec(0, 100, 2, 20), beaconRec(1, 130, 2, 20),
	}
	first := BeaconSync(recs)
	if !first.Synced() {
		t.Fatalf("unsynced: %v", first.Unsynced)
	}
	if got := first.OffsetUS[1]; got != -10 && got != -30 {
		t.Fatalf("OffsetUS[1] = %d, want one of the pairwise deltas -10/-30", got)
	}
	for i := 0; i < 64; i++ {
		res := BeaconSync(recs)
		if res.OffsetUS[1] != first.OffsetUS[1] {
			t.Fatalf("run %d: OffsetUS[1] = %d, first run had %d — adjacency order leaked map iteration order",
				i, res.OffsetUS[1], first.OffsetUS[1])
		}
	}
}

func TestNaiveMergeMissesOffsetDuplicates(t *testing.T) {
	// The same frame at two radios with a 5 ms clock offset: naive merge
	// with a 100 µs tolerance cannot collapse it.
	f := dataRec(0, 1000, 3)
	g := dataRec(1, 6000, 3)
	merged, collapsed := NaiveMerge(map[int32][]tracefile.Record{0: {f}, 1: {g}}, 100)
	if collapsed != 0 || len(merged) != 2 {
		t.Errorf("naive merge collapsed %d, kept %d; clock offsets defeat it", collapsed, len(merged))
	}
	// With aligned clocks it would have worked.
	g.LocalUS = 1040
	merged, collapsed = NaiveMerge(map[int32][]tracefile.Record{0: {f}, 1: {g}}, 100)
	if collapsed != 1 || len(merged) != 1 {
		t.Errorf("aligned duplicates should collapse: %d/%d", collapsed, len(merged))
	}
}

func TestNaiveMergeOrdering(t *testing.T) {
	traces := map[int32][]tracefile.Record{
		0: {dataRec(0, 5000, 1), dataRec(0, 9000, 2)},
		1: {dataRec(1, 7000, 3)},
	}
	merged, _ := NaiveMerge(traces, 0)
	for i := 1; i < len(merged); i++ {
		if merged[i].LocalUS < merged[i-1].LocalUS {
			t.Fatal("merge not time-ordered")
		}
	}
}

func TestSyncErrorMeasuresSpread(t *testing.T) {
	recs := []tracefile.Record{
		dataRec(0, 1000, 5), dataRec(1, 2000, 5),
	}
	// Perfect offsets: spread 0.
	errs := SyncErrorUS(recs, map[int32]int64{0: 1000, 1: 0})
	if len(errs) != 1 || errs[0] != 0 {
		t.Errorf("errs = %v, want [0]", errs)
	}
	// Bad offsets: spread = 500.
	errs = SyncErrorUS(recs, map[int32]int64{0: 1500, 1: 0})
	if len(errs) != 1 || errs[0] != 500 {
		t.Errorf("errs = %v, want [500]", errs)
	}
}

// End-to-end: on a real multi-radio scenario, Jigsaw's bootstrap beats the
// beacon-only baseline measured by worst-case reference placement error.
func TestJigsawBeatsBeaconBaseline(t *testing.T) {
	cfg := scenario.Default()
	cfg.Pods, cfg.APs, cfg.Clients = 6, 6, 10
	cfg.Day = 20 * sim.Second
	out, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recs []tracefile.Record
	for _, buf := range out.Traces {
		rs, err := tracefile.ReadAll(buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			// Score static offsets over a short window: both algorithms
			// produce fixed offsets, so over long horizons uncorrected
			// clock skew (±20 ppm ≈ ±200 µs over 10 s) swamps both — it is
			// the continuous resynchronization of the full pipeline, not
			// the bootstrap, that handles skew.
			if r.LocalUS < 2_500_000 {
				recs = append(recs, r)
			}
		}
	}
	boot, err := timesync.Bootstrap(recs, out.ClockGroups)
	if err != nil {
		t.Fatal(err)
	}
	beacon := BeaconSync(recs)

	jig := SyncErrorUS(recs, boot.OffsetUS)
	base := SyncErrorUS(recs, beacon.OffsetUS)
	if len(jig) == 0 || len(base) == 0 {
		t.Fatal("no shared references to score")
	}
	p90 := func(v []int64) int64 { return v[int(float64(len(v))*0.9)] }
	// Jigsaw's bootstrap must be at least comparable on placement error
	// (small tolerance: both coast on static offsets here)...
	if p90(jig) > p90(base)+p90(base)/5+20 {
		t.Errorf("jigsaw p90 error %d µs much worse than beacon baseline %d µs", p90(jig), p90(base))
	}
	// ...and strictly better on how many shared references it can place at
	// all (data frames bridge radios beacons never co-cover).
	if len(jig) < len(base) {
		t.Errorf("jigsaw placed %d shared references, beacon baseline %d", len(jig), len(base))
	}
	// The beacon baseline covers fewer radios than Jigsaw.
	if len(beacon.OffsetUS) > len(boot.OffsetUS) {
		t.Error("beacon baseline synced more radios than Jigsaw?")
	}
}
