package hmerge

import (
	"bufio"
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"repro/internal/timesync"
	"repro/internal/tracefile"
	"repro/internal/unify"
)

// BootstrapMeta is a building's bootstrap result in sidecar form: the
// per-radio universal-time offsets the global merge needs to aggregate a
// campus-level timesync.Result without re-running the bootstrap.
type BootstrapMeta struct {
	// OffsetUS maps radio → T_i such that universal = local + T_i.
	OffsetUS map[int32]int64
	// Root anchors the building's universal time (T_root = 0).
	Root int32
	// Unsynced lists radios with no path to the root.
	Unsynced []int32 `json:",omitempty"`
	// RefFrames and Candidates carry the bootstrap's reference-frame
	// accounting through to campus-level reports.
	RefFrames  int
	Candidates int
}

// bootstrapMetaFrom converts a bootstrap result to sidecar form.
func bootstrapMetaFrom(r *timesync.Result) BootstrapMeta {
	return BootstrapMeta{
		OffsetUS:   r.OffsetUS,
		Root:       r.Root,
		Unsynced:   r.Unsynced,
		RefFrames:  r.RefFrames,
		Candidates: r.Candidates,
	}
}

// Result converts the sidecar form back to a timesync.Result.
func (m BootstrapMeta) Result() *timesync.Result {
	return &timesync.Result{
		OffsetUS:   m.OffsetUS,
		Root:       m.Root,
		Unsynced:   m.Unsynced,
		RefFrames:  m.RefFrames,
		Candidates: m.Candidates,
	}
}

// Meta is the intermediate stream's metadata sidecar: everything the global
// merge needs to know about a building's stream without decoding it —
// roster, record count, the stream's time span (LastUnivUS doubles as the
// building's watermark), and the per-building unify/bootstrap accounting
// that aggregates into the campus result.
type Meta struct {
	// Building labels the stream (typically its source directory's name).
	Building string `json:",omitempty"`
	// Radios lists every radio present in the building's trace directory.
	Radios []int32
	// JFrames counts serialized records.
	JFrames int64
	// FirstUnivUS/LastUnivUS bound the stream's universal-time span;
	// LastUnivUS is the stream's watermark (streams are sorted, so no
	// record past the end precedes it).
	FirstUnivUS int64
	LastUnivUS  int64
	// Unify carries the building's unification stats.
	Unify unify.Stats
	// Bootstrap carries the building's synchronization result.
	Bootstrap BootstrapMeta
}

// MetaPath names a stream's metadata sidecar.
func MetaPath(streamPath string) string { return streamPath + ".json" }

// WriteMetaFile writes a stream's metadata sidecar.
func WriteMetaFile(path string, m *Meta) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("hmerge: encode meta: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("hmerge: write meta: %w", err)
	}
	return nil
}

// ReadMetaFile reads a stream's metadata sidecar.
func ReadMetaFile(path string) (*Meta, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hmerge: read meta: %w", err)
	}
	var m Meta
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("hmerge: parse meta %s: %w", path, err)
	}
	return &m, nil
}

// UnifyConfig tunes a per-building unify worker.
type UnifyConfig struct {
	// Unify holds the unifier's operating point; zero value takes the
	// defaults.
	Unify unify.Config
	// BootstrapWindowUS is how much of each trace the bootstrap examines
	// (0: the paper's first second).
	BootstrapWindowUS int64
	// Workers parallelizes the bootstrap pre-scan (0: GOMAXPROCS).
	// Unification itself is inherently serial per building — cross-building
	// parallelism comes from running one worker per building.
	Workers int
}

// Unify runs one building's bootstrap + unification and serializes the
// unifier's emission stream to w. This is exactly the front half of
// core.RunFrom — same bootstrap, same unifier, same stream — with the
// reconstruction stages replaced by the codec, so the jframes a
// hierarchical run merges back are the jframes a flat run would have seen.
// Unification is deterministic, which makes the serialized bytes
// deterministic too: any worker, in any process, produces the identical
// file for the same inputs.
func Unify(ts *tracefile.TraceSet, clockGroups [][]int32, cfg UnifyConfig, w io.Writer) (*Meta, error) {
	if ts == nil || ts.Len() == 0 {
		return nil, fmt.Errorf("hmerge: no traces")
	}
	if cfg.BootstrapWindowUS == 0 {
		cfg.BootstrapWindowUS = timesync.DefaultWindowUS
	}
	if cfg.Unify.SearchWindowUS == 0 {
		cfg.Unify = unify.DefaultConfig()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Bootstrap pre-scan over each trace's first window.
	readers := make(map[int32]*tracefile.Reader, ts.Len())
	closers := make([]io.Closer, 0, ts.Len())
	closeAll := func() error {
		var first error
		for _, c := range closers {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
		closers = closers[:0]
		return first
	}
	for _, r := range ts.Radios() {
		rc, err := ts.Open(r)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("hmerge: open trace for radio %d: %w", r, err)
		}
		closers = append(closers, rc)
		readers[r] = tracefile.NewReader(rc)
	}
	window, err := timesync.CollectWindowParallel(readers, cfg.BootstrapWindowUS, workers)
	if cerr := closeAll(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("hmerge: bootstrap window: %w", err)
	}
	boot, err := timesync.Bootstrap(window, clockGroups)
	if err != nil {
		return nil, fmt.Errorf("hmerge: bootstrap: %w", err)
	}

	// Unify and serialize.
	sources := make(map[int32]unify.Source, ts.Len())
	for _, r := range ts.Radios() {
		sources[r] = &buildSource{ts: ts, radio: r}
	}
	u := unify.New(cfg.Unify, sources, boot)
	wtr, err := NewWriter(w)
	if err != nil {
		return nil, err
	}
	// The unifier's emission order can invert by up to its search window
	// (a group is held until its window closes, so a short group can be
	// emitted after a later-starting long one). The intermediate format is
	// strictly sorted, so a bounded reorder heap sits between the unifier
	// and the writer: frames are released only once the emission frontier
	// has moved reorderSlackFactor search windows past them — far beyond
	// the unifier's actual inversion bound. A violation still surfaces as
	// a hard error from WriteJFrame rather than a corrupt stream. Ties
	// release in emission order, keeping the stream deterministic.
	slackUS := reorderSlackFactor * cfg.Unify.SearchWindowUS
	var rh reorderHeap
	flush := func(limitUS int64) error {
		for rh.Len() > 0 && rh[0].j.UnivUS <= limitUS {
			it := heap.Pop(&rh).(reorderItem)
			err := wtr.WriteJFrame(it.j)
			// The heap held the unifier's reference; the writer has copied
			// everything it needs, so the frame recycles here.
			it.j.Release()
			if err != nil {
				return err
			}
		}
		return nil
	}
	var seq int64
	maxUS := int64(math.MinInt64)
	for {
		j, err := u.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("hmerge: unify: %w", err)
		}
		heap.Push(&rh, reorderItem{j: j, seq: seq})
		seq++
		if j.UnivUS > maxUS {
			maxUS = j.UnivUS
		}
		if err := flush(maxUS - slackUS); err != nil {
			return nil, err
		}
	}
	if err := flush(math.MaxInt64); err != nil {
		return nil, err
	}
	if err := wtr.Close(); err != nil {
		return nil, err
	}
	if err := buildSourceFaults(sources); err != nil {
		return nil, err
	}
	return &Meta{
		Radios:      ts.Radios(),
		JFrames:     wtr.JFrames,
		FirstUnivUS: wtr.FirstUnivUS,
		LastUnivUS:  wtr.WatermarkUS,
		Unify:       u.Stats,
		Bootstrap:   bootstrapMetaFrom(boot),
	}, nil
}

// reorderSlackFactor sizes Unify's reorder heap in unify search windows:
// frames are held until the emission frontier is this many windows ahead.
// The unifier's inversion bound is about one search window; 16 leaves a
// wide margin at bounded memory (≤ 16 windows of jframes in flight).
const reorderSlackFactor = 16

// reorderItem is one buffered jframe awaiting release in UnivUS order;
// seq breaks timestamp ties by emission order.
type reorderItem struct {
	j   *unify.JFrame
	seq int64
}

// reorderHeap is a min-heap by (UnivUS, emission sequence).
type reorderHeap []reorderItem

func (h reorderHeap) Len() int { return len(h) }
func (h reorderHeap) Less(i, k int) bool {
	if h[i].j.UnivUS != h[k].j.UnivUS {
		return h[i].j.UnivUS < h[k].j.UnivUS
	}
	return h[i].seq < h[k].seq
}
func (h reorderHeap) Swap(i, k int) { h[i], h[k] = h[k], h[i] }
func (h *reorderHeap) Push(x any)   { *h = append(*h, x.(reorderItem)) }
func (h *reorderHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = reorderItem{}
	*h = old[:n-1]
	return it
}

// UnifyDir is Unify over a trace directory, writing the stream to outPath
// and its metadata sidecar next to it. The stream is labeled with the
// source directory's base name.
func UnifyDir(srcDir, outPath string, clockGroups [][]int32, cfg UnifyConfig) (*Meta, error) {
	ts, err := tracefile.OpenDir(srcDir)
	if err != nil {
		return nil, err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return nil, fmt.Errorf("hmerge: create stream: %w", err)
	}
	bw := bufio.NewWriterSize(f, 128*1024)
	meta, err := Unify(ts, clockGroups, cfg, bw)
	if err != nil {
		_ = f.Close() // error-path cleanup; the unify error wins
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close() // error-path cleanup; the flush error wins
		return nil, fmt.Errorf("hmerge: flush stream: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("hmerge: close stream: %w", err)
	}
	meta.Building = filepath.Base(srcDir)
	if err := WriteMetaFile(MetaPath(outPath), meta); err != nil {
		return nil, err
	}
	return meta, nil
}

// openBuffered opens a stream file fronted by a read buffer.
func openBuffered(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &bufReadCloser{Reader: bufio.NewReaderSize(f, 128*1024), c: f}, nil
}

type bufReadCloser struct {
	*bufio.Reader
	c io.Closer
}

func (b *bufReadCloser) Close() error { return b.c.Close() }

// buildSource adapts one TraceSet radio to unify.Source, mirroring core's
// reader source: lazy open (the unifier never opens unsynchronized radios),
// self-closing at end of trace, and fault-latching — a mid-stream read
// error must fail the worker after the pass rather than silently truncate
// the building's stream.
type buildSource struct {
	ts    *tracefile.TraceSet
	radio int32
	r     *tracefile.Reader
	rc    io.Closer
	done  bool
	err   error
}

func (s *buildSource) Next() (tracefile.Record, error) {
	if s.done {
		return tracefile.Record{}, io.EOF
	}
	if s.r == nil {
		rc, err := s.ts.Open(s.radio)
		if err != nil {
			s.done, s.err = true, err
			return tracefile.Record{}, err
		}
		s.rc = rc
		s.r = tracefile.NewReader(rc)
	}
	rec, err := s.r.Next()
	if err != nil {
		s.done = true
		cerr := s.rc.Close()
		if err == io.EOF && cerr != nil {
			err = cerr
		}
		if err != io.EOF {
			s.err = err
		}
		return tracefile.Record{}, err
	}
	return rec, nil
}

// buildSourceFaults surfaces the first latched per-radio fault.
func buildSourceFaults(sources map[int32]unify.Source) error {
	radios := make([]int32, 0, len(sources))
	for r := range sources {
		radios = append(radios, r)
	}
	sort.Slice(radios, func(i, j int) bool { return radios[i] < radios[j] })
	for _, r := range radios {
		if bs, ok := sources[r].(*buildSource); ok && bs.err != nil {
			return fmt.Errorf("hmerge: trace for radio %d: %w", r, bs.err)
		}
	}
	return nil
}
