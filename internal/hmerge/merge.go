package hmerge

import (
	"container/heap"
	"fmt"
	"io"

	"repro/internal/unify"
)

// Stream is one building's opened intermediate stream: its metadata sidecar
// plus a positioned reader. A Stream is one-shot — it is consumed by a
// single merge pass and cannot be rewound.
type Stream struct {
	Meta *Meta
	r    *Reader
	c    io.Closer
}

// NewStream wraps an already-open intermediate stream (e.g. an in-memory
// buffer in tests). meta may be nil when only the jframes matter.
func NewStream(meta *Meta, r io.Reader) *Stream {
	return &Stream{Meta: meta, r: NewReader(r)}
}

// OpenStream opens an intermediate stream file and its metadata sidecar.
func OpenStream(path string) (*Stream, error) {
	meta, err := ReadMetaFile(MetaPath(path))
	if err != nil {
		return nil, err
	}
	f, err := openBuffered(path)
	if err != nil {
		return nil, fmt.Errorf("hmerge: open stream: %w", err)
	}
	return &Stream{Meta: meta, r: NewReader(f), c: f}, nil
}

// OpenStreams opens every path, closing any already-open streams on error.
func OpenStreams(paths []string) ([]*Stream, error) {
	streams := make([]*Stream, 0, len(paths))
	for _, p := range paths {
		s, err := OpenStream(p)
		if err != nil {
			for _, prev := range streams {
				_ = prev.Close() // error-path cleanup; the open error wins
			}
			return nil, err
		}
		streams = append(streams, s)
	}
	return streams, nil
}

// Label names the stream for error messages.
func (s *Stream) Label() string {
	if s.Meta != nil && s.Meta.Building != "" {
		return s.Meta.Building
	}
	return "stream"
}

// Next returns the stream's next jframe (io.EOF at clean end).
func (s *Stream) Next() (*unify.JFrame, error) { return s.r.Next() }

// Close releases the underlying file, if any.
func (s *Stream) Close() error {
	if s.c == nil {
		return nil
	}
	return s.c.Close()
}

// mergeCursor abstracts how a stream's jframes reach the merger: directly,
// or through a prefetching goroutine that overlaps decompression across
// streams.
type mergeCursor interface {
	next() (*unify.JFrame, error)
}

type directCursor struct{ s *Stream }

func (c directCursor) next() (*unify.JFrame, error) { return c.s.Next() }

// mergePrefetchBatch sizes the prefetch batches; like the tracefile
// prefetchers, small batch × small channel keeps per-stream buffering
// bounded while amortizing channel synchronization.
const (
	mergePrefetchBatch   = 64
	mergePrefetchChanBuf = 2
)

// prefetchCursor decodes a stream in a background goroutine. errp is
// written before ch closes, so reading it after the channel drains is
// race-free.
type prefetchCursor struct {
	ch   <-chan []*unify.JFrame
	cur  []*unify.JFrame
	i    int
	errp *error
}

func newPrefetchCursor(s *Stream) *prefetchCursor {
	ch := make(chan []*unify.JFrame, mergePrefetchChanBuf)
	errp := new(error)
	go func() {
		defer close(ch)
		batch := make([]*unify.JFrame, 0, mergePrefetchBatch)
		for {
			j, err := s.Next()
			if err != nil {
				if err != io.EOF {
					*errp = err
				}
				if len(batch) > 0 {
					ch <- batch
				}
				return
			}
			batch = append(batch, j)
			if len(batch) == mergePrefetchBatch {
				ch <- batch
				batch = make([]*unify.JFrame, 0, mergePrefetchBatch)
			}
		}
	}()
	return &prefetchCursor{ch: ch, errp: errp}
}

func (c *prefetchCursor) next() (*unify.JFrame, error) {
	for c.i >= len(c.cur) {
		cur, ok := <-c.ch
		if !ok {
			if *c.errp != nil {
				return nil, *c.errp
			}
			return nil, io.EOF
		}
		c.cur, c.i = cur, 0
	}
	j := c.cur[c.i]
	c.i++
	return j, nil
}

// mergeItem is one stream's head inside the merge heap.
type mergeItem struct {
	j   *unify.JFrame
	idx int
	cur mergeCursor
}

type mergeHeap []*mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].j.UnivUS != h[j].j.UnivUS {
		return h[i].j.UnivUS < h[j].j.UnivUS
	}
	return h[i].idx < h[j].idx
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Merger is the global k-way merge: it interleaves k sorted intermediate
// streams into one jframe sequence ordered by (UnivUS, stream index). The
// stream-index tiebreak makes the merged order deterministic for any fixed
// stream list — the hierarchical path's analogue of the unifier's canonical
// emission order.
//
// Unlike live radios (where the unifier drops a dead source and continues),
// intermediate files are pipeline-owned: any stream error is a hard error.
type Merger struct {
	streams []*Stream
	h       mergeHeap
	started bool
	// prefetch overlaps per-stream decompression with the merge, the
	// multi-worker analogue of core's per-radio prefetchers.
	prefetch bool
}

// NewMerger prepares a merge over streams. With prefetch set, each stream
// decodes in its own goroutine.
func NewMerger(streams []*Stream, prefetch bool) *Merger {
	return &Merger{streams: streams, prefetch: prefetch}
}

func (m *Merger) streamErr(idx int, err error) error {
	return fmt.Errorf("hmerge: merge %s (stream %d): %w", m.streams[idx].Label(), idx, err)
}

func (m *Merger) start() error {
	m.h = make(mergeHeap, 0, len(m.streams))
	for i, s := range m.streams {
		var cur mergeCursor
		if m.prefetch {
			cur = newPrefetchCursor(s)
		} else {
			cur = directCursor{s: s}
		}
		j, err := cur.next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return m.streamErr(i, err)
		}
		m.h = append(m.h, &mergeItem{j: j, idx: i, cur: cur})
	}
	heap.Init(&m.h)
	return nil
}

// Next returns the globally next jframe (io.EOF when every stream is
// drained).
func (m *Merger) Next() (*unify.JFrame, error) {
	if !m.started {
		if err := m.start(); err != nil {
			return nil, err
		}
		m.started = true
	}
	if m.h.Len() == 0 {
		return nil, io.EOF
	}
	it := m.h[0]
	j := it.j
	nxt, err := it.cur.next()
	if err == io.EOF {
		heap.Pop(&m.h)
	} else if err != nil {
		return nil, m.streamErr(it.idx, err)
	} else {
		it.j = nxt
		heap.Fix(&m.h, 0)
	}
	return j, nil
}
