package hmerge

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dot80211"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/unify"
)

// synthFrames builds a sorted synthetic jframe stream exercising the
// format's variety: phy-only events, empty-wire records, duplicate
// timestamps, multi-instance observations, both instance flags.
func synthFrames(n int, seed int64) []*unify.JFrame {
	rng := rand.New(rand.NewSource(seed))
	frames := make([]*unify.JFrame, 0, n)
	us := int64(1000)
	for i := 0; i < n; i++ {
		if rng.Intn(4) > 0 {
			us += int64(rng.Intn(500)) // sometimes keep exact duplicates
		}
		j := &unify.JFrame{
			UnivUS:       us,
			Rate:         dot80211.Rate(rng.Intn(540)),
			Channel:      dot80211.Channel(1 + rng.Intn(11)),
			Valid:        rng.Intn(2) == 0,
			DispersionUS: int64(rng.Intn(30)),
		}
		switch rng.Intn(5) {
		case 0:
			j.PhyOnly = true
		case 1:
			// Decoded (not phy-only) capture with zero snapped bytes.
			j.WireLen = 40
		default:
			wire := make([]byte, 1+rng.Intn(64))
			rng.Read(wire)
			j.Wire = wire
			j.WireLen = len(wire) + rng.Intn(8)
		}
		for k := rng.Intn(4); k > 0; k-- {
			j.Instances = append(j.Instances, unify.Instance{
				Radio:   int32(rng.Intn(100)),
				LocalUS: us - int64(rng.Intn(1000)),
				UnivUS:  us + int64(k),
				RSSIdBm: int8(-30 - rng.Intn(60)),
				FCSOK:   rng.Intn(2) == 0,
				PhyErr:  rng.Intn(3) == 0,
			})
		}
		frames = append(frames, j)
	}
	return frames
}

// decodedForm is what the Reader must return for an input jframe: wire
// bytes preserved exactly, the frame header re-derived from them, and the
// instance slice always non-nil.
func decodedForm(in *unify.JFrame) *unify.JFrame {
	out := *in
	if len(in.Wire) == 0 {
		out.Wire = nil
	}
	out.Instances = append(make([]unify.Instance, 0, len(in.Instances)), in.Instances...)
	out.Frame = dot80211.Frame{}
	if !in.PhyOnly {
		f, _, _ := dot80211.DecodeCapture(out.Wire)
		out.Frame = f
	}
	return &out
}

// public strips a frame to its exported fields, so reflect.DeepEqual
// compares stream content and ignores the pool bookkeeping (reference
// count, owned wire buffer) that legitimately differs between the
// Reader's pooled frames and literal-built expectations.
func public(j *unify.JFrame) *unify.JFrame {
	out := &unify.JFrame{}
	src := reflect.ValueOf(j).Elem()
	dst := reflect.ValueOf(out).Elem()
	for i := 0; i < src.NumField(); i++ {
		if dst.Type().Field(i).IsExported() {
			dst.Field(i).Set(src.Field(i))
		}
	}
	if len(out.Wire) == 0 {
		out.Wire = nil
	}
	out.Instances = append(make([]unify.Instance, 0, len(out.Instances)), out.Instances...)
	return out
}

// encodeStream serializes frames through the Writer.
func encodeStream(tb testing.TB, frames []*unify.JFrame) ([]byte, *Writer) {
	tb.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	for _, j := range frames {
		if err := w.WriteJFrame(j); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), w
}

func TestRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		frames := synthFrames(500, seed)
		data, w := encodeStream(t, frames)
		if w.JFrames != int64(len(frames)) {
			t.Fatalf("seed %d: writer counted %d jframes, wrote %d", seed, w.JFrames, len(frames))
		}
		if w.FirstUnivUS != frames[0].UnivUS || w.WatermarkUS != frames[len(frames)-1].UnivUS {
			t.Fatalf("seed %d: writer span [%d, %d], frames span [%d, %d]",
				seed, w.FirstUnivUS, w.WatermarkUS, frames[0].UnivUS, frames[len(frames)-1].UnivUS)
		}

		r := NewReader(bytes.NewReader(data))
		for i, want := range frames {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("seed %d: frame %d: %v", seed, i, err)
			}
			if !reflect.DeepEqual(public(got), public(decodedForm(want))) {
				t.Fatalf("seed %d: frame %d mismatch:\n got %+v\nwant %+v", seed, i, got, decodedForm(want))
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("seed %d: want io.EOF at end, got %v", seed, err)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("seed %d: EOF must be sticky, got %v", seed, err)
		}
	}
}

func TestEmptyStream(t *testing.T) {
	data, w := encodeStream(t, nil)
	if w.JFrames != 0 {
		t.Fatalf("empty stream counted %d jframes", w.JFrames)
	}
	r := NewReader(bytes.NewReader(data))
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want clean io.EOF on empty stream, got %v", err)
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteJFrame(&unify.JFrame{UnivUS: 100, PhyOnly: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteJFrame(&unify.JFrame{UnivUS: 99, PhyOnly: true}); err == nil {
		t.Fatal("writer accepted an out-of-order jframe")
	}
	// Equal timestamps are in order (the unifier emits ties).
	if err := w.WriteJFrame(&unify.JFrame{UnivUS: 100, PhyOnly: true}); err != nil {
		t.Fatalf("writer rejected a duplicate timestamp: %v", err)
	}
}

func TestWriterRejectsOversizedWire(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteJFrame(&unify.JFrame{UnivUS: 1, Wire: make([]byte, 1<<16)}); err == nil {
		t.Fatal("writer accepted a wire body beyond the format's u16 limit")
	}
}

// TestMergeOrdering is the k-way-merge property: splitting one sorted
// sequence across k streams (preserving relative order, so each stream is
// sorted) and merging must reproduce a sorted sequence that matches an
// independent head-min reference merge, with or without prefetch.
func TestMergeOrdering(t *testing.T) {
	for _, k := range []int{1, 2, 5} {
		for _, prefetch := range []bool{false, true} {
			rng := rand.New(rand.NewSource(int64(k)))
			frames := synthFrames(600, int64(10+k))
			parts := make([][]*unify.JFrame, k)
			for _, j := range frames {
				i := rng.Intn(k)
				parts[i] = append(parts[i], j)
			}

			// Reference: repeatedly take the smallest (UnivUS, stream index)
			// head across the split streams.
			cursors := make([]int, k)
			var want []*unify.JFrame
			for {
				best := -1
				for i := 0; i < k; i++ {
					if cursors[i] >= len(parts[i]) {
						continue
					}
					if best < 0 || parts[i][cursors[i]].UnivUS < parts[best][cursors[best]].UnivUS {
						best = i
					}
				}
				if best < 0 {
					break
				}
				want = append(want, parts[best][cursors[best]])
				cursors[best]++
			}

			streams := make([]*Stream, k)
			for i := range parts {
				data, _ := encodeStream(t, parts[i])
				streams[i] = NewStream(nil, bytes.NewReader(data))
			}
			m := NewMerger(streams, prefetch)
			var lastUS int64
			for n, wj := range want {
				got, err := m.Next()
				if err != nil {
					t.Fatalf("k=%d prefetch=%v: merge frame %d: %v", k, prefetch, n, err)
				}
				if n > 0 && got.UnivUS < lastUS {
					t.Fatalf("k=%d prefetch=%v: merge emitted %d after %d", k, prefetch, got.UnivUS, lastUS)
				}
				lastUS = got.UnivUS
				if !reflect.DeepEqual(public(got), public(decodedForm(wj))) {
					t.Fatalf("k=%d prefetch=%v: merge frame %d mismatch", k, prefetch, n)
				}
			}
			if _, err := m.Next(); err != io.EOF {
				t.Fatalf("k=%d prefetch=%v: want io.EOF after merge, got %v", k, prefetch, err)
			}
		}
	}
}

func TestReaderRejectsCorrupt(t *testing.T) {
	valid, _ := encodeStream(t, synthFrames(200, 7))

	flip := func(off int) []byte {
		b := append([]byte(nil), valid...)
		b[off] ^= 0xff
		return b
	}
	hugeComp := append([]byte(nil), valid...)
	// Block header starts after the 8-byte stream header; compLen is its
	// bytes 4:8.
	hugeComp[12], hugeComp[13], hugeComp[14], hugeComp[15] = 0xff, 0xff, 0xff, 0x7f

	// An out-of-order stream the Writer cannot produce: two single-frame
	// streams concatenated (the second's stream header stripped), with the
	// second frame earlier than the first.
	a, _ := encodeStream(t, []*unify.JFrame{{UnivUS: 200, PhyOnly: true}})
	b, _ := encodeStream(t, []*unify.JFrame{{UnivUS: 100, PhyOnly: true}})
	outOfOrder := append(append([]byte(nil), a...), b[8:]...)

	cases := map[string][]byte{
		"empty input":            {},
		"truncated magic":        valid[:5],
		"bad stream magic":       flip(0),
		"bad version":            flip(4),
		"bad block magic":        flip(8),
		"huge claimed compLen":   hugeComp,
		"truncated block header": valid[:20],
		"truncated block body":   valid[:len(valid)-3],
		"corrupt payload":        flip(40),
		"out of order":           outOfOrder,
	}
	for name, data := range cases {
		r := NewReader(bytes.NewReader(data))
		var err error
		for i := 0; i < 1<<20 && err == nil; i++ {
			_, err = r.Next()
		}
		if err == nil {
			t.Fatalf("%s: reader never failed", name)
		}
		if err == io.EOF {
			t.Fatalf("%s: reader reported a clean EOF", name)
		}
		if _, err2 := r.Next(); err2 != err {
			t.Fatalf("%s: error not sticky: %v then %v", name, err, err2)
		}
	}
}

// TestUnifyDirDeterminism pins the separate-process contract: the same
// trace directory must serialize to byte-identical stream files regardless
// of the worker's bootstrap parallelism, and the stream must read back
// exactly as many jframes as the sidecar claims, in sorted order.
func TestUnifyDirDeterminism(t *testing.T) {
	dir := t.TempDir()
	cfg := scenario.Default()
	cfg.Pods, cfg.APs, cfg.Clients = 3, 3, 6
	cfg.Day = 10 * sim.Second
	cfg.Seed = 42
	cfg.SpillDir = filepath.Join(dir, "traces")
	out, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	paths := [2]string{filepath.Join(dir, "w1.jfs"), filepath.Join(dir, "w4.jfs")}
	metas := [2]*Meta{}
	for i, workers := range []int{1, 4} {
		m, err := UnifyDir(cfg.SpillDir, paths[i], out.ClockGroups, UnifyConfig{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		metas[i] = m
	}
	b1, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b4, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b4) {
		t.Fatalf("stream bytes differ across bootstrap worker counts (%d vs %d bytes)", len(b1), len(b4))
	}
	if !reflect.DeepEqual(metas[0], metas[1]) {
		t.Fatalf("sidecars differ across bootstrap worker counts:\n%+v\n%+v", metas[0], metas[1])
	}

	s, err := OpenStream(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if s.Meta.JFrames == 0 {
		t.Fatal("sidecar claims an empty stream for a live scenario")
	}
	var n, lastUS int64
	for {
		j, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 && j.UnivUS < lastUS {
			t.Fatalf("stream out of order: %d after %d", j.UnivUS, lastUS)
		}
		lastUS = j.UnivUS
		n++
	}
	if n != s.Meta.JFrames {
		t.Fatalf("stream holds %d jframes, sidecar claims %d", n, s.Meta.JFrames)
	}
	if lastUS != s.Meta.LastUnivUS {
		t.Fatalf("stream watermark %d, sidecar claims %d", lastUS, s.Meta.LastUnivUS)
	}
}
