package hmerge

import (
	"bytes"
	"testing"
)

// FuzzIntermediateReader: arbitrary bytes through the intermediate-stream
// reader must terminate with a jframe stream or an error — never panic,
// never balloon memory off a corrupt header, and never emit an unsorted
// stream (the format's invariant is enforced on read).
func FuzzIntermediateReader(f *testing.F) {
	valid, _ := encodeStream(f, synthFrames(50, 9))
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-block
	f.Add(valid[:8])            // stream header only
	f.Add(valid[:20])           // truncated block header
	f.Add(append([]byte("JFS1"), 1, 0, 0, 0))
	f.Add(bytes.Repeat([]byte{0}, 64))
	corrupt := append([]byte(nil), valid...)
	corrupt[40] ^= 0xff // damage the compressed payload
	f.Add(corrupt)
	huge := append([]byte(nil), valid...)
	huge[12], huge[13], huge[14], huge[15] = 0xff, 0xff, 0xff, 0x7f // absurd compLen
	f.Add(huge)
	rawLie := append([]byte(nil), valid...)
	rawLie[16] ^= 0x55 // claimed raw length disagrees with the deflate body
	f.Add(rawLie)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var lastUS int64
		seen := false
		for i := 0; i < 1<<20; i++ {
			j, err := r.Next()
			if err != nil {
				// Errors must be sticky: the reader stays failed.
				if _, err2 := r.Next(); err2 == nil {
					t.Fatal("reader recovered after error")
				}
				return
			}
			if seen && j.UnivUS < lastUS {
				t.Fatalf("reader emitted unsorted stream: %d after %d", j.UnivUS, lastUS)
			}
			lastUS, seen = j.UnivUS, true
			if len(j.Instances) > 1<<16 {
				t.Fatalf("impossible instance count %d", len(j.Instances))
			}
		}
		t.Fatal("reader never terminated")
	})
}
