// Package hmerge implements the hierarchical merge's intermediate format
// and the global k-way merge over it: the two-level pipeline that takes
// Jigsaw from one building to a campus.
//
// Level 1 (Unify/UnifyDir): each per-building worker — a goroutine in this
// process or a separate cmd/jigunify process — bootstraps and unifies its
// building's trace directory exactly as core.RunFrom would, but instead of
// reconstructing exchanges it serializes the unifier's emission stream to a
// sorted intermediate jframe stream plus a metadata sidecar (bootstrap
// offsets, unify stats, watermark). Unification is deterministic, so every
// worker produces byte-identical files for the same inputs regardless of
// where it runs.
//
// Level 2 (Merger): the global merge opens all buildings' streams and
// interleaves them into one canonically-ordered jframe sequence by
// (UnivUS, stream index) — valid because each stream is sorted
// non-decreasing by UnivUS, the unifier's emission-order invariant, which
// the Writer enforces at encode time. core.RunHierarchical drives the
// ordinary reconstruction/transport/pass pipeline over that sequence.
//
// The container mirrors the tracefile format's: DEFLATE blocks around a
// 64 KB raw target, each with a length-checked header, so the reader
// streams one block at a time and a corrupt or hostile header cannot demand
// unbounded allocation.
package hmerge

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/dot80211"
	"repro/internal/flatepool"
	"repro/internal/unify"
)

// Stream-level and block-level magic. The stream header is written once,
// ahead of the first block; every block repeats the block magic so a reader
// resynchronizing mid-file fails loudly instead of misparsing.
var (
	streamMagic = [4]byte{'J', 'F', 'S', '1'}
	blockMagic  = [4]byte{'J', 'F', 'S', 'B'}
)

// jframe record flags.
const (
	flagValid   uint8 = 1 << 0
	flagPhyOnly uint8 = 1 << 1
)

// instance flags.
const (
	instFCSOK  uint8 = 1 << 0
	instPhyErr uint8 = 1 << 1
)

// recHdrLen is the fixed per-jframe header: flags u8, channel u8, rate u16,
// wireLen u16, nWire u16, nInst u16, univUS i64, dispersionUS i64.
const recHdrLen = 26

// instLen is one serialized instance: radio i32, localUS i64, univUS i64,
// rssi i8, flags u8.
const instLen = 22

// blockTarget is the uncompressed block size at which the writer flushes,
// matching the tracefile format's 64 KB blocks.
const blockTarget = 64 * 1024

// maxBlockLen bounds the compressed and uncompressed size a block header
// may claim; legitimate blocks flush around blockTarget plus one record.
const maxBlockLen = 1 << 26

// instPrealloc caps the instance-slice preallocation per record: a jframe
// cannot have more instances than radios that heard it, so anything beyond
// a few hundred in a claimed count is corrupt input probing the allocator.
const instPrealloc = 256

// Writer serializes a sorted jframe stream. It enforces the format's
// ordering invariant — UnivUS non-decreasing — because the global merge is
// only correct over sorted inputs; an out-of-order write is a bug in the
// producer, reported as an error rather than silently breaking the merge.
type Writer struct {
	w       io.Writer
	buf     bytes.Buffer
	comp    bytes.Buffer // reused compressed-block scratch
	count   int32
	firstUS int64
	lastUS  int64
	started bool
	closed  bool
	// JFrames and WatermarkUS accumulate over the whole stream for the
	// metadata sidecar: total records and the last (= maximum) UnivUS.
	JFrames     int64
	FirstUnivUS int64
	WatermarkUS int64
}

// NewWriter starts a stream on w, emitting the stream header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [8]byte
	copy(hdr[0:4], streamMagic[:])
	hdr[4] = 1 // version
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("hmerge: stream header: %w", err)
	}
	return &Writer{w: w}, nil
}

// WriteJFrame appends one jframe, flushing a block when the target size is
// reached.
func (w *Writer) WriteJFrame(j *unify.JFrame) error {
	if w.closed {
		return errors.New("hmerge: writer closed")
	}
	if w.started && j.UnivUS < w.lastUS {
		return fmt.Errorf("hmerge: out-of-order jframe: %d after %d (stream must be sorted by UnivUS)",
			j.UnivUS, w.lastUS)
	}
	if len(j.Wire) > int(^uint16(0)) || len(j.Instances) > int(^uint16(0)) || j.WireLen > int(^uint16(0)) {
		return fmt.Errorf("hmerge: jframe exceeds format limits (wire %d, instances %d)",
			len(j.Wire), len(j.Instances))
	}
	if !w.started {
		w.started = true
		w.FirstUnivUS = j.UnivUS
	}
	w.lastUS = j.UnivUS
	w.WatermarkUS = j.UnivUS
	w.JFrames++

	if w.count == 0 {
		w.firstUS = j.UnivUS
	}
	var flags uint8
	if j.Valid {
		flags |= flagValid
	}
	if j.PhyOnly {
		flags |= flagPhyOnly
	}
	var hdr [recHdrLen]byte
	hdr[0] = flags
	hdr[1] = uint8(j.Channel)
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(j.Rate))
	binary.LittleEndian.PutUint16(hdr[4:6], uint16(j.WireLen))
	binary.LittleEndian.PutUint16(hdr[6:8], uint16(len(j.Wire)))
	binary.LittleEndian.PutUint16(hdr[8:10], uint16(len(j.Instances)))
	binary.LittleEndian.PutUint64(hdr[10:18], uint64(j.UnivUS))
	binary.LittleEndian.PutUint64(hdr[18:26], uint64(j.DispersionUS))
	w.buf.Write(hdr[:])
	w.buf.Write(j.Wire)
	for _, in := range j.Instances {
		var ib [instLen]byte
		binary.LittleEndian.PutUint32(ib[0:4], uint32(in.Radio))
		binary.LittleEndian.PutUint64(ib[4:12], uint64(in.LocalUS))
		binary.LittleEndian.PutUint64(ib[12:20], uint64(in.UnivUS))
		ib[20] = uint8(in.RSSIdBm)
		var iflags uint8
		if in.FCSOK {
			iflags |= instFCSOK
		}
		if in.PhyErr {
			iflags |= instPhyErr
		}
		ib[21] = iflags
		w.buf.Write(ib[:])
	}
	w.count++
	if w.buf.Len() >= blockTarget {
		return w.flushBlock()
	}
	return nil
}

// flushBlock compresses and emits the pending block.
func (w *Writer) flushBlock() error {
	if w.count == 0 {
		return nil
	}
	w.comp.Reset()
	fw := flatepool.GetWriter(&w.comp)
	if _, err := fw.Write(w.buf.Bytes()); err != nil {
		return err
	}
	if err := fw.Close(); err != nil {
		return err
	}
	flatepool.PutWriter(fw)
	comp := &w.comp
	var bh [24]byte
	copy(bh[0:4], blockMagic[:])
	binary.LittleEndian.PutUint32(bh[4:8], uint32(comp.Len()))
	binary.LittleEndian.PutUint32(bh[8:12], uint32(w.buf.Len()))
	binary.LittleEndian.PutUint32(bh[12:16], uint32(w.count))
	binary.LittleEndian.PutUint64(bh[16:24], uint64(w.firstUS))
	if _, err := w.w.Write(bh[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(comp.Bytes()); err != nil {
		return err
	}
	w.buf.Reset()
	w.count = 0
	return nil
}

// Close flushes the final block. The writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.flushBlock()
}

// Reader iterates jframes from an intermediate stream. Frames are
// re-derived from the stored wire bytes with the same partial decode the
// unifier applies at emission, so a decoded stream is structurally
// identical to the one the unify worker serialized.
//
// Returned frames are pooled (unify.NewJFrame) and OWNED by the caller,
// who must Release each one — the .jfs decode path participates in the
// same frame lifecycle as the live unifier. The reader's block buffers
// are reused across blocks; every frame's wire bytes are copied into the
// frame's own storage, so frames are independent of the reader.
type Reader struct {
	r       io.Reader
	comp    []byte       // reused compressed-block buffer
	compRd  bytes.Reader // reused reader over comp
	raw     []byte       // reused decompressed-block buffer
	pos     int          // parse cursor into raw
	fr      io.ReadCloser
	started bool
	lastUS  int64
	haveUS  bool
	err     error
}

// NewReader wraps an intermediate stream for iteration.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// retire returns the pooled decompressor once the stream has ended; the
// reader is latched on t.err by then.
func (t *Reader) retire() {
	flatepool.PutReader(t.fr)
	t.fr = nil
}

// Next returns the next jframe. io.EOF signals a clean end of stream; any
// other error is a corrupt stream (intermediate files are pipeline-owned,
// so unlike a dead monitor radio this is fatal, not droppable).
func (t *Reader) Next() (*unify.JFrame, error) {
	if t.err != nil {
		return nil, t.err
	}
	if !t.started {
		if err := t.readStreamHeader(); err != nil {
			t.err = err
			return nil, err
		}
		t.started = true
	}
	for t.pos >= len(t.raw) {
		if err := t.loadBlock(); err != nil {
			t.err = err
			t.retire()
			return nil, err
		}
	}
	j, err := t.decodeRecord()
	if err != nil {
		t.err = err
		t.retire()
		return nil, err
	}
	// The format's contract: streams are sorted. Enforce on read too, so a
	// corrupted stream cannot silently break the k-way merge's ordering.
	if t.haveUS && j.UnivUS < t.lastUS {
		t.err = fmt.Errorf("hmerge: stream out of order: %d after %d", j.UnivUS, t.lastUS)
		j.Release()
		t.retire()
		return nil, t.err
	}
	t.lastUS, t.haveUS = j.UnivUS, true
	return j, nil
}

func (t *Reader) readStreamHeader() error {
	var hdr [8]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return fmt.Errorf("hmerge: truncated stream header: %w", io.ErrUnexpectedEOF)
		}
		return err
	}
	if [4]byte(hdr[0:4]) != streamMagic {
		return errors.New("hmerge: bad stream magic")
	}
	if hdr[4] != 1 {
		return fmt.Errorf("hmerge: unsupported stream version %d", hdr[4])
	}
	return nil
}

// loadBlock reads and decompresses the next block, with the tracefile
// reader's hardening: claimed lengths are capped, decompression is bounded
// by the claimed raw length and must hit it exactly.
func (t *Reader) loadBlock() error {
	var bh [24]byte
	if _, err := io.ReadFull(t.r, bh[:]); err != nil {
		// A clean end of stream lands exactly on a block boundary (zero
		// bytes read); a partial header is a truncated file.
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("hmerge: truncated block header: %w", err)
		}
		return err
	}
	if [4]byte(bh[0:4]) != blockMagic {
		return errors.New("hmerge: bad block magic")
	}
	compLen := binary.LittleEndian.Uint32(bh[4:8])
	rawLen := binary.LittleEndian.Uint32(bh[8:12])
	if compLen > maxBlockLen || rawLen > maxBlockLen {
		return fmt.Errorf("hmerge: block header claims %d/%d bytes", compLen, rawLen)
	}
	if cap(t.comp) < int(compLen) {
		t.comp = make([]byte, compLen)
	}
	comp := t.comp[:compLen]
	if _, err := io.ReadFull(t.r, comp); err != nil {
		return fmt.Errorf("hmerge: truncated block: %w", err)
	}
	t.compRd.Reset(comp)
	if t.fr == nil {
		t.fr = flatepool.GetReader(&t.compRd)
	} else if err := t.fr.(flate.Resetter).Reset(&t.compRd, nil); err != nil {
		return fmt.Errorf("hmerge: decompress: %w", err)
	}
	if cap(t.raw) < int(rawLen) {
		t.raw = make([]byte, rawLen)
	}
	t.raw = t.raw[:rawLen]
	if _, err := io.ReadFull(t.fr, t.raw); err != nil {
		return fmt.Errorf("hmerge: decompress: %w", err)
	}
	// The decompressor must land exactly on the claimed length.
	var probe [1]byte
	if n, _ := t.fr.Read(probe[:]); n != 0 {
		return fmt.Errorf("hmerge: block decompressed past %d claimed bytes", rawLen)
	}
	t.pos = 0
	return nil
}

func (t *Reader) decodeRecord() (*unify.JFrame, error) {
	b := t.raw[t.pos:]
	if len(b) < recHdrLen {
		return nil, fmt.Errorf("hmerge: corrupt block: %w", io.ErrUnexpectedEOF)
	}
	hdr := b[:recHdrLen]
	flags := hdr[0]
	nWire := int(binary.LittleEndian.Uint16(hdr[6:8]))
	nInst := int(binary.LittleEndian.Uint16(hdr[8:10]))
	if len(b) < recHdrLen+nWire+nInst*instLen {
		return nil, fmt.Errorf("hmerge: corrupt block: %w", io.ErrUnexpectedEOF)
	}
	j := unify.NewJFrame()
	j.Channel = dot80211.Channel(hdr[1])
	j.Rate = dot80211.Rate(binary.LittleEndian.Uint16(hdr[2:4]))
	j.WireLen = int(binary.LittleEndian.Uint16(hdr[4:6]))
	j.UnivUS = int64(binary.LittleEndian.Uint64(hdr[10:18]))
	j.DispersionUS = int64(binary.LittleEndian.Uint64(hdr[18:26]))
	j.Valid = flags&flagValid != 0
	j.PhyOnly = flags&flagPhyOnly != 0
	// The wire bytes are copied out of the reused block buffer into the
	// frame's own storage; the decoded header below then aliases that copy,
	// never the block.
	j.SetWire(b[recHdrLen : recHdrLen+nWire])
	if j.Instances == nil {
		prealloc := nInst
		if prealloc > instPrealloc {
			prealloc = instPrealloc
		}
		j.Instances = make([]unify.Instance, 0, prealloc)
	}
	for i := 0; i < nInst; i++ {
		ib := b[recHdrLen+nWire+i*instLen:]
		j.Instances = append(j.Instances, unify.Instance{
			Radio:   int32(binary.LittleEndian.Uint32(ib[0:4])),
			LocalUS: int64(binary.LittleEndian.Uint64(ib[4:12])),
			UnivUS:  int64(binary.LittleEndian.Uint64(ib[12:20])),
			RSSIdBm: int8(ib[20]),
			FCSOK:   ib[21]&instFCSOK != 0,
			PhyErr:  ib[21]&instPhyErr != 0,
		})
	}
	t.pos += recHdrLen + nWire + nInst*instLen
	// Re-derive the decoded header exactly as the unifier does at emission:
	// partial decodes are kept (Valid already records whether the decode
	// succeeded on a FCS-valid capture), phy-only events carry no frame.
	if !j.PhyOnly {
		f, _, _ := dot80211.DecodeCapture(j.Wire)
		j.Frame = f
	}
	return j, nil
}
