// Package cc implements pluggable TCP congestion control for the simulated
// endpoints in internal/tcpsim: a Controller contract plus deterministic
// Reno, CUBIC and BBR(v1-style) implementations and the fixed-window
// compatibility controller the original substrate used.
//
// Controllers are pure event-driven state machines over integer microsecond
// time — no wall clocks, no randomness — so any sequence of
// OnSend/OnAck/OnLoss/OnRTTSample calls yields the same trajectory on every
// run, preserving the substrate's determinism contract (parallel pipeline
// results must be replayable bit-for-bit).
package cc

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Controller decides how much data a TCP sender may keep in flight and how
// it is released onto the path. The owning endpoint reports transport
// events; the controller answers with a congestion window and an optional
// pacing schedule. All times are microseconds of simulation time.
type Controller interface {
	// OnSend informs the controller that bytes of new data left the
	// endpoint at nowUS (used by pacing controllers to advance their
	// release clock).
	OnSend(bytes int64, nowUS int64)
	// OnAck reports ackedBytes of new data cumulatively acknowledged.
	OnAck(ackedBytes int64, nowUS int64)
	// OnLoss signals a loss event; timeout distinguishes a retransmission
	// timeout from a fast-retransmit (triple duplicate ACK) recovery.
	OnLoss(nowUS int64, timeout bool)
	// OnRTTSample feeds a fresh round-trip measurement in microseconds.
	OnRTTSample(rttUS int64, nowUS int64)
	// CwndSegments returns the congestion window in MSS-sized segments
	// (always at least 1).
	CwndSegments() int
	// PacingGate returns the earliest microsecond at which the next
	// segment may be transmitted, or 0 when the controller does not pace.
	PacingGate(nowUS int64) int64
	// Name identifies the algorithm ("fixed", "reno", "cubic", "bbr").
	Name() string
}

// Algorithm names accepted by New.
const (
	Fixed = "fixed"
	Reno  = "reno"
	Cubic = "cubic"
	BBR   = "bbr"
)

// maxCwndSegments bounds every controller's window so a pathological
// trajectory cannot exhaust simulated buffering.
const maxCwndSegments = 512

// DefaultFixedWindow is the compatibility controller's window: the fixed
// 8-segment flight the substrate ran before congestion control existed.
const DefaultFixedWindow = 8

// New builds a controller by algorithm name for a given MSS.
func New(name string, mssBytes int) (Controller, error) {
	switch name {
	case Fixed:
		return NewFixed(DefaultFixedWindow), nil
	case Reno:
		return NewReno(mssBytes), nil
	case Cubic:
		return NewCubic(mssBytes), nil
	case BBR:
		return NewBBR(mssBytes), nil
	default:
		return nil, fmt.Errorf("cc: unknown algorithm %q", name)
	}
}

// MustNew is New for names already validated (panics on unknown names).
func MustNew(name string, mssBytes int) Controller {
	c, err := New(name, mssBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// fixedCC is the no-congestion-control compatibility mode: a constant
// window, no pacing, every event ignored. Installing it reproduces the
// pre-cc substrate behavior bit-for-bit.
type fixedCC struct{ w int }

// NewFixed returns a fixed-window controller.
func NewFixed(windowSegments int) Controller {
	if windowSegments < 1 {
		windowSegments = 1
	}
	return &fixedCC{w: windowSegments}
}

func (f *fixedCC) OnSend(int64, int64)      {}
func (f *fixedCC) OnAck(int64, int64)       {}
func (f *fixedCC) OnLoss(int64, bool)       {}
func (f *fixedCC) OnRTTSample(int64, int64) {}
func (f *fixedCC) CwndSegments() int        { return f.w }
func (f *fixedCC) PacingGate(int64) int64   { return 0 }
func (f *fixedCC) Name() string             { return Fixed }

// aimdShared is the state Reno and CUBIC have in common: a smoothed RTT
// that sizes the loss blackout bounding multiplicative decreases to one
// per window (a single congestion event surfaces as several
// retransmissions).
type aimdShared struct {
	srttUS              int64
	lossBlackoutUntilUS int64
}

// OnRTTSample folds in a measurement with a 7/8 EWMA.
func (a *aimdShared) OnRTTSample(rttUS int64, nowUS int64) {
	if rttUS <= 0 {
		return
	}
	if a.srttUS == 0 {
		a.srttUS = rttUS
	} else {
		a.srttUS = (7*a.srttUS + rttUS) / 8
	}
}

// rttOrDefault is the blackout horizon: the smoothed RTT, or a generous
// default before any sample exists.
func (a *aimdShared) rttOrDefault() int64 {
	if a.srttUS > 0 {
		return a.srttUS
	}
	return 200_000
}

// startBlackout marks a window reduction at nowUS; inBlackout reports
// whether a further fast-retransmit reduction should be suppressed.
func (a *aimdShared) startBlackout(nowUS int64)   { a.lossBlackoutUntilUS = nowUS + a.rttOrDefault() }
func (a *aimdShared) inBlackout(nowUS int64) bool { return nowUS < a.lossBlackoutUntilUS }

// clampSegments converts a byte window to whole segments within bounds.
func clampSegments(cwndBytes float64, mss int64) int {
	segs := int(cwndBytes / float64(mss))
	if segs < 1 {
		return 1
	}
	if segs > maxCwndSegments {
		return maxCwndSegments
	}
	return segs
}

// Mix is a weighted choice over algorithm names used to assign a controller
// per flow. Sampling iterates names in sorted order so a map-built mix
// draws deterministically.
type Mix struct {
	names []string
	cum   []float64
}

// NewMix validates and normalizes a name→weight map. An empty or nil map
// yields a nil Mix, meaning "fixed-window for every flow" — as does a mix
// whose only positive weight is the fixed controller, so an effectively
// pure-fixed spec always takes the draw-free compatibility path no matter
// which caller built it.
func NewMix(weights map[string]float64) (*Mix, error) {
	if len(weights) == 0 {
		return nil, nil
	}
	names := make([]string, 0, len(weights))
	for n := range weights {
		if _, err := New(n, 1460); err != nil {
			return nil, err
		}
		if weights[n] < 0 {
			return nil, fmt.Errorf("cc: negative weight for %q", n)
		}
		if weights[n] > 0 {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("cc: mix has no positive weights")
	}
	if len(names) == 1 && names[0] == Fixed {
		return nil, nil
	}
	sort.Strings(names)
	m := &Mix{names: names, cum: make([]float64, len(names))}
	var total float64
	for i, n := range names {
		total += weights[n]
		m.cum[i] = total
	}
	for i := range m.cum {
		m.cum[i] /= total
	}
	return m, nil
}

// Pick maps a uniform draw in [0,1) to an algorithm name.
func (m *Mix) Pick(u float64) string {
	for i, c := range m.cum {
		if u < c {
			return m.names[i]
		}
	}
	return m.names[len(m.names)-1]
}

// ParseMixSpec parses "reno=0.5,cubic=0.3,bbr=0.2" (weights optional —
// "reno,cubic" weighs entries equally) into a weight map for NewMix.
func ParseMixSpec(spec string) (map[string]float64, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, hasW := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		w := 1.0
		if hasW {
			v, err := strconv.ParseFloat(strings.TrimSpace(wstr), 64)
			if err != nil {
				return nil, fmt.Errorf("cc: bad weight in %q: %v", part, err)
			}
			w = v
		}
		if _, err := New(name, 1460); err != nil {
			return nil, err
		}
		out[name] += w
	}
	return out, nil
}

// FormatMix renders a weight map canonically (sorted, trimmed weights) for
// self-describing experiment output.
func FormatMix(weights map[string]float64) string {
	if len(weights) == 0 {
		return Fixed
	}
	names := make([]string, 0, len(weights))
	for n := range weights {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%s", n,
			strconv.FormatFloat(weights[n], 'g', 4, 64)))
	}
	return strings.Join(parts, ",")
}

// cbrt is math.Cbrt, aliased so the CUBIC file reads like its equation.
func cbrt(x float64) float64 { return math.Cbrt(x) }
