package cc

// bbrCC implements a BBR v1-style model-based controller: it estimates the
// bottleneck bandwidth (windowed max of delivery-rate samples) and the
// path's propagation delay (windowed min RTT), paces transmissions at a
// gain times the bandwidth estimate, and caps inflight at a multiple of
// the estimated BDP. States follow the v1 machine — STARTUP (exponential
// gain until the bandwidth estimate plateaus), DRAIN (undo the startup
// queue), PROBE_BW (the 8-phase 1.25/0.75/1×… pacing-gain cycle) and a
// minimal PROBE_RTT (shrink the window when the min-RTT estimate staled).
// Unlike Reno/CUBIC it does not back off multiplicatively on packet loss,
// which is exactly the fairness asymmetry the mixed-CC experiments (and
// arXiv:2505.07741) study.
type bbrCC struct {
	mss int64

	mode bbrMode

	// Delivery bookkeeping: cumulative bytes sent and acked, plus a short
	// history of (timeUS, delivered) for rate sampling.
	sentBytes      int64
	delivered      int64
	history        []bbrAckPoint
	lastBWSample   float64
	bwSamplesTaken int

	// Windowed max-bandwidth filter, one slot per round.
	bwFilter []bbrBWSlot

	// Windowed min-RTT filter.
	minRTTUS   int64
	minRTTAtUS int64

	// Round counting: a round ends roughly one min-RTT after it began.
	round        int64
	roundStartUS int64

	// Startup plateau detection.
	fullBW       float64
	fullBWRounds int

	// PROBE_BW gain cycle position.
	cycleIdx int

	// PROBE_RTT bookkeeping.
	probeRTTDoneUS int64

	// Pacing release clock (µs): earliest next transmission.
	nextSendUS int64

	// rtoRecovery collapses the window to one segment after a timeout
	// until delivery resumes (BBR's CA_LOSS conservation response).
	rtoRecovery bool
}

type bbrMode uint8

const (
	bbrStartup bbrMode = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

type bbrAckPoint struct {
	us        int64
	delivered int64
}

type bbrBWSlot struct {
	round int64
	bw    float64 // bytes per µs
}

// BBR v1 constants.
const (
	bbrHighGain       = 2.885 // 2/ln(2): startup pacing and cwnd gain
	bbrCwndGain       = 2.0   // steady-state cwnd = 2·BDP
	bbrBWWindowRounds = 10
	bbrMinRTTWindowUS = 10_000_000 // re-probe min RTT after 10 s
	bbrProbeRTTDurUS  = 200_000
	bbrInitialWindow  = 8 // segments, before any path estimates exist
	bbrMinWindow      = 4 // segments
	bbrStartupRounds  = 3 // plateau rounds before declaring the pipe full
)

// bbrProbeBWGains is the PROBE_BW pacing-gain cycle: probe up, drain the
// probe's queue, then cruise.
var bbrProbeBWGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// NewBBR returns a BBR controller.
func NewBBR(mssBytes int) Controller {
	return &bbrCC{mss: int64(mssBytes), mode: bbrStartup}
}

// pacingGain returns the current pacing gain for the mode.
func (b *bbrCC) pacingGain() float64 {
	switch b.mode {
	case bbrStartup:
		return bbrHighGain
	case bbrDrain:
		return 1 / bbrHighGain
	case bbrProbeRTT:
		return 1
	default:
		return bbrProbeBWGains[b.cycleIdx]
	}
}

// maxBW returns the windowed-max bandwidth estimate in bytes/µs.
func (b *bbrCC) maxBW() float64 {
	var max float64
	for _, s := range b.bwFilter {
		if s.round > b.round-bbrBWWindowRounds && s.bw > max {
			max = s.bw
		}
	}
	return max
}

// bdpBytes returns the estimated bandwidth-delay product.
func (b *bbrCC) bdpBytes() float64 {
	bw := b.maxBW()
	if bw == 0 || b.minRTTUS == 0 {
		return 0
	}
	return bw * float64(b.minRTTUS)
}

// roundDurUS is the nominal round length: one min RTT (10 ms before any
// sample exists).
func (b *bbrCC) roundDurUS() int64 {
	if b.minRTTUS > 0 {
		return b.minRTTUS
	}
	return 10_000
}

func (b *bbrCC) OnSend(bytes int64, nowUS int64) {
	b.sentBytes += bytes
	rate := b.pacingGain() * b.maxBW()
	if rate <= 0 {
		return
	}
	next := b.nextSendUS
	if next < nowUS {
		next = nowUS
	}
	b.nextSendUS = next + int64(float64(bytes)/rate)
}

func (b *bbrCC) OnAck(ackedBytes int64, nowUS int64) {
	if ackedBytes <= 0 {
		return
	}
	b.rtoRecovery = false
	b.delivered += ackedBytes

	// Delivery-rate sample: delivered bytes over a sliding window of at
	// least one min RTT (smooths ACK compression). Cumulative jumps from
	// retransmission holes filling are excluded — those bytes arrived over
	// many RTTs, and folding the jump into one window would poison the max
	// filter with rates far above the bottleneck.
	if ackedBytes > 4*b.mss {
		// Hole-fill jump: restart the sampling window after it.
		b.history = append(b.history[:0], bbrAckPoint{us: nowUS, delivered: b.delivered})
	} else {
		b.history = append(b.history, bbrAckPoint{us: nowUS, delivered: b.delivered})
		winUS := b.roundDurUS()
		if winUS < 5_000 {
			winUS = 5_000
		}
		cut := 0
		for cut < len(b.history)-1 && b.history[cut].us < nowUS-winUS {
			cut++
		}
		b.history = b.history[cut:]
		// Sample only over a mature window: a near-empty one (right after
		// a hole-fill reset, or under ACK compression) divides a burst by
		// a tiny span and overshoots the real rate.
		if first := b.history[0]; nowUS-first.us >= winUS/2 {
			b.lastBWSample = float64(b.delivered-first.delivered) / float64(nowUS-first.us)
			b.bwSamplesTaken++
			b.recordBW(b.lastBWSample)
		}
	}

	// Round advancement drives the state machine. A long delivery gap
	// (stall, backed-off RTO) would otherwise replay one idle "round" per
	// min RTT here; snap forward and count the gap as a couple of rounds.
	if b.roundStartUS == 0 {
		b.roundStartUS = nowUS
	}
	if dur := b.roundDurUS(); nowUS-b.roundStartUS > 4*dur {
		b.roundStartUS = nowUS - 2*dur
	}
	for nowUS >= b.roundStartUS+b.roundDurUS() {
		b.roundStartUS += b.roundDurUS()
		b.round++
		b.onRoundEnd(nowUS)
	}

	// PROBE_RTT entry: the min-RTT estimate went stale.
	if b.mode == bbrProbeBW && b.minRTTAtUS > 0 &&
		nowUS-b.minRTTAtUS > bbrMinRTTWindowUS {
		b.mode = bbrProbeRTT
		b.probeRTTDoneUS = nowUS + bbrProbeRTTDurUS
	}
	if b.mode == bbrProbeRTT && nowUS >= b.probeRTTDoneUS {
		b.minRTTAtUS = nowUS // refreshed by draining the pipe
		b.mode = bbrProbeBW
	}
}

// recordBW folds a bandwidth sample into the current round's filter slot.
func (b *bbrCC) recordBW(bw float64) {
	if n := len(b.bwFilter); n > 0 && b.bwFilter[n-1].round == b.round {
		if bw > b.bwFilter[n-1].bw {
			b.bwFilter[n-1].bw = bw
		}
	} else {
		b.bwFilter = append(b.bwFilter, bbrBWSlot{round: b.round, bw: bw})
		if len(b.bwFilter) > bbrBWWindowRounds+2 {
			b.bwFilter = b.bwFilter[1:]
		}
	}
}

// onRoundEnd advances STARTUP/DRAIN/PROBE_BW per-round state.
func (b *bbrCC) onRoundEnd(nowUS int64) {
	switch b.mode {
	case bbrStartup:
		// Pipe-full test: bandwidth stopped growing ≥25% per round.
		bw := b.maxBW()
		if bw > b.fullBW*1.25 {
			b.fullBW = bw
			b.fullBWRounds = 0
		} else if b.bwSamplesTaken > 0 {
			b.fullBWRounds++
			if b.fullBWRounds >= bbrStartupRounds {
				b.mode = bbrDrain
			}
		}
	case bbrDrain:
		if float64(b.sentBytes-b.delivered) <= b.bdpBytes() {
			b.mode = bbrProbeBW
			b.cycleIdx = 2 // start cruising, not probing
		}
	case bbrProbeBW:
		b.cycleIdx = (b.cycleIdx + 1) % len(bbrProbeBWGains)
	}
}

func (b *bbrCC) OnLoss(nowUS int64, timeout bool) {
	// BBR's model, not packet loss, sets the operating point; only an RTO
	// (pipe drained, model stale) collapses the window.
	if timeout {
		b.rtoRecovery = true
	}
}

func (b *bbrCC) OnRTTSample(rttUS int64, nowUS int64) {
	if rttUS <= 0 {
		return
	}
	if b.minRTTUS == 0 || rttUS <= b.minRTTUS ||
		nowUS-b.minRTTAtUS > bbrMinRTTWindowUS {
		b.minRTTUS = rttUS
		b.minRTTAtUS = nowUS
	}
}

func (b *bbrCC) CwndSegments() int {
	if b.rtoRecovery {
		return 1
	}
	if b.mode == bbrProbeRTT {
		return bbrMinWindow
	}
	bdp := b.bdpBytes()
	if bdp == 0 {
		return bbrInitialWindow
	}
	gain := bbrCwndGain
	if b.mode == bbrStartup || b.mode == bbrDrain {
		gain = bbrHighGain
	}
	segs := clampSegments(gain*bdp, b.mss)
	if segs < bbrMinWindow {
		segs = bbrMinWindow
	}
	return segs
}

func (b *bbrCC) PacingGate(nowUS int64) int64 {
	if b.nextSendUS <= nowUS {
		return 0
	}
	return b.nextSendUS
}

func (b *bbrCC) Name() string { return BBR }
