package cc

// cubicCC implements TCP CUBIC (RFC 8312 shape): after a loss at window
// W_max the window follows
//
//	W(t) = C·(t − K)³ + W_max,   K = ∛(W_max·β/C)
//
// (windows in segments, t in seconds since the epoch started), which grows
// steeply away from W_max, plateaus around it, then probes convexly past
// it — the signature curve the transport fingerprinter looks for.
type cubicCC struct {
	aimdShared
	mss      int64
	cwnd     float64 // bytes
	ssthresh float64 // bytes
	wMaxSegs float64 // window at last loss, segments
	// epochStartUS anchors t in W(t); zero means "no epoch yet" (set on
	// the first congestion-avoidance ACK after a loss).
	epochStartUS int64
	kSec         float64
}

// CUBIC constants (RFC 8312): β is the multiplicative-decrease fraction
// removed at a loss (window keeps 1−β of itself), C the growth scale.
const (
	cubicBeta = 0.3
	cubicC    = 0.4
)

// NewCubic returns a CUBIC controller.
func NewCubic(mssBytes int) Controller {
	mss := int64(mssBytes)
	return &cubicCC{
		mss:      mss,
		cwnd:     float64(renoInitialWindow) * float64(mss),
		ssthresh: float64(maxCwndSegments) * float64(mss),
	}
}

func (c *cubicCC) OnSend(int64, int64) {}

func (c *cubicCC) OnAck(ackedBytes int64, nowUS int64) {
	if ackedBytes <= 0 {
		return
	}
	max := float64(maxCwndSegments) * float64(c.mss)
	if c.cwnd < c.ssthresh {
		grow := float64(ackedBytes)
		if grow > float64(c.mss) {
			grow = float64(c.mss)
		}
		c.cwnd += grow
		if c.cwnd > max {
			c.cwnd = max
		}
		return
	}
	if c.epochStartUS == 0 {
		c.epochStartUS = nowUS
		if c.wMaxSegs == 0 {
			c.wMaxSegs = c.cwnd / float64(c.mss)
		}
		c.kSec = cbrt(c.wMaxSegs * cubicBeta / cubicC)
	}
	t := float64(nowUS-c.epochStartUS) / 1e6
	targetSegs := cubicC*(t-c.kSec)*(t-c.kSec)*(t-c.kSec) + c.wMaxSegs
	target := targetSegs * float64(c.mss)
	if target > c.cwnd {
		// Close a fraction of the gap per ACK; with ~cwnd/MSS ACKs per
		// RTT this tracks W(t) closely without overshooting on bursts.
		c.cwnd += (target - c.cwnd) * float64(c.mss) / c.cwnd
	} else {
		// Below the curve's plateau: minimal reliability growth.
		c.cwnd += 0.01 * float64(c.mss) * float64(c.mss) / c.cwnd
	}
	if c.cwnd > max {
		c.cwnd = max
	}
}

func (c *cubicCC) OnLoss(nowUS int64, timeout bool) {
	if !timeout && c.inBlackout(nowUS) {
		return
	}
	c.wMaxSegs = c.cwnd / float64(c.mss)
	reduced := c.cwnd * (1 - cubicBeta)
	if min := float64(renoMinSSThresh) * float64(c.mss); reduced < min {
		reduced = min
	}
	c.ssthresh = reduced
	if timeout {
		c.cwnd = float64(c.mss)
	} else {
		c.cwnd = reduced
	}
	c.epochStartUS = 0
	c.startBlackout(nowUS)
}

func (c *cubicCC) CwndSegments() int      { return clampSegments(c.cwnd, c.mss) }
func (c *cubicCC) PacingGate(int64) int64 { return 0 }
func (c *cubicCC) Name() string           { return Cubic }
