package cc

// renoCC implements TCP Reno (RFC 5681 shape): slow start doubling per
// RTT, additive-increase congestion avoidance of one segment per RTT, and
// multiplicative decrease — halving on fast retransmit, collapse to one
// segment on timeout. The classic sawtooth.
type renoCC struct {
	aimdShared
	mss      int64
	cwnd     float64 // bytes
	ssthresh float64 // bytes
}

// Reno initial window and minimum ssthresh, in segments.
const (
	renoInitialWindow = 4
	renoMinSSThresh   = 2
)

// NewReno returns a Reno controller.
func NewReno(mssBytes int) Controller {
	mss := int64(mssBytes)
	return &renoCC{
		mss:      mss,
		cwnd:     float64(renoInitialWindow) * float64(mss),
		ssthresh: float64(maxCwndSegments) * float64(mss),
	}
}

func (r *renoCC) OnSend(int64, int64) {}

func (r *renoCC) OnAck(ackedBytes int64, nowUS int64) {
	if ackedBytes <= 0 {
		return
	}
	max := float64(maxCwndSegments) * float64(r.mss)
	if r.cwnd < r.ssthresh {
		// Slow start: cwnd grows by one segment per segment acked.
		grow := float64(ackedBytes)
		if grow > float64(r.mss) {
			grow = float64(r.mss)
		}
		r.cwnd += grow
	} else {
		// Congestion avoidance: one segment per RTT, spread per ACK.
		r.cwnd += float64(r.mss) * float64(r.mss) / r.cwnd
	}
	if r.cwnd > max {
		r.cwnd = max
	}
}

func (r *renoCC) OnLoss(nowUS int64, timeout bool) {
	if timeout {
		// RTO: the pipe drained; restart from one segment.
		r.ssthresh = r.halved()
		r.cwnd = float64(r.mss)
		r.startBlackout(nowUS)
		return
	}
	if r.inBlackout(nowUS) {
		return
	}
	r.ssthresh = r.halved()
	r.cwnd = r.ssthresh
	r.startBlackout(nowUS)
}

// halved returns cwnd/2 floored at the minimum ssthresh.
func (r *renoCC) halved() float64 {
	h := r.cwnd / 2
	if min := float64(renoMinSSThresh) * float64(r.mss); h < min {
		h = min
	}
	return h
}

func (r *renoCC) CwndSegments() int      { return clampSegments(r.cwnd, r.mss) }
func (r *renoCC) PacingGate(int64) int64 { return 0 }
func (r *renoCC) Name() string           { return Reno }
