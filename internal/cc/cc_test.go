package cc

import (
	"math"
	"math/rand"
	"testing"
)

const mss = 1460

func TestFactory(t *testing.T) {
	for _, name := range []string{Fixed, Reno, Cubic, BBR} {
		c, err := New(name, mss)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, c.Name())
		}
		if c.CwndSegments() < 1 {
			t.Errorf("%s initial cwnd = %d", name, c.CwndSegments())
		}
	}
	if _, err := New("vegas", mss); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestFixedIsInert(t *testing.T) {
	c := NewFixed(8)
	for i := 0; i < 100; i++ {
		c.OnAck(mss, int64(i)*1000)
		c.OnLoss(int64(i)*1000, i%2 == 0)
		c.OnRTTSample(5000, int64(i)*1000)
		c.OnSend(mss, int64(i)*1000)
		if c.CwndSegments() != 8 {
			t.Fatalf("fixed window moved to %d", c.CwndSegments())
		}
		if c.PacingGate(int64(i)*1000) != 0 {
			t.Fatal("fixed controller paces")
		}
	}
}

// ackRTT feeds one round-trip's worth of full-window ACKs at evenly spaced
// times and returns the updated now.
func ackRTT(c Controller, nowUS, rttUS int64) int64 {
	segs := c.CwndSegments()
	for i := 0; i < segs; i++ {
		nowUS += rttUS / int64(segs)
		c.OnAck(mss, nowUS)
	}
	return nowUS
}

func TestRenoSlowStartDoubles(t *testing.T) {
	c := NewReno(mss)
	now := int64(0)
	w0 := c.CwndSegments()
	now = ackRTT(c, now, 100_000)
	if got := c.CwndSegments(); got != 2*w0 {
		t.Errorf("after one slow-start RTT cwnd = %d, want %d", got, 2*w0)
	}
	now = ackRTT(c, now, 100_000)
	if got := c.CwndSegments(); got != 4*w0 {
		t.Errorf("after two slow-start RTTs cwnd = %d, want %d", got, 4*w0)
	}
}

func TestRenoSawtoothSlope(t *testing.T) {
	c := NewReno(mss).(*renoCC)
	// Enter congestion avoidance at a known window.
	c.cwnd = 20 * mss
	c.ssthresh = 10 * mss
	now := int64(0)
	for rtt := 0; rtt < 10; rtt++ {
		// Additive increase: ~1 segment per RTT (the per-ACK increments sum
		// to just under one MSS because cwnd grows mid-round).
		got := c.CwndSegments()
		if got < 19+rtt || got > 21+rtt {
			t.Fatalf("RTT %d: cwnd = %d segments, want ≈%d (AIMD slope 1 seg/RTT)",
				rtt, got, 20+rtt)
		}
		now = ackRTT(c, now, 100_000)
	}
	if got := c.CwndSegments(); got < 29 || got > 31 {
		t.Errorf("after 10 RTTs cwnd = %d, want ≈30", got)
	}
}

func TestRenoLossResponse(t *testing.T) {
	c := NewReno(mss).(*renoCC)
	c.cwnd = 40 * mss
	c.ssthresh = 10 * mss
	c.OnRTTSample(50_000, 0)

	c.OnLoss(1_000_000, false)
	if got := c.CwndSegments(); got != 20 {
		t.Errorf("fast retransmit: cwnd = %d, want 20 (halved)", got)
	}
	// A second loss within the blackout window must not halve again.
	c.OnLoss(1_020_000, false)
	if got := c.CwndSegments(); got != 20 {
		t.Errorf("loss inside blackout halved again: cwnd = %d", got)
	}
	// A timeout collapses to one segment regardless.
	c.OnLoss(2_000_000, true)
	if got := c.CwndSegments(); got != 1 {
		t.Errorf("timeout: cwnd = %d, want 1", got)
	}
	if c.ssthresh != 10*mss {
		t.Errorf("timeout ssthresh = %.0f, want %d (half of 20 segs)", c.ssthresh, 10*mss)
	}
}

func TestCubicGrowthCurve(t *testing.T) {
	c := NewCubic(mss).(*cubicCC)
	const wMax = 100.0
	c.cwnd = wMax * mss
	c.ssthresh = 10 * mss // force congestion avoidance
	c.OnRTTSample(50_000, 0)
	c.OnLoss(0, false) // loss at wMax: epoch anchor

	w0 := float64(c.CwndSegments())
	if math.Abs(w0-wMax*(1-cubicBeta)) > 1.5 {
		t.Fatalf("post-loss window = %.0f, want %.0f", w0, wMax*(1-cubicBeta))
	}

	// Drive an ACK clock and sample the trajectory.
	kUS := int64(cbrt(wMax*cubicBeta/cubicC) * 1e6)
	now := int64(200_000) // past the loss blackout
	sample := func(untilUS int64) float64 {
		for now < untilUS {
			now = ackRTT(c, now, 50_000)
		}
		return float64(c.CwndSegments())
	}

	wMid := sample(200_000 + kUS/2)
	wAtK := sample(200_000 + kUS)
	wLate := sample(200_000 + kUS + kUS/2)

	// Closed-form W(t) = C(t−K)³ + wMax: the curve recovers most of the
	// drop quickly, plateaus at wMax around t=K, then grows past it.
	if frac := (wMid - w0) / (wMax - w0); frac < 0.75 {
		t.Errorf("midpoint recovery = %.2f of the drop, want ≥0.75 (concave rise)", frac)
	}
	if math.Abs(wAtK-wMax) > 0.08*wMax {
		t.Errorf("W(K) = %.0f, want ≈%.0f", wAtK, wMax)
	}
	if wLate <= wAtK+1 {
		t.Errorf("convex probing past wMax absent: W(K·1.5) = %.0f vs W(K) = %.0f", wLate, wAtK)
	}
	// And the exact curve at a checkpoint: t = K/2 → W = wMax − C·(K/2µs)³.
	tSec := float64(kUS/2) / 1e6
	want := cubicC*math.Pow(tSec-float64(kUS)/1e6, 3) + wMax
	if math.Abs(wMid-want) > 0.08*wMax {
		t.Errorf("W(K/2) = %.1f, closed form = %.1f", wMid, want)
	}
}

// driveBBR simulates a sender over a fixed-rate bottleneck: segments sent
// when window and pacing allow, acknowledged one path RTT later but never
// faster than the bottleneck drains. Returns the pacing gains observed at
// each ACK (deduplicated consecutively).
func driveBBR(b *bbrCC, rateBytesPerUS float64, rttUS, durUS int64) []float64 {
	type pkt struct{ sentUS, ackUS int64 }
	var q []pkt
	now, lastAck := int64(0), int64(0)
	inflight := 0
	var gains []float64
	record := func() {
		g := b.pacingGain()
		if len(gains) == 0 || gains[len(gains)-1] != g {
			gains = append(gains, g)
		}
	}
	for now < durUS {
		for inflight < b.CwndSegments() && b.PacingGate(now) <= now {
			b.OnSend(mss, now)
			inflight++
			ack := now + rttUS
			if min := lastAck + int64(mss/rateBytesPerUS); ack < min {
				ack = min
			}
			lastAck = ack
			q = append(q, pkt{sentUS: now, ackUS: ack})
		}
		next := int64(math.MaxInt64)
		if len(q) > 0 {
			next = q[0].ackUS
		}
		if g := b.PacingGate(now); g > now && g < next {
			next = g
		}
		if next == math.MaxInt64 {
			break
		}
		now = next
		for len(q) > 0 && q[0].ackUS <= now {
			b.OnRTTSample(now-q[0].sentUS, now)
			b.OnAck(mss, now)
			record()
			inflight--
			q = q[1:]
		}
	}
	return gains
}

func TestBBRConvergesAndCyclesGains(t *testing.T) {
	b := NewBBR(mss).(*bbrCC)
	const rate = 1.25 // bytes/µs = 10 Mbps
	const rtt = 20_000
	gains := driveBBR(b, rate, rtt, 10_000_000)

	if b.mode != bbrProbeBW {
		t.Fatalf("mode = %d after 10 s on a steady path, want PROBE_BW", b.mode)
	}
	if bw := b.maxBW(); math.Abs(bw-rate)/rate > 0.3 {
		t.Errorf("bandwidth estimate = %.3f bytes/µs, want ≈%.2f", bw, rate)
	}
	if b.minRTTUS < rtt || b.minRTTUS > rtt*3 {
		t.Errorf("min RTT estimate = %d µs, path RTT %d", b.minRTTUS, rtt)
	}
	var sawProbe, sawDrain, sawCruise bool
	for _, g := range gains {
		switch g {
		case 1.25:
			sawProbe = true
		case 0.75:
			sawDrain = true
		case 1:
			sawCruise = true
		}
	}
	if !sawProbe || !sawDrain || !sawCruise {
		t.Errorf("PROBE_BW gain cycle incomplete: observed gains %v", gains)
	}
	// Steady-state window ≈ cwndGain·BDP.
	bdpSegs := rate * rtt / mss
	if w := float64(b.CwndSegments()); w < bdpSegs || w > 3.5*bdpSegs {
		t.Errorf("cwnd = %.0f segments, want near %.0f (2·BDP)", w, 2*bdpSegs)
	}
}

func TestBBRStartupExitsOnPlateau(t *testing.T) {
	b := NewBBR(mss).(*bbrCC)
	driveBBR(b, 2.5, 10_000, 1_000_000)
	if b.mode == bbrStartup {
		t.Error("still in STARTUP after 100 RTTs at a fixed-rate bottleneck")
	}
}

func TestBBRTimeoutCollapsesUntilDelivery(t *testing.T) {
	b := NewBBR(mss).(*bbrCC)
	driveBBR(b, 1.25, 20_000, 2_000_000)
	b.OnLoss(2_000_000, true)
	if got := b.CwndSegments(); got != 1 {
		t.Errorf("post-RTO cwnd = %d, want 1", got)
	}
	b.OnAck(mss, 2_100_000)
	if got := b.CwndSegments(); got <= 1 {
		t.Errorf("cwnd did not recover after delivery resumed: %d", got)
	}
	// Fast-retransmit losses do not change the model's operating point.
	before := b.CwndSegments()
	b.OnLoss(2_200_000, false)
	if got := b.CwndSegments(); got != before {
		t.Errorf("fast-retx loss moved BBR cwnd %d → %d", before, got)
	}
}

func TestBBRPacingSpacesSends(t *testing.T) {
	b := NewBBR(mss).(*bbrCC)
	driveBBR(b, 1.25, 20_000, 5_000_000)
	now := int64(5_000_001)
	b.OnSend(mss, now)
	gate := b.PacingGate(now)
	if gate <= now {
		t.Fatal("no pacing gate after bandwidth estimate exists")
	}
	// Gate spacing ≈ mss/(gain·bw).
	wantGap := float64(mss) / (b.pacingGain() * b.maxBW())
	if gap := float64(gate - now); gap < 0.5*wantGap || gap > 2*wantGap {
		t.Errorf("pacing gap = %.0f µs, want ≈%.0f", gap, wantGap)
	}
}

func TestControllersAreDeterministic(t *testing.T) {
	for _, name := range []string{Reno, Cubic, BBR} {
		run := func() []int {
			c := MustNew(name, mss)
			rng := rand.New(rand.NewSource(42))
			var trace []int
			now := int64(0)
			for i := 0; i < 2000; i++ {
				now += int64(rng.Intn(5000) + 100)
				switch rng.Intn(10) {
				case 0:
					c.OnLoss(now, rng.Intn(4) == 0)
				case 1:
					c.OnRTTSample(int64(rng.Intn(40000)+5000), now)
				case 2:
					c.OnSend(mss, now)
				default:
					c.OnAck(mss, now)
				}
				trace = append(trace, c.CwndSegments())
			}
			return trace
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: trajectories diverge at step %d: %d vs %d", name, i, a[i], b[i])
			}
		}
	}
}

func TestMixPickAndParse(t *testing.T) {
	weights, err := ParseMixSpec("reno=0.5, cubic=0.3,bbr=0.2")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMix(weights)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		counts[m.Pick(rng.Float64())]++
	}
	if counts[Reno] < 4500 || counts[Cubic] < 2500 || counts[BBR] < 1500 {
		t.Errorf("mix skewed: %v", counts)
	}
	if got := FormatMix(weights); got != "bbr=0.2,cubic=0.3,reno=0.5" {
		t.Errorf("FormatMix = %q", got)
	}
	if _, err := ParseMixSpec("bogus=1"); err == nil {
		t.Error("bad algorithm name accepted")
	}
	if m, err := NewMix(nil); err != nil || m != nil {
		t.Error("empty mix should be nil, nil")
	}
	if _, err := NewMix(map[string]float64{"reno": -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if eq, _ := ParseMixSpec("reno,bbr"); eq[Reno] != 1 || eq[BBR] != 1 {
		t.Errorf("equal-weight spec parsed to %v", eq)
	}
}
