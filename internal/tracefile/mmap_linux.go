//go:build linux

package tracefile

import (
	"errors"
	"io"
	"os"
	"syscall"
)

// mmapOpen maps path read-only and returns a zero-copy byte stream over
// the mapping. ok=false with a nil error means the file could not be
// mapped (caller should fall back to buffered reads); a non-nil error is
// a real open/stat/close failure worth surfacing.
func mmapOpen(path string) (io.ReadCloser, bool, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	st, err := fh.Stat()
	if err != nil {
		if cerr := fh.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, false, err
	}
	size := st.Size()
	if size == 0 {
		// mmap rejects zero-length mappings; an empty trace is just EOF.
		if cerr := fh.Close(); cerr != nil {
			return nil, false, cerr
		}
		return &byteStream{}, true, nil
	}
	if size != int64(int(size)) {
		if cerr := fh.Close(); cerr != nil {
			return nil, false, cerr
		}
		return nil, false, nil
	}
	data, merr := syscall.Mmap(int(fh.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	// The mapping (when it succeeded) outlives the descriptor.
	if cerr := fh.Close(); cerr != nil {
		if merr == nil {
			_ = syscall.Munmap(data)
		}
		return nil, false, cerr
	}
	if merr != nil {
		return nil, false, nil
	}
	return &byteStream{b: data, close: func() error { return syscall.Munmap(data) }}, true, nil
}
