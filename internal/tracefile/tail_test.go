package tracefile

import (
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseSegmentName(t *testing.T) {
	cases := []struct {
		name  string
		radio int32
		seg   int
		ok    bool
	}{
		{"radio-7.seg-0003.jig", 7, 3, true},
		{"radio-120.seg-0000.jig", 120, 0, true},
		{"radio-7.seg-12345.jig", 7, 12345, true},
		{"radio-7.jig", 0, 0, false},
		{"radio-7.seg-0003.idx", 0, 0, false},
		{"radio-.seg-0003.jig", 0, 0, false},
		{"radio-7.seg-.jig", 0, 0, false},
		{"meta.json", 0, 0, false},
	}
	for _, c := range cases {
		r, s, ok := ParseSegmentName(c.name)
		if ok != c.ok || r != c.radio || s != c.seg {
			t.Errorf("ParseSegmentName(%q) = (%d, %d, %v), want (%d, %d, %v)",
				c.name, r, s, ok, c.radio, c.seg, c.ok)
		}
	}
}

// writeSealedSegment writes one sealed segment file + index sidecar.
func writeSealedSegment(t *testing.T, dir string, radio int32, seg int, recs []Record) {
	t.Helper()
	f, err := os.Create(SegmentTracePath(dir, radio, seg))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := WriteAll(f, recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	xf, err := os.Create(SegmentIndexPath(dir, radio, seg))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteIndex(xf, idx); err != nil {
		t.Fatal(err)
	}
	if err := xf.Close(); err != nil {
		t.Fatal(err)
	}
}

func tailRecords(n int, base int64) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{LocalUS: base + int64(i)*1000, RadioID: 1, Frame: []byte{byte(i), 1, 2}, Flags: FlagFCSOK}
	}
	return recs
}

func TestDirRotatingWriterSealsSegments(t *testing.T) {
	dir := t.TempDir()
	w := NewDirRotatingWriter(dir, 3, 1_000_000)
	for i := int64(0); i < 25; i++ {
		if err := w.WriteRecord(Record{LocalUS: i * 100_000, RadioID: 3, Frame: []byte{byte(i)}, Flags: FlagFCSOK}); err != nil {
			t.Fatal(err)
		}
	}
	// Segments 0 and 1 are rotated out and sealed; segment 2 is still
	// being written, so its sidecar must not exist yet.
	for seg := 0; seg < 2; seg++ {
		if _, err := os.Stat(SegmentIndexPath(dir, 3, seg)); err != nil {
			t.Errorf("segment %d not sealed: %v", seg, err)
		}
	}
	if _, err := os.Stat(SegmentIndexPath(dir, 3, 2)); err == nil {
		t.Error("active segment 2 has an index sidecar before Close")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Segments() != 3 {
		t.Fatalf("segments = %d, want 3", w.Segments())
	}
	// Every sealed segment round-trips, and the sidecar parses.
	var total int
	for seg := 0; seg < 3; seg++ {
		f, err := os.Open(SegmentTracePath(dir, 3, seg))
		if err != nil {
			t.Fatal(err)
		}
		recs, err := ReadAll(f)
		f.Close()
		if err != nil {
			t.Fatalf("segment %d: %v", seg, err)
		}
		total += len(recs)
		xf, err := os.Open(SegmentIndexPath(dir, 3, seg))
		if err != nil {
			t.Fatal(err)
		}
		idx, err := ReadIndex(xf)
		xf.Close()
		if err != nil {
			t.Fatalf("segment %d index: %v", seg, err)
		}
		var n int32
		for _, e := range idx {
			n += e.Records
		}
		if int(n) != len(recs) {
			t.Errorf("segment %d index counts %d, file holds %d", seg, n, len(recs))
		}
	}
	if total != 25 {
		t.Fatalf("read %d records across segments, want 25", total)
	}
}

func TestTailSetSealedVsActive(t *testing.T) {
	dir := t.TempDir()
	writeSealedSegment(t, dir, 1, 0, tailRecords(5, 0))
	// Segment 1 exists but is unsealed (no sidecar): an in-progress write.
	if err := os.WriteFile(SegmentTracePath(dir, 1, 1), []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	ts := NewTailSet(dir)
	if _, err := ts.Scan(); err != nil {
		t.Fatal(err)
	}
	if got := ts.SealedSegments(1); got != 1 {
		t.Fatalf("sealed segments = %d, want 1 (active segment must not count)", got)
	}
	set := ts.TraceSet()
	rc, err := set.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	r := NewReader(rc)
	for i := 0; i < 5; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	// The reader is now at the sealed frontier. Finish and expect a clean
	// EOF — the truncated active segment must never be read.
	ts.Finish()
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF at sealed frontier", err)
	}
}

func TestTailSetPicksUpNewSegments(t *testing.T) {
	dir := t.TempDir()
	writeSealedSegment(t, dir, 2, 0, tailRecords(4, 0))
	ts := NewTailSet(dir)
	if _, err := ts.Scan(); err != nil {
		t.Fatal(err)
	}
	set := ts.TraceSet()
	rc, err := set.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	r := NewReader(rc)

	got := make(chan []int64, 1)
	go func() {
		var us []int64
		for {
			rec, err := r.Next()
			if err != nil {
				break
			}
			us = append(us, rec.LocalUS)
		}
		got <- us
	}()

	// Let the reader drain segment 0 and block at the frontier, then seal
	// a new segment mid-run and mark the capture done.
	time.Sleep(20 * time.Millisecond)
	writeSealedSegment(t, dir, 2, 1, tailRecords(3, 1_000_000))
	if err := MarkCaptureDone(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Scan(); err != nil {
		t.Fatal(err)
	}

	us := <-got
	if len(us) != 7 {
		t.Fatalf("read %d records, want 7 (4 + 3 from the mid-run segment)", len(us))
	}
	if us[4] != 1_000_000 {
		t.Fatalf("first record of new segment at %d, want 1000000", us[4])
	}
	if !ts.Done() {
		t.Error("capture.done marker not noticed")
	}
}

func TestTailSetTruncatedSegmentSkippedThenPickedUp(t *testing.T) {
	dir := t.TempDir()
	writeSealedSegment(t, dir, 1, 0, tailRecords(2, 0))
	// Segment 1: a truncated crash leftover with no sidecar.
	if err := os.WriteFile(SegmentTracePath(dir, 1, 1), []byte{0x4a, 0x49}, 0o644); err != nil {
		t.Fatal(err)
	}
	// Segment 2 sealed *before* segment 1: must be held back until its
	// predecessor seals, or the stream would skip records.
	writeSealedSegment(t, dir, 1, 2, tailRecords(2, 2_000_000))

	ts := NewTailSet(dir)
	if _, err := ts.Scan(); err != nil {
		t.Fatal(err)
	}
	if got := ts.SealedSegments(1); got != 1 {
		t.Fatalf("sealed segments = %d, want 1 (gap at unsealed segment 1)", got)
	}

	// The writer recovers: segment 1 is rewritten completely and sealed.
	writeSealedSegment(t, dir, 1, 1, tailRecords(2, 1_000_000))
	progress, err := ts.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if !progress {
		t.Fatal("scan after sealing reported no progress")
	}
	if got := ts.SealedSegments(1); got != 3 {
		t.Fatalf("sealed segments = %d, want 3 (gap closed, successor published)", got)
	}
	ts.Finish()
	rc, err := ts.TraceSet().Open(1)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	recs, err := ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("read %d records, want 6 in order across the healed gap", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LocalUS < recs[i-1].LocalUS {
			t.Fatal("records out of order across segments")
		}
	}
}

func TestTailSetRosterFixedAtTraceSet(t *testing.T) {
	dir := t.TempDir()
	writeSealedSegment(t, dir, 1, 0, tailRecords(1, 0))
	ts := NewTailSet(dir)
	if _, err := ts.Scan(); err != nil {
		t.Fatal(err)
	}
	set := ts.TraceSet()
	writeSealedSegment(t, dir, 9, 0, tailRecords(1, 0))
	if _, err := ts.Scan(); err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Fatalf("trace set grew after creation: %d radios", set.Len())
	}
	if got := len(ts.Radios()); got != 2 {
		t.Fatalf("tail set radios = %d, want 2", got)
	}
	// meta/unknown files in the directory are ignored by Scan.
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Scan(); err != nil {
		t.Fatal(err)
	}
}
