package tracefile

import (
	"fmt"
	"io"
)

// RotatingWriter splits a radio's capture into consecutive segments by
// local-clock period, mirroring jigdump's behaviour of "creating a new file
// pair each hour" (§3.3). Each segment is an independent trace stream with
// its own metadata index.
type RotatingWriter struct {
	open     func(segment int) (io.Writer, error)
	periodUS int64
	snapLen  int

	cur      *Writer
	seg      int
	segStart int64
	started  bool
	indexes  [][]IndexEntry
}

// NewRotatingWriter creates a rotating writer. open is called with the
// segment number (0, 1, …) to obtain each segment's destination; periodUS
// is the rotation period in local-clock microseconds (an hour in the
// paper's deployment).
func NewRotatingWriter(open func(segment int) (io.Writer, error), periodUS int64) *RotatingWriter {
	return &RotatingWriter{open: open, periodUS: periodUS, snapLen: DefaultSnapLen, seg: -1}
}

// SetSnapLen sets the per-frame capture limit for subsequent segments.
func (w *RotatingWriter) SetSnapLen(n int) { w.snapLen = n }

// WriteRecord appends a record, rotating first if its timestamp falls past
// the current segment's period.
func (w *RotatingWriter) WriteRecord(r Record) error {
	if !w.started {
		w.started = true
		w.segStart = r.LocalUS
	}
	for w.cur == nil || r.LocalUS >= w.segStart+w.periodUS {
		if err := w.rotate(r.LocalUS); err != nil {
			return err
		}
	}
	return w.cur.WriteRecord(r)
}

// rotate closes the current segment and opens the next.
func (w *RotatingWriter) rotate(nowUS int64) error {
	if w.cur != nil {
		if err := w.cur.Close(); err != nil {
			return err
		}
		w.indexes = append(w.indexes, w.cur.Index())
		w.segStart += w.periodUS
	} else {
		w.segStart = nowUS
	}
	w.seg++
	dst, err := w.open(w.seg)
	if err != nil {
		return fmt.Errorf("tracefile: opening segment %d: %w", w.seg, err)
	}
	w.cur = NewWriter(dst)
	w.cur.SetSnapLen(w.snapLen)
	return nil
}

// Close finishes the current segment.
func (w *RotatingWriter) Close() error {
	if w.cur == nil {
		return nil
	}
	err := w.cur.Close()
	w.indexes = append(w.indexes, w.cur.Index())
	w.cur = nil
	return err
}

// Segments returns how many segments were produced.
func (w *RotatingWriter) Segments() int { return w.seg + 1 }

// Indexes returns the per-segment metadata indexes (valid after Close).
func (w *RotatingWriter) Indexes() [][]IndexEntry { return w.indexes }

// MultiReader iterates records across consecutive segment streams as one
// trace.
type MultiReader struct {
	readers []*Reader
	i       int
}

// NewMultiReader chains segment streams in order.
func NewMultiReader(segments ...io.Reader) *MultiReader {
	rs := make([]*Reader, len(segments))
	for i, s := range segments {
		rs[i] = NewReader(s)
	}
	return &MultiReader{readers: rs}
}

// Next returns the next record across all segments; io.EOF at the true end.
func (m *MultiReader) Next() (Record, error) {
	for m.i < len(m.readers) {
		rec, err := m.readers[m.i].Next()
		if err == io.EOF {
			m.i++
			continue
		}
		return rec, err
	}
	return Record{}, io.EOF
}
