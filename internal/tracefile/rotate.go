package tracefile

import (
	"fmt"
	"io"
)

// RotatingWriter splits a radio's capture into consecutive segments by
// local-clock period, mirroring jigdump's behaviour of "creating a new file
// pair each hour" (§3.3). Each segment is an independent trace stream with
// its own metadata index.
//
// Boundary semantics: the segment grid is anchored at the first record's
// timestamp, and a record timestamped exactly on a period edge opens the
// new segment (segments are the half-open intervals [start, start+period)).
// Idle periods produce no segment at all — segment numbers stay
// consecutive and the next record's period is entered directly, so a
// tailing reader never sees zero-record segment files.
type RotatingWriter struct {
	open     func(segment int) (io.Writer, error)
	seal     func(segment int, idx []IndexEntry) error
	periodUS int64
	snapLen  int

	cur      *Writer
	seg      int
	segStart int64
	started  bool
	indexes  [][]IndexEntry
}

// NewRotatingWriter creates a rotating writer. open is called with the
// segment number (0, 1, …) to obtain each segment's destination; periodUS
// is the rotation period in local-clock microseconds (an hour in the
// paper's deployment).
func NewRotatingWriter(open func(segment int) (io.Writer, error), periodUS int64) *RotatingWriter {
	return &RotatingWriter{open: open, periodUS: periodUS, snapLen: DefaultSnapLen, seg: -1}
}

// SetSnapLen sets the per-frame capture limit for subsequent segments.
func (w *RotatingWriter) SetSnapLen(n int) { w.snapLen = n }

// SetSealFunc registers a callback invoked after each segment's stream is
// fully written (on rotation and on Close), with the segment number and
// its metadata index. Directory-backed writers use it to flush, close and
// mark the segment file complete so a concurrent tailer can tell sealed
// segments from the one still being written.
func (w *RotatingWriter) SetSealFunc(seal func(segment int, idx []IndexEntry) error) {
	w.seal = seal
}

// WriteRecord appends a record, rotating first if its timestamp falls past
// the current segment's period.
func (w *RotatingWriter) WriteRecord(r Record) error {
	if !w.started {
		w.started = true
		w.segStart = r.LocalUS
	}
	if w.cur == nil || r.LocalUS >= w.segStart+w.periodUS {
		if err := w.rotate(r.LocalUS); err != nil {
			return err
		}
	}
	return w.cur.WriteRecord(r)
}

// rotate seals the current segment and opens the one containing nowUS.
func (w *RotatingWriter) rotate(nowUS int64) error {
	if w.cur != nil {
		if err := w.closeCur(); err != nil {
			return err
		}
		// Jump straight to the period containing nowUS (staying on the
		// grid the first record anchored): idle periods in between get no
		// zero-record segment file, and segment numbers stay consecutive.
		w.segStart += (nowUS - w.segStart) / w.periodUS * w.periodUS
	} else {
		w.segStart = nowUS
	}
	w.seg++
	dst, err := w.open(w.seg)
	if err != nil {
		return fmt.Errorf("tracefile: opening segment %d: %w", w.seg, err)
	}
	w.cur = NewWriter(dst)
	w.cur.SetSnapLen(w.snapLen)
	return nil
}

// closeCur finishes the current segment's stream and seals it.
func (w *RotatingWriter) closeCur() error {
	err := w.cur.Close()
	idx := w.cur.Index()
	w.indexes = append(w.indexes, idx)
	w.cur = nil
	if err != nil {
		return err
	}
	if w.seal != nil {
		if serr := w.seal(w.seg, idx); serr != nil {
			return fmt.Errorf("tracefile: sealing segment %d: %w", w.seg, serr)
		}
	}
	return nil
}

// Close finishes and seals the current segment.
func (w *RotatingWriter) Close() error {
	if w.cur == nil {
		return nil
	}
	return w.closeCur()
}

// Segments returns how many segments were produced.
func (w *RotatingWriter) Segments() int { return w.seg + 1 }

// Indexes returns the per-segment metadata indexes (valid after Close).
func (w *RotatingWriter) Indexes() [][]IndexEntry { return w.indexes }

// MultiReader iterates records across consecutive segment streams as one
// trace.
type MultiReader struct {
	readers []*Reader
	i       int
}

// NewMultiReader chains segment streams in order.
func NewMultiReader(segments ...io.Reader) *MultiReader {
	rs := make([]*Reader, len(segments))
	for i, s := range segments {
		rs[i] = NewReader(s)
	}
	return &MultiReader{readers: rs}
}

// Next returns the next record across all segments; io.EOF at the true end.
func (m *MultiReader) Next() (Record, error) {
	for m.i < len(m.readers) {
		rec, err := m.readers[m.i].Next()
		if err == io.EOF {
			m.i++
			continue
		}
		return rec, err
	}
	return Record{}, io.EOF
}
