//go:build !linux

package tracefile

import "io"

// mmapOpen is unavailable off-linux; MmapSource degrades to buffered
// file reads.
func mmapOpen(string) (io.ReadCloser, bool, error) { return nil, false, nil }
