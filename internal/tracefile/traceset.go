// Trace sources and trace sets: the out-of-core abstraction over "where a
// radio's compressed trace lives". The capture format itself is streamed
// (Reader decompresses one 64 KB block at a time); these types let the
// pipeline's callers stream too, instead of requiring every compressed
// trace resident in memory. A TraceSet is either buffer-backed (the
// in-memory compatibility path) or directory-backed (one radio-<id>.jig
// file per radio, the building-scale path where 24-hour captures far
// exceed RAM).
package tracefile

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Source opens one radio's compressed trace stream. Every Open returns an
// independent reader positioned at the start of the trace: the pipeline
// opens each trace twice (bootstrap pre-scan, then the main pass), and the
// parallel path opens traces from prefetcher goroutines, so implementations
// must be safe for concurrent Opens.
type Source interface {
	Open() (io.ReadCloser, error)
}

// BufferSource is an in-memory compressed trace.
type BufferSource []byte

// Open returns a zero-copy reader over the buffered bytes.
func (b BufferSource) Open() (io.ReadCloser, error) {
	return &byteStream{b: b}, nil
}

// byteStream streams an in-memory compressed trace and hands out zero-copy
// block slices: it implements BlockSlicer, so Reader parses compressed
// blocks straight out of the backing bytes instead of staging them through
// a copy. Backs both BufferSource and the mmap path.
type byteStream struct {
	b     []byte
	off   int
	close func() error
}

func (s *byteStream) Read(p []byte) (int, error) {
	if s.off >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.off:])
	s.off += n
	return n, nil
}

// Slice returns the next n bytes of the stream without copying. The slice
// aliases the backing buffer and is only valid until Close.
func (s *byteStream) Slice(n int) ([]byte, error) {
	if len(s.b)-s.off < n {
		s.off = len(s.b)
		return nil, io.ErrUnexpectedEOF
	}
	out := s.b[s.off : s.off+n : s.off+n]
	s.off += n
	return out, nil
}

func (s *byteStream) Close() error {
	s.b = nil
	if s.close != nil {
		return s.close()
	}
	return nil
}

// fileReadBufSize sizes the read buffer in front of each trace file: big
// enough to amortize syscalls over a compressed block (blocks compress
// well under their 64 KB raw target), small enough that a building's worth
// of concurrently open radios stays cheap.
const fileReadBufSize = 32 * 1024

// FileSource is a file-backed compressed trace, opened by path at use time
// so an idle TraceSet holds no file descriptors.
type FileSource string

// bufReadCloser pairs the buffered reader with the file it fronts.
type bufReadCloser struct {
	*bufio.Reader
	c io.Closer
}

func (b *bufReadCloser) Close() error { return b.c.Close() }

// Open opens the trace file with a read buffer.
func (f FileSource) Open() (io.ReadCloser, error) {
	fh, err := os.Open(string(f))
	if err != nil {
		return nil, err
	}
	return &bufReadCloser{Reader: bufio.NewReaderSize(fh, fileReadBufSize), c: fh}, nil
}

// MmapSource is a file-backed compressed trace mapped into memory at Open:
// Reader slices compressed blocks straight out of the mapping instead of
// copying them through a read buffer. On platforms without mmap (or when
// the mapping fails) it degrades to FileSource's buffered reads.
type MmapSource string

// Open maps the trace read-only, falling back to buffered file reads when
// mmap is unavailable.
func (m MmapSource) Open() (io.ReadCloser, error) {
	rc, ok, err := mmapOpen(string(m))
	if err != nil {
		return nil, err
	}
	if ok {
		return rc, nil
	}
	return FileSource(m).Open()
}

// TraceSet maps radio ids to trace sources — the pipeline's input. Memory
// behaviour is the backing's: buffer-backed sets hold every compressed
// trace resident; directory-backed sets hold only paths, so the pipeline's
// working set is O(search window) per radio.
type TraceSet struct {
	sources map[int32]Source
	dir     string // non-empty when directory-backed
}

// NewTraceSet builds a set from explicit per-radio sources.
func NewTraceSet(sources map[int32]Source) *TraceSet {
	return &TraceSet{sources: sources}
}

// NewBufferSet wraps in-memory compressed traces (the bytes produced by
// Writer) as a TraceSet.
func NewBufferSet(traces map[int32][]byte) *TraceSet {
	m := make(map[int32]Source, len(traces))
	for r, b := range traces {
		m[r] = BufferSource(b)
	}
	return &TraceSet{sources: m}
}

// TracePath names a radio's trace file inside a trace directory.
func TracePath(dir string, radio int32) string {
	return filepath.Join(dir, fmt.Sprintf("radio-%d.jig", radio))
}

// IndexPath names a radio's metadata-index file inside a trace directory.
func IndexPath(dir string, radio int32) string {
	return filepath.Join(dir, fmt.Sprintf("radio-%d.idx", radio))
}

// ParseTraceName extracts the radio id from a trace filename. Both the
// directory layout's radio-<id>.jig and the legacy zero-padded
// radioNNN.jig spelling are accepted.
func ParseTraceName(name string) (int32, bool) {
	base := filepath.Base(name)
	if !strings.HasPrefix(base, "radio") || !strings.HasSuffix(base, ".jig") {
		return 0, false
	}
	num := strings.TrimSuffix(strings.TrimPrefix(base, "radio"), ".jig")
	num = strings.TrimPrefix(num, "-")
	id, err := strconv.ParseUint(num, 10, 31)
	if err != nil {
		return 0, false
	}
	return int32(id), true
}

// OpenDir builds a directory-backed TraceSet from every radio trace file
// (radio-<id>.jig, or the legacy radioNNN.jig) in dir. Unrecognized files
// are ignored; an empty directory is an error, and so are two files
// naming the same radio (e.g. a stale legacy radio003.jig next to a fresh
// radio-3.jig) — silently picking one would merge mixed-generation
// traces.
func OpenDir(dir string) (*TraceSet, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tracefile: open trace dir: %w", err)
	}
	m := make(map[int32]Source)
	names := make(map[int32]string)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		id, ok := ParseTraceName(e.Name())
		if !ok {
			continue
		}
		if prev, dup := names[id]; dup {
			return nil, fmt.Errorf("tracefile: radio %d has two traces in %s (%s and %s); remove the stale one",
				id, dir, prev, e.Name())
		}
		names[id] = e.Name()
		m[id] = MmapSource(filepath.Join(dir, e.Name()))
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("tracefile: no radio traces in %s", dir)
	}
	return &TraceSet{sources: m, dir: dir}, nil
}

// OpenDirs unions several trace directories into one TraceSet — the flat
// (single-merge) view of a campus laid out as per-building directories.
// Radio ids must be globally unique across the directories: a radio
// appearing twice means two buildings claim the same monitor, and merging
// both traces would double-count its frames.
func OpenDirs(dirs ...string) (*TraceSet, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("tracefile: no trace dirs")
	}
	if len(dirs) == 1 {
		return OpenDir(dirs[0])
	}
	m := make(map[int32]Source)
	owner := make(map[int32]string)
	for _, dir := range dirs {
		ts, err := OpenDir(dir)
		if err != nil {
			return nil, err
		}
		for r, src := range ts.sources {
			if prev, dup := owner[r]; dup {
				return nil, fmt.Errorf("tracefile: radio %d appears in both %s and %s", r, prev, dir)
			}
			owner[r] = dir
			m[r] = src
		}
	}
	return &TraceSet{sources: m}, nil
}

// Dir returns the backing directory ("" for buffer-backed sets).
func (ts *TraceSet) Dir() string { return ts.dir }

// Len returns the number of radios in the set.
func (ts *TraceSet) Len() int { return len(ts.sources) }

// Radios lists the set's radio ids in ascending order.
func (ts *TraceSet) Radios() []int32 {
	out := make([]int32, 0, len(ts.sources))
	for r := range ts.sources {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Open starts a fresh read of one radio's trace.
func (ts *TraceSet) Open(radio int32) (io.ReadCloser, error) {
	src, ok := ts.sources[radio]
	if !ok {
		return nil, fmt.Errorf("tracefile: no trace for radio %d", radio)
	}
	return src.Open()
}
