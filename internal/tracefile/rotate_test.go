package tracefile

import (
	"bytes"
	"io"
	"testing"
)

func TestRotatingWriterSplitsByPeriod(t *testing.T) {
	var bufs []*bytes.Buffer
	w := NewRotatingWriter(func(seg int) (io.Writer, error) {
		b := &bytes.Buffer{}
		bufs = append(bufs, b)
		return b, nil
	}, 1_000_000) // 1 s segments

	// 3.5 "seconds" of records at 100 ms spacing.
	recs := make([]Record, 0, 35)
	for i := int64(0); i < 35; i++ {
		r := Record{LocalUS: i * 100_000, Frame: []byte{byte(i), 1, 2, 3}, Flags: FlagFCSOK}
		recs = append(recs, r)
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Segments() != 4 {
		t.Fatalf("segments = %d, want 4", w.Segments())
	}
	if len(w.Indexes()) != 4 {
		t.Fatalf("indexes = %d", len(w.Indexes()))
	}
	// Each segment covers exactly one period.
	for i, b := range bufs {
		rs, err := ReadAll(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if r.LocalUS < int64(i)*1_000_000 || r.LocalUS >= int64(i+1)*1_000_000 {
				t.Fatalf("record at %d in segment %d", r.LocalUS, i)
			}
		}
	}
}

func TestRotatingWriterSkipsEmptyPeriods(t *testing.T) {
	var bufs []*bytes.Buffer
	w := NewRotatingWriter(func(seg int) (io.Writer, error) {
		b := &bytes.Buffer{}
		bufs = append(bufs, b)
		return b, nil
	}, 1_000_000)
	// Two records 5 periods apart: the idle periods in between must not
	// produce zero-record segment files, and segment numbers stay
	// consecutive.
	if err := w.WriteRecord(Record{LocalUS: 0, Frame: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(Record{LocalUS: 5_100_000, Frame: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Segments() != 2 {
		t.Errorf("segments = %d, want 2 (no zero-record segments for idle periods)", w.Segments())
	}
	for i, b := range bufs {
		rs, err := ReadAll(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != 1 {
			t.Errorf("segment %d holds %d records, want 1", i, len(rs))
		}
	}
	// The grid stays anchored at the first record: a later record in the
	// same period as the jump target must share its segment.
	var bufs2 []*bytes.Buffer
	w2 := NewRotatingWriter(func(seg int) (io.Writer, error) {
		b := &bytes.Buffer{}
		bufs2 = append(bufs2, b)
		return b, nil
	}, 1_000_000)
	for _, us := range []int64{200_000, 5_300_000, 5_900_000} {
		if err := w2.WriteRecord(Record{LocalUS: us, Frame: []byte{9}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if w2.Segments() != 2 {
		t.Fatalf("segments = %d, want 2", w2.Segments())
	}
	rs, err := ReadAll(bytes.NewReader(bufs2[1].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Errorf("post-gap segment holds %d records, want 2 (grid anchored at first record)", len(rs))
	}
}

func TestRotatingWriterPeriodEdge(t *testing.T) {
	var bufs []*bytes.Buffer
	w := NewRotatingWriter(func(seg int) (io.Writer, error) {
		b := &bytes.Buffer{}
		bufs = append(bufs, b)
		return b, nil
	}, 1_000_000)
	// A record timestamped exactly on the rotation edge must open the new
	// segment (segments are half-open [start, start+period)).
	for _, us := range []int64{0, 999_999, 1_000_000} {
		if err := w.WriteRecord(Record{LocalUS: us, Frame: []byte{byte(us)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Segments() != 2 {
		t.Fatalf("segments = %d, want 2", w.Segments())
	}
	first, err := ReadAll(bytes.NewReader(bufs[0].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	second, err := ReadAll(bytes.NewReader(bufs[1].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 || first[len(first)-1].LocalUS != 999_999 {
		t.Errorf("first segment = %d records ending %d, want 2 ending 999999",
			len(first), first[len(first)-1].LocalUS)
	}
	if len(second) != 1 || second[0].LocalUS != 1_000_000 {
		t.Errorf("edge record not at head of new segment: %v", second)
	}
}

func TestRotatingWriterSealHook(t *testing.T) {
	var sealed []int
	var segIdx [][]IndexEntry
	w := NewRotatingWriter(func(seg int) (io.Writer, error) {
		return &bytes.Buffer{}, nil
	}, 1_000_000)
	w.SetSealFunc(func(seg int, idx []IndexEntry) error {
		sealed = append(sealed, seg)
		segIdx = append(segIdx, idx)
		return nil
	})
	for i := int64(0); i < 25; i++ {
		if err := w.WriteRecord(Record{LocalUS: i * 100_000, Frame: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Seal fires on rotation, before the next segment opens…
	if len(sealed) != 2 || sealed[0] != 0 || sealed[1] != 1 {
		t.Fatalf("sealed after writes = %v, want [0 1]", sealed)
	}
	// …and on Close for the final segment.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 3 || sealed[2] != 2 {
		t.Fatalf("sealed after close = %v, want [0 1 2]", sealed)
	}
	for i, idx := range segIdx {
		var n int32
		for _, e := range idx {
			n += e.Records
		}
		want := int32(10)
		if i == 2 {
			want = 5
		}
		if n != want {
			t.Errorf("segment %d index counts %d records, want %d", i, n, want)
		}
	}
}

func TestMultiReaderChains(t *testing.T) {
	var bufs []*bytes.Buffer
	w := NewRotatingWriter(func(seg int) (io.Writer, error) {
		b := &bytes.Buffer{}
		bufs = append(bufs, b)
		return b, nil
	}, 500_000)
	for i := int64(0); i < 20; i++ {
		w.WriteRecord(Record{LocalUS: i * 100_000, Frame: []byte{byte(i)}, Flags: FlagFCSOK})
	}
	w.Close()

	var readers []io.Reader
	for _, b := range bufs {
		readers = append(readers, bytes.NewReader(b.Bytes()))
	}
	mr := NewMultiReader(readers...)
	var got []int64
	for {
		rec, err := mr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec.LocalUS)
	}
	if len(got) != 20 {
		t.Fatalf("read %d records, want 20", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatal("multi-reader out of order")
		}
	}
}

func TestMultiReaderEmpty(t *testing.T) {
	mr := NewMultiReader()
	if _, err := mr.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}
