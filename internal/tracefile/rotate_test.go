package tracefile

import (
	"bytes"
	"io"
	"testing"
)

func TestRotatingWriterSplitsByPeriod(t *testing.T) {
	var bufs []*bytes.Buffer
	w := NewRotatingWriter(func(seg int) (io.Writer, error) {
		b := &bytes.Buffer{}
		bufs = append(bufs, b)
		return b, nil
	}, 1_000_000) // 1 s segments

	// 3.5 "seconds" of records at 100 ms spacing.
	recs := make([]Record, 0, 35)
	for i := int64(0); i < 35; i++ {
		r := Record{LocalUS: i * 100_000, Frame: []byte{byte(i), 1, 2, 3}, Flags: FlagFCSOK}
		recs = append(recs, r)
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Segments() != 4 {
		t.Fatalf("segments = %d, want 4", w.Segments())
	}
	if len(w.Indexes()) != 4 {
		t.Fatalf("indexes = %d", len(w.Indexes()))
	}
	// Each segment covers exactly one period.
	for i, b := range bufs {
		rs, err := ReadAll(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if r.LocalUS < int64(i)*1_000_000 || r.LocalUS >= int64(i+1)*1_000_000 {
				t.Fatalf("record at %d in segment %d", r.LocalUS, i)
			}
		}
	}
}

func TestRotatingWriterSkipsEmptyPeriods(t *testing.T) {
	opened := 0
	w := NewRotatingWriter(func(seg int) (io.Writer, error) {
		opened++
		return &bytes.Buffer{}, nil
	}, 1_000_000)
	// Two records 5 periods apart: intermediate segments are created
	// (like empty hourly files) but contain nothing.
	w.WriteRecord(Record{LocalUS: 0, Frame: []byte{1}})
	w.WriteRecord(Record{LocalUS: 5_100_000, Frame: []byte{2}})
	w.Close()
	if opened != 6 {
		t.Errorf("opened %d segments, want 6 (hourly files even when idle)", opened)
	}
}

func TestMultiReaderChains(t *testing.T) {
	var bufs []*bytes.Buffer
	w := NewRotatingWriter(func(seg int) (io.Writer, error) {
		b := &bytes.Buffer{}
		bufs = append(bufs, b)
		return b, nil
	}, 500_000)
	for i := int64(0); i < 20; i++ {
		w.WriteRecord(Record{LocalUS: i * 100_000, Frame: []byte{byte(i)}, Flags: FlagFCSOK})
	}
	w.Close()

	var readers []io.Reader
	for _, b := range bufs {
		readers = append(readers, bytes.NewReader(b.Bytes()))
	}
	mr := NewMultiReader(readers...)
	var got []int64
	for {
		rec, err := mr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec.LocalUS)
	}
	if len(got) != 20 {
		t.Fatalf("read %d records, want 20", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatal("multi-reader out of order")
		}
	}
}

func TestMultiReaderEmpty(t *testing.T) {
	mr := NewMultiReader()
	if _, err := mr.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}
