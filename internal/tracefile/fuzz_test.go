package tracefile

import (
	"bytes"
	"io"
	"testing"
)

// validTraceBytes serializes a small representative trace for the seed
// corpus.
func validTraceBytes(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	recs := []Record{
		{LocalUS: 100, RadioID: 1, Channel: 1, RSSIdBm: -40, Rate: 20,
			Flags: FlagFCSOK, Frame: []byte("hello frame bytes")},
		{LocalUS: 220, RadioID: 1, Channel: 1, RSSIdBm: -77, Rate: 10,
			Frame: bytes.Repeat([]byte{0xab}, 300), OrigLen: 1400},
		{LocalUS: 230, RadioID: 1, Channel: 1, RSSIdBm: -90, Flags: FlagPhyErr},
	}
	if _, err := WriteAll(&buf, recs); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReader: arbitrary bytes through the block reader must terminate with
// a record stream or an error — never panic, never balloon memory off a
// corrupt header.
func FuzzReader(f *testing.F) {
	valid := validTraceBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])      // truncated mid-block
	f.Add(valid[:23])                // truncated block header
	f.Add(append([]byte("JIG1"), 0)) // magic then garbage
	f.Add(bytes.Repeat([]byte{0}, 64))
	corrupt := append([]byte(nil), valid...)
	corrupt[30] ^= 0xff // damage the compressed payload
	f.Add(corrupt)
	huge := append([]byte(nil), valid...)
	huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0x7f // absurd compLen
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1<<20; i++ {
			rec, err := r.Next()
			if err != nil {
				// Errors must be sticky: the reader stays failed.
				if _, err2 := r.Next(); err2 == nil {
					t.Fatal("reader recovered after error")
				}
				return
			}
			if len(rec.Frame) > 0 && rec.Frame == nil {
				t.Fatal("impossible frame state")
			}
		}
		t.Fatal("reader never terminated")
	})
}

// FuzzReadIndex: arbitrary bytes through the metadata-index parser.
func FuzzReadIndex(f *testing.F) {
	var buf bytes.Buffer
	recs := []Record{{LocalUS: 5, RadioID: 2, Frame: []byte("x")}}
	idx, err := WriteAll(&buf, recs)
	if err != nil {
		f.Fatal(err)
	}
	var ibuf bytes.Buffer
	if err := WriteIndex(&ibuf, idx); err != nil {
		f.Fatal(err)
	}
	valid := ibuf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])           // truncated entry
	f.Add([]byte("JIG1\xff\xff\xff\xff")) // absurd count
	f.Add([]byte("nope"))

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := ReadIndex(bytes.NewReader(data))
		if err == nil {
			// A successful parse must be internally consistent with the
			// input length: 8-byte header + 36 bytes per entry.
			if want := 8 + 36*len(idx); len(data) < want {
				t.Fatalf("parsed %d entries from %d bytes", len(idx), len(data))
			}
		}
	})
}

// FuzzRoundTrip: records written must read back identically regardless of
// the fuzzer's choice of content and snap behaviour.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(12345), []byte("frame"), uint16(0))
	f.Add(int64(-1), []byte{}, uint16(999))
	f.Fuzz(func(t *testing.T, us int64, frame []byte, origLen uint16) {
		if len(frame) > DefaultSnapLen {
			frame = frame[:DefaultSnapLen] // writer would snap; keep comparison simple
		}
		in := Record{LocalUS: us, RadioID: 7, Channel: 6, RSSIdBm: -50,
			Rate: 110, Flags: FlagFCSOK, OrigLen: origLen, Frame: frame}
		var buf bytes.Buffer
		if _, err := WriteAll(&buf, []Record{in}); err != nil {
			t.Fatal(err)
		}
		r := NewReader(bytes.NewReader(buf.Bytes()))
		got, err := r.Next()
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if got.LocalUS != in.LocalUS || got.RadioID != in.RadioID ||
			got.Flags != in.Flags || !bytes.Equal(got.Frame, in.Frame) {
			t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, got)
		}
		wantOrig := origLen
		if wantOrig == 0 {
			wantOrig = uint16(len(frame))
		}
		if got.OrigLen != wantOrig {
			t.Fatalf("OrigLen = %d, want %d", got.OrigLen, wantOrig)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("expected EOF after one record, got %v", err)
		}
	})
}
