// Directory tailing: the live-capture layout a long-running analyzer
// (cmd/jigd) consumes while jigdump-style writers are still appending to
// it. A capturing radio writes consecutive rotation segments
// radio-<id>.seg-NNNN.jig; a segment is *sealed* — complete and immutable —
// exactly when its metadata-index sidecar radio-<id>.seg-NNNN.idx exists
// (the sidecar is written atomically after the segment's final block, so a
// crash or an in-progress write never yields a sealed-looking partial
// file). A TailSet scans the directory for newly sealed segments and
// exposes each radio as one endless trace Source whose reader blocks at
// the current end of sealed data until the next segment seals or capture
// ends (the capture.done marker, or Finish).
package tracefile

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SegmentTracePath names one rotation segment of a radio's live capture.
func SegmentTracePath(dir string, radio int32, seg int) string {
	return filepath.Join(dir, fmt.Sprintf("radio-%d.seg-%04d.jig", radio, seg))
}

// SegmentIndexPath names a segment's metadata-index sidecar, whose
// existence marks the segment sealed.
func SegmentIndexPath(dir string, radio int32, seg int) string {
	return filepath.Join(dir, fmt.Sprintf("radio-%d.seg-%04d.idx", radio, seg))
}

// CaptureDoneName is the marker file a capture (or replay) drops into a
// live trace directory when no further segments will be written. Tailing
// readers then return io.EOF once they exhaust the sealed segments.
const CaptureDoneName = "capture.done"

// ParseSegmentName extracts the radio id and segment number from a
// radio-<id>.seg-<n>.jig filename.
func ParseSegmentName(name string) (radio int32, seg int, ok bool) {
	base := filepath.Base(name)
	if !strings.HasPrefix(base, "radio-") || !strings.HasSuffix(base, ".jig") {
		return 0, 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(base, "radio-"), ".jig")
	id, rest, found := strings.Cut(mid, ".seg-")
	if !found {
		return 0, 0, false
	}
	r, err := strconv.ParseUint(id, 10, 31)
	if err != nil {
		return 0, 0, false
	}
	s, err := strconv.ParseUint(rest, 10, 31)
	if err != nil {
		return 0, 0, false
	}
	return int32(r), int(s), true
}

// DirRotatingWriter writes one radio's live capture into a directory as
// sealed rotation segments: each segment streams to
// radio-<id>.seg-NNNN.jig and, once its final block is flushed and the
// file closed, the index sidecar appears atomically (tmp + rename) to
// publish it to tailers.
type DirRotatingWriter struct {
	rw    *RotatingWriter
	dir   string
	radio int32

	f  *os.File
	bw *bufio.Writer
}

// dirSegmentBufSize buffers each segment file's writes; segments are
// written once, sequentially.
const dirSegmentBufSize = 64 * 1024

// NewDirRotatingWriter creates a segment writer for one radio. periodUS is
// the rotation period in local-clock microseconds.
func NewDirRotatingWriter(dir string, radio int32, periodUS int64) *DirRotatingWriter {
	w := &DirRotatingWriter{dir: dir, radio: radio}
	w.rw = NewRotatingWriter(w.openSegment, periodUS)
	w.rw.SetSealFunc(w.sealSegment)
	return w
}

// SetSnapLen sets the per-frame capture limit for subsequent segments.
func (w *DirRotatingWriter) SetSnapLen(n int) { w.rw.SetSnapLen(n) }

func (w *DirRotatingWriter) openSegment(seg int) (io.Writer, error) {
	f, err := os.Create(SegmentTracePath(w.dir, w.radio, seg))
	if err != nil {
		return nil, err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, dirSegmentBufSize)
	return w.bw, nil
}

// sealSegment flushes and closes the segment file, then publishes its
// index sidecar atomically — only after this rename may a tailer read the
// segment.
func (w *DirRotatingWriter) sealSegment(seg int, idx []IndexEntry) error {
	if err := w.bw.Flush(); err != nil {
		_ = w.f.Close() // best-effort cleanup; the flush error is what matters
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f, w.bw = nil, nil
	final := SegmentIndexPath(w.dir, w.radio, seg)
	tmp := final + ".tmp"
	tf, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteIndex(tf, idx); err != nil {
		_ = tf.Close() // best-effort cleanup; the write error is what matters
		os.Remove(tmp)
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, final)
}

// WriteRecord appends a record, sealing and rotating segments as its
// timestamp dictates.
func (w *DirRotatingWriter) WriteRecord(r Record) error { return w.rw.WriteRecord(r) }

// Close seals the final segment.
func (w *DirRotatingWriter) Close() error { return w.rw.Close() }

// Segments returns how many segments were produced.
func (w *DirRotatingWriter) Segments() int { return w.rw.Segments() }

// MarkCaptureDone drops the capture-complete marker into dir, telling
// tailers that no further segments will appear.
func MarkCaptureDone(dir string) error {
	f, err := os.Create(filepath.Join(dir, CaptureDoneName))
	if err != nil {
		return err
	}
	return f.Close()
}

// TailSet tracks the sealed segments of a live trace directory and serves
// each radio as one endless Source. Scan (driven by the caller — jigd
// polls it on a timer, tests call it directly) registers newly sealed
// segments; readers obtained through TraceSet block, without polling
// themselves, until Scan publishes the segment they need or the capture
// ends. A segment is registered only when sealed (its .idx sidecar exists)
// and only in consecutive order per radio, so an in-progress or truncated
// segment file is skipped and picked up on a later Scan once sealed.
type TailSet struct {
	dir string

	mu      sync.Mutex
	cond    *sync.Cond
	sealed  map[int32][]string       // per radio, consecutive sealed segment paths
	pending map[int32]map[int]string // sealed out of order, awaiting predecessors
	done    bool
}

// NewTailSet tails dir. Call Scan to pick up segments.
func NewTailSet(dir string) *TailSet {
	t := &TailSet{
		dir:     dir,
		sealed:  make(map[int32][]string),
		pending: make(map[int32]map[int]string),
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// Scan reads the directory once, registering every newly sealed segment
// and noticing the capture-done marker. It reports whether anything new
// was published (segments or the end of capture).
func (t *TailSet) Scan() (progress bool, err error) {
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return false, fmt.Errorf("tracefile: tail scan: %w", err)
	}
	var doneSeen bool
	type seen struct {
		radio int32
		seg   int
		name  string
	}
	var found []seen
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if e.Name() == CaptureDoneName {
			doneSeen = true
			continue
		}
		radio, seg, ok := ParseSegmentName(e.Name())
		if !ok {
			continue
		}
		found = append(found, seen{radio, seg, e.Name()})
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range found {
		if s.seg < len(t.sealed[s.radio]) {
			continue // already published
		}
		if p := t.pending[s.radio]; p != nil {
			if _, ok := p[s.seg]; ok {
				continue // already noticed, predecessor still unsealed
			}
		}
		// Sealed means the index sidecar exists; the segment file alone
		// may still be growing (or be a truncated crash leftover).
		if _, serr := os.Stat(SegmentIndexPath(t.dir, s.radio, s.seg)); serr != nil {
			continue
		}
		p := t.pending[s.radio]
		if p == nil {
			p = make(map[int]string)
			t.pending[s.radio] = p
		}
		p[s.seg] = filepath.Join(t.dir, s.name)
	}
	// Publish in consecutive segment order per radio (sorted radio walk:
	// registration order must not depend on map iteration).
	radios := make([]int32, 0, len(t.pending))
	for r := range t.pending {
		radios = append(radios, r)
	}
	sort.Slice(radios, func(i, j int) bool { return radios[i] < radios[j] })
	for _, r := range radios {
		p := t.pending[r]
		for {
			path, ok := p[len(t.sealed[r])]
			if !ok {
				break
			}
			delete(p, len(t.sealed[r]))
			t.sealed[r] = append(t.sealed[r], path)
			progress = true
		}
	}
	if doneSeen && !t.done {
		t.done = true
		progress = true
	}
	if progress {
		t.cond.Broadcast()
	}
	return progress, nil
}

// Finish marks the capture over (e.g. on SIGTERM): blocked readers drain
// the sealed segments they have and return io.EOF. Idempotent.
func (t *TailSet) Finish() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		t.done = true
		t.cond.Broadcast()
	}
}

// Done reports whether the capture has ended (marker scanned or Finish
// called).
func (t *TailSet) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// Radios lists the radios with at least one sealed segment, ascending.
func (t *TailSet) Radios() []int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int32, 0, len(t.sealed))
	for r := range t.sealed {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SealedSegments returns how many consecutive sealed segments radio has.
func (t *TailSet) SealedSegments(radio int32) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sealed[radio])
}

// TraceSet fixes the radio roster at the radios currently sealed and
// returns a set whose per-radio streams are endless tails: every Open
// starts at segment 0 and reads through the sealed segments, blocking at
// the frontier until more seal or the capture ends. Radios whose first
// segment seals only after this call are not part of the set.
func (t *TailSet) TraceSet() *TraceSet {
	sources := make(map[int32]Source)
	for _, r := range t.Radios() {
		sources[r] = &tailSource{t: t, radio: r}
	}
	return &TraceSet{sources: sources, dir: t.dir}
}

// tailSource adapts one radio's sealed-segment sequence to Source.
type tailSource struct {
	t     *TailSet
	radio int32
}

// Open implements Source; safe for concurrent Opens (the pipeline opens
// each trace twice).
func (s *tailSource) Open() (io.ReadCloser, error) {
	return &tailReader{t: s.t, radio: s.radio}, nil
}

// waitSegment blocks until segment i of radio is sealed (returning its
// path) or the capture is over with no such segment (ok == false).
func (t *TailSet) waitSegment(radio int32, i int) (path string, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if i < len(t.sealed[radio]) {
			return t.sealed[radio][i], true
		}
		if t.done {
			return "", false
		}
		t.cond.Wait()
	}
}

// tailReader streams one radio's capture across its sealed segments,
// blocking at the sealed frontier.
type tailReader struct {
	t     *TailSet
	radio int32
	i     int // next segment index
	cur   io.ReadCloser
}

func (r *tailReader) Read(p []byte) (int, error) {
	for {
		if r.cur != nil {
			n, err := r.cur.Read(p)
			if err == io.EOF && n == 0 {
				cerr := r.cur.Close()
				r.cur = nil
				if cerr != nil {
					return 0, cerr
				}
				continue
			}
			if err == io.EOF {
				err = nil // segment boundary; next Read advances
			}
			return n, err
		}
		path, ok := r.t.waitSegment(r.radio, r.i)
		if !ok {
			return 0, io.EOF
		}
		r.i++
		f, err := os.Open(path)
		if err != nil {
			return 0, err
		}
		r.cur = &bufReadCloser{Reader: bufio.NewReaderSize(f, fileReadBufSize), c: f}
	}
}

// Close releases the reader's current segment file, if any.
func (r *tailReader) Close() error {
	if r.cur == nil {
		return nil
	}
	err := r.cur.Close()
	r.cur = nil
	return err
}
