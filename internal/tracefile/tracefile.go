// Package tracefile implements the jigdump-style per-radio trace format:
// the stream of physical-layer event records each monitor radio produces,
// serialized in compressed blocks with a separate metadata index
// (§3.3: jigdump reads 64 KB at a time, compresses with LZO — we use
// DEFLATE from the standard library — and writes data and metadata index
// separately, rotating files hourly).
package tracefile

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Record flags.
const (
	FlagFCSOK  uint8 = 1 << 0 // frame passed its FCS
	FlagPhyErr uint8 = 1 << 1 // physical error event: energy, no frame
)

// Record is one captured physical-layer event at one radio: a valid frame,
// a corrupted frame, or a physical error. Timestamps are the radio's local
// 1 µs clock — synchronization to universal time is Jigsaw's job, not the
// capture format's.
type Record struct {
	LocalUS int64  // local receive timestamp, microseconds
	RadioID int32  // capturing radio
	Channel uint8  // tuned channel
	RSSIdBm int8   // received signal strength
	Rate    uint16 // coded rate in 100 kbps units (dot80211.Rate)
	Flags   uint8
	// OrigLen is the frame's true on-air byte length before snap
	// truncation (like a radiotap/pcap original-length field); airtime
	// computations must use it, not len(Frame).
	OrigLen uint16
	Frame   []byte // captured wire bytes (nil for phy errors), snap-limited
}

// FCSOK reports whether the record's frame passed its checksum.
func (r *Record) FCSOK() bool { return r.Flags&FlagFCSOK != 0 }

// IsPhyErr reports whether the record is a physical error event.
func (r *Record) IsPhyErr() bool { return r.Flags&FlagPhyErr != 0 }

// DefaultSnapLen bounds captured frame bytes: MAC header plus up to 200
// payload bytes, like the paper's captures (§5).
const DefaultSnapLen = 228

// blockTarget is the uncompressed block size at which the writer flushes,
// mirroring jigdump's 64 KB reads.
const blockTarget = 64 * 1024

// magic identifies trace streams and blocks.
var magic = [4]byte{'J', 'I', 'G', '1'}

// IndexEntry describes one compressed block for the metadata index.
type IndexEntry struct {
	Offset       int64 // byte offset of the block in the data stream
	CompLen      int32
	RawLen       int32
	Records      int32
	FirstLocalUS int64
	LastLocalUS  int64
}

// Writer serializes records into compressed blocks. It is not safe for
// concurrent use; the capture path is single-threaded per radio.
type Writer struct {
	w       io.Writer
	offset  int64
	buf     bytes.Buffer // uncompressed pending records
	count   int32
	firstUS int64
	lastUS  int64
	index   []IndexEntry
	snapLen int
	closed  bool
}

// NewWriter creates a trace writer with the default snap length.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, snapLen: DefaultSnapLen}
}

// SetSnapLen overrides the per-frame capture byte limit (0 = unlimited).
func (w *Writer) SetSnapLen(n int) { w.snapLen = n }

// WriteRecord appends one record, flushing a block when the target size is
// reached.
func (w *Writer) WriteRecord(r Record) error {
	if w.closed {
		return errors.New("tracefile: writer closed")
	}
	frame := r.Frame
	if r.OrigLen == 0 {
		r.OrigLen = uint16(len(frame))
	}
	if w.snapLen > 0 && len(frame) > w.snapLen {
		frame = frame[:w.snapLen]
	}
	if w.count == 0 {
		w.firstUS = r.LocalUS
	}
	w.lastUS = r.LocalUS
	var hdr [20]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(r.LocalUS))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(r.RadioID))
	hdr[12] = r.Channel
	hdr[13] = uint8(r.RSSIdBm)
	binary.LittleEndian.PutUint16(hdr[14:16], r.Rate)
	hdr[16] = r.Flags
	hdr[17] = 0
	binary.LittleEndian.PutUint16(hdr[18:20], r.OrigLen)
	w.buf.Write(hdr[:])
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(frame)))
	w.buf.Write(l[:])
	w.buf.Write(frame)
	w.count++
	if w.buf.Len() >= blockTarget {
		return w.flushBlock()
	}
	return nil
}

// flushBlock compresses and emits the pending block.
func (w *Writer) flushBlock() error {
	if w.count == 0 {
		return nil
	}
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return err
	}
	if _, err := fw.Write(w.buf.Bytes()); err != nil {
		return err
	}
	if err := fw.Close(); err != nil {
		return err
	}
	var bh [24]byte
	copy(bh[0:4], magic[:])
	binary.LittleEndian.PutUint32(bh[4:8], uint32(comp.Len()))
	binary.LittleEndian.PutUint32(bh[8:12], uint32(w.buf.Len()))
	binary.LittleEndian.PutUint32(bh[12:16], uint32(w.count))
	binary.LittleEndian.PutUint64(bh[16:24], uint64(w.firstUS))
	if _, err := w.w.Write(bh[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(comp.Bytes()); err != nil {
		return err
	}
	w.index = append(w.index, IndexEntry{
		Offset:  w.offset,
		CompLen: int32(comp.Len()), RawLen: int32(w.buf.Len()),
		Records: w.count, FirstLocalUS: w.firstUS, LastLocalUS: w.lastUS,
	})
	w.offset += int64(len(bh)) + int64(comp.Len())
	w.buf.Reset()
	w.count = 0
	return nil
}

// Close flushes the final block. The writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.flushBlock()
}

// Index returns the metadata index built during writing (valid after
// Close). Callers persist it with WriteIndex for the paired metadata file.
func (w *Writer) Index() []IndexEntry { return w.index }

// WriteIndex serializes a metadata index to out.
func WriteIndex(out io.Writer, idx []IndexEntry) error {
	bw := bufio.NewWriter(out)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(idx)))
	bw.Write(n[:])
	for _, e := range idx {
		var b [36]byte
		binary.LittleEndian.PutUint64(b[0:8], uint64(e.Offset))
		binary.LittleEndian.PutUint32(b[8:12], uint32(e.CompLen))
		binary.LittleEndian.PutUint32(b[12:16], uint32(e.RawLen))
		binary.LittleEndian.PutUint32(b[16:20], uint32(e.Records))
		binary.LittleEndian.PutUint64(b[20:28], uint64(e.FirstLocalUS))
		binary.LittleEndian.PutUint64(b[28:36], uint64(e.LastLocalUS))
		bw.Write(b[:])
	}
	return bw.Flush()
}

// ReadIndex parses a metadata index.
func ReadIndex(in io.Reader) ([]IndexEntry, error) {
	var m [4]byte
	if _, err := io.ReadFull(in, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, errors.New("tracefile: bad index magic")
	}
	var n [4]byte
	if _, err := io.ReadFull(in, n[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(n[:])
	// Entries arrive 36 bytes each; cap the preallocation so a corrupt
	// count field cannot demand gigabytes before the first read fails.
	prealloc := count
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	idx := make([]IndexEntry, 0, prealloc)
	for i := uint32(0); i < count; i++ {
		var b [36]byte
		if _, err := io.ReadFull(in, b[:]); err != nil {
			return nil, err
		}
		idx = append(idx, IndexEntry{
			Offset:       int64(binary.LittleEndian.Uint64(b[0:8])),
			CompLen:      int32(binary.LittleEndian.Uint32(b[8:12])),
			RawLen:       int32(binary.LittleEndian.Uint32(b[12:16])),
			Records:      int32(binary.LittleEndian.Uint32(b[16:20])),
			FirstLocalUS: int64(binary.LittleEndian.Uint64(b[20:28])),
			LastLocalUS:  int64(binary.LittleEndian.Uint64(b[28:36])),
		})
	}
	return idx, nil
}

// Reader iterates records from a trace stream.
type Reader struct {
	r     io.Reader
	block *bytes.Reader
	err   error
}

// NewReader wraps a trace stream for record iteration.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next returns the next record. io.EOF signals a clean end of trace.
func (t *Reader) Next() (Record, error) {
	var rec Record
	if t.err != nil {
		return rec, t.err
	}
	for t.block == nil || t.block.Len() == 0 {
		if err := t.loadBlock(); err != nil {
			t.err = err
			return rec, err
		}
	}
	var hdr [20]byte
	if _, err := io.ReadFull(t.block, hdr[:]); err != nil {
		t.err = fmt.Errorf("tracefile: corrupt block: %w", err)
		return rec, t.err
	}
	rec.LocalUS = int64(binary.LittleEndian.Uint64(hdr[0:8]))
	rec.RadioID = int32(binary.LittleEndian.Uint32(hdr[8:12]))
	rec.Channel = hdr[12]
	rec.RSSIdBm = int8(hdr[13])
	rec.Rate = binary.LittleEndian.Uint16(hdr[14:16])
	rec.Flags = hdr[16]
	rec.OrigLen = binary.LittleEndian.Uint16(hdr[18:20])
	var l [2]byte
	if _, err := io.ReadFull(t.block, l[:]); err != nil {
		t.err = fmt.Errorf("tracefile: corrupt block: %w", err)
		return rec, t.err
	}
	n := binary.LittleEndian.Uint16(l[:])
	if n > 0 {
		rec.Frame = make([]byte, n)
		if _, err := io.ReadFull(t.block, rec.Frame); err != nil {
			t.err = fmt.Errorf("tracefile: corrupt block: %w", err)
			return rec, t.err
		}
	}
	return rec, nil
}

// maxBlockLen bounds the compressed and uncompressed size a block header
// may claim. Legitimate blocks flush around blockTarget (64 KB) plus one
// record; anything near this cap is a corrupt or hostile header, and
// honoring it would turn a 24-byte header into a multi-gigabyte
// allocation.
const maxBlockLen = 1 << 26

// loadBlock reads and decompresses the next block.
func (t *Reader) loadBlock() error {
	var bh [24]byte
	if _, err := io.ReadFull(t.r, bh[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return io.EOF
		}
		return err
	}
	if [4]byte(bh[0:4]) != magic {
		return errors.New("tracefile: bad block magic")
	}
	compLen := binary.LittleEndian.Uint32(bh[4:8])
	rawLen := binary.LittleEndian.Uint32(bh[8:12])
	if compLen > maxBlockLen || rawLen > maxBlockLen {
		return fmt.Errorf("tracefile: block header claims %d/%d bytes", compLen, rawLen)
	}
	comp := make([]byte, compLen)
	if _, err := io.ReadFull(t.r, comp); err != nil {
		return fmt.Errorf("tracefile: truncated block: %w", err)
	}
	fr := flate.NewReader(bytes.NewReader(comp))
	raw := make([]byte, 0, rawLen)
	buf := bytes.NewBuffer(raw)
	// The compressed payload must decompress to exactly the header's
	// rawLen; bound the copy so a corrupt stream cannot balloon past it.
	n, err := io.Copy(buf, io.LimitReader(fr, int64(rawLen)+1))
	if err != nil {
		return fmt.Errorf("tracefile: decompress: %w", err)
	}
	if n != int64(rawLen) {
		return fmt.Errorf("tracefile: block decompressed to %d bytes, header says %d", n, rawLen)
	}
	t.block = bytes.NewReader(buf.Bytes())
	return nil
}

// ReadAll drains a reader into a slice.
func ReadAll(r io.Reader) ([]Record, error) {
	tr := NewReader(r)
	var recs []Record
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// WriteAll serializes records to w and returns the index.
func WriteAll(w io.Writer, recs []Record) ([]IndexEntry, error) {
	tw := NewWriter(w)
	for _, r := range recs {
		if err := tw.WriteRecord(r); err != nil {
			return nil, err
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return tw.Index(), nil
}
