// Package tracefile implements the jigdump-style per-radio trace format:
// the stream of physical-layer event records each monitor radio produces,
// serialized in compressed blocks with a separate metadata index
// (§3.3: jigdump reads 64 KB at a time, compresses with LZO — we use
// DEFLATE from the standard library — and writes data and metadata index
// separately, rotating files hourly).
package tracefile

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/flatepool"
)

// Record flags.
const (
	FlagFCSOK  uint8 = 1 << 0 // frame passed its FCS
	FlagPhyErr uint8 = 1 << 1 // physical error event: energy, no frame
)

// Record is one captured physical-layer event at one radio: a valid frame,
// a corrupted frame, or a physical error. Timestamps are the radio's local
// 1 µs clock — synchronization to universal time is Jigsaw's job, not the
// capture format's.
//
// Ownership: a Record returned by Reader.Next (or any Source-backed
// stream) BORROWS its Frame bytes from the reader's block buffer — they
// are valid only until the next call on the same reader. Consumers that
// hold a record across calls must copy the frame (see CloneFrame); the
// unifier copies at intake, so everything downstream of it is governed by
// the JFrame retain/release contract instead.
type Record struct {
	LocalUS int64  // local receive timestamp, microseconds
	RadioID int32  // capturing radio
	Channel uint8  // tuned channel
	RSSIdBm int8   // received signal strength
	Rate    uint16 // coded rate in 100 kbps units (dot80211.Rate)
	Flags   uint8
	// OrigLen is the frame's true on-air byte length before snap
	// truncation (like a radiotap/pcap original-length field); airtime
	// computations must use it, not len(Frame).
	OrigLen uint16
	Frame   []byte // captured wire bytes (nil for phy errors), snap-limited
}

// FCSOK reports whether the record's frame passed its checksum.
func (r *Record) FCSOK() bool { return r.Flags&FlagFCSOK != 0 }

// IsPhyErr reports whether the record is a physical error event.
func (r *Record) IsPhyErr() bool { return r.Flags&FlagPhyErr != 0 }

// CloneFrame replaces a borrowed Frame with an owned copy, so the record
// stays valid past the reader call that produced it.
func (r *Record) CloneFrame() {
	if r.Frame != nil {
		r.Frame = append([]byte(nil), r.Frame...)
	}
}

// DefaultSnapLen bounds captured frame bytes: MAC header plus up to 200
// payload bytes, like the paper's captures (§5).
const DefaultSnapLen = 228

// blockTarget is the uncompressed block size at which the writer flushes,
// mirroring jigdump's 64 KB reads.
const blockTarget = 64 * 1024

// magic identifies trace streams and blocks.
var magic = [4]byte{'J', 'I', 'G', '1'}

// IndexEntry describes one compressed block for the metadata index.
type IndexEntry struct {
	Offset       int64 // byte offset of the block in the data stream
	CompLen      int32
	RawLen       int32
	Records      int32
	FirstLocalUS int64
	LastLocalUS  int64
}

// Writer serializes records into compressed blocks. It is not safe for
// concurrent use; the capture path is single-threaded per radio.
type Writer struct {
	w       io.Writer
	offset  int64
	buf     bytes.Buffer // uncompressed pending records
	comp    bytes.Buffer // reused compressed-block scratch
	count   int32
	firstUS int64
	lastUS  int64
	index   []IndexEntry
	snapLen int
	closed  bool
}

// NewWriter creates a trace writer with the default snap length.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, snapLen: DefaultSnapLen}
}

// SetSnapLen overrides the per-frame capture byte limit (0 = unlimited).
func (w *Writer) SetSnapLen(n int) { w.snapLen = n }

// WriteRecord appends one record, flushing a block when the target size is
// reached.
func (w *Writer) WriteRecord(r Record) error {
	if w.closed {
		return errors.New("tracefile: writer closed")
	}
	frame := r.Frame
	if r.OrigLen == 0 {
		r.OrigLen = uint16(len(frame))
	}
	if w.snapLen > 0 && len(frame) > w.snapLen {
		frame = frame[:w.snapLen]
	}
	if w.count == 0 {
		w.firstUS = r.LocalUS
	}
	w.lastUS = r.LocalUS
	var hdr [20]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(r.LocalUS))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(r.RadioID))
	hdr[12] = r.Channel
	hdr[13] = uint8(r.RSSIdBm)
	binary.LittleEndian.PutUint16(hdr[14:16], r.Rate)
	hdr[16] = r.Flags
	hdr[17] = 0
	binary.LittleEndian.PutUint16(hdr[18:20], r.OrigLen)
	w.buf.Write(hdr[:])
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(frame)))
	w.buf.Write(l[:])
	w.buf.Write(frame)
	w.count++
	if w.buf.Len() >= blockTarget {
		return w.flushBlock()
	}
	return nil
}

// flushBlock compresses and emits the pending block.
func (w *Writer) flushBlock() error {
	if w.count == 0 {
		return nil
	}
	w.comp.Reset()
	fw := flatepool.GetWriter(&w.comp)
	if _, err := fw.Write(w.buf.Bytes()); err != nil {
		return err
	}
	if err := fw.Close(); err != nil {
		return err
	}
	flatepool.PutWriter(fw)
	comp := &w.comp
	var bh [24]byte
	copy(bh[0:4], magic[:])
	binary.LittleEndian.PutUint32(bh[4:8], uint32(comp.Len()))
	binary.LittleEndian.PutUint32(bh[8:12], uint32(w.buf.Len()))
	binary.LittleEndian.PutUint32(bh[12:16], uint32(w.count))
	binary.LittleEndian.PutUint64(bh[16:24], uint64(w.firstUS))
	if _, err := w.w.Write(bh[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(comp.Bytes()); err != nil {
		return err
	}
	w.index = append(w.index, IndexEntry{
		Offset:  w.offset,
		CompLen: int32(comp.Len()), RawLen: int32(w.buf.Len()),
		Records: w.count, FirstLocalUS: w.firstUS, LastLocalUS: w.lastUS,
	})
	w.offset += int64(len(bh)) + int64(comp.Len())
	w.buf.Reset()
	w.count = 0
	return nil
}

// Close flushes the final block. The writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.flushBlock()
}

// Index returns the metadata index built during writing (valid after
// Close). Callers persist it with WriteIndex for the paired metadata file.
func (w *Writer) Index() []IndexEntry { return w.index }

// WriteIndex serializes a metadata index to out.
func WriteIndex(out io.Writer, idx []IndexEntry) error {
	bw := bufio.NewWriter(out)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(idx)))
	bw.Write(n[:])
	for _, e := range idx {
		var b [36]byte
		binary.LittleEndian.PutUint64(b[0:8], uint64(e.Offset))
		binary.LittleEndian.PutUint32(b[8:12], uint32(e.CompLen))
		binary.LittleEndian.PutUint32(b[12:16], uint32(e.RawLen))
		binary.LittleEndian.PutUint32(b[16:20], uint32(e.Records))
		binary.LittleEndian.PutUint64(b[20:28], uint64(e.FirstLocalUS))
		binary.LittleEndian.PutUint64(b[28:36], uint64(e.LastLocalUS))
		bw.Write(b[:])
	}
	return bw.Flush()
}

// ReadIndex parses a metadata index.
func ReadIndex(in io.Reader) ([]IndexEntry, error) {
	var m [4]byte
	if _, err := io.ReadFull(in, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, errors.New("tracefile: bad index magic")
	}
	var n [4]byte
	if _, err := io.ReadFull(in, n[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(n[:])
	// Entries arrive 36 bytes each; cap the preallocation so a corrupt
	// count field cannot demand gigabytes before the first read fails.
	prealloc := count
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	idx := make([]IndexEntry, 0, prealloc)
	for i := uint32(0); i < count; i++ {
		var b [36]byte
		if _, err := io.ReadFull(in, b[:]); err != nil {
			return nil, err
		}
		idx = append(idx, IndexEntry{
			Offset:       int64(binary.LittleEndian.Uint64(b[0:8])),
			CompLen:      int32(binary.LittleEndian.Uint32(b[8:12])),
			RawLen:       int32(binary.LittleEndian.Uint32(b[12:16])),
			Records:      int32(binary.LittleEndian.Uint32(b[16:20])),
			FirstLocalUS: int64(binary.LittleEndian.Uint64(b[20:28])),
			LastLocalUS:  int64(binary.LittleEndian.Uint64(b[28:36])),
		})
	}
	return idx, nil
}

// BlockSlicer is implemented by trace inputs that can expose the next n
// bytes of the stream as a zero-copy view (memory-mapped files, in-memory
// buffers). The returned slice stays valid until the input is closed.
// Reader uses it to decompress blocks straight out of the backing bytes
// instead of staging them through a copy.
type BlockSlicer interface {
	Slice(n int) ([]byte, error)
}

// Reader iterates records from a trace stream. Records are parsed in
// place: each returned Record's Frame aliases the reader's decompressed
// block buffer and is only valid until the next call (see Record).
type Reader struct {
	r      io.Reader
	sl     BlockSlicer // non-nil when r supports zero-copy block reads
	comp   []byte      // reused compressed-block staging (nil-copy path)
	compRd bytes.Reader
	raw    []byte // reused decompressed block
	pos    int    // parse cursor into raw
	fr     io.ReadCloser
	err    error
}

// NewReader wraps a trace stream for record iteration.
func NewReader(r io.Reader) *Reader {
	t := &Reader{r: r}
	t.sl, _ = r.(BlockSlicer)
	return t
}

// recHdrLen is the per-record header (20 bytes) plus the 2-byte frame
// length.
const recHdrLen = 22

// Next returns the next record. io.EOF signals a clean end of trace. The
// record's Frame is borrowed (valid until the next Next call).
func (t *Reader) Next() (Record, error) {
	var rec Record
	if t.err != nil {
		return rec, t.err
	}
	for t.pos >= len(t.raw) {
		if err := t.loadBlock(); err != nil {
			t.err = err
			t.retire()
			return rec, err
		}
	}
	b := t.raw[t.pos:]
	if len(b) < recHdrLen {
		t.err = errors.New("tracefile: corrupt block: truncated record header")
		t.retire()
		return rec, t.err
	}
	rec.LocalUS = int64(binary.LittleEndian.Uint64(b[0:8]))
	rec.RadioID = int32(binary.LittleEndian.Uint32(b[8:12]))
	rec.Channel = b[12]
	rec.RSSIdBm = int8(b[13])
	rec.Rate = binary.LittleEndian.Uint16(b[14:16])
	rec.Flags = b[16]
	rec.OrigLen = binary.LittleEndian.Uint16(b[18:20])
	n := int(binary.LittleEndian.Uint16(b[20:22]))
	if len(b) < recHdrLen+n {
		t.err = errors.New("tracefile: corrupt block: truncated frame")
		t.retire()
		return rec, t.err
	}
	if n > 0 {
		rec.Frame = b[recHdrLen : recHdrLen+n : recHdrLen+n]
	}
	t.pos += recHdrLen + n
	return rec, nil
}

// retire returns the pooled decompressor once the stream has ended; the
// reader is latched on t.err by then.
func (t *Reader) retire() {
	flatepool.PutReader(t.fr)
	t.fr = nil
}

// maxBlockLen bounds the compressed and uncompressed size a block header
// may claim. Legitimate blocks flush around blockTarget (64 KB) plus one
// record; anything near this cap is a corrupt or hostile header, and
// honoring it would turn a 24-byte header into a multi-gigabyte
// allocation.
const maxBlockLen = 1 << 26

// loadBlock reads and decompresses the next block into the reused raw
// buffer. Compressed bytes are sliced straight out of BlockSlicer-backed
// inputs; other inputs stage them through a reused buffer.
func (t *Reader) loadBlock() error {
	var bh [24]byte
	if _, err := io.ReadFull(t.r, bh[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return io.EOF
		}
		return err
	}
	if [4]byte(bh[0:4]) != magic {
		return errors.New("tracefile: bad block magic")
	}
	compLen := binary.LittleEndian.Uint32(bh[4:8])
	rawLen := binary.LittleEndian.Uint32(bh[8:12])
	if compLen > maxBlockLen || rawLen > maxBlockLen {
		return fmt.Errorf("tracefile: block header claims %d/%d bytes", compLen, rawLen)
	}
	var comp []byte
	if t.sl != nil {
		b, err := t.sl.Slice(int(compLen))
		if err != nil {
			return fmt.Errorf("tracefile: truncated block: %w", err)
		}
		comp = b
	} else {
		if cap(t.comp) < int(compLen) {
			t.comp = make([]byte, compLen)
		}
		t.comp = t.comp[:compLen]
		if _, err := io.ReadFull(t.r, t.comp); err != nil {
			return fmt.Errorf("tracefile: truncated block: %w", err)
		}
		comp = t.comp
	}
	t.compRd.Reset(comp)
	if t.fr == nil {
		t.fr = flatepool.GetReader(&t.compRd)
	} else if err := t.fr.(flate.Resetter).Reset(&t.compRd, nil); err != nil {
		return fmt.Errorf("tracefile: decompress: %w", err)
	}
	if cap(t.raw) < int(rawLen) {
		t.raw = make([]byte, rawLen)
	}
	t.raw = t.raw[:rawLen]
	t.pos = 0
	// The compressed payload must decompress to exactly the header's
	// rawLen; probing one byte past it catches oversized payloads without
	// letting a corrupt stream balloon the buffer.
	if _, err := io.ReadFull(t.fr, t.raw); err != nil {
		return fmt.Errorf("tracefile: decompress: %w", err)
	}
	var probe [1]byte
	if n, _ := t.fr.Read(probe[:]); n != 0 {
		return fmt.Errorf("tracefile: block decompressed past %d-byte header claim", rawLen)
	}
	return nil
}

// ReadAll drains a reader into a slice, copying each borrowed frame into
// owned storage (the slice outlives the reader's block buffer).
func ReadAll(r io.Reader) ([]Record, error) {
	tr := NewReader(r)
	var recs []Record
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		rec.CloneFrame()
		recs = append(recs, rec)
	}
}

// WriteAll serializes records to w and returns the index.
func WriteAll(w io.Writer, recs []Record) ([]IndexEntry, error) {
	tw := NewWriter(w)
	for _, r := range recs {
		if err := tw.WriteRecord(r); err != nil {
			return nil, err
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return tw.Index(), nil
}
