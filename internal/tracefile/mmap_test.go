package tracefile

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// bulkTrace serializes enough records to span several compressed blocks.
func bulkTrace(t *testing.T, radio int32, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frame := make([]byte, 120)
	for i := range frame {
		frame[i] = byte(i)
	}
	for i := 0; i < n; i++ {
		frame[0] = byte(i)
		if err := w.WriteRecord(Record{
			LocalUS: int64(10 * i), RadioID: radio, Channel: 1,
			Rate: 110, Flags: FlagFCSOK, Frame: frame,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMmapSourceMatchesBuffer pins the zero-copy file path: an
// mmap-backed source (or its pread fallback on platforms without mmap)
// must decode the identical record stream as an in-memory source.
func TestMmapSourceMatchesBuffer(t *testing.T) {
	data := bulkTrace(t, 7, 5000)
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	want, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	src := MmapSource(path)
	rc, err := src.Open()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(rc)
	var got []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		// Records borrow their frame bytes from the reader (for mmap
		// sources, directly from the mapping); copy to keep.
		rec.CloneFrame()
		got = append(got, rec)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mmap-backed decode differs from in-memory decode (%d vs %d records)", len(got), len(want))
	}
}

// TestMmapSourceEmptyFile covers the zero-length mapping special case
// (mmap rejects empty mappings; an empty trace is just a clean EOF).
func TestMmapSourceEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.bin")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rc, err := MmapSource(path).Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(rc).Next(); err != io.EOF {
		t.Fatalf("empty trace: want io.EOF, got %v", err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestByteStreamSlice pins the BlockSlicer contract the reader's
// zero-copy path depends on: exact-length slices, then
// io.ErrUnexpectedEOF once the stream is short.
func TestByteStreamSlice(t *testing.T) {
	s := &byteStream{b: []byte{1, 2, 3, 4, 5}}
	first, err := s.Slice(3)
	if err != nil || !bytes.Equal(first, []byte{1, 2, 3}) {
		t.Fatalf("Slice(3) = %v, %v", first, err)
	}
	if _, err := s.Slice(3); err != io.ErrUnexpectedEOF {
		t.Fatalf("short Slice: want io.ErrUnexpectedEOF, got %v", err)
	}
}

// TestRecordBorrowContract pins the reader's documented ownership rule:
// a returned Record's frame bytes are valid only until the next call,
// and CloneFrame detaches them.
func TestRecordBorrowContract(t *testing.T) {
	data := bulkTrace(t, 3, 4000)
	r := NewReader(bytes.NewReader(data))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	borrowed := rec.Frame
	want := append([]byte(nil), rec.Frame...)
	rec.CloneFrame()
	// Drain the reader; block buffers are reused along the way.
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(rec.Frame, want) {
		t.Fatal("cloned frame changed while the reader advanced")
	}
	if bytes.Equal(borrowed, want) {
		t.Log("borrowed slice happened to survive (single-block trace?); contract still requires CloneFrame")
	}
}
