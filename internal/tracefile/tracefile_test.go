package tracefile

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sample(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	ts := int64(0)
	for i := range recs {
		ts += rng.Int63n(10_000)
		var frame []byte
		flags := uint8(0)
		switch rng.Intn(3) {
		case 0:
			frame = make([]byte, 14+rng.Intn(180))
			rng.Read(frame)
			flags = FlagFCSOK
		case 1:
			frame = make([]byte, 14+rng.Intn(180))
			rng.Read(frame)
		case 2:
			flags = FlagPhyErr
		}
		recs[i] = Record{
			LocalUS: ts, RadioID: int32(rng.Intn(156)),
			Channel: uint8([]int{1, 6, 11}[rng.Intn(3)]),
			RSSIdBm: int8(-30 - rng.Intn(60)),
			Rate:    uint16(rng.Intn(540)), Flags: flags,
			OrigLen: uint16(len(frame)), Frame: frame,
		}
	}
	return recs
}

func TestRoundTripSmall(t *testing.T) {
	recs := sample(10, 1)
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Error("round trip mismatch")
	}
}

func TestRoundTripMultiBlock(t *testing.T) {
	recs := sample(5000, 2) // several 64 KB blocks
	var buf bytes.Buffer
	idx, err := WriteAll(&buf, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(idx))
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	if !reflect.DeepEqual(got, recs) {
		t.Error("multi-block round trip mismatch")
	}
}

func TestSnapLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	big := make([]byte, 1500)
	if err := w.WriteRecord(Record{LocalUS: 1, Frame: big, Flags: FlagFCSOK}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0].Frame) != DefaultSnapLen {
		t.Errorf("frame len = %d, want snap %d", len(got[0].Frame), DefaultSnapLen)
	}
}

func TestSnapLenZeroUnlimited(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SetSnapLen(0)
	big := make([]byte, 1500)
	w.WriteRecord(Record{LocalUS: 1, Frame: big})
	w.Close()
	got, _ := ReadAll(&buf)
	if len(got[0].Frame) != 1500 {
		t.Errorf("frame len = %d, want 1500", len(got[0].Frame))
	}
}

func TestIndexTimesAndCounts(t *testing.T) {
	recs := sample(5000, 3)
	var buf bytes.Buffer
	idx, err := WriteAll(&buf, recs)
	if err != nil {
		t.Fatal(err)
	}
	total := int32(0)
	for i, e := range idx {
		total += e.Records
		if e.FirstLocalUS > e.LastLocalUS {
			t.Errorf("block %d time range inverted", i)
		}
		if i > 0 && idx[i-1].LastLocalUS > e.FirstLocalUS {
			t.Errorf("blocks %d/%d overlap in time", i-1, i)
		}
	}
	if int(total) != len(recs) {
		t.Errorf("index counts %d records, want %d", total, len(recs))
	}
}

func TestIndexRoundTrip(t *testing.T) {
	recs := sample(3000, 4)
	var buf bytes.Buffer
	idx, err := WriteAll(&buf, recs)
	if err != nil {
		t.Fatal(err)
	}
	var ibuf bytes.Buffer
	if err := WriteIndex(&ibuf, idx); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&ibuf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, idx) {
		t.Error("index round trip mismatch")
	}
}

func TestIndexOffsetsAddressBlocks(t *testing.T) {
	recs := sample(5000, 5)
	var buf bytes.Buffer
	idx, err := WriteAll(&buf, recs)
	if err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i, e := range idx {
		if string(data[e.Offset:e.Offset+4]) != "JIG1" {
			t.Errorf("block %d offset %d does not start with magic", i, e.Offset)
		}
	}
}

func TestCompressionShrinksRedundantData(t *testing.T) {
	// Beacon-like highly repetitive frames should compress well.
	frame := bytes.Repeat([]byte{0xAB}, 200)
	var recs []Record
	for i := 0; i < 2000; i++ {
		recs = append(recs, Record{LocalUS: int64(i) * 100, Frame: frame, Flags: FlagFCSOK})
	}
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	raw := len(recs) * (20 + len(frame))
	if buf.Len() >= raw/4 {
		t.Errorf("compressed %d bytes of %d raw; expected ≥4x shrink", buf.Len(), raw)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	idx, err := WriteAll(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 0 || buf.Len() != 0 {
		t.Error("empty trace should produce no output")
	}
	recs, err := ReadAll(&buf)
	if err != nil || len(recs) != 0 {
		t.Errorf("reading empty trace: %v, %d recs", err, len(recs))
	}
}

func TestWriterClosedRejects(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Close()
	if err := w.WriteRecord(Record{}); err == nil {
		t.Error("write after close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Error("double close should be a no-op")
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("XXXXGARBAGEGARBAGEGARBAGE"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadIndex(bytes.NewReader([]byte("XXXX\x00\x00\x00\x00"))); err == nil {
		t.Error("bad index magic accepted")
	}
}

func TestReaderTruncatedBlock(t *testing.T) {
	recs := sample(100, 6)
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	_, err := ReadAll(bytes.NewReader(cut))
	if err == nil || err == io.EOF {
		t.Errorf("truncated stream returned %v, want hard error", err)
	}
}

func TestPhyErrRecordsHaveNoFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteRecord(Record{LocalUS: 5, Flags: FlagPhyErr})
	w.Close()
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].IsPhyErr() || got[0].FCSOK() || got[0].Frame != nil {
		t.Errorf("phy error record mangled: %+v", got[0])
	}
}

func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(ts int64, radio int32, ch, rssi, flags uint8, rate uint16, frame []byte) bool {
		if len(frame) > 65535 {
			frame = frame[:65535]
		}
		rec := Record{
			LocalUS: ts, RadioID: radio, Channel: ch, RSSIdBm: int8(rssi),
			Rate: rate, Flags: flags, OrigLen: uint16(len(frame)), Frame: frame,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.SetSnapLen(0)
		if w.WriteRecord(rec) != nil {
			return false
		}
		if w.Close() != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		if len(frame) == 0 {
			// nil and empty both decode as nil
			return g.LocalUS == ts && g.RadioID == radio && len(g.Frame) == 0
		}
		return reflect.DeepEqual(g, rec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
