package tracefile

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestParseTraceName(t *testing.T) {
	cases := []struct {
		name string
		id   int32
		ok   bool
	}{
		{"radio-7.jig", 7, true},
		{"radio-123.jig", 123, true},
		{"radio007.jig", 7, true}, // legacy zero-padded spelling
		{"radio7.jig", 7, true},
		{"radio-7.idx", 0, false},
		{"meta.json", 0, false},
		{"radio-.jig", 0, false},
		{"radio-x.jig", 0, false},
		{"radio--3.jig", 0, false},
		{"sub/radio-9.jig", 9, true},
	}
	for _, c := range cases {
		id, ok := ParseTraceName(c.name)
		if ok != c.ok || (ok && id != c.id) {
			t.Errorf("ParseTraceName(%q) = (%d, %v), want (%d, %v)", c.name, id, ok, c.id, c.ok)
		}
	}
}

// sampleTrace serializes a few records and returns the bytes.
func sampleTrace(t *testing.T, radio int32) []byte {
	t.Helper()
	var buf bytes.Buffer
	recs := []Record{
		{LocalUS: 10, RadioID: radio, Channel: 1, Rate: 20, Flags: FlagFCSOK, Frame: []byte{1, 2, 3}},
		{LocalUS: 25, RadioID: radio, Channel: 1, Flags: FlagPhyErr},
	}
	if _, err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceSetBufferAndDirEquivalent(t *testing.T) {
	traces := map[int32][]byte{
		3:  sampleTrace(t, 3),
		11: sampleTrace(t, 11),
	}
	bufSet := NewBufferSet(traces)

	dir := t.TempDir()
	for r, b := range traces {
		if err := os.WriteFile(TracePath(dir, r), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A stray non-trace file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	dirSet, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	for _, ts := range []*TraceSet{bufSet, dirSet} {
		radios := ts.Radios()
		if len(radios) != 2 || radios[0] != 3 || radios[1] != 11 {
			t.Fatalf("Radios() = %v, want [3 11]", radios)
		}
		for _, r := range radios {
			rc, err := ts.Open(r)
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(rc)
			if err != nil {
				t.Fatal(err)
			}
			if err := rc.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, traces[r]) {
				t.Errorf("radio %d: source bytes differ from original", r)
			}
			recs, err := ReadAll(bytes.NewReader(got))
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 2 || recs[0].RadioID != r {
				t.Errorf("radio %d: decoded %d records", r, len(recs))
			}
		}
	}
	if _, err := bufSet.Open(99); err == nil {
		t.Error("Open of unknown radio succeeded")
	}
	if dirSet.Dir() != dir {
		t.Errorf("Dir() = %q", dirSet.Dir())
	}
}

func TestOpenDirErrors(t *testing.T) {
	if _, err := OpenDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("OpenDir of missing directory succeeded")
	}
	empty := t.TempDir()
	if _, err := OpenDir(empty); err == nil {
		t.Error("OpenDir of empty directory succeeded")
	}
}

// TestOpenDirRejectsDuplicateRadio: a stale legacy-named trace next to a
// fresh one for the same radio must be an error, not a silent pick.
func TestOpenDirDuplicateRadio(t *testing.T) {
	dir := t.TempDir()
	b := sampleTrace(t, 3)
	for _, name := range []string{"radio-3.jig", "radio003.jig"} {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenDir(dir); err == nil {
		t.Fatal("OpenDir accepted two traces for one radio")
	}
}
