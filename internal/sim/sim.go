// Package sim provides the discrete-event simulation engine that drives the
// synthetic 802.11 substrate: an ordered event queue over int64-nanosecond
// true time plus deterministic random-number streams.
//
// Everything in the substrate (MAC state machines, the radio medium, TCP
// endpoints, the workload generator) schedules callbacks on one Engine, so a
// whole building-day is a single deterministic replayable computation.
package sim

import (
	"container/heap"
	"math/rand"
)

// Time is true simulation time in nanoseconds from simulation start. The
// monitors' local clocks (internal/clock) are functions of this time; no
// component outside the substrate ever observes it directly.
type Time int64

// Common durations.
const (
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// US constructs a Time from microseconds.
func US(us int64) Time { return Time(us) * Microsecond }

// MS constructs a Time from milliseconds.
func MS(ms int64) Time { return Time(ms) * Millisecond }

// Seconds constructs a Time from (possibly fractional) seconds.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// US64 returns the time in whole microseconds.
func (t Time) US64() int64 { return int64(t) / 1000 }

// SecondsF returns the time in seconds as a float.
func (t Time) SecondsF() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-break so equal-time events run in schedule order
	fn   func()
	dead bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Handle identifies a scheduled event so it can be cancelled (e.g. an ACK
// timeout that the ACK arrival defuses).
type Handle struct{ ev *event }

// Cancel marks the event dead; it will be skipped when popped. Cancelling a
// zero Handle or an already-run event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.dead = true
	}
}

// Engine is the discrete-event scheduler. Not safe for concurrent use: the
// simulation is single-threaded by design so runs are deterministic.
type Engine struct {
	now   Time
	seq   uint64
	queue eventQueue
	rng   *rand.Rand
	stop  bool
}

// NewEngine creates an engine whose random streams derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic RNG. Components needing an
// independent stream should derive one with NewStream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewStream derives an independent deterministic RNG keyed by id, so adding
// a component does not perturb the draws seen by existing ones.
func (e *Engine) NewStream(id int64) *rand.Rand {
	const mix = int64(-0x61c8864680b583eb) // golden-ratio mixer (2^64/φ as int64)
	return rand.New(rand.NewSource(e.rng.Int63() ^ id*mix))
}

// At schedules fn at absolute time t (clamped to now if in the past) and
// returns a cancellation handle.
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev}
}

// After schedules fn d after the current time.
func (e *Engine) After(d Time, fn func()) Handle { return e.At(e.now+d, fn) }

// Stop halts Run after the current event returns.
func (e *Engine) Stop() { e.stop = true }

// Run executes events in time order until the queue is empty, Stop is
// called, or the horizon is passed (events at exactly the horizon run).
// It returns the final simulation time.
func (e *Engine) Run(horizon Time) Time {
	e.stop = false
	for len(e.queue) > 0 && !e.stop {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		if ev.at > horizon {
			// Leave the event unconsumed conceptually; the engine is done.
			e.now = horizon
			return e.now
		}
		e.now = ev.at
		ev.fn()
	}
	if e.now < horizon {
		e.now = horizon
	}
	return e.now
}

// Pending returns the number of live scheduled events (cancelled events
// still in the heap are counted until popped; use for rough diagnostics).
func (e *Engine) Pending() int { return len(e.queue) }
