package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestRunInOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, d := range []Time{5 * Millisecond, Millisecond, 3 * Millisecond} {
		d := d
		e.At(d, func() { got = append(got, e.Now()) })
	}
	e.Run(Second)
	if len(got) != 3 {
		t.Fatalf("ran %d events", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("events out of order: %v", got)
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Millisecond, func() { got = append(got, i) })
	}
	e.Run(Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	e := NewEngine(1)
	var inner Time
	e.At(10*Millisecond, func() {
		e.After(5*Millisecond, func() { inner = e.Now() })
	})
	e.Run(Second)
	if inner != 15*Millisecond {
		t.Errorf("inner time = %v, want 15ms", inner)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	h := e.At(Millisecond, func() { ran = true })
	h.Cancel()
	e.Run(Second)
	if ran {
		t.Error("cancelled event ran")
	}
	// Cancelling zero handle must not panic.
	var zero Handle
	zero.Cancel()
}

func TestHorizon(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(Millisecond, func() { ran++ })
	e.At(2*Second, func() { ran++ })
	end := e.Run(Second)
	if ran != 1 {
		t.Errorf("ran %d events, want 1", ran)
	}
	if end != Second {
		t.Errorf("end = %v, want horizon", end)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(Millisecond, func() { ran++; e.Stop() })
	e.At(2*Millisecond, func() { ran++ })
	e.Run(Second)
	if ran != 1 {
		t.Errorf("Stop did not halt: ran=%d", ran)
	}
}

func TestPastEventClamps(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	e.At(10*Millisecond, func() {
		e.At(Millisecond, func() { at = e.Now() }) // in the past
	})
	e.Run(Second)
	if at != 10*Millisecond {
		t.Errorf("past event ran at %v, want clamp to 10ms", at)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		var vals []int64
		var tick func()
		tick = func() {
			vals = append(vals, e.Rand().Int63n(1000))
			if len(vals) < 50 {
				e.After(Time(e.Rand().Int63n(int64(Millisecond)))+1, tick)
			}
		}
		e.After(0, tick)
		e.Run(Second)
		return vals
	}
	a, b := run(), b2(run)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("simulation not deterministic")
		}
	}
}

func b2(f func() []int64) []int64 { return f() }

func TestNewStreamIndependence(t *testing.T) {
	e1 := NewEngine(7)
	e2 := NewEngine(7)
	s1 := e1.NewStream(1)
	_ = e2.NewStream(99) // different id consumed first
	s2 := e2.NewStream(1)
	// Streams with the same id from the same seed but different derivation
	// order differ — that's fine; the property we need is determinism of a
	// fixed derivation order.
	e3 := NewEngine(7)
	s3 := e3.NewStream(1)
	for i := 0; i < 10; i++ {
		if s1.Int63() != s3.Int63() {
			t.Fatal("same derivation order should give identical streams")
		}
	}
	_ = s2
}

func TestTimeHelpers(t *testing.T) {
	if US(5) != 5*Microsecond || MS(3) != 3*Millisecond {
		t.Error("constructors wrong")
	}
	if Seconds(1.5) != Second+500*Millisecond {
		t.Error("Seconds wrong")
	}
	if (2 * Second).US64() != 2_000_000 {
		t.Error("US64 wrong")
	}
	if (500 * Millisecond).SecondsF() != 0.5 {
		t.Error("SecondsF wrong")
	}
}

func TestQuickEventOrdering(t *testing.T) {
	// Property: any batch of scheduled delays executes in nondecreasing
	// time order.
	f := func(delays []uint32) bool {
		e := NewEngine(3)
		var got []Time
		for _, d := range delays {
			e.At(Time(d), func() { got = append(got, e.Now()) })
		}
		e.Run(Time(1) << 40)
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return len(got) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
