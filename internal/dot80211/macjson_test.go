package dot80211

import (
	"encoding/json"
	"testing"
)

func TestMACJSONRoundTrip(t *testing.T) {
	m := MAC{0x02, 0x1a, 0xff, 0x00, 0x7b, 0xc4}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(b) != `"02:1a:ff:00:7b:c4"` {
		t.Fatalf("marshal = %s, want quoted colon-hex", b)
	}
	var got MAC
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got != m {
		t.Fatalf("round trip = %v, want %v", got, m)
	}
}

func TestMACJSONLegacyArray(t *testing.T) {
	// meta.json files written before the text encoding carry MACs as
	// six-element byte arrays; they must stay readable.
	var got MAC
	if err := json.Unmarshal([]byte(`[2,26,255,0,123,196]`), &got); err != nil {
		t.Fatalf("unmarshal legacy array: %v", err)
	}
	want := MAC{0x02, 0x1a, 0xff, 0x00, 0x7b, 0xc4}
	if got != want {
		t.Fatalf("legacy array = %v, want %v", got, want)
	}
	if err := json.Unmarshal([]byte(`[1,2,3]`), &got); err == nil {
		t.Fatal("short array should fail")
	}
	if err := json.Unmarshal([]byte(`"not-a-mac"`), &got); err == nil {
		t.Fatal("bad string should fail")
	}
}

func TestMACJSONMapKey(t *testing.T) {
	// MAC-keyed maps (e.g. RoamingReport.PerClient) marshal via
	// TextMarshaler and must round trip.
	src := map[MAC]int{
		{0x02, 0, 0, 0, 0, 0x01}: 3,
		{0x02, 0, 0, 0, 0, 0x02}: 7,
	}
	b, err := json.Marshal(src)
	if err != nil {
		t.Fatalf("marshal map: %v", err)
	}
	var got map[MAC]int
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal map: %v", err)
	}
	if len(got) != 2 || got[MAC{0x02, 0, 0, 0, 0, 0x01}] != 3 || got[MAC{0x02, 0, 0, 0, 0, 0x02}] != 7 {
		t.Fatalf("map round trip = %v", got)
	}
}
