package dot80211

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	m := MAC{0x00, 0x1b, 0x63, 0xab, 0xcd, 0xef}
	if got, want := m.String(), "00:1b:63:ab:cd:ef"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseMACRoundTrip(t *testing.T) {
	cases := []string{"00:00:00:00:00:00", "ff:ff:ff:ff:ff:ff", "0a:1b:2c:3d:4e:5f"}
	for _, s := range cases {
		m, err := ParseMAC(s)
		if err != nil {
			t.Fatalf("ParseMAC(%q): %v", s, err)
		}
		if m.String() != s {
			t.Errorf("round trip %q -> %q", s, m.String())
		}
	}
}

func TestParseMACErrors(t *testing.T) {
	for _, s := range []string{"", "00:00:00:00:00", "00-00-00-00-00-00", "zz:00:00:00:00:00", "00:00:00:00:00:000"} {
		if _, err := ParseMAC(s); err == nil {
			t.Errorf("ParseMAC(%q) succeeded, want error", s)
		}
	}
}

func TestBroadcastMulticast(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsMulticast() {
		t.Error("Broadcast should be broadcast and multicast")
	}
	m := MAC{0x01, 0x00, 0x5e, 0, 0, 1} // IP multicast OUI
	if m.IsBroadcast() {
		t.Error("multicast is not broadcast")
	}
	if !m.IsMulticast() {
		t.Error("01:... should be multicast")
	}
	u := MAC{0x00, 0x11, 0x22, 0x33, 0x44, 0x55}
	if u.IsMulticast() {
		t.Error("unicast misdetected as multicast")
	}
	if !(MAC{}).IsZero() || u.IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestSubtypeNames(t *testing.T) {
	cases := []struct {
		t    Type
		s    Subtype
		want string
	}{
		{TypeManagement, SubtypeBeacon, "Beacon"},
		{TypeManagement, SubtypeProbeReq, "ProbeReq"},
		{TypeManagement, SubtypeProbeResp, "ProbeResp"},
		{TypeManagement, SubtypeAssocReq, "AssocReq"},
		{TypeManagement, SubtypeAuth, "Auth"},
		{TypeControl, SubtypeRTS, "RTS"},
		{TypeControl, SubtypeCTS, "CTS"},
		{TypeControl, SubtypeACK, "ACK"},
		{TypeData, SubtypeDataPlain, "Data"},
		{TypeData, SubtypeQoSData, "QoSData"},
	}
	for _, c := range cases {
		if got := SubtypeName(c.t, c.s); got != c.want {
			t.Errorf("SubtypeName(%v,%d) = %q, want %q", c.t, c.s, got, c.want)
		}
	}
}

func TestEncodeDecodeData(t *testing.T) {
	f := NewData(
		MAC{2, 2, 2, 2, 2, 2}, MAC{1, 1, 1, 1, 1, 1}, MAC{3, 3, 3, 3, 3, 3},
		1234, []byte("hello wireless world"),
	)
	f.Flags |= FlagToDS | FlagRetry
	f.Duration = 44
	b := f.Encode()
	g, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if g.Type != TypeData || g.Subtype != SubtypeDataPlain {
		t.Errorf("type/subtype = %v/%d", g.Type, g.Subtype)
	}
	if g.Addr1 != f.Addr1 || g.Addr2 != f.Addr2 || g.Addr3 != f.Addr3 {
		t.Error("addresses mangled")
	}
	if g.Seq != 1234 {
		t.Errorf("seq = %d, want 1234", g.Seq)
	}
	if g.Duration != 44 {
		t.Errorf("duration = %d", g.Duration)
	}
	if !g.Retry() {
		t.Error("retry bit lost")
	}
	if g.Flags&FlagToDS == 0 {
		t.Error("ToDS lost")
	}
	if !bytes.Equal(g.Body, f.Body) {
		t.Errorf("body = %q", g.Body)
	}
}

func TestEncodeDecodeControlFrames(t *testing.T) {
	ra := MAC{9, 8, 7, 6, 5, 4}
	ta := MAC{1, 2, 3, 4, 5, 6}

	ack := NewAck(ra)
	g, err := Decode(ack.Encode())
	if err != nil {
		t.Fatalf("ACK decode: %v", err)
	}
	if !g.IsACK() || g.Addr1 != ra {
		t.Errorf("ACK mangled: %v", g.String())
	}
	if g.HasSequence() {
		t.Error("control frames carry no sequence")
	}
	if tx := g.Transmitter(); !tx.IsZero() {
		t.Errorf("ACK transmitter should be unknown, got %v", tx)
	}

	cts := NewCTSToSelf(ta, 550)
	g, err = Decode(cts.Encode())
	if err != nil {
		t.Fatalf("CTS decode: %v", err)
	}
	if !g.IsCTS() || g.Addr1 != ta || g.Duration != 550 {
		t.Errorf("CTS mangled: %v", g.String())
	}

	rts := NewRTS(ra, ta, 999)
	g, err = Decode(rts.Encode())
	if err != nil {
		t.Fatalf("RTS decode: %v", err)
	}
	if g.Subtype != SubtypeRTS || g.Addr1 != ra || g.Addr2 != ta || g.Duration != 999 {
		t.Errorf("RTS mangled: %v", g.String())
	}
	if g.Transmitter() != ta {
		t.Errorf("RTS transmitter = %v", g.Transmitter())
	}
}

func TestEncodeDecodeBeacon(t *testing.T) {
	bssid := MAC{0xaa, 0, 0, 0, 0, 1}
	f := NewBeacon(bssid, 77, 123456789, "jigsaw-net")
	g, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !g.IsBeacon() {
		t.Error("not a beacon")
	}
	if !g.Addr1.IsBroadcast() {
		t.Error("beacons are broadcast")
	}
	if g.Seq != 77 {
		t.Errorf("seq = %d", g.Seq)
	}
	if len(g.Body) != 8+len("jigsaw-net") {
		t.Errorf("body len = %d", len(g.Body))
	}
}

func TestDecodeBadFCS(t *testing.T) {
	f := NewData(MAC{1}, MAC{2}, MAC{3}, 1, []byte("payload"))
	b := f.Encode()
	b[len(b)-1] ^= 0xff
	g, err := Decode(b)
	if err != ErrBadFCS {
		t.Fatalf("err = %v, want ErrBadFCS", err)
	}
	// Partial decode still recovers the header.
	if g.Addr2 != f.Addr2 || g.Seq != 1 {
		t.Error("header not recovered from corrupt frame")
	}
}

func TestDecodeTruncated(t *testing.T) {
	f := NewData(MAC{1}, MAC{2}, MAC{3}, 1, []byte("payload"))
	b := f.Encode()
	for _, n := range []int{0, 3, 5, 11, 23} {
		if _, err := Decode(b[:n]); err != ErrTruncated {
			t.Errorf("Decode(%d bytes) err = %v, want ErrTruncated", n, err)
		}
	}
	// 10 bytes recovers Addr1.
	g, err := Decode(b[:10])
	if err != ErrTruncated {
		t.Fatalf("err = %v", err)
	}
	if g.Addr1 != f.Addr1 {
		t.Error("Addr1 not recovered from 10-byte truncation")
	}
}

func TestWireLen(t *testing.T) {
	cases := []struct {
		f    Frame
		want int
	}{
		{NewAck(MAC{1}), 14},
		{NewCTSToSelf(MAC{1}, 0), 14},
		{NewRTS(MAC{1}, MAC{2}, 0), 20},
		{NewData(MAC{1}, MAC{2}, MAC{3}, 0, nil), 28},
		{NewData(MAC{1}, MAC{2}, MAC{3}, 0, make([]byte, 100)), 128},
	}
	for _, c := range cases {
		if got := c.f.WireLen(); got != c.want {
			t.Errorf("WireLen(%s) = %d, want %d", c.f.String(), got, c.want)
		}
		if got := len(c.f.Encode()); got != c.want {
			t.Errorf("len(Encode(%s)) = %d, want %d", c.f.String(), got, c.want)
		}
	}
}

func TestUniqueForSync(t *testing.T) {
	data := NewData(MAC{1}, MAC{2}, MAC{3}, 5, []byte("x"))
	if !data.UniqueForSync() {
		t.Error("fresh DATA frames are sync references")
	}
	retry := data
	retry.Flags |= FlagRetry
	if retry.UniqueForSync() {
		t.Error("retransmissions are not sync references")
	}
	if NewAck(MAC{1}).UniqueForSync() {
		t.Error("ACKs are not sync references")
	}
	if NewCTSToSelf(MAC{1}, 0).UniqueForSync() {
		t.Error("CTS are not sync references")
	}
	if NewProbeReq(MAC{1}, 0, "x").UniqueForSync() {
		t.Error("probe requests are not sync references (zero-seq stations)")
	}
	if !NewBeacon(MAC{1}, 0, 42, "s").UniqueForSync() {
		t.Error("beacons carry TSF and are usable references")
	}
}

// Property: Encode→Decode round-trips the header and body for arbitrary
// data frames.
func TestQuickRoundTripData(t *testing.T) {
	f := func(a1, a2, a3 [6]byte, seq uint16, flags uint8, body []byte) bool {
		fr := NewData(MAC(a1), MAC(a2), MAC(a3), seq&0x0fff, body)
		fr.Flags = Flags(flags)
		g, err := Decode(fr.Encode())
		if err != nil {
			return false
		}
		return g.Addr1 == fr.Addr1 && g.Addr2 == fr.Addr2 && g.Addr3 == fr.Addr3 &&
			g.Seq == fr.Seq && g.Flags == fr.Flags && bytes.Equal(g.Body, fr.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: any random byte soup either fails to decode or decodes without
// panicking; never both a nil error and a bad FCS.
func TestQuickDecodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		n := r.Intn(64)
		b := make([]byte, n)
		r.Read(b)
		g, err := Decode(b)
		if err == nil {
			// Valid decode of random bytes is astronomically unlikely
			// (CRC-32 must match) but legal; re-encode must reproduce.
			if !bytes.Equal(g.Encode(), b) {
				t.Fatalf("random decode not canonical: % x", b)
			}
		}
	}
}

// Property: corruption of any single byte is detected by the FCS.
func TestQuickFCSDetectsSingleByteCorruption(t *testing.T) {
	f := func(seq uint16, body []byte, pos uint16, bit uint8) bool {
		fr := NewData(MAC{1, 2, 3, 4, 5, 6}, MAC{6, 5, 4, 3, 2, 1}, MAC{7}, seq&0xfff, body)
		b := fr.Encode()
		p := int(pos) % len(b)
		b[p] ^= 1 << (bit % 8)
		_, err := Decode(b)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHeaderPredicates(t *testing.T) {
	d := NewData(MAC{2, 1}, MAC{2}, MAC{3}, 0, nil)
	if !d.IsData() || !d.IsUnicastData() {
		t.Error("unicast data predicates")
	}
	bc := NewData(Broadcast, MAC{2}, MAC{3}, 0, nil)
	if !bc.IsData() || bc.IsUnicastData() {
		t.Error("broadcast data predicates")
	}
	pr := NewProbeResp(MAC{1}, MAC{2}, 0, "s")
	if !pr.IsProbeResp() {
		t.Error("probe response predicate")
	}
}

func TestTypeString(t *testing.T) {
	if TypeManagement.String() != "MGMT" || TypeControl.String() != "CTRL" || TypeData.String() != "DATA" {
		t.Error("type names")
	}
	if Type(3).String() != "TYPE(3)" {
		t.Error("unknown type name")
	}
}

// Reflexive check that Frame is comparable enough for the unifier's content
// comparison path: identical frames encode identically.
func TestEncodeDeterministic(t *testing.T) {
	f := NewBeacon(MAC{9, 9, 9, 9, 9, 9}, 1, 5, "ssid")
	if !reflect.DeepEqual(f.Encode(), f.Encode()) {
		t.Error("Encode is not deterministic")
	}
}

func TestDecodeCaptureFullFrame(t *testing.T) {
	f := NewData(MAC{2, 1}, MAC{2, 2}, MAC{2, 3}, 99, []byte("payload"))
	g, fcsOK, err := DecodeCapture(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !fcsOK {
		t.Error("intact frame should validate its FCS")
	}
	if g.Seq != 99 || !bytes.Equal(g.Body, f.Body) {
		t.Error("full capture decode mangled")
	}
}

func TestDecodeCaptureSnapped(t *testing.T) {
	// A 1460-byte payload snapped to 228 bytes, like a monitor capture.
	f := NewData(MAC{2, 1}, MAC{2, 2}, MAC{2, 3}, 77, make([]byte, 1460))
	wire := f.Encode()[:228]
	g, fcsOK, err := DecodeCapture(wire)
	if err != nil {
		t.Fatal("snapped capture must decode its header")
	}
	if fcsOK {
		t.Error("snapped capture cannot re-validate the FCS")
	}
	if g.Seq != 77 || g.Addr2 != f.Addr2 {
		t.Error("header lost in snapped decode")
	}
	// Body is everything past the header: 228 - 24 = 204 bytes.
	if len(g.Body) != 204 {
		t.Errorf("snapped body = %d bytes, want 204", len(g.Body))
	}
}

func TestDecodeCaptureTruncatedHeader(t *testing.T) {
	f := NewData(MAC{2, 1}, MAC{2, 2}, MAC{2, 3}, 1, nil)
	wire := f.Encode()
	if _, _, err := DecodeCapture(wire[:3]); err != ErrTruncated {
		t.Error("sub-FC capture should be ErrTruncated")
	}
	g, _, err := DecodeCapture(wire[:12])
	if err != ErrTruncated {
		t.Error("partial header should be ErrTruncated")
	}
	if g.Addr1 != f.Addr1 {
		t.Error("Addr1 should still be recovered from 12 bytes")
	}
}

func TestDecodeCaptureControlFrames(t *testing.T) {
	ack := NewAck(MAC{2, 5})
	g, fcsOK, err := DecodeCapture(ack.Encode())
	if err != nil || !fcsOK {
		t.Fatalf("ACK capture: err=%v fcs=%v", err, fcsOK)
	}
	if !g.IsACK() || g.Addr1 != ack.Addr1 {
		t.Error("ACK capture mangled")
	}
}

func TestQuickDecodeCaptureNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		g, fcsOK, err := DecodeCapture(b)
		if err == nil && len(b) >= 10 && g.Addr1 == (MAC{}) && b[4]|b[5]|b[6]|b[7]|b[8]|b[9] != 0 {
			return false // Addr1 not parsed despite nonzero bytes
		}
		_ = fcsOK
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
