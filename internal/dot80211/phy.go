package dot80211

import "fmt"

// Rate is an 802.11 coded rate in units of 100 kbps (so Rate11Mbps == 110).
// Using integer tenths keeps airtime math exact.
type Rate uint16

// 802.11b (CCK/DSSS) rates.
const (
	Rate1Mbps  Rate = 10
	Rate2Mbps  Rate = 20
	Rate5_5    Rate = 55
	Rate11Mbps Rate = 110
)

// 802.11g (ERP-OFDM) rates.
const (
	Rate6Mbps  Rate = 60
	Rate9Mbps  Rate = 90
	Rate12Mbps Rate = 120
	Rate18Mbps Rate = 180
	Rate24Mbps Rate = 240
	Rate36Mbps Rate = 360
	Rate48Mbps Rate = 480
	Rate54Mbps Rate = 540
)

// Mbps returns the rate in Mbps as a float for display.
func (r Rate) Mbps() float64 { return float64(r) / 10 }

// String renders the rate, e.g. "5.5Mbps".
func (r Rate) String() string {
	if r%10 == 0 {
		return fmt.Sprintf("%dMbps", r/10)
	}
	return fmt.Sprintf("%d.%dMbps", r/10, r%10)
}

// IsOFDM reports whether the rate is an ERP-OFDM (802.11g) rate. Legacy
// 802.11b radios cannot decode OFDM frames and may sense the medium idle
// during them — the root of the protection-mode problem (§2).
func (r Rate) IsOFDM() bool {
	switch r {
	case Rate6Mbps, Rate9Mbps, Rate12Mbps, Rate18Mbps, Rate24Mbps,
		Rate36Mbps, Rate48Mbps, Rate54Mbps:
		return true
	}
	return false
}

// Valid reports whether r is a defined 802.11b/g rate.
func (r Rate) Valid() bool {
	switch r {
	case Rate1Mbps, Rate2Mbps, Rate5_5, Rate11Mbps:
		return true
	}
	return r.IsOFDM()
}

// BRates and GRates list the valid rates of each PHY in increasing order.
var (
	BRates = []Rate{Rate1Mbps, Rate2Mbps, Rate5_5, Rate11Mbps}
	GRates = []Rate{Rate6Mbps, Rate9Mbps, Rate12Mbps, Rate18Mbps,
		Rate24Mbps, Rate36Mbps, Rate48Mbps, Rate54Mbps}
)

// MAC/PHY timing constants (802.11b/g, microseconds). The paper's analyses
// use the 20 µs slot time of 802.11b-compatible networks throughout.
const (
	SIFS          = 10                // short interframe space, µs
	SlotTime      = 20                // long (b-compatible) slot time, µs
	SlotTimeShort = 9                 // 802.11g-only short slot, µs (unused when b present)
	DIFS          = SIFS + 2*SlotTime // DCF interframe space, µs

	// Contention window bounds (in slots).
	CWMin = 31
	CWMax = 1023

	// PLCP preamble+header durations.
	PLCPLongUS  = 192 // 802.11b long preamble (1 Mbps header)
	PLCPShortUS = 96  // 802.11b short preamble
	PLCPOFDMUS  = 20  // 802.11g preamble + SIGNAL field

	// OFDM symbol duration.
	OFDMSymbolUS = 4
)

// Preamble selects the 802.11b PLCP preamble length.
type Preamble uint8

// Preamble kinds.
const (
	LongPreamble Preamble = iota
	ShortPreamble
)

// AirtimeUS returns the on-air duration in microseconds of a frame of
// lenBytes total MAC bytes (header+body+FCS) at the given rate.
//
// For CCK/DSSS (802.11b) rates the payload time is len*8 / rate plus the
// PLCP preamble. For ERP-OFDM (802.11g) rates it is the 20 µs
// preamble+SIGNAL plus ceil((16 service bits + 8*len + 6 tail bits) /
// bits-per-symbol) 4 µs symbols, per the 802.11 standard.
func AirtimeUS(lenBytes int, rate Rate, p Preamble) int {
	if lenBytes < 0 {
		lenBytes = 0
	}
	if rate.IsOFDM() {
		bitsPerSymbol := int(rate) * OFDMSymbolUS / 10 // rate(100kbps)*4µs/10 = bits/symbol
		bits := 16 + 8*lenBytes + 6
		symbols := (bits + bitsPerSymbol - 1) / bitsPerSymbol
		return PLCPOFDMUS + symbols*OFDMSymbolUS
	}
	plcp := PLCPLongUS
	if p == ShortPreamble {
		plcp = PLCPShortUS
	}
	// time = bits / (rate/10 Mbps) µs = bits*10/rate, rounded up.
	bits := 8 * lenBytes
	payload := (bits*10 + int(rate) - 1) / int(rate)
	return plcp + payload
}

// AckAirtimeUS is the airtime of an ACK frame (14 bytes) at the control
// response rate used for a data frame sent at rate. ACKs answer at the
// highest basic rate not exceeding the data rate; we use 2 Mbps for CCK and
// 24 Mbps OFDM for high ERP rates, matching common AP behaviour (and
// footnote 7's 28 µs figure for 54 Mbps data).
func AckAirtimeUS(dataRate Rate, p Preamble) int {
	if dataRate.IsOFDM() {
		return AirtimeUS(14, Rate24Mbps, p) // = 20 + ceil((16+112+6)/96)*4 = 28 µs
	}
	if dataRate >= Rate2Mbps {
		return AirtimeUS(14, Rate2Mbps, p)
	}
	return AirtimeUS(14, Rate1Mbps, p)
}

// CTSAirtimeUS is the airtime of a CTS(-to-self) frame (14 bytes) at the
// given protection rate. The paper's APs send CTS at 2 Mbps with the long
// preamble: 192 + 14*8/2 = 248 µs.
func CTSAirtimeUS(rate Rate, p Preamble) int { return AirtimeUS(14, rate, p) }

// NAVForDataExchange computes the Duration field value for a unicast DATA
// frame: the remaining time after the data frame itself — SIFS + ACK.
func NAVForDataExchange(dataRate Rate, p Preamble) uint16 {
	return uint16(SIFS + AckAirtimeUS(dataRate, p))
}

// NAVForCTSToSelf computes the Duration for the CTS-to-self preceding a
// protected data exchange: SIFS + DATA + SIFS + ACK.
func NAVForCTSToSelf(dataLen int, dataRate Rate, p Preamble) uint16 {
	return uint16(SIFS + AirtimeUS(dataLen, dataRate, p) + SIFS + AckAirtimeUS(dataRate, p))
}

// ProtectionOverheadFactor reproduces the arithmetic of the paper's
// footnote 7: the potential throughput factor an 802.11g client gains when
// CTS-to-self protection is disabled, for an MSS-sized TCP segment at
// 54 Mbps with the AP's 2 Mbps long-preamble CTS.
//
//	with protection:    CTS(248) + SIFS + DATA(248) + SIFS + ACK(28) + E[backoff b/g] (32/2 * 20)
//	without protection:            DATA(248) + SIFS + ACK(28) + E[backoff g] (16/2 * 20)
//
// The paper quotes 1.98; the formula as printed evaluates to ≈1.94 (the
// authors evidently rounded component times slightly differently). We return
// the computed value and assert the ~2x shape in tests.
func ProtectionOverheadFactor() float64 {
	cts := float64(CTSAirtimeUS(Rate2Mbps, LongPreamble)) // 248
	const mssDataUS = 248                                 // MSS TCP at 54 Mbps per footnote
	ack := float64(AckAirtimeUS(Rate54Mbps, LongPreamble))
	const sifs = 16 // footnote uses 16 µs SIFS for the OFDM exchange
	backoffBG := 32.0 / 2 * 20
	backoffG := 16.0 / 2 * 20
	with := cts + sifs + mssDataUS + sifs + ack + backoffBG
	without := mssDataUS + sifs + ack + backoffG
	return with / without
}

// Channel is an 802.11b/g channel number. The deployment monitors the three
// non-overlapping channels 1, 6 and 11 (§3.1).
type Channel uint8

// The non-overlapping 2.4 GHz channels monitored by the platform.
var NonOverlappingChannels = []Channel{1, 6, 11}

// CenterFreqMHz returns the channel's center frequency in MHz.
func (c Channel) CenterFreqMHz() float64 {
	if c < 1 || c > 14 {
		return 0
	}
	if c == 14 {
		return 2484
	}
	return 2407 + 5*float64(c)
}

// Overlaps reports whether two 2.4 GHz channels overlap in spectrum
// (channel separation below 5 ⇒ spectral overlap for 22 MHz DSSS masks).
func (c Channel) Overlaps(o Channel) bool {
	d := int(c) - int(o)
	if d < 0 {
		d = -d
	}
	return d < 5
}
