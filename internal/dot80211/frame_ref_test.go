package dot80211

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// This file keeps the pre-table decoders verbatim as unexported references
// and pins the table-driven rewrites against them: on every input —
// well-formed, truncated, snapped, corrupted, wrong protocol version — the
// rewritten Decode/DecodeCapture must return identical Frame values,
// identical errors, and identical fcsOK verdicts, with Body aliasing the
// same range of the input buffer.

// decodeReference is the branchy kind-switch Decode this package shipped
// before the fcTable rewrite.
func decodeReference(b []byte) (Frame, error) {
	var f Frame
	if len(b) < 4 {
		return f, ErrTruncated
	}
	fc := binary.LittleEndian.Uint16(b[0:2])
	f.Type = Type(fc >> 2 & 0x3)
	f.Subtype = Subtype(fc >> 4 & 0xf)
	f.Flags = Flags(fc >> 8)
	f.Duration = binary.LittleEndian.Uint16(b[2:4])
	hl := headerLen(f.Type, f.Subtype)
	if len(b) < hl {
		if len(b) >= 10 {
			copy(f.Addr1[:], b[4:10])
		}
		return f, ErrTruncated
	}
	copy(f.Addr1[:], b[4:10])
	if hl > 10 {
		copy(f.Addr2[:], b[10:16])
	}
	if hl > 16 {
		copy(f.Addr3[:], b[16:22])
		sc := binary.LittleEndian.Uint16(b[22:24])
		f.Frag = uint8(sc & 0x0f)
		f.Seq = sc >> 4
	}
	if len(b) < hl+fcsLen {
		return f, ErrTruncated
	}
	f.Body = b[hl : len(b)-fcsLen]
	want := binary.LittleEndian.Uint32(b[len(b)-fcsLen:])
	got := crc32.ChecksumIEEE(b[:len(b)-fcsLen])
	if want != got {
		return f, ErrBadFCS
	}
	return f, nil
}

// decodeCaptureReference is the pre-table DecodeCapture.
func decodeCaptureReference(b []byte) (Frame, bool, error) {
	var f Frame
	if len(b) < 4 {
		return f, false, ErrTruncated
	}
	fc := binary.LittleEndian.Uint16(b[0:2])
	f.Type = Type(fc >> 2 & 0x3)
	f.Subtype = Subtype(fc >> 4 & 0xf)
	f.Flags = Flags(fc >> 8)
	f.Duration = binary.LittleEndian.Uint16(b[2:4])
	hl := headerLen(f.Type, f.Subtype)
	if len(b) < hl {
		if len(b) >= 10 {
			copy(f.Addr1[:], b[4:10])
		}
		return f, false, ErrTruncated
	}
	copy(f.Addr1[:], b[4:10])
	if hl > 10 {
		copy(f.Addr2[:], b[10:16])
	}
	if hl > 16 {
		copy(f.Addr3[:], b[16:22])
		sc := binary.LittleEndian.Uint16(b[22:24])
		f.Frag = uint8(sc & 0x0f)
		f.Seq = sc >> 4
	}
	if len(b) >= hl+fcsLen {
		want := binary.LittleEndian.Uint32(b[len(b)-fcsLen:])
		if crc32.ChecksumIEEE(b[:len(b)-fcsLen]) == want {
			f.Body = b[hl : len(b)-fcsLen]
			return f, true, nil
		}
	}
	f.Body = b[hl:]
	return f, false, nil
}

// sameFrame checks field-for-field equality including Body identity: both
// decoders must alias the same byte range of the input (or both be nil).
func sameFrame(t *testing.T, what string, got, want Frame, in []byte) {
	t.Helper()
	if got.Header != want.Header {
		t.Fatalf("%s: header mismatch on %x:\n got=%+v\nwant=%+v", what, in, got.Header, want.Header)
	}
	if (got.Body == nil) != (want.Body == nil) || !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("%s: body mismatch on %x:\n got=%x (nil=%v)\nwant=%x (nil=%v)",
			what, in, got.Body, got.Body == nil, want.Body, want.Body == nil)
	}
	// Alias contract: a non-empty Body must share the input's backing array
	// at the same offset for both decoders.
	if len(got.Body) > 0 && len(in) > 0 {
		if &got.Body[0] != &want.Body[0] {
			t.Fatalf("%s: body aliases different storage on %x", what, in)
		}
	}
}

// fuzzParityCorpus seeds every dispatch-relevant shape: all 256 FC bytes
// over representative lengths, plus real encoded frames and their
// truncations/corruptions.
func fuzzParityCorpus(f *testing.F) {
	for _, fr := range fuzzSeedFrames() {
		wire := fr.Encode()
		f.Add(wire)
		for _, cut := range []int{3, 4, 9, 10, 15, 16, 23, 24} {
			if cut < len(wire) {
				f.Add(wire[:cut])
			}
		}
		if len(wire) > 0 {
			bad := append([]byte(nil), wire...)
			bad[len(bad)-1] ^= 0xff // FCS corruption
			f.Add(bad)
		}
	}
	for fc := 0; fc < 256; fc += 5 {
		f.Add([]byte{byte(fc), 0x08, 0x10, 0x00, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	}
	f.Add([]byte{})
	f.Add([]byte{0x08})
}

// FuzzDecodeTableMatchesReference: the table-driven Decode must be
// indistinguishable from the pre-rewrite reference on all inputs.
func FuzzDecodeTableMatchesReference(f *testing.F) {
	fuzzParityCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, gerr := Decode(data)
		want, werr := decodeReference(data)
		if gerr != werr {
			t.Fatalf("Decode error mismatch on %x: got %v, want %v", data, gerr, werr)
		}
		sameFrame(t, "Decode", got, want, data)

		gotC, gotOK, gcerr := DecodeCapture(data)
		wantC, wantOK, wcerr := decodeCaptureReference(data)
		if gcerr != wcerr || gotOK != wantOK {
			t.Fatalf("DecodeCapture mismatch on %x: got (ok=%v, %v), want (ok=%v, %v)",
				data, gotOK, gcerr, wantOK, wcerr)
		}
		sameFrame(t, "DecodeCapture", gotC, wantC, data)
	})
}

// TestDecodeTableExhaustiveFC runs the parity check across every possible
// frame-control byte at every interesting length, so the dispatch table is
// verified exhaustively even without a long fuzz run.
func TestDecodeTableExhaustiveFC(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
		17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30}
	for fc := 0; fc < 256; fc++ {
		for n := 0; n <= len(payload); n++ {
			in := append([]byte{byte(fc), 0x55}, payload[:n]...)
			got, gerr := Decode(in)
			want, werr := decodeReference(in)
			if gerr != werr {
				t.Fatalf("fc=%#02x len=%d: Decode error %v, want %v", fc, len(in), gerr, werr)
			}
			sameFrame(t, "Decode", got, want, in)
			gotC, gok, gcerr := DecodeCapture(in)
			wantC, wok, wcerr := decodeCaptureReference(in)
			if gcerr != wcerr || gok != wok {
				t.Fatalf("fc=%#02x len=%d: DecodeCapture (ok=%v, %v), want (ok=%v, %v)",
					fc, len(in), gok, gcerr, wok, wcerr)
			}
			sameFrame(t, "DecodeCapture", gotC, wantC, in)
		}
	}
}
