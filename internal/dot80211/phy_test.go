package dot80211

import (
	"testing"
	"testing/quick"
)

func TestAirtimeCCK(t *testing.T) {
	cases := []struct {
		len  int
		rate Rate
		p    Preamble
		want int
	}{
		// 14-byte CTS at 2 Mbps long preamble: 192 + 112/2 = 248 (footnote 7).
		{14, Rate2Mbps, LongPreamble, 248},
		{14, Rate1Mbps, LongPreamble, 192 + 112},
		{14, Rate2Mbps, ShortPreamble, 96 + 56},
		// 1500 bytes at 11 Mbps: 192 + ceil(12000/1.1) = 192 + 10910 = 11102.
		{1500, Rate11Mbps, LongPreamble, 192 + (12000*10+109)/110},
		{0, Rate1Mbps, LongPreamble, 192},
	}
	for _, c := range cases {
		if got := AirtimeUS(c.len, c.rate, c.p); got != c.want {
			t.Errorf("AirtimeUS(%d,%v,%v) = %d, want %d", c.len, c.rate, c.p, got, c.want)
		}
	}
}

func TestAirtimeOFDM(t *testing.T) {
	// 14-byte ACK at 24 Mbps: 20 + ceil((16+112+6)/96)*4 = 20 + 2*4 = 28 µs.
	if got := AirtimeUS(14, Rate24Mbps, LongPreamble); got != 28 {
		t.Errorf("ACK at 24 Mbps = %d, want 28", got)
	}
	// 1500 bytes at 54 Mbps: 20 + ceil((16+12000+6)/216)*4 = 20 + 56*4 = 244.
	if got := AirtimeUS(1500, Rate54Mbps, LongPreamble); got != 244 {
		t.Errorf("1500B at 54 Mbps = %d, want 244", got)
	}
	// Preamble choice must not affect OFDM.
	if AirtimeUS(100, Rate6Mbps, LongPreamble) != AirtimeUS(100, Rate6Mbps, ShortPreamble) {
		t.Error("OFDM airtime should ignore CCK preamble selection")
	}
}

func TestAirtimeMonotonicInLength(t *testing.T) {
	for _, r := range append(append([]Rate{}, BRates...), GRates...) {
		prev := -1
		for l := 0; l < 400; l += 7 {
			a := AirtimeUS(l, r, LongPreamble)
			if a < prev {
				t.Fatalf("airtime not monotonic at rate %v len %d", r, l)
			}
			prev = a
		}
	}
}

func TestAirtimeMonotonicInRate(t *testing.T) {
	// Within one PHY family, higher rate ⇒ no more airtime for same length.
	for i := 1; i < len(BRates); i++ {
		if AirtimeUS(500, BRates[i], LongPreamble) > AirtimeUS(500, BRates[i-1], LongPreamble) {
			t.Errorf("CCK airtime increased from %v to %v", BRates[i-1], BRates[i])
		}
	}
	for i := 1; i < len(GRates); i++ {
		if AirtimeUS(500, GRates[i], LongPreamble) > AirtimeUS(500, GRates[i-1], LongPreamble) {
			t.Errorf("OFDM airtime increased from %v to %v", GRates[i-1], GRates[i])
		}
	}
}

func TestQuickAirtimePositive(t *testing.T) {
	f := func(l uint16, ri uint8) bool {
		rates := append(append([]Rate{}, BRates...), GRates...)
		r := rates[int(ri)%len(rates)]
		return AirtimeUS(int(l%3000), r, LongPreamble) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatePredicates(t *testing.T) {
	if Rate11Mbps.IsOFDM() || !Rate54Mbps.IsOFDM() {
		t.Error("IsOFDM wrong")
	}
	if !Rate5_5.Valid() || Rate(30).Valid() {
		t.Error("Valid wrong")
	}
	if Rate5_5.String() != "5.5Mbps" || Rate54Mbps.String() != "54Mbps" {
		t.Error("rate String wrong")
	}
	if Rate11Mbps.Mbps() != 11.0 {
		t.Error("Mbps wrong")
	}
}

func TestTimingConstants(t *testing.T) {
	if DIFS != 50 {
		t.Errorf("DIFS = %d, want 50 (SIFS + 2 slots)", DIFS)
	}
	if SlotTime != 20 {
		t.Errorf("slot = %d; the paper's sync precision target is one 20 µs slot", SlotTime)
	}
}

func TestNAVValues(t *testing.T) {
	// DATA at 54 Mbps: NAV covers SIFS + 28 µs ACK.
	if got := NAVForDataExchange(Rate54Mbps, LongPreamble); got != SIFS+28 {
		t.Errorf("NAV(54) = %d", got)
	}
	nav := NAVForCTSToSelf(1500, Rate54Mbps, LongPreamble)
	want := uint16(SIFS + 244 + SIFS + 28)
	if nav != want {
		t.Errorf("CTS-to-self NAV = %d, want %d", nav, want)
	}
}

func TestProtectionOverheadFactor(t *testing.T) {
	f := ProtectionOverheadFactor()
	// Footnote 7 quotes 1.98; the printed formula evaluates just below it.
	// Assert the headline "factor of two" shape.
	if f < 1.9 || f > 2.05 {
		t.Errorf("protection overhead factor = %.3f, want ≈2 (paper: 1.98)", f)
	}
}

func TestChannels(t *testing.T) {
	if Channel(1).CenterFreqMHz() != 2412 || Channel(6).CenterFreqMHz() != 2437 ||
		Channel(11).CenterFreqMHz() != 2462 || Channel(14).CenterFreqMHz() != 2484 {
		t.Error("center frequencies wrong")
	}
	if Channel(0).CenterFreqMHz() != 0 || Channel(15).CenterFreqMHz() != 0 {
		t.Error("invalid channels should map to 0")
	}
	for _, a := range NonOverlappingChannels {
		for _, b := range NonOverlappingChannels {
			if a != b && a.Overlaps(b) {
				t.Errorf("channels %d and %d should not overlap", a, b)
			}
		}
	}
	if !Channel(1).Overlaps(3) || !Channel(6).Overlaps(6) {
		t.Error("adjacent/self overlap expected")
	}
}

func TestAckAirtime(t *testing.T) {
	if AckAirtimeUS(Rate54Mbps, LongPreamble) != 28 {
		t.Error("OFDM ACK should be 28 µs")
	}
	if AckAirtimeUS(Rate1Mbps, LongPreamble) != 192+112 {
		t.Error("1 Mbps ACK wrong")
	}
	if AckAirtimeUS(Rate11Mbps, LongPreamble) != 248 {
		t.Error("11 Mbps data ACKed at 2 Mbps = 248 µs")
	}
}
