// Package dot80211 models IEEE 802.11 MAC frames and PHY timing for the
// Jigsaw reproduction.
//
// The package provides a wire-faithful (for Jigsaw's purposes) frame codec in
// a gopacket-inspired style: frames serialize to byte slices carrying a
// frame-control word, duration, addresses, sequence control, body and a
// CRC-32 FCS, and decode back with lazy, zero-copy views where possible. It
// also implements the 802.11b (CCK/DSSS) and 802.11g (ERP-OFDM) airtime
// model, including PLCP preambles and the CTS-to-self protection arithmetic
// from the paper's footnote 7.
package dot80211

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// MAC is a 48-bit IEEE MAC address.
type MAC [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the address in the conventional colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsMulticast reports whether the address has the group bit set (includes
// broadcast).
func (m MAC) IsMulticast() bool { return m[0]&0x01 != 0 }

// IsZero reports whether the address is all zeros.
func (m MAC) IsZero() bool { return m == MAC{} }

// MarshalText implements encoding.TextMarshaler: the colon-separated
// form. JSON uses it for MAC values and for MAC-keyed map keys alike, so
// rosters (meta.json) and report rows carry "aa:bb:cc:dd:ee:ff" strings.
func (m MAC) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *MAC) UnmarshalText(b []byte) error {
	p, err := ParseMAC(string(b))
	if err != nil {
		return err
	}
	*m = p
	return nil
}

// UnmarshalJSON accepts both the colon-separated string form and the
// legacy six-element byte array that trace directories written before the
// text encoding carry in their meta.json.
func (m *MAC) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '[' {
		var raw []int
		if err := json.Unmarshal(b, &raw); err != nil {
			return fmt.Errorf("dot80211: bad MAC array: %w", err)
		}
		if len(raw) != 6 {
			return fmt.Errorf("dot80211: MAC array has %d elements, want 6", len(raw))
		}
		for i, v := range raw {
			if v < 0 || v > 255 {
				return fmt.Errorf("dot80211: MAC array octet %d out of range", v)
			}
			m[i] = byte(v)
		}
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("dot80211: bad MAC: %w", err)
	}
	return m.UnmarshalText([]byte(s))
}

// ParseMAC parses a colon-separated MAC address.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	if len(s) != 17 {
		return m, fmt.Errorf("dot80211: bad MAC %q", s)
	}
	for i := 0; i < 6; i++ {
		var b byte
		if _, err := fmt.Sscanf(s[i*3:i*3+2], "%02x", &b); err != nil {
			return m, fmt.Errorf("dot80211: bad MAC %q: %v", s, err)
		}
		m[i] = b
		if i < 5 && s[i*3+2] != ':' {
			return m, fmt.Errorf("dot80211: bad MAC %q", s)
		}
	}
	return m, nil
}

// MustParseMAC is ParseMAC that panics on error; for tests and tables.
func MustParseMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

// Type is the 2-bit 802.11 frame type.
type Type uint8

// Frame types.
const (
	TypeManagement Type = 0
	TypeControl    Type = 1
	TypeData       Type = 2
)

// String names the frame type.
func (t Type) String() string {
	switch t {
	case TypeManagement:
		return "MGMT"
	case TypeControl:
		return "CTRL"
	case TypeData:
		return "DATA"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Subtype is the 4-bit 802.11 frame subtype, scoped by Type.
type Subtype uint8

// Management subtypes.
const (
	SubtypeAssocReq    Subtype = 0
	SubtypeAssocResp   Subtype = 1
	SubtypeReassocReq  Subtype = 2
	SubtypeReassocResp Subtype = 3
	SubtypeProbeReq    Subtype = 4
	SubtypeProbeResp   Subtype = 5
	SubtypeBeacon      Subtype = 8
	SubtypeDisassoc    Subtype = 10
	SubtypeAuth        Subtype = 11
	SubtypeDeauth      Subtype = 12
)

// Control subtypes.
const (
	SubtypeRTS   Subtype = 11
	SubtypeCTS   Subtype = 12
	SubtypeACK   Subtype = 13
	SubtypeCFEnd Subtype = 14
)

// Data subtypes.
const (
	SubtypeDataPlain Subtype = 0
	SubtypeDataNull  Subtype = 4
	SubtypeQoSData   Subtype = 8
	SubtypeQoSNull   Subtype = 12
)

// SubtypeName returns a human-readable name for a (type, subtype) pair.
func SubtypeName(t Type, s Subtype) string {
	switch t {
	case TypeManagement:
		switch s {
		case SubtypeAssocReq:
			return "AssocReq"
		case SubtypeAssocResp:
			return "AssocResp"
		case SubtypeReassocReq:
			return "ReassocReq"
		case SubtypeReassocResp:
			return "ReassocResp"
		case SubtypeProbeReq:
			return "ProbeReq"
		case SubtypeProbeResp:
			return "ProbeResp"
		case SubtypeBeacon:
			return "Beacon"
		case SubtypeDisassoc:
			return "Disassoc"
		case SubtypeAuth:
			return "Auth"
		case SubtypeDeauth:
			return "Deauth"
		}
	case TypeControl:
		switch s {
		case SubtypeRTS:
			return "RTS"
		case SubtypeCTS:
			return "CTS"
		case SubtypeACK:
			return "ACK"
		case SubtypeCFEnd:
			return "CFEnd"
		}
	case TypeData:
		switch s {
		case SubtypeDataPlain:
			return "Data"
		case SubtypeDataNull:
			return "Null"
		case SubtypeQoSData:
			return "QoSData"
		case SubtypeQoSNull:
			return "QoSNull"
		}
	}
	return fmt.Sprintf("%v(%d)", t, uint8(s))
}

// Flags is the frame-control flags byte.
type Flags uint8

// Frame-control flag bits.
const (
	FlagToDS      Flags = 1 << 0
	FlagFromDS    Flags = 1 << 1
	FlagMoreFrag  Flags = 1 << 2
	FlagRetry     Flags = 1 << 3
	FlagPwrMgmt   Flags = 1 << 4
	FlagMoreData  Flags = 1 << 5
	FlagProtected Flags = 1 << 6
	FlagOrder     Flags = 1 << 7
)

// Header is the decoded MAC header common to all frame kinds. Control frames
// populate only a subset of the fields (Addr2/Addr3/Seq are zero for ACK and
// CTS; Addr3/Seq are zero for RTS).
type Header struct {
	Type     Type
	Subtype  Subtype
	Flags    Flags
	Duration uint16 // microseconds of medium reservation (NAV)
	Addr1    MAC    // receiver address
	Addr2    MAC    // transmitter address (absent for ACK/CTS)
	Addr3    MAC    // BSSID / DA / SA depending on DS bits
	Seq      uint16 // 12-bit sequence number
	Frag     uint8  // 4-bit fragment number
}

// Retry reports whether the retry bit is set.
func (h Header) Retry() bool { return h.Flags&FlagRetry != 0 }

// HasSequence reports whether this frame kind carries a sequence-control
// field (DATA and MANAGEMENT frames do; CONTROL frames do not).
func (h Header) HasSequence() bool { return h.Type != TypeControl }

// Transmitter returns the address of the transmitting station, or the zero
// MAC if this frame kind does not carry one (ACK, CTS received by others).
// CTS-to-self frames do carry the transmitter in Addr1 (RA == own address),
// but at the codec level we cannot distinguish; callers use link-layer
// context for that.
func (h Header) Transmitter() MAC {
	if h.Type == TypeControl && (h.Subtype == SubtypeACK || h.Subtype == SubtypeCTS) {
		return MAC{}
	}
	return h.Addr2
}

// Receiver returns the destination address (Addr1).
func (h Header) Receiver() MAC { return h.Addr1 }

// IsBeacon reports whether the frame is a management beacon.
func (h Header) IsBeacon() bool {
	return h.Type == TypeManagement && h.Subtype == SubtypeBeacon
}

// IsProbeResp reports whether the frame is a probe response.
func (h Header) IsProbeResp() bool {
	return h.Type == TypeManagement && h.Subtype == SubtypeProbeResp
}

// IsACK reports whether the frame is a control ACK.
func (h Header) IsACK() bool { return h.Type == TypeControl && h.Subtype == SubtypeACK }

// IsCTS reports whether the frame is a control CTS.
func (h Header) IsCTS() bool { return h.Type == TypeControl && h.Subtype == SubtypeCTS }

// IsData reports whether the frame is any DATA-type frame.
func (h Header) IsData() bool { return h.Type == TypeData }

// IsUnicastData reports whether the frame is a DATA frame to a unicast
// destination (and hence subject to link-layer ARQ).
func (h Header) IsUnicastData() bool { return h.Type == TypeData && !h.Addr1.IsMulticast() }

// Frame is a fully assembled 802.11 frame: header plus body payload. Frames
// built by the simulator keep Body as the (possibly truncated to snap length)
// upper-layer payload; decoded frames alias the underlying capture buffer.
type Frame struct {
	Header
	Body []byte
}

// headerLen returns the on-air MAC header length for the frame kind.
func headerLen(t Type, s Subtype) int {
	if t == TypeControl {
		switch s {
		case SubtypeACK, SubtypeCTS:
			return 2 + 2 + 6 // FC + Duration + RA
		case SubtypeRTS:
			return 2 + 2 + 6 + 6 // FC + Duration + RA + TA
		default:
			return 2 + 2 + 6 + 6
		}
	}
	return 2 + 2 + 6 + 6 + 6 + 2 // FC + Duration + A1 + A2 + A3 + SeqCtl
}

// fcEntry is one frame-control byte's precomputed decode dispatch: type,
// subtype, and the on-air MAC header length, so the decoders' hot path is a
// single table load instead of bit extraction plus a kind switch.
type fcEntry struct {
	typ     Type
	subtype Subtype
	hdrLen  uint8
}

// fcTable maps the first frame-control byte (version | type<<2 | subtype<<4)
// to its decode dispatch. Built from headerLen so the table and the
// kind-switch reference agree by construction.
var fcTable = func() (t [256]fcEntry) {
	for fc := 0; fc < 256; fc++ {
		typ := Type(fc >> 2 & 0x3)
		sub := Subtype(fc >> 4 & 0xf)
		t[fc] = fcEntry{typ: typ, subtype: sub, hdrLen: uint8(headerLen(typ, sub))}
	}
	return
}()

// fcsLen is the length of the frame check sequence.
const fcsLen = 4

// BodyOffset returns the offset of the frame body within the capture
// buffer it was decoded from — the MAC header length for this frame kind.
// Callers that copy a capture buffer use it to re-point Body into the
// copy.
func (f *Frame) BodyOffset() int { return headerLen(f.Type, f.Subtype) }

// WireLen returns the total on-air length of the frame in bytes, including
// MAC header, body and FCS. This is the length the PHY airtime model uses.
func (f *Frame) WireLen() int {
	return headerLen(f.Type, f.Subtype) + len(f.Body) + fcsLen
}

// Encode serializes the frame to wire format, appending a valid FCS.
func (f *Frame) Encode() []byte {
	hl := headerLen(f.Type, f.Subtype)
	b := make([]byte, hl+len(f.Body)+fcsLen)
	fc := uint16(f.Type)<<2 | uint16(f.Subtype)<<4 | uint16(f.Flags)<<8
	binary.LittleEndian.PutUint16(b[0:2], fc)
	binary.LittleEndian.PutUint16(b[2:4], f.Duration)
	copy(b[4:10], f.Addr1[:])
	if hl > 10 {
		copy(b[10:16], f.Addr2[:])
	}
	if hl > 16 {
		copy(b[16:22], f.Addr3[:])
		sc := uint16(f.Frag&0x0f) | (f.Seq&0x0fff)<<4
		binary.LittleEndian.PutUint16(b[22:24], sc)
	}
	copy(b[hl:], f.Body)
	fcs := crc32.ChecksumIEEE(b[: hl+len(f.Body) : hl+len(f.Body)])
	binary.LittleEndian.PutUint32(b[hl+len(f.Body):], fcs)
	return b
}

// Errors returned by Decode.
var (
	ErrTruncated = errors.New("dot80211: frame truncated")
	ErrBadFCS    = errors.New("dot80211: FCS mismatch")
)

// Decode parses a wire-format frame. The returned frame's Body aliases b.
// A frame whose FCS does not match decodes as far as possible and returns
// ErrBadFCS alongside the partial frame, mirroring how Jigsaw's monitors
// deliver corrupted frames with an FCS-failed flag.
//
// Decode dispatches through fcTable (the 256-entry frame-control table) and
// loads header fields at fixed offsets; FuzzDecodeTableMatchesReference
// pins it byte-for-byte against the pre-table reference decoder.
func Decode(b []byte) (Frame, error) {
	var f Frame
	if len(b) < 4 {
		return f, ErrTruncated
	}
	e := &fcTable[b[0]]
	f.Type, f.Subtype, f.Flags = e.typ, e.subtype, Flags(b[1])
	f.Duration = uint16(b[2]) | uint16(b[3])<<8
	hl := int(e.hdrLen)
	if len(b) < hl {
		// Partial header: recover what we can (Addr1 at least needs 10 bytes).
		if len(b) >= 10 {
			f.Addr1 = MAC(b[4:10])
		}
		return f, ErrTruncated
	}
	f.Addr1 = MAC(b[4:10])
	if hl > 10 {
		f.Addr2 = MAC(b[10:16])
	}
	if hl > 16 {
		f.Addr3 = MAC(b[16:22])
		sc := uint16(b[22]) | uint16(b[23])<<8
		f.Frag = uint8(sc & 0x0f)
		f.Seq = sc >> 4
	}
	if len(b) < hl+fcsLen {
		return f, ErrTruncated
	}
	f.Body = b[hl : len(b)-fcsLen]
	want := binary.LittleEndian.Uint32(b[len(b)-fcsLen:])
	got := crc32.ChecksumIEEE(b[:len(b)-fcsLen])
	if want != got {
		return f, ErrBadFCS
	}
	return f, nil
}

// DecodeCapture parses a captured frame that may have been snap-truncated
// by the monitor (jigdump captures keep the MAC header plus up to ~200
// payload bytes, §5). The header must be intact; the FCS is validated when
// present and stripped, otherwise the remainder is taken as (truncated)
// body. The returned bool reports whether the full FCS validated — callers
// should trust the capture hardware's FCS flag for validity, since a
// snapped frame cannot re-validate.
//
// Like Decode, DecodeCapture is table-driven and fuzz-pinned against the
// pre-table reference.
func DecodeCapture(b []byte) (Frame, bool, error) {
	var f Frame
	if len(b) < 4 {
		return f, false, ErrTruncated
	}
	e := &fcTable[b[0]]
	f.Type, f.Subtype, f.Flags = e.typ, e.subtype, Flags(b[1])
	f.Duration = uint16(b[2]) | uint16(b[3])<<8
	hl := int(e.hdrLen)
	if len(b) < hl {
		if len(b) >= 10 {
			f.Addr1 = MAC(b[4:10])
		}
		return f, false, ErrTruncated
	}
	f.Addr1 = MAC(b[4:10])
	if hl > 10 {
		f.Addr2 = MAC(b[10:16])
	}
	if hl > 16 {
		f.Addr3 = MAC(b[16:22])
		sc := uint16(b[22]) | uint16(b[23])<<8
		f.Frag = uint8(sc & 0x0f)
		f.Seq = sc >> 4
	}
	if len(b) >= hl+fcsLen {
		want := binary.LittleEndian.Uint32(b[len(b)-fcsLen:])
		if crc32.ChecksumIEEE(b[:len(b)-fcsLen]) == want {
			f.Body = b[hl : len(b)-fcsLen]
			return f, true, nil
		}
	}
	// Snapped (or corrupted): everything past the header is body.
	f.Body = b[hl:]
	return f, false, nil
}

// String renders a one-line summary of the frame for debugging and the
// Figure-2-style visualization.
func (f *Frame) String() string {
	name := SubtypeName(f.Type, f.Subtype)
	switch {
	case f.Type == TypeControl && (f.Subtype == SubtypeACK || f.Subtype == SubtypeCTS):
		return fmt.Sprintf("%s ra=%v dur=%d", name, f.Addr1, f.Duration)
	case f.Type == TypeControl:
		return fmt.Sprintf("%s ra=%v ta=%v dur=%d", name, f.Addr1, f.Addr2, f.Duration)
	default:
		r := ""
		if f.Retry() {
			r = " retry"
		}
		return fmt.Sprintf("%s ra=%v ta=%v seq=%d dur=%d len=%d%s",
			name, f.Addr1, f.Addr2, f.Seq, f.Duration, f.WireLen(), r)
	}
}

// NewAck builds an ACK control frame addressed to ra.
func NewAck(ra MAC) Frame {
	return Frame{Header: Header{Type: TypeControl, Subtype: SubtypeACK, Addr1: ra}}
}

// NewCTSToSelf builds the CTS-to-self frame used by 802.11g protection mode.
// The duration covers the time remaining in the protected exchange.
func NewCTSToSelf(self MAC, durationUS uint16) Frame {
	return Frame{Header: Header{
		Type: TypeControl, Subtype: SubtypeCTS, Addr1: self, Duration: durationUS,
	}}
}

// NewRTS builds an RTS control frame.
func NewRTS(ra, ta MAC, durationUS uint16) Frame {
	return Frame{Header: Header{
		Type: TypeControl, Subtype: SubtypeRTS, Addr1: ra, Addr2: ta, Duration: durationUS,
	}}
}

// NewData builds a unicast or broadcast DATA frame. The ToDS/FromDS flags
// are the caller's responsibility.
func NewData(ra, ta, bssid MAC, seq uint16, body []byte) Frame {
	return Frame{
		Header: Header{
			Type: TypeData, Subtype: SubtypeDataPlain,
			Addr1: ra, Addr2: ta, Addr3: bssid, Seq: seq,
		},
		Body: body,
	}
}

// NewBeacon builds a beacon management frame for the given BSSID. The body
// carries the timestamp field and capability/SSID info the way real beacons
// do; we encode the 64-bit TSF timestamp followed by the SSID bytes, which
// is enough to make beacon bodies differ across APs and across time.
func NewBeacon(bssid MAC, seq uint16, tsf uint64, ssid string) Frame {
	body := make([]byte, 8+len(ssid))
	binary.LittleEndian.PutUint64(body[:8], tsf)
	copy(body[8:], ssid)
	return Frame{
		Header: Header{
			Type: TypeManagement, Subtype: SubtypeBeacon,
			Addr1: Broadcast, Addr2: bssid, Addr3: bssid, Seq: seq,
		},
		Body: body,
	}
}

// NewProbeReq builds a probe request from a client (broadcast destination).
func NewProbeReq(ta MAC, seq uint16, ssid string) Frame {
	return Frame{
		Header: Header{
			Type: TypeManagement, Subtype: SubtypeProbeReq,
			Addr1: Broadcast, Addr2: ta, Addr3: Broadcast, Seq: seq,
		},
		Body: []byte(ssid),
	}
}

// NewProbeResp builds a probe response from an AP to a client.
func NewProbeResp(ra, bssid MAC, seq uint16, ssid string) Frame {
	return Frame{
		Header: Header{
			Type: TypeManagement, Subtype: SubtypeProbeResp,
			Addr1: ra, Addr2: bssid, Addr3: bssid, Seq: seq,
		},
		Body: []byte(ssid),
	}
}

// NewMgmt builds a generic management frame (assoc/auth/etc.) with the given
// subtype.
func NewMgmt(sub Subtype, ra, ta, bssid MAC, seq uint16, body []byte) Frame {
	return Frame{
		Header: Header{
			Type: TypeManagement, Subtype: sub,
			Addr1: ra, Addr2: ta, Addr3: bssid, Seq: seq,
		},
		Body: body,
	}
}

// UniqueForSync reports whether a frame is a good synchronization reference
// per §4.1 of the paper: DATA or MANAGEMENT frames with distinguishing
// content and without the retry bit. ACKs, CTS, RTS and retransmitted frames
// are excluded because instances cannot be told apart. Beacons are allowed:
// their TSF timestamps make each one unique. Probe requests are excluded
// (some stations reuse sequence number zero).
func (h Header) UniqueForSync() bool {
	if h.Type == TypeControl || h.Retry() {
		return false
	}
	if h.Type == TypeManagement && h.Subtype == SubtypeProbeReq {
		return false
	}
	return true
}
