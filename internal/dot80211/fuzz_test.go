package dot80211

import (
	"bytes"
	"testing"
)

// fuzzSeedFrames covers every frame kind the simulator emits.
func fuzzSeedFrames() []Frame {
	return []Frame{
		NewAck(MAC{1, 2, 3, 4, 5, 6}),
		NewCTSToSelf(MAC{1, 2, 3, 4, 5, 6}, 300),
		NewRTS(MAC{1, 2, 3, 4, 5, 6}, MAC{6, 5, 4, 3, 2, 1}, 500),
		NewData(MAC{1, 2, 3, 4, 5, 6}, MAC{6, 5, 4, 3, 2, 1}, MAC{9, 9, 9, 9, 9, 9}, 77, []byte("payload")),
		NewBeacon(MAC{0xaa, 0, 0, 0, 0, 1}, 8, 123456789, "jigsaw-net"),
		NewProbeReq(MAC{0xc2, 0, 0, 0, 0, 1}, 0, "ssid"),
		NewProbeResp(MAC{0xc2, 0, 0, 0, 0, 1}, MAC{0xaa, 0, 0, 0, 0, 1}, 3, "ssid"),
		NewMgmt(SubtypeDisassoc, MAC{0xaa, 0, 0, 0, 0, 1}, MAC{0xc2, 0, 0, 0, 0, 1}, MAC{0xaa, 0, 0, 0, 0, 1}, 9, nil),
	}
}

// FuzzDecode: arbitrary bytes through the strict decoder must never panic,
// and a clean decode must re-encode to the original bytes (the codec is
// wire-faithful for version-0 frames, which is all Encode produces).
func FuzzDecode(f *testing.F) {
	for _, fr := range fuzzSeedFrames() {
		fr := fr
		f.Add(fr.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0x08, 0x00, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		// The frame-control word's protocol-version bits are not modeled;
		// Encode only produces version 0, so round-trip only those.
		if len(data) >= 1 && data[0]&0x03 != 0 {
			return
		}
		if got := fr.Encode(); !bytes.Equal(got, data) {
			t.Fatalf("clean decode does not round trip:\n in=%x\nout=%x", data, got)
		}
	})
}

// FuzzDecodeCapture: the snap-tolerant decoder over truncated and
// corrupted captures (what monitors actually hand the pipeline).
func FuzzDecodeCapture(f *testing.F) {
	for _, fr := range fuzzSeedFrames() {
		wire := fr.Encode()
		f.Add(wire, true)
		if len(wire) > 10 {
			f.Add(wire[:10], false) // header-only snap
		}
		if len(wire) > 24 {
			f.Add(wire[:24], false)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, _ bool) {
		fr, fcsOK, err := DecodeCapture(data)
		if err != nil {
			return
		}
		if fcsOK {
			// Validated capture: the strict decoder must agree.
			strict, serr := Decode(data)
			if serr != nil {
				t.Fatalf("DecodeCapture validated what Decode rejects: %v (%x)", serr, data)
			}
			if strict.Header != fr.Header {
				t.Fatalf("headers disagree:\n capture=%+v\n strict=%+v", fr.Header, strict.Header)
			}
		}
		// Body must alias within the input; WireLen must never go
		// negative or below the header length.
		if fr.WireLen() < 4 {
			t.Fatalf("absurd WireLen %d", fr.WireLen())
		}
	})
}
