package analysis

import (
	"fmt"

	"repro/internal/dot80211"
)

// Section is the machine-readable form of one report: the same numbers the
// text sections print, as JSON. cmd/jiganalyze -json emits one Section per
// selected report, and jigd's /reports/<pass> endpoint wraps the identical
// encoding around the latest closed window.
type Section struct {
	Pass string `json:"pass"`
	// Summary carries the report's aggregate scalars, when it has any
	// beyond the repeating unit.
	Summary any `json:"summary,omitempty"`
	// Rows is the report's repeating unit (stations, slots, pairs, …);
	// single-struct reports appear as their own only row. Always a JSON
	// array, never null.
	Rows any `json:"rows"`
}

// coverageSummary is CoverageReport minus the per-station rows.
type coverageSummary struct {
	Overall       float64 `json:"overall"`
	TotalWired    int     `json:"total_wired"`
	ClientsAt100  float64 `json:"clients_at_100"`
	APsAt100      float64 `json:"aps_at_100"`
	ClientsOver95 float64 `json:"clients_over_95"`
	APsOver95     float64 `json:"aps_over_95"`
	ClientCov     float64 `json:"client_coverage"`
	APCov         float64 `json:"ap_coverage"`
}

// interferencePair is one (s,r) row with the derived Pi/X the text section
// prints (PairStats carries only the raw counts; the probabilities are
// methods).
type interferencePair struct {
	PairStats
	Pi float64 `json:"pi"`
	X  float64 `json:"x"`
}

// interferenceSummary is InterferenceReport minus the pair rows, with the
// Fig. 9 CDF reduced to the percentiles the text section prints.
type interferenceSummary struct {
	PairsConsidered          int     `json:"pairs_considered"`
	FractionWithInterference float64 `json:"fraction_with_interference"`
	NegativePiFraction       float64 `json:"negative_pi_fraction"`
	AvgBackgroundLoss        float64 `json:"avg_background_loss"`
	SenderSplitAP            float64 `json:"sender_split_ap"`
	XP50                     float64 `json:"x_p50"`
	XP90                     float64 `json:"x_p90"`
	XP95                     float64 `json:"x_p95"`
}

// protectionSummary is ProtectionReport minus the slot rows.
type protectionSummary struct {
	PeakAffectedShare float64 `json:"peak_affected_share"`
	PotentialSpeedup  float64 `json:"potential_speedup"`
}

// roamingSummary is RoamingReport minus the event rows.
type roamingSummary struct {
	PerClient     map[dot80211.MAC]int `json:"per_client"`
	MeanLatencyUS float64              `json:"mean_latency_us"`
	DataOnly      int                  `json:"data_only"`
}

// SectionJSON converts a finalized report into its Section encoding. rep
// must be the value returned by the named pass's Finalize or
// FinalizeWindow; any other type is an error, not a panic, so callers can
// surface registry/report drift cleanly.
func SectionJSON(name string, rep Report) (Section, error) {
	sec := Section{Pass: name}
	bad := func() (Section, error) {
		return sec, fmt.Errorf("analysis: %s report has unexpected type %T", name, rep)
	}
	switch name {
	case "summary":
		s, ok := rep.(*TraceSummary)
		if !ok {
			return bad()
		}
		sec.Rows = []*TraceSummary{s}
	case "coverage":
		c, ok := rep.(*CoverageReport)
		if !ok {
			return bad()
		}
		sec.Summary = coverageSummary{
			Overall: c.Overall, TotalWired: c.TotalWired,
			ClientsAt100: c.ClientsAt100, APsAt100: c.APsAt100,
			ClientsOver95: c.ClientsOver95, APsOver95: c.APsOver95,
			ClientCov: c.ClientCoverage, APCov: c.APCoverage,
		}
		rows := c.Stations
		if rows == nil {
			rows = []StationCoverage{}
		}
		sec.Rows = rows
	case "timeseries":
		slots, ok := rep.([]ActivitySlot)
		if !ok {
			return bad()
		}
		sec.Summary = struct {
			BroadcastAirtimeShare float64 `json:"broadcast_airtime_share"`
		}{BroadcastAirtimeShare(slots)}
		if slots == nil {
			slots = []ActivitySlot{}
		}
		sec.Rows = slots
	case "interference":
		r, ok := rep.(*InterferenceReport)
		if !ok {
			return bad()
		}
		sec.Summary = interferenceSummary{
			PairsConsidered:          r.PairsConsidered,
			FractionWithInterference: r.FractionWithInterference,
			NegativePiFraction:       r.NegativePiFraction,
			AvgBackgroundLoss:        r.AvgBackgroundLoss,
			SenderSplitAP:            r.SenderSplitAP,
			XP50:                     r.XPercentile(0.5),
			XP90:                     r.XPercentile(0.9),
			XP95:                     r.XPercentile(0.95),
		}
		rows := make([]interferencePair, 0, len(r.Pairs))
		for i := range r.Pairs {
			p := &r.Pairs[i]
			rows = append(rows, interferencePair{PairStats: *p, Pi: p.Pi(), X: p.X()})
		}
		sec.Rows = rows
	case "protection":
		r, ok := rep.(*ProtectionReport)
		if !ok {
			return bad()
		}
		sec.Summary = protectionSummary{
			PeakAffectedShare: r.PeakAffectedShare,
			PotentialSpeedup:  r.PotentialSpeedup,
		}
		rows := r.Slots
		if rows == nil {
			rows = []ProtectionSlot{}
		}
		sec.Rows = rows
	case "diagnose":
		d, ok := rep.([]StationDiagnosis)
		if !ok {
			return bad()
		}
		if d == nil {
			d = []StationDiagnosis{}
		}
		sec.Rows = d
	case "tcploss":
		r, ok := rep.(*TCPLossReport)
		if !ok {
			return bad()
		}
		sec.Rows = []*TCPLossReport{r}
	case "roam":
		r, ok := rep.(*RoamingReport)
		if !ok {
			return bad()
		}
		per := r.PerClient
		if per == nil {
			per = map[dot80211.MAC]int{}
		}
		sec.Summary = roamingSummary{
			PerClient: per, MeanLatencyUS: r.MeanLatencyUS, DataOnly: r.DataOnly,
		}
		rows := r.Events
		if rows == nil {
			rows = []HandoffEvent{}
		}
		sec.Rows = rows
	case "viz":
		s, ok := rep.(string)
		if !ok {
			return bad()
		}
		sec.Rows = []string{s}
	default:
		return sec, fmt.Errorf("analysis: no JSON encoding for pass %q", name)
	}
	return sec, nil
}
