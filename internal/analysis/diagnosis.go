package analysis

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/dot80211"
	"repro/internal/llc"
	"repro/internal/unify"
)

// StationDiagnosis is the per-station performance report behind the paper's
// closing questions (§8): "Why is the network slow?" and "How should it be
// fixed?". It aggregates the cross-layer evidence the unified trace makes
// available for one transmitter.
type StationDiagnosis struct {
	MAC       dot80211.MAC
	Exchanges int
	Delivered int
	Failed    int
	// RetryRate is retransmission attempts per unicast exchange.
	RetryRate float64
	// MeanRateMbps is the airtime-weighted mean data rate.
	MeanRateMbps float64
	// AirtimeUS is the station's total transmit airtime; AirtimeShare is
	// its share of all airtime in the trace.
	AirtimeUS    int64
	AirtimeShare float64
	// ProtectionUS is airtime spent on CTS-to-self overhead.
	ProtectionUS int64
	// InterferenceExposure is the fraction of the station's data attempts
	// that overlapped another transmission.
	InterferenceExposure float64
	// Findings are human-readable diagnoses derived from the numbers.
	Findings []string
}

// Diagnosis thresholds.
const (
	diagRetryRate    = 0.30 // retries per exchange considered "lossy"
	diagLowRateMbps  = 12.0 // a g-capable station stuck below this is stuck
	diagProtShare    = 0.20 // protection overhead share of own airtime
	diagAirtimeShare = 0.25 // single station consuming this much channel
	diagInterference = 0.25
)

// diagAcc is one station's accumulator.
type diagAcc struct {
	d          StationDiagnosis
	rateWeight float64
	attempts   int
	overlapped int
}

// DiagnosisPass builds the §8 per-station reports incrementally: airtime,
// rates and protection overhead from the jframe stream (which also feeds
// the sliding overlap window), delivery/retry/interference-exposure
// evidence from the exchange stream, deferred like the interference pass
// so overlap queries see a complete window. State is O(stations + window).
type DiagnosisPass struct {
	named
	accs     map[dot80211.MAC]*diagAcc
	idx      overlapIndex
	pending  exchangeDeferral
	totalAir int64
}

// NewDiagnosisPass builds the §8 diagnosis pass.
func NewDiagnosisPass() *DiagnosisPass {
	return &DiagnosisPass{
		named: "diagnose",
		accs:  make(map[dot80211.MAC]*diagAcc),
		idx:   newOverlapIndex(),
	}
}

func (p *DiagnosisPass) get(m dot80211.MAC) *diagAcc {
	a := p.accs[m]
	if a == nil {
		a = &diagAcc{d: StationDiagnosis{MAC: m}}
		p.accs[m] = a
	}
	return a
}

// ObserveJFrame implements Pass: airtime and rate accounting plus the
// overlap window (valid frames only, as the legacy index built).
func (p *DiagnosisPass) ObserveJFrame(j *unify.JFrame) {
	p.pending.noteJFrame(j.UnivUS)
	defer p.pending.flush(p.process)
	if !j.Valid {
		return
	}
	s, e := frameInterval(j)
	p.idx.add(j.Channel, s, e)
	tx := j.Frame.Transmitter()
	air := j.AirtimeUS()
	p.totalAir += air
	if j.Frame.IsCTS() {
		// CTS-to-self overhead accrues to the protected station
		// (its own MAC rides in Addr1).
		a := p.get(j.Frame.Addr1)
		a.d.ProtectionUS += air
		a.d.AirtimeUS += air
		return
	}
	if tx.IsZero() {
		return
	}
	a := p.get(tx)
	a.d.AirtimeUS += air
	if j.Frame.IsData() {
		a.d.MeanRateMbps += j.Rate.Mbps() * float64(air)
		a.rateWeight += float64(air)
	}
}

// ObserveExchange implements Pass.
func (p *DiagnosisPass) ObserveExchange(ex *llc.Exchange) {
	p.pending.push(ex)
	p.pending.flush(p.process)
}

func (p *DiagnosisPass) process(ex *llc.Exchange) {
	p.idx.prune(ex.CloseUS - overlapPruneHorizonUS)
	if ex.Transmitter.IsZero() {
		return
	}
	a := p.get(ex.Transmitter)
	a.d.Exchanges++
	switch ex.Delivery {
	case llc.DeliveryObserved, llc.DeliveryInferred:
		a.d.Delivered++
	case llc.DeliveryFailed:
		a.d.Failed++
	}
	if !ex.Broadcast {
		a.d.RetryRate += float64(ex.Retransmissions())
	}
	for _, at := range ex.Attempts {
		if at.Data == nil || !at.Data.Frame.IsUnicastData() {
			continue
		}
		a.attempts++
		if p.idx.overlapping(at.Data.Channel, at.Data.UnivUS, at.Data.EndUS()) {
			a.overlapped++
		}
	}
}

// Finalize implements Pass, returning []StationDiagnosis sorted by airtime
// (the biggest channel consumers first).
func (p *DiagnosisPass) Finalize() Report { return p.finalize() }

func (p *DiagnosisPass) finalize() []StationDiagnosis {
	p.pending.drain(p.process)
	out := make([]StationDiagnosis, 0, len(p.accs))
	for _, a := range p.accs {
		d := a.d
		if d.Exchanges > 0 {
			d.RetryRate /= float64(d.Exchanges)
		}
		if a.rateWeight > 0 {
			d.MeanRateMbps /= a.rateWeight
		}
		if p.totalAir > 0 {
			d.AirtimeShare = float64(d.AirtimeUS) / float64(p.totalAir)
		}
		if a.attempts > 0 {
			d.InterferenceExposure = float64(a.overlapped) / float64(a.attempts)
		}
		d.Findings = findings(&d)
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AirtimeUS != out[j].AirtimeUS {
			return out[i].AirtimeUS > out[j].AirtimeUS
		}
		// Total order: the slice was fed from map iteration, so airtime
		// ties (idle stations) need a deterministic break.
		return bytes.Compare(out[i].MAC[:], out[j].MAC[:]) < 0
	})
	return out
}

// FinalizeWindow implements WindowedPass: drain the deferral, report the
// window's per-station diagnoses, then drop all accumulators and the
// interval window for a fresh start.
func (p *DiagnosisPass) FinalizeWindow(int64) Report {
	rep := p.finalize()
	p.accs = make(map[dot80211.MAC]*diagAcc)
	p.idx = newOverlapIndex()
	p.pending = exchangeDeferral{}
	p.totalAir = 0
	return rep
}

// Evict implements WindowedPass: prune the sliding interval window, as
// the interference pass does.
func (p *DiagnosisPass) Evict(beforeUS int64) {
	p.idx.prune(beforeUS - overlapPruneHorizonUS)
}

// Diagnose builds per-station reports from retained slices. Compatibility
// wrapper over DiagnosisPass.
func Diagnose(jframes []*unify.JFrame, exchanges []*llc.Exchange) []StationDiagnosis {
	return drivePass(NewDiagnosisPass(), jframes, exchanges).([]StationDiagnosis)
}

// findings turns the aggregates into actionable diagnoses.
func findings(d *StationDiagnosis) []string {
	var f []string
	if d.RetryRate > diagRetryRate {
		f = append(f, fmt.Sprintf("lossy link: %.2f retries per exchange", d.RetryRate))
	}
	if d.MeanRateMbps > 0 && d.MeanRateMbps < diagLowRateMbps {
		f = append(f, fmt.Sprintf("low data rate: averaging %.1f Mbps", d.MeanRateMbps))
	}
	if d.AirtimeUS > 0 && float64(d.ProtectionUS) > diagProtShare*float64(d.AirtimeUS) {
		f = append(f, fmt.Sprintf("protection overhead: %.0f%% of airtime spent on CTS-to-self",
			100*float64(d.ProtectionUS)/float64(d.AirtimeUS)))
	}
	if d.AirtimeShare > diagAirtimeShare {
		f = append(f, fmt.Sprintf("airtime hog: %.0f%% of the channel", 100*d.AirtimeShare))
	}
	if d.InterferenceExposure > diagInterference {
		f = append(f, fmt.Sprintf("interference exposure: %.0f%% of attempts overlapped",
			100*d.InterferenceExposure))
	}
	if d.Failed > 0 && d.Exchanges > 0 && float64(d.Failed) > 0.05*float64(d.Exchanges) {
		f = append(f, fmt.Sprintf("abandoned exchanges: %d of %d", d.Failed, d.Exchanges))
	}
	return f
}
