package analysis

import (
	"fmt"
	"sort"

	"repro/internal/dot80211"
	"repro/internal/llc"
	"repro/internal/unify"
)

// StationDiagnosis is the per-station performance report behind the paper's
// closing questions (§8): "Why is the network slow?" and "How should it be
// fixed?". It aggregates the cross-layer evidence the unified trace makes
// available for one transmitter.
type StationDiagnosis struct {
	MAC       dot80211.MAC
	Exchanges int
	Delivered int
	Failed    int
	// RetryRate is retransmission attempts per unicast exchange.
	RetryRate float64
	// MeanRateMbps is the airtime-weighted mean data rate.
	MeanRateMbps float64
	// AirtimeUS is the station's total transmit airtime; AirtimeShare is
	// its share of all airtime in the trace.
	AirtimeUS    int64
	AirtimeShare float64
	// ProtectionUS is airtime spent on CTS-to-self overhead.
	ProtectionUS int64
	// InterferenceExposure is the fraction of the station's data attempts
	// that overlapped another transmission.
	InterferenceExposure float64
	// Findings are human-readable diagnoses derived from the numbers.
	Findings []string
}

// Diagnosis thresholds.
const (
	diagRetryRate    = 0.30 // retries per exchange considered "lossy"
	diagLowRateMbps  = 12.0 // a g-capable station stuck below this is stuck
	diagProtShare    = 0.20 // protection overhead share of own airtime
	diagAirtimeShare = 0.25 // single station consuming this much channel
	diagInterference = 0.25
)

// Diagnose builds per-station reports from the merged trace, sorted by
// airtime (the biggest channel consumers first).
func Diagnose(jframes []*unify.JFrame, exchanges []*llc.Exchange) []StationDiagnosis {
	type acc struct {
		d          StationDiagnosis
		rateWeight float64
		attempts   int
		overlapped int
	}
	accs := map[dot80211.MAC]*acc{}
	get := func(m dot80211.MAC) *acc {
		a := accs[m]
		if a == nil {
			a = &acc{d: StationDiagnosis{MAC: m}}
			accs[m] = a
		}
		return a
	}

	// Airtime & rates from jframes; overlap via interval index.
	type iv struct{ start, end int64 }
	byCh := map[dot80211.Channel][]iv{}
	var totalAir int64
	for _, j := range jframes {
		if !j.Valid {
			continue
		}
		end := j.EndUS()
		if end == j.UnivUS {
			end = j.UnivUS + 1
		}
		byCh[j.Channel] = append(byCh[j.Channel], iv{j.UnivUS, end})
		tx := j.Frame.Transmitter()
		air := j.AirtimeUS()
		totalAir += air
		if j.Frame.IsCTS() {
			// CTS-to-self overhead accrues to the protected station
			// (its own MAC rides in Addr1).
			a := get(j.Frame.Addr1)
			a.d.ProtectionUS += air
			a.d.AirtimeUS += air
			continue
		}
		if tx.IsZero() {
			continue
		}
		a := get(tx)
		a.d.AirtimeUS += air
		if j.Frame.IsData() {
			a.d.MeanRateMbps += j.Rate.Mbps() * float64(air)
			a.rateWeight += float64(air)
		}
	}
	for ch := range byCh {
		ivs := byCh[ch]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		byCh[ch] = ivs
	}
	overlapping := func(ch dot80211.Channel, s, e int64) bool {
		ivs := byCh[ch]
		i := sort.Search(len(ivs), func(k int) bool { return ivs[k].start >= e })
		hits := 0
		for k := i - 1; k >= 0; k-- {
			if ivs[k].end <= s {
				if s-ivs[k].start > 15_000 {
					break
				}
				continue
			}
			if hits++; hits >= 2 {
				return true
			}
		}
		return false
	}

	for _, ex := range exchanges {
		if ex.Transmitter.IsZero() {
			continue
		}
		a := get(ex.Transmitter)
		a.d.Exchanges++
		switch ex.Delivery {
		case llc.DeliveryObserved, llc.DeliveryInferred:
			a.d.Delivered++
		case llc.DeliveryFailed:
			a.d.Failed++
		}
		if !ex.Broadcast {
			a.d.RetryRate += float64(ex.Retransmissions())
		}
		for _, at := range ex.Attempts {
			if at.Data == nil || !at.Data.Frame.IsUnicastData() {
				continue
			}
			a.attempts++
			if overlapping(at.Data.Channel, at.Data.UnivUS, at.Data.EndUS()) {
				a.overlapped++
			}
		}
	}

	out := make([]StationDiagnosis, 0, len(accs))
	for _, a := range accs {
		d := a.d
		if d.Exchanges > 0 {
			d.RetryRate /= float64(d.Exchanges)
		}
		if a.rateWeight > 0 {
			d.MeanRateMbps /= a.rateWeight
		}
		if totalAir > 0 {
			d.AirtimeShare = float64(d.AirtimeUS) / float64(totalAir)
		}
		if a.attempts > 0 {
			d.InterferenceExposure = float64(a.overlapped) / float64(a.attempts)
		}
		d.Findings = findings(&d)
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AirtimeUS > out[j].AirtimeUS })
	return out
}

// findings turns the aggregates into actionable diagnoses.
func findings(d *StationDiagnosis) []string {
	var f []string
	if d.RetryRate > diagRetryRate {
		f = append(f, fmt.Sprintf("lossy link: %.2f retries per exchange", d.RetryRate))
	}
	if d.MeanRateMbps > 0 && d.MeanRateMbps < diagLowRateMbps {
		f = append(f, fmt.Sprintf("low data rate: averaging %.1f Mbps", d.MeanRateMbps))
	}
	if d.AirtimeUS > 0 && float64(d.ProtectionUS) > diagProtShare*float64(d.AirtimeUS) {
		f = append(f, fmt.Sprintf("protection overhead: %.0f%% of airtime spent on CTS-to-self",
			100*float64(d.ProtectionUS)/float64(d.AirtimeUS)))
	}
	if d.AirtimeShare > diagAirtimeShare {
		f = append(f, fmt.Sprintf("airtime hog: %.0f%% of the channel", 100*d.AirtimeShare))
	}
	if d.InterferenceExposure > diagInterference {
		f = append(f, fmt.Sprintf("interference exposure: %.0f%% of attempts overlapped",
			100*d.InterferenceExposure))
	}
	if d.Failed > 0 && d.Exchanges > 0 && float64(d.Failed) > 0.05*float64(d.Exchanges) {
		f = append(f, fmt.Sprintf("abandoned exchanges: %d of %d", d.Failed, d.Exchanges))
	}
	return f
}
