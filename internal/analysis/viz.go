package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/unify"
)

// VizPass collects the jframes inside one time window from the stream and
// renders a Figure-2-style view on Finalize. Memory is O(window), so the
// out-of-core merge can produce a visualization without retaining the
// trace. The window is fixed either absolutely (NewVizPass) or relative to
// the first jframe observed (NewVizPassRelative — how the cmds frame "2s
// into the trace").
type VizPass struct {
	named
	noExchange
	fromUS, toUS int64
	width        int

	relative         bool
	relFromUS, durUS int64
	started          bool

	// O(window) retention, clamped to the requested render span. Each
	// buffered jframe carries a reference (Retain on append, Release when
	// the window is dropped).
	window []*unify.JFrame
}

// NewVizPass renders [fromUS, toUS) in absolute universal time.
func NewVizPass(fromUS, toUS int64, width int) *VizPass {
	return &VizPass{named: "viz", fromUS: fromUS, toUS: toUS, width: width}
}

// NewVizPassRelative renders [first+relFromUS, first+relFromUS+durUS),
// anchored on the first jframe in the stream.
func NewVizPassRelative(relFromUS, durUS int64, width int) *VizPass {
	return &VizPass{named: "viz", relative: true, relFromUS: relFromUS, durUS: durUS, width: width}
}

// ObserveJFrame implements Pass.
func (p *VizPass) ObserveJFrame(j *unify.JFrame) {
	if p.relative && !p.started {
		p.started = true
		p.fromUS = j.UnivUS + p.relFromUS
		p.toUS = p.fromUS + p.durUS
	}
	if j.UnivUS < p.fromUS || j.UnivUS >= p.toUS {
		return
	}
	j.Retain()
	p.window = append(p.window, j)
}

// Finalize implements Pass, returning the rendered string.
func (p *VizPass) Finalize() Report { return p.finalize() }

func (p *VizPass) finalize() string {
	return renderWindow(p.window, p.fromUS, p.toUS, p.width)
}

// FinalizeWindow implements WindowedPass: render the collected span and
// drop it. In relative mode the next window re-anchors on its first
// jframe, so a live run renders one span per report window.
func (p *VizPass) FinalizeWindow(int64) Report {
	rep := p.finalize()
	for _, j := range p.window {
		j.Release()
	}
	p.window = nil
	if p.relative {
		p.started = false
		p.fromUS, p.toUS = 0, 0
	}
	return rep
}

// Evict implements WindowedPass: retention is already clamped to the
// render span, which the window reset drops.
func (p *VizPass) Evict(int64) {}

// Visualize renders a Figure-2-style view of a slice of the synchronized
// trace: time on the x-axis, one row per radio, a mark where each radio
// heard each jframe ('#' decoded, 'x' corrupt, '.' phy error), and a legend
// line per jframe. Compatibility wrapper over VizPass.
func Visualize(jframes []*unify.JFrame, fromUS, toUS int64, width int) string {
	p := NewVizPass(fromUS, toUS, width)
	for _, j := range jframes {
		p.ObserveJFrame(j)
	}
	out := p.finalize()
	for _, j := range p.window {
		j.Release()
	}
	return out
}

// renderWindow draws the collected window.
func renderWindow(window []*unify.JFrame, fromUS, toUS int64, width int) string {
	if width < 20 {
		width = 80
	}
	radios := map[int32]bool{}
	for _, j := range window {
		for _, in := range j.Instances {
			radios[in.Radio] = true
		}
	}
	if len(window) == 0 {
		return "(no jframes in window)\n"
	}
	ids := make([]int32, 0, len(radios))
	for r := range radios {
		ids = append(ids, r)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	span := toUS - fromUS
	col := func(us int64) int {
		c := int((us - fromUS) * int64(width) / span)
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}

	rows := make(map[int32][]byte, len(ids))
	for _, r := range ids {
		rows[r] = []byte(strings.Repeat(" ", width))
	}
	for _, j := range window {
		for _, in := range j.Instances {
			ch := byte('#')
			if in.PhyErr {
				ch = '.'
			} else if !in.FCSOK {
				ch = 'x'
			}
			rows[in.Radio][col(in.UnivUS)] = ch
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "universal time %d..%d us (%d us/col)\n", fromUS, toUS, span/int64(width))
	for _, r := range ids {
		fmt.Fprintf(&b, "r%03d |%s|\n", r, rows[r])
	}
	b.WriteString("frames:\n")
	for _, j := range window {
		tag, desc := "valid", j.Frame.String()
		if j.PhyOnly {
			tag, desc = "phyerr", "(undecodable energy)"
		} else if !j.Valid {
			tag = "corrupt"
		}
		fmt.Fprintf(&b, "  t=%-10d %-7s x%-2d disp=%-3dus %s\n",
			j.UnivUS, tag, len(j.Instances), j.DispersionUS, desc)
	}
	return b.String()
}
