package analysis

import (
	"repro/internal/dot80211"
	"repro/internal/unify"
)

// ActivitySlot is one time bucket of Fig. 8: active stations and the
// traffic split.
type ActivitySlot struct {
	StartUS       int64
	ActiveClients int
	ActiveAPs     int
	DataBytes     int64 // unicast + broadcast data
	MgmtBytes     int64 // management/control excluding beacons (ACK, assoc…)
	BeaconBytes   int64
	ARPBytes      int64 // broadcast ARP traffic (the Vernier pathology)
	// BroadcastAirtimeUS measures the channel time consumed by broadcast
	// frames (paper: ~10% of any monitor's channel view).
	BroadcastAirtimeUS int64
	TotalAirtimeUS     int64
}

// activity tracks the distinct stations communicating within a slot.
type activity struct {
	clients map[dot80211.MAC]bool
	aps     map[dot80211.MAC]bool
}

// TimeSeries builds Fig. 8 from the jframe stream: per-slot active clients
// and APs (active = communicating, not merely beaconing; an AP only sending
// beacons is not active) and the byte split into Data / Management /
// Beacon / ARP categories.
func TimeSeries(jframes []*unify.JFrame, slotUS int64) []ActivitySlot {
	if slotUS <= 0 || len(jframes) == 0 {
		return nil
	}
	start := jframes[0].UnivUS
	nSlots := int((jframes[len(jframes)-1].UnivUS-start)/slotUS) + 1
	slots := make([]ActivitySlot, nSlots)
	acts := make([]activity, nSlots)
	for i := range slots {
		slots[i].StartUS = start + int64(i)*slotUS
		acts[i] = activity{clients: map[dot80211.MAC]bool{}, aps: map[dot80211.MAC]bool{}}
	}

	for _, j := range jframes {
		if !j.Valid {
			continue
		}
		idx := int((j.UnivUS - start) / slotUS)
		if idx < 0 || idx >= nSlots {
			continue
		}
		s, a := &slots[idx], &acts[idx]
		f := &j.Frame
		n := int64(j.WireLen)
		if n == 0 {
			n = int64(len(j.Wire))
		}
		air := j.AirtimeUS()
		s.TotalAirtimeUS += air
		if f.Addr1.IsMulticast() {
			s.BroadcastAirtimeUS += air
		}
		switch {
		case f.IsBeacon():
			s.BeaconBytes += n
		case f.IsData():
			if isARP(f.Body) {
				s.ARPBytes += n
			} else {
				s.DataBytes += n
			}
			// The DS bits separate AP from client transmissions.
			switch {
			case f.Flags&dot80211.FlagFromDS != 0:
				a.aps[f.Addr2] = true
				if !f.Addr1.IsMulticast() {
					a.clients[f.Addr1] = true
				}
			case f.Flags&dot80211.FlagToDS != 0:
				a.clients[f.Addr2] = true
				a.aps[f.Addr1] = true
			default:
				a.clients[f.Addr2] = true
			}
		default:
			s.MgmtBytes += n
			// Association activity also marks a client active.
			if f.Type == dot80211.TypeManagement &&
				(f.Subtype == dot80211.SubtypeAssocReq || f.Subtype == dot80211.SubtypeAuth) {
				a.clients[f.Addr2] = true
			}
		}
	}
	for i := range slots {
		slots[i].ActiveClients = len(acts[i].clients)
		slots[i].ActiveAPs = len(acts[i].aps)
	}
	return slots
}

// isARP recognizes the broadcast ARP payloads in the trace.
func isARP(body []byte) bool {
	return len(body) >= 3 && body[0] == 'A' && body[1] == 'R' && body[2] == 'P'
}

// BroadcastAirtimeShare aggregates the broadcast share of airtime across a
// series (paper: broadcast traffic regularly consumes 10% of the channel).
func BroadcastAirtimeShare(slots []ActivitySlot) float64 {
	var bc, tot int64
	for _, s := range slots {
		bc += s.BroadcastAirtimeUS
		tot += s.TotalAirtimeUS
	}
	if tot == 0 {
		return 0
	}
	return float64(bc) / float64(tot)
}
