package analysis

import (
	"repro/internal/dot80211"
	"repro/internal/unify"
)

// ActivitySlot is one time bucket of Fig. 8: active stations and the
// traffic split.
type ActivitySlot struct {
	StartUS       int64
	ActiveClients int
	ActiveAPs     int
	DataBytes     int64 // unicast + broadcast data
	MgmtBytes     int64 // management/control excluding beacons (ACK, assoc…)
	BeaconBytes   int64
	ARPBytes      int64 // broadcast ARP traffic (the Vernier pathology)
	// BroadcastAirtimeUS measures the channel time consumed by broadcast
	// frames (paper: ~10% of any monitor's channel view).
	BroadcastAirtimeUS int64
	TotalAirtimeUS     int64
}

// activity tracks the distinct stations communicating within a slot.
type activity struct {
	clients map[dot80211.MAC]bool
	aps     map[dot80211.MAC]bool
}

// TimeSeriesPass builds Fig. 8 incrementally from the jframe stream:
// per-slot active clients and APs (active = communicating, not merely
// beaconing; an AP only sending beacons is not active) and the byte split
// into Data / Management / Beacon / ARP categories. Memory is O(slots ×
// stations active per slot), independent of trace length.
type TimeSeriesPass struct {
	named
	noExchange
	slotUS  int64
	started bool
	startUS int64 // first jframe in stream order anchors slot 0
	lastUS  int64 // last jframe in stream order bounds the slot count
	slots   []ActivitySlot
	acts    []activity
}

// NewTimeSeriesPass buckets activity into slotUS-wide slots.
func NewTimeSeriesPass(slotUS int64) *TimeSeriesPass {
	return &TimeSeriesPass{named: "timeseries", slotUS: slotUS}
}

// grow extends the slot arrays through index idx.
func (p *TimeSeriesPass) grow(idx int) {
	for len(p.slots) <= idx {
		i := len(p.slots)
		p.slots = append(p.slots, ActivitySlot{StartUS: p.startUS + int64(i)*p.slotUS})
		p.acts = append(p.acts, activity{clients: map[dot80211.MAC]bool{}, aps: map[dot80211.MAC]bool{}})
	}
}

// ObserveJFrame implements Pass.
func (p *TimeSeriesPass) ObserveJFrame(j *unify.JFrame) {
	if p.slotUS <= 0 {
		return
	}
	if !p.started {
		p.started = true
		p.startUS = j.UnivUS
	}
	p.lastUS = j.UnivUS
	if !j.Valid {
		return
	}
	idx := int((j.UnivUS - p.startUS) / p.slotUS)
	if idx < 0 {
		return
	}
	p.grow(idx)
	s, a := &p.slots[idx], &p.acts[idx]
	f := &j.Frame
	n := int64(j.WireLen)
	if n == 0 {
		n = int64(len(j.Wire))
	}
	air := j.AirtimeUS()
	s.TotalAirtimeUS += air
	if f.Addr1.IsMulticast() {
		s.BroadcastAirtimeUS += air
	}
	switch {
	case f.IsBeacon():
		s.BeaconBytes += n
	case f.IsData():
		if isARP(f.Body) {
			s.ARPBytes += n
		} else {
			s.DataBytes += n
		}
		// The DS bits separate AP from client transmissions.
		switch {
		case f.Flags&dot80211.FlagFromDS != 0:
			a.aps[f.Addr2] = true
			if !f.Addr1.IsMulticast() {
				a.clients[f.Addr1] = true
			}
		case f.Flags&dot80211.FlagToDS != 0:
			a.clients[f.Addr2] = true
			a.aps[f.Addr1] = true
		default:
			a.clients[f.Addr2] = true
		}
	default:
		s.MgmtBytes += n
		// Association activity also marks a client active.
		if f.Type == dot80211.TypeManagement &&
			(f.Subtype == dot80211.SubtypeAssocReq || f.Subtype == dot80211.SubtypeAuth) {
			a.clients[f.Addr2] = true
		}
	}
}

// Finalize implements Pass, returning []ActivitySlot.
func (p *TimeSeriesPass) Finalize() Report { return p.finalize() }

func (p *TimeSeriesPass) finalize() []ActivitySlot {
	if p.slotUS <= 0 || !p.started {
		return nil
	}
	// The last jframe in stream order bounds the series: activity past it
	// (emission-order stragglers) falls outside the figure, exactly as the
	// slice-based construction sized its slot array.
	nSlots := int((p.lastUS-p.startUS)/p.slotUS) + 1
	if nSlots < 0 {
		nSlots = 0
	}
	p.grow(nSlots - 1)
	slots := p.slots[:nSlots]
	for i := range slots {
		slots[i].ActiveClients = len(p.acts[i].clients)
		slots[i].ActiveAPs = len(p.acts[i].aps)
	}
	return slots
}

// FinalizeWindow implements WindowedPass: the window's activity series
// (slot 0 re-anchors at the window's first jframe, exactly like a fresh
// pass), then a fresh start. The returned slots are detached — the reset
// drops the backing arrays.
func (p *TimeSeriesPass) FinalizeWindow(int64) Report {
	rep := p.finalize()
	p.started = false
	p.startUS, p.lastUS = 0, 0
	p.slots, p.acts = nil, nil
	return rep
}

// Evict implements WindowedPass: slot state is bounded by the window and
// dropped wholesale by the reset.
func (p *TimeSeriesPass) Evict(int64) {}

// TimeSeries builds Fig. 8 from a retained jframe slice. Compatibility
// wrapper over TimeSeriesPass.
func TimeSeries(jframes []*unify.JFrame, slotUS int64) []ActivitySlot {
	p := NewTimeSeriesPass(slotUS)
	for _, j := range jframes {
		p.ObserveJFrame(j)
	}
	return p.finalize()
}

// isARP recognizes the broadcast ARP payloads in the trace.
func isARP(body []byte) bool {
	return len(body) >= 3 && body[0] == 'A' && body[1] == 'R' && body[2] == 'P'
}

// BroadcastAirtimeShare aggregates the broadcast share of airtime across a
// series (paper: broadcast traffic regularly consumes 10% of the channel).
func BroadcastAirtimeShare(slots []ActivitySlot) float64 {
	var bc, tot int64
	for _, s := range slots {
		bc += s.BroadcastAirtimeUS
		tot += s.TotalAirtimeUS
	}
	if tot == 0 {
		return 0
	}
	return float64(bc) / float64(tot)
}
