package analysis

import (
	"bytes"
	"math"
	"sort"

	"repro/internal/dot80211"
	"repro/internal/llc"
	"repro/internal/unify"
)

// PairStats accumulates the §7.2 counters for one (sender, receiver) pair:
//
//	n   transmissions, n0 without / nx with a simultaneous transmission,
//	nl0 and nlx of them lost.
type PairStats struct {
	S, R                dot80211.MAC
	N, N0, NL0, NX, NLX int
}

// Pi computes the conditional probability that a simultaneous transmission
// causes interference, normalized by the background loss rate:
//
//	Pi = [(nlx/nx) − (nl0/n0)] / (1 − nl0/n0)
func (p *PairStats) Pi() float64 {
	if p.NX == 0 || p.N0 == 0 {
		return 0
	}
	bg := float64(p.NL0) / float64(p.N0)
	if bg >= 1 {
		return 0
	}
	return (float64(p.NLX)/float64(p.NX) - bg) / (1 - bg)
}

// X is the interference loss rate: the probability that any transmission
// from s to r is lost due to interference: X = Pi · (nx/n). Negative Pi is
// truncated to zero, as in the paper (11% of pairs there).
func (p *PairStats) X() float64 {
	pi := p.Pi()
	if pi < 0 || p.N == 0 {
		return 0
	}
	return pi * float64(p.NX) / float64(p.N)
}

// BackgroundLossRate is nl0/n0.
func (p *PairStats) BackgroundLossRate() float64 {
	if p.N0 == 0 {
		return 0
	}
	return float64(p.NL0) / float64(p.N0)
}

// InterferenceReport reproduces Fig. 9 and the §7.2 headline numbers.
type InterferenceReport struct {
	Pairs []PairStats // pairs with ≥ MinPackets transmissions
	// PairsConsidered counts all (s,r) pairs before the threshold.
	PairsConsidered int
	// FractionWithInterference is the share of qualifying pairs with
	// positive Pi (paper: 88%).
	FractionWithInterference float64
	// NegativePiFraction is the share with negative Pi, truncated (11%).
	NegativePiFraction float64
	// AvgBackgroundLoss is the mean background transmission loss rate
	// (paper: 0.12).
	AvgBackgroundLoss float64
	// SenderSplitAP is the fraction of interfered pairs whose sender is an
	// AP (paper: 56% APs / 44% clients).
	SenderSplitAP float64
	// XCDF is the sorted interference loss rate across pairs (the Fig. 9
	// curve).
	XCDF []float64
}

// InterferencePass estimates co-channel interference from the unified
// trace (§7.2), incrementally. The jframe stream maintains a sliding
// per-channel interval window (overlapIndex); each exchange — deferred
// until the jframe frontier guarantees the window is complete around its
// attempts — decides, per unicast DATA attempt, (a) whether another
// transmission overlapped it in time on the same channel and (b) whether
// it was lost, aggregating the conditional-probability estimate per (s,r)
// pair. State is O(pairs + window), independent of trace length.
type InterferencePass struct {
	named
	minPackets int
	isAP       func(dot80211.MAC) bool
	idx        overlapIndex
	pending    exchangeDeferral
	pairs      map[[2]dot80211.MAC]*PairStats
}

// NewInterferencePass builds the §7.2 pass. minPackets is the per-pair
// transmission floor; isAP classifies senders for the AP/client split (nil
// disables it).
func NewInterferencePass(minPackets int, isAP func(dot80211.MAC) bool) *InterferencePass {
	return &InterferencePass{
		named: "interference", minPackets: minPackets, isAP: isAP,
		idx:   newOverlapIndex(),
		pairs: make(map[[2]dot80211.MAC]*PairStats),
	}
}

// ObserveJFrame implements Pass: index the transmission interval (every
// non-phy-error event, decodable or not, occupies air) and advance the
// deferral frontier.
func (p *InterferencePass) ObserveJFrame(j *unify.JFrame) {
	p.pending.noteJFrame(j.UnivUS)
	if !j.PhyOnly {
		s, e := frameInterval(j)
		p.idx.add(j.Channel, s, e)
	}
	p.pending.flush(p.process)
}

// ObserveExchange implements Pass.
func (p *InterferencePass) ObserveExchange(ex *llc.Exchange) {
	p.pending.push(ex)
	p.pending.flush(p.process)
}

// process scores one exchange's attempts once the interval window is
// complete around them.
func (p *InterferencePass) process(ex *llc.Exchange) {
	p.idx.prune(ex.CloseUS - overlapPruneHorizonUS)
	if ex.Broadcast {
		return
	}
	for ai, at := range ex.Attempts {
		if at.Data == nil || !at.Data.Frame.IsUnicastData() {
			continue
		}
		key := [2]dot80211.MAC{at.Transmitter, at.Receiver}
		ps := p.pairs[key]
		if ps == nil {
			ps = &PairStats{S: at.Transmitter, R: at.Receiver}
			p.pairs[key] = ps
		}
		simultaneous := p.idx.overlapping(at.Data.Channel, at.Data.UnivUS, at.Data.EndUS())
		// A transmission attempt was lost if it drew a retransmission
		// (it was not the final attempt) or the final attempt shows no
		// delivery evidence.
		lost := !at.Acked()
		if ai == len(ex.Attempts)-1 {
			switch ex.Delivery {
			case llc.DeliveryObserved, llc.DeliveryInferred:
				lost = false
			}
		}
		ps.N++
		if simultaneous {
			ps.NX++
			if lost {
				ps.NLX++
			}
		} else {
			ps.N0++
			if lost {
				ps.NL0++
			}
		}
	}
}

// Finalize implements Pass, returning the *InterferenceReport.
func (p *InterferencePass) Finalize() Report { return p.finalize() }

func (p *InterferencePass) finalize() *InterferenceReport {
	p.pending.drain(p.process)
	rep := &InterferenceReport{PairsConsidered: len(p.pairs)}
	// Aggregate in sorted key order: the float accumulation below must not
	// depend on map iteration order.
	keys := make([][2]dot80211.MAC, 0, len(p.pairs))
	for k := range p.pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if c := bytes.Compare(keys[i][0][:], keys[j][0][:]); c != 0 {
			return c < 0
		}
		return bytes.Compare(keys[i][1][:], keys[j][1][:]) < 0
	})
	var bgSum float64
	var interfered, negative, apSenders int
	for _, k := range keys {
		ps := p.pairs[k]
		if ps.N < p.minPackets {
			continue
		}
		rep.Pairs = append(rep.Pairs, *ps)
		bgSum += ps.BackgroundLossRate()
		pi := ps.Pi()
		if pi > 0 {
			interfered++
			if p.isAP != nil && p.isAP(ps.S) {
				apSenders++
			}
		} else if pi < 0 {
			negative++
		}
		rep.XCDF = append(rep.XCDF, ps.X())
	}
	sort.Float64s(rep.XCDF)
	sort.Slice(rep.Pairs, func(i, j int) bool {
		xi, xj := rep.Pairs[i].X(), rep.Pairs[j].X()
		if xi != xj {
			return xi < xj
		}
		if c := bytes.Compare(rep.Pairs[i].S[:], rep.Pairs[j].S[:]); c != 0 {
			return c < 0
		}
		return bytes.Compare(rep.Pairs[i].R[:], rep.Pairs[j].R[:]) < 0
	})
	if n := len(rep.Pairs); n > 0 {
		rep.FractionWithInterference = float64(interfered) / float64(n)
		rep.NegativePiFraction = float64(negative) / float64(n)
		rep.AvgBackgroundLoss = bgSum / float64(n)
	}
	if interfered > 0 {
		rep.SenderSplitAP = float64(apSenders) / float64(interfered)
	}
	return rep
}

// FinalizeWindow implements WindowedPass: drain the deferral, report the
// window's pair statistics, then drop every pair counter and the interval
// window for a fresh start.
func (p *InterferencePass) FinalizeWindow(int64) Report {
	rep := p.finalize()
	p.idx = newOverlapIndex()
	p.pending = exchangeDeferral{}
	p.pairs = make(map[[2]dot80211.MAC]*PairStats)
	return rep
}

// Evict implements WindowedPass: prune the sliding interval window behind
// beforeUS minus the overlap query horizon. Callers must stay at or
// behind the delivered-exchange frontier, so no later query can reach the
// pruned intervals.
func (p *InterferencePass) Evict(beforeUS int64) {
	p.idx.prune(beforeUS - overlapPruneHorizonUS)
}

// Interference estimates co-channel interference from retained slices.
// Compatibility wrapper over InterferencePass.
func Interference(jframes []*unify.JFrame, exchanges []*llc.Exchange, minPackets int, isAP func(dot80211.MAC) bool) *InterferenceReport {
	return drivePass(NewInterferencePass(minPackets, isAP), jframes, exchanges).(*InterferenceReport)
}

// XPercentile returns the p-th percentile of the interference loss rate,
// by the nearest-rank rule: the smallest X with at least a p fraction of
// pairs at or below it (rank ⌈p·n⌉, i.e. index ⌈p·n⌉−1).
func (r *InterferenceReport) XPercentile(p float64) float64 {
	n := len(r.XCDF)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return r.XCDF[i]
}
