package analysis

import (
	"sort"

	"repro/internal/dot80211"
	"repro/internal/llc"
	"repro/internal/unify"
)

// PairStats accumulates the §7.2 counters for one (sender, receiver) pair:
//
//	n   transmissions, n0 without / nx with a simultaneous transmission,
//	nl0 and nlx of them lost.
type PairStats struct {
	S, R                dot80211.MAC
	N, N0, NL0, NX, NLX int
}

// Pi computes the conditional probability that a simultaneous transmission
// causes interference, normalized by the background loss rate:
//
//	Pi = [(nlx/nx) − (nl0/n0)] / (1 − nl0/n0)
func (p *PairStats) Pi() float64 {
	if p.NX == 0 || p.N0 == 0 {
		return 0
	}
	bg := float64(p.NL0) / float64(p.N0)
	if bg >= 1 {
		return 0
	}
	return (float64(p.NLX)/float64(p.NX) - bg) / (1 - bg)
}

// X is the interference loss rate: the probability that any transmission
// from s to r is lost due to interference: X = Pi · (nx/n). Negative Pi is
// truncated to zero, as in the paper (11% of pairs there).
func (p *PairStats) X() float64 {
	pi := p.Pi()
	if pi < 0 || p.N == 0 {
		return 0
	}
	return pi * float64(p.NX) / float64(p.N)
}

// BackgroundLossRate is nl0/n0.
func (p *PairStats) BackgroundLossRate() float64 {
	if p.N0 == 0 {
		return 0
	}
	return float64(p.NL0) / float64(p.N0)
}

// InterferenceReport reproduces Fig. 9 and the §7.2 headline numbers.
type InterferenceReport struct {
	Pairs []PairStats // pairs with ≥ MinPackets transmissions
	// PairsConsidered counts all (s,r) pairs before the threshold.
	PairsConsidered int
	// FractionWithInterference is the share of qualifying pairs with
	// positive Pi (paper: 88%).
	FractionWithInterference float64
	// NegativePiFraction is the share with negative Pi, truncated (11%).
	NegativePiFraction float64
	// AvgBackgroundLoss is the mean background transmission loss rate
	// (paper: 0.12).
	AvgBackgroundLoss float64
	// SenderSplitAP is the fraction of interfered pairs whose sender is an
	// AP (paper: 56% APs / 44% clients).
	SenderSplitAP float64
	// XCDF is the sorted interference loss rate across pairs (the Fig. 9
	// curve).
	XCDF []float64
}

// Interference estimates co-channel interference from the unified trace
// (§7.2). For every unicast DATA transmission attempt it decides (a)
// whether another transmission overlapped it in time on the same channel,
// and (b) whether it was lost (no ACK captured for that attempt and the
// exchange never showed delivery evidence for it), then aggregates the
// conditional-probability estimate per (s,r) pair.
func Interference(jframes []*unify.JFrame, exchanges []*llc.Exchange, minPackets int, isAP func(dot80211.MAC) bool) *InterferenceReport {
	// Index jframe intervals per channel for overlap queries.
	type iv struct{ start, end int64 }
	byCh := make(map[dot80211.Channel][]iv)
	for _, j := range jframes {
		if j.PhyOnly {
			continue
		}
		end := j.EndUS()
		if end == j.UnivUS {
			end = j.UnivUS + 1
		}
		byCh[j.Channel] = append(byCh[j.Channel], iv{j.UnivUS, end})
	}
	for ch := range byCh {
		ivs := byCh[ch]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		byCh[ch] = ivs
	}
	// overlapping reports whether any *other* transmission overlaps
	// [s,e) on channel ch. The probe interval itself appears in the index,
	// so we require a second overlapper.
	overlapping := func(ch dot80211.Channel, s, e int64) bool {
		ivs := byCh[ch]
		// First interval with start < e, scanning left while end > s.
		i := sort.Search(len(ivs), func(k int) bool { return ivs[k].start >= e })
		hits := 0
		for k := i - 1; k >= 0; k-- {
			if ivs[k].end <= s {
				// Starts are sorted but ends are not; scan a bounded
				// window back (longest frame ≈ 12 ms).
				if s-ivs[k].start > 15_000 {
					break
				}
				continue
			}
			hits++
			if hits >= 2 {
				return true
			}
		}
		return false
	}

	pairs := make(map[[2]dot80211.MAC]*PairStats)
	for _, ex := range exchanges {
		if ex.Broadcast {
			continue
		}
		for ai, at := range ex.Attempts {
			if at.Data == nil || !at.Data.Frame.IsUnicastData() {
				continue
			}
			key := [2]dot80211.MAC{at.Transmitter, at.Receiver}
			ps := pairs[key]
			if ps == nil {
				ps = &PairStats{S: at.Transmitter, R: at.Receiver}
				pairs[key] = ps
			}
			simultaneous := overlapping(at.Data.Channel, at.Data.UnivUS, at.Data.EndUS())
			// A transmission attempt was lost if it drew a retransmission
			// (it was not the final attempt) or the final attempt shows no
			// delivery evidence.
			lost := !at.Acked()
			if ai == len(ex.Attempts)-1 {
				switch ex.Delivery {
				case llc.DeliveryObserved, llc.DeliveryInferred:
					lost = false
				}
			}
			ps.N++
			if simultaneous {
				ps.NX++
				if lost {
					ps.NLX++
				}
			} else {
				ps.N0++
				if lost {
					ps.NL0++
				}
			}
		}
	}

	rep := &InterferenceReport{PairsConsidered: len(pairs)}
	var bgSum float64
	var interfered, negative, apSenders int
	for _, ps := range pairs {
		if ps.N < minPackets {
			continue
		}
		rep.Pairs = append(rep.Pairs, *ps)
		bgSum += ps.BackgroundLossRate()
		pi := ps.Pi()
		if pi > 0 {
			interfered++
			if isAP != nil && isAP(ps.S) {
				apSenders++
			}
		} else if pi < 0 {
			negative++
		}
		rep.XCDF = append(rep.XCDF, ps.X())
	}
	sort.Float64s(rep.XCDF)
	sort.Slice(rep.Pairs, func(i, j int) bool { return rep.Pairs[i].X() < rep.Pairs[j].X() })
	if n := len(rep.Pairs); n > 0 {
		rep.FractionWithInterference = float64(interfered) / float64(n)
		rep.NegativePiFraction = float64(negative) / float64(n)
		rep.AvgBackgroundLoss = bgSum / float64(n)
	}
	if interfered > 0 {
		rep.SenderSplitAP = float64(apSenders) / float64(interfered)
	}
	return rep
}

// XPercentile returns the p-th percentile of the interference loss rate.
func (r *InterferenceReport) XPercentile(p float64) float64 {
	if len(r.XCDF) == 0 {
		return 0
	}
	i := int(p * float64(len(r.XCDF)))
	if i >= len(r.XCDF) {
		i = len(r.XCDF) - 1
	}
	return r.XCDF[i]
}
