package analysis

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/dot80211"
	"repro/internal/scenario"
)

// TestEveryPassIsWindowed pins the WindowedPass contract to the registry:
// jigd drives FinalizeWindow/Evict on whatever NewPasses returns, so a
// pass that only implements Pass would break the daemon at runtime.
func TestEveryPassIsWindowed(t *testing.T) {
	params := PassParams{
		SlotUS: 1_000_000,
		IsAP:   func(dot80211.MAC) bool { return false },
		Out:    &scenario.Output{},
	}
	for _, spec := range PassSpecs() {
		p := spec.New(params)
		if _, ok := p.(WindowedPass); !ok {
			t.Errorf("pass %q (%T) does not implement WindowedPass", spec.Name, p)
		}
	}
}

// TestSectionJSONEveryPass feeds each registry pass's empty-trace report
// through SectionJSON and checks the encoding is valid JSON with a
// non-null rows array — the shape jigd's /reports/<pass> and jiganalyze
// -json both promise.
func TestSectionJSONEveryPass(t *testing.T) {
	params := PassParams{
		SlotUS: 1_000_000,
		IsAP:   func(dot80211.MAC) bool { return false },
		Out:    &scenario.Output{},
	}
	for _, spec := range PassSpecs() {
		p := spec.New(params)
		sec, err := SectionJSON(spec.Name, p.Finalize())
		if err != nil {
			t.Errorf("SectionJSON(%q): %v", spec.Name, err)
			continue
		}
		if sec.Pass != spec.Name {
			t.Errorf("SectionJSON(%q).Pass = %q", spec.Name, sec.Pass)
		}
		b, err := json.Marshal(sec)
		if err != nil {
			t.Errorf("marshal %q section: %v", spec.Name, err)
			continue
		}
		s := string(b)
		if strings.Contains(s, `"rows":null`) || !strings.Contains(s, `"rows":`) {
			t.Errorf("%q section rows must be a non-null array: %s", spec.Name, s)
		}
		var back map[string]any
		if err := json.Unmarshal(b, &back); err != nil {
			t.Errorf("%q section does not round-trip: %v", spec.Name, err)
		}
	}
}

func TestSectionJSONRejectsWrongType(t *testing.T) {
	if _, err := SectionJSON("summary", 42); err == nil {
		t.Error("summary with an int report should fail")
	}
	if _, err := SectionJSON("nonesuch", nil); err == nil {
		t.Error("unknown pass should fail")
	}
}
