package analysis

import (
	"repro/internal/dot80211"
	"repro/internal/unify"
)

// ProtectionSlot is one time bucket of Fig. 10.
type ProtectionSlot struct {
	StartUS          int64
	ProtectedAPs     int // APs observed using protection mode
	Overprotective   int // of those, no 802.11b client in range within the practical timeout
	ActiveGClients   int // active 802.11g clients network-wide
	GOnOverprotected int // active g clients associated to overprotective APs
}

// ProtectionReport reproduces §7.3 / Fig. 10.
type ProtectionReport struct {
	Slots []ProtectionSlot
	// PeakAffectedShare is the largest per-slot share of active g clients
	// sitting behind overprotective APs (paper: 25–50% in busy periods).
	PeakAffectedShare float64
	// PotentialSpeedup is footnote 7's bound on the throughput factor a
	// protected g client could regain (≈2x).
	PotentialSpeedup float64
}

// Protection analyzes 802.11g protection-mode usage from the unified trace
// (§7.3). It observes, per slot:
//
//   - which APs use protection, from CTS-to-self transmissions by the AP or
//     its associated clients (a station's CTS-to-self carries its own MAC);
//   - which stations are 802.11b, from the PHY tag clients advertise in
//     probe/association request bodies — the passive analogue of the
//     paper's probe-response range inference;
//   - whether an 802.11b client was in range of each protecting AP within
//     the practical timeout (one minute in the paper, practicalTimeoutUS
//     here), making the AP's conservative policy "overprotective" when not.
func Protection(jframes []*unify.JFrame, practicalTimeoutUS, slotUS int64) *ProtectionReport {
	if len(jframes) == 0 || slotUS <= 0 {
		return &ProtectionReport{PotentialSpeedup: dot80211.ProtectionOverheadFactor()}
	}
	start := jframes[0].UnivUS
	nSlots := int((jframes[len(jframes)-1].UnivUS-start)/slotUS) + 1

	// Pass 1: classify stations (b/g) and map client→AP associations over
	// time; record per-AP protection evidence and per-AP b-activity times.
	phyOf := make(map[dot80211.MAC]byte) // 'b' or 'g'
	assoc := make(map[dot80211.MAC]dot80211.MAC)
	ctsBy := make(map[dot80211.MAC][]int64)   // station → CTS-to-self times
	bNearAP := make(map[dot80211.MAC][]int64) // AP → times a b client was evidently in range
	apSeen := make(map[dot80211.MAC]bool)
	type gAct struct {
		t int64
		c dot80211.MAC
	}
	var gActivity []gAct

	for _, j := range jframes {
		if !j.Valid {
			continue
		}
		f := &j.Frame
		switch {
		case f.IsBeacon():
			apSeen[f.Addr2] = true
		case f.Type == dot80211.TypeManagement &&
			(f.Subtype == dot80211.SubtypeProbeReq || f.Subtype == dot80211.SubtypeAssocReq ||
				f.Subtype == dot80211.SubtypeAuth):
			if len(f.Body) > 0 && (f.Body[0] == 'b' || f.Body[0] == 'g') {
				phyOf[f.Addr2] = f.Body[0]
			}
			if f.Subtype == dot80211.SubtypeAssocReq {
				assoc[f.Addr2] = f.Addr1
			}
		case f.IsCTS():
			// CTS-to-self: RA is the protecting transmitter itself.
			ctsBy[f.Addr1] = append(ctsBy[f.Addr1], j.UnivUS)
		case f.IsData():
			tx := f.Addr2
			if phyOf[tx] == 'b' {
				// A b client talking to its AP: evidently in range.
				if ap := dataAP(f); !ap.IsZero() {
					bNearAP[ap] = append(bNearAP[ap], j.UnivUS)
				}
			}
			if phyOf[tx] == 'g' && f.Flags&dot80211.FlagToDS != 0 {
				gActivity = append(gActivity, gAct{j.UnivUS, tx})
			}
		}
	}
	// protectionAPs: stations emitting CTS-to-self that are APs, plus APs
	// whose associated clients emit CTS-to-self.
	protAP := make(map[dot80211.MAC][]int64)
	for sta, times := range ctsBy {
		switch {
		case apSeen[sta]:
			protAP[sta] = append(protAP[sta], times...)
		default:
			if ap, ok := assoc[sta]; ok {
				protAP[ap] = append(protAP[ap], times...)
			}
		}
	}

	// Pass 2: per-slot judgments.
	rep := &ProtectionReport{PotentialSpeedup: dot80211.ProtectionOverheadFactor()}
	rep.Slots = make([]ProtectionSlot, nSlots)
	for i := range rep.Slots {
		rep.Slots[i].StartUS = start + int64(i)*slotUS
	}
	slotOf := func(us int64) int { return int((us - start) / slotUS) }

	// Active g clients per slot.
	gPerSlot := make([]map[dot80211.MAC]bool, nSlots)
	for _, ga := range gActivity {
		i := slotOf(ga.t)
		if i < 0 || i >= nSlots {
			continue
		}
		if gPerSlot[i] == nil {
			gPerSlot[i] = map[dot80211.MAC]bool{}
		}
		gPerSlot[i][ga.c] = true
	}

	// Per slot: protection state per AP and overprotectiveness.
	for i := range rep.Slots {
		s := &rep.Slots[i]
		slotStart := s.StartUS
		slotEnd := slotStart + slotUS
		overprotective := map[dot80211.MAC]bool{}
		for ap, times := range protAP {
			inSlot := false
			for _, t := range times {
				if t >= slotStart && t < slotEnd {
					inSlot = true
					break
				}
			}
			if !inSlot {
				continue
			}
			s.ProtectedAPs++
			// Was any b client in range within the practical timeout
			// before the end of this slot?
			needed := false
			for _, t := range bNearAP[ap] {
				if t >= slotStart-practicalTimeoutUS && t < slotEnd {
					needed = true
					break
				}
			}
			if !needed {
				s.Overprotective++
				overprotective[ap] = true
			}
		}
		for c := range gPerSlot[i] {
			s.ActiveGClients++
			if overprotective[assoc[c]] {
				s.GOnOverprotected++
			}
		}
		if s.ActiveGClients > 0 {
			share := float64(s.GOnOverprotected) / float64(s.ActiveGClients)
			if share > rep.PeakAffectedShare {
				rep.PeakAffectedShare = share
			}
		}
	}
	return rep
}

// dataAP extracts the AP side of a data frame from its DS bits.
func dataAP(f *dot80211.Frame) dot80211.MAC {
	switch {
	case f.Flags&dot80211.FlagToDS != 0:
		return f.Addr1
	case f.Flags&dot80211.FlagFromDS != 0:
		return f.Addr2
	}
	return dot80211.MAC{}
}

// TCPLossReport reproduces Fig. 11: the per-flow TCP loss rate CDF with the
// wireless/wired split.
type TCPLossReport struct {
	Flows         int
	LossRates     []float64 // sorted per-flow loss rates
	WirelessShare float64   // share of classified losses that were wireless
	TotalLosses   int
	WirelessLoss  int
	WiredLoss     int
}

// TCPLoss summarizes transport losses over handshake-complete flows.
func TCPLoss(rates []FlowLoss) *TCPLossReport {
	rep := &TCPLossReport{Flows: len(rates)}
	for _, r := range rates {
		rep.LossRates = append(rep.LossRates, r.LossRate)
		rep.TotalLosses += r.Losses
		rep.WirelessLoss += r.WirelessLoss
		rep.WiredLoss += r.WiredLoss
	}
	if cl := rep.WirelessLoss + rep.WiredLoss; cl > 0 {
		rep.WirelessShare = float64(rep.WirelessLoss) / float64(cl)
	}
	return rep
}

// FlowLoss mirrors transport.FlowLossRate without importing it here (the
// caller converts); it keeps analysis decoupled from transport internals.
type FlowLoss struct {
	DataSegs     int
	Losses       int
	WirelessLoss int
	WiredLoss    int
	LossRate     float64
}
