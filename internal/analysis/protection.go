package analysis

import (
	"repro/internal/dot80211"
	"repro/internal/transport"
	"repro/internal/unify"
)

// ProtectionSlot is one time bucket of Fig. 10.
type ProtectionSlot struct {
	StartUS          int64
	ProtectedAPs     int // APs observed using protection mode
	Overprotective   int // of those, no 802.11b client in range within the practical timeout
	ActiveGClients   int // active 802.11g clients network-wide
	GOnOverprotected int // active g clients associated to overprotective APs
}

// ProtectionReport reproduces §7.3 / Fig. 10.
type ProtectionReport struct {
	Slots []ProtectionSlot
	// PeakAffectedShare is the largest per-slot share of active g clients
	// sitting behind overprotective APs (paper: 25–50% in busy periods).
	PeakAffectedShare float64
	// PotentialSpeedup is footnote 7's bound on the throughput factor a
	// protected g client could regain (≈2x).
	PotentialSpeedup float64
}

// ProtectionPass analyzes 802.11g protection-mode usage from the unified
// trace (§7.3), incrementally. It observes:
//
//   - which stations use protection, from CTS-to-self transmissions (a
//     station's CTS-to-self carries its own MAC) — attributed to their AP
//     at finalize, once beacon/association evidence is complete;
//   - which stations are 802.11b, from the PHY tag clients advertise in
//     probe/association request bodies — the passive analogue of the
//     paper's probe-response range inference;
//   - whether an 802.11b client was in range of each protecting AP within
//     the practical timeout (one minute in the paper), making the AP's
//     conservative policy "overprotective" when not.
//
// Instead of retaining per-event time lists, evidence is quantized to the
// slot grid as it streams: protection and g-activity need only per-slot
// membership, and the b-in-range test over the contiguous window
// [slotStart−timeout, slotEnd) is decided exactly by each slot-bucket's
// latest b-activity time (the window covers whole buckets except a suffix
// of the earliest, where the maximum alone settles containment). Memory is
// O(stations × slots), independent of event count.
type ProtectionPass struct {
	named
	noExchange
	timeoutUS, slotUS int64

	started         bool
	startUS, lastUS int64
	phyOf           map[dot80211.MAC]byte         // 'b' or 'g'
	assoc           map[dot80211.MAC]dot80211.MAC // client → last AP
	apSeen          map[dot80211.MAC]bool
	ctsSlots        map[dot80211.MAC]map[int64]bool  // station → slots with CTS-to-self
	bNearMax        map[dot80211.MAC]map[int64]int64 // AP → slot → latest b-activity time
	gSlot           map[int64]map[dot80211.MAC]bool  // slot → active g clients
}

// NewProtectionPass builds the §7.3 pass: practicalTimeoutUS is how long
// b-client evidence keeps an AP's protection justified, slotUS the Fig. 10
// bucket width.
func NewProtectionPass(practicalTimeoutUS, slotUS int64) *ProtectionPass {
	return &ProtectionPass{
		named: "protection", timeoutUS: practicalTimeoutUS, slotUS: slotUS,
		phyOf:    make(map[dot80211.MAC]byte),
		assoc:    make(map[dot80211.MAC]dot80211.MAC),
		apSeen:   make(map[dot80211.MAC]bool),
		ctsSlots: make(map[dot80211.MAC]map[int64]bool),
		bNearMax: make(map[dot80211.MAC]map[int64]int64),
		gSlot:    make(map[int64]map[dot80211.MAC]bool),
	}
}

// floorDiv is floored integer division (buckets for times before the
// first frame must stay below bucket 0, not truncate onto it).
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ObserveJFrame implements Pass.
func (p *ProtectionPass) ObserveJFrame(j *unify.JFrame) {
	if p.slotUS <= 0 {
		return
	}
	if !p.started {
		p.started = true
		p.startUS = j.UnivUS
	}
	p.lastUS = j.UnivUS
	if !j.Valid {
		return
	}
	f := &j.Frame
	switch {
	case f.IsBeacon():
		p.apSeen[f.Addr2] = true
	case f.Type == dot80211.TypeManagement &&
		(f.Subtype == dot80211.SubtypeProbeReq || f.Subtype == dot80211.SubtypeAssocReq ||
			f.Subtype == dot80211.SubtypeAuth):
		if len(f.Body) > 0 && (f.Body[0] == 'b' || f.Body[0] == 'g') {
			p.phyOf[f.Addr2] = f.Body[0]
		}
		if f.Subtype == dot80211.SubtypeAssocReq {
			p.assoc[f.Addr2] = f.Addr1
		}
	case f.IsCTS():
		// CTS-to-self: RA is the protecting transmitter itself.
		b := floorDiv(j.UnivUS-p.startUS, p.slotUS)
		set := p.ctsSlots[f.Addr1]
		if set == nil {
			set = make(map[int64]bool)
			p.ctsSlots[f.Addr1] = set
		}
		set[b] = true
	case f.IsData():
		tx := f.Addr2
		if p.phyOf[tx] == 'b' {
			// A b client talking to its AP: evidently in range.
			if ap := dataAP(f); !ap.IsZero() {
				b := floorDiv(j.UnivUS-p.startUS, p.slotUS)
				mm := p.bNearMax[ap]
				if mm == nil {
					mm = make(map[int64]int64)
					p.bNearMax[ap] = mm
				}
				if t, ok := mm[b]; !ok || j.UnivUS > t {
					mm[b] = j.UnivUS
				}
			}
		}
		if p.phyOf[tx] == 'g' && f.Flags&dot80211.FlagToDS != 0 {
			// Truncating division, like the legacy slot mapping: activity
			// marginally before the first frame lands in slot 0.
			b := (j.UnivUS - p.startUS) / p.slotUS
			set := p.gSlot[b]
			if set == nil {
				set = make(map[dot80211.MAC]bool)
				p.gSlot[b] = set
			}
			set[tx] = true
		}
	}
}

// Finalize implements Pass, returning the *ProtectionReport.
func (p *ProtectionPass) Finalize() Report { return p.finalize() }

func (p *ProtectionPass) finalize() *ProtectionReport {
	rep := &ProtectionReport{PotentialSpeedup: dot80211.ProtectionOverheadFactor()}
	if !p.started || p.slotUS <= 0 {
		return rep
	}
	nSlots := int((p.lastUS-p.startUS)/p.slotUS) + 1
	if nSlots < 0 {
		nSlots = 0
	}

	// Attribute protection evidence to APs: stations emitting CTS-to-self
	// that are APs, plus APs whose associated clients emit CTS-to-self —
	// using the run's complete beacon/association knowledge, exactly as
	// the two-pass construction did.
	protSlots := make(map[dot80211.MAC]map[int64]bool)
	for sta, slots := range p.ctsSlots {
		ap := sta
		if !p.apSeen[sta] {
			a, ok := p.assoc[sta]
			if !ok {
				continue
			}
			ap = a
		}
		dst := protSlots[ap]
		if dst == nil {
			dst = make(map[int64]bool)
			protSlots[ap] = dst
		}
		for b := range slots {
			dst[b] = true
		}
	}

	rep.Slots = make([]ProtectionSlot, nSlots)
	for i := range rep.Slots {
		rep.Slots[i].StartUS = p.startUS + int64(i)*p.slotUS
	}
	for i := range rep.Slots {
		s := &rep.Slots[i]
		overprotective := map[dot80211.MAC]bool{}
		for ap, slots := range protSlots {
			if !slots[int64(i)] {
				continue
			}
			s.ProtectedAPs++
			if !p.bNear(ap, int64(i)) {
				s.Overprotective++
				overprotective[ap] = true
			}
		}
		for c := range p.gSlot[int64(i)] {
			s.ActiveGClients++
			if overprotective[p.assoc[c]] {
				s.GOnOverprotected++
			}
		}
		if s.ActiveGClients > 0 {
			share := float64(s.GOnOverprotected) / float64(s.ActiveGClients)
			if share > rep.PeakAffectedShare {
				rep.PeakAffectedShare = share
			}
		}
	}
	return rep
}

// bNear reports whether any b client was evidently in range of ap within
// [slotStart − timeout, slotEnd): scan the slot buckets the window
// touches; a bucket's latest b-activity time decides containment (the
// window covers every touched bucket fully except the earliest, where it
// is a suffix).
func (p *ProtectionPass) bNear(ap dot80211.MAC, slot int64) bool {
	mm := p.bNearMax[ap]
	if len(mm) == 0 {
		return false
	}
	lowUS := slot*p.slotUS - p.timeoutUS // relative to startUS
	bLow := floorDiv(lowUS, p.slotUS)
	for b := bLow; b <= slot; b++ {
		if t, ok := mm[b]; ok && t >= p.startUS+lowUS {
			return true
		}
	}
	return false
}

// FinalizeWindow implements WindowedPass: the window's Fig. 10 rows, then
// a fresh start. Identity evidence (beacon rosters, associations, PHY
// tags) resets with the window too: stations re-announce themselves
// continuously (probes, beacons, associations), so each window is a
// self-contained view — the property the parity test asserts.
func (p *ProtectionPass) FinalizeWindow(int64) Report {
	rep := p.finalize()
	p.started = false
	p.startUS, p.lastUS = 0, 0
	p.phyOf = make(map[dot80211.MAC]byte)
	p.assoc = make(map[dot80211.MAC]dot80211.MAC)
	p.apSeen = make(map[dot80211.MAC]bool)
	p.ctsSlots = make(map[dot80211.MAC]map[int64]bool)
	p.bNearMax = make(map[dot80211.MAC]map[int64]int64)
	p.gSlot = make(map[int64]map[dot80211.MAC]bool)
	return rep
}

// Evict implements WindowedPass: all evidence is slot-keyed within the
// window and dropped wholesale by the reset.
func (p *ProtectionPass) Evict(int64) {}

// Protection analyzes 802.11g protection-mode usage from a retained jframe
// slice. Compatibility wrapper over ProtectionPass.
func Protection(jframes []*unify.JFrame, practicalTimeoutUS, slotUS int64) *ProtectionReport {
	p := NewProtectionPass(practicalTimeoutUS, slotUS)
	for _, j := range jframes {
		p.ObserveJFrame(j)
	}
	return p.finalize()
}

// dataAP extracts the AP side of a data frame from its DS bits.
func dataAP(f *dot80211.Frame) dot80211.MAC {
	switch {
	case f.Flags&dot80211.FlagToDS != 0:
		return f.Addr1
	case f.Flags&dot80211.FlagFromDS != 0:
		return f.Addr2
	}
	return dot80211.MAC{}
}

// TCPLossReport reproduces Fig. 11: the per-flow TCP loss rate CDF with the
// wireless/wired split.
type TCPLossReport struct {
	Flows         int
	LossRates     []float64 // sorted per-flow loss rates
	WirelessShare float64   // share of classified losses that were wireless
	TotalLosses   int
	WirelessLoss  int
	WiredLoss     int
}

// TCPLoss summarizes transport losses over handshake-complete flows.
func TCPLoss(rates []FlowLoss) *TCPLossReport {
	rep := &TCPLossReport{Flows: len(rates)}
	for _, r := range rates {
		rep.LossRates = append(rep.LossRates, r.LossRate)
		rep.TotalLosses += r.Losses
		rep.WirelessLoss += r.WirelessLoss
		rep.WiredLoss += r.WiredLoss
	}
	if cl := rep.WirelessLoss + rep.WiredLoss; cl > 0 {
		rep.WirelessShare = float64(rep.WirelessLoss) / float64(cl)
	}
	return rep
}

// FlowLoss mirrors transport.FlowLossRate without importing it here (the
// caller converts); it keeps analysis decoupled from transport internals.
type FlowLoss struct {
	DataSegs     int
	Losses       int
	WirelessLoss int
	WiredLoss    int
	LossRate     float64
}

// TransportFlowLosses adapts a transport analyzer's per-flow loss rates to
// FlowLoss rows (the conversion every TCPLoss caller needs).
func TransportFlowLosses(ta *transport.Analyzer, minSegs int) []FlowLoss {
	var rates []FlowLoss
	for _, r := range ta.LossRates(minSegs) {
		rates = append(rates, FlowLoss{
			DataSegs: r.DataSegs, Losses: r.Losses,
			WirelessLoss: r.WirelessLoss, WiredLoss: r.WiredLoss, LossRate: r.LossRate,
		})
	}
	return rates
}
