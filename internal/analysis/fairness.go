// Congestion-control experiments over the simulator's per-flow ground
// truth: throughput-share fairness across algorithms sharing the substrate
// (the BBR-vs-CUBIC/Reno contention question of arXiv:2505.07741 and
// arXiv:1909.03673, scaled to the enterprise workload) and the confusion
// matrix of the transport layer's passive CC fingerprinter.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dot80211"
	"repro/internal/llc"
	"repro/internal/scenario"
	"repro/internal/tcpsim"
	"repro/internal/transport"
	"repro/internal/unify"
)

// CCShareRow summarizes one congestion-control algorithm's slice of a run.
type CCShareRow struct {
	Algo       string
	Flows      int
	Completed  int
	Bytes      int64   // application bytes acknowledged across its flows
	GoodputBps float64 // Bytes over the scenario day
	Share      float64 // fraction of all acknowledged bytes
}

// CCFairness aggregates per-flow ground truth into per-algorithm
// throughput shares. daySec scales goodput; rows come back sorted by
// algorithm name.
func CCFairness(flows []scenario.FlowCC, daySec float64) []CCShareRow {
	byAlgo := make(map[string]*CCShareRow)
	var total int64
	for _, f := range flows {
		r := byAlgo[f.Algo]
		if r == nil {
			r = &CCShareRow{Algo: f.Algo}
			byAlgo[f.Algo] = r
		}
		r.Flows++
		if f.Completed {
			r.Completed++
		}
		r.Bytes += f.BytesAcked
		total += f.BytesAcked
	}
	rows := make([]CCShareRow, 0, len(byAlgo))
	for _, r := range byAlgo {
		if daySec > 0 {
			r.GoodputBps = 8 * float64(r.Bytes) / daySec
		}
		if total > 0 {
			r.Share = float64(r.Bytes) / float64(total)
		}
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Algo < rows[j].Algo })
	return rows
}

// FairnessTable renders CCFairness rows as an aligned text table.
func FairnessTable(rows []CCShareRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %7s %9s %14s %12s %7s\n",
		"cc", "flows", "completed", "bytes_acked", "goodput", "share")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %7d %9d %14d %9.2f Mbps %6.1f%%\n",
			r.Algo, r.Flows, r.Completed, r.Bytes, r.GoodputBps/1e6, 100*r.Share)
	}
	return b.String()
}

// WiredCCFingerprints runs the transport CC fingerprinter over the wired
// distribution tap (the §6 "second trace of the same traffic") instead of
// the air-reconstructed flows. The wired tap observes segments at the
// sender's release point, before any MAC queue serializes them, so pacing
// and window dynamics survive intact — the vantage where the classifier's
// accuracy gate holds. Compare against the air-side
// Transport.FingerprintCC() to quantify what the wireless vantage loses.
func WiredCCFingerprints(out *scenario.Output) []transport.CCFingerprint {
	a := transport.NewAnalyzer()
	var macSeq uint16
	for _, wp := range out.Wired {
		macSeq++
		seg := wp.Seg
		f := dot80211.NewData(wp.Dst, wp.Src, wp.Src, macSeq&0xfff, seg.Encode())
		j := &unify.JFrame{UnivUS: wp.TimeUS, Frame: f, Wire: f.Encode(), Valid: true}
		del := llc.DeliveryObserved
		if !wp.Delivered {
			del = llc.DeliveryFailed
		}
		at := &llc.Attempt{Data: j, Transmitter: wp.Src, Receiver: wp.Dst,
			Seq: macSeq & 0xfff, HasSeq: true, StartUS: wp.TimeUS, EndUS: wp.TimeUS + 1}
		a.AddExchange(&llc.Exchange{
			Attempts: []*llc.Attempt{at}, Transmitter: wp.Src, Receiver: wp.Dst,
			Seq: macSeq & 0xfff, Delivery: del, StartUS: wp.TimeUS, EndUS: wp.TimeUS + 1,
		})
	}
	return a.FingerprintCC()
}

// CCConfusion scores the transport fingerprinter against simulator ground
// truth.
type CCConfusion struct {
	// Matrix[truth][predicted] counts flows (predicted includes
	// transport.CCUnknown).
	Matrix map[string]map[string]int
	// Total flows matched between truth and fingerprints; Classified
	// excludes unknown verdicts; Correct counts exact matches among the
	// classified.
	Total, Classified, Correct int
	// Accuracy is Correct/Classified (0 when nothing was classified).
	Accuracy float64
	// Coverage is Classified/Total.
	Coverage float64
}

// CCConfusionReport joins fingerprints to ground truth by flow key.
func CCConfusionReport(truth []scenario.FlowCC, prints []transport.CCFingerprint) *CCConfusion {
	byKey := make(map[tcpsim.FlowKey]string, len(truth))
	for _, f := range truth {
		byKey[f.Key] = f.Algo
	}
	rep := &CCConfusion{Matrix: make(map[string]map[string]int)}
	for _, p := range prints {
		algo, ok := byKey[p.Key]
		if !ok {
			continue // flow not in ground truth (e.g. synthetic traffic)
		}
		rep.Total++
		row := rep.Matrix[algo]
		if row == nil {
			row = make(map[string]int)
			rep.Matrix[algo] = row
		}
		row[p.Algo]++
		if p.Algo != transport.CCUnknown {
			rep.Classified++
			if p.Algo == algo {
				rep.Correct++
			}
		}
	}
	if rep.Classified > 0 {
		rep.Accuracy = float64(rep.Correct) / float64(rep.Classified)
	}
	if rep.Total > 0 {
		rep.Coverage = float64(rep.Classified) / float64(rep.Total)
	}
	return rep
}

// String renders the confusion matrix with truth on rows.
func (c *CCConfusion) String() string {
	truths := make([]string, 0, len(c.Matrix))
	predSet := map[string]bool{}
	for tr, row := range c.Matrix {
		truths = append(truths, tr)
		for p := range row {
			predSet[p] = true
		}
	}
	sort.Strings(truths)
	preds := make([]string, 0, len(predSet))
	for p := range predSet {
		preds = append(preds, p)
	}
	sort.Strings(preds)

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "truth\\fp")
	for _, p := range preds {
		fmt.Fprintf(&b, " %8s", p)
	}
	b.WriteByte('\n')
	for _, tr := range truths {
		fmt.Fprintf(&b, "%-8s", tr)
		for _, p := range preds {
			fmt.Fprintf(&b, " %8d", c.Matrix[tr][p])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "accuracy %.0f%% over %d classified (%.0f%% coverage of %d flows)\n",
		100*c.Accuracy, c.Classified, 100*c.Coverage, c.Total)
	return b.String()
}
