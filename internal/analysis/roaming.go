// Handoff analysis: reconstruct client mobility events purely from the
// unified, reconstructed frame-exchange stream — no simulator ground truth
// in the loop. A handoff appears on the air as a disassociation toward the
// old AP, a burst of probe requests sweeping the channels, and an
// auth/assoc handshake with a new BSSID; the detector walks the canonical
// exchange stream, tracks each station's serving AP, and emits one event
// per observed transition. Ground truth (scenario.Handoff) is used only to
// score the detector, the same way the CC confusion matrix is scored.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dot80211"
	"repro/internal/llc"
	"repro/internal/scenario"
)

// HandoffEvent is one detected client handoff.
type HandoffEvent struct {
	Client dot80211.MAC
	FromAP dot80211.MAC
	ToAP   dot80211.MAC
	// StartUS is the first evidence the client was leaving (the
	// disassociation when captured, else the first auth/assoc exchange
	// toward the new AP); EndUS is when the new association completed.
	StartUS int64
	EndUS   int64
	// SawDisassoc: the disassociation frame itself was captured, so
	// StartUS is the true start of the gap.
	SawDisassoc bool
	// MgmtEvidence: detected from the association handshake. False means
	// the handshake was missed and the transition was inferred from data
	// exchanges alone.
	MgmtEvidence bool
}

// LatencyUS is the detected handoff's outage bound.
func (e HandoffEvent) LatencyUS() int64 { return e.EndUS - e.StartUS }

// RoamingReport is the handoff-analysis pass output.
type RoamingReport struct {
	Events    []HandoffEvent
	PerClient map[dot80211.MAC]int
	// MeanLatencyUS averages over events with mgmt evidence (data-only
	// transitions have no meaningful latency bound).
	MeanLatencyUS float64
	// DataOnly counts transitions inferred without any captured
	// management handshake.
	DataOnly int
}

// disassocLinkUS bounds how far back a captured disassociation is accepted
// as the start of a subsequent association's handoff.
const disassocLinkUS = 5_000_000

// dataTransitionMin is how many consecutive data exchanges with a new AP
// are required before a transition with no management evidence is
// believed; stragglers retransmitted toward the old AP would otherwise
// fabricate ping-pong handoffs.
const dataTransitionMin = 3

// roamTrack is per-station detector state.
type roamTrack struct {
	curAP dot80211.MAC

	hasDis bool
	disAP  dot80211.MAC
	disUS  int64

	hasJoin     bool
	joinAP      dot80211.MAC
	joinStartUS int64

	candAP    dot80211.MAC
	candCount int
	candUS    int64
}

// RoamingPass runs the handoff detector incrementally over the canonical
// exchange stream. State is O(stations): one roamTrack per client plus the
// events detected so far.
type RoamingPass struct {
	named
	noJFrame
	isAP   func(dot80211.MAC) bool
	rep    *RoamingReport
	tracks map[dot80211.MAC]*roamTrack
	latSum int64
	latN   int
}

// NewRoamingPass builds the handoff-detection pass. isAP distinguishes
// infrastructure addresses from stations, the same predicate the
// interference analysis takes.
func NewRoamingPass(isAP func(dot80211.MAC) bool) *RoamingPass {
	return &RoamingPass{
		named: "roam", isAP: isAP,
		rep:    &RoamingReport{PerClient: make(map[dot80211.MAC]int)},
		tracks: make(map[dot80211.MAC]*roamTrack),
	}
}

func (p *RoamingPass) track(c dot80211.MAC) *roamTrack {
	t := p.tracks[c]
	if t == nil {
		t = &roamTrack{}
		p.tracks[c] = t
	}
	return t
}

func (p *RoamingPass) emit(e HandoffEvent) {
	p.rep.Events = append(p.rep.Events, e)
	p.rep.PerClient[e.Client]++
	if e.MgmtEvidence {
		p.latSum += e.LatencyUS()
		p.latN++
	} else {
		p.rep.DataOnly++
	}
}

// ObserveExchange implements Pass.
func (p *RoamingPass) ObserveExchange(ex *llc.Exchange) {
	if ex.Broadcast {
		return
	}
	j := ex.Data()
	if j == nil {
		return // fully inferred exchange: no frame kind to go on
	}
	f := &j.Frame
	tx, rx := ex.Transmitter, ex.Receiver
	switch {
	case p.isAP(tx) && !p.isAP(rx) && !rx.IsZero():
		t := p.track(rx)
		switch {
		case f.Type == dot80211.TypeManagement && f.Subtype == dot80211.SubtypeAssocResp:
			from := t.curAP
			if from.IsZero() && t.hasDis {
				from = t.disAP
			}
			if !from.IsZero() && from != tx {
				e := HandoffEvent{
					Client: rx, FromAP: from, ToAP: tx,
					StartUS: ex.StartUS, EndUS: ex.EndUS,
					MgmtEvidence: true,
				}
				if t.hasDis && ex.EndUS-t.disUS >= 0 && ex.EndUS-t.disUS < disassocLinkUS {
					e.StartUS = t.disUS
					e.SawDisassoc = true
				} else if t.hasJoin && t.joinAP == tx && t.joinStartUS < e.StartUS {
					e.StartUS = t.joinStartUS
				}
				p.emit(e)
			}
			t.curAP = tx
			t.hasDis, t.hasJoin = false, false
			t.candCount = 0
		case f.IsData():
			observeDataTransition(t, rx, tx, ex, p.emit)
		}
	case !p.isAP(tx) && p.isAP(rx) && !tx.IsZero():
		t := p.track(tx)
		switch {
		case f.Type == dot80211.TypeManagement && f.Subtype == dot80211.SubtypeDisassoc:
			t.hasDis, t.disAP, t.disUS = true, rx, ex.StartUS
		case f.Type == dot80211.TypeManagement &&
			(f.Subtype == dot80211.SubtypeAuth || f.Subtype == dot80211.SubtypeAssocReq ||
				f.Subtype == dot80211.SubtypeReassocReq):
			if rx != t.curAP && (!t.hasJoin || t.joinAP != rx) {
				t.hasJoin, t.joinAP, t.joinStartUS = true, rx, ex.StartUS
			}
		case f.IsData():
			observeDataTransition(t, tx, rx, ex, p.emit)
		}
	}
}

// Finalize implements Pass, returning the *RoamingReport.
func (p *RoamingPass) Finalize() Report { return p.finalize() }

func (p *RoamingPass) finalize() *RoamingReport {
	if p.latN > 0 {
		p.rep.MeanLatencyUS = float64(p.latSum) / float64(p.latN)
	}
	return p.rep
}

// FinalizeWindow implements WindowedPass: the window's handoff events,
// then a fresh start. Serving-AP beliefs reset with the window and are
// re-learned from the next window's traffic (dataTransitionMin exchanges,
// or a management handshake), exactly as a fresh detector would.
func (p *RoamingPass) FinalizeWindow(int64) Report {
	rep := p.finalize()
	p.rep = &RoamingReport{PerClient: make(map[dot80211.MAC]int)}
	p.tracks = make(map[dot80211.MAC]*roamTrack)
	p.latSum, p.latN = 0, 0
	return rep
}

// Evict implements WindowedPass: per-station tracks are dropped wholesale
// by the window reset.
func (p *RoamingPass) Evict(int64) {}

// DetectHandoffs runs the handoff detector over a retained canonical
// exchange slice (the order core.Run emits). Compatibility wrapper over
// RoamingPass.
func DetectHandoffs(exchanges []*llc.Exchange, isAP func(dot80211.MAC) bool) *RoamingReport {
	p := NewRoamingPass(isAP)
	for _, ex := range exchanges {
		p.ObserveExchange(ex)
	}
	return p.finalize()
}

// observeDataTransition updates a station's serving-AP belief from a data
// exchange and emits a management-less transition once enough consecutive
// exchanges agree.
func observeDataTransition(t *roamTrack, client, ap dot80211.MAC, ex *llc.Exchange, emit func(HandoffEvent)) {
	if t.curAP.IsZero() {
		t.curAP = ap
		return
	}
	if ap == t.curAP {
		// Serving-AP traffic kills any candidacy outright: a later real
		// transition must restart its evidence (and its StartUS) fresh.
		t.candAP, t.candCount = dot80211.MAC{}, 0
		return
	}
	if t.candAP != ap {
		t.candAP, t.candCount, t.candUS = ap, 0, ex.StartUS
	}
	t.candCount++
	if t.candCount >= dataTransitionMin {
		emit(HandoffEvent{
			Client: client, FromAP: t.curAP, ToAP: ap,
			StartUS: t.candUS, EndUS: ex.EndUS,
		})
		t.curAP = ap
		t.candCount = 0
		t.hasDis, t.hasJoin = false, false
	}
}

// HandoffScore grades the detector against simulator ground truth.
type HandoffScore struct {
	Truth   int // ground-truth handoffs (completed ones)
	Matched int // truth handoffs a detected event accounts for
	Events  int // detected events in total
	Recall  float64
	// MeanAbsEndErrUS is the mean |detected completion − true completion|
	// over matched pairs.
	MeanAbsEndErrUS float64
}

// handoffMatchWindowUS bounds how far a detected event's completion may
// sit from the true one and still match.
const handoffMatchWindowUS = 2_000_000

// ScoreHandoffs matches detected events to ground truth by client, target
// AP and completion time (each event consumed at most once).
func ScoreHandoffs(truth []scenario.Handoff, rep *RoamingReport) HandoffScore {
	sc := HandoffScore{Events: len(rep.Events)}
	used := make([]bool, len(rep.Events))
	var errSum int64
	for _, h := range truth {
		if !h.Completed {
			continue
		}
		sc.Truth++
		bestI, bestErr := -1, int64(handoffMatchWindowUS)
		for i, e := range rep.Events {
			if used[i] || e.Client != h.Client || e.ToAP != h.ToAP {
				continue
			}
			err := e.EndUS - h.CompleteUS
			if err < 0 {
				err = -err
			}
			if err <= bestErr {
				bestI, bestErr = i, err
			}
		}
		if bestI >= 0 {
			used[bestI] = true
			sc.Matched++
			errSum += bestErr
		}
	}
	if sc.Truth > 0 {
		sc.Recall = float64(sc.Matched) / float64(sc.Truth)
	}
	if sc.Matched > 0 {
		sc.MeanAbsEndErrUS = float64(errSum) / float64(sc.Matched)
	}
	return sc
}

// RoamDisruption summarizes what handoffs did to one congestion-control
// algorithm's flows at the mobile clients.
type RoamDisruption struct {
	Algo  string
	Flows int // ground-truth flows at mobile clients
	// Disrupted counts flows whose lifetime spans at least one of their
	// client's handoff gaps; Gaps counts flow-handoff intersections.
	Disrupted int
	Gaps      int
	// MeanStallUS is the mean handoff gap (decision to reassociation)
	// experienced by disrupted flows.
	MeanStallUS float64
	// GoodputBps is the algorithm's acknowledged-byte rate over the day,
	// mobile clients only — the "goodput under motion" column.
	GoodputBps float64
}

// RoamDisruptionByCC joins per-flow CC ground truth with handoff ground
// truth: which algorithms' flows were moving, and what the handoffs cost.
func RoamDisruptionByCC(out *scenario.Output) []RoamDisruption {
	mobile := make(map[uint32]dot80211.MAC) // client IP → MAC
	mobileSet := make(map[dot80211.MAC]bool)
	for _, m := range out.MobileMACs {
		mobileSet[m] = true
	}
	for _, c := range out.Clients {
		if mobileSet[c.MAC] {
			mobile[c.IP] = c.MAC
		}
	}
	byClient := make(map[dot80211.MAC][]scenario.Handoff)
	for _, h := range out.Handoffs {
		byClient[h.Client] = append(byClient[h.Client], h)
	}

	rows := make(map[string]*RoamDisruption)
	daySec := out.Cfg.Day.SecondsF()
	for _, f := range out.FlowCCs {
		mac, ok := mobile[f.ClientIP]
		if !ok {
			continue
		}
		r := rows[f.Algo]
		if r == nil {
			r = &RoamDisruption{Algo: f.Algo}
			rows[f.Algo] = r
		}
		r.Flows++
		if daySec > 0 {
			r.GoodputBps += 8 * float64(f.BytesAcked) / daySec
		}
		var stall int64
		gaps := 0
		for _, h := range byClient[mac] {
			end := h.CompleteUS
			if !h.Completed {
				end = h.DecideUS
			}
			if h.DecideUS < f.EndUS && end > f.StartUS {
				gaps++
				stall += end - h.DecideUS
			}
		}
		if gaps > 0 {
			r.Disrupted++
			r.Gaps += gaps
			r.MeanStallUS += float64(stall) / float64(gaps)
		}
	}
	out2 := make([]RoamDisruption, 0, len(rows))
	for _, r := range rows {
		if r.Disrupted > 0 {
			r.MeanStallUS /= float64(r.Disrupted)
		}
		out2 = append(out2, *r)
	}
	sort.Slice(out2, func(i, j int) bool { return out2[i].Algo < out2[j].Algo })
	return out2
}

// RoamingTable renders the detector report plus the per-CC disruption rows
// as aligned text (the jigsim log format). rep may be nil when only the
// ground-truth disruption rows are wanted.
func RoamingTable(rep *RoamingReport, rows []RoamDisruption) string {
	var b strings.Builder
	if rep != nil {
		fmt.Fprintf(&b, "handoffs detected: %d (%d stations, %d data-only), mean latency %.1f ms\n",
			len(rep.Events), len(rep.PerClient), rep.DataOnly, rep.MeanLatencyUS/1e3)
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "%-8s %6s %10s %6s %12s %12s\n",
			"cc", "flows", "disrupted", "gaps", "stall_ms", "goodput")
		for _, r := range rows {
			fmt.Fprintf(&b, "%-8s %6d %10d %6d %12.1f %9.2f Mbps\n",
				r.Algo, r.Flows, r.Disrupted, r.Gaps, r.MeanStallUS/1e3, r.GoodputBps/1e6)
		}
	}
	return b.String()
}
