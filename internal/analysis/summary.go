package analysis

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/llc"
	"repro/internal/unify"
)

// TraceSummary is Table 1: the high-level characteristics of the trace.
type TraceSummary struct {
	DurationUS      int64
	Events          int64   // records across all monitors
	ErrorEventPct   float64 // physical or CRC errors (paper: 47%)
	UnifiedEvents   int64   // records merged into jframes
	JFrames         int64   // paper: 530 M from 1.58 G events
	AvgInstances    float64 // paper: 2.97 observations per transmission
	UniqueClients   int     // paper: 1,026 client MACs
	UniqueAPs       int
	DataFrames      int64
	MgmtFrames      int64
	ControlFrames   int64
	BeaconFrames    int64
	BroadcastFrames int64
	TCPFlows        int64
	CompleteFlows   int64
}

// SummaryPass builds Table 1 incrementally from the jframe stream; the
// unify/llc/transport aggregates arrive through core.ResultSink once the
// run completes. Clients and APs are told apart by who transmits beacons /
// carries the FromDS bit, exactly as a passive observer must. State is
// O(stations).
type SummaryPass struct {
	named
	noExchange
	started         bool
	firstUS, lastUS int64
	multi           int64
	instances       int64
	aps             map[dot80211.MAC]bool
	clients         map[dot80211.MAC]bool
	s               TraceSummary
	res             *core.Result
}

// NewSummaryPass builds the Table 1 pass.
func NewSummaryPass() *SummaryPass {
	return &SummaryPass{
		named:   "summary",
		aps:     make(map[dot80211.MAC]bool),
		clients: make(map[dot80211.MAC]bool),
	}
}

// SetResult implements core.ResultSink.
func (p *SummaryPass) SetResult(res *core.Result) { p.res = res }

// ObserveJFrame implements Pass.
func (p *SummaryPass) ObserveJFrame(j *unify.JFrame) {
	if !p.started {
		p.started = true
		p.firstUS = j.UnivUS
	}
	p.lastUS = j.UnivUS
	if !j.PhyOnly {
		p.multi++
		p.instances += int64(len(j.Instances))
	}
	if !j.Valid {
		return
	}
	f := &j.Frame
	switch {
	case f.IsBeacon():
		p.s.BeaconFrames++
		p.s.MgmtFrames++
		p.aps[f.Addr2] = true
	case f.Type == dot80211.TypeManagement:
		p.s.MgmtFrames++
	case f.Type == dot80211.TypeControl:
		p.s.ControlFrames++
	case f.IsData():
		p.s.DataFrames++
		if f.Addr1.IsMulticast() {
			p.s.BroadcastFrames++
		}
		if f.Flags&dot80211.FlagFromDS != 0 {
			p.aps[f.Addr2] = true
		} else if f.Flags&dot80211.FlagToDS != 0 {
			p.clients[f.Addr2] = true
		}
	}
}

// Finalize implements Pass, returning the *TraceSummary.
func (p *SummaryPass) Finalize() Report { return p.finalize() }

func (p *SummaryPass) finalize() *TraceSummary {
	s := p.s
	if p.res != nil {
		s.Events = p.res.UnifyStats.Events
		s.UnifiedEvents = p.res.UnifyStats.Unified
		s.JFrames = p.res.UnifyStats.JFrames
		errs := p.res.UnifyStats.PhyErrors + p.res.UnifyStats.CRCErrors
		if s.Events > 0 {
			s.ErrorEventPct = 100 * float64(errs) / float64(s.Events)
		}
		s.TCPFlows = p.res.Transport.Stats.Flows
		s.CompleteFlows = int64(p.res.Transport.Stats.CompleteFlows)
	}
	for m := range p.aps {
		delete(p.clients, m)
	}
	s.UniqueAPs = len(p.aps)
	s.UniqueClients = len(p.clients)
	s.DurationUS = p.lastUS - p.firstUS
	if p.multi > 0 {
		s.AvgInstances = float64(p.instances) / float64(p.multi)
	}
	return &s
}

// FinalizeWindow implements WindowedPass: the window's Table 1, then a
// fresh start. The result-derived rows (event/flow counters) reflect the
// latest SetResult — cumulative pipeline aggregates, not per-window ones.
func (p *SummaryPass) FinalizeWindow(int64) Report {
	rep := p.finalize()
	p.started = false
	p.firstUS, p.lastUS = 0, 0
	p.multi, p.instances = 0, 0
	p.aps = make(map[dot80211.MAC]bool)
	p.clients = make(map[dot80211.MAC]bool)
	p.s = TraceSummary{}
	return rep
}

// Evict implements WindowedPass: per-station state is dropped by the
// window reset; nothing slides mid-window.
func (p *SummaryPass) Evict(int64) {}

// Summarize builds Table 1 from a pipeline result and a retained jframe
// slice. Compatibility wrapper over SummaryPass.
func Summarize(res *core.Result, jframes []*unify.JFrame) *TraceSummary {
	p := NewSummaryPass()
	for _, j := range jframes {
		p.ObserveJFrame(j)
	}
	p.SetResult(res)
	return p.finalize()
}

// String renders the summary as a paper-style table.
func (s *TraceSummary) String() string {
	var b strings.Builder
	row := func(k string, v any) { fmt.Fprintf(&b, "%-28s %v\n", k, v) }
	row("trace duration (s)", s.DurationUS/1e6)
	row("monitor events", s.Events)
	row("error events (%)", fmt.Sprintf("%.1f", s.ErrorEventPct))
	row("unified events", s.UnifiedEvents)
	row("jframes", s.JFrames)
	row("avg observations/frame", fmt.Sprintf("%.2f", s.AvgInstances))
	row("unique clients", s.UniqueClients)
	row("unique APs", s.UniqueAPs)
	row("data frames", s.DataFrames)
	row("management frames", s.MgmtFrames)
	row("control frames", s.ControlFrames)
	row("beacons", s.BeaconFrames)
	row("broadcast data", s.BroadcastFrames)
	row("tcp flows (complete)", fmt.Sprintf("%d (%d)", s.TCPFlows, s.CompleteFlows))
	return b.String()
}

// InferenceStats reports the §5.1 headline: the share of transmission
// attempts and frame exchanges that required inference.
type InferenceStats struct {
	Attempts         int64
	InferredAttempts int64
	Exchanges        int64
	InferredExch     int64
}

// AttemptRate returns inferred attempts / attempts.
func (s InferenceStats) AttemptRate() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.InferredAttempts) / float64(s.Attempts)
}

// ExchangeRate returns inferred exchanges / exchanges.
func (s InferenceStats) ExchangeRate() float64 {
	if s.Exchanges == 0 {
		return 0
	}
	return float64(s.InferredExch) / float64(s.Exchanges)
}

// Inference extracts the §5.1 statistics from LLC stats.
func Inference(st llc.Stats) InferenceStats {
	return InferenceStats{
		Attempts: st.Attempts, InferredAttempts: st.InferredAttempts,
		Exchanges: st.Exchanges, InferredExch: st.InferredExchanges,
	}
}

// TCPLossPass is Fig. 11 as a pass: purely result-derived (the transport
// analyzer already aggregates per-flow loss attribution in bounded
// memory), it observes nothing and finalizes from core.ResultSink.
type TCPLossPass struct {
	named
	noJFrame
	noExchange
	minSegs int
	res     *core.Result
}

// NewTCPLossPass builds the Fig. 11 pass over flows with at least minSegs
// data segments.
func NewTCPLossPass(minSegs int) *TCPLossPass {
	return &TCPLossPass{named: "tcploss", minSegs: minSegs}
}

// SetResult implements core.ResultSink.
func (p *TCPLossPass) SetResult(res *core.Result) { p.res = res }

// Finalize implements Pass, returning the *TCPLossReport.
func (p *TCPLossPass) Finalize() Report { return p.finalize() }

func (p *TCPLossPass) finalize() *TCPLossReport {
	if p.res == nil {
		return &TCPLossReport{}
	}
	return TCPLoss(TransportFlowLosses(p.res.Transport, p.minSegs))
}

// FinalizeWindow implements WindowedPass. The pass is purely
// result-derived, so each window reports the transport analyzer's loss
// attribution as of the latest SetResult — cumulative over the run.
func (p *TCPLossPass) FinalizeWindow(int64) Report { return p.finalize() }

// Evict implements WindowedPass: no observational state at all.
func (p *TCPLossPass) Evict(int64) {}
