package analysis

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/llc"
	"repro/internal/unify"
)

// TraceSummary is Table 1: the high-level characteristics of the trace.
type TraceSummary struct {
	DurationUS      int64
	Events          int64   // records across all monitors
	ErrorEventPct   float64 // physical or CRC errors (paper: 47%)
	UnifiedEvents   int64   // records merged into jframes
	JFrames         int64   // paper: 530 M from 1.58 G events
	AvgInstances    float64 // paper: 2.97 observations per transmission
	UniqueClients   int     // paper: 1,026 client MACs
	UniqueAPs       int
	DataFrames      int64
	MgmtFrames      int64
	ControlFrames   int64
	BeaconFrames    int64
	BroadcastFrames int64
	TCPFlows        int64
	CompleteFlows   int64
}

// Summarize builds Table 1 from a pipeline result. Clients and APs are told
// apart by who transmits beacons / carries the FromDS bit, exactly as a
// passive observer must.
func Summarize(res *core.Result, jframes []*unify.JFrame) *TraceSummary {
	s := &TraceSummary{
		Events:        res.UnifyStats.Events,
		UnifiedEvents: res.UnifyStats.Unified,
		JFrames:       res.UnifyStats.JFrames,
	}
	errs := res.UnifyStats.PhyErrors + res.UnifyStats.CRCErrors
	if s.Events > 0 {
		s.ErrorEventPct = 100 * float64(errs) / float64(s.Events)
	}
	var multi, instances int64
	aps := make(map[dot80211.MAC]bool)
	clients := make(map[dot80211.MAC]bool)
	var firstUS, lastUS int64
	for i, j := range jframes {
		if i == 0 {
			firstUS = j.UnivUS
		}
		lastUS = j.UnivUS
		if !j.PhyOnly {
			multi++
			instances += int64(len(j.Instances))
		}
		if !j.Valid {
			continue
		}
		f := &j.Frame
		switch {
		case f.IsBeacon():
			s.BeaconFrames++
			s.MgmtFrames++
			aps[f.Addr2] = true
		case f.Type == dot80211.TypeManagement:
			s.MgmtFrames++
		case f.Type == dot80211.TypeControl:
			s.ControlFrames++
		case f.IsData():
			s.DataFrames++
			if f.Addr1.IsMulticast() {
				s.BroadcastFrames++
			}
			if f.Flags&dot80211.FlagFromDS != 0 {
				aps[f.Addr2] = true
			} else if f.Flags&dot80211.FlagToDS != 0 {
				clients[f.Addr2] = true
			}
		}
	}
	for m := range aps {
		delete(clients, m)
	}
	s.UniqueAPs = len(aps)
	s.UniqueClients = len(clients)
	s.DurationUS = lastUS - firstUS
	if multi > 0 {
		s.AvgInstances = float64(instances) / float64(multi)
	}
	s.TCPFlows = res.Transport.Stats.Flows
	s.CompleteFlows = int64(res.Transport.Stats.CompleteFlows)
	return s
}

// String renders the summary as a paper-style table.
func (s *TraceSummary) String() string {
	var b strings.Builder
	row := func(k string, v any) { fmt.Fprintf(&b, "%-28s %v\n", k, v) }
	row("trace duration (s)", s.DurationUS/1e6)
	row("monitor events", s.Events)
	row("error events (%)", fmt.Sprintf("%.1f", s.ErrorEventPct))
	row("unified events", s.UnifiedEvents)
	row("jframes", s.JFrames)
	row("avg observations/frame", fmt.Sprintf("%.2f", s.AvgInstances))
	row("unique clients", s.UniqueClients)
	row("unique APs", s.UniqueAPs)
	row("data frames", s.DataFrames)
	row("management frames", s.MgmtFrames)
	row("control frames", s.ControlFrames)
	row("beacons", s.BeaconFrames)
	row("broadcast data", s.BroadcastFrames)
	row("tcp flows (complete)", fmt.Sprintf("%d (%d)", s.TCPFlows, s.CompleteFlows))
	return b.String()
}

// InferenceStats reports the §5.1 headline: the share of transmission
// attempts and frame exchanges that required inference.
type InferenceStats struct {
	Attempts         int64
	InferredAttempts int64
	Exchanges        int64
	InferredExch     int64
}

// AttemptRate returns inferred attempts / attempts.
func (s InferenceStats) AttemptRate() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.InferredAttempts) / float64(s.Attempts)
}

// ExchangeRate returns inferred exchanges / exchanges.
func (s InferenceStats) ExchangeRate() float64 {
	if s.Exchanges == 0 {
		return 0
	}
	return float64(s.InferredExch) / float64(s.Exchanges)
}

// Inference extracts the §5.1 statistics from LLC stats.
func Inference(st llc.Stats) InferenceStats {
	return InferenceStats{
		Attempts: st.Attempts, InferredAttempts: st.InferredAttempts,
		Exchanges: st.Exchanges, InferredExch: st.InferredExchanges,
	}
}
