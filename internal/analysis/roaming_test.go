package analysis

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/llc"
	"repro/internal/scenario"
	"repro/internal/unify"
)

// Shared roaming scenario + pipeline run for the handoff tests.
var (
	roamOut *scenario.Output
	roamRes *core.Result
)

func roamSetup(t *testing.T) (*scenario.Output, *core.Result) {
	t.Helper()
	if roamOut != nil {
		return roamOut, roamRes
	}
	out, err := scenario.Run(scenario.Roaming())
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.DefaultConfig()
	ccfg.KeepExchanges = true
	res, err := core.Run(core.TracesFromBuffers(out.Traces), out.ClockGroups, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	roamOut, roamRes = out, res
	return out, res
}

func apPredicate(out *scenario.Output) func(dot80211.MAC) bool {
	set := make(map[dot80211.MAC]bool, len(out.APs))
	for _, ap := range out.APs {
		set[ap.MAC] = true
	}
	return func(m dot80211.MAC) bool { return set[m] }
}

// TestRoamingScenarioGroundTruth: the Roaming preset must actually move
// its clients — at least one completed handoff per mobile client — and
// leave coherent ground truth.
func TestRoamingScenarioGroundTruth(t *testing.T) {
	out, _ := roamSetup(t)
	if len(out.MobileMACs) != out.Cfg.MobileClients {
		t.Fatalf("mobile roster = %d, want %d", len(out.MobileMACs), out.Cfg.MobileClients)
	}
	perClient := map[dot80211.MAC]int{}
	for _, h := range out.Handoffs {
		if h.Client.IsZero() || h.ToAP.IsZero() {
			t.Fatalf("malformed handoff record: %+v", h)
		}
		if h.Completed {
			if h.CompleteUS < h.DecideUS {
				t.Fatalf("handoff completes before its decision: %+v", h)
			}
			perClient[h.Client]++
		}
	}
	for _, m := range out.MobileMACs {
		if perClient[m] < 1 {
			t.Errorf("mobile client %v: no completed handoff", m)
		}
	}
}

// TestDetectHandoffsRecall: the analysis pass, fed only reconstructed
// exchanges, must recover at least 90%% of ground-truth handoffs.
func TestDetectHandoffsRecall(t *testing.T) {
	out, res := roamSetup(t)
	rep := DetectHandoffs(res.Exchanges, apPredicate(out))
	sc := ScoreHandoffs(out.Handoffs, rep)
	t.Logf("truth=%d matched=%d events=%d recall=%.2f meanEndErr=%.1fms meanLatency=%.1fms",
		sc.Truth, sc.Matched, sc.Events, sc.Recall, sc.MeanAbsEndErrUS/1e3, rep.MeanLatencyUS/1e3)
	if sc.Truth == 0 {
		t.Fatal("no ground-truth handoffs to score against")
	}
	if sc.Recall < 0.9 {
		t.Errorf("handoff recall = %.2f, want >= 0.90", sc.Recall)
	}
	// Detected latencies must be physically plausible: positive, and
	// bounded by the scan/handshake budget.
	for _, e := range rep.Events {
		if !e.MgmtEvidence {
			continue
		}
		if l := e.LatencyUS(); l <= 0 || l > 5_000_000 {
			t.Errorf("implausible handoff latency %d us: %+v", l, e)
		}
	}
	// The detector must not hallucinate wildly: events should not exceed
	// truth by more than a factor of two.
	if sc.Events > 2*sc.Truth {
		t.Errorf("detector emitted %d events for %d true handoffs", sc.Events, sc.Truth)
	}
}

// TestDetectHandoffsEmpty: no exchanges, no events; and a stationary
// scenario's stream must not produce phantom handoffs per client beyond a
// small tolerance.
func TestDetectHandoffsEmpty(t *testing.T) {
	rep := DetectHandoffs(nil, func(dot80211.MAC) bool { return false })
	if len(rep.Events) != 0 {
		t.Fatalf("events from empty stream: %d", len(rep.Events))
	}
}

// TestDetectHandoffsDataOnlyTransition: with the management handshake
// absent from the stream, a sustained AP change in data exchanges is still
// reported (and a single straggler toward another AP is not).
func TestDetectHandoffsDataOnlyTransition(t *testing.T) {
	cli := dot80211.MAC{0xc2, 0, 0, 0, 0, 1}
	ap1 := dot80211.MAC{0xaa, 0, 0, 0, 0, 1}
	ap2 := dot80211.MAC{0xaa, 0, 0, 0, 0, 2}
	isAP := func(m dot80211.MAC) bool { return m[0] == 0xaa }

	dataEx := func(tx, rx dot80211.MAC, us int64) *llc.Exchange {
		f := dot80211.NewData(rx, tx, rx, uint16(us%4096), []byte("x"))
		j := &unify.JFrame{UnivUS: us, Frame: f, Wire: f.Encode(), Valid: true}
		at := &llc.Attempt{Data: j, Transmitter: tx, Receiver: rx, StartUS: us, EndUS: us + 100}
		return &llc.Exchange{Attempts: []*llc.Attempt{at}, Transmitter: tx, Receiver: rx,
			Delivery: llc.DeliveryObserved, StartUS: us, EndUS: us + 100, CloseUS: us + 100}
	}

	// One straggler toward ap2 sandwiched by ap1 traffic: no event.
	exs := []*llc.Exchange{
		dataEx(cli, ap1, 1000), dataEx(cli, ap1, 2000),
		dataEx(cli, ap2, 3000),
		dataEx(cli, ap1, 4000), dataEx(cli, ap1, 5000),
	}
	rep := DetectHandoffs(exs, isAP)
	if len(rep.Events) != 0 {
		t.Fatalf("straggler produced events: %+v", rep.Events)
	}

	// A sustained move to ap2 is reported exactly once.
	exs = append(exs,
		dataEx(cli, ap2, 6000), dataEx(ap2, cli, 7000), dataEx(cli, ap2, 8000),
		dataEx(cli, ap2, 9000),
	)
	rep = DetectHandoffs(exs, isAP)
	if len(rep.Events) != 1 {
		t.Fatalf("sustained transition events = %d, want 1", len(rep.Events))
	}
	e := rep.Events[0]
	if e.Client != cli || e.FromAP != ap1 || e.ToAP != ap2 || e.MgmtEvidence {
		t.Fatalf("wrong event: %+v", e)
	}
	// StartUS must anchor at the sustained move (6000), not the earlier
	// straggler toward ap2 (3000) that serving-AP traffic invalidated.
	if e.StartUS != 6000 {
		t.Fatalf("event StartUS = %d, want 6000 (fresh candidacy)", e.StartUS)
	}
}

// TestRoamDisruptionByCC: every algorithm in the mix shows up, mobile
// flows exist, and at least one algorithm saw a disrupted flow.
func TestRoamDisruptionByCC(t *testing.T) {
	out, _ := roamSetup(t)
	rows := RoamDisruptionByCC(out)
	if len(rows) < 3 {
		t.Fatalf("disruption rows = %d, want >= 3 (reno/cubic/bbr): %+v", len(rows), rows)
	}
	flows, disrupted := 0, 0
	for _, r := range rows {
		flows += r.Flows
		disrupted += r.Disrupted
		if r.Disrupted > 0 && r.MeanStallUS <= 0 {
			t.Errorf("%s: disrupted flows with zero stall", r.Algo)
		}
	}
	if flows == 0 {
		t.Fatal("no mobile flows in ground truth")
	}
	if disrupted == 0 {
		t.Error("no flow was disrupted by any handoff")
	}
	if s := RoamingTable(DetectHandoffs(roamRes.Exchanges, apPredicate(out)), rows); s == "" {
		t.Error("empty roaming table")
	}
}
