// Package analysis implements the paper's evaluation: the §6 coverage
// experiments (oracle comparison, wired-trace comparison, pod-count
// sensitivity) and the §7 analyses (trace summary, activity time series,
// co-channel interference estimation, 802.11g protection policy, TCP loss
// attribution), each producing the rows/series of the corresponding table
// or figure.
//
// # Streaming architecture
//
// Every analysis is an incremental observer (a Pass) over the pipeline's
// two product streams —
// unified jframes and reconstructed frame exchanges — rather than a
// function over fully materialized slices. A pass accumulates only the
// bounded state its report needs (per-station counters, per-slot buckets,
// a sliding interval window for overlap queries), so the out-of-core merge
// can run every analysis inline at streaming heap instead of retaining
// O(trace) jframes/exchanges behind core.Config.KeepJFrames/KeepExchanges.
//
// Contract (mirrors core.Pass, which these passes satisfy structurally):
//
//   - ObserveJFrame sees the unified stream in emission order;
//     ObserveExchange sees exchanges in canonical close order. The two
//     callbacks are never concurrent.
//   - When an exchange arrives, every jframe emitted before the
//     reconstruction watermark passed its CloseUS has been observed.
//     Emission order can locally invert by up to roughly the unifier's
//     search window, so passes whose exchange handling queries the jframe
//     history (interference, diagnosis) defer each exchange until their
//     jframe frontier clears CloseUS + emitSlackUS, which makes the query
//     results exactly those of a whole-trace index.
//   - Finalize is called once, after both streams end (and, for passes
//     implementing core.ResultSink, after SetResult); it returns the same
//     report value the legacy slice-based function produces.
//
// Exchange-keyed passes whose state is a pure per-key accumulation can
// additionally implement core.ShardedPass (NewShard/AbsorbShard, the
// transport analyzer's FlowShard absorb/merge pattern) to have the
// parallel pipeline feed them from the transport shard workers; the
// coverage pass is the exemplar.
//
// The legacy slice-taking functions (Coverage, Diagnose, Interference,
// Protection, TimeSeries, Summarize, DetectHandoffs, Visualize) remain as
// thin compatibility wrappers that replay the slices through a pass via
// Runner.DriveSlices.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/llc"
	"repro/internal/scenario"
	"repro/internal/unify"
)

// Report is a pass's finalized product: one of the concrete report types
// of this package (*CoverageReport, []StationDiagnosis, *TraceSummary, a
// rendered string, ...).
type Report any

// Pass is one streaming analysis: an incremental observer of the jframe
// and exchange streams that yields its report on Finalize. Every Pass in
// this package also satisfies core.Pass, so a []Pass can be handed to
// core.Config.Passes (element-wise) to run inline over the merge.
type Pass interface {
	// Name is the pass's registry name (the -passes selector token).
	Name() string
	ObserveJFrame(*unify.JFrame)
	ObserveExchange(*llc.Exchange)
	// Finalize computes the report. Call exactly once, after the streams
	// end; the result is the same value the legacy slice-based function
	// returns for the same streams.
	Finalize() Report
}

// WindowedPass extends Pass for long-running, windowed operation (the
// jigd daemon, internal/serve): instead of one Finalize at end of stream,
// the driver closes report windows as the stream's watermark advances,
// and the pass drops each window's state behind it so memory is bounded
// by the window, not the capture length.
//
// Contract:
//
//   - FinalizeWindow(upToUS) closes the current window: it returns
//     exactly the Report a freshly constructed pass's one-shot Finalize
//     would produce over the subsequence observed since the previous
//     FinalizeWindow (or construction) — windows are self-contained, a
//     property the parity tests assert per window against a fresh pass —
//     and then resets the pass's observational state for the next window.
//     upToUS is the window's end (universal µs), advisory: the driver
//     guarantees it has delivered every jframe with UnivUS < upToUS and
//     every exchange with CloseUS < upToUS (modulo the stream's bounded
//     emission slack) before calling. The returned Report is detached:
//     later observations never mutate it.
//   - Evict(beforeUS) drops any sliding mid-window state that cannot
//     influence reports at or after beforeUS (overlap-index intervals,
//     drained deferral slots). It must only be called at or behind the
//     driver's delivered-exchange frontier. For most passes the
//     per-window reset inside FinalizeWindow already evicts everything,
//     and Evict is a cheap no-op.
//   - Passes that finalize from the run-aggregate Result
//     (core.ResultSink: summary's pipeline counters, tcploss) report
//     those fields as of the latest SetResult — cumulative, not
//     per-window — because the pipeline aggregates them monotonically.
//
// Every pass in the registry implements WindowedPass.
type WindowedPass interface {
	Pass
	FinalizeWindow(upToUS int64) Report
	Evict(beforeUS int64)
}

// named implements Pass.Name by value.
type named string

func (n named) Name() string { return string(n) }

// noExchange is embedded by jframe-only passes.
type noExchange struct{}

func (noExchange) ObserveExchange(*llc.Exchange) {}

// noJFrame is embedded by exchange-only passes.
type noJFrame struct{}

func (noJFrame) ObserveJFrame(*unify.JFrame) {}

// PassReport pairs a pass's name with its finalized report.
type PassReport struct {
	Name   string
	Report Report
}

// Runner drives a set of passes outside the live pipeline — over retained
// slices (the compatibility path) — and collects their reports. Inside the
// pipeline core.Config.Passes takes the passes directly.
type Runner struct {
	Passes []Pass
}

// DriveSlices replays retained jframe/exchange slices through the passes
// in the streaming contract's order: exchanges in canonical close order,
// each preceded by every jframe with UnivUS <= its CloseUS. This is
// exactly the interleaving the live pipeline guarantees, so a pass fed
// either way produces the identical report.
func (r *Runner) DriveSlices(jframes []*unify.JFrame, exchanges []*llc.Exchange) {
	i := 0
	for _, ex := range exchanges {
		for i < len(jframes) && jframes[i].UnivUS <= ex.CloseUS {
			for _, p := range r.Passes {
				p.ObserveJFrame(jframes[i])
			}
			i++
		}
		for _, p := range r.Passes {
			p.ObserveExchange(ex)
		}
	}
	for ; i < len(jframes); i++ {
		for _, p := range r.Passes {
			p.ObserveJFrame(jframes[i])
		}
	}
}

// SetResult forwards the completed pipeline result to every pass that
// wants it (core calls this itself for inline passes; slice-driven runs
// call it before Reports).
func (r *Runner) SetResult(res *core.Result) {
	for _, p := range r.Passes {
		if rs, ok := p.(core.ResultSink); ok {
			rs.SetResult(res)
		}
	}
}

// Reports finalizes every pass, in registration order.
func (r *Runner) Reports() []PassReport {
	out := make([]PassReport, len(r.Passes))
	for i, p := range r.Passes {
		out[i] = PassReport{Name: p.Name(), Report: p.Finalize()}
	}
	return out
}

// drivePass is the compatibility wrappers' helper: replay slices through
// one pass and finalize it.
func drivePass(p Pass, jframes []*unify.JFrame, exchanges []*llc.Exchange) Report {
	r := Runner{Passes: []Pass{p}}
	r.DriveSlices(jframes, exchanges)
	return p.Finalize()
}

// PassParams carries the operating points the registry's constructors
// need. Zero values select the paper's defaults where one exists.
type PassParams struct {
	// SlotUS is the activity/protection time bucket (the compressed hour
	// in the cmds). Required by timeseries and protection.
	SlotUS int64
	// PracticalTimeoutUS is the protection analysis's practical timeout
	// (0: SlotUS, the cmds' convention).
	PracticalTimeoutUS int64
	// MinPackets is interference's per-pair packet floor (0: 50).
	MinPackets int
	// TCPLossMinSegs is tcploss's per-flow data-segment floor (0: 5).
	TCPLossMinSegs int
	// IsAP distinguishes infrastructure MACs (from scenario ground truth
	// or the meta.json roster). Required by interference and roam.
	IsAP func(dot80211.MAC) bool
	// Out is simulator ground truth; nil when analyzing a bare trace
	// directory. Passes marked NeedsTruth require it.
	Out *scenario.Output
	// VizFromUS/VizDurUS/VizWidth frame the viz pass's window, relative
	// to the first jframe.
	VizFromUS, VizDurUS int64
	VizWidth            int
}

// PassSpec describes one registered pass.
type PassSpec struct {
	Name string
	Desc string
	// NeedsTruth marks passes that require simulator ground truth (the
	// wired tap / oracle); they cannot run over a bare trace directory.
	NeedsTruth bool
	// Optional passes are excluded from the "all" selector (viz needs an
	// explicit window to be meaningful).
	Optional bool
	New      func(PassParams) Pass
}

// passRegistry lists every streaming analysis, in report order.
var passRegistry = []PassSpec{
	{Name: "summary", Desc: "Table 1 trace summary",
		New: func(PassParams) Pass { return NewSummaryPass() }},
	{Name: "coverage", Desc: "Fig. 6 wired-trace coverage", NeedsTruth: true,
		New: func(p PassParams) Pass { return NewCoveragePass(p.Out) }},
	{Name: "timeseries", Desc: "Fig. 8 activity time series",
		New: func(p PassParams) Pass { return NewTimeSeriesPass(p.SlotUS) }},
	{Name: "interference", Desc: "Fig. 9 interference loss rate",
		New: func(p PassParams) Pass {
			min := p.MinPackets
			if min <= 0 {
				min = 50
			}
			return NewInterferencePass(min, p.IsAP)
		}},
	{Name: "protection", Desc: "Fig. 10 overprotective APs",
		New: func(p PassParams) Pass {
			timeout := p.PracticalTimeoutUS
			if timeout == 0 {
				timeout = p.SlotUS
			}
			return NewProtectionPass(timeout, p.SlotUS)
		}},
	{Name: "diagnose", Desc: "§8 per-station diagnosis",
		New: func(PassParams) Pass { return NewDiagnosisPass() }},
	{Name: "tcploss", Desc: "Fig. 11 TCP loss attribution",
		New: func(p PassParams) Pass {
			min := p.TCPLossMinSegs
			if min <= 0 {
				min = 5
			}
			return NewTCPLossPass(min)
		}},
	{Name: "roam", Desc: "handoff detection from the exchange stream",
		New: func(p PassParams) Pass { return NewRoamingPass(p.IsAP) }},
	{Name: "viz", Desc: "Fig. 2 synchronized-trace window", Optional: true,
		New: func(p PassParams) Pass { return NewVizPassRelative(p.VizFromUS, p.VizDurUS, p.VizWidth) }},
}

// PassSpecs returns the registry in report order.
func PassSpecs() []PassSpec {
	out := make([]PassSpec, len(passRegistry))
	copy(out, passRegistry)
	return out
}

// NewPasses resolves a selector — "all" or a comma-separated name list —
// into constructed passes, in registry order. "all" expands to every
// non-optional pass, silently skipping truth-needing ones when params.Out
// is nil (the caller reports those as skipped); naming a truth-needing
// pass explicitly without ground truth is an error.
func NewPasses(selector string, params PassParams) ([]Pass, error) {
	want := map[string]bool{}
	all := selector == "" || selector == "all"
	if !all {
		for _, name := range strings.Split(selector, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			found := false
			for _, spec := range passRegistry {
				if spec.Name == name {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("analysis: unknown pass %q", name)
			}
			want[name] = true
		}
	}
	var out []Pass
	for _, spec := range passRegistry {
		switch {
		case all && (spec.Optional || (spec.NeedsTruth && params.Out == nil)):
			continue
		case !all && !want[spec.Name]:
			continue
		}
		if spec.NeedsTruth && params.Out == nil {
			return nil, fmt.Errorf("analysis: pass %q needs simulator ground truth (wired tap)", spec.Name)
		}
		out = append(out, spec.New(params))
	}
	return out, nil
}

// CorePasses converts to the slice type core.Config.Passes takes (Go's
// structural interfaces convert element-wise, not slice-wise).
func CorePasses(passes []Pass) []core.Pass {
	out := make([]core.Pass, len(passes))
	for i, p := range passes {
		out[i] = p
	}
	return out
}

// emitSlackUS bounds the unifier's local emission-order inversion: a
// jframe can be emitted after another whose UnivUS is up to roughly the
// unification search window (default 10 ms) later. Deferring an exchange
// until the jframe frontier clears CloseUS + emitSlackUS therefore
// guarantees every jframe with UnivUS <= CloseUS has been observed, making
// sliding-window overlap queries identical to whole-trace-index ones.
const emitSlackUS = 100_000

// exchangeDeferral holds exchanges (which arrive in canonical close order)
// until the jframe frontier has advanced past their CloseUS plus the
// emission slack. The buffer spans at most ~emitSlackUS of trace time plus
// the pipeline's watermark lag — bounded, unlike the slices it replaces.
type exchangeDeferral struct {
	// The hold is bounded by the emission slack plus watermark lag, not
	// O(trace). Each queued exchange carries a reference (Retain on push,
	// Release after delivery), so the driver may release its own reference
	// as soon as the observation call returns.
	q        []*llc.Exchange
	head     int
	frontier int64
}

// noteJFrame advances the frontier.
func (d *exchangeDeferral) noteJFrame(us int64) {
	if us > d.frontier {
		d.frontier = us
	}
}

// push enqueues an exchange, taking a reference for the queue slot.
func (d *exchangeDeferral) push(ex *llc.Exchange) {
	ex.Retain()
	d.q = append(d.q, ex)
}

// flush processes every queued exchange the frontier has cleared, in
// arrival (canonical) order.
func (d *exchangeDeferral) flush(process func(*llc.Exchange)) {
	for d.head < len(d.q) && d.q[d.head].CloseUS+emitSlackUS <= d.frontier {
		ex := d.q[d.head]
		d.q[d.head] = nil
		d.head++
		process(ex)
		ex.Release()
	}
	if d.head == len(d.q) {
		d.q, d.head = d.q[:0], 0
	}
}

// drain processes everything left (the streams have ended).
func (d *exchangeDeferral) drain(process func(*llc.Exchange)) {
	for d.head < len(d.q) {
		ex := d.q[d.head]
		d.q[d.head] = nil
		d.head++
		process(ex)
		ex.Release()
	}
	d.q, d.head = nil, 0
}

// iv is a half-open transmission interval [start, end) in universal µs.
type iv struct{ start, end int64 }

// overlapMaxAgeUS is how far back an overlap query's scan can reach: the
// legacy index scan breaks once intervals start more than 15 ms (the
// longest frame ≈ 12 ms) before the probe, so intervals older than the
// query window by that margin can never influence an answer.
const overlapMaxAgeUS = 15_000

// overlapPruneHorizonUS is the sliding window the streaming index retains
// behind the exchange-close trail. Queries probe attempt intervals of the
// closing exchange, which start at most the exchange's span plus its
// timeout before CloseUS — far less than this horizon — so pruning below
// it can never change an answer while keeping the index bounded.
const overlapPruneHorizonUS = 10_000_000

// overlapIndex answers §7.2's "did another transmission overlap [s, e) on
// this channel" over a sliding window of recently observed jframe
// intervals, replacing the legacy whole-trace sorted index. Intervals are
// kept sorted by start (the emission stream is near-sorted; inserts bubble
// at the tail) and pruned behind the exchange-close trail.
type overlapIndex struct {
	byCh map[dot80211.Channel]*chanIvs
}

type chanIvs struct {
	ivs []iv
	lo  int // ivs[:lo] pruned
}

func newOverlapIndex() overlapIndex {
	return overlapIndex{byCh: make(map[dot80211.Channel]*chanIvs)}
}

// add indexes one transmission interval.
func (x overlapIndex) add(ch dot80211.Channel, start, end int64) {
	c := x.byCh[ch]
	if c == nil {
		c = &chanIvs{}
		x.byCh[ch] = c
	}
	c.ivs = append(c.ivs, iv{start, end})
	for i := len(c.ivs) - 1; i > c.lo && c.ivs[i-1].start > c.ivs[i].start; i-- {
		c.ivs[i-1], c.ivs[i] = c.ivs[i], c.ivs[i-1]
	}
}

// overlapping reports whether any *other* transmission overlaps [s, e) on
// ch. The probe's own interval is in the index, so two overlappers are
// required. Identical scan rule to the legacy index: walk left from the
// first interval starting at or after e, stopping once a non-overlapping
// interval starts more than overlapMaxAgeUS before s.
func (x overlapIndex) overlapping(ch dot80211.Channel, s, e int64) bool {
	c := x.byCh[ch]
	if c == nil {
		return false
	}
	live := c.ivs[c.lo:]
	i := sort.Search(len(live), func(k int) bool { return live[k].start >= e })
	hits := 0
	for k := i - 1; k >= 0; k-- {
		if live[k].end <= s {
			if s-live[k].start > overlapMaxAgeUS {
				break
			}
			continue
		}
		hits++
		if hits >= 2 {
			return true
		}
	}
	return false
}

// prune drops intervals starting before cutoff, compacting occasionally.
func (x overlapIndex) prune(cutoff int64) {
	for _, c := range x.byCh {
		for c.lo < len(c.ivs) && c.ivs[c.lo].start < cutoff {
			c.lo++
		}
		if c.lo > 4096 && 2*c.lo >= len(c.ivs) {
			n := copy(c.ivs, c.ivs[c.lo:])
			c.ivs = c.ivs[:n]
			c.lo = 0
		}
	}
}

// frameInterval is the indexed extent of a jframe: its airtime, or 1 µs
// for zero-airtime events, matching the legacy index construction.
func frameInterval(j *unify.JFrame) (start, end int64) {
	end = j.EndUS()
	if end == j.UnivUS {
		end = j.UnivUS + 1
	}
	return j.UnivUS, end
}
