package analysis

import (
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/transport"
)

func ccFlow(algo string, port uint16, bytes int64, done bool) scenario.FlowCC {
	key := (&tcpsim.Segment{SrcIP: 0x0a000001, SrcPort: port, DstIP: 0x0b000001, DstPort: 80}).Key()
	return scenario.FlowCC{
		Key: key, Algo: algo, ClientIP: 0x0a000001, ClientPort: port,
		ServerIP: 0x0b000001, BytesAcked: bytes, Completed: done,
	}
}

func TestCCFairnessShares(t *testing.T) {
	flows := []scenario.FlowCC{
		ccFlow("bbr", 1, 600_000, true),
		ccFlow("bbr", 2, 200_000, false),
		ccFlow("cubic", 3, 150_000, true),
		ccFlow("reno", 4, 50_000, true),
	}
	rows := CCFairness(flows, 100)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted by name: bbr, cubic, reno.
	if rows[0].Algo != "bbr" || rows[0].Flows != 2 || rows[0].Completed != 1 {
		t.Errorf("bbr row = %+v", rows[0])
	}
	if rows[0].Share != 0.8 {
		t.Errorf("bbr share = %.2f, want 0.80", rows[0].Share)
	}
	// 800 KB over 100 s = 64 kbit/s.
	if got := rows[0].GoodputBps; got != 64_000 {
		t.Errorf("bbr goodput = %.0f bps, want 64000", got)
	}
	if !strings.Contains(FairnessTable(rows), "bbr") {
		t.Error("table missing bbr row")
	}
}

func TestCCConfusionReport(t *testing.T) {
	truth := []scenario.FlowCC{
		ccFlow("reno", 1, 0, true),
		ccFlow("reno", 2, 0, true),
		ccFlow("cubic", 3, 0, true),
		ccFlow("bbr", 4, 0, true),
	}
	pr := func(port uint16, algo string) transport.CCFingerprint {
		return transport.CCFingerprint{
			Key:  (&tcpsim.Segment{SrcIP: 0x0a000001, SrcPort: port, DstIP: 0x0b000001, DstPort: 80}).Key(),
			Algo: algo,
		}
	}
	prints := []transport.CCFingerprint{
		pr(1, "reno"),              // correct
		pr(2, "cubic"),             // wrong
		pr(3, transport.CCUnknown), // abstained
		pr(4, "bbr"),               // correct
		pr(999, "reno"),            // not in truth: ignored
	}
	rep := CCConfusionReport(truth, prints)
	if rep.Total != 4 || rep.Classified != 3 || rep.Correct != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Accuracy < 0.66 || rep.Accuracy > 0.67 {
		t.Errorf("accuracy = %.2f", rep.Accuracy)
	}
	if rep.Matrix["reno"]["cubic"] != 1 {
		t.Errorf("matrix = %v", rep.Matrix)
	}
	s := rep.String()
	if !strings.Contains(s, "accuracy") || !strings.Contains(s, "unknown") {
		t.Errorf("render missing pieces:\n%s", s)
	}
}

// TestWiredCCFingerprints exercises the wired-tap-to-exchange adapter over
// a real (small) mixed-CC scenario: the synthesized exchanges must parse
// back through the transport analyzer into fingerprintable flows joined to
// ground truth by key.
func TestWiredCCFingerprints(t *testing.T) {
	cfg := scenario.MixedCC()
	cfg.Pods, cfg.APs, cfg.Clients = 3, 3, 6
	cfg.Day = 30 * sim.Second
	cfg.FlowMeanGap = 3 * sim.Second
	out, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Wired) == 0 {
		t.Fatal("no wired tap traffic")
	}
	prints := WiredCCFingerprints(out)
	if len(prints) == 0 {
		t.Fatal("no flows reconstructed from the wired tap")
	}
	rep := CCConfusionReport(out.FlowCCs, prints)
	if rep.Total == 0 {
		t.Fatal("no fingerprints joined to ground truth: key mismatch between vantages")
	}
	if rep.Total < len(prints)/2 {
		t.Errorf("only %d of %d wired fingerprints matched ground truth", rep.Total, len(prints))
	}
}
