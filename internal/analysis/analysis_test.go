package analysis

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Shared scenario + pipeline run for all analysis tests.
var (
	sharedOut *scenario.Output
	sharedRes *core.Result
)

func setup(t *testing.T) (*scenario.Output, *core.Result) {
	t.Helper()
	if sharedOut != nil {
		return sharedOut, sharedRes
	}
	cfg := scenario.Default()
	cfg.Seed = 3
	cfg.Pods, cfg.APs, cfg.Clients = 8, 8, 14
	cfg.Day = 90 * sim.Second
	cfg.FlowMeanGap = 6 * sim.Second
	cfg.BFraction = 0.35
	out, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.DefaultConfig()
	ccfg.KeepExchanges = true
	ccfg.KeepJFrames = true
	res, err := core.Run(core.TracesFromBuffers(out.Traces), out.ClockGroups, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sharedOut, sharedRes = out, res
	return out, res
}

func TestCoverageHighAndShaped(t *testing.T) {
	out, res := setup(t)
	rep := Coverage(out, res.Exchanges)
	if rep.TotalWired == 0 {
		t.Fatal("no wired packets to compare")
	}
	// Paper: 97% of wired-trace packets also in the wireless trace.
	if rep.Overall < 0.85 {
		t.Errorf("overall coverage = %.3f, want high (paper 0.97)", rep.Overall)
	}
	// APs are covered at least as well as clients (pods sit near APs).
	if rep.APCoverage < rep.ClientCoverage-0.05 {
		t.Errorf("AP coverage (%.3f) should not trail client coverage (%.3f)",
			rep.APCoverage, rep.ClientCoverage)
	}
	if len(rep.Stations) == 0 {
		t.Error("no per-station rows")
	}
	for _, s := range rep.Stations {
		if f := s.Fraction(); f < 0 || f > 1 {
			t.Errorf("station %v coverage out of range: %f", s.MAC, f)
		}
	}
}

func TestOracleCoverage(t *testing.T) {
	out, _ := setup(t)
	overall, per := OracleCoverage(out)
	// Paper's controlled experiment: 95% of client link-level events
	// captured; related studies 80–97%.
	if overall < 0.8 {
		t.Errorf("oracle coverage = %.3f, want ≥ 0.8", overall)
	}
	if len(per) == 0 {
		t.Error("no per-client coverage")
	}
}

func TestPodSweepShape(t *testing.T) {
	out, _ := setup(t)
	rows, err := PodSweep(out, []int{8, 6, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Fig. 7 shape: client coverage degrades markedly with fewer pods;
	// AP coverage stays comparatively stable.
	if rows[2].ClientCoverage > rows[0].ClientCoverage {
		t.Errorf("client coverage should not improve when pods are removed: %v", rows)
	}
	apDrop := rows[0].APCoverage - rows[2].APCoverage
	cliDrop := rows[0].ClientCoverage - rows[2].ClientCoverage
	if cliDrop < apDrop-0.02 {
		t.Errorf("client coverage should degrade at least as much as AP coverage (cli %.3f vs ap %.3f)",
			cliDrop, apDrop)
	}
}

func TestSummaryTable1(t *testing.T) {
	out, res := setup(t)
	s := Summarize(res, res.JFrames)
	if s.Events == 0 || s.JFrames == 0 {
		t.Fatal("empty summary")
	}
	// Error events are a substantial share (paper: 47%).
	if s.ErrorEventPct < 5 || s.ErrorEventPct > 80 {
		t.Errorf("error event share = %.1f%%, implausible", s.ErrorEventPct)
	}
	// Multiple observations per transmission (paper: 2.97).
	if s.AvgInstances < 1.5 {
		t.Errorf("avg instances = %.2f, want > 1.5", s.AvgInstances)
	}
	if s.UniqueAPs == 0 || s.UniqueClients == 0 {
		t.Error("no stations classified")
	}
	if s.UniqueAPs > len(out.APs) {
		t.Errorf("classified %d APs, only %d exist", s.UniqueAPs, len(out.APs))
	}
	if s.BeaconFrames == 0 || s.DataFrames == 0 {
		t.Error("frame type counts empty")
	}
	if !strings.Contains(s.String(), "jframes") {
		t.Error("String() missing fields")
	}
}

func TestInferenceRates(t *testing.T) {
	_, res := setup(t)
	inf := Inference(res.LLCStats)
	if inf.Attempts == 0 {
		t.Fatal("no attempts")
	}
	// Paper: 0.58% attempts, 0.14% exchanges. Dense monitor coverage here
	// keeps it small too.
	if inf.AttemptRate() > 0.05 {
		t.Errorf("attempt inference rate %.4f too high", inf.AttemptRate())
	}
	if inf.ExchangeRate() > 0.05 {
		t.Errorf("exchange inference rate %.4f too high", inf.ExchangeRate())
	}
}

func TestTimeSeriesFig8(t *testing.T) {
	out, res := setup(t)
	slotUS := out.Cfg.HourDur().US64() // one "hour" per slot
	slots := TimeSeries(res.JFrames, slotUS)
	if len(slots) < 20 {
		t.Fatalf("slots = %d, want ~24", len(slots))
	}
	var peakClients, nightClients int
	for i, s := range slots {
		if i >= 10 && i <= 16 && s.ActiveClients > peakClients {
			peakClients = s.ActiveClients
		}
		if i >= 1 && i <= 5 && s.ActiveClients > nightClients {
			nightClients = s.ActiveClients
		}
	}
	// Diurnal shape: more clients active midday than overnight.
	if peakClients <= nightClients {
		t.Errorf("no diurnal shape: peak=%d night=%d", peakClients, nightClients)
	}
	// Beacons present in every slot (APs beacon regardless of activity).
	for i, s := range slots[:len(slots)-1] {
		if s.BeaconBytes == 0 {
			t.Errorf("slot %d has no beacon traffic", i)
		}
	}
	// ARP pathology visible.
	var arp int64
	for _, s := range slots {
		arp += s.ARPBytes
	}
	if arp == 0 {
		t.Error("no ARP broadcast traffic observed")
	}
	// Broadcast consumes a noticeable share of airtime (paper ~10%).
	share := BroadcastAirtimeShare(slots)
	if share < 0.01 || share > 0.6 {
		t.Errorf("broadcast airtime share = %.3f, implausible", share)
	}
}

func TestInterferenceFig9(t *testing.T) {
	out, res := setup(t)
	apSet := map[dot80211.MAC]bool{}
	for _, ap := range out.APs {
		apSet[ap.MAC] = true
	}
	rep := Interference(res.JFrames, res.Exchanges, 20, func(m dot80211.MAC) bool { return apSet[m] })
	if len(rep.Pairs) == 0 {
		t.Fatal("no qualifying (s,r) pairs")
	}
	// Background loss exists but is bounded.
	if rep.AvgBackgroundLoss < 0 || rep.AvgBackgroundLoss > 0.6 {
		t.Errorf("background loss = %.3f", rep.AvgBackgroundLoss)
	}
	// X values form a valid CDF in [0,1].
	for _, x := range rep.XCDF {
		if x < 0 || x > 1 {
			t.Fatalf("X out of range: %f", x)
		}
	}
	// Median X is small (paper: 50% of pairs ≤ 0.025); some interference
	// exists in a building with hidden terminals.
	if med := rep.XPercentile(0.5); med > 0.2 {
		t.Errorf("median interference loss rate = %.3f, want small", med)
	}
	if rep.FractionWithInterference == 0 {
		t.Error("no pair shows interference at all")
	}
}

func TestProtectionFig10(t *testing.T) {
	out, res := setup(t)
	slotUS := out.Cfg.HourDur().US64()
	rep := Protection(res.JFrames, slotUS, slotUS)
	if rep.PotentialSpeedup < 1.9 || rep.PotentialSpeedup > 2.05 {
		t.Errorf("potential speedup = %.2f, want ≈2 (footnote 7)", rep.PotentialSpeedup)
	}
	var protSlots int
	for _, s := range rep.Slots {
		if s.ProtectedAPs > 0 {
			protSlots++
		}
		if s.Overprotective > s.ProtectedAPs {
			t.Fatal("overprotective count exceeds protected count")
		}
		if s.GOnOverprotected > s.ActiveGClients {
			t.Fatal("affected g clients exceed active g clients")
		}
	}
	// With 30% b clients and the 1-hour timeout, protection shows up.
	if protSlots == 0 {
		t.Error("protection mode never observed despite b clients")
	}
}

func TestTCPLossFig11(t *testing.T) {
	_, res := setup(t)
	var rates []FlowLoss
	for _, r := range res.Transport.LossRates(5) {
		rates = append(rates, FlowLoss{
			DataSegs: r.DataSegs, Losses: r.Losses,
			WirelessLoss: r.WirelessLoss, WiredLoss: r.WiredLoss,
			LossRate: r.LossRate,
		})
	}
	rep := TCPLoss(rates)
	if rep.Flows == 0 {
		t.Fatal("no flows for loss analysis")
	}
	// Fig. 11: the wireless component dominates TCP loss.
	if rep.TotalLosses > 10 && rep.WirelessShare < 0.5 {
		t.Errorf("wireless loss share = %.3f, paper expects dominance", rep.WirelessShare)
	}
}

func TestVisualize(t *testing.T) {
	_, res := setup(t)
	if len(res.JFrames) < 10 {
		t.Skip("too few jframes")
	}
	from := res.JFrames[100].UnivUS
	s := Visualize(res.JFrames, from, from+5000, 100)
	if !strings.Contains(s, "universal time") || !strings.Contains(s, "frames:") {
		t.Error("visualization missing sections")
	}
	if Visualize(nil, 0, 100, 80) == "" {
		t.Error("empty window should still render a message")
	}
}

func TestTransportRTTSamplesExist(t *testing.T) {
	_, res := setup(t)
	var samples int
	for _, f := range res.Transport.Flows() {
		for _, ss := range f.RTTSamplesUS {
			samples += len(ss)
		}
	}
	_ = transport.LossWireless // keep import for clarity of provenance
	if samples == 0 {
		t.Error("no RTT samples gathered by the covering-ACK oracle")
	}
}

func TestRoamingOracleExperiment(t *testing.T) {
	cfg := scenario.Default()
	cfg.Seed = 9
	cfg.Pods, cfg.APs, cfg.Clients = 8, 8, 6
	cfg.Day = 60 * sim.Second
	cfg.OracleLocations = 6 // scaled version of the paper's 12 locations
	out, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cov := RoamingOracleCoverage(out)
	// Paper: 95% of the laptop's link-level events observed; related
	// studies report 80–97%.
	if cov < 0.8 {
		t.Errorf("roaming oracle coverage = %.3f, want ≥ 0.8", cov)
	}
	// Disabled case sentinel.
	plain, err := scenario.Run(scenario.Default())
	if err != nil {
		t.Fatal(err)
	}
	if RoamingOracleCoverage(plain) != -1 {
		t.Error("sentinel for missing oracle not returned")
	}
}

func TestDiagnose(t *testing.T) {
	_, res := setup(t)
	diags := Diagnose(res.JFrames, res.Exchanges)
	if len(diags) < 5 {
		t.Fatalf("only %d stations diagnosed", len(diags))
	}
	// Sorted by airtime, descending.
	for i := 1; i < len(diags); i++ {
		if diags[i].AirtimeUS > diags[i-1].AirtimeUS {
			t.Fatal("not sorted by airtime")
		}
	}
	var share float64
	var anyFindings bool
	for _, d := range diags {
		share += d.AirtimeShare
		if d.AirtimeShare < 0 || d.AirtimeShare > 1 {
			t.Fatalf("share out of range: %+v", d)
		}
		if d.InterferenceExposure < 0 || d.InterferenceExposure > 1 {
			t.Fatalf("exposure out of range: %+v", d)
		}
		if len(d.Findings) > 0 {
			anyFindings = true
		}
	}
	if share < 0.9 || share > 1.01 {
		t.Errorf("airtime shares sum to %.3f, want ≈1", share)
	}
	if !anyFindings {
		t.Error("no findings at all in a building with lossy links and protection overhead")
	}
}
