package analysis

import (
	"bytes"
	"sort"

	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/llc"
	"repro/internal/scenario"
	"repro/internal/tcpsim"
)

// segIdentity keys a TCP packet for wired↔wireless matching: the flow, the
// direction, the sequence position and the flags identify one packet
// (retransmissions repeat the identity; matching is by multiset).
type segIdentity struct {
	key     tcpsim.FlowKey
	srcIP   uint32
	seq     uint32
	payload uint16
	flags   uint8
}

func identityOf(seg tcpsim.Segment) segIdentity {
	return segIdentity{
		key: seg.Key(), srcIP: seg.SrcIP, seq: seg.Seq,
		payload: seg.PayloadLen, flags: seg.Flags,
	}
}

// StationCoverage is one station's wired-vs-wireless coverage (Fig. 6).
type StationCoverage struct {
	MAC      dot80211.MAC
	IsAP     bool
	Packets  int // wired packets attributable to this transmitter
	Captured int // of those, also present in the unified wireless trace
}

// Fraction returns captured/packets.
func (s StationCoverage) Fraction() float64 {
	if s.Packets == 0 {
		return 1
	}
	return float64(s.Captured) / float64(s.Packets)
}

// CoverageReport reproduces §6's wired-trace comparison and Fig. 6.
type CoverageReport struct {
	Overall    float64 // fraction of wired packets seen wirelessly (97% in the paper)
	TotalWired int
	Stations   []StationCoverage

	// Fig. 6 summary lines.
	ClientsAt100, APsAt100   float64 // fraction of stations with 100% coverage
	ClientsOver95, APsOver95 float64 // fraction with ≥95%
	ClientCoverage           float64 // aggregate over client-transmitted packets
	APCoverage               float64 // aggregate over AP-transmitted packets
}

// CoveragePass accumulates the wireless trace's segment-identity multiset
// incrementally from the exchange stream; Finalize matches it against the
// wired tap. Exchange-side state is a pure per-identity count, so the pass
// shards across the parallel pipeline's transport workers
// (core.ShardedPass) and the shards merge by summation.
type CoveragePass struct {
	named
	noJFrame
	out  *scenario.Output
	seen map[segIdentity]int
}

// NewCoveragePass builds the §6 coverage pass over the run's ground truth.
func NewCoveragePass(out *scenario.Output) *CoveragePass {
	return &CoveragePass{named: "coverage", out: out, seen: make(map[segIdentity]int)}
}

// observeCoverage records one exchange's TCP segment identity, if any.
func observeCoverage(seen map[segIdentity]int, ex *llc.Exchange) {
	data := ex.Data()
	if data == nil {
		return
	}
	seg, err := tcpsim.DecodeSegment(data.Frame.Body)
	if err != nil {
		return
	}
	seen[identityOf(seg)]++
}

// ObserveExchange implements Pass.
func (p *CoveragePass) ObserveExchange(ex *llc.Exchange) { observeCoverage(p.seen, ex) }

// coverageShard is one transport worker's identity accumulator.
type coverageShard struct {
	noJFrame
	seen map[segIdentity]int
}

func (s *coverageShard) ObserveExchange(ex *llc.Exchange) { observeCoverage(s.seen, ex) }

// NewShard implements core.ShardedPass.
func (p *CoveragePass) NewShard() core.Pass {
	return &coverageShard{seen: make(map[segIdentity]int)}
}

// AbsorbShard implements core.ShardedPass: identity counts sum.
func (p *CoveragePass) AbsorbShard(s core.Pass) {
	for id, n := range s.(*coverageShard).seen {
		p.seen[id] += n
	}
}

// Finalize implements Pass, returning the *CoverageReport.
func (p *CoveragePass) Finalize() Report { return p.finalize() }

func (p *CoveragePass) finalize() *CoverageReport {
	out, seen := p.out, p.seen
	clientAP := make(map[dot80211.MAC]dot80211.MAC, len(out.Clients))
	clientByIP := make(map[uint32]dot80211.MAC, len(out.Clients))
	for _, c := range out.Clients {
		clientAP[c.MAC] = out.APs[c.APIndex].MAC
		clientByIP[c.IP] = c.MAC
	}

	perStation := make(map[dot80211.MAC]*StationCoverage)
	get := func(mac dot80211.MAC, isAP bool) *StationCoverage {
		sc := perStation[mac]
		if sc == nil {
			sc = &StationCoverage{MAC: mac, IsAP: isAP}
			perStation[mac] = sc
		}
		return sc
	}

	rep := &CoverageReport{}
	for _, wp := range out.Wired {
		var tx dot80211.MAC
		var isAP bool
		if wp.Downlink {
			// Only packets the AP actually received (and hence
			// transmitted on the air) count.
			if !wp.Delivered {
				continue
			}
			ap, ok := clientAP[wp.Dst]
			if !ok {
				continue
			}
			tx, isAP = ap, true
		} else {
			cm, ok := clientByIP[wp.Seg.SrcIP]
			if !ok {
				continue
			}
			tx, isAP = cm, false
		}
		sc := get(tx, isAP)
		sc.Packets++
		rep.TotalWired++
		id := identityOf(wp.Seg)
		if seen[id] > 0 {
			seen[id]--
			sc.Captured++
		}
	}

	var capTotal, cliPk, cliCap, apPk, apCap int
	var cli100, cliOver95, cliN, ap100, apOver95, apN int
	for _, sc := range perStation {
		rep.Stations = append(rep.Stations, *sc)
		capTotal += sc.Captured
		f := sc.Fraction()
		if sc.IsAP {
			apPk += sc.Packets
			apCap += sc.Captured
			apN++
			if f >= 1 {
				ap100++
			}
			if f >= 0.95 {
				apOver95++
			}
		} else {
			cliPk += sc.Packets
			cliCap += sc.Captured
			cliN++
			if f >= 1 {
				cli100++
			}
			if f >= 0.95 {
				cliOver95++
			}
		}
	}
	sort.Slice(rep.Stations, func(i, j int) bool {
		fi, fj := rep.Stations[i].Fraction(), rep.Stations[j].Fraction()
		if fi != fj {
			return fi < fj
		}
		// Total order: map iteration fed the slice, so ties (common at
		// 100% coverage) need a deterministic break.
		return bytes.Compare(rep.Stations[i].MAC[:], rep.Stations[j].MAC[:]) < 0
	})
	if rep.TotalWired > 0 {
		rep.Overall = float64(capTotal) / float64(rep.TotalWired)
	}
	if cliN > 0 {
		rep.ClientsAt100 = float64(cli100) / float64(cliN)
		rep.ClientsOver95 = float64(cliOver95) / float64(cliN)
	}
	if apN > 0 {
		rep.APsAt100 = float64(ap100) / float64(apN)
		rep.APsOver95 = float64(apOver95) / float64(apN)
	}
	if cliPk > 0 {
		rep.ClientCoverage = float64(cliCap) / float64(cliPk)
	}
	if apPk > 0 {
		rep.APCoverage = float64(apCap) / float64(apPk)
	}
	return rep
}

// FinalizeWindow implements WindowedPass: match the window's captured
// segment-identity multiset against the full wired tap, then start a
// fresh multiset. (Windowed coverage reads as "what share of the whole
// wired trace this window captured"; the one-shot run remains the §6
// figure.)
func (p *CoveragePass) FinalizeWindow(int64) Report {
	rep := p.finalize()
	p.seen = make(map[segIdentity]int)
	return rep
}

// Evict implements WindowedPass: identity counts are dropped wholesale by
// the window reset.
func (p *CoveragePass) Evict(int64) {}

// Coverage compares the wired distribution trace against the unified
// wireless trace: for every wired packet that must have appeared as a
// unicast DATA frame on the air, was it captured by any monitor (§6)?
// Uplink packets were transmitted by the client; downlink (delivered)
// packets were transmitted by the client's AP. Compatibility wrapper over
// CoveragePass for retained exchange slices.
func Coverage(out *scenario.Output, exchanges []*llc.Exchange) *CoverageReport {
	p := NewCoveragePass(out)
	for _, ex := range exchanges {
		p.ObserveExchange(ex)
	}
	return p.finalize()
}

// OracleCoverage reproduces the §6 controlled experiment: the simulator's
// ground truth is the oracle that knows every link-level event each station
// generated; coverage is the fraction captured by at least one monitor
// (95% in the paper). Returns overall coverage over client-generated
// transmissions and the per-client breakdown.
func OracleCoverage(out *scenario.Output) (float64, map[dot80211.MAC]float64) {
	type cnt struct{ tx, cap int }
	per := make(map[dot80211.MAC]*cnt)
	clients := make(map[dot80211.MAC]bool, len(out.Clients))
	for _, c := range out.Clients {
		clients[c.MAC] = true
		per[c.MAC] = &cnt{}
	}
	var tot, cap_ int
	for _, tx := range out.Truth {
		if tx.Kind == scenario.TxNoise || !clients[tx.SrcMAC] {
			continue
		}
		c := per[tx.SrcMAC]
		c.tx++
		tot++
		if out.CapturedAny[tx.ID] > 0 {
			c.cap++
			cap_++
		}
	}
	frac := make(map[dot80211.MAC]float64, len(per))
	for m, c := range per {
		if c.tx > 0 {
			frac[m] = float64(c.cap) / float64(c.tx)
		}
	}
	if tot == 0 {
		return 0, frac
	}
	return float64(cap_) / float64(tot), frac
}

// PodCoverage is one row of Fig. 7: coverage with a reduced pod set.
type PodCoverage struct {
	Pods           int
	Radios         int
	Synced         bool // false when the sync bootstrap partitioned (10 pods)
	APCoverage     float64
	ClientCoverage float64
	Overall        float64
}

// PodSweep reproduces Fig. 7: rerun the whole pipeline on reduced pod
// subsets (removed by the building's visual-redundancy rule) and measure
// the wired-trace coverage of each configuration.
func PodSweep(out *scenario.Output, podCounts []int) ([]PodCoverage, error) {
	var rows []PodCoverage
	for _, n := range podCounts {
		reduced := out.Building.ReducePods(n)
		keep := make(map[int32]bool)
		for _, pod := range reduced.Pods {
			for _, r := range pod.Radios {
				keep[int32(r)] = true
			}
		}
		traces := make(map[int32][]byte)
		for rid, buf := range out.Traces {
			if keep[rid] {
				traces[rid] = buf.Bytes()
			}
		}
		var groups [][]int32
		for _, g := range out.ClockGroups {
			if keep[g[0]] {
				groups = append(groups, g)
			}
		}
		cfg := core.DefaultConfig()
		covPass := NewCoveragePass(out)
		cfg.Passes = []core.Pass{covPass}
		res, err := core.Run(traces, groups, cfg, nil)
		if err != nil {
			return rows, err
		}
		cov := covPass.finalize()
		rows = append(rows, PodCoverage{
			Pods: len(reduced.Pods), Radios: len(traces),
			Synced:     res.Bootstrap.Synced(),
			APCoverage: cov.APCoverage, ClientCoverage: cov.ClientCoverage,
			Overall: cov.Overall,
		})
	}
	return rows, nil
}

// RoamingOracleCoverage measures the §6 controlled experiment directly:
// the fraction of the roaming oracle client's link-level transmissions that
// the monitoring platform captured (the paper reports 95%). Returns -1 if
// the scenario ran without an oracle client.
func RoamingOracleCoverage(out *scenario.Output) float64 {
	if out.OracleMAC.IsZero() {
		return -1
	}
	var tx, captured int
	for _, t := range out.Truth {
		if t.SrcMAC != out.OracleMAC {
			continue
		}
		tx++
		if out.CapturedAny[t.ID] > 0 {
			captured++
		}
	}
	if tx == 0 {
		return 0
	}
	return float64(captured) / float64(tx)
}
