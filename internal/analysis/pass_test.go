package analysis

import (
	"testing"

	"repro/internal/llc"
)

// TestXPercentileNearestRank is the regression for the nearest-rank
// off-by-one: int(p·n) selects one rank too high — p=0.5 of a 2-element
// CDF must return the lower element (rank ⌈p·n⌉ = 1), not the max.
func TestXPercentileNearestRank(t *testing.T) {
	cases := []struct {
		cdf  []float64
		p    float64
		want float64
	}{
		{[]float64{0.1, 0.9}, 0.5, 0.1}, // the motivating case: was 0.9
		{[]float64{0.1, 0.9}, 0.25, 0.1},
		{[]float64{0.1, 0.9}, 0.75, 0.9},
		{[]float64{0.1, 0.9}, 1.0, 0.9},
		{[]float64{1, 2, 3, 4}, 0.5, 2},
		{[]float64{1, 2, 3, 4}, 0.25, 1},
		{[]float64{1, 2, 3, 4}, 0.9, 4},  // ⌈3.6⌉ = rank 4
		{[]float64{1, 2, 3, 4}, 0.75, 3}, // exact boundary: rank 3
		{[]float64{1, 2, 3, 4}, 0.0, 1},
		{[]float64{7}, 0.5, 7},
		{nil, 0.5, 0},
	}
	for _, tc := range cases {
		r := &InterferenceReport{XCDF: tc.cdf}
		if got := r.XPercentile(tc.p); got != tc.want {
			t.Errorf("XPercentile(%v) over %v = %v, want %v", tc.p, tc.cdf, got, tc.want)
		}
	}
}

// TestNewPassesSelector pins the registry's selector semantics.
func TestNewPassesSelector(t *testing.T) {
	// "all" without ground truth: every non-optional, truth-free pass, in
	// registry order.
	passes, err := NewPasses("all", PassParams{SlotUS: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range passes {
		names = append(names, p.Name())
	}
	want := []string{"summary", "timeseries", "interference", "protection", "diagnose", "tcploss", "roam"}
	if len(names) != len(want) {
		t.Fatalf("all (no truth) = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("all (no truth) = %v, want %v", names, want)
		}
	}

	if _, err := NewPasses("nosuch", PassParams{}); err == nil {
		t.Error("unknown pass name did not error")
	}
	if _, err := NewPasses("coverage", PassParams{}); err == nil {
		t.Error("truth-needing pass without ground truth did not error")
	}
	one, err := NewPasses("diagnose,summary", PassParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 2 || one[0].Name() != "summary" || one[1].Name() != "diagnose" {
		t.Errorf("named selection = %v, want registry order [summary diagnose]", one)
	}
}

// TestExchangeDeferral pins the deferral invariant: an exchange is
// processed only once the jframe frontier has cleared CloseUS plus the
// emission slack, in arrival order, and drain releases the rest.
func TestExchangeDeferral(t *testing.T) {
	var d exchangeDeferral
	var got []int64
	record := func(ex *llc.Exchange) { got = append(got, ex.CloseUS) }

	d.push(&llc.Exchange{CloseUS: 100})
	d.push(&llc.Exchange{CloseUS: 200})
	d.noteJFrame(100 + emitSlackUS - 1)
	d.flush(record)
	if len(got) != 0 {
		t.Fatalf("flushed %v before the frontier cleared CloseUS+slack", got)
	}
	d.noteJFrame(100 + emitSlackUS)
	d.flush(record)
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("after frontier 100+slack got %v, want [100]", got)
	}
	d.push(&llc.Exchange{CloseUS: 300})
	d.drain(record)
	if len(got) != 3 || got[1] != 200 || got[2] != 300 {
		t.Fatalf("drain got %v, want [100 200 300]", got)
	}
}
