package unify

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/timesync"
	"repro/internal/tracefile"
)

// snapshotStream drains a unifier, rendering each emitted frame to a
// deterministic string and releasing it immediately — so the test
// exercises the pooled lifecycle (released frames are recycled into
// later emissions) while retaining nothing but the rendering.
func snapshotStream(t *testing.T, u *Unifier) []string {
	t.Helper()
	var out []string
	for {
		j, err := u.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, fmt.Sprintf("t=%d disp=%d rate=%d ch=%d wl=%d v=%v phy=%v wire=%x frame=%+v inst=%+v",
			j.UnivUS, j.DispersionUS, j.Rate, j.Channel, j.WireLen, j.Valid, j.PhyOnly,
			j.Wire, j.Frame, j.Instances))
		j.Release()
	}
}

// coalesceBed generates a dense testbed: clusters of distinct frames
// transmitted near-simultaneously, each heard by many radios, plus
// corrupt copies and phy errors — enough valid entries per arrival batch
// to engage the sharded coalescer, with corrupt-attach and resync paths
// exercised alongside.
func coalesceBed(seed int64, radios int, clusters int) *testbed {
	tb := newTestbed(seed)
	ids := make([]int32, radios)
	for i := range ids {
		ids[i] = int32(i + 1)
		tb.addRadio(ids[i], int64(i*1500), float64(i-radios/2)*2.5)
	}
	// Bootstrap window: broadcast frames every 50 ms of the first second,
	// heard everywhere.
	for ns := int64(0); ns < 1_000_000_000; ns += 50_000_000 {
		tb.tx(ns, ids...)
	}
	ns := int64(1_200_000_000)
	for c := 0; c < clusters; c++ {
		// Three distinct frames inside one arrival neighborhood, with
		// staggered audiences.
		w1 := tb.tx(ns, ids...)
		tb.tx(ns+40_000, ids[:radios*2/3]...)
		tb.tx(ns+80_000, ids[radios/3:]...)
		// A corrupt copy of the first frame at one radio, and a phy error
		// at another.
		corrupt := append([]byte(nil), w1...)
		corrupt[len(corrupt)-5] ^= 0xff
		tb.txWire(ns+2_000, corrupt, 0, ids[0])
		tb.txWire(ns+90_000, nil, tracefile.FlagPhyErr, ids[1])
		ns += 7_000_000 * (1 + int64(c%3))
	}
	return tb
}

// TestCoalesceWorkerParity pins the sharded coalescer's contract: the
// emitted jframe stream is identical at every CoalesceWorkers setting,
// including the serial fallback.
func TestCoalesceWorkerParity(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		var want []string
		for _, w := range []int{0, 1, 2, 3, 8} {
			tb := coalesceBed(seed, 14, 120)
			cfg := DefaultConfig()
			cfg.CoalesceWorkers = w
			got := snapshotStream(t, tb.build(t, cfg))
			if len(got) == 0 {
				t.Fatalf("seed %d workers %d: empty stream", seed, w)
			}
			if want == nil {
				want = got
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d workers %d: %d frames, serial emitted %d", seed, w, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d workers %d: frame %d diverges:\n got %s\nwant %s",
						seed, w, i, got[i], want[i])
				}
			}
		}
	}
}

// allocCeilingPerFrame is the pinned regression ceiling for steady-state
// unification: amortized heap allocations per emitted jframe, measured
// over a full run (bootstrap excluded, unifier construction included).
// The pooled lifecycle holds the hot path near 1 alloc/frame; the
// ceiling leaves headroom for noise, not for regressions — the pre-pool
// code measured well above 4.
const allocCeilingPerFrame = 3.0

// TestUnifyAllocsPerFrame guards the pooled frame lifecycle: releasing
// every frame must hold steady-state allocation near zero per frame.
func TestUnifyAllocsPerFrame(t *testing.T) {
	tb := coalesceBed(3, 10, 150)
	cfg := DefaultConfig()

	// Bootstrap once outside the measurement: its window copies and graph
	// solve are per-run setup, not part of the streaming hot path.
	var window []tracefile.Record
	for _, recs := range tb.recs {
		for _, rec := range recs {
			if rec.LocalUS < 1_000_000 {
				window = append(window, rec)
			}
		}
	}
	boot, err := timesync.Bootstrap(window, nil)
	if err != nil {
		t.Fatal(err)
	}

	frames := 0
	run := func() {
		sources := map[int32]Source{}
		for r, recs := range tb.recs {
			sources[r] = NewSliceSource(recs)
		}
		u := New(cfg, sources, boot)
		for {
			j, err := u.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			frames++
			j.Release()
		}
	}
	run() // count frames and warm the pools
	if frames == 0 {
		t.Fatal("no frames emitted")
	}
	n := frames
	avg := testing.AllocsPerRun(3, run)
	perFrame := avg / float64(n)
	t.Logf("%.2f allocs/frame over %d frames", perFrame, n)
	if perFrame > allocCeilingPerFrame {
		t.Fatalf("%.2f allocs per frame exceeds the pinned ceiling %.1f", perFrame, allocCeilingPerFrame)
	}
}
