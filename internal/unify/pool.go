// Pooled jframe lifecycle: the explicit-ownership half of the zero-copy
// data plane.
//
// # Frame ownership
//
// Every *JFrame produced by Unifier.Next (and by the hmerge reader) is
// POOLED: it starts with one ownership reference held by the caller, and
// when the last reference is dropped the frame's storage (Wire buffer,
// Instances) is recycled for the next frame. The rules:
//
//   - The receiver of a frame OWNS one reference and must call Release
//     exactly once when done with it.
//   - Handing a frame to another long-lived holder requires Retain (one
//     per additional holder), each balanced by its own Release.
//   - Observers that only look at a frame during a call (analysis passes,
//     sinks) BORROW it: no Retain needed, but no field may be kept past
//     the call — copy out (or Retain) to keep anything.
//   - After your Release, every pointer into the frame (Wire, Frame.Body,
//     Instances) is invalid: the buffers will be rewritten by a future
//     frame.
//
// Frames built as plain literals (&JFrame{...}) are never recycled;
// Retain/Release are safe no-ops on them, so generic code need not care
// how a frame was built.
package unify

import (
	"sync"
	"sync/atomic"

	"repro/internal/dot80211"
)

var jframePool = sync.Pool{New: func() any { return new(JFrame) }}

// NewJFrame returns a pooled, zeroed jframe owned by the caller: the
// caller holds its single ownership reference and must balance it with
// Release.
func NewJFrame() *JFrame {
	j := jframePool.Get().(*JFrame)
	atomic.StoreInt32(&j.refs, 1)
	j.pooled = true
	return j
}

// Retain adds an ownership reference; the frame will not be recycled
// until every reference has been Released.
func (j *JFrame) Retain() { atomic.AddInt32(&j.refs, 1) }

// Release drops one ownership reference. Dropping the last reference of a
// pooled frame recycles its storage — the frame and everything it points
// to (Wire, Frame.Body, Instances) must not be touched afterwards.
// Safe on literal-built frames, which are never recycled.
func (j *JFrame) Release() {
	if atomic.AddInt32(&j.refs, -1) != 0 || !j.pooled {
		return
	}
	wire := j.wireBuf[:0]
	inst := j.Instances[:0]
	*j = JFrame{}
	j.wireBuf = wire
	j.Instances = inst
	jframePool.Put(j)
}

// Clone returns an independently owned deep copy of the frame (reference
// count 1, storage copied). This is the copy-to-retain escape hatch for
// holders that want a frame to outlive the producer's pooling entirely.
func (j *JFrame) Clone() *JFrame {
	c := NewJFrame()
	inst := append(c.Instances[:0], j.Instances...)
	wireBuf := c.wireBuf
	*c = *j
	atomic.StoreInt32(&c.refs, 1)
	c.pooled = true
	c.Instances = inst
	c.wireBuf = wireBuf
	c.SetWire(j.Wire)
	c.rebaseBody(&j.Frame)
	return c
}

// SetWire copies b into the frame's owned buffer and points Wire at it,
// so the frame stays valid after b's backing storage is reused. Callers
// filling a pooled frame from a transient block buffer (the hmerge
// reader) must use this rather than aliasing the buffer.
func (j *JFrame) SetWire(b []byte) {
	if len(b) == 0 {
		j.Wire = nil
		return
	}
	j.wireBuf = append(j.wireBuf[:0], b...)
	j.Wire = j.wireBuf
}

// rebaseBody re-points Frame.Body into the frame's own Wire copy. src is
// the decode of the original buffer Wire was copied from.
func (j *JFrame) rebaseBody(src *dot80211.Frame) {
	if src.Body == nil {
		return
	}
	off := src.BodyOffset()
	j.Frame.Body = j.Wire[off : off+len(src.Body)]
}
