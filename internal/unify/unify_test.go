package unify

import (
	"io"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/dot80211"
	"repro/internal/timesync"
	"repro/internal/tracefile"
)

// testbed generates synthetic multi-radio traces with known ground truth.
type testbed struct {
	clocks map[int32]*clock.Clock
	recs   map[int32][]tracefile.Record
	rng    *rand.Rand
	seq    uint16
}

func newTestbed(seed int64) *testbed {
	return &testbed{
		clocks: map[int32]*clock.Clock{},
		recs:   map[int32][]tracefile.Record{},
		rng:    rand.New(rand.NewSource(seed)),
	}
}

func (tb *testbed) addRadio(id int32, offUS int64, skewPPM float64) {
	tb.clocks[id] = &clock.Clock{OffsetNS: offUS * 1000, SkewPPM: skewPPM}
	tb.recs[id] = nil
}

// tx emits a unique data frame at true time (ns) heard by the given radios.
func (tb *testbed) tx(trueNS int64, radios ...int32) []byte {
	tb.seq++
	f := dot80211.NewData(
		dot80211.MAC{2, 0, 0, 0, 0, 9}, dot80211.MAC{2, 0, 0, 0, 0, 1},
		dot80211.MAC{2, 0, 0, 0, 0, 7}, tb.seq&0xfff,
		[]byte{byte(tb.seq), byte(tb.seq >> 8), 0x5a})
	wire := f.Encode()
	tb.txWire(trueNS, wire, tracefile.FlagFCSOK, radios...)
	return wire
}

func (tb *testbed) txWire(trueNS int64, wire []byte, flags uint8, radios ...int32) {
	for _, r := range radios {
		tb.recs[r] = append(tb.recs[r], tracefile.Record{
			LocalUS: tb.clocks[r].LocalUS(trueNS),
			RadioID: r, Channel: 1, Rate: uint16(dot80211.Rate11Mbps),
			Flags: flags, Frame: wire,
		})
	}
}

// build runs bootstrap + unifier over the generated traces. t may be nil
// (property-test callers); bootstrap failures then panic.
func (tb *testbed) build(t *testing.T, cfg Config) *Unifier {
	if t != nil {
		t.Helper()
	}
	var window []tracefile.Record
	sources := map[int32]Source{}
	for r, recs := range tb.recs {
		for _, rec := range recs {
			if rec.LocalUS < 1_000_000 {
				window = append(window, rec)
			}
		}
		sources[r] = NewSliceSource(recs)
	}
	boot, err := timesync.Bootstrap(window, nil)
	if err != nil {
		if t == nil {
			panic(err)
		}
		t.Fatal(err)
	}
	return New(cfg, sources, boot)
}

func TestUnifySimpleDuplicates(t *testing.T) {
	tb := newTestbed(1)
	tb.addRadio(0, 0, 0)
	tb.addRadio(1, 5000, 0)
	tb.addRadio(2, -3000, 0)
	for i := int64(0); i < 100; i++ {
		tb.tx(i*10e6, 0, 1, 2) // every 10 ms, heard by all
	}
	u := tb.build(t, DefaultConfig())
	frames, err := u.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 100 {
		t.Fatalf("got %d jframes, want 100", len(frames))
	}
	for _, j := range frames {
		if len(j.Instances) != 3 {
			t.Fatalf("jframe has %d instances, want 3", len(j.Instances))
		}
		if !j.Valid {
			t.Error("valid frame not marked valid")
		}
		if j.DispersionUS > 2 {
			t.Errorf("dispersion %d µs with perfect clocks", j.DispersionUS)
		}
	}
	if u.Stats.Unified != 300 {
		t.Errorf("unified = %d, want 300", u.Stats.Unified)
	}
}

func TestUnifyTimeOrderAndMedian(t *testing.T) {
	tb := newTestbed(2)
	tb.addRadio(0, 0, 0)
	tb.addRadio(1, 100_000, 0) // +100 ms offset
	tb.addRadio(2, 0, 0)
	for i := int64(0); i < 50; i++ {
		tb.tx(i*5e6, 0, 1, 2)
	}
	u := tb.build(t, DefaultConfig())
	frames, _ := u.Drain()
	if len(frames) != 50 {
		t.Fatalf("got %d jframes", len(frames))
	}
	prev := int64(-1)
	for _, j := range frames {
		if j.UnivUS < prev {
			t.Fatal("jframes out of universal-time order")
		}
		prev = j.UnivUS
	}
	// Median of 3 instances with consistent mapping ⇒ all within ±1 µs.
	for _, j := range frames {
		mid := j.Instances[1].UnivUS
		if j.UnivUS != mid {
			t.Errorf("timestamp %d is not the median %d", j.UnivUS, mid)
		}
	}
}

// TestUnifyEvenGroupMedianMidpoint is the regression test for the
// even-sized-group median bias: with an even number of FCS-valid
// instances the universal timestamp must be the midpoint of the two
// middle instances (§4.2), not the upper-middle instance — that choice
// biased jframe timestamps late by up to the group dispersion.
func TestUnifyEvenGroupMedianMidpoint(t *testing.T) {
	tb := newTestbed(7)
	// Distinct skews make the four clock mappings diverge between resyncs,
	// so groups carry nonzero dispersion and genuinely asymmetric middle
	// instances — the configuration where the old upper-middle pick and
	// the correct midpoint disagree.
	for r, skew := range []float64{-80, -30, 30, 80} {
		tb.addRadio(int32(r), int64(r)*1000, skew)
	}
	for i := int64(0); i < 200; i++ {
		tb.tx(i*5e6, 0, 1, 2, 3) // four instances: even-sized groups
	}
	u := tb.build(t, DefaultConfig())
	frames, err := u.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 200 {
		t.Fatalf("got %d jframes, want 200", len(frames))
	}
	asymmetric := 0
	for _, j := range frames {
		if len(j.Instances) != 4 {
			t.Fatalf("jframe has %d instances, want 4", len(j.Instances))
		}
		a, b := j.Instances[1].UnivUS, j.Instances[2].UnivUS
		want := a + (b-a)/2
		if j.UnivUS != want {
			t.Fatalf("even-group timestamp %d, want midpoint %d of middles (%d, %d)",
				j.UnivUS, want, a, b)
		}
		if b != a {
			asymmetric++
		}
	}
	// If every group's middles coincide the test proved nothing.
	if asymmetric == 0 {
		t.Fatal("no even-sized group with distinct middle timestamps; test exercises nothing")
	}
}

func TestUnifyDistinctSimultaneousNotMerged(t *testing.T) {
	tb := newTestbed(3)
	tb.addRadio(0, 0, 0)
	tb.addRadio(1, 0, 0)
	// Bootstrap anchor.
	tb.tx(1e6, 0, 1)
	// Two different frames transmitted at the same instant (hidden
	// terminals): radios each hear one.
	f1 := dot80211.NewData(dot80211.MAC{2, 1}, dot80211.MAC{2, 2}, dot80211.MAC{2, 3}, 100, []byte("aa"))
	f2 := dot80211.NewData(dot80211.MAC{2, 4}, dot80211.MAC{2, 5}, dot80211.MAC{2, 6}, 200, []byte("bb"))
	tb.txWire(50e6, f1.Encode(), tracefile.FlagFCSOK, 0)
	tb.txWire(50e6, f2.Encode(), tracefile.FlagFCSOK, 1)
	u := tb.build(t, DefaultConfig())
	frames, _ := u.Drain()
	if len(frames) != 3 {
		t.Fatalf("got %d jframes, want 3 (anchor + two simultaneous)", len(frames))
	}
}

func TestUnifyCorruptAttachesByTransmitter(t *testing.T) {
	tb := newTestbed(4)
	tb.addRadio(0, 0, 0)
	tb.addRadio(1, 0, 0)
	tb.addRadio(2, 0, 0)
	tb.tx(1e6, 0, 1, 2) // anchor
	// One transmission: radios 0,1 decode it; radio 2 gets a corrupted copy.
	f := dot80211.NewData(dot80211.MAC{2, 9}, dot80211.MAC{2, 8}, dot80211.MAC{2, 7}, 300, []byte("payload"))
	wire := f.Encode()
	bad := append([]byte(nil), wire...)
	bad[len(bad)-2] ^= 0x40
	tb.txWire(10e6, wire, tracefile.FlagFCSOK, 0, 1)
	tb.txWire(10e6, bad, 0, 2)
	u := tb.build(t, DefaultConfig())
	frames, _ := u.Drain()
	if len(frames) != 2 {
		t.Fatalf("got %d jframes, want 2", len(frames))
	}
	j := frames[1]
	if len(j.Instances) != 3 {
		t.Fatalf("corrupt instance not attached: %d instances", len(j.Instances))
	}
	okCount := 0
	for _, in := range j.Instances {
		if in.FCSOK {
			okCount++
		}
	}
	if okCount != 2 {
		t.Errorf("fcs-ok instances = %d, want 2", okCount)
	}
	if !j.Valid {
		t.Error("jframe with valid instances must be valid")
	}
}

func TestUnifyPhyErrorsSingleton(t *testing.T) {
	tb := newTestbed(5)
	tb.addRadio(0, 0, 0)
	tb.addRadio(1, 0, 0)
	tb.tx(1e6, 0, 1)
	tb.txWire(20e6, nil, tracefile.FlagPhyErr, 0)
	tb.txWire(20e6, nil, tracefile.FlagPhyErr, 1)
	u := tb.build(t, DefaultConfig())
	frames, _ := u.Drain()
	// anchor + two singleton phy error jframes.
	if len(frames) != 3 {
		t.Fatalf("got %d jframes, want 3", len(frames))
	}
	phy := 0
	for _, j := range frames {
		if j.PhyOnly {
			phy++
			if len(j.Instances) != 1 {
				t.Error("phy error jframes are per-radio singletons")
			}
		}
	}
	if phy != 2 {
		t.Errorf("phy jframes = %d", phy)
	}
	if u.Stats.PhyErrors != 2 {
		t.Errorf("stats.PhyErrors = %d", u.Stats.PhyErrors)
	}
}

// dispersionPercentile runs a long skewed-clock scenario and reports the
// p-th percentile group dispersion over multi-instance jframes.
func dispersionPercentile(t *testing.T, cfg Config, p float64, seconds int) int64 {
	t.Helper()
	tb := newTestbed(6)
	tb.addRadio(0, 0, 12)    // +12 ppm
	tb.addRadio(1, 5000, -9) // -9 ppm
	tb.addRadio(2, -900, 30) // +30 ppm
	// Beacon-like cadence: one shared frame every ~100 ms, plus
	// pairwise-only frames between.
	for ms := int64(0); ms < int64(seconds)*1000; ms += 100 {
		tb.tx(ms*1e6, 0, 1, 2)
		tb.tx(ms*1e6+33e6, 0, 1)
		tb.tx(ms*1e6+66e6, 1, 2)
	}
	u := tb.build(t, cfg)
	frames, err := u.Drain()
	if err != nil {
		t.Fatal(err)
	}
	var disp []int64
	for _, j := range frames {
		if len(j.Instances) >= 2 {
			disp = append(disp, j.DispersionUS)
		}
	}
	if len(disp) == 0 {
		t.Fatal("no multi-instance jframes")
	}
	sort.Slice(disp, func(i, j int) bool { return disp[i] < disp[j] })
	return disp[int(float64(len(disp))*p)]
}

func TestUnifyDispersionStaysTight(t *testing.T) {
	// The paper's Fig. 4 bar: with skew compensation, 90% of jframes see
	// dispersion < 10 µs despite tens-of-ppm clock skews.
	p90 := dispersionPercentile(t, DefaultConfig(), 0.90, 60)
	if p90 >= 10 {
		t.Errorf("p90 dispersion = %d µs, want < 10", p90)
	}
}

func TestUnifyAblationNoSkewCompensation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkewCompensation = false
	with := dispersionPercentile(t, DefaultConfig(), 0.90, 60)
	without := dispersionPercentile(t, cfg, 0.90, 60)
	if without <= with {
		t.Errorf("skew compensation should tighten dispersion: with=%d without=%d", with, without)
	}
}

func TestUnifyResyncCounted(t *testing.T) {
	tb := newTestbed(7)
	tb.addRadio(0, 0, 50) // 50 ppm apart: dispersion grows fast
	tb.addRadio(1, 0, -50)
	for ms := int64(0); ms < 30_000; ms += 100 {
		tb.tx(ms*1e6, 0, 1)
	}
	u := tb.build(t, DefaultConfig())
	if _, err := u.Drain(); err != nil {
		t.Fatal(err)
	}
	if u.Stats.Resyncs == 0 {
		t.Error("100 ppm relative skew must trigger resyncs")
	}
	if u.Stats.JFrames == 0 || u.Stats.Events == 0 {
		t.Error("stats not accumulated")
	}
}

func TestUnifyUnsyncedRadioSkipped(t *testing.T) {
	tb := newTestbed(8)
	tb.addRadio(0, 0, 0)
	tb.addRadio(1, 0, 0)
	tb.addRadio(9, 12345, 0) // never shares a frame: unsyncable
	tb.tx(1e6, 0, 1)
	tb.tx(2e6, 0, 1)
	lone := dot80211.NewData(dot80211.MAC{2, 1}, dot80211.MAC{2, 2}, dot80211.MAC{2, 3}, 55, []byte("x"))
	tb.txWire(3e6, lone.Encode(), tracefile.FlagFCSOK, 9)
	u := tb.build(t, DefaultConfig())
	frames, _ := u.Drain()
	for _, j := range frames {
		for _, in := range j.Instances {
			if in.Radio == 9 {
				t.Fatal("unsynced radio leaked into merge")
			}
		}
	}
	if len(frames) != 2 {
		t.Errorf("got %d jframes, want 2", len(frames))
	}
}

func TestUnifyEOF(t *testing.T) {
	tb := newTestbed(9)
	tb.addRadio(0, 0, 0)
	tb.addRadio(1, 0, 0)
	tb.tx(1e6, 0, 1)
	u := tb.build(t, DefaultConfig())
	if _, err := u.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Next(); err != io.EOF {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestJFrameAirtime(t *testing.T) {
	f := dot80211.NewData(dot80211.MAC{2, 1}, dot80211.MAC{2, 2}, dot80211.MAC{2, 3}, 1, make([]byte, 100))
	j := &JFrame{Wire: f.Encode(), Rate: dot80211.Rate11Mbps, Valid: true, UnivUS: 1000}
	want := int64(dot80211.AirtimeUS(len(j.Wire), dot80211.Rate11Mbps, dot80211.LongPreamble))
	if j.AirtimeUS() != want {
		t.Errorf("airtime = %d, want %d", j.AirtimeUS(), want)
	}
	if j.EndUS() != 1000+want {
		t.Error("EndUS wrong")
	}
	p := &JFrame{PhyOnly: true}
	if p.AirtimeUS() != 0 {
		t.Error("phy-only jframes have no airtime")
	}
}

// Invariants over a randomized scenario: conservation (every record lands
// in exactly one jframe instance), per-jframe radio uniqueness, and time
// order.
func TestUnifyInvariants(t *testing.T) {
	tb := newTestbed(42)
	rng := rand.New(rand.NewSource(99))
	nRadios := int32(6)
	for r := int32(0); r < nRadios; r++ {
		tb.addRadio(r, rng.Int63n(20_000)-10_000, rng.NormFloat64()*15)
	}
	records := 0
	for i := int64(0); i < 400; i++ {
		// Random subsets of radios hear each transmission.
		var hear []int32
		for r := int32(0); r < nRadios; r++ {
			if rng.Float64() < 0.5 {
				hear = append(hear, r)
			}
		}
		if len(hear) == 0 {
			hear = []int32{rng.Int31n(nRadios)}
		}
		tb.tx(i*3e6, hear...)
		records += len(hear)
	}
	u := tb.build(t, DefaultConfig())
	frames, err := u.Drain()
	if err != nil {
		t.Fatal(err)
	}
	// Conservation.
	total := 0
	for _, j := range frames {
		total += len(j.Instances)
		seen := map[int32]bool{}
		for _, in := range j.Instances {
			if seen[in.Radio] {
				t.Fatalf("radio %d appears twice in one jframe", in.Radio)
			}
			seen[in.Radio] = true
		}
	}
	if total != records {
		t.Errorf("instances = %d, records = %d: events lost or duplicated", total, records)
	}
	// Time order.
	prev := int64(-1 << 62)
	for _, j := range frames {
		if j.UnivUS < prev {
			t.Fatal("jframes out of order")
		}
		prev = j.UnivUS
	}
	if u.Stats.Events != int64(records) {
		t.Errorf("stats events = %d, want %d", u.Stats.Events, records)
	}
}

// Property: with perfect clocks, a transmission heard by k radios always
// forms exactly one jframe with k instances, for random k-subsets.
func TestQuickPerfectClocksAlwaysUnify(t *testing.T) {
	f := func(mask uint8, seed int64) bool {
		tb := newTestbed(seed)
		for r := int32(0); r < 8; r++ {
			tb.addRadio(r, 0, 0)
		}
		var hear []int32
		for r := int32(0); r < 8; r++ {
			if mask&(1<<r) != 0 {
				hear = append(hear, r)
			}
		}
		if len(hear) == 0 {
			return true
		}
		tb.tx(1e6, 0, 1, 2, 3, 4, 5, 6, 7) // bootstrap anchor
		tb.tx(50e6, hear...)
		u := tb.build(nil, DefaultConfig())
		frames, err := u.Drain()
		if err != nil {
			return false
		}
		if len(frames) != 2 {
			return false
		}
		return len(frames[1].Instances) == len(hear)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
