// Package unify implements Jigsaw's frame unification (§4.2): merging the
// per-radio traces into a single universal-time stream of jframes, each
// representing one physical transmission with the set of radios that heard
// it, while continuously resynchronizing every radio's clock.
//
// The algorithm is the paper's: a single priority queue holds the earliest
// unconsumed instance from each trace, mapped into universal time through a
// per-radio offset-plus-skew model. Instances popped within a search window
// are grouped by content into jframes (content comparison short-circuits on
// a precomputed hash, length and rate before touching bytes), each jframe
// is timestamped with the median of its instances, and whenever a jframe's
// group dispersion exceeds a threshold the member radios' clocks are
// snapped back into agreement. Per-radio skew and drift are tracked with
// EWMAs so that radios which go quiet (up to the ~100 ms beacon gap) stay
// placed correctly in universal time.
//
// Memory model: the unifier is the boundary where borrowed tracefile
// records become owned jframes. Incoming record frames (which alias the
// reader's block buffer) are copied into per-radio queue entries; emitted
// jframes come from a pool with an explicit Retain/Release ownership
// contract — see pool.go.
package unify

import (
	"bytes"
	"encoding/binary"
	"io"
	"sort"
	"sync"

	"repro/internal/clock"
	"repro/internal/dot80211"
	"repro/internal/timesync"
	"repro/internal/tracefile"
)

// Config tunes the unifier.
type Config struct {
	// SearchWindowUS bounds how far (in universal µs) past a candidate
	// instance the queue is searched for duplicates. Paper default: 10 ms.
	SearchWindowUS int64
	// GapUS closes a batch when successive queue heads are further apart
	// than this. Duplicates of one transmission differ by clock dispersion
	// only, so any value above worst-case dispersion is safe; distinct
	// transmissions are separated by at least a SIFS plus a preamble.
	GapUS int64
	// ResyncDispersionUS is the minimum group dispersion that triggers
	// resynchronization of member clocks. Paper: 10 µs.
	ResyncDispersionUS int64
	// JoinToleranceUS bounds how far (in universal µs) an instance may sit
	// from a group's representative and still join it. It must exceed the
	// worst plausible clock dispersion but stay below typical spacing of
	// identical-content transmissions (ACK trains, retries).
	JoinToleranceUS int64
	// SkewCompensation toggles the EWMA skew/drift model (ablation: the
	// paper found it necessary at scale).
	SkewCompensation bool
	// CoalesceWorkers shards each batch's content grouping across this
	// many goroutines, keyed by content hash. 0 or 1 keeps coalescing
	// serial. Output is identical at every worker count: instances with
	// equal content always land in the same shard in batch order, and
	// shard-local groups are restored to batch creation order before
	// corrupt attachment and emission.
	CoalesceWorkers int
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		SearchWindowUS:     10_000, // 10 ms
		GapUS:              250,
		ResyncDispersionUS: 10,
		JoinToleranceUS:    200,
		SkewCompensation:   true,
	}
}

// Instance is one radio's reception contributing to a jframe.
type Instance struct {
	Radio   int32
	LocalUS int64
	UnivUS  int64 // after offset+skew mapping
	RSSIdBm int8
	FCSOK   bool
	PhyErr  bool
}

// JFrame is one unified physical transmission (or error event).
//
// Frames produced by the unifier (and the hmerge reader) are pooled and
// reference counted — see the package ownership rules in pool.go. All
// byte-slice fields (Wire, Frame.Body) point into storage owned by the
// frame itself and die with its last Release.
type JFrame struct {
	UnivUS  int64 // median instance universal timestamp
	Frame   dot80211.Frame
	Wire    []byte // representative wire bytes (from a valid instance)
	Rate    dot80211.Rate
	Channel dot80211.Channel
	Valid   bool // at least one FCS-valid instance
	PhyOnly bool // physical-error event with no frame content
	// WireLen is the true on-air frame length (captures are snapped).
	WireLen   int
	Instances []Instance
	// DispersionUS is the group dispersion: latest minus earliest instance
	// universal timestamp (Figure 4's metric).
	DispersionUS int64

	refs    int32 // atomic ownership count (pool.go)
	pooled  bool
	wireBuf []byte // owned storage backing Wire
}

// AirtimeUS estimates the jframe's on-air duration from its true length
// and rate.
func (j *JFrame) AirtimeUS() int64 {
	if j.PhyOnly || !j.Valid {
		return 0
	}
	n := j.WireLen
	if n == 0 {
		n = len(j.Wire)
	}
	return int64(dot80211.AirtimeUS(n, j.Rate, dot80211.LongPreamble))
}

// EndUS returns the universal end time (timestamps mark reception start).
func (j *JFrame) EndUS() int64 { return j.UnivUS + j.AirtimeUS() }

// Source supplies one radio's time-ordered records. Next returns io.EOF at
// end of trace.
type Source interface {
	Next() (tracefile.Record, error)
}

// sliceSource adapts an in-memory record slice.
type sliceSource struct {
	recs []tracefile.Record
	i    int
}

// NewSliceSource wraps records (must be time-ordered) as a Source.
func NewSliceSource(recs []tracefile.Record) Source { return &sliceSource{recs: recs} }

func (s *sliceSource) Next() (tracefile.Record, error) {
	if s.i >= len(s.recs) {
		return tracefile.Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// queueEntry is one radio's head instance in the priority queue. Entries
// own their frame bytes (buf) — records are copied out of the reader's
// borrowed block buffer on arrival — and are recycled through the
// unifier's freelist after their batch is emitted.
type queueEntry struct {
	univUS int64
	hash   uint32           // content hash over frame bytes: dedup pre-filter and coalesce shard key
	rec    tracefile.Record // Frame points into buf
	buf    []byte           // owned frame storage, reused across reuses
	radio  int32            // radio id (for output)
	ri     int32            // dense index into Unifier.radios
	pos    int32            // position within the current batch
}

// instanceHeap is a binary min-heap on univUS with concrete sift loops. It
// replicates container/heap's algorithm exactly (strict-less comparisons,
// same swap order) so pop order — including ties — is bit-for-bit what the
// interface-based heap produced, without the per-record interface dispatch
// the profile charged to container/heap.down.
type instanceHeap []*queueEntry

func (h *instanceHeap) push(e *queueEntry) {
	s := append(*h, e)
	*h = s
	for j := len(s) - 1; j > 0; {
		i := (j - 1) / 2
		if s[j].univUS >= s[i].univUS {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *instanceHeap) popMin() *queueEntry {
	s := *h
	n := len(s) - 1
	e := s[0]
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	*h = s
	for i := 0; ; {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && s[r].univUS < s[j].univUS {
			j = r
		}
		if s[j].univUS >= s[i].univUS {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	return e
}

// Stats accumulates unifier counters for Table 1.
type Stats struct {
	Events       int64 // records consumed
	PhyErrors    int64 // physical-error records
	CRCErrors    int64 // FCS-failed frame records
	Unified      int64 // records merged into jframes (valid + matched errors)
	JFrames      int64
	Resyncs      int64
	MaxDispersUS int64
}

// Add accumulates another run's counters into s — how per-building unify
// stats combine into campus totals on the hierarchical path. Counters sum;
// MaxDispersUS, a maximum, takes the larger value.
func (s *Stats) Add(o Stats) {
	s.Events += o.Events
	s.PhyErrors += o.PhyErrors
	s.CRCErrors += o.CRCErrors
	s.Unified += o.Unified
	s.JFrames += o.JFrames
	s.Resyncs += o.Resyncs
	if o.MaxDispersUS > s.MaxDispersUS {
		s.MaxDispersUS = o.MaxDispersUS
	}
}

// radioState is one radio's source and clock, stored densely so the hot
// path indexes a slice instead of hashing int32 map keys.
type radioState struct {
	src     Source
	tracker *clock.OffsetTracker
	id      int32
}

// grp is one content group being assembled from a batch.
type grp struct {
	rep     *queueEntry
	frame   dot80211.Frame // rep's capture, decoded once and shared with emit
	decErr  bool
	tx      dot80211.MAC
	ctrl    bool // rep is a control frame (transmitterless identity: subtype+RA)
	valid   bool
	members []*queueEntry
	// radioBits tracks member radios by dense index (queueEntry.ri) so the
	// one-instance-per-radio check is a bit test instead of a member scan —
	// the grouping inner loop runs it per (entry, group) pair, and at
	// building scale (120 radios hearing most frames) the old linear scan
	// was the single hottest path in the whole merge.
	radioBits []uint64
}

// hasRadio reports whether the group already took an instance from the
// radio with dense index ri.
func (g *grp) hasRadio(ri int32) bool {
	w := int(ri >> 6)
	return w < len(g.radioBits) && g.radioBits[w]&(1<<(uint32(ri)&63)) != 0
}

// addRadio records dense radio index ri in the group's membership set.
func (g *grp) addRadio(ri int32) {
	w := int(ri >> 6)
	for w >= len(g.radioBits) {
		g.radioBits = append(g.radioBits, 0)
	}
	g.radioBits[w] |= 1 << (uint32(ri) & 63)
}

// coalesceShard is one worker's slice of a batch's valid-frame grouping.
type coalesceShard struct {
	entries []*queueEntry
	groups  []*grp
}

// Unifier merges per-radio sources into a jframe stream.
type Unifier struct {
	cfg    Config
	radios []radioState
	ridx   map[int32]int32 // radio id → dense index (diagnostics)
	heap   instanceHeap

	pending  []*JFrame // jframes assembled from the current batch
	pendHead int

	// hot-path scratch, reused across batches
	free           []*queueEntry
	batchScratch   []*queueEntry
	validScratch   []*queueEntry
	corruptScratch []*queueEntry
	groupScratch   []*grp
	grpFree        []*grp
	shards         []coalesceShard
	single         [1]*queueEntry

	Stats Stats
}

// New creates a unifier over per-radio sources using bootstrap offsets.
// Radios without a bootstrap offset are skipped (unsynced partitions cannot
// be merged, as the paper observes at 10 pods).
func New(cfg Config, sources map[int32]Source, boot *timesync.Result) *Unifier {
	u := &Unifier{cfg: cfg, ridx: make(map[int32]int32)}
	// Deterministic initial queue population (map order varies per run).
	ids := make([]int32, 0, len(sources))
	for radio := range sources {
		if _, ok := boot.OffsetUS[radio]; ok {
			ids = append(ids, radio)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, radio := range ids {
		tr := clock.NewOffsetTracker(boot.OffsetUS[radio])
		tr.SetSkewCompensation(cfg.SkewCompensation)
		u.ridx[radio] = int32(len(u.radios))
		u.radios = append(u.radios, radioState{src: sources[radio], tracker: tr, id: radio})
	}
	for ri := range u.radios {
		u.advance(int32(ri))
	}
	return u
}

// getEntry pops a recycled queue entry (or allocates the first time).
func (u *Unifier) getEntry() *queueEntry {
	if n := len(u.free); n > 0 {
		e := u.free[n-1]
		u.free = u.free[:n-1]
		return e
	}
	return new(queueEntry)
}

// putEntry recycles an entry, keeping its frame buffer for reuse.
func (u *Unifier) putEntry(e *queueEntry) {
	buf := e.buf[:0]
	*e = queueEntry{buf: buf}
	u.free = append(u.free, e)
}

func (u *Unifier) getGrp() *grp {
	if n := len(u.grpFree); n > 0 {
		g := u.grpFree[n-1]
		u.grpFree = u.grpFree[:n-1]
		return g
	}
	return new(grp)
}

func (u *Unifier) putGrp(g *grp) {
	members := g.members[:0]
	bits := g.radioBits[:0]
	*g = grp{members: members, radioBits: bits}
	u.grpFree = append(u.grpFree, g)
}

// wireHash is the content hash over raw frame bytes: the cheap dedup
// pre-filter (equal content implies equal hash, so grouping skips
// bytes.Equal on mismatched hashes) and the coalesce shard key. It mixes
// eight bytes per step (FNV-1a style over a 64-bit lane, folded to 32
// bits), which the profile showed is ~8× cheaper than the byte-at-a-time
// FNV it replaced. The exact value never reaches the output stream: equal
// bytes always map to equal hashes, collisions only cost a bytes.Equal,
// and the sharded coalescer re-sorts groups into batch order — so any
// deterministic function of the bytes preserves unifier output.
func wireHash(b []byte) uint32 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * prime64
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		tail[7] = byte(len(b)) // tag the tail length so padded tails differ
		h = (h ^ binary.LittleEndian.Uint64(tail[:])) * prime64
	}
	return uint32(h>>32) ^ uint32(h)
}

// advance pulls the next record for a radio into the queue, copying its
// borrowed frame bytes into entry-owned storage.
func (u *Unifier) advance(ri int32) {
	rs := &u.radios[ri]
	if rs.src == nil {
		return
	}
	rec, err := rs.src.Next()
	if err != nil {
		rs.src = nil
		return
	}
	u.Stats.Events++
	if rec.IsPhyErr() {
		u.Stats.PhyErrors++
	} else if !rec.FCSOK() {
		u.Stats.CRCErrors++
	}
	e := u.getEntry()
	e.univUS = rs.tracker.ToUniversal(rec.LocalUS)
	e.radio = rs.id
	e.ri = ri
	if rec.Frame != nil {
		// The record borrows its Frame from the reader's block buffer,
		// valid only until the source's next read — copy now.
		e.buf = append(e.buf[:0], rec.Frame...)
		rec.Frame = e.buf
		e.hash = wireHash(e.buf)
	} else {
		e.hash = wireHash(nil)
	}
	e.rec = rec
	u.heap.push(e)
}

// Next returns the next jframe in universal-time order, or io.EOF.
//
// The returned frame is pooled: the caller owns one reference and must
// Release it when done (see pool.go for the full contract).
func (u *Unifier) Next() (*JFrame, error) {
	for u.pendHead >= len(u.pending) {
		if len(u.heap) == 0 {
			return nil, io.EOF
		}
		u.pendHead = 0
		u.pending = u.pending[:0]
		u.batch()
	}
	j := u.pending[u.pendHead]
	u.pending[u.pendHead] = nil
	u.pendHead++
	return j, nil
}

// batch pops a run of instances, groups them into jframes appended to
// pending, and recycles the consumed entries.
//
// The boundary rule must never cut through a cluster of instances of one
// transmission (cluster diameter is bounded by clock dispersion, well under
// GapUS), so a batch closes at the first inter-instance gap larger than
// GapUS. To bound work during dense bursts, once the batch spans the search
// window it also closes at any gap that clearly separates clusters, and
// unconditionally at four windows.
func (u *Unifier) batch() {
	first := u.heap.popMin()
	u.advance(first.ri)
	batch := u.batchScratch[:0]
	first.pos = 0
	batch = append(batch, first)
	last := first.univUS
	lastRI := first.ri
	for len(u.heap) > 0 {
		head := u.heap[0]
		gap := head.univUS - last
		span := head.univUS - first.univUS
		gapLimit := u.cfg.GapUS
		// An untrusted radio (no recent resync) may be placed hundreds of
		// microseconds off; keep the batch open across the full search
		// window so its instances can still reach their group — this is
		// what the paper's wide search window buys.
		if !u.trusted(head.ri, head.univUS) || !u.trusted(lastRI, last) {
			gapLimit = u.cfg.SearchWindowUS
		}
		if gap > gapLimit {
			break // natural boundary between transmissions
		}
		if span > u.cfg.SearchWindowUS && gap > gapLimit {
			break // soft cap, between dispersion clusters
		}
		if span > 4*u.cfg.SearchWindowUS {
			break // hard cap
		}
		e := u.heap.popMin()
		u.advance(e.ri)
		e.pos = int32(len(batch))
		batch = append(batch, e)
		last = e.univUS
		lastRI = e.ri
	}
	u.group(batch)
	for _, e := range batch {
		u.putEntry(e)
	}
	u.batchScratch = batch[:0]
}

// trusted reports whether a radio's clock mapping has been confirmed by
// recent resynchronization: enough samples and not too long coasting.
func (u *Unifier) trusted(ri int32, nowUnivUS int64) bool {
	tr := u.radios[ri].tracker
	if tr.Resyncs() < 3 {
		return false
	}
	return nowUnivUS-tr.LastResyncUnivUS() <= trustedCoastUS
}

// trustedCoastUS is how long a clock may coast before its placements are
// treated as loose again (20 ppm over 5 s is 100 µs of drift).
const trustedCoastUS = 5_000_000

// joinTol returns the grouping tolerance for instance e: tight for trusted
// radios, the full search window for untrusted ones.
func (u *Unifier) joinTol(e *queueEntry) int64 {
	if u.trusted(e.ri, e.univUS) {
		return u.cfg.JoinToleranceUS
	}
	return u.cfg.SearchWindowUS
}

// near reports whether two instances' universal timestamps are within tol.
func near(a, b *queueEntry, tol int64) bool {
	d := a.univUS - b.univUS
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// contentEqual compares two frame captures with the paper's short-circuit:
// length, rate and FCS first, then bytes.
func contentEqual(a, b *tracefile.Record) bool {
	if len(a.Frame) != len(b.Frame) || a.Rate != b.Rate {
		return false
	}
	return bytes.Equal(a.Frame, b.Frame)
}

// makeGroup starts a content group from e, decoding its capture once; the
// decode is reused for transmitter matching and final emission.
func makeGroup(alloc func() *grp, e *queueEntry, valid bool) *grp {
	g := alloc()
	f, _, err := dot80211.DecodeCapture(e.rec.Frame)
	g.rep = e
	g.frame = f
	g.decErr = err != nil
	g.tx = f.Transmitter()
	g.ctrl = f.Type == dot80211.TypeControl
	g.valid = valid
	g.members = append(g.members[:0], e)
	g.radioBits = g.radioBits[:0]
	g.addRadio(e.ri)
	return g
}

// groupValidInto places valid entries into content groups: a frame joins
// the first (creation-order) group with matching content whose radio set
// doesn't already contain it — a single radio cannot receive one
// transmission twice, which is how identical-content frames (ACK trains,
// retransmissions) in one batch still separate into distinct jframes.
func (u *Unifier) groupValidInto(entries []*queueEntry, groups []*grp, alloc func() *grp) []*grp {
	for _, e := range entries {
		placed := false
		for _, g := range groups {
			if g.rep.hash != e.hash || g.hasRadio(e.ri) {
				continue
			}
			tol := max64(u.joinTol(e), u.joinTol(g.rep))
			if near(e, g.rep, tol) && contentEqual(&g.rep.rec, &e.rec) {
				g.members = append(g.members, e)
				g.addRadio(e.ri)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, makeGroup(alloc, e, true))
		}
	}
	return groups
}

// coalesceMinBatch gates the sharded path: tiny batches aren't worth the
// goroutine handoff.
const coalesceMinBatch = 8

// groupValidSharded runs the content grouping across w shards keyed by
// content hash. Entries with equal content always share a shard (equal
// bytes ⇒ equal hash) and keep their batch order inside it, so shard-local
// grouping builds exactly the groups the serial pass would; restoring
// creation order (= the batch position of each group's first member)
// afterwards makes the result indistinguishable from serial. Trackers are
// only read during grouping (resyncs happen at emission, strictly after),
// so shards share them safely.
func (u *Unifier) groupValidSharded(valid []*queueEntry, groups []*grp, w int) []*grp {
	if cap(u.shards) < w {
		u.shards = make([]coalesceShard, w)
	}
	shards := u.shards[:w]
	for i := range shards {
		shards[i].entries = shards[i].entries[:0]
		shards[i].groups = shards[i].groups[:0]
	}
	for _, e := range valid {
		s := &shards[e.hash%uint32(w)]
		s.entries = append(s.entries, e)
	}
	var wg sync.WaitGroup
	for i := range shards {
		s := &shards[i]
		if len(s.entries) == 0 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Shard workers allocate groups directly: the serial freelist
			// isn't goroutine-safe, and recycling still happens serially
			// after emission.
			s.groups = u.groupValidInto(s.entries, s.groups, func() *grp { return new(grp) })
		}()
	}
	wg.Wait()
	for i := range shards {
		groups = append(groups, shards[i].groups...)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].rep.pos < groups[j].rep.pos })
	return groups
}

// group partitions a batch into jframes appended to pending. Valid frames
// group by exact content; corrupted frames attach by decoded transmitter
// address (§4.2), to a valid group if one exists or to each other
// otherwise; phy errors become singleton error jframes.
func (u *Unifier) group(batch []*queueEntry) {
	start := len(u.pending)
	valid := u.validScratch[:0]
	corrupt := u.corruptScratch[:0]
	groups := u.groupScratch[:0]

	for _, e := range batch {
		switch {
		case e.rec.IsPhyErr():
			u.single[0] = e
			u.pending = append(u.pending, u.emit(u.single[:], nil))
		case e.rec.FCSOK():
			valid = append(valid, e)
		default:
			corrupt = append(corrupt, e)
		}
	}

	if w := u.cfg.CoalesceWorkers; w > 1 && len(valid) >= coalesceMinBatch {
		groups = u.groupValidSharded(valid, groups, w)
	} else {
		groups = u.groupValidInto(valid, groups, u.getGrp)
	}

	// Attach corrupted instances by transmitter (the paper's rule); control
	// frames carry no transmitter, so ACK/CTS corruptions match on subtype
	// plus receiver address instead. Valid groups are preferred over
	// corrupt-only ones.
	for _, e := range corrupt {
		f, _, err := dot80211.DecodeCapture(e.rec.Frame) // partial decode is fine
		tx := f.Transmitter()
		ctrl := f.Type == dot80211.TypeControl && !f.Addr1.IsZero()
		var target *grp
		for _, g := range groups {
			// Corrupt frames never drive resynchronization, so the wide
			// untrusted-radio tolerance buys nothing and multiplies false
			// matches; always attach tightly.
			tol := 2 * u.cfg.JoinToleranceUS
			if g.hasRadio(e.ri) || !near(e, g.rep, tol) {
				continue
			}
			switch {
			case !tx.IsZero() && g.tx == tx:
			case ctrl && g.ctrl && g.frame.Subtype == f.Subtype && g.frame.Addr1 == f.Addr1:
			default:
				continue
			}
			if g.valid {
				target = g
				break
			}
			if target == nil {
				target = g
			}
		}
		if target != nil {
			target.members = append(target.members, e)
			target.addRadio(e.ri)
		} else {
			g := u.getGrp()
			g.rep = e
			g.frame = f
			g.decErr = err != nil
			g.tx = tx
			g.ctrl = f.Type == dot80211.TypeControl
			g.valid = false
			g.members = append(g.members[:0], e)
			g.radioBits = g.radioBits[:0]
			g.addRadio(e.ri)
			groups = append(groups, g)
		}
	}

	for _, g := range groups {
		u.pending = append(u.pending, u.emit(g.members, g))
	}

	// Batches can yield multiple jframes (simultaneous transmissions);
	// keep output time-ordered. Stable insertion sort: batches are small,
	// and ties must keep emission order.
	for i := start + 1; i < len(u.pending); i++ {
		j := u.pending[i]
		k := i - 1
		for k >= start && u.pending[k].UnivUS > j.UnivUS {
			u.pending[k+1] = u.pending[k]
			k--
		}
		u.pending[k+1] = j
	}

	for _, g := range groups {
		u.putGrp(g)
	}
	u.groupScratch = groups[:0]
	u.validScratch = valid[:0]
	u.corruptScratch = corrupt[:0]
}

// emit builds a jframe from grouped instances and applies
// resynchronization. g carries the representative's cached decode; nil
// means a phy-error singleton.
func (u *Unifier) emit(members []*queueEntry, g *grp) *JFrame {
	j := NewJFrame()
	if cap(j.Instances) < len(members) {
		j.Instances = make([]Instance, 0, len(members))
	}
	for _, e := range members {
		j.Instances = append(j.Instances, Instance{
			Radio: e.radio, LocalUS: e.rec.LocalUS, UnivUS: e.univUS,
			RSSIdBm: e.rec.RSSIdBm, FCSOK: e.rec.FCSOK(), PhyErr: e.rec.IsPhyErr(),
		})
	}
	sortInstances(j.Instances)
	// Median timestamp and group dispersion over the FCS-valid instances:
	// those are the radios whose clock agreement the jframe evidences.
	// Corrupt attachments ride along without weighing on either metric.
	lo, hi, mid, nOK := int64(0), int64(0), int64(0), 0
	for _, in := range j.Instances {
		if !in.FCSOK {
			continue
		}
		if nOK == 0 {
			lo = in.UnivUS
		}
		hi = in.UnivUS
		nOK++
	}
	if nOK > 0 {
		// Median per §4.2: for an even-sized group the midpoint of the two
		// middle timestamps — picking either middle instance alone would
		// bias the universal timestamp early or late by up to half the
		// group dispersion. Instances are sorted, so the middles are the
		// (nOK-1)/2-th and nOK/2-th valid ones (equal when nOK is odd).
		k, midLo := 0, int64(0)
		for _, in := range j.Instances {
			if in.FCSOK {
				if k == (nOK-1)/2 {
					midLo = in.UnivUS
				}
				if k == nOK/2 {
					mid = midLo + (in.UnivUS-midLo)/2
				}
				k++
			}
		}
		j.UnivUS = mid
		j.DispersionUS = hi - lo
	} else {
		j.UnivUS = j.Instances[len(j.Instances)/2].UnivUS
		j.DispersionUS = j.Instances[len(j.Instances)-1].UnivUS - j.Instances[0].UnivUS
	}
	if j.DispersionUS > u.Stats.MaxDispersUS {
		u.Stats.MaxDispersUS = j.DispersionUS
	}

	if g == nil {
		j.PhyOnly = true
		j.Channel = dot80211.Channel(members[0].rec.Channel)
		u.Stats.JFrames++
		return j
	}
	rep := g.rep
	j.SetWire(rep.rec.Frame)
	j.WireLen = int(rep.rec.OrigLen)
	j.Rate = dot80211.Rate(rep.rec.Rate)
	j.Channel = dot80211.Channel(rep.rec.Channel)
	// The capture hardware validated the FCS on the air; a snapped capture
	// cannot re-validate, so trust the record's flag once the header
	// parses. The decode was cached at grouping time; its Body aliases the
	// representative entry's buffer, so re-point it into the jframe's own
	// wire copy.
	j.Frame = g.frame
	j.rebaseBody(&g.frame)
	j.Valid = rep.rec.FCSOK() && !g.decErr
	u.Stats.JFrames++
	u.Stats.Unified += int64(len(members))

	// Continuous resynchronization: only unique frames drive clocks, and
	// only when dispersion exceeds the threshold (§4.2's accuracy/overhead
	// tradeoff).
	if j.Valid && j.Frame.UniqueForSync() && len(members) >= 2 &&
		j.DispersionUS >= u.cfg.ResyncDispersionUS {
		for _, e := range members {
			if !e.rec.FCSOK() {
				continue
			}
			u.radios[e.ri].tracker.Resync(e.rec.LocalUS, j.UnivUS)
			u.Stats.Resyncs++
		}
	}
	return j
}

// sortInstances orders instances by universal timestamp. Small groups —
// the overwhelmingly common case — use an inline insertion sort, which is
// allocation-free and matches sort.Slice's permutation exactly (Go's
// pdqsort is insertion sort at or below 12 elements); larger groups fall
// back to sort.Slice to keep the historical tie order bit-for-bit.
func sortInstances(in []Instance) {
	if len(in) <= 12 {
		for i := 1; i < len(in); i++ {
			for k := i; k > 0 && in[k].UnivUS < in[k-1].UnivUS; k-- {
				in[k], in[k-1] = in[k-1], in[k]
			}
		}
		return
	}
	sort.Slice(in, func(a, b int) bool { return in[a].UnivUS < in[b].UnivUS })
}

// Tracker exposes a radio's clock state for diagnostics.
func (u *Unifier) Tracker(radio int32) *clock.OffsetTracker {
	ri, ok := u.ridx[radio]
	if !ok {
		return nil
	}
	return u.radios[ri].tracker
}

// Drain consumes the whole stream, returning all jframes. The caller owns
// every returned frame (one reference each).
func (u *Unifier) Drain() ([]*JFrame, error) {
	var out []*JFrame
	for {
		j, err := u.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, j)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
