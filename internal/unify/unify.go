// Package unify implements Jigsaw's frame unification (§4.2): merging the
// per-radio traces into a single universal-time stream of jframes, each
// representing one physical transmission with the set of radios that heard
// it, while continuously resynchronizing every radio's clock.
//
// The algorithm is the paper's: a single priority queue holds the earliest
// unconsumed instance from each trace, mapped into universal time through a
// per-radio offset-plus-skew model. Instances popped within a search window
// are grouped by content into jframes (content comparison short-circuits on
// length, rate and FCS), each jframe is timestamped with the median of its
// instances, and whenever a jframe's group dispersion exceeds a threshold
// the member radios' clocks are snapped back into agreement. Per-radio skew
// and drift are tracked with EWMAs so that radios which go quiet (up to the
// ~100 ms beacon gap) stay placed correctly in universal time.
package unify

import (
	"bytes"
	"container/heap"
	"io"
	"sort"

	"repro/internal/clock"
	"repro/internal/dot80211"
	"repro/internal/timesync"
	"repro/internal/tracefile"
)

// Config tunes the unifier.
type Config struct {
	// SearchWindowUS bounds how far (in universal µs) past a candidate
	// instance the queue is searched for duplicates. Paper default: 10 ms.
	SearchWindowUS int64
	// GapUS closes a batch when successive queue heads are further apart
	// than this. Duplicates of one transmission differ by clock dispersion
	// only, so any value above worst-case dispersion is safe; distinct
	// transmissions are separated by at least a SIFS plus a preamble.
	GapUS int64
	// ResyncDispersionUS is the minimum group dispersion that triggers
	// resynchronization of member clocks. Paper: 10 µs.
	ResyncDispersionUS int64
	// JoinToleranceUS bounds how far (in universal µs) an instance may sit
	// from a group's representative and still join it. It must exceed the
	// worst plausible clock dispersion but stay below typical spacing of
	// identical-content transmissions (ACK trains, retries).
	JoinToleranceUS int64
	// SkewCompensation toggles the EWMA skew/drift model (ablation: the
	// paper found it necessary at scale).
	SkewCompensation bool
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		SearchWindowUS:     10_000, // 10 ms
		GapUS:              250,
		ResyncDispersionUS: 10,
		JoinToleranceUS:    200,
		SkewCompensation:   true,
	}
}

// Instance is one radio's reception contributing to a jframe.
type Instance struct {
	Radio   int32
	LocalUS int64
	UnivUS  int64 // after offset+skew mapping
	RSSIdBm int8
	FCSOK   bool
	PhyErr  bool
}

// JFrame is one unified physical transmission (or error event).
type JFrame struct {
	UnivUS  int64 // median instance universal timestamp
	Frame   dot80211.Frame
	Wire    []byte // representative wire bytes (from a valid instance)
	Rate    dot80211.Rate
	Channel dot80211.Channel
	Valid   bool // at least one FCS-valid instance
	PhyOnly bool // physical-error event with no frame content
	// WireLen is the true on-air frame length (captures are snapped).
	WireLen   int
	Instances []Instance
	// DispersionUS is the group dispersion: latest minus earliest instance
	// universal timestamp (Figure 4's metric).
	DispersionUS int64
}

// AirtimeUS estimates the jframe's on-air duration from its true length
// and rate.
func (j *JFrame) AirtimeUS() int64 {
	if j.PhyOnly || !j.Valid {
		return 0
	}
	n := j.WireLen
	if n == 0 {
		n = len(j.Wire)
	}
	return int64(dot80211.AirtimeUS(n, j.Rate, dot80211.LongPreamble))
}

// EndUS returns the universal end time (timestamps mark reception start).
func (j *JFrame) EndUS() int64 { return j.UnivUS + j.AirtimeUS() }

// Source supplies one radio's time-ordered records. Next returns io.EOF at
// end of trace.
type Source interface {
	Next() (tracefile.Record, error)
}

// sliceSource adapts an in-memory record slice.
type sliceSource struct {
	recs []tracefile.Record
	i    int
}

// NewSliceSource wraps records (must be time-ordered) as a Source.
func NewSliceSource(recs []tracefile.Record) Source { return &sliceSource{recs: recs} }

func (s *sliceSource) Next() (tracefile.Record, error) {
	if s.i >= len(s.recs) {
		return tracefile.Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// queueEntry is one radio's head instance in the priority queue.
type queueEntry struct {
	univUS int64
	rec    tracefile.Record
	radio  int32
	idx    int // heap index
}

type instanceHeap []*queueEntry

func (h instanceHeap) Len() int           { return len(h) }
func (h instanceHeap) Less(i, j int) bool { return h[i].univUS < h[j].univUS }
func (h instanceHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx, h[j].idx = i, j }
func (h *instanceHeap) Push(x any)        { e := x.(*queueEntry); e.idx = len(*h); *h = append(*h, e) }
func (h *instanceHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Stats accumulates unifier counters for Table 1.
type Stats struct {
	Events       int64 // records consumed
	PhyErrors    int64 // physical-error records
	CRCErrors    int64 // FCS-failed frame records
	Unified      int64 // records merged into jframes (valid + matched errors)
	JFrames      int64
	Resyncs      int64
	MaxDispersUS int64
}

// Add accumulates another run's counters into s — how per-building unify
// stats combine into campus totals on the hierarchical path. Counters sum;
// MaxDispersUS, a maximum, takes the larger value.
func (s *Stats) Add(o Stats) {
	s.Events += o.Events
	s.PhyErrors += o.PhyErrors
	s.CRCErrors += o.CRCErrors
	s.Unified += o.Unified
	s.JFrames += o.JFrames
	s.Resyncs += o.Resyncs
	if o.MaxDispersUS > s.MaxDispersUS {
		s.MaxDispersUS = o.MaxDispersUS
	}
}

// Unifier merges per-radio sources into a jframe stream.
type Unifier struct {
	cfg      Config
	sources  map[int32]Source
	trackers map[int32]*clock.OffsetTracker
	heap     instanceHeap
	pending  []*JFrame // jframes assembled from the current batch
	Stats    Stats
}

// New creates a unifier over per-radio sources using bootstrap offsets.
// Radios without a bootstrap offset are skipped (unsynced partitions cannot
// be merged, as the paper observes at 10 pods).
func New(cfg Config, sources map[int32]Source, boot *timesync.Result) *Unifier {
	u := &Unifier{
		cfg:      cfg,
		sources:  make(map[int32]Source),
		trackers: make(map[int32]*clock.OffsetTracker),
	}
	for radio, src := range sources {
		off, ok := boot.OffsetUS[radio]
		if !ok {
			continue
		}
		u.sources[radio] = src
		tr := clock.NewOffsetTracker(off)
		tr.SetSkewCompensation(cfg.SkewCompensation)
		u.trackers[radio] = tr
	}
	// Deterministic initial queue population (map order varies per run).
	radios := make([]int32, 0, len(u.sources))
	for radio := range u.sources {
		radios = append(radios, radio)
	}
	sort.Slice(radios, func(i, j int) bool { return radios[i] < radios[j] })
	for _, radio := range radios {
		u.advance(radio)
	}
	return u
}

// advance pulls the next record for a radio into the queue.
func (u *Unifier) advance(radio int32) {
	src := u.sources[radio]
	if src == nil {
		return
	}
	rec, err := src.Next()
	if err != nil {
		delete(u.sources, radio)
		return
	}
	u.Stats.Events++
	if rec.IsPhyErr() {
		u.Stats.PhyErrors++
	} else if !rec.FCSOK() {
		u.Stats.CRCErrors++
	}
	e := &queueEntry{
		univUS: u.trackers[radio].ToUniversal(rec.LocalUS),
		rec:    rec, radio: radio,
	}
	heap.Push(&u.heap, e)
}

// Next returns the next jframe in universal-time order, or io.EOF.
func (u *Unifier) Next() (*JFrame, error) {
	for len(u.pending) == 0 {
		if len(u.heap) == 0 {
			return nil, io.EOF
		}
		u.batch()
	}
	j := u.pending[0]
	u.pending = u.pending[1:]
	return j, nil
}

// batch pops a run of instances and groups them into jframes.
//
// The boundary rule must never cut through a cluster of instances of one
// transmission (cluster diameter is bounded by clock dispersion, well under
// GapUS), so a batch closes at the first inter-instance gap larger than
// GapUS. To bound work during dense bursts, once the batch spans the search
// window it also closes at any gap that clearly separates clusters, and
// unconditionally at four windows.
func (u *Unifier) batch() {
	first := heap.Pop(&u.heap).(*queueEntry)
	u.advance(first.radio)
	batch := []*queueEntry{first}
	last := first.univUS
	lastRadio := first.radio
	for len(u.heap) > 0 {
		head := u.heap[0]
		gap := head.univUS - last
		span := head.univUS - first.univUS
		gapLimit := u.cfg.GapUS
		// An untrusted radio (no recent resync) may be placed hundreds of
		// microseconds off; keep the batch open across the full search
		// window so its instances can still reach their group — this is
		// what the paper's wide search window buys.
		if !u.trusted(head.radio, head.univUS) || !u.trusted(lastRadio, last) {
			gapLimit = u.cfg.SearchWindowUS
		}
		if gap > gapLimit {
			break // natural boundary between transmissions
		}
		if span > u.cfg.SearchWindowUS && gap > gapLimit {
			break // soft cap, between dispersion clusters
		}
		if span > 4*u.cfg.SearchWindowUS {
			break // hard cap
		}
		e := heap.Pop(&u.heap).(*queueEntry)
		u.advance(e.radio)
		last = e.univUS
		lastRadio = e.radio
		batch = append(batch, e)
	}
	u.pending = append(u.pending, u.group(batch)...)
}

// trusted reports whether a radio's clock mapping has been confirmed by
// recent resynchronization: enough samples and not too long coasting.
func (u *Unifier) trusted(radio int32, nowUnivUS int64) bool {
	tr := u.trackers[radio]
	if tr == nil || tr.Resyncs() < 3 {
		return false
	}
	return nowUnivUS-tr.LastResyncUnivUS() <= trustedCoastUS
}

// trustedCoastUS is how long a clock may coast before its placements are
// treated as loose again (20 ppm over 5 s is 100 µs of drift).
const trustedCoastUS = 5_000_000

// joinTol returns the grouping tolerance for instance e: tight for trusted
// radios, the full search window for untrusted ones.
func (u *Unifier) joinTol(e *queueEntry) int64 {
	if u.trusted(e.radio, e.univUS) {
		return u.cfg.JoinToleranceUS
	}
	return u.cfg.SearchWindowUS
}

// near reports whether two instances' universal timestamps are within tol.
func near(a, b *queueEntry, tol int64) bool {
	d := a.univUS - b.univUS
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// contentEqual compares two frame captures with the paper's short-circuit:
// length, rate and FCS first, then bytes.
func contentEqual(a, b *tracefile.Record) bool {
	if len(a.Frame) != len(b.Frame) || a.Rate != b.Rate {
		return false
	}
	return bytes.Equal(a.Frame, b.Frame)
}

// group partitions a batch into jframes. Valid frames group by exact
// content — but a single radio cannot receive one transmission twice, so a
// group never takes two instances from the same radio: that is how
// identical-content frames (ACKs to the same station, retransmissions)
// that land in one batch still separate into distinct jframes. Corrupted
// frames attach by decoded transmitter address (§4.2), to a valid group if
// one exists or to each other otherwise; phy errors become singleton error
// jframes.
func (u *Unifier) group(batch []*queueEntry) []*JFrame {
	var frames []*JFrame
	type grp struct {
		rep     *queueEntry
		tx      dot80211.MAC
		ctrlKey string // subtype+RA identity for transmitterless control frames
		valid   bool
		members []*queueEntry
		radios  map[int32]bool
	}
	var groups []*grp
	var corrupt []*queueEntry

	newGroup := func(e *queueEntry, valid bool) *grp {
		f, _, _ := dot80211.DecodeCapture(e.rec.Frame)
		g := &grp{
			rep: e, tx: f.Transmitter(), valid: valid,
			members: []*queueEntry{e},
			radios:  map[int32]bool{e.radio: true},
		}
		if f.Type == dot80211.TypeControl {
			g.ctrlKey = ctrlKeyOf(f)
		}
		groups = append(groups, g)
		return g
	}

	for _, e := range batch {
		switch {
		case e.rec.IsPhyErr():
			frames = append(frames, u.emit([]*queueEntry{e}, nil))
		case e.rec.FCSOK():
			placed := false
			for _, g := range groups {
				tol := max64(u.joinTol(e), u.joinTol(g.rep))
				if g.valid && !g.radios[e.radio] && near(e, g.rep, tol) &&
					contentEqual(&g.rep.rec, &e.rec) {
					g.members = append(g.members, e)
					g.radios[e.radio] = true
					placed = true
					break
				}
			}
			if !placed {
				newGroup(e, true)
			}
		default:
			corrupt = append(corrupt, e)
		}
	}

	// Attach corrupted instances by transmitter (the paper's rule); control
	// frames carry no transmitter, so ACK/CTS corruptions match on subtype
	// plus receiver address instead. Valid groups are preferred over
	// corrupt-only ones.
	for _, e := range corrupt {
		f, _, _ := dot80211.DecodeCapture(e.rec.Frame) // partial decode is fine
		tx := f.Transmitter()
		ctrl := f.Type == dot80211.TypeControl && !f.Addr1.IsZero()
		var target *grp
		for _, g := range groups {
			// Corrupt frames never drive resynchronization, so the wide
			// untrusted-radio tolerance buys nothing and multiplies false
			// matches; always attach tightly.
			tol := 2 * u.cfg.JoinToleranceUS
			if g.radios[e.radio] || !near(e, g.rep, tol) {
				continue
			}
			switch {
			case !tx.IsZero() && g.tx == tx:
			case ctrl && g.ctrlKey == ctrlKeyOf(f):
			default:
				continue
			}
			if g.valid {
				target = g
				break
			}
			if target == nil {
				target = g
			}
		}
		if target != nil {
			target.members = append(target.members, e)
			target.radios[e.radio] = true
		} else {
			newGroup(e, false)
		}
	}

	for _, g := range groups {
		frames = append(frames, u.emit(g.members, g.rep))
	}
	// Batches can yield multiple jframes (simultaneous transmissions);
	// keep output time-ordered.
	sort.SliceStable(frames, func(i, j int) bool { return frames[i].UnivUS < frames[j].UnivUS })
	return frames
}

// emit builds a jframe from grouped instances and applies resynchronization.
func (u *Unifier) emit(members []*queueEntry, rep *queueEntry) *JFrame {
	j := &JFrame{}
	for _, e := range members {
		j.Instances = append(j.Instances, Instance{
			Radio: e.radio, LocalUS: e.rec.LocalUS, UnivUS: e.univUS,
			RSSIdBm: e.rec.RSSIdBm, FCSOK: e.rec.FCSOK(), PhyErr: e.rec.IsPhyErr(),
		})
	}
	sort.Slice(j.Instances, func(a, b int) bool { return j.Instances[a].UnivUS < j.Instances[b].UnivUS })
	// Median timestamp and group dispersion over the FCS-valid instances:
	// those are the radios whose clock agreement the jframe evidences.
	// Corrupt attachments ride along without weighing on either metric.
	lo, hi, mid, nOK := int64(0), int64(0), int64(0), 0
	for _, in := range j.Instances {
		if !in.FCSOK {
			continue
		}
		if nOK == 0 {
			lo = in.UnivUS
		}
		hi = in.UnivUS
		nOK++
	}
	if nOK > 0 {
		// Median per §4.2: for an even-sized group the midpoint of the two
		// middle timestamps — picking either middle instance alone would
		// bias the universal timestamp early or late by up to half the
		// group dispersion. Instances are sorted, so the middles are the
		// (nOK-1)/2-th and nOK/2-th valid ones (equal when nOK is odd).
		k, midLo := 0, int64(0)
		for _, in := range j.Instances {
			if in.FCSOK {
				if k == (nOK-1)/2 {
					midLo = in.UnivUS
				}
				if k == nOK/2 {
					mid = midLo + (in.UnivUS-midLo)/2
				}
				k++
			}
		}
		j.UnivUS = mid
		j.DispersionUS = hi - lo
	} else {
		j.UnivUS = j.Instances[len(j.Instances)/2].UnivUS
		j.DispersionUS = j.Instances[len(j.Instances)-1].UnivUS - j.Instances[0].UnivUS
	}
	if j.DispersionUS > u.Stats.MaxDispersUS {
		u.Stats.MaxDispersUS = j.DispersionUS
	}

	if rep == nil {
		j.PhyOnly = true
		j.Channel = dot80211.Channel(members[0].rec.Channel)
		u.Stats.JFrames++
		return j
	}
	j.Wire = rep.rec.Frame
	j.WireLen = int(rep.rec.OrigLen)
	j.Rate = dot80211.Rate(rep.rec.Rate)
	j.Channel = dot80211.Channel(rep.rec.Channel)
	// The capture hardware validated the FCS on the air; a snapped capture
	// cannot re-validate, so trust the record's flag once the header parses.
	f, _, err := dot80211.DecodeCapture(rep.rec.Frame)
	j.Frame = f
	j.Valid = rep.rec.FCSOK() && err == nil
	u.Stats.JFrames++
	u.Stats.Unified += int64(len(members))

	// Continuous resynchronization: only unique frames drive clocks, and
	// only when dispersion exceeds the threshold (§4.2's accuracy/overhead
	// tradeoff).
	if j.Valid && j.Frame.UniqueForSync() && len(members) >= 2 &&
		j.DispersionUS >= u.cfg.ResyncDispersionUS {
		for _, e := range members {
			if !e.rec.FCSOK() {
				continue
			}
			u.trackers[e.radio].Resync(e.rec.LocalUS, j.UnivUS)
			u.Stats.Resyncs++
		}
	}
	return j
}

// Tracker exposes a radio's clock state for diagnostics.
func (u *Unifier) Tracker(radio int32) *clock.OffsetTracker { return u.trackers[radio] }

// Drain consumes the whole stream, returning all jframes.
func (u *Unifier) Drain() ([]*JFrame, error) {
	var out []*JFrame
	for {
		j, err := u.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, j)
	}
}

// ctrlKeyOf identifies a transmitterless control frame by subtype and RA.
func ctrlKeyOf(f dot80211.Frame) string {
	return string([]byte{byte(f.Subtype)}) + string(f.Addr1[:])
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
