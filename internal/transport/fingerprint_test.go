package transport

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/cc"
	"repro/internal/dot80211"
	"repro/internal/llc"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/unify"
)

// tapEvent is one wired-tap observation to be replayed as an exchange.
type tapEvent struct {
	us        int64
	seg       tcpsim.Segment
	delivered bool
}

// runCCFlow simulates one server→client bulk transfer with the given
// congestion controller over a finite-buffer bottleneck and returns the
// tap's observation stream. Each flow runs in its own engine so flows are
// independent trials.
func runCCFlow(t *testing.T, algo string, seed int64, downBytes int64) []tapEvent {
	t.Helper()
	eng := sim.NewEngine(seed)
	w := tcpsim.NewWiredNet(eng)
	w.LossProb = 0.0001
	w.QueuePkts = 8
	w.BottleneckBytesPerUS = 1.25        // 10 Mbps bottleneck
	w.LatencyLocal = 5 * sim.Millisecond // 10 ms base RTT

	cliMAC := dot80211.MAC{0xc2, 0, 0, 0, 0, 1}
	srvMAC := dot80211.MAC{0xee, 0, 0, 0, 0, 1}
	const cliIP, srvIP = uint32(0x0a000001), uint32(0x0b000001)

	var events []tapEvent
	w.Tap = func(seg tcpsim.Segment, src, dst dot80211.MAC, delivered bool) {
		events = append(events, tapEvent{us: eng.Now().US64(), seg: seg, delivered: delivered})
	}

	var cep, sep *tcpsim.Endpoint
	cep = tcpsim.NewEndpoint(eng, cliIP, 5000, func(seg tcpsim.Segment) {
		w.Forward(cliMAC, srvMAC, seg, false)
	})
	sep = tcpsim.NewEndpoint(eng, srvIP, 80, func(seg tcpsim.Segment) {
		w.Forward(srvMAC, cliMAC, seg, false)
	})
	if algo != cc.Fixed {
		cep.SetCongestionControl(cc.MustNew(algo, tcpsim.MSS))
		sep.SetCongestionControl(cc.MustNew(algo, tcpsim.MSS))
	}
	w.Attach(cliMAC, cep.OnSegment)
	w.Attach(srvMAC, sep.OnSegment)

	sep.Listen(downBytes)
	eng.After(0, func() { cep.Connect(srvIP, 80, 2000) })
	eng.Run(300 * sim.Second)
	if !cep.Established() {
		t.Fatalf("%s/%d: connection never established", algo, seed)
	}
	return events
}

// feedTap replays tap events into the analyzer as frame exchanges (one
// attempt each, delivery verdict from the tap).
func feedTap(a *Analyzer, events []tapEvent) {
	var macSeq uint16
	for _, ev := range events {
		macSeq++
		var tx, rx dot80211.MAC
		if ev.seg.SrcIP&0xff000000 == 0x0a000000 {
			tx, rx = cli, ap
		} else {
			tx, rx = ap, cli
		}
		f := dot80211.NewData(rx, tx, ap, macSeq&0xfff, ev.seg.Encode())
		j := &unify.JFrame{UnivUS: ev.us, Frame: f, Wire: f.Encode(), Rate: dot80211.Rate54Mbps, Valid: true}
		del := llc.DeliveryObserved
		if !ev.delivered {
			del = llc.DeliveryFailed
		}
		at := &llc.Attempt{Data: j, Transmitter: tx, Receiver: rx, Seq: macSeq & 0xfff,
			HasSeq: true, StartUS: ev.us, EndUS: ev.us + 300}
		a.AddExchange(&llc.Exchange{
			Attempts: []*llc.Attempt{at}, Transmitter: tx, Receiver: rx,
			Seq: macSeq & 0xfff, Delivery: del, StartUS: ev.us, EndUS: ev.us + 300,
		})
	}
}

// TestFingerprintAccuracy is the tentpole's acceptance gate: across
// Reno/CUBIC/BBR bulk flows through a shared-bottleneck configuration the
// classifier must recover the sender's algorithm from passive observation
// at ≥ 80% accuracy.
func TestFingerprintAccuracy(t *testing.T) {
	algos := []string{cc.Reno, cc.Cubic, cc.BBR}
	type trial struct {
		algo string
		seed int64
	}
	var trials []trial
	for _, algo := range algos {
		for seed := int64(1); seed <= 4; seed++ {
			trials = append(trials, trial{algo, seed})
		}
	}

	correct, classified := 0, 0
	confusion := map[string]string{}
	for _, tr := range trials {
		a := NewAnalyzer()
		feedTap(a, runCCFlow(t, tr.algo, tr.seed, 12_000_000))
		prints := a.FingerprintCC()
		if len(prints) != 1 {
			t.Fatalf("%s/%d: %d fingerprints, want 1", tr.algo, tr.seed, len(prints))
		}
		fp := prints[0]
		key := fmt.Sprintf("%s/%d", tr.algo, tr.seed)
		confusion[key] = fp.Algo
		if fp.Algo != CCUnknown {
			classified++
			if fp.Algo == tr.algo {
				correct++
			}
		}
	}
	if classified < len(trials)*3/4 {
		t.Errorf("classifier abstained too often: %d/%d classified (%v)",
			classified, len(trials), confusion)
	}
	acc := float64(correct) / float64(classified)
	if acc < 0.8 {
		keys := make([]string, 0, len(confusion))
		for k := range confusion {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			t.Logf("  truth %-8s → predicted %s", k, confusion[k])
		}
		t.Fatalf("fingerprint accuracy = %.0f%% (%d/%d), want ≥ 80%%", 100*acc, correct, classified)
	}
}

// TestFingerprintFixedWindow checks the compatibility mode's signature: a
// flat 8-segment envelope released in bursts.
func TestFingerprintFixedWindow(t *testing.T) {
	a := NewAnalyzer()
	feedTap(a, runCCFlow(t, cc.Fixed, 7, 1_000_000))
	prints := a.FingerprintCC()
	if len(prints) != 1 {
		t.Fatalf("fingerprints = %d", len(prints))
	}
	if prints[0].Algo != cc.Fixed {
		t.Errorf("fixed-window flow classified as %q (features %+v)",
			prints[0].Algo, prints[0].Features)
	}
}

// TestFingerprintShortFlowUnknown: a handful of segments is not enough
// signal, and the classifier must say so rather than guess.
func TestFingerprintShortFlowUnknown(t *testing.T) {
	a := NewAnalyzer()
	handshake(a, 0, 100, 900)
	for i := 0; i < 5; i++ {
		a.AddExchange(exFor(dataSeg(101+uint32(i)*1000, 1000), 10_000+int64(i)*5_000, llc.DeliveryObserved))
	}
	a.AddExchange(exFor(ackSeg(5101), 50_000, llc.DeliveryObserved))
	prints := a.FingerprintCC()
	if len(prints) != 1 || prints[0].Algo != CCUnknown {
		t.Errorf("short flow verdict = %+v, want unknown", prints)
	}
}
