// Congestion-control fingerprinting: classify each reconstructed flow's
// sender algorithm from passively observed sequence dynamics alone — the
// window-trajectory analysis of Jaiswal et al. pushed one level further.
// The unified trace gives us every data segment's send time and every
// cumulative ACK, so the in-flight envelope (outstanding bytes over time)
// is reconstructible; its shape betrays the controller:
//
//   - fixed window  — flat envelope pinned at the configured flight cap,
//     released in ACK-clocked bursts, indifferent to loss;
//   - Reno          — linear inter-loss growth (the sawtooth) with ~50%
//     multiplicative decrease at each loss event;
//   - CUBIC         — concave-then-convex inter-loss growth (fast recovery
//     toward W_max, plateau, convex probing) with ~30% decrease;
//   - BBR           — paced (no same-instant bursts), envelope set by the
//     bandwidth model, essentially no reduction at loss events.
//
// Vantage caveat: these signatures are crisp when segments are observed at
// (or before) the sender's release point — e.g. the wired distribution tap
// — and the analyzer's accuracy gate is asserted there. Frames observed on
// the air have already been serialized through a MAC queue, which launders
// burstiness and caps the visible envelope at the link's drain rate, so
// over short wireless enterprise flows the classifier abstains heavily and
// the confusion report (analysis.CCConfusionReport) is the honest record
// of what a passive wireless vantage can and cannot recover.
package transport

import (
	"sort"

	"repro/internal/cc"
	"repro/internal/tcpsim"
)

// CCUnknown is the verdict for flows without enough signal to classify.
const CCUnknown = "unknown"

// ccMinDataSegs is the minimum distinct data segments before the
// fingerprinter ventures a verdict: below this there is no steady state to
// read, only slow start, and every controller's slow start looks alike.
const ccMinDataSegs = 50

// CCFeatures are the envelope statistics a verdict is derived from,
// retained for diagnostics and the confusion report.
type CCFeatures struct {
	// MaxFlightSegs is the peak of the in-flight envelope, in MSS.
	MaxFlightSegs float64
	// FlatShare is the fraction of envelope buckets (after warmup) within
	// one segment of the peak — near 1 for a pinned fixed window.
	FlatShare float64
	// AvgLossDrop is the mean fractional envelope reduction across loss
	// events (-1 when no measurable loss event exists). Reno ≈ 0.5,
	// CUBIC ≈ 0.3, BBR/fixed ≈ 0.
	AvgLossDrop float64
	// EpochMidFrac is the mean normalized envelope height at the midpoint
	// of inter-loss epochs (-1 when unmeasurable).
	EpochMidFrac float64
	// OscRatio is the post-warmup envelope's (p85−p15)/median: Reno's
	// sawtooth swings by ~half its window every few RTTs, while CUBIC
	// converged near W_max and BBR's model-pinned window stay nearly flat.
	OscRatio float64
	// LossPer100RTT is loss-event frequency normalized by the flow's RTT:
	// Reno forces a congestion event every ~W/2 round trips; CUBIC's
	// epochs last seconds regardless of RTT.
	LossPer100RTT float64
	// BurstShare is the fraction of near-simultaneous consecutive data
	// sends — high for ACK-clocked window releases, near zero under
	// pacing.
	BurstShare float64
	// RTTEstUS is the data→covering-ACK delay median used for bucketing.
	RTTEstUS int64
}

// CCFingerprint is the classifier's verdict for one flow.
type CCFingerprint struct {
	Key        tcpsim.FlowKey
	Algo       string // cc.* name or CCUnknown
	DataSegs   int
	LossEvents int
	Features   CCFeatures
}

// FingerprintCC classifies every handshake-complete flow. Flows with too
// little data are reported with Algo == CCUnknown so callers can measure
// coverage as well as accuracy.
func (a *Analyzer) FingerprintCC() []CCFingerprint {
	var out []CCFingerprint
	for _, f := range a.Flows() {
		if !f.HandshakeComplete {
			continue
		}
		out = append(out, fingerprintFlow(f))
	}
	return out
}

// sendSample is one first-transmission data observation of the heavy
// direction.
type sendSample struct {
	us     int64
	seqEnd uint32
	flight float64 // segments in flight after this send
}

// fingerprintFlow derives features and a verdict for one flow.
func fingerprintFlow(f *Flow) CCFingerprint {
	fp := CCFingerprint{Key: f.Key, Algo: CCUnknown}
	fp.Features.AvgLossDrop = -1
	fp.Features.EpochMidFrac = -1

	heavy := heavyDirection(f)
	if heavy == 0 {
		return fp
	}
	hd := f.dirs[heavy]

	// Walk observations rebuilding the in-flight envelope of the heavy
	// direction: outstanding bytes = last sent seqEnd − highest ACK the
	// opposite direction has emitted.
	var (
		samples   []sendSample
		lossTimes []int64
		rttDelays []int64
		pending   []sendSample // awaiting a covering ACK for RTT estimation
		seenSeq   = map[uint32]bool{}
		seenDup   = map[uint32]map[uint16]bool{}
		ackRef    uint32
		ackValid  bool
		maxSeqEnd uint32
		haveSeq   bool
	)
	if hd.sawSyn {
		ackRef, ackValid = hd.iss+1, true
	}
	for _, o := range f.Observations {
		seg := &o.Seg
		if seg.SrcIP == heavy && seg.PayloadLen > 0 {
			ms := seenDup[seg.Seq]
			if ms == nil {
				ms = make(map[uint16]bool)
				seenDup[seg.Seq] = ms
			}
			if ms[o.MacSeq] {
				continue // duplicate observation of the same frame
			}
			ms[o.MacSeq] = true
			if seenSeq[seg.Seq] {
				lossTimes = append(lossTimes, o.TimeUS)
				continue
			}
			seenSeq[seg.Seq] = true
			fp.DataSegs++
			end := seg.SeqEnd()
			if !haveSeq || seqLess(maxSeqEnd, end) {
				maxSeqEnd, haveSeq = end, true
			}
			if ackValid {
				s := sendSample{
					us: o.TimeUS, seqEnd: end,
					flight: float64(maxSeqEnd-ackRef) / tcpsim.MSS,
				}
				samples = append(samples, s)
				if len(pending) < 512 {
					pending = append(pending, s)
				}
			}
		}
		if seg.SrcIP != heavy && seg.IsACK() && !seg.IsSYN() {
			if !ackValid || seqLess(ackRef, seg.Ack) {
				ackRef, ackValid = seg.Ack, true
			}
			keep := pending[:0]
			for _, p := range pending {
				if seqLEQ(p.seqEnd, seg.Ack) {
					if len(rttDelays) < 512 {
						rttDelays = append(rttDelays, o.TimeUS-p.us)
					}
				} else {
					keep = append(keep, p)
				}
			}
			pending = keep
		}
	}
	if fp.DataSegs < ccMinDataSegs || len(samples) < ccMinDataSegs {
		return fp
	}

	computeFeatures(&fp, samples, lossTimes, rttDelays)
	fp.Algo = classifyCC(&fp)
	return fp
}

// heavyDirection returns the source IP carrying the most data bytes (0 if
// the flow carried none).
func heavyDirection(f *Flow) uint32 {
	var best uint32
	var bestSegs int
	for ip, d := range f.dirs {
		if d.dataSegs > bestSegs {
			best, bestSegs = ip, d.dataSegs
		}
	}
	return best
}

// computeFeatures reduces the raw send/loss series to CCFeatures.
func computeFeatures(fp *CCFingerprint, samples []sendSample, lossTimes, rttDelays []int64) {
	ft := &fp.Features

	// Bucket duration: the flow's own RTT estimate, clamped.
	ft.RTTEstUS = 50_000
	if len(rttDelays) >= 3 {
		sort.Slice(rttDelays, func(i, j int) bool { return rttDelays[i] < rttDelays[j] })
		ft.RTTEstUS = rttDelays[len(rttDelays)/2]
	}
	bucketUS := ft.RTTEstUS
	if bucketUS < 5_000 {
		bucketUS = 5_000
	}
	if bucketUS > 200_000 {
		bucketUS = 200_000
	}

	// Envelope: per-bucket max flight.
	t0 := samples[0].us
	span := samples[len(samples)-1].us - t0
	nb := int(span/bucketUS) + 1
	env := make([]float64, nb)
	for _, s := range samples {
		i := int((s.us - t0) / bucketUS)
		if s.flight > env[i] {
			env[i] = s.flight
		}
	}
	// Drop empty buckets (idle gaps) but keep time association.
	type envPt struct {
		us int64
		w  float64
	}
	var e []envPt
	for i, w := range env {
		if w > 0 {
			e = append(e, envPt{us: t0 + int64(i)*bucketUS, w: w})
		}
	}
	if len(e) < 4 {
		return
	}

	for _, p := range e {
		if p.w > ft.MaxFlightSegs {
			ft.MaxFlightSegs = p.w
		}
	}
	warm := e[len(e)/4:]
	flat := 0
	ws := make([]float64, 0, len(warm))
	for _, p := range warm {
		if p.w >= ft.MaxFlightSegs-1.2 {
			flat++
		}
		ws = append(ws, p.w)
	}
	ft.FlatShare = float64(flat) / float64(len(warm))
	sort.Float64s(ws)
	if med := ws[len(ws)/2]; med > 0 {
		p15 := ws[len(ws)*15/100]
		p85 := ws[len(ws)*85/100]
		ft.OscRatio = (p85 - p15) / med
	}

	// Burstiness: near-simultaneous consecutive sends (ACK-clocked window
	// releases arrive back-to-back; paced senders space them out).
	burstGapUS := ft.RTTEstUS / 40
	if burstGapUS < 200 {
		burstGapUS = 200
	}
	bursts := 0
	for i := 1; i < len(samples); i++ {
		if samples[i].us-samples[i-1].us <= burstGapUS {
			bursts++
		}
	}
	ft.BurstShare = float64(bursts) / float64(len(samples)-1)

	// Loss clustering: retransmissions within a few RTTs are one
	// congestion event.
	clusterGap := 3 * bucketUS
	var clusters []int64
	for _, lt := range lossTimes {
		if len(clusters) == 0 || lt-clusters[len(clusters)-1] > clusterGap {
			clusters = append(clusters, lt)
		} else {
			clusters[len(clusters)-1] = lt
		}
	}
	fp.LossEvents = len(clusters)
	if dur := samples[len(samples)-1].us - samples[0].us; dur > 0 {
		ft.LossPer100RTT = float64(fp.LossEvents) / (float64(dur) / float64(bucketUS)) * 100
	}

	// Loss response: pre-loss peak vs the stable post-recovery level (the
	// envelope a little after the event, once the retransmission dip has
	// refilled — the dip itself reflects recovery mechanics, not cwnd).
	// Clusters near the end of the trace are skipped: the final drain as
	// the flow closes looks like a huge "drop".
	lastUS := e[len(e)-1].us
	var drops []float64
	for _, ct := range clusters {
		if ct > lastUS-6*bucketUS {
			continue
		}
		var pre, post float64
		for _, p := range e {
			if p.us <= ct && p.us > ct-4*bucketUS && p.w > pre {
				pre = p.w
			}
			if p.us > ct+2*bucketUS && p.us <= ct+6*bucketUS && p.w > post {
				post = p.w
			}
		}
		if pre > 0 && post > 0 {
			d := (pre - post) / pre
			if d < 0 {
				d = 0
			}
			drops = append(drops, d)
		}
	}
	if len(drops) > 0 {
		var sum float64
		for _, d := range drops {
			sum += d
		}
		ft.AvgLossDrop = sum / float64(len(drops))
	}

	// Inter-loss epoch shape over the growth phase (from the recovery
	// dip's bottom to the next loss): normalized envelope height at the
	// phase midpoint — ≈0.5 for Reno's linear sawtooth, high for CUBIC's
	// fast-recovery-then-plateau curve.
	var mids []float64
	for ci := 0; ci+1 < len(clusters); ci++ {
		lo, hi := clusters[ci], clusters[ci+1]
		var ep []envPt
		for _, p := range e {
			if p.us > lo && p.us < hi {
				ep = append(ep, p)
			}
		}
		if len(ep) < 6 {
			continue
		}
		// Growth phase starts at the envelope minimum.
		argMin := 0
		for i, p := range ep {
			if p.w < ep[argMin].w {
				argMin = i
			}
		}
		growth := ep[argMin:]
		if len(growth) < 4 {
			continue
		}
		minW, maxW := growth[0].w, growth[0].w
		for _, p := range growth {
			if p.w > maxW {
				maxW = p.w
			}
		}
		if maxW-minW < 2 { // no growth signal (flat epoch)
			continue
		}
		midT := (growth[0].us + growth[len(growth)-1].us) / 2
		bestDT := int64(1) << 62
		var midW float64
		for _, p := range growth {
			dt := p.us - midT
			if dt < 0 {
				dt = -dt
			}
			if dt < bestDT {
				bestDT, midW = dt, p.w
			}
		}
		mids = append(mids, (midW-minW)/(maxW-minW))
	}
	if len(mids) > 0 {
		var sum float64
		for _, m := range mids {
			sum += m
		}
		ft.EpochMidFrac = sum / float64(len(mids))
	}
}

// classifyCC turns features into a verdict.
func classifyCC(fp *CCFingerprint) string {
	ft := &fp.Features
	// Fixed window: the envelope never escapes the compatibility cap, no
	// matter how long the flow ran — every real controller's window grows
	// past it (slow start alone would). A capped-but-jittery envelope is a
	// flow whose sending was throttled elsewhere (e.g. the MAC queue drain
	// at a slow wireless link), so flatness is required before claiming
	// the cap is a window.
	if ft.MaxFlightSegs <= float64(cc.DefaultFixedWindow)+1.5 {
		if ft.OscRatio <= 0.25 {
			return cc.Fixed
		}
		return CCUnknown
	}
	// Everything below needs the window's own dynamics to be visible: a
	// flow whose flight never clearly outgrew the cap region is throttled
	// by the path (or too short), and its envelope says nothing about the
	// controller.
	if ft.MaxFlightSegs < 12 {
		return CCUnknown
	}
	// BBR: pacing eliminates ACK-clocked same-instant bursts entirely —
	// every other controller releases window in bursts at least during
	// slow start and recovery.
	if ft.BurstShare <= 0.02 {
		return cc.BBR
	}
	// AIMD family. Reno halves and reclimbs in ~W/2 round trips, so its
	// envelope oscillates hard and losses recur every few tens of RTTs;
	// CUBIC converges onto W_max and sits nearly flat between rare epochal
	// losses.
	if fp.LossEvents >= 2 {
		if ft.AvgLossDrop >= 0 && ft.AvgLossDrop < 0.1 {
			return cc.BBR // unpaced-looking but loss-indifferent
		}
		if ft.LossPer100RTT >= 2 || ft.OscRatio >= 0.35 {
			return cc.Reno
		}
		return cc.Cubic
	}
	return CCUnknown
}
