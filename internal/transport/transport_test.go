package transport

import (
	"testing"

	"repro/internal/dot80211"
	"repro/internal/llc"
	"repro/internal/tcpsim"
	"repro/internal/unify"
)

var (
	cli = dot80211.MAC{2, 0, 0, 0, 0, 1}
	ap  = dot80211.MAC{0xaa, 0, 0, 0, 0, 1}
)

const (
	cliIP = 0x0a000001
	srvIP = 0x0a000002
)

// exFor wraps a TCP segment into a delivered-or-not frame exchange.
func exFor(seg tcpsim.Segment, us int64, delivery llc.Delivery) *llc.Exchange {
	var tx, rx dot80211.MAC
	if seg.SrcIP == cliIP {
		tx, rx = cli, ap
	} else {
		tx, rx = ap, cli
	}
	macSeq := uint16(us/100) & 0xfff
	f := dot80211.NewData(rx, tx, ap, macSeq, seg.Encode())
	j := &unify.JFrame{UnivUS: us, Frame: f, Wire: f.Encode(), Rate: dot80211.Rate54Mbps, Valid: true}
	at := &llc.Attempt{Data: j, Transmitter: tx, Receiver: rx, Seq: macSeq, HasSeq: true, StartUS: us, EndUS: us + 300}
	return &llc.Exchange{
		Attempts: []*llc.Attempt{at}, Transmitter: tx, Receiver: rx, Seq: macSeq,
		Delivery: delivery, StartUS: us, EndUS: us + 300,
	}
}

// handshake emits SYN / SYN-ACK / ACK exchanges.
func handshake(a *Analyzer, baseUS int64, cliISS, srvISS uint32) {
	a.AddExchange(exFor(tcpsim.Segment{
		SrcIP: cliIP, DstIP: srvIP, SrcPort: 5000, DstPort: 80,
		Seq: cliISS, Flags: tcpsim.FlagSYN,
	}, baseUS, llc.DeliveryObserved))
	a.AddExchange(exFor(tcpsim.Segment{
		SrcIP: srvIP, DstIP: cliIP, SrcPort: 80, DstPort: 5000,
		Seq: srvISS, Ack: cliISS + 1, Flags: tcpsim.FlagSYN | tcpsim.FlagACK,
	}, baseUS+1000, llc.DeliveryObserved))
	a.AddExchange(exFor(tcpsim.Segment{
		SrcIP: cliIP, DstIP: srvIP, SrcPort: 5000, DstPort: 80,
		Seq: cliISS + 1, Ack: srvISS + 1, Flags: tcpsim.FlagACK,
	}, baseUS+2000, llc.DeliveryObserved))
}

func dataSeg(seq uint32, payload uint16) tcpsim.Segment {
	return tcpsim.Segment{
		SrcIP: cliIP, DstIP: srvIP, SrcPort: 5000, DstPort: 80,
		Seq: seq, Flags: tcpsim.FlagACK, PayloadLen: payload,
	}
}

func ackSeg(ack uint32) tcpsim.Segment {
	return tcpsim.Segment{
		SrcIP: srvIP, DstIP: cliIP, SrcPort: 80, DstPort: 5000,
		Ack: ack, Flags: tcpsim.FlagACK,
	}
}

func TestHandshakeDetection(t *testing.T) {
	a := NewAnalyzer()
	handshake(a, 1000, 100, 900)
	flows := a.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	if !flows[0].HandshakeComplete {
		t.Error("handshake not detected")
	}
	if a.Stats.CompleteFlows != 1 || a.Stats.TCPSegments != 3 {
		t.Errorf("stats = %+v", a.Stats)
	}
}

func TestIncompleteHandshakeExcluded(t *testing.T) {
	a := NewAnalyzer()
	// SYN only: a port scan.
	a.AddExchange(exFor(tcpsim.Segment{
		SrcIP: cliIP, DstIP: srvIP, SrcPort: 5000, DstPort: 80,
		Seq: 55, Flags: tcpsim.FlagSYN,
	}, 1000, llc.DeliveryUnknown))
	if a.Stats.CompleteFlows != 0 {
		t.Error("scan counted as complete flow")
	}
	if len(a.LossRates(0)) != 0 {
		t.Error("incomplete flow in loss rates")
	}
}

func TestOracleResolvesUnknownDelivery(t *testing.T) {
	a := NewAnalyzer()
	handshake(a, 0, 100, 900)
	// Data with unknown link delivery...
	a.AddExchange(exFor(dataSeg(101, 1000), 10_000, llc.DeliveryUnknown))
	// ...then a covering ACK from the server.
	a.AddExchange(exFor(ackSeg(1101), 20_000, llc.DeliveryObserved))
	if a.Stats.ResolvedByOracle != 1 {
		t.Fatalf("resolved = %d, want 1", a.Stats.ResolvedByOracle)
	}
	f := a.Flows()[0]
	var found bool
	for _, o := range f.Observations {
		if o.Seg.PayloadLen == 1000 && o.ResolvedDelivered {
			found = true
		}
	}
	if !found {
		t.Error("observation not marked resolved")
	}
	// RTT sample recorded: 10 ms between data and covering ACK.
	if len(f.RTTSamplesUS[cliIP]) != 1 || f.RTTSamplesUS[cliIP][0] != 10_000 {
		t.Errorf("rtt samples = %v", f.RTTSamplesUS[cliIP])
	}
}

func TestNonCoveringAckDoesNotResolve(t *testing.T) {
	a := NewAnalyzer()
	handshake(a, 0, 100, 900)
	a.AddExchange(exFor(dataSeg(101, 1000), 10_000, llc.DeliveryUnknown))
	a.AddExchange(exFor(ackSeg(101), 20_000, llc.DeliveryObserved)) // covers nothing
	if a.Stats.ResolvedByOracle != 0 {
		t.Error("non-covering ACK resolved a delivery")
	}
}

func TestMonitorOmissionDetected(t *testing.T) {
	a := NewAnalyzer()
	handshake(a, 0, 100, 900)
	// Client sends two segments; monitors capture only the second.
	// (first: seq 101..1101 — never observed).
	a.AddExchange(exFor(dataSeg(1101, 1000), 10_000, llc.DeliveryObserved))
	// Server ACK covers both: hole of 1000 bytes ⇒ one omitted packet.
	a.AddExchange(exFor(ackSeg(2101), 20_000, llc.DeliveryObserved))
	if a.Stats.MonitorOmissions != 1 {
		t.Errorf("omissions = %d, want 1", a.Stats.MonitorOmissions)
	}
}

func TestRetransmissionWirelessLoss(t *testing.T) {
	a := NewAnalyzer()
	handshake(a, 0, 100, 900)
	// Original fails at the link layer; TCP retransmits.
	a.AddExchange(exFor(dataSeg(101, 1000), 10_000, llc.DeliveryFailed))
	a.AddExchange(exFor(dataSeg(101, 1000), 300_000, llc.DeliveryObserved))
	if a.Stats.Retransmissions != 1 || a.Stats.WirelessLosses != 1 {
		t.Errorf("stats = %+v", a.Stats)
	}
	rates := a.LossRates(1)
	if len(rates) != 1 {
		t.Fatalf("loss rates = %d", len(rates))
	}
	if rates[0].WirelessLoss != 1 || rates[0].WiredLoss != 0 {
		t.Errorf("split = %+v", rates[0])
	}
	if rates[0].LossRate != 0.5 { // 1 loss / 2 data segments
		t.Errorf("loss rate = %f", rates[0].LossRate)
	}
}

func TestRetransmissionWiredLoss(t *testing.T) {
	a := NewAnalyzer()
	handshake(a, 0, 100, 900)
	// Link layer delivered the original, yet TCP retransmitted: the drop
	// happened beyond the air.
	a.AddExchange(exFor(dataSeg(101, 1000), 10_000, llc.DeliveryObserved))
	a.AddExchange(exFor(dataSeg(101, 1000), 300_000, llc.DeliveryObserved))
	if a.Stats.WiredLosses != 1 || a.Stats.WirelessLosses != 0 {
		t.Errorf("stats = %+v", a.Stats)
	}
}

func TestRetransmissionAfterOracleResolutionIsWired(t *testing.T) {
	a := NewAnalyzer()
	handshake(a, 0, 100, 900)
	a.AddExchange(exFor(dataSeg(101, 1000), 10_000, llc.DeliveryUnknown))
	a.AddExchange(exFor(ackSeg(1101), 20_000, llc.DeliveryObserved)) // resolves
	a.AddExchange(exFor(dataSeg(101, 1000), 300_000, llc.DeliveryObserved))
	if a.Stats.WiredLosses != 1 {
		t.Errorf("resolved-then-retransmitted should be wired: %+v", a.Stats)
	}
}

func TestUnresolvedUnknownCountsWireless(t *testing.T) {
	a := NewAnalyzer()
	handshake(a, 0, 100, 900)
	a.AddExchange(exFor(dataSeg(101, 1000), 10_000, llc.DeliveryUnknown))
	a.AddExchange(exFor(dataSeg(101, 1000), 300_000, llc.DeliveryObserved))
	if a.Stats.WirelessLosses != 1 {
		t.Errorf("unresolved unknown delivery should classify wireless: %+v", a.Stats)
	}
}

func TestNonTCPSkipped(t *testing.T) {
	a := NewAnalyzer()
	f := dot80211.NewData(ap, cli, ap, 1, []byte("arp who-has 10.0.0.9"))
	j := &unify.JFrame{UnivUS: 100, Frame: f, Wire: f.Encode(), Valid: true}
	a.AddExchange(&llc.Exchange{
		Attempts: []*llc.Attempt{{Data: j}}, Transmitter: cli,
		Delivery: llc.DeliveryObserved, StartUS: 100, EndUS: 200,
	})
	if a.Stats.NonTCP != 1 || a.Stats.TCPSegments != 0 {
		t.Errorf("stats = %+v", a.Stats)
	}
}

func TestInferredExchangeNoData(t *testing.T) {
	a := NewAnalyzer()
	a.AddExchange(&llc.Exchange{
		Attempts: []*llc.Attempt{{Inferred: true}},
		Delivery: llc.DeliveryInferred, StartUS: 100, EndUS: 200,
	})
	if a.Stats.TCPSegments != 0 || a.Stats.NonTCP != 0 {
		t.Errorf("dataless exchange misprocessed: %+v", a.Stats)
	}
}

func TestMultipleFlowsSeparated(t *testing.T) {
	a := NewAnalyzer()
	handshake(a, 0, 100, 900)
	// Second flow: different client port.
	a.AddExchange(exFor(tcpsim.Segment{
		SrcIP: cliIP, DstIP: srvIP, SrcPort: 5001, DstPort: 80,
		Seq: 7, Flags: tcpsim.FlagSYN,
	}, 50_000, llc.DeliveryObserved))
	if a.Stats.Flows != 2 {
		t.Errorf("flows = %d, want 2", a.Stats.Flows)
	}
}

func TestIntervalMerging(t *testing.T) {
	var set []interval
	set = addInterval(set, 10, 20)
	set = addInterval(set, 30, 40)
	set = addInterval(set, 20, 30) // bridges
	if len(set) != 1 || set[0].lo != 10 || set[0].hi != 40 {
		t.Errorf("merge failed: %+v", set)
	}
	if got := coveredBytes(set, 0, 100); got != 30 {
		t.Errorf("covered = %d, want 30", got)
	}
	if got := coveredBytes(set, 15, 35); got != 20 {
		t.Errorf("clipped covered = %d, want 20", got)
	}
	// Wraparound-safe.
	var w []interval
	w = addInterval(w, 0xfffffff0, 0x10)
	if got := coveredBytes(w, 0xfffffff0, 0x10); got != 0x20 {
		t.Errorf("wrap covered = %d", got)
	}
}

func TestLossKindStrings(t *testing.T) {
	if LossWireless.String() != "wireless" || LossWired.String() != "wired" || LossUnknown.String() != "unknown" {
		t.Error("names")
	}
}

func TestRTTSummary(t *testing.T) {
	a := NewAnalyzer()
	handshake(a, 0, 100, 900)
	// Three data segments resolved by covering ACKs at varying delays.
	a.AddExchange(exFor(dataSeg(101, 1000), 10_000, llc.DeliveryUnknown))
	a.AddExchange(exFor(ackSeg(1101), 15_000, llc.DeliveryObserved)) // 5 ms
	a.AddExchange(exFor(dataSeg(1101, 1000), 20_000, llc.DeliveryUnknown))
	a.AddExchange(exFor(ackSeg(2101), 40_000, llc.DeliveryObserved)) // 20 ms
	rep := a.RTTSummary(nil)
	if rep.Samples != 2 {
		t.Fatalf("samples = %d, want 2", rep.Samples)
	}
	if rep.MinUS != 5_000 || rep.MaxUS != 20_000 {
		t.Errorf("min/max = %d/%d", rep.MinUS, rep.MaxUS)
	}
	// Direction filter excludes everything for the server's IP.
	none := a.RTTSummary(func(ip uint32) bool { return ip == srvIP })
	if none.Samples != 0 {
		t.Errorf("server-side samples = %d, want 0", none.Samples)
	}
}
