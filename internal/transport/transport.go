// Package transport reconstructs TCP flows from frame exchanges (§5.2) in
// the style of Jaiswal et al.'s passive analysis, adapted for the two
// ambiguities of the wireless vantage point:
//
//  1. A frame exchange's delivery can be unknown (no ACK captured). TCP is
//     the oracle: a later acknowledgment covering the segment's sequence
//     space proves the link-layer frame was delivered.
//  2. Monitors are not lossless. A TCP acknowledgment covering a sequence
//     hole — bytes never observed as data on the air — reveals packets that
//     were delivered but missed by every monitor.
//
// The package also classifies TCP-visible losses as wireless (the segment's
// 802.11 exchange failed) or wired (the exchange succeeded yet TCP
// retransmitted), which drives Figure 11.
package transport

import (
	"encoding/binary"
	"sort"

	"repro/internal/llc"
	"repro/internal/tcpsim"
)

// LossKind classifies a TCP retransmission's cause.
type LossKind uint8

// Loss kinds.
const (
	LossUnknown  LossKind = iota
	LossWireless          // the original segment's frame exchange failed
	LossWired             // frame exchange delivered; loss was beyond the air
)

// String names the loss kind.
func (k LossKind) String() string {
	switch k {
	case LossWireless:
		return "wireless"
	case LossWired:
		return "wired"
	default:
		return "unknown"
	}
}

// SegObs is one observed TCP segment (one frame exchange carrying it).
// It copies the two exchange fields the analyses read (MacSeq, Delivery)
// instead of holding the *llc.Exchange: a retained exchange pins its
// attempts and their jframes — instances, wire bytes, decoded frames — so
// one pointer here would make the analyzer's memory O(trace) instead of
// O(segment observations), which is exactly the unbounded buffering the
// out-of-core pipeline exists to avoid.
type SegObs struct {
	Seg    tcpsim.Segment
	TimeUS int64
	// MacSeq is the carrying exchange's 802.11 sequence number (duplicate
	// detection across monitor artifacts).
	MacSeq uint16
	// Delivery is the exchange's link-layer delivery verdict.
	Delivery llc.Delivery
	// ResolvedDelivered is set when a covering ACK proved delivery of an
	// exchange whose link-layer verdict was unknown.
	ResolvedDelivered bool
	// Retransmission marks a segment whose sequence range was already
	// observed with data from the same direction.
	Retransmission bool
	LossOf         LossKind // for retransmissions: what lost the original
}

// interval is a half-open byte range [lo, hi) of TCP sequence space.
type interval struct{ lo, hi uint32 }

// seqState is everything a direction tracks per TCP sequence number. One
// compact map entry replaces what used to be three parallel maps (count,
// MAC-seq set, first observation): at building scale the analyzer holds
// one of these per data segment for the whole run, so per-entry overhead
// is a first-order term in the streaming pipeline's working set.
type seqState struct {
	// macSeqs records the 802.11 sequence numbers already seen carrying
	// this TCP seq: a reappearance with the same MAC seq is a duplicate
	// observation of the same frame exchange (monitor artifacts), while a
	// new MAC seq is a genuine TCP retransmission. This cross-layer check
	// is exactly the kind the unified trace makes possible (§5.2).
	// Almost always 1-2 entries, so a tiny slice beats a map.
	macSeqs []uint16
	// firstIdx locates the seq's first observation in Flow.Observations
	// (valid whenever count > 0).
	firstIdx int32
	count    int32 // distinct transmissions (rtx detection)
}

// dirState tracks one direction (identified by source IP) of a flow.
type dirState struct {
	srcIP      uint32
	iss        uint32
	sawSyn     bool
	observed   []interval // merged data coverage observed on the air
	maxAckSeen uint32     // highest cumulative ACK sent BY this direction
	ackValid   bool
	// pendingUnknown indexes (into Flow.Observations) data observations
	// with unresolved delivery, awaiting covering-ACK resolution.
	pendingUnknown []int32
	seqs           map[uint32]seqState
	dataSegs       int
	rtxSegs        int
	omittedBytes   int64 // sequence holes covered by ACKs: monitor misses
}

// Flow is a reconstructed TCP connection.
type Flow struct {
	Key tcpsim.FlowKey
	// HandshakeComplete: SYN and SYN|ACK both observed (§7.4 keeps only
	// such flows, eliminating scans and connection failures).
	HandshakeComplete bool
	FirstUS, LastUS   int64
	// Observations are stored by value (not pointer): the analyzer keeps
	// one per TCP segment for the whole run, and at building scale the
	// per-observation allocation would dominate its footprint.
	Observations []SegObs

	// RTT samples (µs) from data→covering-ACK delays, per direction of the
	// data (keyed by source IP of the data sender).
	RTTSamplesUS map[uint32][]int64

	synSeen, synAckSeen bool
	dirs                map[uint32]*dirState
}

// dir returns (creating) the direction state for a source IP.
func (f *Flow) dir(ip uint32) *dirState {
	d := f.dirs[ip]
	if d == nil {
		d = &dirState{srcIP: ip, seqs: make(map[uint32]seqState)}
		f.dirs[ip] = d
	}
	return d
}

// Stats aggregates analyzer-level counters.
type Stats struct {
	Exchanges        int64
	TCPSegments      int64
	NonTCP           int64
	Flows            int64
	CompleteFlows    int64
	ResolvedByOracle int64 // unknown deliveries proven by covering ACKs
	MonitorOmissions int64 // segments inferred delivered but never captured
	Retransmissions  int64
	WirelessLosses   int64
	WiredLosses      int64
	UnknownLosses    int64
}

// Analyzer consumes frame exchanges and reconstructs flows.
type Analyzer struct {
	Stats Stats
	flows map[tcpsim.FlowKey]*Flow
}

// NewAnalyzer creates an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{flows: make(map[tcpsim.FlowKey]*Flow)}
}

// FlowShard returns the shard (0..shards-1) an exchange's flow belongs to.
// Both directions of a TCP connection hash to the same shard, so feeding
// each exchange to the analyzer owning its shard keeps every flow's state
// in exactly one analyzer. Exchanges without a decodable TCP segment only
// bump counters, which sum across shards, so they all land in shard 0.
func FlowShard(ex *llc.Exchange, shards int) int {
	if shards <= 1 {
		return 0
	}
	data := ex.Data()
	if data == nil {
		return 0
	}
	seg, err := tcpsim.DecodeSegment(data.Frame.Body)
	if err != nil {
		return 0
	}
	k := seg.Key()
	var key [12]byte
	binary.LittleEndian.PutUint32(key[0:4], k.IPLo)
	binary.LittleEndian.PutUint32(key[4:8], k.IPHi)
	binary.LittleEndian.PutUint16(key[8:10], k.PortLo)
	binary.LittleEndian.PutUint16(key[10:12], k.PortHi)
	// FNV-1a, hand-rolled like core's MAC hash: this runs once per exchange
	// and hash/fnv's interface-based hasher would allocate each call.
	h := uint64(1469598103934665603)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int(h % uint64(shards))
}

// Absorb merges another analyzer's flows and counters into a. The two flow
// key sets must be disjoint, which FlowShard-based routing guarantees;
// overlapping keys would clobber state rather than merge it.
func (a *Analyzer) Absorb(o *Analyzer) {
	for k, f := range o.flows {
		a.flows[k] = f
	}
	a.Stats.Exchanges += o.Stats.Exchanges
	a.Stats.TCPSegments += o.Stats.TCPSegments
	a.Stats.NonTCP += o.Stats.NonTCP
	a.Stats.Flows += o.Stats.Flows
	a.Stats.CompleteFlows += o.Stats.CompleteFlows
	a.Stats.ResolvedByOracle += o.Stats.ResolvedByOracle
	a.Stats.MonitorOmissions += o.Stats.MonitorOmissions
	a.Stats.Retransmissions += o.Stats.Retransmissions
	a.Stats.WirelessLosses += o.Stats.WirelessLosses
	a.Stats.WiredLosses += o.Stats.WiredLosses
	a.Stats.UnknownLosses += o.Stats.UnknownLosses
}

// flowKeyLess orders flow keys for deterministic report output.
func flowKeyLess(a, b tcpsim.FlowKey) bool {
	if a.IPLo != b.IPLo {
		return a.IPLo < b.IPLo
	}
	if a.IPHi != b.IPHi {
		return a.IPHi < b.IPHi
	}
	if a.PortLo != b.PortLo {
		return a.PortLo < b.PortLo
	}
	return a.PortHi < b.PortHi
}

// AddExchange feeds one frame exchange; non-TCP payloads are counted and
// skipped. Exchanges must arrive in (approximately) time order.
func (a *Analyzer) AddExchange(ex *llc.Exchange) {
	a.Stats.Exchanges++
	data := ex.Data()
	if data == nil || len(data.Frame.Body) == 0 {
		return
	}
	seg, err := tcpsim.DecodeSegment(data.Frame.Body)
	if err != nil {
		a.Stats.NonTCP++
		return
	}
	a.Stats.TCPSegments++

	key := seg.Key()
	f := a.flows[key]
	if f == nil {
		f = &Flow{
			Key: key, FirstUS: ex.StartUS,
			RTTSamplesUS: make(map[uint32][]int64),
			dirs:         make(map[uint32]*dirState),
		}
		a.flows[key] = f
		a.Stats.Flows++
	}
	f.LastUS = ex.EndUS

	idx := int32(len(f.Observations))
	f.Observations = append(f.Observations, SegObs{
		Seg: seg, MacSeq: ex.Seq, Delivery: ex.Delivery, TimeUS: ex.StartUS,
	})

	d := f.dir(seg.SrcIP)
	if seg.IsSYN() {
		d.sawSyn = true
		d.iss = seg.Seq
		if seg.IsACK() {
			f.synAckSeen = true
		} else {
			f.synSeen = true
		}
		if f.synSeen && f.synAckSeen && !f.HandshakeComplete {
			f.HandshakeComplete = true
			a.Stats.CompleteFlows++
		}
	}

	if seg.PayloadLen > 0 {
		a.observeData(f, d, idx)
	}
	if seg.IsACK() && !seg.IsSYN() {
		a.observeAck(f, d, idx)
	}
}

// observeData records data coverage, detects retransmissions and tracks
// unresolved deliveries. idx locates the observation in f.Observations.
func (a *Analyzer) observeData(f *Flow, d *dirState, idx int32) {
	obs := &f.Observations[idx]
	seg := &obs.Seg
	st := d.seqs[seg.Seq]
	for _, ms := range st.macSeqs {
		if ms == obs.MacSeq {
			// Duplicate observation of a transmission already accounted
			// for (the same MAC frame surfacing twice in the merged
			// trace); it is not a TCP event.
			return
		}
	}
	st.macSeqs = append(st.macSeqs, obs.MacSeq)
	d.dataSegs++
	if st.count > 0 {
		obs.Retransmission = true
		d.rtxSegs++
		a.Stats.Retransmissions++
		obs.LossOf = a.classifyLoss(f, st.firstIdx)
		switch obs.LossOf {
		case LossWireless:
			a.Stats.WirelessLosses++
		case LossWired:
			a.Stats.WiredLosses++
		default:
			a.Stats.UnknownLosses++
		}
	} else {
		st.firstIdx = idx
	}
	st.count++
	d.seqs[seg.Seq] = st
	d.observed = addInterval(d.observed, seg.Seq, seg.Seq+uint32(seg.PayloadLen))

	// Track exchanges whose delivery is unknown for oracle resolution.
	switch obs.Delivery {
	case llc.DeliveryUnknown, llc.DeliveryFailed:
		d.pendingUnknown = append(d.pendingUnknown, idx)
	}
}

// classifyLoss decides what lost the previous transmission, given the
// index of the sequence's first observation.
func (a *Analyzer) classifyLoss(f *Flow, firstIdx int32) LossKind {
	prev := &f.Observations[firstIdx]
	switch prev.Delivery {
	case llc.DeliveryObserved, llc.DeliveryInferred:
		return LossWired
	case llc.DeliveryFailed:
		return LossWireless
	case llc.DeliveryUnknown:
		if prev.ResolvedDelivered {
			return LossWired
		}
		return LossWireless
	}
	return LossUnknown
}

// observeAck applies the TCP oracle: a cumulative ACK from direction d
// covers sequence space of the opposite direction. idx locates the ACK's
// observation in f.Observations.
func (a *Analyzer) observeAck(f *Flow, d *dirState, idx int32) {
	seg := f.Observations[idx].Seg
	ackTimeUS := f.Observations[idx].TimeUS
	ackVal := seg.Ack
	if d.ackValid && !seqLess(d.maxAckSeen, ackVal) {
		return // not a new high-water mark
	}
	d.maxAckSeen = ackVal
	d.ackValid = true

	// Opposite direction: the data being covered.
	od := f.dir(seg.DstIP)

	// 1. Resolve unknown deliveries (§5.2: "observing a covering TCP ACK
	// proves that the link-layer frame containing the associated data was
	// actually delivered").
	keep := od.pendingUnknown[:0]
	for _, pi := range od.pendingUnknown {
		p := &f.Observations[pi]
		if seqLEQ(p.Seg.SeqEnd(), ackVal) {
			p.ResolvedDelivered = true
			a.Stats.ResolvedByOracle++
			// RTT sample from first transmission to covering ACK.
			if !p.Retransmission {
				f.RTTSamplesUS[p.Seg.SrcIP] = append(f.RTTSamplesUS[p.Seg.SrcIP], ackTimeUS-p.TimeUS)
			}
		} else {
			keep = append(keep, pi)
		}
	}
	od.pendingUnknown = keep

	// 2. Monitor omissions: ACK-covered bytes never observed as data.
	if od.sawSyn {
		covered := coveredBytes(od.observed, od.iss+1, ackVal)
		want := int64(ackVal - (od.iss + 1))
		if want > 0 && covered < want {
			missing := want - covered - od.omittedBytes
			if missing > 0 {
				od.omittedBytes += missing
				a.Stats.MonitorOmissions += (missing + tcpsim.MSS - 1) / tcpsim.MSS
			}
		}
	}
}

// addInterval merges [lo,hi) into a sorted interval set.
func addInterval(set []interval, lo, hi uint32) []interval {
	if lo == hi {
		return set
	}
	set = append(set, interval{lo, hi})
	sort.Slice(set, func(i, j int) bool { return seqLess(set[i].lo, set[j].lo) })
	out := set[:1]
	for _, iv := range set[1:] {
		lastIdx := len(out) - 1
		if seqLEQ(iv.lo, out[lastIdx].hi) {
			if seqLess(out[lastIdx].hi, iv.hi) {
				out[lastIdx].hi = iv.hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// coveredBytes counts observed bytes within [lo, hi).
func coveredBytes(set []interval, lo, hi uint32) int64 {
	var total int64
	for _, iv := range set {
		s, e := iv.lo, iv.hi
		if seqLess(s, lo) {
			s = lo
		}
		if seqLess(hi, e) {
			e = hi
		}
		if seqLess(s, e) {
			total += int64(e - s)
		}
	}
	return total
}

// seq comparison with wraparound (mirrors tcpsim's unexported helpers).
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool  { return int32(a-b) <= 0 }

// Flows returns reconstructed flows sorted by first observation time.
func (a *Analyzer) Flows() []*Flow {
	out := make([]*Flow, 0, len(a.flows))
	for _, f := range a.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FirstUS != out[j].FirstUS {
			return out[i].FirstUS < out[j].FirstUS
		}
		return flowKeyLess(out[i].Key, out[j].Key)
	})
	return out
}

// FlowLossRate summarizes one flow's TCP loss rate and its split, over
// handshake-complete flows (Fig. 11's metric).
type FlowLossRate struct {
	Key           tcpsim.FlowKey
	DataSegs      int
	Losses        int
	WirelessLoss  int
	WiredLoss     int
	LossRate      float64
	WirelessShare float64
}

// LossRates computes per-flow loss rates over handshake-complete flows with
// at least minSegs data segments.
func (a *Analyzer) LossRates(minSegs int) []FlowLossRate {
	var out []FlowLossRate
	for _, f := range a.flows {
		if !f.HandshakeComplete {
			continue
		}
		var r FlowLossRate
		r.Key = f.Key
		for _, o := range f.Observations {
			if o.Seg.PayloadLen == 0 {
				continue
			}
			r.DataSegs++
			if o.Retransmission {
				r.Losses++
				switch o.LossOf {
				case LossWireless:
					r.WirelessLoss++
				case LossWired:
					r.WiredLoss++
				}
			}
		}
		if r.DataSegs < minSegs {
			continue
		}
		r.LossRate = float64(r.Losses) / float64(r.DataSegs)
		if r.Losses > 0 {
			r.WirelessShare = float64(r.WirelessLoss) / float64(r.Losses)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LossRate != out[j].LossRate {
			return out[i].LossRate < out[j].LossRate
		}
		return flowKeyLess(out[i].Key, out[j].Key)
	})
	return out
}

// RTTReport summarizes the round-trip-time estimates the Jaiswal-style
// analysis extracts from data→covering-ACK delays, per flow direction.
type RTTReport struct {
	Samples  int
	MinUS    int64
	MedianUS int64
	P90US    int64
	MaxUS    int64
}

// RTTSummary aggregates RTT samples across all reconstructed flows for the
// direction whose data originates at srcIP selector (nil = all directions).
func (a *Analyzer) RTTSummary(include func(srcIP uint32) bool) RTTReport {
	var all []int64
	for _, f := range a.flows {
		for ip, ss := range f.RTTSamplesUS {
			if include != nil && !include(ip) {
				continue
			}
			all = append(all, ss...)
		}
	}
	var rep RTTReport
	rep.Samples = len(all)
	if len(all) == 0 {
		return rep
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.MinUS = all[0]
	rep.MedianUS = all[len(all)/2]
	rep.P90US = all[int(float64(len(all))*0.9)]
	rep.MaxUS = all[len(all)-1]
	return rep
}
