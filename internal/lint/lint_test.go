package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestMapIterOrder(t *testing.T) {
	linttest.Run(t, "mapiterorder", lint.MapIterOrder)
}

func TestFloatAccum(t *testing.T) {
	linttest.Run(t, "floataccum", lint.FloatAccum)
}

func TestWallClock(t *testing.T) {
	linttest.Run(t, "wallclock", lint.WallClock)
}

// TestRetainFrame loads the fixture as if it lived in
// internal/transport, where the analyzer applies; it includes the PR 4
// SegObs reproduction as a true positive and the bounded-deferral
// allowlist shape as a negative.
func TestRetainFrame(t *testing.T) {
	linttest.RunWithConfig(t, "retainframe", lint.RetainFrame, linttest.Config{
		PkgPath: "repro/internal/transport/fixture",
	})
}

// TestRetainFrameOutOfScope checks the analyzer stays quiet outside
// internal/analysis and internal/transport: the fixture declares a
// would-be finding but is loaded under a neutral import path.
func TestRetainFrameOutOfScope(t *testing.T) {
	linttest.Run(t, "retainframe_scope", lint.RetainFrame)
}

func TestErrLoss(t *testing.T) {
	linttest.Run(t, "errloss", lint.ErrLoss)
}

// TestAllRegistered pins the suite composition: a checker dropped from
// All() silently stops gating CI.
func TestAllRegistered(t *testing.T) {
	want := []string{"mapiterorder", "floataccum", "wallclock", "retainframe", "errloss"}
	got := lint.All()
	if len(got) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s has no Doc", a.Name)
		}
	}
}
