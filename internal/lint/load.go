package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over the patterns and
// decodes the package stream. -export materializes each dependency's
// export data in the build cache so type checking needs no network and
// no source for dependencies.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %w", patterns, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files reported by
// `go list -export`, through the standard gc importer. One instance is
// shared across a whole load so every package sees identical dependency
// *types.Package objects.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("jiglint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Load loads and type-checks the non-test source of every in-module
// package matched by patterns (e.g. "./..."), resolving in `go list`
// semantics relative to dir. Dependencies — including other in-module
// packages — are imported from compiler export data, so each returned
// Package carries full type information.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	// `go list -deps` appends dependencies before dependents; analyzing
	// in that order keeps output stable. Only in-module packages are
	// analyzed — the standard library and (hypothetical) external
	// modules are context, not targets.
	roots, err := rootSet(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.Standard || p.Module == nil || !roots[p.ImportPath] {
			continue
		}
		pkg, err := typeCheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// rootSet resolves which import paths the patterns name directly (as
// opposed to dependencies pulled in by -deps).
func rootSet(dir string, patterns []string) (map[string]bool, error) {
	args := append([]string{"list", "-json=ImportPath,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}
	roots := map[string]bool{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		roots[p.ImportPath] = true
	}
	return roots, nil
}

// LoadFiles parses and type-checks one package built from explicit
// files (the linttest fixture path). Imports are resolved by listing
// them — plus their dependencies — with `go list -export` from moduleDir,
// so fixtures may import both the standard library and in-module
// packages like repro/internal/llc.
func LoadFiles(moduleDir, pkgPath string, filenames []string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, im := range f.Imports {
			path := im.Path.Value
			importSet[path[1:len(path)-1]] = true
		}
	}
	imports := make([]string, 0, len(importSet))
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	exports := map[string]string{}
	if len(imports) > 0 {
		listed, err := goList(moduleDir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, exports)
	dir := ""
	if len(filenames) > 0 {
		dir = filepath.Dir(filenames[0])
	}
	return typeCheckFiles(fset, imp, pkgPath, dir, files)
}

// typeCheck parses the named files from dir and type-checks them.
func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typeCheckFiles(fset, imp, path, dir, files)
}

func typeCheckFiles(fset *token.FileSet, imp types.Importer, path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("jiglint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
