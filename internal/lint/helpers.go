package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// isTestFile reports whether the file position is in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloatType reports whether t's basic kind is a floating-point or
// complex type.
func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// rootIdent strips selectors, indexing, derefs and parens down to the
// base identifier: `s.rows[i]` → `s`, `(*p).q` → `p`. Returns nil when
// the base is not a plain identifier (e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isBuiltin reports whether the identifier resolves to a builtin (or to
// nothing at all), rather than to a user declaration shadowing it.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	obj := objectOf(info, id)
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// objectOf resolves an identifier through Uses then Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// declaredOutside reports whether the identifier's object is declared
// outside the [lo, hi] node span (i.e. it outlives the loop or closure
// being inspected). Objects with no position (builtins) count as
// outside.
func declaredOutside(info *types.Info, id *ast.Ident, lo, hi token.Pos) bool {
	obj := objectOf(info, id)
	if obj == nil {
		return false
	}
	p := obj.Pos()
	if !p.IsValid() {
		return true
	}
	return p < lo || p > hi
}

// calleeFunc resolves a call's target to the *types.Func it invokes
// (package function or method), or nil for closures, conversions and
// builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := objectOf(info, id).(*types.Func)
	return f
}

// isPkgFunc reports whether the call invokes the named package-level
// function, e.g. isPkgFunc(info, call, "time", "Now"). Methods never
// match: a *types.Func with a receiver is excluded, so rand.Intn the
// global matches while r.Intn on a seeded *rand.Rand does not.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// namedTypePath returns the "pkgpath.Name" of t if it is (a pointer to)
// a named type, else "".
func namedTypePath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}
