package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// TestRepoClean runs the full jiglint suite over the whole module and
// requires zero findings — the same gate CI applies via
// `go run ./cmd/jiglint ./...`, enforced here so a plain `go test ./...`
// catches regressions too. If this fails, either fix the finding or
// (for a deliberate exception) add a justified //jiglint:allow
// directive at the site.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repo lint in -short mode")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	findings, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
