// Package linttest runs jiglint analyzers over fixture packages and
// checks their diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives in testdata/src/<name>/ as ordinary Go files. Every
// line that should be reported carries a trailing comment
//
//	code() // want `regexp matching the message`
//
// (backquoted Go string, matched with regexp.MatchString against
// "analyzer: message"). Lines with no want comment must produce no
// diagnostic, so allowlisted negatives are expressed by a
// //jiglint:allow directive and the absence of a want.
package linttest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe extracts the backquoted pattern of a want comment.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// expectation is one `// want` annotation.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Config adjusts how a fixture is loaded.
type Config struct {
	// PkgPath overrides the import path the fixture package is
	// type-checked as. Scoped analyzers (retainframe) only fire when
	// the path matches their scope, so fixtures impersonate e.g.
	// "repro/internal/analysis/fixture". Defaults to the fixture
	// directory name.
	PkgPath string
}

// Run loads testdata/src/<fixture> relative to the caller's package
// directory, runs the analyzer, and reports mismatches between its
// diagnostics and the fixture's want annotations.
func Run(t *testing.T, fixture string, a *lint.Analyzer) {
	t.Helper()
	RunWithConfig(t, fixture, a, Config{})
}

// RunWithConfig is Run with loading options.
func RunWithConfig(t *testing.T, fixture string, a *lint.Analyzer, cfg Config) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", fixture)
	}
	sort.Strings(files)

	pkgPath := cfg.PkgPath
	if pkgPath == "" {
		pkgPath = fixture
	}
	moduleDir, err := moduleRoot()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkg, err := lint.LoadFiles(moduleDir, pkgPath, files)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}

	wants, err := parseWants(files)
	if err != nil {
		t.Fatalf("parsing want comments: %v", err)
	}
	findings, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, f := range findings {
		msg := fmt.Sprintf("%s: %s", f.Analyzer, f.Message)
		if w := matchWant(wants, f.Pos.Filename, f.Pos.Line, msg); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", f.Pos, msg)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// matchWant finds an unmatched expectation for the diagnostic.
func matchWant(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			return w
		}
	}
	return nil
}

// parseWants scans the fixture files' comments for want annotations.
func parseWants(files []string) ([]*expectation, error) {
	var wants []*expectation
	fset := token.NewFileSet()
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s: bad want pattern %q: %w", name, m[1], err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &expectation{file: name, line: pos.Line, pattern: re})
			}
		}
	}
	return wants, nil
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so fixtures can import in-module packages regardless of which
// package's tests invoked the harness.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
