package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapIterOrder flags `for range` loops over maps whose bodies feed an
// order-sensitive sink: appending to a slice that outlives the loop
// (including map-of-slice appends, the PR 1 timesync BFS adjacency
// bug), writing formatted output or report rows, or sending on a
// channel. Go randomizes map iteration order per process, so any such
// loop makes output differ run to run — the exact class behind the
// serial-vs-parallel and golden-digest regressions fixed by hand in
// PR 1 and PR 5.
//
// The sorted-keys idiom is recognized and accepted: a loop whose only
// sinks are appends into slices that a later statement in the same
// block passes to sort.* / slices.Sort* is the standard
// collect-then-sort pattern and is not reported. Calls to closures
// defined in the enclosing function are inspected one level deep, so
// hiding the append behind a local helper (as the original BFS bug
// did with addEdge) is still caught.
var MapIterOrder = &Analyzer{
	Name: "mapiterorder",
	Doc: "map-range loops feeding slices, output or channels without a sort\n\n" +
		"Reports `for range m` over a map whose body appends to something that\n" +
		"outlives the loop, prints/writes output, or sends on a channel, unless\n" +
		"every appended slice is sorted later in the same block (the sorted-keys\n" +
		"idiom). Fix by iterating sorted keys or sorting the result.",
	Run: runMapIterOrder,
}

// sinkKind classifies what an order-sensitive statement does.
type sinkKind int

const (
	sinkAppend sinkKind = iota
	sinkOutput
	sinkSend
)

type sink struct {
	kind sinkKind
	pos  token.Pos
	// target is the object appended to, for sinkAppend; nil otherwise.
	target types.Object
	desc   string
}

func runMapIterOrder(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		closures := closureMap(pass.TypesInfo, file)
		parents := buildParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if ok && isMapType(pass.TypesInfo.Types[rng.X].Type) {
				checkMapRange(pass, rng, parents, closures)
			}
			return true
		})
	}
	return nil
}

// buildParents records each node's syntactic parent.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// closureMap indexes function-literal values bound to local variables
// (`f := func(...){...}`, `var f = func...`) so calls through those
// variables can be inspected one level deep.
func closureMap(info *types.Info, f *ast.File) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, rhs := range x.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok {
					continue
				}
				if id, ok := x.Lhs[i].(*ast.Ident); ok {
					if obj := objectOf(info, id); obj != nil {
						out[obj] = lit
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range x.Values {
				lit, ok := v.(*ast.FuncLit)
				if !ok || i >= len(x.Names) {
					continue
				}
				if obj := objectOf(info, x.Names[i]); obj != nil {
					out[obj] = lit
				}
			}
		}
		return true
	})
	return out
}

// checkMapRange inspects one map-range loop and reports it if it feeds
// an order-sensitive sink without the sorted-keys escape.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, parents map[ast.Node]ast.Node, closures map[types.Object]*ast.FuncLit) {
	sinks := collectSinks(pass.TypesInfo, rng.Body, rng.Pos(), rng.End(), closures, 1)
	if len(sinks) == 0 {
		return
	}
	// Sorted-keys escape: every sink is an append whose target is sorted
	// by a statement after the loop in the enclosing block(s), up to the
	// function boundary — the collect-then-sort idiom, possibly with the
	// sort outside an enclosing loop or conditional.
	allSorted := true
	for _, s := range sinks {
		if s.kind != sinkAppend || s.target == nil || !sortedInContinuation(pass.TypesInfo, parents, rng, s.target) {
			allSorted = false
			break
		}
	}
	if allSorted {
		return
	}
	s := sinks[0]
	pass.Report(Diagnostic{
		Pos: rng.Pos(),
		Message: fmt.Sprintf(
			"map iteration order is nondeterministic but this loop %s; iterate sorted keys or sort the result",
			s.desc),
	})
}

// collectSinks walks body for order-sensitive statements. lo/hi bound
// the loop (or closure) span: only effects on objects declared outside
// it are sinks. depth limits closure expansion.
func collectSinks(info *types.Info, body ast.Node, lo, hi token.Pos, closures map[types.Object]*ast.FuncLit, depth int) []sink {
	var sinks []sink
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			sinks = append(sinks, sink{kind: sinkSend, pos: x.Pos(), desc: "sends on a channel"})
		case *ast.CallExpr:
			if s, ok := classifyCallSink(info, x, lo, hi, closures, depth); ok {
				sinks = append(sinks, s)
			}
		}
		return true
	})
	return sinks
}

// classifyCallSink decides whether one call is an order-sensitive sink.
func classifyCallSink(info *types.Info, call *ast.CallExpr, lo, hi token.Pos, closures map[types.Object]*ast.FuncLit, depth int) (sink, bool) {
	// append(target, ...) where target outlives the loop. Covers plain
	// slices, struct fields and map-of-slice elements alike.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(info, id) {
		if len(call.Args) == 0 {
			return sink{}, false
		}
		target := rootIdent(call.Args[0])
		if target == nil || !declaredOutside(info, target, lo, hi) {
			return sink{}, false
		}
		return sink{
			kind:   sinkAppend,
			pos:    call.Pos(),
			target: objectOf(info, target),
			desc:   fmt.Sprintf("appends to %q, which outlives it", target.Name),
		}, true
	}
	// fmt printing (except the pure Sprint family) and writer methods.
	if isPkgFunc(info, call, "fmt", "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln") {
		return sink{kind: sinkOutput, pos: call.Pos(), desc: "writes formatted output"}, true
	}
	if f := calleeFunc(info, call); f != nil {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			switch f.Name() {
			case "Write", "WriteString", "WriteByte", "WriteRune", "Printf", "Print", "Println", "Encode":
				return sink{kind: sinkOutput, pos: call.Pos(), desc: fmt.Sprintf("writes output via %s", f.Name())}, true
			}
		}
	}
	// A call through a local closure variable: look one level inside.
	if depth > 0 {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := objectOf(info, id); obj != nil {
				if lit := closures[obj]; lit != nil {
					inner := collectSinks(info, lit.Body, lit.Pos(), lit.End(), closures, depth-1)
					if len(inner) > 0 {
						s := inner[0]
						return sink{
							kind:   s.kind,
							pos:    call.Pos(),
							target: s.target,
							desc:   fmt.Sprintf("calls %q, which %s", id.Name, s.desc),
						}, true
					}
				}
			}
		}
	}
	return sink{}, false
}

// sortedInContinuation reports whether any statement that executes
// after the loop — following it in its own block or in any enclosing
// block up to the function boundary — sorts the appended-to object.
func sortedInContinuation(info *types.Info, parents map[ast.Node]ast.Node, rng *ast.RangeStmt, target types.Object) bool {
	var node ast.Node = rng
	for {
		parent := parents[node]
		if parent == nil {
			return false
		}
		var list []ast.Stmt
		switch p := parent.(type) {
		case *ast.BlockStmt:
			list = p.List
		case *ast.CaseClause:
			list = p.Body
		case *ast.CommClause:
			list = p.Body
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
		for i, stmt := range list {
			if ast.Node(stmt) == node && sortedLater(info, list[i+1:], target) {
				return true
			}
		}
		node = parent
	}
}

// sortedLater reports whether one of the statements sorts the
// appended-to object: the collect-keys-then-sort idiom.
func sortedLater(info *types.Info, follow []ast.Stmt, target types.Object) bool {
	for _, stmt := range follow {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !isSortCall(info, call) || len(call.Args) == 0 {
				return true
			}
			if id := rootIdent(call.Args[0]); id != nil && objectOf(info, id) == target {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isSortCall matches the standard sorting entry points.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	return isPkgFunc(info, call, "sort",
		"Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s") ||
		isPkgFunc(info, call, "slices",
			"Sort", "SortFunc", "SortStableFunc")
}
