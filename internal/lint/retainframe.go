package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// retainedTypes are the streaming payload types whose retention defeats
// the out-of-core pipeline: a held *llc.Exchange pins every attempt's
// jframes and wire bytes; a held *unify.JFrame pins its wire bytes.
// PR 4's SegObs bug retained exchanges per observed TCP segment, making
// analyzer memory O(trace) and erasing the streaming pipeline's whole
// point. Values count the same as pointers — a copied JFrame still
// pins its backing arrays.
var retainedTypes = map[string]bool{
	"repro/internal/unify.JFrame": true,
	"repro/internal/llc.Exchange": true,
}

// RetainFrame flags declarations in the streaming packages
// (internal/analysis, internal/transport, internal/serve) that can
// retain unify.JFrame or llc.Exchange past the Observe call that
// delivered it: struct fields, package-level variables, and named types
// whose underlying type contains either payload type. Pass methods
// receive these pointers transiently — copy the scalar fields you need
// (as transport.SegObs does post-PR 4) instead of storing the pointer.
//
// Bounded holds that participate in the reference-counted ownership
// contract are sanctioned automatically: a named struct whose methods
// call both Retain and Release on the payload type it stores (the
// exchangeDeferral sliding window, the viz pass's clamped window, the
// monitor's pending buffer) is holding a counted reference, not leaking
// a borrow. A holder that only Retains — or whose Retain/Release touch
// a different payload type than the one stored — is still flagged.
// Residual special cases can carry //jiglint:allow retainframe with a
// justification.
var RetainFrame = &Analyzer{
	Name: "retainframe",
	Doc: "state that retains *unify.JFrame or *llc.Exchange\n\n" +
		"Reports struct fields, package vars and type definitions in\n" +
		"internal/analysis, internal/transport and internal/serve whose type\n" +
		"contains unify.JFrame or llc.Exchange (by pointer or value, including\n" +
		"slice, array, map and channel element positions). Copy the fields you\n" +
		"need in Observe, or hold a counted reference: a struct whose methods\n" +
		"Retain the payload on store and Release it on drop is sanctioned.",
	Scope: []string{"internal/analysis", "internal/transport", "internal/serve"},
	Run:   runRetainFrame,
}

// refContract records which halves of the ownership contract a holder
// type's methods exercise for one payload type.
type refContract struct {
	retain, release bool
}

func runRetainFrame(pass *Pass) error {
	info := pass.TypesInfo
	contracts := ownershipContracts(pass)
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		// Map each named struct's syntax node to its declared name, so a
		// retaining field can be excused by its holder's contract.
		holderOf := map[*ast.StructType]string{}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if sp, ok := spec.(*ast.TypeSpec); ok {
					if st, ok := sp.Type.(*ast.StructType); ok {
						holderOf[st] = sp.Name.Name
					}
				}
			}
		}
		// Struct fields, wherever the struct type appears.
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			holder := holderOf[st]
			for _, field := range st.Fields.List {
				t := info.Types[field.Type].Type
				name := retainedIn(t)
				if name == "" {
					continue
				}
				if c := contracts[holder][name]; c.retain && c.release {
					// The holder takes a reference on store and drops it
					// on removal — a counted hold, not a leaked borrow.
					continue
				}
				pass.Report(Diagnostic{
					Pos: field.Pos(),
					Message: fmt.Sprintf(
						"struct field retains %s beyond the Observe call; copy the needed fields, or hold a counted reference (Retain on store, Release on drop)", name),
				})
			}
			return true
		})
		// Package-level vars and non-struct named types.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch sp := spec.(type) {
				case *ast.ValueSpec:
					for _, id := range sp.Names {
						obj := info.Defs[id]
						if obj == nil {
							continue
						}
						if name := retainedIn(obj.Type()); name != "" {
							pass.Report(Diagnostic{
								Pos: id.Pos(),
								Message: fmt.Sprintf(
									"package variable %q retains %s for the process lifetime", id.Name, name),
							})
						}
					}
				case *ast.TypeSpec:
					// Struct underlyings are covered field-by-field above.
					if _, isStruct := sp.Type.(*ast.StructType); isStruct {
						continue
					}
					t := info.Types[sp.Type].Type
					if name := retainedIn(t); name != "" {
						pass.Report(Diagnostic{
							Pos: sp.Pos(),
							Message: fmt.Sprintf(
								"type %q retains %s; copy the needed fields instead", sp.Name.Name, name),
						})
					}
				}
			}
		}
	}
	return nil
}

// ownershipContracts scans every method in the package and records, per
// receiver type name and per payload type, whether the method set calls
// Retain and Release on that payload. A struct whose methods exercise
// both halves for the payload it stores holds counted references.
func ownershipContracts(pass *Pass) map[string]map[string]refContract {
	info := pass.TypesInfo
	contracts := map[string]map[string]refContract{}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			recv := receiverTypeName(fd.Recv.List[0].Type)
			if recv == "" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Retain" && sel.Sel.Name != "Release") {
					return true
				}
				tv, ok := info.Types[sel.X]
				if !ok {
					return true
				}
				name := namedTypePath(tv.Type)
				if !retainedTypes[name] {
					return true
				}
				m := contracts[recv]
				if m == nil {
					m = map[string]refContract{}
					contracts[recv] = m
				}
				c := m[name]
				if sel.Sel.Name == "Retain" {
					c.retain = true
				} else {
					c.release = true
				}
				m[name] = c
				return true
			})
		}
	}
	return contracts
}

// receiverTypeName extracts the named type a method is declared on,
// stripping pointers and generic instantiations.
func receiverTypeName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// retainedIn walks t's structure and returns the qualified name of the
// first retained payload type it contains, or "". Function and
// interface types do not retain (values merely pass through them), and
// named types from other packages are not expanded — a type that wraps
// an Exchange is flagged where it is declared.
func retainedIn(t types.Type) string {
	return retainedInSeen(t, map[types.Type]bool{})
}

func retainedInSeen(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if name := namedTypePath(t); retainedTypes[name] {
		return name
	}
	switch x := t.(type) {
	case *types.Pointer:
		return retainedInSeen(x.Elem(), seen)
	case *types.Slice:
		return retainedInSeen(x.Elem(), seen)
	case *types.Array:
		return retainedInSeen(x.Elem(), seen)
	case *types.Map:
		if n := retainedInSeen(x.Key(), seen); n != "" {
			return n
		}
		return retainedInSeen(x.Elem(), seen)
	case *types.Chan:
		return retainedInSeen(x.Elem(), seen)
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			if n := retainedInSeen(x.Field(i).Type(), seen); n != "" {
				return n
			}
		}
	case *types.Named:
		// Only expand named types declared in the package under
		// analysis context implicitly: expanding everything would blame
		// the use site for a definition flagged elsewhere. Local named
		// types are reached through their TypeSpec directly.
		return ""
	}
	return ""
}
