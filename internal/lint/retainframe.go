package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// retainedTypes are the streaming payload types whose retention defeats
// the out-of-core pipeline: a held *llc.Exchange pins every attempt's
// jframes and wire bytes; a held *unify.JFrame pins its wire bytes.
// PR 4's SegObs bug retained exchanges per observed TCP segment, making
// analyzer memory O(trace) and erasing the streaming pipeline's whole
// point. Values count the same as pointers — a copied JFrame still
// pins its backing arrays.
var retainedTypes = map[string]bool{
	"repro/internal/unify.JFrame": true,
	"repro/internal/llc.Exchange": true,
}

// RetainFrame flags declarations in the streaming-analysis packages
// (internal/analysis, internal/transport) that can retain unify.JFrame
// or llc.Exchange past the Observe call that delivered it: struct
// fields, package-level variables, and named types whose underlying
// type contains either payload type. Pass methods receive these
// pointers transiently — copy the scalar fields you need (as
// transport.SegObs does post-PR 4) instead of storing the pointer.
//
// Deliberately bounded holds — the exchangeDeferral sliding window and
// the viz pass's clamped window from PR 5 — are the sanctioned
// exceptions; they carry //jiglint:allow retainframe with a
// justification.
var RetainFrame = &Analyzer{
	Name: "retainframe",
	Doc: "state that retains *unify.JFrame or *llc.Exchange\n\n" +
		"Reports struct fields, package vars and type definitions in\n" +
		"internal/analysis and internal/transport whose type contains\n" +
		"unify.JFrame or llc.Exchange (by pointer or value, including slice,\n" +
		"array, map and channel element positions). Copy the fields you need\n" +
		"in Observe instead of retaining the frame.",
	Scope: []string{"internal/analysis", "internal/transport"},
	Run:   runRetainFrame,
}

func runRetainFrame(pass *Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		// Struct fields, wherever the struct type appears.
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				t := info.Types[field.Type].Type
				if name := retainedIn(t); name != "" {
					pass.Report(Diagnostic{
						Pos: field.Pos(),
						Message: fmt.Sprintf(
							"struct field retains %s beyond the Observe call; copy the needed fields instead", name),
					})
				}
			}
			return true
		})
		// Package-level vars and non-struct named types.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch sp := spec.(type) {
				case *ast.ValueSpec:
					for _, id := range sp.Names {
						obj := info.Defs[id]
						if obj == nil {
							continue
						}
						if name := retainedIn(obj.Type()); name != "" {
							pass.Report(Diagnostic{
								Pos: id.Pos(),
								Message: fmt.Sprintf(
									"package variable %q retains %s for the process lifetime", id.Name, name),
							})
						}
					}
				case *ast.TypeSpec:
					// Struct underlyings are covered field-by-field above.
					if _, isStruct := sp.Type.(*ast.StructType); isStruct {
						continue
					}
					t := info.Types[sp.Type].Type
					if name := retainedIn(t); name != "" {
						pass.Report(Diagnostic{
							Pos: sp.Pos(),
							Message: fmt.Sprintf(
								"type %q retains %s; copy the needed fields instead", sp.Name.Name, name),
						})
					}
				}
			}
		}
	}
	return nil
}

// retainedIn walks t's structure and returns the qualified name of the
// first retained payload type it contains, or "". Function and
// interface types do not retain (values merely pass through them), and
// named types from other packages are not expanded — a type that wraps
// an Exchange is flagged where it is declared.
func retainedIn(t types.Type) string {
	return retainedInSeen(t, map[types.Type]bool{})
}

func retainedInSeen(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if name := namedTypePath(t); retainedTypes[name] {
		return name
	}
	switch x := t.(type) {
	case *types.Pointer:
		return retainedInSeen(x.Elem(), seen)
	case *types.Slice:
		return retainedInSeen(x.Elem(), seen)
	case *types.Array:
		return retainedInSeen(x.Elem(), seen)
	case *types.Map:
		if n := retainedInSeen(x.Key(), seen); n != "" {
			return n
		}
		return retainedInSeen(x.Elem(), seen)
	case *types.Chan:
		return retainedInSeen(x.Elem(), seen)
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			if n := retainedInSeen(x.Field(i).Type(), seen); n != "" {
				return n
			}
		}
	case *types.Named:
		// Only expand named types declared in the package under
		// analysis context implicitly: expanding everything would blame
		// the use site for a definition flagged elsewhere. Local named
		// types are reached through their TypeSpec directly.
		return ""
	}
	return ""
}
