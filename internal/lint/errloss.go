package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrLoss flags statements that silently discard the error returned by
// Close, Flush, Sync, Write or WriteString — the PR 4 CLI class, where
// cmd mains swallowed spill/index/meta I/O errors and a full disk
// produced a truncated trace with a zero exit code. The repo's rule
// since PR 4: I/O errors reach stderr and a nonzero exit.
//
// Only bare expression statements are reported. An explicit
// `_ = f.Close()` is a visible, reviewable decision; `defer f.Close()`
// on read paths is idiomatic (write paths should close explicitly and
// check); tests are exempt. Types whose error contract makes the
// discard safe are exempt: bytes.Buffer and strings.Builder never
// fail, hash.Hash documents that Write never returns an error, and
// bufio.Writer latches write errors and resurfaces them from Flush
// (so its writes are exempt but its Flush is still checked).
var ErrLoss = &Analyzer{
	Name: "errloss",
	Doc: "discarded errors from Close/Flush/Write/Sync\n\n" +
		"Reports `x.Close()`, `x.Flush()`, `x.Sync()`, `x.Write(...)` and\n" +
		"`x.WriteString(...)` as bare statements when the method returns an\n" +
		"error, outside tests. Check the error; on cleanup paths prefer an\n" +
		"explicit `_ =` if the error is truly meaningless.",
	Run: runErrLoss,
}

// errLossMethods are the flagged method names.
var errLossMethods = map[string]bool{
	"Close":       true,
	"Flush":       true,
	"Sync":        true,
	"Write":       true,
	"WriteString": true,
}

// errlessMethods exempts (receiver type, method) pairs whose error
// contract makes the discard safe: bytes.Buffer and strings.Builder
// never fail, and bufio.Writer latches write errors and resurfaces
// them from Flush — so its writes are exempt but its Flush is not.
var errlessMethods = map[string]map[string]bool{
	"bytes.Buffer":    nil, // nil = every flagged method exempt
	"strings.Builder": nil,
	"bufio.Writer": {
		"Write":       true,
		"WriteString": true,
	},
}

// exemptByContract reports whether the receiver type's error contract
// exempts the method. hash.Hash implementations (detected by shape:
// Sum and BlockSize methods alongside Write) document that Write never
// returns an error.
func exemptByContract(recv types.Type, method string) bool {
	if methods, ok := errlessMethods[namedTypePath(recv)]; ok {
		return methods == nil || methods[method]
	}
	if method == "Write" && hasMethods(recv, "Sum", "BlockSize") {
		return true
	}
	return false
}

// hasMethods reports whether t's method set (widened to *t for value
// types) contains every named method.
func hasMethods(t types.Type, names ...string) bool {
	if _, isPtr := t.(*types.Pointer); !isPtr && !types.IsInterface(t) {
		t = types.NewPointer(t)
	}
	ms := types.NewMethodSet(t)
	for _, n := range names {
		found := false
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func runErrLoss(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Selections records genuine method calls (and their true
			// receiver type, seen through interface embedding);
			// package-qualified function calls are absent from it.
			selection := pass.TypesInfo.Selections[sel]
			if selection == nil || selection.Kind() != types.MethodVal {
				return true
			}
			f, ok := selection.Obj().(*types.Func)
			if !ok || !errLossMethods[f.Name()] {
				return true
			}
			sig, ok := f.Type().(*types.Signature)
			if !ok || !returnsError(sig) {
				return true
			}
			if exemptByContract(selection.Recv(), f.Name()) {
				return true
			}
			pass.Report(Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf(
					"error returned by %s is discarded; I/O failures must reach stderr and a nonzero exit", f.Name()),
			})
			return true
		})
	}
	return nil
}

// returnsError reports whether the signature's last result is error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
