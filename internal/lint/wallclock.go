package lint

import (
	"fmt"
	"go/ast"
)

// WallClock forbids nondeterministic environment inputs — wall-clock
// time, the global math/rand generators, and process identity — in
// non-test code. Jigsaw's simulation, unification and analysis must be
// pure functions of (trace bytes, seed): the golden trace digest and
// TestParallelMatchesSerial both depend on it, and the ROADMAP's
// always-on daemon makes any hidden wall-clock dependency a silent
// merge-contract breaker.
//
// Seeded generators (methods on a *rand.Rand from rand.New) and the
// virtual clock in internal/clock are the sanctioned sources. Wall
// timing in cmd/ binaries (progress logs, benchmark timing) is
// legitimate — mark those sites //jiglint:allow wallclock.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "wall-clock time, global math/rand and process identity\n\n" +
		"Reports time.Now/Since/Until, package-level math/rand and math/rand/v2\n" +
		"functions (rand.Intn etc. — methods on a seeded *rand.Rand are fine),\n" +
		"and os.Getpid/Getppid in non-test code. Use the simulation clock and\n" +
		"seeded generators; allowlist cmd/ timing code explicitly.",
	Run: runWallClock,
}

// randGlobals are the package-level functions of math/rand (v1 and v2)
// that draw from the shared, internally-seeded generator.
var randGlobals = []string{
	"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n", "IntN",
	"Uint32", "Uint64", "UintN", "Uint64N", "Uint32N",
	"Float32", "Float64", "NormFloat64", "ExpFloat64",
	"Perm", "Shuffle", "Seed",
	"N",
}

func runWallClock(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			info := pass.TypesInfo
			var what string
			switch {
			case isPkgFunc(info, call, "time", "Now", "Since", "Until"):
				what = "wall-clock time (time." + calleeFunc(info, call).Name() + ")"
			case isPkgFunc(info, call, "math/rand", randGlobals...),
				isPkgFunc(info, call, "math/rand/v2", randGlobals...):
				what = "the global math/rand generator (rand." + calleeFunc(info, call).Name() + ")"
			case isPkgFunc(info, call, "os", "Getpid", "Getppid"):
				what = "process identity (os." + calleeFunc(info, call).Name() + ")"
			default:
				return true
			}
			pass.Report(Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf(
					"%s is nondeterministic; use the simulation clock or a seeded *rand.Rand", what),
			})
			return true
		})
	}
	return nil
}
