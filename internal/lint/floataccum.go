package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// FloatAccum flags floating-point accumulation inside map-range loops.
// Float addition and multiplication are not associative, so a sum taken
// in map iteration order differs in the low bits from run to run — the
// PR 5 class, where order-dependent float aggregation broke
// pass-vs-slice DeepEqual parity and serial-vs-parallel comparisons.
// Integer accumulation is exact and commutative, so it is not reported.
//
// Fix by iterating sorted keys (collect keys, sort, then range the
// slice — which also satisfies mapiterorder) so every run reduces in
// the same order.
var FloatAccum = &Analyzer{
	Name: "floataccum",
	Doc: "floating-point accumulation in map iteration order\n\n" +
		"Reports `x += v`, `x = x + v` and the -, *, / forms on float or\n" +
		"complex x inside a `for range` over a map, when x outlives the loop.\n" +
		"Reduce over sorted keys instead.",
	Run: runFloatAccum,
}

func runFloatAccum(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(pass.TypesInfo.Types[rng.X].Type) {
				return true
			}
			ast.Inspect(rng.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok {
					return true
				}
				checkFloatAssign(pass, as, rng)
				return true
			})
			return true
		})
	}
	return nil
}

// checkFloatAssign reports as if it accumulates into a float that
// outlives the map-range loop rng.
func checkFloatAssign(pass *Pass, as *ast.AssignStmt, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	for i, lhs := range as.Lhs {
		if !isFloatType(info.Types[lhs].Type) {
			continue
		}
		root := rootIdent(lhs)
		if root == nil || !declaredOutside(info, root, rng.Pos(), rng.End()) {
			continue
		}
		accum := false
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			accum = true
		case token.ASSIGN:
			if i < len(as.Rhs) {
				accum = selfReferential(as.Rhs[i], types.ExprString(lhs))
			}
		}
		if accum {
			pass.Report(Diagnostic{
				Pos: as.Pos(),
				Message: fmt.Sprintf(
					"floating-point accumulation into %q inside a map-range loop is order-dependent; reduce over sorted keys",
					types.ExprString(lhs)),
			})
		}
	}
}

// selfReferential reports whether the arithmetic expression rhs reads
// the value it is being assigned to (`x = x + v`, `x = v*0.5 + x`).
func selfReferential(rhs ast.Expr, lhsStr string) bool {
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == lhsStr {
			found = true
			return false
		}
		return true
	})
	return found
}
