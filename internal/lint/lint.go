// Package lint is jiglint: a suite of static analyzers that mechanize
// Jigsaw's determinism and streaming-memory invariants.
//
// The repo's correctness contract — serial ≡ parallel at every worker
// count, golden trace digests, pass-vs-slice parity — depends on a
// handful of invariants that have each been broken (and fixed by hand)
// before:
//
//   - map iteration order must never reach an ordered output (PR 1's
//     timesync BFS adjacency bug, PR 5's unsorted report rows),
//   - floating-point aggregation must not run in map order (PR 5),
//   - simulation and analysis code must not consult wall-clock time or
//     unseeded global randomness,
//   - analysis/transport state must not retain *unify.JFrame or
//     *llc.Exchange beyond the Observe call that delivered it (PR 4's
//     SegObs leak made analyzer memory O(trace)),
//   - I/O errors from Close/Flush/Write/Sync must not be discarded
//     (PR 4's CLI fixes).
//
// Each analyzer turns one of those review findings into a build
// failure. The API deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer/Pass/Diagnostic) so analyzers port verbatim if the repo
// ever vendors x/tools; the driver and loader are stdlib-only because
// this environment builds offline.
//
// # Suppressing a finding
//
// A comment of the form
//
//	//jiglint:allow <checker>[ <checker>...]
//
// on the flagged line, on the line immediately above it, or in the
// file's header (before the package clause, which suppresses for the
// whole file) marks an intentional exception — e.g. the bounded
// exchangeDeferral window in internal/analysis, or wall-clock timing
// in cmd/ binaries. Use it sparingly and say why in the same comment
// block.
//
// # Adding a new analyzer
//
// Write a file in this package defining an *Analyzer whose Run walks
// pass.Files with pass.TypesInfo, calling pass.Report for findings
// (Report applies the allow directives automatically); append it to
// All(); give it fixtures under testdata/src/<name>/ exercised through
// linttest.Run with at least one true positive and one allowlisted
// negative.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one jiglint checker. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the checker in diagnostics and in
	// //jiglint:allow directives.
	Name string
	// Doc is a one-paragraph description shown by `jiglint -list`.
	Doc string
	// Run analyzes one package and reports findings via pass.Report.
	Run func(*Pass) error
	// Scope, when non-empty, restricts the analyzer to packages whose
	// import path contains one of these substrings (e.g.
	// "internal/analysis"). An empty Scope means every package.
	Scope []string
}

// inScope reports whether the analyzer applies to the package path.
func (a *Analyzer) inScope(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}

// Pass holds the per-package inputs handed to an Analyzer.Run, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test syntax trees, parsed with
	// comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types, definitions and uses for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic. It applies //jiglint:allow
	// suppression before recording, so analyzers call it
	// unconditionally.
	Report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// All returns the full jiglint suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapIterOrder,
		FloatAccum,
		WallClock,
		RetainFrame,
		ErrLoss,
	}
}

// directivePrefix introduces an allow directive comment.
const directivePrefix = "//jiglint:allow"

// allowIndex records, per file, which checkers are suppressed on which
// lines (and whether the whole file is suppressed for a checker).
type allowIndex struct {
	// file-wide suppressions: checker name → true.
	file map[string]bool
	// line suppressions: line → set of checker names.
	lines map[int]map[string]bool
}

// buildAllowIndex scans a file's comments for //jiglint:allow directives.
// A directive before the package clause suppresses for the whole file;
// anywhere else it suppresses findings on its own line and the line
// immediately below (so it can sit above the flagged statement or trail
// it on the same line).
func buildAllowIndex(fset *token.FileSet, f *ast.File) *allowIndex {
	idx := &allowIndex{file: map[string]bool{}, lines: map[int]map[string]bool{}}
	pkgLine := fset.Position(f.Package).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //jiglint:allowfoo — not a directive
			}
			names := strings.FieldsFunc(rest, func(r rune) bool {
				return r == ' ' || r == '\t' || r == ','
			})
			line := fset.Position(c.Pos()).Line
			for _, n := range names {
				if line < pkgLine {
					idx.file[n] = true
					continue
				}
				for _, l := range []int{line, line + 1} {
					if idx.lines[l] == nil {
						idx.lines[l] = map[string]bool{}
					}
					idx.lines[l][n] = true
				}
			}
		}
	}
	return idx
}

// allows reports whether the checker is suppressed at the given line.
func (idx *allowIndex) allows(checker string, line int) bool {
	if idx == nil {
		return false
	}
	return idx.file[checker] || idx.lines[line][checker]
}

// RunAnalyzers runs every analyzer over every package and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		allow := make(map[*token.File]*allowIndex, len(pkg.Files))
		for _, f := range pkg.Files {
			allow[pkg.Fset.File(f.Pos())] = buildAllowIndex(pkg.Fset, f)
		}
		for _, a := range analyzers {
			if !a.inScope(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if idx := allow[pkg.Fset.File(d.Pos)]; idx.allows(a.Name, pos.Line) {
					return
				}
				out = append(out, Finding{
					Analyzer: a.Name,
					Pos:      pos,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	sortFindings(out)
	return out, nil
}

// Finding is a resolved diagnostic with its file position and the
// analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool { return findingLess(fs[i], fs[j]) })
}

func findingLess(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
