// Fixture for the errloss checker: discarded Close/Flush/Write/Sync
// errors (the PR 4 CLI class) versus checked, explicitly-discarded,
// deferred and contract-exempt forms.
package errloss

import (
	"bufio"
	"bytes"
	"hash/fnv"
	"os"
)

// bareClose is the PR 4 shape: a failed close (buffered data hitting a
// full disk) vanishes.
func bareClose(f *os.File) {
	f.Close() // want `error returned by Close is discarded`
}

// bareFlush loses whatever the writer buffered.
func bareFlush(bw *bufio.Writer) {
	bw.Flush() // want `error returned by Flush is discarded`
}

// bareSync loses a durability failure.
func bareSync(f *os.File) {
	f.Sync() // want `error returned by Sync is discarded`
}

// bareWrite on a file loses a short-write error.
func bareWrite(f *os.File, b []byte) {
	f.Write(b) // want `error returned by Write is discarded`
}

// checkedClose is the required form.
func checkedClose(f *os.File) error {
	return f.Close()
}

// explicitDiscard is visible and reviewable, so it is accepted.
func explicitDiscard(f *os.File) {
	_ = f.Close()
}

// deferredClose is the idiomatic read-path cleanup.
func deferredClose(f *os.File) {
	defer f.Close()
}

// bufferWrites never fail: bytes.Buffer is exempt by contract.
func bufferWrites(buf *bytes.Buffer, b []byte) {
	buf.Write(b)
	buf.WriteString("x")
}

// bufioWrites latch their error and resurface it from Flush, so the
// writes are exempt while Flush stays checked (bareFlush above).
func bufioWrites(bw *bufio.Writer, b []byte) error {
	bw.Write(b)
	bw.WriteString("x")
	return bw.Flush()
}

// hashWrites never return an error per the hash.Hash contract.
func hashWrites(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// allowedClose documents a deliberate discard without the blank
// assignment.
func allowedClose(f *os.File) {
	f.Close() //jiglint:allow errloss (read-only handle, close error meaningless)
}
