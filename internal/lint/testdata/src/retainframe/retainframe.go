// Fixture for the retainframe checker, type-checked as if it lived in
// internal/transport: declarations that retain the streaming payload
// types (*llc.Exchange, *unify.JFrame) versus the copy-the-fields
// discipline and the allowlisted bounded windows.
package retainframe

import (
	"repro/internal/llc"
	"repro/internal/unify"
)

// countedWindow participates in the ownership contract: it stores
// jframes, but its methods Retain on store and Release on drop, so the
// hold is a counted reference rather than a leaked borrow. No finding.
type countedWindow struct {
	window []*unify.JFrame
}

func (w *countedWindow) add(j *unify.JFrame) {
	j.Retain()
	w.window = append(w.window, j)
}

func (w *countedWindow) drop() {
	for _, j := range w.window {
		j.Release()
	}
	w.window = nil
}

// halfContract only ever Retains — without the Release half the hold
// still pins memory forever, so it is flagged.
type halfContract struct {
	q []*llc.Exchange // want `struct field retains repro/internal/llc.Exchange`
}

func (h *halfContract) push(ex *llc.Exchange) {
	ex.Retain()
	h.q = append(h.q, ex)
}

// crossContract Retains/Releases jframes but STORES exchanges: the
// contract must cover the payload type actually held.
type crossContract struct {
	held []*llc.Exchange // want `struct field retains repro/internal/llc.Exchange`
}

func (c *crossContract) note(j *unify.JFrame) {
	j.Retain()
	j.Release()
	c.held = nil
}

// buggySegObs reproduces the PR 4 transport.SegObs leak: one retained
// exchange per observed TCP segment pinned every attempt's jframes and
// wire bytes, making analyzer memory O(trace).
type buggySegObs struct {
	TimeUS int64
	Ex     *llc.Exchange // want `struct field retains repro/internal/llc.Exchange`
}

// frameWindow retains jframes through a slice field.
type frameWindow struct {
	frames []*unify.JFrame // want `struct field retains repro/internal/unify.JFrame`
}

// byValue retains a full copy: the backing arrays are pinned all the
// same.
type byValue struct {
	last unify.JFrame // want `struct field retains repro/internal/unify.JFrame`
}

// nestedRetention hides the pointer inside a map-of-slice.
type nestedRetention struct {
	byFlow map[uint64][]*llc.Exchange // want `struct field retains repro/internal/llc.Exchange`
}

// lastExchanges is package-level retention.
var lastExchanges []*llc.Exchange // want `package variable "lastExchanges" retains repro/internal/llc.Exchange`

// exchangeRing is a named non-struct type whose values retain.
type exchangeRing []*llc.Exchange // want `type "exchangeRing" retains repro/internal/llc.Exchange`

// fixedSegObs is the post-PR 4 shape: scalar copies of the fields the
// analyses read, no pointer back into the stream.
type fixedSegObs struct {
	TimeUS   int64
	MacSeq   uint16
	Delivery llc.Delivery
}

// boundedDeferral mirrors the sanctioned internal/analysis structures:
// a sliding window whose occupancy is bounded by the emission slack.
type boundedDeferral struct {
	q []*llc.Exchange //jiglint:allow retainframe (bounded sliding window)
}

// observe shows that transient use is fine: parameters and locals do
// not retain past the call.
func observe(ex *llc.Exchange, j *unify.JFrame) int64 {
	local := ex
	_ = j
	return local.CloseUS
}

// callbackType: function signatures pass frames through, they do not
// hold them.
type callbackType func(*llc.Exchange)
