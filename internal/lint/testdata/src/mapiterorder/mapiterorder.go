// Fixture for the mapiterorder checker: true positives for map-range
// loops feeding order-sensitive sinks, and negatives for the sorted-keys
// idiom, order-independent bodies, and //jiglint:allow directives.
package mapiterorder

import (
	"fmt"
	"sort"
)

// appendToOuterSlice is the plainest true positive.
func appendToOuterSlice(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is nondeterministic but this loop appends to "out"`
		out = append(out, k)
	}
	return out
}

// sortedKeysIdiom collects keys and sorts them: the sanctioned pattern.
func sortedKeysIdiom(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortSliceIdiom uses sort.Slice instead of sort.Strings.
func sortSliceIdiom(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// sortInAncestorBlock appends from a nested map range but sorts after
// the outer loop: deterministic, because everything is ordered before
// use.
func sortInAncestorBlock(groups []map[string]int64) []int64 {
	var all []int64
	for _, g := range groups {
		for _, v := range g {
			all = append(all, v)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// printsInMapOrder writes output rows directly from a map range.
func printsInMapOrder(m map[string]int) {
	for k, v := range m { // want `map iteration order is nondeterministic but this loop writes formatted output`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// bfsAdjacency reproduces the PR 1 timesync bootstrap bug: adjacency
// built in map iteration order through a local closure, feeding a BFS
// whose first-path-wins assignment makes insertion order observable.
func bfsAdjacency(g map[uint64][]int32) map[int32][]int32 {
	adj := map[int32][]int32{}
	addEdge := func(a, b int32) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, obs := range g { // want `calls "addEdge", which appends to "adj"`
		for i := 1; i < len(obs); i++ {
			addEdge(obs[0], obs[i])
		}
	}
	return adj
}

// channelSend leaks map order through a channel.
func channelSend(m map[string]int, ch chan string) {
	for k := range m { // want `sends on a channel`
		ch <- k
	}
}

// mapToMapAssign rewrites entries keyed by the loop variable: each key
// is written exactly once, so iteration order cannot be observed.
func mapToMapAssign(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// intAccumulation is exact and commutative: not a finding.
func intAccumulation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// allowedAppend documents a deliberate exception.
func allowedAppend(m map[string]int) []string {
	var out []string
	//jiglint:allow mapiterorder (order genuinely irrelevant here: result is a set)
	for k := range m {
		out = append(out, k)
	}
	return out
}

// appendInsideLoopScope appends to a slice declared inside the loop
// body: it cannot outlive an iteration, so order is unobservable.
func appendInsideLoopScope(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
