// Negative-scope fixture: this package is loaded under an import path
// outside internal/analysis and internal/transport, so retainframe must
// not fire even though the declaration below would be flagged in scope.
package retainframe_scope

import "repro/internal/llc"

// held would be a finding inside the analyzer scope; out of scope (the
// llc and core layers own these values) it is legitimate plumbing.
type held struct {
	ex *llc.Exchange
}
