// Fixture for the floataccum checker: floating-point accumulation in
// map iteration order (the PR 5 report-aggregation class) versus the
// exact/sorted forms that are fine.
package floataccum

import "sort"

// sumInMapOrder is the PR 5 bug shape: float addition is not
// associative, so the low bits depend on iteration order.
func sumInMapOrder(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into "sum" inside a map-range loop`
	}
	return sum
}

// explicitSelfAssign is the same accumulation spelled out.
func explicitSelfAssign(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v*0.5 // want `floating-point accumulation into "sum"`
	}
	return sum
}

// productInMapOrder: multiplication is order-dependent too.
func productInMapOrder(m map[int]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want `floating-point accumulation into "p"`
	}
	return p
}

// fieldAccum accumulates into a struct field that outlives the loop.
type stats struct{ total float64 }

func fieldAccum(m map[string]float64, s *stats) {
	for _, v := range m {
		s.total += v // want `floating-point accumulation into "s.total"`
	}
}

// intSum is exact: integers commute under +.
func intSum(m map[string]int64) int64 {
	var sum int64
	for _, v := range m {
		sum += v
	}
	return sum
}

// sortedReduce is the fix: collect keys, sort, reduce over the slice.
// The accumulation ranges over a slice, not a map.
func sortedReduce(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// maxIsOrderFree: comparisons are not accumulation.
func maxIsOrderFree(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// allowedAccum documents a deliberate exception (e.g. a diagnostic
// counter whose low bits are never compared).
func allowedAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //jiglint:allow floataccum (diagnostic-only total, low bits unused)
	}
	return sum
}

// localFloat accumulates into a per-iteration variable: unobservable.
func localFloat(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		var s float64
		for _, v := range vs {
			s += v
		}
		if s > 0 {
			n++
		}
	}
	return n
}
