// Fixture for the wallclock checker: wall-clock time, global math/rand
// and process identity versus the sanctioned seeded/virtual sources.
package wallclock

import (
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"time"
)

// stampNow reads the wall clock.
func stampNow() int64 {
	return time.Now().UnixMicro() // want `wall-clock time \(time.Now\) is nondeterministic`
}

// elapsed uses the Since sugar.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock time \(time.Since\) is nondeterministic`
}

// globalRand draws from the shared generator, seeded per process.
func globalRand(n int) int {
	return rand.Intn(n) // want `global math/rand generator \(rand.Intn\)`
}

// globalRandV2 is the v2 flavor of the same problem.
func globalRandV2(n int) int {
	return randv2.IntN(n) // want `global math/rand generator \(rand.IntN\)`
}

// pidEntropy mixes process identity into state.
func pidEntropy() int {
	return os.Getpid() // want `process identity \(os.Getpid\)`
}

// seededRand is the sanctioned source: a *rand.Rand from an explicit
// seed. Methods on it are deterministic given the seed.
func seededRand(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// constructedTime manipulates time values without reading the clock.
func constructedTime() time.Time {
	return time.Unix(0, 0).Add(5 * time.Second)
}

// allowedTiming is the cmd/-style exception: real elapsed time for a
// progress log, deliberately allowlisted.
func allowedTiming() time.Time {
	return time.Now() //jiglint:allow wallclock (progress logging, not simulation state)
}
