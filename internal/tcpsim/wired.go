package tcpsim

import (
	"math/rand"

	"repro/internal/dot80211"
	"repro/internal/sim"
)

// WiredNet models the campus distribution network plus upstream Internet
// paths: per-destination latency, independent (low) loss, and a lossless
// tap that records every packet for the §6 wired-trace comparisons.
type WiredNet struct {
	eng *sim.Engine
	rng *rand.Rand

	// LatencyLocal applies to hosts on the local distribution network;
	// LatencyRemote to Internet hosts.
	LatencyLocal  sim.Time
	LatencyRemote sim.Time
	// LossProb is the independent drop probability per wired traversal —
	// small, as Fig. 11 expects the wireless component of TCP loss to
	// dominate.
	LossProb float64

	// QueuePkts, when positive, inserts a finite per-destination FIFO
	// bottleneck in front of the latency stage: packets serialize at
	// BottleneckBytesPerUS and arrivals beyond QueuePkts tail-drop. This is
	// what gives congestion controllers real queue-dependent loss and RTT
	// dynamics to react to. Zero preserves the original unqueued path
	// exactly.
	QueuePkts int
	// BottleneckBytesPerUS is the queue drain rate (bytes per µs; e.g.
	// 12.5 = 100 Mbps). Only consulted when QueuePkts > 0.
	BottleneckBytesPerUS float64

	hosts map[dot80211.MAC]func(Segment)
	// qDepth / qFree model the bottleneck FIFO per destination: packets
	// currently queued, and when the serializer frees up.
	qDepth map[dot80211.MAC]int
	qFree  map[dot80211.MAC]sim.Time
	// lastDelivery enforces per-destination FIFO: wired paths do not
	// reorder packets within a flow, and spurious reordering would fire
	// TCP dup-ACK fast retransmits that never happen in reality.
	lastDelivery map[dot80211.MAC]sim.Time

	// Tap, when set, observes every segment accepted onto the wire with
	// its delivery verdict — this is the "second trace of the same traffic
	// captured on the wired distribution network".
	Tap func(seg Segment, srcMAC, dstMAC dot80211.MAC, delivered bool)

	Stats WiredStats
}

// WiredStats counts wired-segment events.
type WiredStats struct {
	Forwarded int
	Dropped   int
	// QueueDrops counts tail drops at the bottleneck FIFO (a subset of
	// Dropped; only nonzero when QueuePkts > 0).
	QueueDrops int
}

// NewWiredNet builds the wired network.
func NewWiredNet(eng *sim.Engine) *WiredNet {
	return &WiredNet{
		eng:           eng,
		rng:           eng.NewStream(0x77697265),
		LatencyLocal:  500 * sim.Microsecond,
		LatencyRemote: 20 * sim.Millisecond,
		LossProb:      0.002,
		// 100 Mbps default drain rate; inert until QueuePkts is set.
		BottleneckBytesPerUS: 12.5,
		hosts:                make(map[dot80211.MAC]func(Segment)),
		lastDelivery:         make(map[dot80211.MAC]sim.Time),
		qDepth:               make(map[dot80211.MAC]int),
		qFree:                make(map[dot80211.MAC]sim.Time),
	}
}

// Attach registers a host (wired server or an AP's wireless client reached
// via that AP) under a MAC-like address.
func (w *WiredNet) Attach(addr dot80211.MAC, deliver func(Segment)) {
	w.hosts[addr] = deliver
}

// Detach removes a host.
func (w *WiredNet) Detach(addr dot80211.MAC) { delete(w.hosts, addr) }

// Forward routes a segment toward dst, applying the bottleneck queue (when
// configured), latency and loss. remote selects the Internet latency
// profile.
func (w *WiredNet) Forward(src, dst dot80211.MAC, seg Segment, remote bool) {
	deliver, ok := w.hosts[dst]
	overflow := ok && w.QueuePkts > 0 && w.qDepth[dst] >= w.QueuePkts
	dropped := !ok || overflow || w.rng.Float64() < w.LossProb
	if w.Tap != nil {
		w.Tap(seg, src, dst, !dropped)
	}
	if dropped {
		w.Stats.Dropped++
		if overflow {
			w.Stats.QueueDrops++
		}
		return
	}
	w.Stats.Forwarded++
	lat := w.LatencyLocal
	if remote {
		lat = w.LatencyRemote
	}
	// Jitter: ±10% so ACK compression and timer interleavings vary — but
	// never reordering within a destination (FIFO queues on the path).
	jitter := sim.Time(w.rng.Int63n(int64(lat)/5+1)) - lat/10

	if w.QueuePkts > 0 {
		// Bottleneck FIFO: the packet occupies a queue slot until its
		// serialization completes, then crosses the propagation stage.
		wire := int64(headerLen) + int64(seg.PayloadLen)
		ser := sim.Time(float64(wire) / w.BottleneckBytesPerUS * float64(sim.Microsecond))
		start := w.eng.Now()
		if free := w.qFree[dst]; free > start {
			start = free
		}
		depart := start + ser
		w.qFree[dst] = depart
		w.qDepth[dst]++
		at := depart + lat + jitter
		if last := w.lastDelivery[dst]; at < last {
			at = last
		}
		w.lastDelivery[dst] = at
		w.eng.At(depart, func() { w.qDepth[dst]-- })
		w.eng.At(at, func() { deliver(seg) })
		return
	}

	at := w.eng.Now() + lat + jitter
	if last := w.lastDelivery[dst]; at < last {
		at = last
	}
	w.lastDelivery[dst] = at
	w.eng.At(at, func() { deliver(seg) })
}
