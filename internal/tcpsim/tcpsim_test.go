package tcpsim

import (
	"testing"
	"testing/quick"

	"repro/internal/dot80211"
	"repro/internal/sim"
)

func TestSegmentRoundTrip(t *testing.T) {
	s := Segment{
		SrcIP: 0x0a000001, DstIP: 0x0a000002,
		SrcPort: 49152, DstPort: 80,
		Seq: 1e9, Ack: 2e9, Flags: FlagSYN | FlagACK, PayloadLen: 512,
	}
	b := s.Encode()
	if len(b) != headerLen+512 {
		t.Fatalf("encoded length = %d", len(b))
	}
	g, err := DecodeSegment(b)
	if err != nil {
		t.Fatal(err)
	}
	if g != s {
		t.Errorf("round trip: %+v != %+v", g, s)
	}
}

func TestSegmentDecodeTruncatedPayload(t *testing.T) {
	s := Segment{SrcIP: 1, DstIP: 2, PayloadLen: 1400, Flags: FlagACK}
	b := s.Encode()[:200] // monitor snap length
	g, err := DecodeSegment(b)
	if err != nil {
		t.Fatal("header-intact truncated segment must decode")
	}
	if g.PayloadLen != 1400 {
		t.Error("payload length lost")
	}
}

func TestSegmentDecodeRejectsJunk(t *testing.T) {
	if _, err := DecodeSegment([]byte("hello")); err != ErrNotTCP {
		t.Error("short junk accepted")
	}
	b := make([]byte, 64)
	if _, err := DecodeSegment(b); err != ErrNotTCP {
		t.Error("junk without magic accepted")
	}
}

func TestFlowKeyDirectionInsensitive(t *testing.T) {
	a := Segment{SrcIP: 1, DstIP: 2, SrcPort: 100, DstPort: 200}
	b := Segment{SrcIP: 2, DstIP: 1, SrcPort: 200, DstPort: 100}
	if a.Key() != b.Key() {
		t.Error("keys differ across directions")
	}
}

func TestSeqEnd(t *testing.T) {
	s := Segment{Seq: 10, PayloadLen: 5}
	if s.SeqEnd() != 15 {
		t.Error("plain payload SeqEnd")
	}
	s.Flags = FlagSYN
	if s.SeqEnd() != 16 {
		t.Error("SYN consumes a sequence number")
	}
}

func TestQuickSeqArithmetic(t *testing.T) {
	f := func(a uint32, d uint16) bool {
		b := a + uint32(d) + 1
		return seqLess(a, b) && !seqLess(b, a) && seqLEQ(a, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// pipe couples two endpoints through a lossy, delayed channel.
type pipe struct {
	eng  *sim.Engine
	loss func() bool
	lat  sim.Time
}

func connectPair(eng *sim.Engine, lossProb float64, bytes int64) (*Endpoint, *Endpoint) {
	rng := eng.NewStream(1)
	p := &pipe{eng: eng, lat: 5 * sim.Millisecond,
		loss: func() bool { return rng.Float64() < lossProb }}
	var a, b *Endpoint
	a = NewEndpoint(eng, 1, 1000, func(s Segment) {
		if p.loss() {
			return
		}
		p.eng.After(p.lat, func() { b.OnSegment(s) })
	})
	b = NewEndpoint(eng, 2, 80, func(s Segment) {
		if p.loss() {
			return
		}
		p.eng.After(p.lat, func() { a.OnSegment(s) })
	})
	b.Listen(0)
	eng.After(0, func() { a.Connect(2, 80, bytes) })
	return a, b
}

func TestLosslessTransferCompletes(t *testing.T) {
	eng := sim.NewEngine(1)
	a, b := connectPair(eng, 0, 100_000)
	var aOK, bOK bool
	a.Done = func(ok bool) { aOK = ok }
	b.Done = func(ok bool) { bOK = ok }
	eng.Run(60 * sim.Second)
	if !aOK || !bOK {
		t.Fatalf("connection did not complete: a=%v b=%v", aOK, bOK)
	}
	if a.Stats.Retransmits != 0 {
		t.Errorf("lossless path had %d retransmits", a.Stats.Retransmits)
	}
	// 100 KB + SYN + FIN acked.
	if a.Stats.BytesAcked < 100_000 {
		t.Errorf("BytesAcked = %d", a.Stats.BytesAcked)
	}
	if !a.Established() || !b.Established() {
		t.Error("Established not reported")
	}
}

func TestLossyTransferRecovers(t *testing.T) {
	eng := sim.NewEngine(7)
	a, b := connectPair(eng, 0.05, 200_000)
	var aOK bool
	a.Done = func(ok bool) { aOK = ok }
	eng.Run(300 * sim.Second)
	if !aOK {
		t.Fatal("lossy transfer did not complete")
	}
	if a.Stats.Retransmits == 0 {
		t.Error("5% loss but no retransmissions recorded")
	}
	_ = b
}

func TestRTTEstimation(t *testing.T) {
	eng := sim.NewEngine(2)
	a, _ := connectPair(eng, 0, 50_000)
	eng.Run(60 * sim.Second)
	// Path RTT is 2*5 ms; accept generous smoothing error.
	if srtt := a.SRTTUS(); srtt < 8_000 || srtt > 20_000 {
		t.Errorf("SRTT = %.0f µs, want ≈10000", srtt)
	}
}

func TestFastRetransmitTriggers(t *testing.T) {
	// Drop exactly one data segment; the following data causes dup ACKs
	// and a fast retransmit well before the RTO.
	eng := sim.NewEngine(3)
	dropped := false
	var a, b *Endpoint
	lat := 5 * sim.Millisecond
	a = NewEndpoint(eng, 1, 1000, func(s Segment) {
		if !dropped && s.PayloadLen == MSS && s.Seq != 0 && !s.IsSYN() {
			dropped = true
			return
		}
		eng.After(lat, func() { b.OnSegment(s) })
	})
	b = NewEndpoint(eng, 2, 80, func(s Segment) {
		eng.After(lat, func() { a.OnSegment(s) })
	})
	b.Listen(0)
	var done bool
	a.Done = func(ok bool) { done = ok }
	eng.After(0, func() { a.Connect(2, 80, 20*MSS) })
	eng.Run(120 * sim.Second)
	if !done {
		t.Fatal("transfer did not complete")
	}
	if a.Stats.FastRetransmit == 0 {
		t.Error("single mid-stream loss should trigger fast retransmit")
	}
}

func TestConnectFailsWithoutPeer(t *testing.T) {
	eng := sim.NewEngine(4)
	a := NewEndpoint(eng, 1, 1000, func(s Segment) {}) // black hole
	var done, ok bool
	a.Done = func(o bool) { done, ok = true, o }
	eng.After(0, func() { a.Connect(2, 80, 1000) })
	eng.Run(600 * sim.Second)
	if !done || ok {
		t.Errorf("black-holed SYN: done=%v ok=%v, want done && !ok", done, ok)
	}
}

func TestBidirectionalSimultaneousData(t *testing.T) {
	// Server also sends data (Listen with bytes): web-response shape.
	eng := sim.NewEngine(5)
	rng := eng.NewStream(2)
	lat := 3 * sim.Millisecond
	var a, b *Endpoint
	mk := func(peer **Endpoint) func(Segment) {
		return func(s Segment) {
			if rng.Float64() < 0.02 {
				return
			}
			eng.After(lat, func() { (*peer).OnSegment(s) })
		}
	}
	a = NewEndpoint(eng, 1, 1000, mk(&b))
	b = NewEndpoint(eng, 2, 80, mk(&a))
	b.Listen(300_000) // server pushes 300 KB back
	var aOK, bOK bool
	a.Done = func(ok bool) { aOK = ok }
	b.Done = func(ok bool) { bOK = ok }
	eng.After(0, func() { a.Connect(2, 80, 5_000) })
	eng.Run(600 * sim.Second)
	if !aOK || !bOK {
		t.Fatalf("bidirectional transfer incomplete: a=%v b=%v", aOK, bOK)
	}
	if b.Stats.BytesAcked < 300_000 {
		t.Errorf("server BytesAcked = %d", b.Stats.BytesAcked)
	}
}

func TestWiredNetForwardAndTap(t *testing.T) {
	eng := sim.NewEngine(6)
	w := NewWiredNet(eng)
	w.LossProb = 0
	dst := dot80211.MAC{0xee, 0, 0, 0, 0, 1}
	var got []Segment
	w.Attach(dst, func(s Segment) { got = append(got, s) })
	var tapped, tappedDropped int
	w.Tap = func(seg Segment, src, d dot80211.MAC, delivered bool) {
		tapped++
		if !delivered {
			tappedDropped++
		}
	}
	w.Forward(dot80211.MAC{1}, dst, Segment{Seq: 42}, false)
	w.Forward(dot80211.MAC{1}, dot80211.MAC{9}, Segment{Seq: 43}, false) // unknown host
	eng.Run(sim.Second)
	if len(got) != 1 || got[0].Seq != 42 {
		t.Errorf("delivered = %+v", got)
	}
	if tapped != 2 || tappedDropped != 1 {
		t.Errorf("tap saw %d segments (%d dropped), want 2 (1 dropped)", tapped, tappedDropped)
	}
	if w.Stats.Forwarded != 1 || w.Stats.Dropped != 1 {
		t.Errorf("stats = %+v", w.Stats)
	}
}

func TestWiredNetLatencyProfiles(t *testing.T) {
	eng := sim.NewEngine(7)
	w := NewWiredNet(eng)
	w.LossProb = 0
	dst := dot80211.MAC{0xee, 0, 0, 0, 0, 1}
	var localAt, remoteAt sim.Time
	w.Attach(dst, func(s Segment) {
		if s.Seq == 1 {
			localAt = eng.Now()
		} else {
			remoteAt = eng.Now()
		}
	})
	w.Forward(dot80211.MAC{1}, dst, Segment{Seq: 1}, false)
	w.Forward(dot80211.MAC{1}, dst, Segment{Seq: 2}, true)
	eng.Run(sim.Second)
	if localAt == 0 || remoteAt == 0 {
		t.Fatal("segments not delivered")
	}
	if remoteAt <= localAt {
		t.Error("remote path should be slower than local")
	}
}
