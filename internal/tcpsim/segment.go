// Package tcpsim implements simplified-but-real TCP endpoints running over
// the simulated 802.11 MAC and a wired distribution network.
//
// The paper's transport-layer inference (§5.2, §7.4) needs genuine TCP
// sequence dynamics: handshakes, cumulative acknowledgments covering
// sequence space, retransmission timeouts, fast retransmits, and losses on
// both the wireless and wired segments of a path. This package provides
// exactly that — endpoints exchange binary-encoded segments carried in
// 802.11 DATA frame bodies, so Jigsaw can parse them back out of its
// unified trace.
package tcpsim

import (
	"encoding/binary"
	"errors"
)

// TCP flag bits.
const (
	FlagSYN uint8 = 1 << 0
	FlagACK uint8 = 1 << 1
	FlagFIN uint8 = 1 << 2
	FlagRST uint8 = 1 << 3
)

// MSS is the maximum segment payload. It matches the footnote-7 arithmetic
// (an MSS TCP segment at 54 Mbps ≈ 248 µs).
const MSS = 1460

// headerLen is the encoded segment header size.
const headerLen = 24

// Segment is our on-wire TCP/IP header. IPs are 32-bit host identifiers
// assigned by the scenario; the body carried in an 802.11 frame is the
// encoded header followed by PayloadLen padding bytes (payload content is
// irrelevant to every analysis, but its length drives airtime).
type Segment struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	PayloadLen       uint16
}

// FlowKey identifies a TCP connection direction-insensitively: the paper's
// flow reassembly groups both directions of a conversation.
type FlowKey struct {
	IPLo, IPHi     uint32
	PortLo, PortHi uint16
}

// Key returns the canonical (direction-insensitive) flow key.
func (s *Segment) Key() FlowKey {
	a := uint64(s.SrcIP)<<16 | uint64(s.SrcPort)
	b := uint64(s.DstIP)<<16 | uint64(s.DstPort)
	if a <= b {
		return FlowKey{s.SrcIP, s.DstIP, s.SrcPort, s.DstPort}
	}
	return FlowKey{s.DstIP, s.SrcIP, s.DstPort, s.SrcPort}
}

// Encode serializes the segment header plus PayloadLen padding.
func (s *Segment) Encode() []byte {
	b := make([]byte, headerLen+int(s.PayloadLen))
	binary.LittleEndian.PutUint32(b[0:4], s.SrcIP)
	binary.LittleEndian.PutUint32(b[4:8], s.DstIP)
	binary.LittleEndian.PutUint16(b[8:10], s.SrcPort)
	binary.LittleEndian.PutUint16(b[10:12], s.DstPort)
	binary.LittleEndian.PutUint32(b[12:16], s.Seq)
	binary.LittleEndian.PutUint32(b[16:20], s.Ack)
	b[20] = s.Flags
	b[21] = 0x54 // magic marker distinguishing TCP bodies from other traffic
	binary.LittleEndian.PutUint16(b[22:24], s.PayloadLen)
	return b
}

// ErrNotTCP marks bodies that do not carry one of our segments.
var ErrNotTCP = errors.New("tcpsim: not a TCP segment")

// DecodeSegment parses a segment header from an 802.11 frame body. The body
// may be truncated below PayloadLen (monitors snap frames); only the header
// must be intact.
func DecodeSegment(b []byte) (Segment, error) {
	var s Segment
	if len(b) < headerLen || b[21] != 0x54 {
		return s, ErrNotTCP
	}
	s.SrcIP = binary.LittleEndian.Uint32(b[0:4])
	s.DstIP = binary.LittleEndian.Uint32(b[4:8])
	s.SrcPort = binary.LittleEndian.Uint16(b[8:10])
	s.DstPort = binary.LittleEndian.Uint16(b[10:12])
	s.Seq = binary.LittleEndian.Uint32(b[12:16])
	s.Ack = binary.LittleEndian.Uint32(b[16:20])
	s.Flags = b[20]
	s.PayloadLen = binary.LittleEndian.Uint16(b[22:24])
	return s, nil
}

// IsSYN etc. report flag state.
func (s *Segment) IsSYN() bool { return s.Flags&FlagSYN != 0 }
func (s *Segment) IsACK() bool { return s.Flags&FlagACK != 0 }
func (s *Segment) IsFIN() bool { return s.Flags&FlagFIN != 0 }
func (s *Segment) IsRST() bool { return s.Flags&FlagRST != 0 }

// SeqEnd returns the sequence number just past this segment's payload
// (SYN and FIN each consume one sequence number).
func (s *Segment) SeqEnd() uint32 {
	end := s.Seq + uint32(s.PayloadLen)
	if s.IsSYN() || s.IsFIN() {
		end++
	}
	return end
}

// seqLess compares 32-bit sequence numbers with wraparound.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ is seqLess-or-equal.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
