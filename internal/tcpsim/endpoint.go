package tcpsim

import (
	"repro/internal/cc"
	"repro/internal/sim"
)

// state is the endpoint connection state.
type state uint8

const (
	stClosed state = iota
	stSynSent
	stSynRcvd
	stEstablished
	stFinWait // our FIN sent, awaiting ack
	stDone
)

// Timing parameters. The amount of data in flight is governed by a
// cc.Controller: the endpoint reports sends, new ACKs, RTT samples and loss
// events (fast retransmit vs RTO) to the controller and obeys its
// CwndSegments window and PacingGate release schedule. The default is
// cc.NewFixed(window) — the substrate's original fixed 8-segment flight —
// so scenarios that never install a controller behave bit-for-bit as
// before; SetCongestionControl swaps in Reno, CUBIC or BBR dynamics.
const (
	window        = cc.DefaultFixedWindow // fixed-mode segments in flight
	initialRTOUS  = 1_000_000
	minRTOUS      = 200_000
	maxRTOUS      = 60_000_000
	dupAckThresh  = 3
	maxSynRetries = 6
)

// Endpoint is one side of a TCP connection. The transport beneath it is a
// closure that ships an encoded segment toward the peer (through the MAC
// and/or the wired network); delivery calls OnSegment on the peer.
type Endpoint struct {
	eng  *sim.Engine
	send func(Segment)

	localIP    uint32
	localPort  uint16
	remoteIP   uint32
	remotePort uint16

	st  state
	iss uint32

	// Sender state.
	sndUna  uint32 // oldest unacked
	sndNxt  uint32 // next to send
	txLimit uint32 // iss+1+totalBytes: end of data to transmit
	finSeq  uint32 // sequence of our FIN, valid in stFinWait

	// Receiver state.
	rcvNxt   uint32
	oooBytes map[uint32]uint16 // out-of-order payload start → len

	// RTT estimation (RFC 6298 shape).
	srttUS, rttvarUS float64
	rtoUS            int64
	// Karn's algorithm: time and seq of the segment being timed.
	timedSeq    uint32
	timedAt     sim.Time
	timingValid bool

	rtxTimer sim.Handle
	dupAcks  int
	synTries int

	// Congestion control. cc decides the window and pacing; paceTimer
	// wakes pump when the pacing gate opens (fixed mode never arms it).
	cc          cc.Controller
	pacePending bool
	// modernRecovery enables NewReno-style loss recovery: a partial ACK
	// during recovery retransmits the next hole immediately, and forward
	// progress clears the RTO backoff. Required once a controller can pull
	// cwnd below the in-flight amount (a burst loss would otherwise drain
	// one hole per backed-off RTO); left off in fixed compatibility mode
	// to preserve the original substrate's event sequence exactly.
	modernRecovery bool
	recovering     bool
	recoverPoint   uint32

	wasEstablished bool
	// Teardown state: full half-close semantics. The connection is done
	// only when our FIN is acked AND the peer's FIN arrived; a passive
	// endpoint closes only in response to the peer's close.
	isInitiator bool
	finSent     bool
	finAcked    bool
	peerFin     bool

	// Done fires once when the connection completes (all data acked and
	// FIN exchange done) or is aborted.
	Done func(ok bool)

	// Stats observable by the scenario and tests.
	Stats EndpointStats
}

// EndpointStats counts transport events at one endpoint.
type EndpointStats struct {
	SegmentsSent   int
	SegmentsRcvd   int
	Retransmits    int
	FastRetransmit int
	Timeouts       int
	BytesAcked     int64
}

// NewEndpoint creates an endpoint. send ships encoded segments toward the
// peer asynchronously.
func NewEndpoint(eng *sim.Engine, localIP uint32, localPort uint16, send func(Segment)) *Endpoint {
	return &Endpoint{
		eng: eng, send: send,
		localIP: localIP, localPort: localPort,
		rtoUS:    initialRTOUS,
		oooBytes: make(map[uint32]uint16),
		cc:       cc.NewFixed(window),
	}
}

// SetCongestionControl installs a congestion controller. Call before
// Connect/Listen; the default is the fixed-window compatibility controller.
// Installing a non-fixed controller also enables modern loss recovery.
func (e *Endpoint) SetCongestionControl(c cc.Controller) {
	e.cc = c
	e.modernRecovery = c.Name() != cc.Fixed
}

// CCName reports the installed controller's algorithm name — the
// simulator-side ground truth the transport fingerprinter is scored
// against.
func (e *Endpoint) CCName() string { return e.cc.Name() }

// Connect starts the active open toward a peer and arranges to transmit
// totalBytes of application data after establishment.
func (e *Endpoint) Connect(remoteIP uint32, remotePort uint16, totalBytes int64) {
	e.remoteIP, e.remotePort = remoteIP, remotePort
	e.iss = uint32(e.eng.Rand().Int63())
	e.sndUna, e.sndNxt = e.iss, e.iss
	e.txLimit = e.iss + 1 + uint32(totalBytes)
	e.isInitiator = true
	e.st = stSynSent
	e.sendSeg(e.iss, 0, FlagSYN, 0)
	e.sndNxt = e.iss + 1
	e.armRtx()
}

// Listen prepares a passive endpoint that will accept a connection and
// transmit totalBytes after establishment (0 for a pure sink).
func (e *Endpoint) Listen(totalBytes int64) {
	e.st = stClosed
	e.txLimit = uint32(totalBytes) // finalized at SYN receipt
}

// sendSeg builds, counts and ships one segment.
func (e *Endpoint) sendSeg(seq, ack uint32, flags uint8, payload uint16) {
	s := Segment{
		SrcIP: e.localIP, DstIP: e.remoteIP,
		SrcPort: e.localPort, DstPort: e.remotePort,
		Seq: seq, Ack: ack, Flags: flags, PayloadLen: payload,
	}
	e.Stats.SegmentsSent++
	e.send(s)
}

// OnSegment processes a segment arriving from the peer.
func (e *Endpoint) OnSegment(s Segment) {
	e.Stats.SegmentsRcvd++
	switch e.st {
	case stClosed:
		// Passive open.
		if s.IsSYN() && !s.IsACK() {
			e.remoteIP, e.remotePort = s.SrcIP, s.SrcPort
			e.iss = uint32(e.eng.Rand().Int63())
			e.sndUna, e.sndNxt = e.iss, e.iss
			e.txLimit += e.iss + 1 // Listen stored totalBytes
			e.rcvNxt = s.Seq + 1
			e.st = stSynRcvd
			e.sendSeg(e.iss, e.rcvNxt, FlagSYN|FlagACK, 0)
			e.sndNxt = e.iss + 1
			e.armRtx()
		}
	case stSynSent:
		if s.IsSYN() && s.IsACK() && s.Ack == e.iss+1 {
			e.rcvNxt = s.Seq + 1
			e.sndUna = s.Ack
			e.st = stEstablished
			e.wasEstablished = true
			e.sendSeg(e.sndNxt, e.rcvNxt, FlagACK, 0)
			e.rtxTimer.Cancel()
			e.pump()
		}
	case stSynRcvd:
		if s.IsACK() && s.Ack == e.iss+1 {
			e.sndUna = s.Ack
			e.st = stEstablished
			e.wasEstablished = true
			e.rtxTimer.Cancel()
			e.pump()
		}
		// Data may ride in with the third-ack; fall through to data path.
		e.handleData(s)
	case stEstablished, stFinWait:
		e.handleAck(s)
		e.handleData(s)
	case stDone:
		// Re-ACK a retransmitted FIN so the peer can finish too.
		if s.IsFIN() {
			e.sendSeg(e.sndNxt, e.rcvNxt, FlagACK, 0)
		}
	}
}

// handleAck advances the send window.
func (e *Endpoint) handleAck(s Segment) {
	if !s.IsACK() {
		return
	}
	if seqLess(e.sndUna, s.Ack) && seqLEQ(s.Ack, e.sndNxt) {
		acked := int64(s.Ack - e.sndUna)
		e.Stats.BytesAcked += acked
		e.sndUna = s.Ack
		e.dupAcks = 0
		e.cc.OnAck(acked, e.eng.Now().US64())
		// RTT sample (Karn: only if the timed segment is newly acked and
		// was not retransmitted — timingValid is cleared on rtx).
		if e.timingValid && seqLess(e.timedSeq, s.Ack) {
			e.rttSample(e.eng.Now() - e.timedAt)
			e.timingValid = false
		}
		if e.modernRecovery {
			// Forward progress clears any RTO backoff (Karn keeps the
			// backed-off value otherwise, since retransmissions are never
			// timed and a reduced cwnd may stop producing fresh samples).
			if e.srttUS > 0 {
				rto := int64(e.srttUS + 4*e.rttvarUS)
				if rto < minRTOUS {
					rto = minRTOUS
				}
				e.rtoUS = rto
			}
			if e.recovering {
				if !seqLess(s.Ack, e.recoverPoint) {
					e.recovering = false
				} else {
					// Partial ACK: the next hole was lost in the same
					// event; retransmit it now (NewReno) instead of
					// waiting out an RTO per hole.
					e.Stats.Retransmits++
					e.retransmitOne()
				}
			}
		}
		if e.sndUna == e.sndNxt {
			e.rtxTimer.Cancel()
		} else {
			e.armRtx()
		}
		e.pump()
	} else if s.Ack == e.sndUna && e.sndNxt != e.sndUna && s.PayloadLen == 0 && !s.IsSYN() && !s.IsFIN() {
		e.dupAcks++
		if e.dupAcks == dupAckThresh {
			e.Stats.FastRetransmit++
			e.Stats.Retransmits++
			e.cc.OnLoss(e.eng.Now().US64(), false)
			if e.modernRecovery && !e.recovering {
				e.recovering = true
				e.recoverPoint = e.sndNxt
			}
			e.retransmitOne()
		}
	}
	// FIN-of-ours acked?
	if e.finSent && !e.finAcked && seqLess(e.finSeq, s.Ack) {
		e.finAcked = true
		e.rtxTimer.Cancel()
		e.maybeFinish()
	}
}

// maybeClose sends our FIN once all conditions hold: data fully acked, and
// either we initiated the connection (active close) or the peer has already
// closed (passive close-on-close).
func (e *Endpoint) maybeClose() {
	if e.finSent || !e.wasEstablished || e.st == stDone {
		return
	}
	if e.sndNxt == e.txLimit && e.sndUna == e.sndNxt && (e.isInitiator || e.peerFin) {
		e.sendFin()
	}
}

// maybeFinish completes the connection when both directions are closed.
func (e *Endpoint) maybeFinish() {
	if e.finAcked && e.peerFin {
		e.finish(true)
	}
}

// handleData delivers in-order data and acknowledges.
func (e *Endpoint) handleData(s Segment) {
	hasPayload := s.PayloadLen > 0 || s.IsFIN()
	if !hasPayload {
		return
	}
	if s.IsFIN() && s.Seq == e.rcvNxt && s.PayloadLen == 0 {
		e.rcvNxt = s.SeqEnd()
		e.peerFin = true
		e.sendSeg(e.sndNxt, e.rcvNxt, FlagACK, 0)
		e.maybeClose()
		e.maybeFinish()
		return
	}
	switch {
	case s.Seq == e.rcvNxt:
		e.rcvNxt = s.SeqEnd()
		// Absorb any contiguous out-of-order data.
		for {
			l, ok := e.oooBytes[e.rcvNxt]
			if !ok {
				break
			}
			delete(e.oooBytes, e.rcvNxt)
			e.rcvNxt += uint32(l)
		}
		e.sendSeg(e.sndNxt, e.rcvNxt, FlagACK, 0)
	case seqLess(e.rcvNxt, s.Seq):
		// Out of order: buffer and send duplicate ACK.
		if s.PayloadLen > 0 {
			e.oooBytes[s.Seq] = s.PayloadLen
		}
		e.sendSeg(e.sndNxt, e.rcvNxt, FlagACK, 0)
	default:
		// Old duplicate: re-ACK.
		e.sendSeg(e.sndNxt, e.rcvNxt, FlagACK, 0)
	}
}

// pump transmits new data while the congestion window allows, honoring the
// controller's pacing gate (a paced controller spreads the window over the
// RTT instead of releasing it as one burst).
func (e *Endpoint) pump() {
	if e.st != stEstablished {
		return
	}
	for seqLess(e.sndNxt, e.txLimit) && e.sndNxt-e.sndUna < uint32(e.cc.CwndSegments())*MSS {
		nowUS := e.eng.Now().US64()
		if gate := e.cc.PacingGate(nowUS); gate > nowUS {
			e.schedulePace(gate)
			return // data remains unsent, so maybeClose cannot fire yet
		}
		remain := e.txLimit - e.sndNxt
		p := uint16(MSS)
		if remain < MSS {
			p = uint16(remain)
		}
		if !e.timingValid {
			e.timedSeq, e.timedAt, e.timingValid = e.sndNxt, e.eng.Now(), true
		}
		e.sendSeg(e.sndNxt, e.rcvNxt, FlagACK, p)
		e.cc.OnSend(int64(p), nowUS)
		e.sndNxt += uint32(p)
		e.armRtx()
	}
	e.maybeClose()
}

// schedulePace arms a one-shot wakeup at the pacing gate (at most one
// outstanding; re-pumps on fire).
func (e *Endpoint) schedulePace(gateUS int64) {
	if e.pacePending {
		return
	}
	e.pacePending = true
	e.eng.At(sim.US(gateUS), func() {
		e.pacePending = false
		e.pump()
	})
}

// sendFin transmits our FIN.
func (e *Endpoint) sendFin() {
	e.finSent = true
	e.finSeq = e.sndNxt
	e.sendSeg(e.sndNxt, e.rcvNxt, FlagFIN|FlagACK, 0)
	e.sndNxt++
	e.st = stFinWait
	e.armRtx()
}

// retransmitOne resends the oldest unacked segment.
func (e *Endpoint) retransmitOne() {
	e.timingValid = false // Karn
	switch {
	case e.st == stSynSent:
		e.sendSeg(e.iss, 0, FlagSYN, 0)
	case e.st == stSynRcvd:
		e.sendSeg(e.iss, e.rcvNxt, FlagSYN|FlagACK, 0)
	case e.st == stFinWait && e.sndUna == e.finSeq:
		e.sendSeg(e.finSeq, e.rcvNxt, FlagFIN|FlagACK, 0)
	default:
		remain := e.txLimit - e.sndUna
		p := uint16(MSS)
		if remain < MSS {
			p = uint16(remain)
		}
		if p == 0 {
			return
		}
		e.sendSeg(e.sndUna, e.rcvNxt, FlagACK, p)
	}
	e.armRtx()
}

// armRtx (re)starts the retransmission timer.
func (e *Endpoint) armRtx() {
	e.rtxTimer.Cancel()
	e.rtxTimer = e.eng.After(sim.US(e.rtoUS), e.onRtxTimeout)
}

// onRtxTimeout fires the RTO: back off and retransmit.
func (e *Endpoint) onRtxTimeout() {
	if e.st == stDone {
		return
	}
	if e.st == stSynSent || e.st == stSynRcvd {
		e.synTries++
		if e.synTries > maxSynRetries {
			e.finish(false)
			return
		}
	}
	if e.sndUna == e.sndNxt && e.st == stEstablished {
		return // nothing outstanding
	}
	e.Stats.Timeouts++
	e.Stats.Retransmits++
	e.cc.OnLoss(e.eng.Now().US64(), true)
	if e.modernRecovery && e.st == stEstablished {
		e.recovering = true
		e.recoverPoint = e.sndNxt
	}
	e.rtoUS *= 2
	if e.rtoUS > maxRTOUS {
		e.rtoUS = maxRTOUS
	}
	e.retransmitOne()
}

// rttSample updates srtt/rttvar/rto per RFC 6298.
func (e *Endpoint) rttSample(rtt sim.Time) {
	r := float64(rtt.US64())
	e.cc.OnRTTSample(rtt.US64(), e.eng.Now().US64())
	if e.srttUS == 0 {
		e.srttUS = r
		e.rttvarUS = r / 2
	} else {
		const alpha, beta = 1.0 / 8, 1.0 / 4
		d := e.srttUS - r
		if d < 0 {
			d = -d
		}
		e.rttvarUS = (1-beta)*e.rttvarUS + beta*d
		e.srttUS = (1-alpha)*e.srttUS + alpha*r
	}
	rto := int64(e.srttUS + 4*e.rttvarUS)
	if rto < minRTOUS {
		rto = minRTOUS
	}
	e.rtoUS = rto
}

// finish completes the connection.
func (e *Endpoint) finish(ok bool) {
	if e.st == stDone {
		return
	}
	e.st = stDone
	e.rtxTimer.Cancel()
	if e.Done != nil {
		e.Done(ok)
	}
}

// Established reports whether the connection reached the established state
// at some point.
func (e *Endpoint) Established() bool { return e.wasEstablished }

// Finished reports whether the connection is fully done.
func (e *Endpoint) Finished() bool { return e.st == stDone }

// SRTTUS returns the smoothed RTT estimate in µs (0 before any sample).
func (e *Endpoint) SRTTUS() float64 { return e.srttUS }
