package tcpsim

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/dot80211"
	"repro/internal/sim"
)

// connectPairCC is connectPair with a congestion controller installed on
// the sender.
func connectPairCC(eng *sim.Engine, algo string, lossProb float64, bytes int64) (*Endpoint, *Endpoint) {
	a, b := connectPairIdle(eng, lossProb)
	a.SetCongestionControl(cc.MustNew(algo, MSS))
	b.Listen(0)
	eng.After(0, func() { a.Connect(2, 80, bytes) })
	return a, b
}

// connectPairIdle builds the lossy pipe without starting the connection.
func connectPairIdle(eng *sim.Engine, lossProb float64) (*Endpoint, *Endpoint) {
	rng := eng.NewStream(1)
	lat := 5 * sim.Millisecond
	var a, b *Endpoint
	a = NewEndpoint(eng, 1, 1000, func(s Segment) {
		if rng.Float64() < lossProb {
			return
		}
		eng.After(lat, func() { b.OnSegment(s) })
	})
	b = NewEndpoint(eng, 2, 80, func(s Segment) {
		if rng.Float64() < lossProb {
			return
		}
		eng.After(lat, func() { a.OnSegment(s) })
	})
	return a, b
}

func TestCCTransfersComplete(t *testing.T) {
	for _, algo := range []string{cc.Fixed, cc.Reno, cc.Cubic, cc.BBR} {
		for _, loss := range []float64{0, 0.03} {
			eng := sim.NewEngine(11)
			a, _ := connectPairCC(eng, algo, loss, 300_000)
			var ok bool
			a.Done = func(o bool) { ok = o }
			eng.Run(600 * sim.Second)
			if !ok {
				t.Errorf("%s at loss %.2f: transfer did not complete", algo, loss)
			}
			if a.CCName() != algo {
				t.Errorf("CCName = %q, want %q", a.CCName(), algo)
			}
		}
	}
}

func TestCCWindowGrowsBeyondFixed(t *testing.T) {
	// On a clean path Reno/CUBIC/BBR should open the window past the fixed
	// 8-segment flight; the fixed controller must not.
	maxFlight := func(algo string) uint32 {
		eng := sim.NewEngine(12)
		a, _ := connectPairCC(eng, algo, 0, 2_000_000)
		var peak uint32
		orig := a.send
		a.send = func(s Segment) {
			if f := a.sndNxt - a.sndUna; f > peak {
				peak = f
			}
			orig(s)
		}
		eng.Run(600 * sim.Second)
		return peak / MSS
	}
	if f := maxFlight(cc.Fixed); f > window {
		t.Errorf("fixed flight peaked at %d segments, cap is %d", f, window)
	}
	for _, algo := range []string{cc.Reno, cc.Cubic, cc.BBR} {
		if f := maxFlight(algo); f <= window {
			t.Errorf("%s flight never exceeded the fixed window (peak %d)", algo, f)
		}
	}
}

func TestBBREndpointPacesSends(t *testing.T) {
	// Once BBR has a path model, its data transmissions are spread out
	// instead of released as back-to-back window bursts.
	eng := sim.NewEngine(13)
	var sendTimes []int64
	lat := 5 * sim.Millisecond
	var a, b *Endpoint
	a = NewEndpoint(eng, 1, 1000, func(s Segment) {
		if s.PayloadLen > 0 {
			sendTimes = append(sendTimes, eng.Now().US64())
		}
		eng.After(lat, func() { b.OnSegment(s) })
	})
	b = NewEndpoint(eng, 2, 80, func(s Segment) {
		eng.After(lat, func() { a.OnSegment(s) })
	})
	a.SetCongestionControl(cc.MustNew(cc.BBR, MSS))
	b.Listen(0)
	eng.After(0, func() { a.Connect(2, 80, 1_000_000) })
	eng.Run(600 * sim.Second)

	if len(sendTimes) < 100 {
		t.Fatalf("only %d data sends", len(sendTimes))
	}
	// Count zero-gap (same-instant burst) consecutive sends in the second
	// half of the transfer, after the model converges.
	half := sendTimes[len(sendTimes)/2:]
	bursts := 0
	for i := 1; i < len(half); i++ {
		if half[i] == half[i-1] {
			bursts++
		}
	}
	if frac := float64(bursts) / float64(len(half)); frac > 0.2 {
		t.Errorf("%.0f%% of steady-state BBR sends were same-instant bursts; pacing absent", 100*frac)
	}
}

func TestWiredQueueDropsAndDelays(t *testing.T) {
	eng := sim.NewEngine(14)
	w := NewWiredNet(eng)
	w.LossProb = 0
	w.QueuePkts = 4
	w.BottleneckBytesPerUS = 1.25 // 10 Mbps: MSS ≈ 1187 µs serialization
	dst := dot80211.MAC{0xee, 0, 0, 0, 0, 1}
	var arrivals []sim.Time
	w.Attach(dst, func(s Segment) { arrivals = append(arrivals, eng.Now()) })

	// Burst 8 full-size segments at t=0 into a 4-packet queue.
	for i := 0; i < 8; i++ {
		w.Forward(dot80211.MAC{1}, dst, Segment{Seq: uint32(i), PayloadLen: MSS}, false)
	}
	eng.Run(sim.Second)

	if w.Stats.QueueDrops == 0 {
		t.Error("no tail drops from an oversized burst")
	}
	if w.Stats.Forwarded+w.Stats.Dropped != 8 {
		t.Errorf("accounting: fwd=%d drop=%d", w.Stats.Forwarded, w.Stats.Dropped)
	}
	if len(arrivals) < 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// Queued packets serialize one after another: consecutive arrivals at
	// least ~one serialization apart (modulo jitter).
	ser := sim.Time(float64(headerLen+MSS) / w.BottleneckBytesPerUS * float64(sim.Microsecond))
	for i := 1; i < len(arrivals); i++ {
		if gap := arrivals[i] - arrivals[i-1]; gap < ser/2 {
			t.Errorf("arrival gap %d = %v, want ≥ half the serialization %v", i, gap, ser)
		}
	}
	if w.qDepth[dst] != 0 {
		t.Errorf("queue depth did not drain: %d", w.qDepth[dst])
	}
}

func TestWiredQueueDisabledMatchesLegacy(t *testing.T) {
	// QueuePkts = 0 must leave the event pattern of the original path
	// untouched: same rng draws, same delivery times.
	run := func(queue int) []sim.Time {
		eng := sim.NewEngine(15)
		w := NewWiredNet(eng)
		w.LossProb = 0.1
		w.QueuePkts = queue
		dst := dot80211.MAC{0xee, 0, 0, 0, 0, 2}
		var at []sim.Time
		w.Attach(dst, func(s Segment) { at = append(at, eng.Now()) })
		for i := 0; i < 50; i++ {
			w.Forward(dot80211.MAC{1}, dst, Segment{Seq: uint32(i)}, i%2 == 0)
		}
		eng.Run(sim.Second)
		return at
	}
	a := run(0)
	b := run(0)
	if len(a) != len(b) {
		t.Fatalf("legacy path nondeterministic: %d vs %d deliveries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("legacy delivery %d at %v vs %v", i, a[i], b[i])
		}
	}
}
