// Package timesync implements Jigsaw's bootstrap synchronization (§4.1):
// establishing a single universal time standard across all monitor radios
// from frames opportunistically overheard by multiple radios.
//
// The algorithm follows the paper exactly:
//
//  1. Examine the first window of each trace and find "unique" reference
//     frames — frames whose content unambiguously identifies a single
//     physical transmission (DATA/management frames without the retry bit;
//     ACKs, CTS and probe requests are useless because instances cannot be
//     told apart).
//  2. For each reference frame s_k, build the reception set E_k of
//     (radio, local timestamp) pairs.
//  3. For every radio, pick the E_k containing it with the maximum radio
//     count and add it to the synchronization set G, stopping once G covers
//     every radio (minimizing distinct reference frames maximizes offset
//     consistency).
//  4. Breadth-first search from the root radio through G's co-reception
//     graph assigns each radio an offset T_i to universal time; indoor
//     propagation is effectively instantaneous (<1 µs over 500 m), so a
//     frame's arrival is simultaneous at all receivers.
//  5. Radios on disjoint channels are bridged through monitors whose two
//     radios share one local clock (zero-offset edges).
package timesync

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dot80211"
	"repro/internal/tracefile"
)

// DefaultWindowUS is the bootstrap observation window: the paper uses the
// first second of each trace.
const DefaultWindowUS = 1_000_000

// Observation is one radio's reception of a reference frame.
type Observation struct {
	Radio   int32
	LocalUS int64
}

// refSet is E_k: the set of radios receiving reference frame k.
type refSet struct {
	key  uint64
	obs  []Observation
	used bool
}

// Result holds the bootstrap output.
type Result struct {
	// OffsetUS maps radio → T_i such that universal = local + T_i.
	OffsetUS map[int32]int64
	// Root is the radio anchoring universal time (T_root = 0).
	Root int32
	// Unsynced lists radios for which no transitive path to the root
	// exists (a partitioned deployment, as with 10 pods in §6).
	Unsynced []int32
	// RefFrames is the number of reference frames selected into G.
	RefFrames int
	// Candidates is the number of unique reference frames considered.
	Candidates int
}

// Synced reports whether every observed radio was assigned an offset.
func (r *Result) Synced() bool { return len(r.Unsynced) == 0 }

// ContentKey hashes frame wire bytes for identity comparison. Two receptions
// with equal keys and equal lengths are treated as instances of the same
// transmission (full byte comparison happens in the unifier; the bootstrap
// can tolerate the hash).
func ContentKey(frame []byte) uint64 {
	h := fnv.New64a()
	h.Write(frame)
	return h.Sum64()
}

// uniqueForSync decides reference eligibility per §4.1.
func uniqueForSync(rec *tracefile.Record) bool {
	if !rec.FCSOK() || len(rec.Frame) == 0 {
		return false
	}
	f, _, err := dot80211.DecodeCapture(rec.Frame)
	if err != nil {
		return false
	}
	return f.UniqueForSync()
}

// Bootstrap computes universal-time offsets for every radio appearing in
// recs, which must contain each radio's records from the bootstrap window
// (any order). clockGroups lists sets of radios sharing one physical clock
// (the two radios of each monitor, §3.3) used to bridge across channels.
func Bootstrap(recs []tracefile.Record, clockGroups [][]int32) (*Result, error) {
	// Gather reference frames.
	sets := make(map[uint64]*refSet)
	radios := make(map[int32]bool)
	for i := range recs {
		rec := &recs[i]
		radios[rec.RadioID] = true
		if !uniqueForSync(rec) {
			continue
		}
		key := ContentKey(rec.Frame)
		s := sets[key]
		if s == nil {
			s = &refSet{key: key}
			sets[key] = s
		}
		// A radio can appear once per set; duplicates of a "unique" frame
		// at one radio mean it was not unique after all — drop the set.
		dup := false
		for _, o := range s.obs {
			if o.Radio == rec.RadioID {
				dup = true
				break
			}
		}
		if dup {
			s.used = true // poison: never select
			continue
		}
		s.obs = append(s.obs, Observation{Radio: rec.RadioID, LocalUS: rec.LocalUS})
	}
	if len(radios) == 0 {
		return nil, fmt.Errorf("timesync: no radios in bootstrap window")
	}

	// Candidate sets: ≥2 radios, not poisoned.
	var candidates []*refSet
	for _, s := range sets {
		if !s.used && len(s.obs) >= 2 {
			candidates = append(candidates, s)
		}
	}
	// Deterministic order: larger sets first, then key.
	sort.Slice(candidates, func(i, j int) bool {
		if len(candidates[i].obs) != len(candidates[j].obs) {
			return len(candidates[i].obs) > len(candidates[j].obs)
		}
		return candidates[i].key < candidates[j].key
	})

	// Greedy G assembly: for each radio pick its largest containing set.
	bestFor := make(map[int32]*refSet)
	for _, s := range candidates {
		for _, o := range s.obs {
			if bestFor[o.Radio] == nil {
				bestFor[o.Radio] = s
			}
		}
	}
	g := make(map[uint64]*refSet)
	for _, s := range bestFor {
		g[s.key] = s
	}

	// BFS over G's co-reception graph plus clock-group edges. For a shared
	// frame k: universal U_k = y_ik + T_i = y_jk + T_j, so
	// T_j = T_i + (y_ik - y_jk).
	type edge struct {
		to    int32
		delta int64 // T_to = T_from + delta
	}
	all := make([]int32, 0, len(radios))
	for r := range radios {
		all = append(all, r)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	root := all[0]

	bfs := func() map[int32]int64 {
		adj := make(map[int32][]edge)
		addEdge := func(a, b int32, delta int64) {
			adj[a] = append(adj[a], edge{to: b, delta: delta})
			adj[b] = append(adj[b], edge{to: a, delta: -delta})
		}
		// Walk G in sorted key order: BFS assigns each radio's offset
		// through the first path that reaches it, so adjacency insertion
		// order must not depend on map iteration (which varies per process)
		// for the bootstrap to be reproducible.
		gKeys := make([]uint64, 0, len(g))
		for k := range g {
			gKeys = append(gKeys, k)
		}
		sort.Slice(gKeys, func(i, j int) bool { return gKeys[i] < gKeys[j] })
		for _, k := range gKeys {
			s := g[k]
			base := s.obs[0]
			for _, o := range s.obs[1:] {
				addEdge(base.Radio, o.Radio, base.LocalUS-o.LocalUS)
			}
		}
		// Zero-offset clock-group edges bridge channels.
		for _, grp := range clockGroups {
			for i := 1; i < len(grp); i++ {
				if radios[grp[0]] && radios[grp[i]] {
					addEdge(grp[0], grp[i], 0)
				}
			}
		}
		offsets := map[int32]int64{root: 0}
		queue := []int32{root}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range adj[cur] {
				if _, seen := offsets[e.to]; seen {
					continue
				}
				offsets[e.to] = offsets[cur] + e.delta
				queue = append(queue, e.to)
			}
		}
		return offsets
	}

	offsets := bfs()
	// The minimal greedy G can leave the graph disconnected; per §4.1,
	// "more sets E_k [are] added to G" until coverage stops improving.
	for len(offsets) < len(radios) {
		grew := false
		for _, s := range candidates {
			if _, in := g[s.key]; in {
				continue
			}
			covered := 0
			for _, o := range s.obs {
				if _, ok := offsets[o.Radio]; ok {
					covered++
				}
			}
			// Useful sets connect the synced component to new radios.
			if covered >= 1 && covered < len(s.obs) {
				g[s.key] = s
				grew = true
			}
		}
		if !grew {
			break
		}
		offsets = bfs()
	}

	// Refinement: BFS assigns each offset through a single path, so
	// quantization and in-window skew accumulate along long paths (the
	// paper cites Karp et al.'s optimal path selection; it also notes most
	// paths are precise enough). A few relaxation sweeps over ALL candidate
	// reference frames average every available path: for each frame k the
	// universal time U_k is the median of (T_i + y_ik) over its receivers,
	// and each radio then moves toward the median of (U_k - y_ik) over the
	// frames it received. The root stays pinned.
	for iter := 0; iter < 4; iter++ {
		desired := make(map[int32][]int64)
		for _, s := range candidates {
			us := make([]int64, 0, len(s.obs))
			for _, o := range s.obs {
				t, ok := offsets[o.Radio]
				if !ok {
					continue
				}
				us = append(us, t+o.LocalUS)
			}
			if len(us) < 2 {
				continue
			}
			sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
			uk := us[len(us)/2]
			for _, o := range s.obs {
				if _, ok := offsets[o.Radio]; ok {
					desired[o.Radio] = append(desired[o.Radio], uk-o.LocalUS)
				}
			}
		}
		for r, ds := range desired {
			if r == root {
				continue
			}
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
			offsets[r] = ds[len(ds)/2]
		}
	}

	res := &Result{
		OffsetUS:   offsets,
		Root:       root,
		RefFrames:  len(g),
		Candidates: len(candidates),
	}
	for _, r := range all {
		if _, ok := offsets[r]; !ok {
			res.Unsynced = append(res.Unsynced, r)
		}
	}
	return res, nil
}

// CollectWindow reads records from per-radio trace readers until each
// radio's local clock passes windowUS past its first record, returning the
// window records and per-radio continuation streams (the window records are
// NOT consumed from the merge's perspective — callers replay them).
//
// In the real system jigdump traces begin near-simultaneously (NTP-aligned
// wall clocks, footnote 4); our simulated traces all start at t=0, so the
// first windowUS of local time is the natural equivalent.
//
// Records are returned grouped per radio in ascending radio-ID order, so
// the output is deterministic regardless of map iteration.
func CollectWindow(readers map[int32]*tracefile.Reader, windowUS int64) ([]tracefile.Record, error) {
	return CollectWindowParallel(readers, windowUS, 1)
}

// CollectWindowParallel is CollectWindow with the per-radio pre-scan fanned
// across up to workers goroutines. Each radio's window is independent (its
// own reader, its own decompression), so the scan parallelizes perfectly;
// the output is byte-identical to CollectWindow's.
func CollectWindowParallel(readers map[int32]*tracefile.Reader, windowUS int64, workers int) ([]tracefile.Record, error) {
	radios := make([]int32, 0, len(readers))
	for r := range readers {
		radios = append(radios, r)
	}
	sort.Slice(radios, func(i, j int) bool { return radios[i] < radios[j] })

	windows := make([][]tracefile.Record, len(radios))
	errs := make([]error, len(radios))
	if workers > len(radios) {
		workers = len(radios)
	}
	if workers <= 1 {
		for i, r := range radios {
			windows[i], errs[i] = collectRadioWindow(readers[r], windowUS)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(radios) {
						return
					}
					windows[i], errs[i] = collectRadioWindow(readers[radios[i]], windowUS)
				}
			}()
		}
		wg.Wait()
	}

	var out []tracefile.Record
	for i, w := range windows {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, w...)
	}
	return out, nil
}

// collectRadioWindow reads one radio's bootstrap window.
func collectRadioWindow(r *tracefile.Reader, windowUS int64) ([]tracefile.Record, error) {
	var out []tracefile.Record
	var first int64
	started := false
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if !started {
			first = rec.LocalUS
			started = true
		}
		// The record borrows its frame from the reader's block buffer;
		// the window outlives the read loop.
		rec.CloneFrame()
		out = append(out, rec)
		if rec.LocalUS-first > windowUS {
			break
		}
	}
	return out, nil
}
