package timesync

import (
	"bytes"
	"testing"

	"repro/internal/dot80211"
	"repro/internal/tracefile"
)

// mkData builds a unique reference-eligible frame.
func mkData(seq uint16, body byte) []byte {
	f := dot80211.NewData(
		dot80211.MAC{2, 0, 0, 0, 0, 9}, dot80211.MAC{2, 0, 0, 0, 0, 1},
		dot80211.MAC{2, 0, 0, 0, 0, 7}, seq, []byte{body, body + 1})
	return f.Encode()
}

// obs emits a record of frame at a radio whose clock offset from true time
// is offUS: local = true + off.
func obs(radio int32, trueUS, offUS int64, frame []byte) tracefile.Record {
	return tracefile.Record{
		LocalUS: trueUS + offUS, RadioID: radio, Channel: 1,
		Rate: uint16(dot80211.Rate11Mbps), Flags: tracefile.FlagFCSOK, Frame: frame,
	}
}

// checkConsistent verifies that universal timestamps derived from the
// returned offsets agree across radios: for a frame transmitted at true
// time t observed at radios i, j: local_i + T_i == local_j + T_j.
func checkConsistent(t *testing.T, res *Result, trueOff map[int32]int64) {
	t.Helper()
	// universal = local + T = true + off + T, so off + T must be equal
	// across radios (all shifted by the same constant).
	var base int64
	first := true
	for r, T := range res.OffsetUS {
		v := trueOff[r] + T
		if first {
			base, first = v, false
			continue
		}
		if d := v - base; d < -2 || d > 2 {
			t.Errorf("radio %d inconsistent: off+T=%d, base=%d", r, v, base)
		}
	}
}

func TestBootstrapSingleSharedFrame(t *testing.T) {
	trueOff := map[int32]int64{0: 0, 1: 5000, 2: -3000}
	f := mkData(1, 10)
	recs := []tracefile.Record{
		obs(0, 1000, trueOff[0], f),
		obs(1, 1000, trueOff[1], f),
		obs(2, 1000, trueOff[2], f),
	}
	res, err := Bootstrap(recs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Synced() {
		t.Fatalf("unsynced: %v", res.Unsynced)
	}
	checkConsistent(t, res, trueOff)
	if res.RefFrames != 1 {
		t.Errorf("RefFrames = %d, want 1", res.RefFrames)
	}
}

func TestBootstrapTransitive(t *testing.T) {
	// r0 and r2 share nothing; r1 bridges (the paper's r1-r2-r3 example).
	trueOff := map[int32]int64{0: 100, 1: -20000, 2: 31337}
	fa, fb := mkData(1, 10), mkData(2, 20)
	recs := []tracefile.Record{
		obs(0, 1000, trueOff[0], fa),
		obs(1, 1000, trueOff[1], fa),
		obs(1, 5000, trueOff[1], fb),
		obs(2, 5000, trueOff[2], fb),
	}
	res, err := Bootstrap(recs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Synced() {
		t.Fatalf("unsynced: %v", res.Unsynced)
	}
	checkConsistent(t, res, trueOff)
	if res.RefFrames != 2 {
		t.Errorf("RefFrames = %d, want 2", res.RefFrames)
	}
}

func TestBootstrapLongChain(t *testing.T) {
	// 20 radios in a line, each sharing one frame with the next.
	trueOff := map[int32]int64{}
	var recs []tracefile.Record
	for i := int32(0); i < 20; i++ {
		trueOff[i] = int64(i) * 7919 // arbitrary distinct offsets
	}
	for i := int32(0); i < 19; i++ {
		f := mkData(uint16(i+1), byte(i))
		tt := int64(i+1) * 1000
		recs = append(recs, obs(i, tt, trueOff[i], f), obs(i+1, tt, trueOff[i+1], f))
	}
	res, err := Bootstrap(recs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Synced() {
		t.Fatalf("unsynced: %v", res.Unsynced)
	}
	checkConsistent(t, res, trueOff)
}

func TestBootstrapPartitionDetected(t *testing.T) {
	trueOff := map[int32]int64{0: 0, 1: 10, 2: 20, 3: 30}
	fa, fb := mkData(1, 1), mkData(2, 2)
	recs := []tracefile.Record{
		obs(0, 1000, trueOff[0], fa), obs(1, 1000, trueOff[1], fa),
		obs(2, 2000, trueOff[2], fb), obs(3, 2000, trueOff[3], fb),
	}
	res, err := Bootstrap(recs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Synced() {
		t.Fatal("disjoint components reported synced")
	}
	if len(res.Unsynced) != 2 {
		t.Errorf("unsynced = %v, want the two radios of the second island", res.Unsynced)
	}
}

func TestBootstrapClockGroupBridgesChannels(t *testing.T) {
	// Radios 0,1 on channel 1 share fa; radios 2,3 on channel 6 share fb.
	// Radios 1 and 2 are the two radios of one monitor: same clock.
	trueOff := map[int32]int64{0: 11, 1: 2222, 2: 2222, 3: -940}
	fa, fb := mkData(1, 1), mkData(2, 2)
	recs := []tracefile.Record{
		obs(0, 1000, trueOff[0], fa), obs(1, 1000, trueOff[1], fa),
		obs(2, 2000, trueOff[2], fb), obs(3, 2000, trueOff[3], fb),
	}
	res, err := Bootstrap(recs, [][]int32{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Synced() {
		t.Fatalf("clock group did not bridge: %v", res.Unsynced)
	}
	checkConsistent(t, res, trueOff)
}

func TestBootstrapIgnoresIneligibleFrames(t *testing.T) {
	// ACKs and retries must not create sync edges.
	ackF := dot80211.NewAck(dot80211.MAC{2, 0, 0, 0, 0, 1})
	ack := ackF.Encode()
	retry := dot80211.NewData(dot80211.MAC{2}, dot80211.MAC{4}, dot80211.MAC{6}, 7, []byte{1})
	retry.Flags |= dot80211.FlagRetry
	rw := retry.Encode()
	recs := []tracefile.Record{
		obs(0, 1000, 0, ack), obs(1, 1000, 50, ack),
		obs(0, 2000, 0, rw), obs(1, 2000, 50, rw),
	}
	res, err := Bootstrap(recs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Synced() {
		t.Error("sync built from ACKs/retries; they are not unique references")
	}
}

func TestBootstrapIgnoresCorruptFrames(t *testing.T) {
	f := mkData(3, 9)
	bad := append([]byte(nil), f...)
	bad[len(bad)-1] ^= 0xff
	recs := []tracefile.Record{
		{LocalUS: 100, RadioID: 0, Frame: bad}, // no FCSOK flag
		{LocalUS: 150, RadioID: 1, Frame: bad},
		obs(0, 2000, 0, f), obs(1, 2000, -7, f),
	}
	res, err := Bootstrap(recs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Synced() {
		t.Fatal("valid frame should still sync")
	}
	// Offset difference must come from the valid frame (-7), not the
	// corrupt pair (-50).
	d := res.OffsetUS[0] - res.OffsetUS[1]
	if d != -7 {
		t.Errorf("offset delta = %d, want -7", d)
	}
}

func TestBootstrapPoisonsAmbiguousReferences(t *testing.T) {
	// The same "unique" content seen twice at one radio (e.g. a station
	// retransmitting without the retry bit) must poison that reference.
	f := mkData(5, 5)
	recs := []tracefile.Record{
		obs(0, 1000, 0, f), obs(0, 3000, 0, f), // radio 0 hears it twice!
		obs(1, 1000, 40, f),
	}
	res, err := Bootstrap(recs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Synced() {
		t.Error("ambiguous reference used for sync")
	}
}

func TestBootstrapNoRadios(t *testing.T) {
	if _, err := Bootstrap(nil, nil); err == nil {
		t.Error("empty bootstrap should error")
	}
}

func TestBootstrapPrefersLargeSets(t *testing.T) {
	// A frame heard by 4 radios should anchor G rather than pairwise ones.
	trueOff := map[int32]int64{0: 1, 1: 2, 2: 3, 3: 4}
	big := mkData(1, 1)
	var recs []tracefile.Record
	for r := int32(0); r < 4; r++ {
		recs = append(recs, obs(r, 1000, trueOff[r], big))
	}
	// Add noise: pairwise frames.
	for i := 0; i < 3; i++ {
		f := mkData(uint16(10+i), byte(30+i))
		recs = append(recs, obs(int32(i), 2000, trueOff[int32(i)], f),
			obs(int32(i+1), 2000, trueOff[int32(i+1)], f))
	}
	res, err := Bootstrap(recs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Synced() {
		t.Fatal("unsynced")
	}
	checkConsistent(t, res, trueOff)
	if res.RefFrames != 1 {
		t.Errorf("G has %d frames; the single 4-radio set should suffice", res.RefFrames)
	}
}

func TestContentKeyDistinguishes(t *testing.T) {
	a, b := mkData(1, 1), mkData(1, 2)
	if ContentKey(a) == ContentKey(b) {
		t.Error("different frames, same key")
	}
	if ContentKey(a) != ContentKey(mkData(1, 1)) {
		t.Error("same content, different key")
	}
}

// TestCollectWindowParallelMatchesSerial: the fanned-out pre-scan must
// return byte-identical windows to the serial scan, for any worker count.
func TestCollectWindowParallelMatchesSerial(t *testing.T) {
	mkReaders := func() map[int32]*tracefile.Reader {
		readers := make(map[int32]*tracefile.Reader)
		for radio := int32(0); radio < 7; radio++ {
			var buf bytes.Buffer
			w := tracefile.NewWriter(&buf)
			for i := 0; i < 500; i++ {
				rec := obs(radio, int64(i)*4000, int64(radio)*17, mkData(uint16(i), byte(i)))
				if err := w.WriteRecord(rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			readers[radio] = tracefile.NewReader(bytes.NewReader(buf.Bytes()))
		}
		return readers
	}

	want, err := CollectWindow(mkReaders(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("empty serial window")
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := CollectWindowParallel(mkReaders(), 1_000_000, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].RadioID != want[i].RadioID || got[i].LocalUS != want[i].LocalUS ||
				!bytes.Equal(got[i].Frame, want[i].Frame) {
				t.Fatalf("workers=%d: record %d differs", workers, i)
			}
		}
	}
}
