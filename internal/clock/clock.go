// Package clock models the radio monitor clocks whose imperfections Jigsaw's
// synchronization algorithm must overcome, and provides the skew/drift
// estimators the algorithm uses to overcome them.
//
// Each monitor in the deployment timestamps received frames with a 1 µs
// resolution local clock (the Atheros RX timestamp facility, §3.3). Local
// clocks differ from true time by an offset, run fast or slow by a skew
// measured in parts-per-million, and the skew itself wanders slowly (drift).
// The 802.11 standard mandates ≤100 ppm accuracy; the paper observes Atheros
// hardware doing considerably better. Jigsaw compensates for skew per radio
// and predicts drift with an exponentially weighted moving average (§4.2).
package clock

import "math"

// Clock converts true simulation time to a monitor's local timestamp. True
// time is int64 nanoseconds from simulation start; local timestamps are
// int64 microseconds as produced by the capture hardware.
//
// The local reading at true time t is:
//
//	local(t) = (t + offset) * (1 + skew(t)) quantized to 1 µs
//
// where skew(t) = skew0 + driftRate * t wanders linearly (a first-order
// model of oscillator temperature drift, sufficient because Jigsaw's EWMA
// tracks slow drift of any shape over the short horizons that matter).
type Clock struct {
	OffsetNS  int64   // initial offset from true time, nanoseconds
	SkewPPM   float64 // initial frequency error, parts per million
	DriftPPMH float64 // skew change rate, ppm per hour
}

// LocalUS returns the local 1 µs-quantized timestamp for true time tNS.
// Accumulated error is the integral of the instantaneous skew, so the
// effective skew over [0,t] is SkewPPM + DriftPPMH·t/2.
func (c *Clock) LocalUS(tNS int64) int64 {
	local := float64(tNS+c.OffsetNS) * (1 + c.meanSkewOver(tNS)*1e-6)
	return int64(math.Floor(local / 1e3)) // ns → µs, quantize down like a counter
}

// SkewAt returns the instantaneous skew in ppm at true time tNS.
func (c *Clock) SkewAt(tNS int64) float64 {
	hours := float64(tNS) / float64(3600e9)
	return c.SkewPPM + c.DriftPPMH*hours
}

// meanSkewOver returns the average skew over [0, tNS] (the integral form
// that governs accumulated timestamp error).
func (c *Clock) meanSkewOver(tNS int64) float64 {
	hours := float64(tNS) / float64(3600e9)
	return c.SkewPPM + c.DriftPPMH*hours/2
}

// TrueNSApprox inverts LocalUS approximately (ignoring quantization): the
// true time at which the clock would read localUS. Used only by tests and
// diagnostics; the Jigsaw algorithms never get to see true time.
func (c *Clock) TrueNSApprox(localUS int64) int64 {
	// Invert local = (t + off)(1 + s̄(t)e-6) iteratively; skew changes so
	// slowly that a few iterations converge well below 1 µs.
	t := localUS * 1e3
	for i := 0; i < 3; i++ {
		s := c.meanSkewOver(t)
		t = int64(float64(localUS*1e3)/(1+s*1e-6)) - c.OffsetNS
	}
	return t
}

// SkewEstimator tracks the skew of one radio's clock relative to universal
// time using an exponentially weighted moving average of observed
// (local-delta / universal-delta) ratios, and predicts the local-time
// correction to apply at a future universal time. This is the "pro-active
// adjustment" of §4.2: between resynchronization opportunities a radio's
// placement in universal time is extrapolated using its predicted skew.
//
// The estimator also maintains a second EWMA over skew *changes* to predict
// drift, which the paper found necessary at large radio counts.
type SkewEstimator struct {
	alpha    float64 // EWMA gain for skew samples
	beta     float64 // EWMA gain for drift samples
	disabled bool    // ablation switch: Update becomes a no-op

	initialized bool
	lastLocalUS int64 // local timestamp at last update
	lastUnivUS  int64 // universal timestamp at last update

	skewPPM  float64 // smoothed skew estimate
	driftPPS float64 // smoothed d(skew)/dt, ppm per second
	samples  int

	// Drift is measured between widely spaced checkpoints of the smoothed
	// skew: 1 µs timestamp quantization over a ~100 ms sample interval is
	// ±10 ppm of noise, so per-sample differencing is hopeless. Comparing
	// smoothed skew across ≥10 s baselines divides that noise by 100.
	ckptUnivUS int64
	ckptSkew   float64
	haveCkpt   bool
}

// driftBaselineUS is the minimum universal-time spacing between drift
// checkpoints.
const driftBaselineUS = 10_000_000

// NewSkewEstimator returns an estimator with the given EWMA gains. Gains in
// (0,1]; larger adapts faster. Zero values select defaults tuned for the
// beacon-dominated resync cadence (~100 ms between samples, §4.2).
func NewSkewEstimator(alpha, beta float64) *SkewEstimator {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.05
	}
	if beta <= 0 || beta > 1 {
		beta = 0.02
	}
	return &SkewEstimator{alpha: alpha, beta: beta}
}

// Update feeds one synchronization observation: the radio's local timestamp
// for a reference frame and the universal timestamp assigned to that frame's
// jframe. Returns the skew estimate in ppm after the update.
func (e *SkewEstimator) Update(localUS, univUS int64) float64 {
	if e.disabled {
		return 0
	}
	if !e.initialized {
		e.initialized = true
		e.lastLocalUS, e.lastUnivUS = localUS, univUS
		return e.skewPPM
	}
	dLocal := localUS - e.lastLocalUS
	dUniv := univUS - e.lastUnivUS
	if dUniv <= 0 {
		// Out-of-order or duplicate observation; ignore.
		return e.skewPPM
	}
	sample := (float64(dLocal)/float64(dUniv) - 1) * 1e6 // instantaneous ppm
	// Clip absurd samples (e.g. a mis-unified frame): the standard caps
	// real clocks at 100 ppm; allow 10x headroom.
	if sample > 1000 {
		sample = 1000
	} else if sample < -1000 {
		sample = -1000
	}
	// Warmup: a running mean converges much faster than the EWMA while the
	// estimate is cold; after warmup the EWMA tracks slow change.
	const warmup = 10
	if e.samples == 0 {
		e.skewPPM = sample
	} else if e.samples < warmup {
		n := float64(e.samples)
		e.skewPPM = (e.skewPPM*n + sample) / (n + 1)
	} else {
		e.skewPPM = (1-e.alpha)*e.skewPPM + e.alpha*sample
	}
	e.samples++
	e.lastLocalUS, e.lastUnivUS = localUS, univUS

	// Drift from checkpointed smoothed skew over long baselines.
	if !e.haveCkpt {
		e.ckptUnivUS, e.ckptSkew, e.haveCkpt = univUS, e.skewPPM, true
	} else if dt := univUS - e.ckptUnivUS; dt >= driftBaselineUS {
		driftSample := (e.skewPPM - e.ckptSkew) / (float64(dt) / 1e6)
		if e.driftPPS == 0 {
			e.driftPPS = driftSample
		} else {
			e.driftPPS = (1-e.beta)*e.driftPPS + e.beta*driftSample
		}
		e.ckptUnivUS, e.ckptSkew = univUS, e.skewPPM
	}
	return e.skewPPM
}

// SkewPPM returns the current smoothed skew estimate in ppm.
func (e *SkewEstimator) SkewPPM() float64 { return e.skewPPM }

// Samples returns the number of observations consumed.
func (e *SkewEstimator) Samples() int { return e.samples }

// PredictedSkewPPM extrapolates the skew to a universal time atUnivUS using
// the drift estimate.
func (e *SkewEstimator) PredictedSkewPPM(atUnivUS int64) float64 {
	if e.samples < 2 {
		return e.skewPPM
	}
	dtSec := float64(atUnivUS-e.lastUnivUS) / 1e6
	if dtSec < 0 {
		dtSec = 0
	}
	return e.skewPPM + e.driftPPS*dtSec
}

// CorrectionUS converts an elapsed local interval (µs since the last
// synchronization point) into the universal-time correction to subtract:
// a clock running fast by s ppm accumulates s µs of error per second.
func (e *SkewEstimator) CorrectionUS(elapsedLocalUS int64, atUnivUS int64) float64 {
	s := e.PredictedSkewPPM(atUnivUS)
	return float64(elapsedLocalUS) * s * 1e-6
}

// OffsetTracker combines an offset with a SkewEstimator to map a radio's
// local timestamps into universal time. This is the per-radio state the
// unifier maintains: Ti (the offset, continuously corrected at each
// resynchronization) plus the skew/drift model.
type OffsetTracker struct {
	offsetUS   float64 // universal = local + offset (at anchor)
	anchorUS   int64   // local time of the last resync
	lastUnivUS int64   // universal time of the last resync
	est        *SkewEstimator
	resyncs    int

	// Fast-path snapshot, refreshed once per resync rather than evaluated
	// per record: whenever the predicted skew cannot vary between resyncs
	// (estimator disabled, still warming up, or drift estimate exactly
	// zero), the per-record mapping is a single multiply-add on fastSkew
	// with no estimator calls. The snapshot replays the exact float
	// operations of the general path, so results are bit-identical.
	fastSkew float64
	fastPath bool
}

// NewOffsetTracker starts a tracker with the bootstrap offset Ti (µs).
func NewOffsetTracker(offsetUS int64) *OffsetTracker {
	t := &OffsetTracker{offsetUS: float64(offsetUS), est: NewSkewEstimator(0, 0)}
	t.refreshFast()
	return t
}

// refreshFast recomputes the per-resync fast-path snapshot. PredictedSkewPPM
// is constant between resyncs exactly when the estimator is cold (samples <
// 2 returns the raw skew) or its drift term is zero (skew + 0·dt == skew);
// in those states ToUniversal can skip the estimator entirely.
func (t *OffsetTracker) refreshFast() {
	e := t.est
	t.fastPath = e.disabled || e.samples < 2 || e.driftPPS == 0
	t.fastSkew = e.skewPPM
}

// ToUniversal maps a local timestamp to universal time, applying the offset
// and skew-predicted correction since the last resync.
func (t *OffsetTracker) ToUniversal(localUS int64) int64 {
	univ0 := float64(localUS) + t.offsetUS
	if t.fastPath {
		// Same operations, same association as CorrectionUS with a
		// constant predicted skew: (elapsed · s) · 1e-6.
		corr := float64(localUS-t.anchorUS) * t.fastSkew * 1e-6
		return int64(univ0 - corr + 0.5)
	}
	corr := t.est.CorrectionUS(localUS-t.anchorUS, int64(univ0))
	return int64(univ0 - corr + 0.5)
}

// Resync records that a frame with local timestamp localUS was unified into
// a jframe at universal time univUS, snapping the offset so the mapping is
// exact at that point and feeding the skew estimator.
func (t *OffsetTracker) Resync(localUS, univUS int64) {
	t.est.Update(localUS, univUS)
	t.offsetUS = float64(univUS - localUS)
	t.anchorUS = localUS
	t.lastUnivUS = univUS
	t.resyncs++
	t.refreshFast()
}

// LastResyncUnivUS returns the universal time of the latest resync (0 if
// none).
func (t *OffsetTracker) LastResyncUnivUS() int64 { return t.lastUnivUS }

// OffsetUS returns the current local→universal offset in µs.
func (t *OffsetTracker) OffsetUS() int64 { return int64(t.offsetUS) }

// Resyncs returns how many resynchronizations have been applied.
func (t *OffsetTracker) Resyncs() int { return t.resyncs }

// SkewPPM exposes the tracked skew estimate.
func (t *OffsetTracker) SkewPPM() float64 { return t.est.SkewPPM() }

// SetSkewCompensation allows callers to disable skew/drift compensation
// (for the paper's ablation: at scale, synchronization is lost quickly
// without it). When disabled the tracker reduces to pure offset snapping.
func (t *OffsetTracker) SetSkewCompensation(enabled bool) {
	if !enabled {
		e := NewSkewEstimator(0, 0)
		e.disabled = true
		t.est = e
		t.refreshFast()
	}
}
