package clock

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockPerfect(t *testing.T) {
	c := &Clock{}
	for _, ns := range []int64{0, 1e3, 5e9, 3600e9} {
		if got, want := c.LocalUS(ns), ns/1e3; got != want {
			t.Errorf("LocalUS(%d) = %d, want %d", ns, got, want)
		}
	}
}

func TestClockOffset(t *testing.T) {
	c := &Clock{OffsetNS: 2_000_000} // +2 ms
	if got := c.LocalUS(0); got != 2000 {
		t.Errorf("LocalUS(0) = %d, want 2000", got)
	}
}

func TestClockSkewAccumulates(t *testing.T) {
	c := &Clock{SkewPPM: 100} // fast by 100 ppm
	// After 10 true seconds the clock should read ~1000 µs ahead.
	got := c.LocalUS(10e9)
	want := int64(10e6 + 1000)
	if d := got - want; d < -1 || d > 1 {
		t.Errorf("LocalUS(10s) = %d, want %d±1", got, want)
	}
}

func TestClockDrift(t *testing.T) {
	c := &Clock{SkewPPM: 0, DriftPPMH: 10}
	// At t=1h instantaneous skew is 10 ppm; accumulated error over the hour
	// averages ~5 ppm ⇒ well under the error of a constant 10 ppm clock.
	atHour := c.LocalUS(3600e9)
	errUS := atHour - 3600e6
	if errUS <= 0 || errUS > 40000 {
		t.Errorf("drifting clock error after 1h = %d µs", errUS)
	}
	constant := &Clock{SkewPPM: 10}
	if cErr := constant.LocalUS(3600e9) - 3600e6; cErr <= errUS {
		t.Errorf("constant 10 ppm clock (%d µs) should err more than drifting (%d µs)", cErr, errUS)
	}
}

func TestClockMonotonic(t *testing.T) {
	c := &Clock{OffsetNS: -5e6, SkewPPM: -80, DriftPPMH: 3}
	prev := int64(math.MinInt64)
	for ns := int64(0); ns < 60e9; ns += 7e6 {
		l := c.LocalUS(ns)
		if l < prev {
			t.Fatalf("clock ran backwards at t=%dns", ns)
		}
		prev = l
	}
}

func TestTrueNSApproxInverts(t *testing.T) {
	c := &Clock{OffsetNS: 123456, SkewPPM: 42, DriftPPMH: -1}
	for _, ns := range []int64{1e9, 100e9, 3000e9} {
		l := c.LocalUS(ns)
		back := c.TrueNSApprox(l)
		if d := back - ns; d < -2000 || d > 2000 { // within 2 µs
			t.Errorf("TrueNSApprox(LocalUS(%d)) off by %d ns", ns, d)
		}
	}
}

func TestQuickClockOrderPreserved(t *testing.T) {
	// Property: for |skew| ≤ 500 ppm, ordering of events ≥10 µs apart is
	// preserved by any single clock.
	f := func(offRaw int32, skewRaw int16, t1Raw, gapRaw uint32) bool {
		c := &Clock{
			OffsetNS: int64(offRaw),
			SkewPPM:  float64(skewRaw % 500),
		}
		t1 := int64(t1Raw) * 1000
		t2 := t1 + int64(gapRaw%1e6)*1000 + 10_000 // ≥10 µs later
		return c.LocalUS(t2) > c.LocalUS(t1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSkewEstimatorConvergesToTrueSkew(t *testing.T) {
	c := &Clock{SkewPPM: 37}
	est := NewSkewEstimator(0.1, 0.05)
	// Feed (local, universal) pairs every 100 ms of universal time.
	for i := int64(0); i < 600; i++ {
		univUS := i * 100_000
		localUS := c.LocalUS(univUS * 1000)
		est.Update(localUS, univUS)
	}
	if got := est.SkewPPM(); math.Abs(got-37) > 2 {
		t.Errorf("estimated skew = %.2f ppm, want ≈37", got)
	}
}

func TestSkewEstimatorIgnoresOutOfOrder(t *testing.T) {
	est := NewSkewEstimator(0.1, 0.05)
	est.Update(0, 0)
	est.Update(100_000, 100_000)
	before := est.SkewPPM()
	est.Update(50_000, 50_000) // goes backwards; must be ignored
	if est.SkewPPM() != before {
		t.Error("out-of-order sample changed the estimate")
	}
}

func TestSkewEstimatorClipsOutliers(t *testing.T) {
	est := NewSkewEstimator(0.5, 0.05)
	est.Update(0, 0)
	est.Update(200_000, 100_000) // 100% fast = 1e6 ppm: absurd, must clip
	if got := est.SkewPPM(); got > 1000 {
		t.Errorf("outlier not clipped: %f ppm", got)
	}
}

func TestSkewEstimatorDriftPrediction(t *testing.T) {
	c := &Clock{SkewPPM: 10, DriftPPMH: 60} // +1 ppm per minute
	est := NewSkewEstimator(0.2, 0.1)
	var univUS int64
	for i := int64(0); i < 1200; i++ { // 2 minutes of 100 ms samples
		univUS = i * 100_000
		est.Update(c.LocalUS(univUS*1000), univUS)
	}
	// Predict 10 s ahead: true skew there ≈ 10 + 60*(130/3600) ≈ 12.2 ppm.
	pred := est.PredictedSkewPPM(univUS + 10e6)
	now := est.SkewPPM()
	if pred < now {
		t.Errorf("drift is positive but prediction (%f) below current (%f)", pred, now)
	}
}

func TestCorrectionUS(t *testing.T) {
	est := NewSkewEstimator(1.0, 0.1)
	est.Update(0, 0)
	est.Update(1_000_050, 1_000_000) // 50 ppm fast
	// Over the next second of local time the clock gains ~50 µs.
	corr := est.CorrectionUS(1_000_000, 2_000_000)
	if corr < 40 || corr > 60 {
		t.Errorf("correction = %f µs, want ≈50", corr)
	}
}

func TestOffsetTrackerExactAtResync(t *testing.T) {
	tr := NewOffsetTracker(500)
	tr.Resync(1000, 1700)
	if got := tr.ToUniversal(1000); got != 1700 {
		t.Errorf("mapping not exact at resync point: %d", got)
	}
	if tr.OffsetUS() != 700 {
		t.Errorf("offset = %d, want 700", tr.OffsetUS())
	}
	if tr.Resyncs() != 1 {
		t.Errorf("resyncs = %d", tr.Resyncs())
	}
}

func TestOffsetTrackerTracksSkewedClock(t *testing.T) {
	c := &Clock{OffsetNS: 3e6, SkewPPM: 55}
	tr := NewOffsetTracker(0)
	// Resync on every "beacon" for 30 s, then coast for 1 s.
	var univUS int64
	for i := int64(0); i <= 300; i++ {
		univUS = i * 100_000
		tr.Resync(c.LocalUS(univUS*1000), univUS)
	}
	// Coast: predict placement of a frame 1 s later.
	futureUniv := univUS + 1_000_000
	local := c.LocalUS(futureUniv * 1000)
	got := tr.ToUniversal(local)
	if d := got - futureUniv; d < -5 || d > 5 {
		t.Errorf("coasted mapping off by %d µs (want |d| ≤ 5)", d)
	}
}

func TestOffsetTrackerWithoutCompensationDrifts(t *testing.T) {
	c := &Clock{SkewPPM: 55}
	mk := func(comp bool) int64 {
		tr := NewOffsetTracker(0)
		tr.SetSkewCompensation(comp)
		var univUS int64
		for i := int64(0); i <= 300; i++ {
			univUS = i * 100_000
			tr.Resync(c.LocalUS(univUS*1000), univUS)
		}
		future := univUS + 1_000_000
		d := tr.ToUniversal(c.LocalUS(future*1000)) - future
		if d < 0 {
			d = -d
		}
		return d
	}
	with, without := mk(true), mk(false)
	if with >= without {
		t.Errorf("skew compensation should reduce coast error: with=%d without=%d", with, without)
	}
	if without < 40 { // 55 ppm over 1 s ≈ 55 µs error
		t.Errorf("uncompensated coast error = %d µs, expected ≈55", without)
	}
}

func TestQuickOffsetTrackerConsistency(t *testing.T) {
	// Property: after a resync at (l,u), ToUniversal(l) == u exactly, for
	// any prior history.
	f := func(hist []uint32, l0 uint32, u0 uint32) bool {
		tr := NewOffsetTracker(0)
		var lu, uu int64
		for _, h := range hist {
			lu += int64(h%100_000) + 1
			uu += int64(h%100_000) + 1
			tr.Resync(lu, uu)
		}
		l, u := lu+int64(l0%1e6)+1, uu+int64(u0%1e6)+1
		tr.Resync(l, u)
		return tr.ToUniversal(l) == u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
