package radio

import (
	"testing"

	"repro/internal/building"
	"repro/internal/dot80211"
	"repro/internal/sim"
)

// collector records everything a node hears.
type collector struct {
	NopListener
	rx   []RxInfo
	busy int
	idle int
}

func (c *collector) OnReceive(i RxInfo)            { c.rx = append(c.rx, i) }
func (c *collector) OnMediumBusy(NodeID, sim.Time) { c.busy++ }
func (c *collector) OnMediumIdle()                 { c.idle++ }

func testMedium(seed int64) (*sim.Engine, *Medium) {
	eng := sim.NewEngine(seed)
	return eng, NewMedium(eng, NewPropagation(seed))
}

func wireData(seq uint16, body int) []byte {
	f := dot80211.NewData(
		dot80211.MAC{2, 0, 0, 0, 0, 2}, dot80211.MAC{2, 0, 0, 0, 0, 1},
		dot80211.MAC{2, 0, 0, 0, 0, 9}, seq, make([]byte, body))
	return f.Encode()
}

func TestCloseReceiverDecodes(t *testing.T) {
	eng, m := testMedium(1)
	rx := &collector{}
	m.Register(1, building.Point{X: 0, Y: 0, Z: 2}, 1, NopListener{}, false)
	m.Register(2, building.Point{X: 5, Y: 0, Z: 2}, 1, rx, false)
	m.FloorLossProb = 0 // determinism for this test
	m.Transmit(1, 1, dot80211.Rate11Mbps, dot80211.LongPreamble, wireData(1, 100))
	eng.Run(sim.Second)
	if len(rx.rx) != 1 {
		t.Fatalf("got %d receptions, want 1", len(rx.rx))
	}
	if rx.rx[0].Outcome != RxOK {
		t.Errorf("outcome = %v, want ok (rssi=%.1f)", rx.rx[0].Outcome, rx.rx[0].RSSIdBm)
	}
	if _, err := dot80211.Decode(rx.rx[0].Bytes); err != nil {
		t.Errorf("delivered frame does not decode: %v", err)
	}
}

func TestFarReceiverHearsNothing(t *testing.T) {
	eng, m := testMedium(1)
	rx := &collector{}
	m.Register(1, building.Point{X: 0, Y: 0, Z: 2}, 1, NopListener{}, false)
	// Other end of the building, three floors up: far below detect floor.
	m.Register(2, building.Point{X: 110, Y: 28, Z: 14}, 1, rx, false)
	m.Transmit(1, 1, dot80211.Rate11Mbps, dot80211.LongPreamble, wireData(1, 100))
	eng.Run(sim.Second)
	if len(rx.rx) != 0 {
		t.Errorf("distant radio heard %d receptions (rssi=%.1f)", len(rx.rx), rx.rx[0].RSSIdBm)
	}
}

func TestCrossChannelIsolation(t *testing.T) {
	eng, m := testMedium(1)
	rx := &collector{}
	m.Register(1, building.Point{X: 0, Y: 0, Z: 2}, 1, NopListener{}, false)
	m.Register(2, building.Point{X: 3, Y: 0, Z: 2}, 11, rx, false)
	m.Transmit(1, 1, dot80211.Rate11Mbps, dot80211.LongPreamble, wireData(1, 100))
	eng.Run(sim.Second)
	if len(rx.rx) != 0 {
		t.Error("channel 11 radio heard channel 1 frame")
	}
}

func TestCarrierSenseTransitions(t *testing.T) {
	eng, m := testMedium(1)
	cs := &collector{}
	m.Register(1, building.Point{X: 0, Y: 0, Z: 2}, 1, NopListener{}, false)
	m.Register(2, building.Point{X: 8, Y: 0, Z: 2}, 1, cs, false)
	m.Transmit(1, 1, dot80211.Rate11Mbps, dot80211.LongPreamble, wireData(1, 500))
	if !m.Busy(2) {
		t.Error("nearby node should sense the transmission")
	}
	eng.Run(sim.Second)
	if cs.busy != 1 || cs.idle != 1 {
		t.Errorf("busy=%d idle=%d, want 1/1", cs.busy, cs.idle)
	}
	if m.Busy(2) {
		t.Error("medium still busy after end")
	}
}

func TestLegacyBCannotSenseOFDM(t *testing.T) {
	eng, m := testMedium(1)
	b := &collector{}
	g := &collector{}
	m.Register(1, building.Point{X: 0, Y: 0, Z: 2}, 1, NopListener{}, false)
	m.Register(2, building.Point{X: 5, Y: 0, Z: 2}, 1, b, true)  // legacy 11b
	m.Register(3, building.Point{X: 5, Y: 2, Z: 2}, 1, g, false) // 11g
	m.Transmit(1, 1, dot80211.Rate54Mbps, dot80211.LongPreamble, wireData(1, 500))
	if m.Busy(2) {
		t.Error("legacy b node must not carrier-sense OFDM")
	}
	if !m.Busy(3) {
		t.Error("g node should carrier-sense OFDM")
	}
	eng.Run(sim.Second)
	if b.busy != 0 {
		t.Error("legacy b got busy notification for OFDM")
	}
	// The b node still sees undecodable energy as a phy error.
	if len(b.rx) != 1 || b.rx[0].Outcome != RxPhyError {
		t.Errorf("legacy b rx = %+v, want one phy error", b.rx)
	}
	if len(g.rx) != 1 || g.rx[0].Outcome != RxOK {
		t.Errorf("g rx = %+v, want clean decode", g.rx)
	}
}

func TestInterferenceCorruptsOverlap(t *testing.T) {
	eng, m := testMedium(3)
	rx := &collector{}
	m.FloorLossProb = 0
	// Receiver in the middle; two transmitters either side ("hidden" from
	// each other is irrelevant here — we force the overlap directly).
	m.Register(1, building.Point{X: 0, Y: 0, Z: 2}, 1, NopListener{}, false)
	m.Register(2, building.Point{X: 40, Y: 0, Z: 2}, 1, NopListener{}, false)
	m.Register(3, building.Point{X: 20, Y: 0, Z: 2}, 1, rx, false)

	// Without interference: clean.
	m.Transmit(1, 1, dot80211.Rate11Mbps, dot80211.LongPreamble, wireData(1, 800))
	eng.Run(20 * sim.Millisecond)
	if len(rx.rx) != 1 || rx.rx[0].Outcome != RxOK {
		t.Fatalf("baseline reception not clean: %+v", rx.rx)
	}
	rx.rx = nil

	// With a simultaneous equal-power transmission: SINR ≈ 0 dB ⇒ corrupt.
	eng.After(0, func() {
		m.Transmit(1, 1, dot80211.Rate11Mbps, dot80211.LongPreamble, wireData(2, 800))
		m.Transmit(2, 1, dot80211.Rate11Mbps, dot80211.LongPreamble, wireData(3, 800))
	})
	eng.Run(40 * sim.Millisecond)
	if len(rx.rx) != 2 {
		t.Fatalf("got %d receptions, want 2", len(rx.rx))
	}
	for _, r := range rx.rx {
		if r.Outcome == RxOK {
			t.Errorf("overlapping equal-power frames decoded cleanly (SINR should be ~0): %+v", r)
		}
	}
}

func TestCaptureStrongerWins(t *testing.T) {
	eng, m := testMedium(3)
	rx := &collector{}
	m.FloorLossProb = 0
	// Strong transmitter adjacent to receiver, weak one far away.
	m.Register(1, building.Point{X: 19, Y: 0, Z: 2}, 1, NopListener{}, false)
	m.Register(2, building.Point{X: 90, Y: 20, Z: 2}, 1, NopListener{}, false)
	m.Register(3, building.Point{X: 20, Y: 0, Z: 2}, 1, rx, false)
	m.Transmit(1, 1, dot80211.Rate11Mbps, dot80211.LongPreamble, wireData(1, 800))
	m.Transmit(2, 1, dot80211.Rate11Mbps, dot80211.LongPreamble, wireData(2, 800))
	eng.Run(sim.Second)
	var strongOK bool
	for _, r := range rx.rx {
		if r.Src == 1 && r.Outcome == RxOK {
			strongOK = true
		}
	}
	if !strongOK {
		t.Errorf("capture effect failed: %+v", rx.rx)
	}
}

func TestNoiseBurstIsPhyError(t *testing.T) {
	eng, m := testMedium(1)
	rx := &collector{}
	m.Register(1, building.Point{X: 0, Y: 0, Z: 2}, 1, NopListener{}, false)
	m.Register(2, building.Point{X: 5, Y: 0, Z: 2}, 1, rx, false)
	m.EmitNoise(1, 20, 1, 10*sim.Millisecond)
	eng.Run(sim.Second)
	if len(rx.rx) != 1 || rx.rx[0].Outcome != RxPhyError {
		t.Errorf("noise burst rx = %+v, want one phy error", rx.rx)
	}
	if rx.rx[0].Bytes != nil {
		t.Error("noise has no frame bytes")
	}
}

func TestCorruptedFrameFailsFCS(t *testing.T) {
	eng, m := testMedium(9)
	rx := &collector{}
	m.FloorLossProb = 1.0 // force corruption on an otherwise perfect link
	m.Register(1, building.Point{X: 0, Y: 0, Z: 2}, 1, NopListener{}, false)
	m.Register(2, building.Point{X: 5, Y: 0, Z: 2}, 1, rx, false)
	m.Transmit(1, 1, dot80211.Rate11Mbps, dot80211.LongPreamble, wireData(7, 200))
	eng.Run(sim.Second)
	if len(rx.rx) != 1 || rx.rx[0].Outcome != RxCorrupt {
		t.Fatalf("rx = %+v, want corrupt", rx.rx)
	}
	if _, err := dot80211.Decode(rx.rx[0].Bytes); err == nil {
		t.Error("corrupted frame decoded with valid FCS")
	}
}

func TestGroundTruthHook(t *testing.T) {
	eng, m := testMedium(1)
	m.Register(1, building.Point{X: 0, Y: 0, Z: 2}, 1, NopListener{}, false)
	var recs []TxRecord
	m.OnTransmit = func(r TxRecord) { recs = append(recs, r) }
	id := m.Transmit(1, 1, dot80211.Rate11Mbps, dot80211.LongPreamble, wireData(1, 64))
	eng.Run(sim.Second)
	if len(recs) != 1 || recs[0].ID != id || recs[0].Src != 1 {
		t.Errorf("ground truth records = %+v", recs)
	}
	if recs[0].End <= recs[0].Start {
		t.Error("transmission has no duration")
	}
}

func TestAirtimeMatchesPHY(t *testing.T) {
	eng, m := testMedium(1)
	m.Register(1, building.Point{X: 0, Y: 0, Z: 2}, 1, NopListener{}, false)
	var rec TxRecord
	m.OnTransmit = func(r TxRecord) { rec = r }
	wire := wireData(1, 1400)
	m.Transmit(1, 1, dot80211.Rate54Mbps, dot80211.LongPreamble, wire)
	eng.Run(sim.Second)
	want := sim.US(int64(dot80211.AirtimeUS(len(wire), dot80211.Rate54Mbps, dot80211.LongPreamble)))
	if rec.End-rec.Start != want {
		t.Errorf("airtime = %v, want %v", rec.End-rec.Start, want)
	}
}

func TestShadowingDeterministicAndSymmetric(t *testing.T) {
	p1 := NewPropagation(11)
	p2 := NewPropagation(11)
	a, b := building.Point{X: 0, Y: 0, Z: 2}, building.Point{X: 30, Y: 10, Z: 2}
	l1 := p1.PathLossDB(1, 2, a, b)
	l2 := p2.PathLossDB(1, 2, a, b)
	if l1 != l2 {
		t.Error("shadowing not deterministic across instances")
	}
	if p1.PathLossDB(2, 1, b, a) != l1 {
		t.Error("path loss not reciprocal")
	}
	p3 := NewPropagation(12)
	if p3.PathLossDB(1, 2, a, b) == l1 {
		t.Error("different seeds should shadow differently")
	}
}

func TestPathLossIncreasesWithDistance(t *testing.T) {
	p := NewPropagation(0)
	a := building.Point{X: 0, Y: 0, Z: 2}
	prev := -1.0
	for _, d := range []float64{1, 5, 10, 20, 50, 100} {
		// Use the same node pair so shadowing is constant.
		l := p.PathLossDB(1, 2, a, building.Point{X: d, Y: 0, Z: 2})
		if l <= prev {
			t.Errorf("loss at %fm (%f) not greater than previous (%f)", d, l, prev)
		}
		prev = l
	}
}

func TestRegisterSetChannelPosition(t *testing.T) {
	_, m := testMedium(1)
	m.Register(5, building.Point{X: 1, Y: 1, Z: 2}, 6, NopListener{}, false)
	if m.NodeChannel(5) != 6 {
		t.Error("NodeChannel")
	}
	m.SetChannel(5, 11)
	if m.NodeChannel(5) != 11 {
		t.Error("SetChannel")
	}
	m.SetPosition(5, building.Point{X: 50, Y: 1, Z: 2})
	if m.NodeChannel(99) != 0 {
		t.Error("unknown node should report channel 0")
	}
}
