// Package radio models 2.4 GHz indoor propagation and the shared wireless
// medium: who hears whom, at what signal strength, and what happens when
// transmissions overlap.
//
// This package is the substitute for the paper's physical layer. Its job is
// to reproduce the *phenomena* Jigsaw contends with: spatial diversity (no
// monitor hears everything), corrupted and truncated receptions, physical
// error events, co-channel interference from hidden terminals, and 802.11b
// radios that cannot sense OFDM transmissions. Magnitudes are tuned so the
// monitoring platform's coverage matches the paper's §6 measurements.
package radio

import (
	"math"
	"math/rand"

	"repro/internal/building"
	"repro/internal/dot80211"
)

// NodeID identifies a radio endpoint on the medium: a station, an AP radio,
// or a monitor radio.
type NodeID int32

// Propagation constants. Log-distance path loss with wall/floor attenuation
// and per-link lognormal shadowing — the standard indoor model.
const (
	RefLossDB       = 40.0 // path loss at 1 m, 2.4 GHz
	PathLossExp     = 3.0  // indoor with obstructions
	WallLossDB      = 4.0  // per interior wall
	MaxWallsCounted = 5    // diffraction: far walls stop adding loss
	FloorLossDB     = 13.0 // per concrete slab
	ShadowSigmaDB   = 6.0  // lognormal shadowing std dev per link

	NoiseFloorDBm    = -96.0
	DetectFloorDBm   = -94.0 // below this, energy is invisible
	PreambleFloorDBm = -91.0 // above this, a frame header is recoverable
	CarrierSenseDBm  = -82.0 // physical carrier sense threshold

	APTxPowerDBm     = 18.0
	ClientTxPowerDBm = 15.0
)

// snrThresholdDB maps a rate to the SINR (dB) needed to decode its payload.
var snrThresholdDB = map[dot80211.Rate]float64{
	dot80211.Rate1Mbps: 4, dot80211.Rate2Mbps: 6,
	dot80211.Rate5_5: 8, dot80211.Rate11Mbps: 10,
	dot80211.Rate6Mbps: 8, dot80211.Rate9Mbps: 9,
	dot80211.Rate12Mbps: 11, dot80211.Rate18Mbps: 13,
	dot80211.Rate24Mbps: 16, dot80211.Rate36Mbps: 20,
	dot80211.Rate48Mbps: 24, dot80211.Rate54Mbps: 26,
}

// SNRThresholdDB returns the decode threshold for a rate.
func SNRThresholdDB(r dot80211.Rate) float64 {
	if t, ok := snrThresholdDB[r]; ok {
		return t
	}
	return 26
}

// Propagation computes path loss between positions, memoizing per-link
// shadowing so a link's quality is stable across a run (slow fading is out
// of scope; the paper's inference problems come from topology, not fast
// fading).
type Propagation struct {
	seed    int64
	shadows map[[2]NodeID]float64
}

// NewPropagation creates a propagation model whose shadowing draws derive
// deterministically from seed.
func NewPropagation(seed int64) *Propagation {
	return &Propagation{seed: seed, shadows: make(map[[2]NodeID]float64)}
}

// shadowing returns the reciprocal per-link shadowing term in dB.
func (p *Propagation) shadowing(a, b NodeID) float64 {
	if a > b {
		a, b = b, a
	}
	k := [2]NodeID{a, b}
	if s, ok := p.shadows[k]; ok {
		return s
	}
	h := int64(a)*int64(-0x61c8864680b583eb) ^ int64(b)*int64(-0x3d4d51c2d82b14b1) ^ p.seed
	rng := rand.New(rand.NewSource(h))
	s := rng.NormFloat64() * ShadowSigmaDB
	p.shadows[k] = s
	return s
}

// PathLossDB returns the loss in dB between two positions for the link
// (a, b), including distance, wall, floor and shadowing terms.
func (p *Propagation) PathLossDB(a, b NodeID, pa, pb building.Point) float64 {
	d := pa.Distance(pb)
	if d < 1 {
		d = 1
	}
	walls, floors := building.WallsBetween(pa, pb)
	if walls > MaxWallsCounted {
		walls = MaxWallsCounted
	}
	loss := RefLossDB + 10*PathLossExp*math.Log10(d) +
		float64(walls)*WallLossDB + float64(floors)*FloorLossDB +
		p.shadowing(a, b)
	if loss < RefLossDB {
		loss = RefLossDB
	}
	return loss
}

// RSSIdBm returns the received signal strength at b for a transmission from
// a at txPowerDBm.
func (p *Propagation) RSSIdBm(a, b NodeID, pa, pb building.Point, txPowerDBm float64) float64 {
	return txPowerDBm - p.PathLossDB(a, b, pa, pb)
}

// dbmToMW converts dBm to linear milliwatts.
func dbmToMW(dbm float64) float64 { return math.Pow(10, dbm/10) }

// mwToDBm converts linear milliwatts to dBm.
func mwToDBm(mw float64) float64 {
	if mw <= 0 {
		return -200
	}
	return 10 * math.Log10(mw)
}
