package radio

import (
	"math/rand"

	"repro/internal/building"
	"repro/internal/dot80211"
	"repro/internal/sim"
)

// RxOutcome classifies what a receiver got from one transmission.
type RxOutcome uint8

// Outcomes, in decreasing order of fidelity.
const (
	RxOK       RxOutcome = iota // frame decoded, FCS valid
	RxCorrupt                   // header recovered, payload damaged (FCS fails)
	RxPhyError                  // energy detected, nothing decodable
	RxNothing                   // below detection floor
)

// String names the outcome.
func (o RxOutcome) String() string {
	switch o {
	case RxOK:
		return "ok"
	case RxCorrupt:
		return "corrupt"
	case RxPhyError:
		return "phyerr"
	default:
		return "nothing"
	}
}

// RxInfo describes one reception event delivered to a listener.
type RxInfo struct {
	Src     NodeID
	Start   sim.Time // true time the transmission began
	End     sim.Time // true time it ended
	Channel dot80211.Channel
	Rate    dot80211.Rate
	RSSIdBm float64
	Outcome RxOutcome
	Bytes   []byte // wire bytes; damaged copy when Outcome==RxCorrupt; nil for phy errors
	TxID    uint64 // unique id of the physical transmission (ground truth key)
}

// Listener receives frames (monitors) and medium busy/idle transitions
// (MAC carrier sense). A node's listener methods are invoked synchronously
// from the simulation loop.
type Listener interface {
	// OnReceive delivers the outcome of a transmission at its end time.
	OnReceive(info RxInfo)
	// OnMediumBusy signals that a transmission this node can physically
	// sense began; until is its scheduled end.
	OnMediumBusy(src NodeID, until sim.Time)
	// OnMediumIdle signals the sensed transmission count returned to zero.
	OnMediumIdle()
}

// NopListener implements Listener with no-ops for embedding.
type NopListener struct{}

func (NopListener) OnReceive(RxInfo)              {}
func (NopListener) OnMediumBusy(NodeID, sim.Time) {}
func (NopListener) OnMediumIdle()                 {}

// node is the medium's registry entry for one radio endpoint.
type node struct {
	id       NodeID
	pos      building.Point
	channel  dot80211.Channel
	listener Listener
	legacyB  bool // 802.11b-only PHY: cannot sense or decode OFDM
	sensing  int  // count of currently-sensed transmissions
}

// transmission is one in-flight frame on the medium.
type transmission struct {
	id      uint64
	src     NodeID
	pos     building.Point
	power   float64
	channel dot80211.Channel
	rate    dot80211.Rate
	bytes   []byte
	start   sim.Time
	end     sim.Time
	noise   bool // broadband noise burst (microwave oven), not a frame
	// interfMW accumulates, per potential receiver, the linear power of all
	// transmissions that overlapped this one.
	interfMW map[NodeID]float64
	// sensedBy records which nodes incremented their carrier-sense count at
	// start, so the decrement at end stays balanced even if nodes retune.
	sensedBy []NodeID
}

// Medium is the shared wireless channel. All transmissions flow through it;
// it computes per-receiver outcomes using the propagation model and SINR,
// and drives carrier sense at every registered node.
type Medium struct {
	eng   *sim.Engine
	prop  *Propagation
	rng   *rand.Rand
	nodes map[NodeID]*node
	// order preserves registration order so per-node iteration (and hence
	// RNG consumption) is deterministic across runs.
	order []*node
	// active transmissions by channel-overlap groups; small, scanned linearly.
	active []*transmission
	nextTx uint64

	// FloorLossProb is the residual loss probability applied even at high
	// SINR (multipath fades the model doesn't capture). Tuned so good links
	// see ~1% frame loss, contributing the paper's 0.12 average background
	// transmission loss rate together with marginal links.
	FloorLossProb float64

	// Ground-truth hook: invoked for every physical transmission. The
	// scenario layer uses it to build the oracle trace.
	OnTransmit func(tx TxRecord)
}

// TxRecord is the ground-truth record of one physical transmission.
type TxRecord struct {
	ID      uint64
	Src     NodeID
	Channel dot80211.Channel
	Rate    dot80211.Rate
	Start   sim.Time
	End     sim.Time
	Bytes   []byte
	Noise   bool
}

// NewMedium creates a medium over the given engine and propagation model.
func NewMedium(eng *sim.Engine, prop *Propagation) *Medium {
	return &Medium{
		eng:           eng,
		prop:          prop,
		rng:           eng.NewStream(0x6d656469),
		nodes:         make(map[NodeID]*node),
		FloorLossProb: 0.01,
	}
}

// Register adds a radio endpoint. legacyB marks 802.11b-only PHYs, which
// cannot sense OFDM transmissions (the root cause of protection mode, §2).
func (m *Medium) Register(id NodeID, pos building.Point, ch dot80211.Channel, l Listener, legacyB bool) {
	if old, ok := m.nodes[id]; ok {
		// Re-registration (e.g. a placement probe upgraded to a real
		// station): update in place so the iteration order holds a single
		// entry per node.
		old.pos, old.channel, old.listener, old.legacyB = pos, ch, l, legacyB
		return
	}
	n := &node{id: id, pos: pos, channel: ch, listener: l, legacyB: legacyB}
	m.nodes[id] = n
	m.order = append(m.order, n)
}

// SetChannel retunes a registered node (monitors scanning, clients roaming).
func (m *Medium) SetChannel(id NodeID, ch dot80211.Channel) {
	if n, ok := m.nodes[id]; ok {
		n.channel = ch
	}
}

// SetPosition moves a node (client mobility).
func (m *Medium) SetPosition(id NodeID, pos building.Point) {
	if n, ok := m.nodes[id]; ok {
		n.pos = pos
	}
}

// NodeChannel returns the channel a node is tuned to.
func (m *Medium) NodeChannel(id NodeID) dot80211.Channel {
	if n, ok := m.nodes[id]; ok {
		return n.channel
	}
	return 0
}

// canSense reports whether node n physically senses transmission t: tuned
// to an overlapping channel, power above the carrier-sense threshold, and
// the PHY able to detect the modulation.
func (m *Medium) canSense(n *node, t *transmission) (bool, float64) {
	if n.id == t.src || !n.channel.Overlaps(t.channel) {
		return false, 0
	}
	rssi := m.prop.RSSIdBm(t.src, n.id, t.pos, n.pos, t.power)
	if n.legacyB && t.rate.IsOFDM() {
		// Legacy CCK PHYs fail to defer to OFDM frames (the 802.11g
		// protection problem): no carrier sense regardless of power.
		return false, rssi
	}
	if t.noise {
		// Broadband noise trips energy detect at a higher threshold.
		return rssi >= CarrierSenseDBm+6, rssi
	}
	return rssi >= CarrierSenseDBm, rssi
}

// Busy reports whether node id currently senses any transmission
// (physical carrier sense only; NAV is the MAC's business).
func (m *Medium) Busy(id NodeID) bool {
	n, ok := m.nodes[id]
	if !ok {
		return false
	}
	return n.sensing > 0
}

// Transmit puts a frame on the air from src at client power. Returns the
// transmission id. The frame is delivered to each listener at end time with
// a per-receiver outcome; busy/idle transitions fire at start and end.
func (m *Medium) Transmit(src NodeID, ch dot80211.Channel, rate dot80211.Rate, pre dot80211.Preamble, wire []byte) uint64 {
	n, ok := m.nodes[src]
	if !ok {
		return 0
	}
	return m.transmit(src, n.pos, ClientTxPowerDBm, ch, rate, pre, wire, false, 0)
}

// TransmitFrom is Transmit with explicit power (APs transmit hotter).
func (m *Medium) TransmitFrom(src NodeID, powerDBm float64, ch dot80211.Channel, rate dot80211.Rate, pre dot80211.Preamble, wire []byte) uint64 {
	n, ok := m.nodes[src]
	if !ok {
		return 0
	}
	return m.transmit(src, n.pos, powerDBm, ch, rate, pre, wire, false, 0)
}

// EmitNoise injects a broadband noise burst (e.g. a microwave oven) from a
// position for the given duration. Noise raises the interference floor for
// overlapping receptions and appears at monitors as physical-error events.
func (m *Medium) EmitNoise(src NodeID, powerDBm float64, ch dot80211.Channel, dur sim.Time) uint64 {
	n, ok := m.nodes[src]
	if !ok {
		return 0
	}
	return m.transmit(src, n.pos, powerDBm, ch, 0, dot80211.LongPreamble, nil, true, dur)
}

func (m *Medium) transmit(src NodeID, pos building.Point, power float64, ch dot80211.Channel,
	rate dot80211.Rate, pre dot80211.Preamble, wire []byte, noise bool, noiseDur sim.Time) uint64 {

	now := m.eng.Now()
	var dur sim.Time
	if noise {
		dur = noiseDur
	} else {
		dur = sim.US(int64(dot80211.AirtimeUS(len(wire), rate, pre)))
	}
	m.nextTx++
	t := &transmission{
		id: m.nextTx, src: src, pos: pos, power: power, channel: ch,
		rate: rate, bytes: wire, start: now, end: now + dur, noise: noise,
		interfMW: make(map[NodeID]float64),
	}

	if m.OnTransmit != nil {
		m.OnTransmit(TxRecord{
			ID: t.id, Src: src, Channel: ch, Rate: rate,
			Start: t.start, End: t.end, Bytes: wire, Noise: noise,
		})
	}

	// Cross-accumulate interference with every overlapping active tx.
	for _, o := range m.active {
		if !o.channel.Overlaps(t.channel) {
			continue
		}
		for _, rx := range m.order {
			// o's receivers gain interference from t; t's from o.
			o.interfMW[rx.id] += dbmToMW(m.prop.RSSIdBm(t.src, rx.id, t.pos, rx.pos, t.power))
			t.interfMW[rx.id] += dbmToMW(m.prop.RSSIdBm(o.src, rx.id, o.pos, rx.pos, o.power))
		}
	}
	m.active = append(m.active, t)

	// Carrier-sense busy notifications.
	for _, rx := range m.order {
		if ok, _ := m.canSense(rx, t); ok {
			rx.sensing++
			t.sensedBy = append(t.sensedBy, rx.id)
			rx.listener.OnMediumBusy(src, t.end)
		}
	}

	m.eng.At(t.end, func() { m.finish(t) })
	return t.id
}

// finish completes a transmission: compute per-receiver outcomes, deliver
// frames, and fire idle transitions.
func (m *Medium) finish(t *transmission) {
	// Remove from active list.
	for i, o := range m.active {
		if o == t {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	for _, id := range t.sensedBy {
		rx, ok := m.nodes[id]
		if !ok {
			continue
		}
		rx.sensing--
		if rx.sensing <= 0 {
			rx.sensing = 0
			rx.listener.OnMediumIdle()
		}
	}
	for _, rx := range m.order {
		m.deliver(rx, t)
	}
}

// deliver computes the outcome of transmission t at receiver rx and invokes
// the listener when there is anything to observe.
func (m *Medium) deliver(rx *node, t *transmission) {
	if rx.id == t.src || !rx.channel.Overlaps(t.channel) {
		return
	}
	rssi := m.prop.RSSIdBm(t.src, rx.id, t.pos, rx.pos, t.power)
	if rssi < DetectFloorDBm {
		return // invisible
	}
	info := RxInfo{
		Src: t.src, Start: t.start, End: t.end, Channel: t.channel,
		Rate: t.rate, RSSIdBm: rssi, TxID: t.id,
	}
	if t.noise {
		info.Outcome = RxPhyError
		rx.listener.OnReceive(info)
		return
	}
	if rx.legacyB && t.rate.IsOFDM() {
		// A CCK PHY sees an OFDM frame only as undecodable energy.
		info.Outcome = RxPhyError
		rx.listener.OnReceive(info)
		return
	}

	nPlusI := dbmToMW(NoiseFloorDBm) + t.interfMW[rx.id]
	sinrDB := rssi - mwToDBm(nPlusI)

	margin := sinrDB - SNRThresholdDB(t.rate)
	switch {
	case margin >= 5:
		if m.rng.Float64() < m.FloorLossProb {
			info.Outcome = RxCorrupt
		} else {
			info.Outcome = RxOK
		}
	case margin >= 0:
		// Linear success ramp over the 5 dB transition region.
		if m.rng.Float64() < margin/5*(1-m.FloorLossProb) {
			info.Outcome = RxOK
		} else {
			info.Outcome = RxCorrupt
		}
	default:
		if rssi >= PreambleFloorDBm {
			info.Outcome = RxCorrupt
		} else {
			info.Outcome = RxPhyError
		}
	}

	switch info.Outcome {
	case RxOK:
		info.Bytes = t.bytes
	case RxCorrupt:
		info.Bytes = m.corrupt(t.bytes)
	}
	rx.listener.OnReceive(info)
}

// corrupt returns a damaged copy of wire bytes: random byte flips and
// possible truncation, as a real capture of a frame that failed its FCS.
func (m *Medium) corrupt(wire []byte) []byte {
	if len(wire) == 0 {
		return nil
	}
	n := len(wire)
	if m.rng.Float64() < 0.3 && n > 12 {
		// Truncation: reception died partway through.
		n = 12 + m.rng.Intn(n-12)
	}
	c := make([]byte, n)
	copy(c, wire[:n])
	flips := 1 + m.rng.Intn(4)
	for i := 0; i < flips; i++ {
		c[m.rng.Intn(n)] ^= byte(1 << m.rng.Intn(8))
	}
	return c
}

// RSSIBetween exposes the link budget for diagnostics and placement tests.
func (m *Medium) RSSIBetween(a, b NodeID, powerDBm float64) float64 {
	na, nb := m.nodes[a], m.nodes[b]
	if na == nil || nb == nil {
		return -200
	}
	return m.prop.RSSIdBm(a, b, na.pos, nb.pos, powerDBm)
}
