package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/tracefile"
	"repro/internal/transport"
	"repro/internal/unify"
)

// jfDigest hashes the jframe stream a pipeline run emits — universal
// timestamp, wire bytes, rate, channel, validity and every instance — so
// two runs can be compared byte for byte without retaining the frames.
type jfDigest struct {
	h interface {
		Write(p []byte) (int, error)
		Sum(b []byte) []byte
	}
}

func newJFDigest() *jfDigest { return &jfDigest{h: sha256.New()} }

func (d *jfDigest) observe(j *unify.JFrame) {
	var b [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		d.h.Write(b[:])
	}
	put(j.UnivUS)
	put(int64(j.Rate))
	put(int64(j.Channel))
	put(int64(j.WireLen))
	put(j.DispersionUS)
	flags := int64(0)
	if j.Valid {
		flags |= 1
	}
	if j.PhyOnly {
		flags |= 2
	}
	put(flags)
	put(int64(len(j.Wire)))
	d.h.Write(j.Wire)
	for _, in := range j.Instances {
		put(int64(in.Radio))
		put(in.LocalUS)
		put(in.UnivUS)
		put(int64(in.RSSIdBm))
	}
}

func (d *jfDigest) sum() string { return fmt.Sprintf("%x", d.h.Sum(nil)) }

// writeTraceDir spills a scenario's in-memory traces to a temp directory in
// the trace-directory layout, returning a directory-backed TraceSet.
func writeTraceDir(t *testing.T, out *scenario.Output) *tracefile.TraceSet {
	t.Helper()
	dir := t.TempDir()
	for r, buf := range out.Traces {
		if err := os.WriteFile(tracefile.TracePath(dir, r), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ts, err := tracefile.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// flowSummary condenses one reconstructed flow for cross-run comparison.
type flowSummary struct {
	handshake      bool
	firstUS        int64
	lastUS         int64
	observations   int
	retransmission int
	resolved       int
	rttSamples     int
}

func summarizeFlows(ta *transport.Analyzer) map[tcpsim.FlowKey]flowSummary {
	out := make(map[tcpsim.FlowKey]flowSummary)
	for _, f := range ta.Flows() {
		s := flowSummary{
			handshake:    f.HandshakeComplete,
			firstUS:      f.FirstUS,
			lastUS:       f.LastUS,
			observations: len(f.Observations),
		}
		for _, o := range f.Observations {
			if o.Retransmission {
				s.retransmission++
			}
			if o.ResolvedDelivered {
				s.resolved++
			}
		}
		for _, ss := range f.RTTSamplesUS {
			s.rttSamples += len(ss)
		}
		out[f.Key] = s
	}
	return out
}

// requireIdentical asserts two pipeline results agree on everything the
// paper's analyses consume: unification stats, dispersion histogram,
// jframe count, the exact canonical exchange sequence, reconstruction
// stats, transport stats and per-flow summaries.
func requireIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.UnifyStats != b.UnifyStats {
		t.Errorf("%s: unify stats differ:\n  a=%+v\n  b=%+v", label, a.UnifyStats, b.UnifyStats)
	}
	if a.LLCStats != b.LLCStats {
		t.Errorf("%s: llc stats differ:\n  a=%+v\n  b=%+v", label, a.LLCStats, b.LLCStats)
	}
	if a.Dispersion.Total != b.Dispersion.Total || a.Dispersion.Tail != b.Dispersion.Tail {
		t.Errorf("%s: dispersion totals differ: %d/%d vs %d/%d", label,
			a.Dispersion.Total, a.Dispersion.Tail, b.Dispersion.Total, b.Dispersion.Tail)
	}
	for i := range a.Dispersion.Bins {
		if a.Dispersion.Bins[i] != b.Dispersion.Bins[i] {
			t.Errorf("%s: dispersion bin %d differs: %d vs %d", label, i,
				a.Dispersion.Bins[i], b.Dispersion.Bins[i])
			break
		}
	}
	if len(a.JFrames) != len(b.JFrames) {
		t.Errorf("%s: jframe count differs: %d vs %d", label, len(a.JFrames), len(b.JFrames))
	}
	if len(a.Exchanges) != len(b.Exchanges) {
		t.Fatalf("%s: exchange count differs: %d vs %d", label, len(a.Exchanges), len(b.Exchanges))
	}
	for i := range a.Exchanges {
		x, y := a.Exchanges[i], b.Exchanges[i]
		if x.CloseUS != y.CloseUS || x.StartUS != y.StartUS || x.EndUS != y.EndUS ||
			x.Transmitter != y.Transmitter || x.Receiver != y.Receiver ||
			x.Seq != y.Seq || x.Broadcast != y.Broadcast ||
			x.Delivery != y.Delivery || x.Inferred != y.Inferred ||
			len(x.Attempts) != len(y.Attempts) {
			t.Fatalf("%s: exchange %d differs:\n  a=%+v\n  b=%+v", label, i, x, y)
		}
	}
	if a.Transport.Stats != b.Transport.Stats {
		t.Errorf("%s: transport stats differ:\n  a=%+v\n  b=%+v", label,
			a.Transport.Stats, b.Transport.Stats)
	}
	fa, fb := summarizeFlows(a.Transport), summarizeFlows(b.Transport)
	if len(fa) != len(fb) {
		t.Fatalf("%s: flow count differs: %d vs %d", label, len(fa), len(fb))
	}
	for k, sa := range fa {
		sb, ok := fb[k]
		if !ok {
			t.Errorf("%s: flow %v missing from second run", label, k)
			continue
		}
		if sa != sb {
			t.Errorf("%s: flow %v differs: %+v vs %+v", label, k, sa, sb)
		}
	}
}

// TestParallelMatchesSerial is the determinism contract of the sharded
// pipeline: across seeds, shard counts, congestion-control mixes and
// client mobility, Workers=N must produce results identical to the
// Workers=1 serial reference path.
func TestParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		name string
		cfg  func(seed int64) scenario.Config
	}{
		{"fixed", func(seed int64) scenario.Config {
			cfg := scenario.Default()
			cfg.Seed = seed
			cfg.Pods, cfg.APs, cfg.Clients = 5, 5, 8
			return cfg
		}},
		// Reno+CUBIC+BBR contending for a finite bottleneck queue: cwnd
		// dynamics, pacing timers and queue drops must all replay
		// identically under sharding.
		{"mixedCC", func(seed int64) scenario.Config {
			cfg := scenario.MixedCC()
			cfg.Seed = seed
			cfg.Pods, cfg.APs, cfg.Clients = 5, 5, 8
			return cfg
		}},
		// Mobile clients handing off between APs mid-flow: the trace is
		// full of disassoc/reassoc sequences, scan probe bursts and
		// retries against departed stations, all of which must shard
		// identically. More APs so every floor offers a roam target, and
		// a brisk walking speed so handoffs land inside the short day.
		{"roaming", func(seed int64) scenario.Config {
			cfg := scenario.Roaming()
			cfg.Seed = seed
			cfg.Pods, cfg.APs, cfg.Clients = 5, 9, 8
			cfg.MobileClients = 3
			cfg.MoveSpeedMPS = 6
			return cfg
		}},
	}
	for _, tc := range cases {
		seeds := []int64{1, 2, 3}
		if tc.name != "fixed" {
			seeds = []int64{1, 2}
		}
		for _, seed := range seeds {
			tc, seed := tc, seed
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				cfg := tc.cfg(seed)
				cfg.Day = 30 * sim.Second
				out, err := scenario.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if tc.name == "roaming" && len(out.Handoffs) == 0 {
					t.Fatal("roaming scenario produced no handoffs; the case is not exercising handoff-heavy traces")
				}
				bufTS := tracefile.NewBufferSet(TracesFromBuffers(out.Traces))
				dirTS := writeTraceDir(t, out)

				run := func(ts *tracefile.TraceSet, workers int) (*Result, string) {
					ccfg := DefaultConfig()
					ccfg.Workers = workers
					ccfg.KeepExchanges = true
					ccfg.KeepJFrames = true
					d := newJFDigest()
					res, err := RunFrom(ts, out.ClockGroups, ccfg, &Sink{OnJFrame: d.observe})
					if err != nil {
						t.Fatal(err)
					}
					return res, d.sum()
				}

				serial, serialDigest := run(bufTS, 1)
				for _, w := range []int{2, 4} {
					res, digest := run(bufTS, w)
					requireIdentical(t, fmt.Sprintf("workers=%d", w), serial, res)
					if digest != serialDigest {
						t.Errorf("workers=%d: jframe stream digest differs from serial", w)
					}
				}
				// Directory-backed sources: same seeds, file-backed vs
				// buffer-backed must be byte-identical — same jframe
				// stream, same analysis output — at every shard count.
				for _, w := range []int{1, 4} {
					res, digest := run(dirTS, w)
					requireIdentical(t, fmt.Sprintf("dir/workers=%d", w), serial, res)
					if digest != serialDigest {
						t.Errorf("dir/workers=%d: jframe stream digest differs from buffer-backed serial", w)
					}
				}
			})
		}
	}
}

// TestParallelExchangeOrderCanonical asserts the retained exchange slice is
// in canonical close order (the order the transport analyzer consumed).
func TestParallelExchangeOrderCanonical(t *testing.T) {
	out := scenarioOut(t)
	cfg := DefaultConfig()
	cfg.Workers = 3
	cfg.KeepExchanges = true
	res, err := Run(TracesFromBuffers(out.Traces), out.ClockGroups, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exchanges) == 0 {
		t.Fatal("no exchanges")
	}
	for i := 1; i < len(res.Exchanges); i++ {
		if exchangeLess(res.Exchanges[i], res.Exchanges[i-1]) {
			t.Fatalf("exchange %d out of canonical order: %d after %d",
				i, res.Exchanges[i].CloseUS, res.Exchanges[i-1].CloseUS)
		}
	}
}
