package core

import (
	"os"
	"strings"
	"testing"

	"repro/internal/tracefile"
)

// TestRunFromTruncatedTraceFails: a file-backed trace that fails mid-merge
// (truncated past its bootstrap window — a partial copy, disk-full spill)
// must surface as a pipeline error, not a silently shortened analysis.
// The unifier still drops the radio and finishes the pass (a dead monitor
// must not abort a building-wide merge mid-stream); the error lands when
// the pass completes.
func TestRunFromTruncatedTraceFails(t *testing.T) {
	out := scenarioOut(t)
	dir := t.TempDir()
	// Truncate the largest trace: its bootstrap window (first second) ends
	// long before the damaged tail, so the failure must surface from the
	// merge pass, not the pre-scan.
	var victim int32 = -1
	for r, buf := range out.Traces {
		if victim < 0 || buf.Len() > out.Traces[victim].Len() {
			victim = r
		}
	}
	for r, buf := range out.Traces {
		b := buf.Bytes()
		if r == victim {
			b = b[:len(b)-10] // cut mid-block: a decode error, not clean EOF
		}
		if err := os.WriteFile(tracefile.TracePath(dir, r), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ts, err := tracefile.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		_, err := RunFrom(ts, out.ClockGroups, cfg, nil)
		if err == nil {
			t.Fatalf("workers=%d: truncated trace merged without error", workers)
		}
		if !strings.Contains(err.Error(), "radio") {
			t.Errorf("workers=%d: error %q does not name the radio", workers, err)
		}
	}
}
