// Pass-vs-slice parity: the companion to TestParallelMatchesSerial for the
// streaming analysis layer. (It lives in an external test package because
// internal/analysis imports core; TestParallelMatchesSerial itself cannot
// reference the passes without an import cycle.)
//
// For Default(), MixedCC() and Roaming() scenarios, every registered
// analysis pass fed inline by the pipeline must finalize to a report
// identical to the legacy slice-based function over the retained
// jframe/exchange slices — and identical again across shard counts and
// buffer- vs directory-backed trace sources. This is the contract that
// lets jiganalyze drop KeepJFrames/KeepExchanges: inline output is
// byte-for-byte what post-hoc analysis would have produced.
package core_test

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tracefile"
)

// parityTraceDir spills a scenario's in-memory traces to a temp directory
// in the trace-directory layout.
func parityTraceDir(t *testing.T, out *scenario.Output) *tracefile.TraceSet {
	t.Helper()
	dir := t.TempDir()
	for r, buf := range out.Traces {
		if err := os.WriteFile(tracefile.TracePath(dir, r), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ts, err := tracefile.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// vizWindowUS is the parity viz pass's window length; relative offset is
// half the scenario day.
const vizWindowUS = 4_000

// parityPasses constructs one fresh instance of every registered pass
// (plus the viz pass, which "all" excludes) for a run.
func parityPasses(t *testing.T, out *scenario.Output) []analysis.Pass {
	t.Helper()
	apSet := scenario.APSet(out.APs)
	params := analysis.PassParams{
		SlotUS:     out.Cfg.HourDur().US64(),
		MinPackets: 50,
		IsAP:       func(m dot80211.MAC) bool { return apSet[m] },
		Out:        out,
		VizFromUS:  int64(out.Cfg.Day.SecondsF() * 5e5),
		VizDurUS:   vizWindowUS,
		VizWidth:   96,
	}
	passes, err := analysis.NewPasses("all", params)
	if err != nil {
		t.Fatal(err)
	}
	viz, err := analysis.NewPasses("viz", params)
	if err != nil {
		t.Fatal(err)
	}
	return append(passes, viz...)
}

// finalizeAll collects every pass's report by name.
func finalizeAll(passes []analysis.Pass) map[string]analysis.Report {
	out := make(map[string]analysis.Report, len(passes))
	for _, p := range passes {
		out[p.Name()] = p.Finalize()
	}
	return out
}

func TestPassParity(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() scenario.Config
	}{
		{"default", func() scenario.Config {
			cfg := scenario.Default()
			cfg.Pods, cfg.APs, cfg.Clients = 5, 5, 8
			return cfg
		}},
		{"mixedCC", func() scenario.Config {
			cfg := scenario.MixedCC()
			cfg.Pods, cfg.APs, cfg.Clients = 5, 5, 8
			return cfg
		}},
		{"roaming", func() scenario.Config {
			cfg := scenario.Roaming()
			cfg.Pods, cfg.APs, cfg.Clients = 5, 9, 8
			cfg.MobileClients = 3
			cfg.MoveSpeedMPS = 6
			return cfg
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			cfg.Seed = 1
			cfg.Day = 30 * sim.Second
			out, err := scenario.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			bufTS := tracefile.NewBufferSet(core.TracesFromBuffers(out.Traces))
			dirTS := parityTraceDir(t, out)

			run := func(ts *tracefile.TraceSet, workers int, keep bool) (*core.Result, map[string]analysis.Report) {
				ccfg := core.DefaultConfig()
				ccfg.Workers = workers
				ccfg.KeepJFrames = keep
				ccfg.KeepExchanges = keep
				passes := parityPasses(t, out)
				ccfg.Passes = analysis.CorePasses(passes)
				res, err := core.RunFrom(ts, out.ClockGroups, ccfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				return res, finalizeAll(passes)
			}

			// Reference: the serial path with retention, so the same run
			// yields both inline-pass reports and the legacy slice inputs.
			res, ref := run(bufTS, 1, true)

			apSet := scenario.APSet(out.APs)
			isAP := func(m dot80211.MAC) bool { return apSet[m] }
			hourUS := out.Cfg.HourDur().US64()
			vizFrom := res.JFrames[0].UnivUS + int64(out.Cfg.Day.SecondsF()*5e5)
			legacy := map[string]analysis.Report{
				"summary":      analysis.Summarize(res, res.JFrames),
				"coverage":     analysis.Coverage(out, res.Exchanges),
				"timeseries":   analysis.TimeSeries(res.JFrames, hourUS),
				"interference": analysis.Interference(res.JFrames, res.Exchanges, 50, isAP),
				"protection":   analysis.Protection(res.JFrames, hourUS, hourUS),
				"diagnose":     analysis.Diagnose(res.JFrames, res.Exchanges),
				"tcploss":      analysis.TCPLoss(analysis.TransportFlowLosses(res.Transport, 5)),
				"roam":         analysis.DetectHandoffs(res.Exchanges, isAP),
				"viz":          analysis.Visualize(res.JFrames, vizFrom, vizFrom+vizWindowUS, 96),
			}
			for name, want := range legacy {
				got, ok := ref[name]
				if !ok {
					t.Fatalf("pass %q missing from inline run", name)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: inline pass report differs from slice-based analysis:\n inline: %+v\n slices: %+v", name, got, want)
				}
			}

			// Shard counts and trace sources must not change any report.
			variants := []struct {
				label   string
				ts      *tracefile.TraceSet
				workers int
			}{
				{"buf/workers=2", bufTS, 2},
				{"buf/workers=4", bufTS, 4},
				{"dir/workers=1", dirTS, 1},
				{"dir/workers=4", dirTS, 4},
			}
			for _, v := range variants {
				_, got := run(v.ts, v.workers, false)
				for name, want := range ref {
					if !reflect.DeepEqual(got[name], want) {
						t.Errorf("%s: pass %q differs from serial reference:\n got:  %+v\n want: %+v", v.label, name, got[name], want)
					}
				}
			}
		})
	}
}

// TestCoveragePassSharded pins the ShardedPass contract directly: shard
// instances fed disjoint exchange subsequences and absorbed in any
// partition must reproduce the unsharded pass's report.
func TestCoveragePassSharded(t *testing.T) {
	cfg := scenario.Default()
	cfg.Pods, cfg.APs, cfg.Clients = 4, 4, 8
	cfg.Day = 20 * sim.Second
	cfg.Seed = 3
	out, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.DefaultConfig()
	ccfg.Workers = 1
	ccfg.KeepExchanges = true
	res, err := core.Run(core.TracesFromBuffers(out.Traces), out.ClockGroups, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exchanges) == 0 {
		t.Fatal("no exchanges")
	}

	whole := analysis.NewCoveragePass(out)
	for _, ex := range res.Exchanges {
		whole.ObserveExchange(ex)
	}

	sharded := analysis.NewCoveragePass(out)
	shards := make([]core.Pass, 3)
	for i := range shards {
		shards[i] = sharded.NewShard()
	}
	for i, ex := range res.Exchanges {
		shards[i%len(shards)].ObserveExchange(ex)
	}
	for _, s := range shards {
		sharded.AbsorbShard(s)
	}

	if !reflect.DeepEqual(sharded.Finalize(), whole.Finalize()) {
		t.Error("sharded coverage pass report differs from unsharded")
	}
}
