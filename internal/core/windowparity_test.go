// Windowed-vs-one-shot parity: the contract behind jigd's live reports.
// A WindowedPass driven continuously with FinalizeWindow/Evict at window
// boundaries must report, for every window, exactly what a fresh pass fed
// only that window's subsequence reports from one-shot Finalize. The
// driver side of the contract — only events at or before the boundary are
// delivered before the boundary's FinalizeWindow — is what serve.Monitor
// enforces with its delivery buffer; this test mimics that delivery over
// retained slices.
package core_test

import (
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/unify"
)

// windowSlices is the order-preserving filter of one window's subsequence:
// jframes by UnivUS, exchanges by CloseUS, both in (fromUS, toUS].
func windowSlices(jframes []*unify.JFrame, exchanges []*llc.Exchange, fromUS, toUS int64) ([]*unify.JFrame, []*llc.Exchange) {
	var wj []*unify.JFrame
	for _, j := range jframes {
		if j.UnivUS > fromUS && j.UnivUS <= toUS {
			wj = append(wj, j)
		}
	}
	var wx []*llc.Exchange
	for _, ex := range exchanges {
		if ex.CloseUS > fromUS && ex.CloseUS <= toUS {
			wx = append(wx, ex)
		}
	}
	return wj, wx
}

func TestWindowedPassParity(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() scenario.Config
	}{
		{"default", func() scenario.Config {
			cfg := scenario.Default()
			cfg.Pods, cfg.APs, cfg.Clients = 5, 5, 8
			return cfg
		}},
		{"roaming", func() scenario.Config {
			cfg := scenario.Roaming()
			cfg.Pods, cfg.APs, cfg.Clients = 5, 9, 8
			cfg.MobileClients = 3
			cfg.MoveSpeedMPS = 6
			return cfg
		}},
	}
	const windows = 3
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			cfg.Seed = 1
			cfg.Day = 30 * sim.Second
			out, err := scenario.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ccfg := core.DefaultConfig()
			ccfg.Workers = 1
			ccfg.KeepJFrames = true
			ccfg.KeepExchanges = true
			res, err := core.Run(core.TracesFromBuffers(out.Traces), out.ClockGroups, ccfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.JFrames) == 0 || len(res.Exchanges) == 0 {
				t.Fatal("empty streams")
			}

			firstUS := res.JFrames[0].UnivUS
			lastUS := firstUS
			for _, j := range res.JFrames {
				if j.UnivUS > lastUS {
					lastUS = j.UnivUS
				}
			}
			for _, ex := range res.Exchanges {
				if ex.CloseUS > lastUS {
					lastUS = ex.CloseUS
				}
			}
			span := lastUS - firstUS + 1
			step := span / windows

			cont := parityPasses(t, out)
			windowed := make([]analysis.WindowedPass, len(cont))
			for i, p := range cont {
				wp, ok := p.(analysis.WindowedPass)
				if !ok {
					t.Fatalf("pass %q does not implement WindowedPass", p.Name())
				}
				windowed[i] = wp
			}
			contRunner := analysis.Runner{Passes: cont}

			prev := firstUS - 1
			for k := 0; k < windows; k++ {
				end := firstUS + int64(k+1)*step - 1
				if k == windows-1 {
					end = lastUS
				}
				wj, wx := windowSlices(res.JFrames, res.Exchanges, prev, end)
				if len(wj) == 0 {
					t.Fatalf("window %d is empty; widen the scenario", k)
				}

				contRunner.DriveSlices(wj, wx)
				contReps := make(map[string]analysis.Report, len(windowed))
				for _, wp := range windowed {
					contReps[wp.Name()] = wp.FinalizeWindow(end)
					// Boundary eviction must be invisible in every later
					// report: parity of the remaining windows against fresh
					// passes (which never evict) proves it.
					wp.Evict(end)
				}

				fresh := parityPasses(t, out)
				fr := analysis.Runner{Passes: fresh}
				fr.DriveSlices(wj, wx)
				for _, p := range fresh {
					want := p.Finalize()
					if got := contReps[p.Name()]; !reflect.DeepEqual(got, want) {
						t.Errorf("window %d pass %q: windowed report differs from one-shot over the window:\n got:  %+v\n want: %+v",
							k, p.Name(), got, want)
					}
				}
				prev = end
			}
		})
	}
}
