package core

import (
	"os"
	"testing"

	"repro/internal/scenario"
	"repro/internal/tracefile"
)

// TestProfileMerge runs the streaming merge over JIG_PROF_DIR so the merge
// hot path can be profiled with -cpuprofile/-memprofile. Skipped unless the
// env var is set.
func TestProfileMerge(t *testing.T) {
	dir := os.Getenv("JIG_PROF_DIR")
	if dir == "" {
		t.Skip("set JIG_PROF_DIR to a trace directory to profile the merge")
	}
	meta, err := scenario.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tracefile.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 1
	res, err := RunFrom(ts, meta.ClockGroups, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("jframes=%d events=%d", res.UnifyStats.JFrames, res.UnifyStats.Events)
}
