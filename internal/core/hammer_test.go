package core_test

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tracefile"
	"repro/internal/unify"
)

// TestRetainReleaseHammer drives the full pipeline — every registered
// pass plus the frame-retaining viz pass, retention on, and a sink that
// churns extra Retain/Release pairs — across worker counts. Its job is
// to put the reference-counted frame lifecycle under the race detector
// (`go test -race`): frames cross the router→shard and shard→transport
// channels while passes retain and release them concurrently, so any
// unsynchronized refcount or use-after-release shows up here. Without
// -race it still verifies the counted lifecycle reaches the same result
// at every concurrency level.
func TestRetainReleaseHammer(t *testing.T) {
	cfg := scenario.Default()
	cfg.Pods, cfg.APs, cfg.Clients = 4, 4, 6
	cfg.Day = 20 * sim.Second
	cfg.Seed = 11
	out, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := tracefile.NewBufferSet(core.TracesFromBuffers(out.Traces))
	apSet := scenario.APSet(out.APs)
	params := analysis.PassParams{
		SlotUS:     out.Cfg.HourDur().US64(),
		MinPackets: 50,
		IsAP:       func(m dot80211.MAC) bool { return apSet[m] },
		Out:        out,
		VizFromUS:  int64(out.Cfg.Day.SecondsF() * 5e5),
		VizDurUS:   4_000,
		VizWidth:   96,
	}

	type outcome struct {
		unify     unify.Stats
		exchanges int
		jframes   int
	}
	var want outcome
	for _, workers := range []int{1, 2, 4} {
		passes, err := analysis.NewPasses("all", params)
		if err != nil {
			t.Fatal(err)
		}
		viz, err := analysis.NewPasses("viz", params)
		if err != nil {
			t.Fatal(err)
		}
		passes = append(passes, viz...)

		ccfg := core.DefaultConfig()
		ccfg.Workers = workers
		ccfg.KeepJFrames = true
		ccfg.KeepExchanges = true
		ccfg.Passes = analysis.CorePasses(passes)
		// The sink churns an extra retain/release pair per frame, so the
		// atomic refcount sees contention beyond the pipeline's own.
		sink := &core.Sink{OnJFrame: func(j *unify.JFrame) {
			j.Retain()
			j.Release()
		}}
		res, err := core.RunFrom(ts, out.ClockGroups, ccfg, sink)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, p := range passes {
			if p.Finalize() == nil {
				t.Fatalf("workers=%d: pass %s returned no report", workers, p.Name())
			}
		}
		got := outcome{unify: res.UnifyStats, exchanges: len(res.Exchanges), jframes: len(res.JFrames)}
		if workers == 1 {
			want = got
			if want.exchanges == 0 || want.jframes == 0 {
				t.Fatal("hammer scenario produced no traffic")
			}
			continue
		}
		if got != want {
			t.Fatalf("workers=%d: outcome %+v differs from serial %+v", workers, got, want)
		}
		// Retained frames must still be alive and consistent after the
		// run: spot-check that the kept slice is readable end to end.
		var sum int64
		for _, j := range res.JFrames {
			sum += j.UnivUS + int64(len(j.Wire))
		}
		_ = fmt.Sprintf("%d", sum)
	}
}
