// Hierarchical-vs-flat parity: the campus path's determinism contract,
// mirroring TestParallelMatchesSerial one level up. Buildings are radio-
// and conversation-disjoint, so the hierarchical pipeline — per-building
// unify workers serializing sorted intermediate streams, then a global
// k-way merge driving the ordinary pipeline — must reproduce, exactly, the
// reference a test-side merge of per-building flat runs defines: the same
// jframe stream byte for byte (digests), the same canonical exchange
// sequence, and DeepEqual-identical analysis-pass reports, across building
// counts, worker counts, seeds, and buffer- vs directory-backed sources.
//
// (Like the pass-parity suite, this lives in the external test package
// because it drives internal/analysis passes, which import core.)
package core_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/hmerge"
	"repro/internal/llc"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tracefile"
	"repro/internal/transport"
	"repro/internal/unify"
)

// hierDigest hashes a jframe stream exactly like the parallel-parity
// test's digest (external-package copy).
type hierDigest struct{ h hash.Hash }

func newHierDigest() *hierDigest { return &hierDigest{h: sha256.New()} }

func (d *hierDigest) observe(j *unify.JFrame) {
	var b [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		d.h.Write(b[:])
	}
	put(j.UnivUS)
	put(int64(j.Rate))
	put(int64(j.Channel))
	put(int64(j.WireLen))
	put(j.DispersionUS)
	flags := int64(0)
	if j.Valid {
		flags |= 1
	}
	if j.PhyOnly {
		flags |= 2
	}
	put(flags)
	put(int64(len(j.Wire)))
	d.h.Write(j.Wire)
	for _, in := range j.Instances {
		put(int64(in.Radio))
		put(in.LocalUS)
		put(in.UnivUS)
		put(int64(in.RSSIdBm))
	}
}

func (d *hierDigest) sum() string { return fmt.Sprintf("%x", d.h.Sum(nil)) }

// hierExchangeLess is the canonical exchange order (core's exchangeLess,
// replicated for the external package): close stamp, then deterministic
// tiebreaks.
func hierExchangeLess(a, b *llc.Exchange) bool {
	if a.CloseUS != b.CloseUS {
		return a.CloseUS < b.CloseUS
	}
	if a.StartUS != b.StartUS {
		return a.StartUS < b.StartUS
	}
	if a.EndUS != b.EndUS {
		return a.EndUS < b.EndUS
	}
	if c := bytes.Compare(a.Transmitter[:], b.Transmitter[:]); c != 0 {
		return c < 0
	}
	if c := bytes.Compare(a.Receiver[:], b.Receiver[:]); c != 0 {
		return c < 0
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Delivery != b.Delivery {
		return a.Delivery < b.Delivery
	}
	return len(a.Attempts) < len(b.Attempts)
}

// hierMergeJFrames is the reference global merge: head-min by
// (UnivUS, building index) over per-building sorted jframe slices —
// exactly the Merger's ordering contract, reimplemented trivially.
func hierMergeJFrames(lists [][]*unify.JFrame) []*unify.JFrame {
	cursors := make([]int, len(lists))
	var out []*unify.JFrame
	for {
		best := -1
		for i := range lists {
			if cursors[i] >= len(lists[i]) {
				continue
			}
			if best < 0 || lists[i][cursors[i]].UnivUS < lists[best][cursors[best]].UnivUS {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, lists[best][cursors[best]])
		cursors[best]++
	}
}

// hierMergeExchanges merges per-building canonical exchange sequences into
// the global canonical order. Buildings are MAC-disjoint, so heads of
// different lists never compare equal and the merge is unambiguous.
func hierMergeExchanges(lists [][]*llc.Exchange) []*llc.Exchange {
	cursors := make([]int, len(lists))
	var out []*llc.Exchange
	for {
		best := -1
		for i := range lists {
			if cursors[i] >= len(lists[i]) {
				continue
			}
			if best < 0 || hierExchangeLess(lists[i][cursors[i]], lists[best][cursors[best]]) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, lists[best][cursors[best]])
		cursors[best]++
	}
}

// requireExchangesEqual compares two exchange sequences on every field the
// analyses consume (the canonical comparator's fields plus the delivery
// annotations), element by element.
func requireExchangesEqual(t *testing.T, label string, got, want []*llc.Exchange) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: exchange count differs: %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		x, y := got[i], want[i]
		if x.CloseUS != y.CloseUS || x.StartUS != y.StartUS || x.EndUS != y.EndUS ||
			x.Transmitter != y.Transmitter || x.Receiver != y.Receiver ||
			x.Seq != y.Seq || x.Broadcast != y.Broadcast ||
			x.Delivery != y.Delivery || x.Inferred != y.Inferred ||
			len(x.Attempts) != len(y.Attempts) {
			t.Fatalf("%s: exchange %d differs:\n  got  %+v\n  want %+v", label, i, x, y)
		}
	}
}

// hierPasses builds a fresh truth-free instance of every registered pass —
// the report set a campus run drives (no ground-truth Output spans
// buildings).
func hierPasses(t *testing.T, apSet map[dot80211.MAC]bool, hourUS int64) []analysis.Pass {
	t.Helper()
	params := analysis.PassParams{
		SlotUS:     hourUS,
		MinPackets: 50,
		IsAP:       func(m dot80211.MAC) bool { return apSet[m] },
	}
	passes, err := analysis.NewPasses("all", params)
	if err != nil {
		t.Fatal(err)
	}
	return passes
}

// hierBuilding is one generated building plus everything the parity checks
// reference: its flat serial run (retained slices, stream digest) and its
// intermediate stream in both buffer- and file-backed form.
type hierBuilding struct {
	out        *scenario.Output
	flat       *core.Result
	flatDigest string
	stream     []byte // buffer-backed hmerge.Unify output
	meta       *hmerge.Meta
	streamPath string // hmerge.UnifyDir output over the spilled trace dir
}

// hierTemplate is the per-building scenario shape shared by the
// hierarchical parity tests.
func hierTemplate() scenario.Config {
	cfg := scenario.Default()
	cfg.Pods, cfg.APs, cfg.Clients = 3, 3, 6
	cfg.Day = 12 * sim.Second
	return cfg
}

// buildHierBuildings generates n buildings for one campus seed and
// prepares, per building: the flat serial reference run and the
// intermediate stream — produced twice (buffer-backed unify worker and
// directory-backed UnifyDir with a different bootstrap pool size), which
// must serialize byte-identically: the separate-process contract.
func buildHierBuildings(t *testing.T, seed int64, n int) ([]*hierBuilding, map[dot80211.MAC]bool) {
	t.Helper()
	camp := scenario.CampusConfig{Buildings: n, Seed: seed, Building: hierTemplate()}
	blds := make([]*hierBuilding, n)
	apSet := make(map[dot80211.MAC]bool)
	for k := 0; k < n; k++ {
		out, err := scenario.Run(camp.BuildingConfig(k))
		if err != nil {
			t.Fatalf("building %d: %v", k, err)
		}
		for _, ap := range out.APs {
			apSet[ap.MAC] = true
		}
		bufTS := tracefile.NewBufferSet(core.TracesFromBuffers(out.Traces))

		ccfg := core.DefaultConfig()
		ccfg.Workers = 1
		ccfg.KeepJFrames = true
		ccfg.KeepExchanges = true
		d := newHierDigest()
		flat, err := core.RunFrom(bufTS, out.ClockGroups, ccfg, &core.Sink{OnJFrame: d.observe})
		if err != nil {
			t.Fatalf("building %d: flat run: %v", k, err)
		}
		if len(flat.Exchanges) == 0 {
			t.Fatalf("building %d: no exchanges; the scenario is too small", k)
		}

		var sb bytes.Buffer
		meta, err := hmerge.Unify(bufTS, out.ClockGroups, hmerge.UnifyConfig{Workers: 1}, &sb)
		if err != nil {
			t.Fatalf("building %d: unify: %v", k, err)
		}

		dir := t.TempDir()
		for r, buf := range out.Traces {
			if err := os.WriteFile(tracefile.TracePath(dir, r), buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		spath := filepath.Join(t.TempDir(), "stream.jfs")
		dmeta, err := hmerge.UnifyDir(dir, spath, out.ClockGroups, hmerge.UnifyConfig{Workers: 4})
		if err != nil {
			t.Fatalf("building %d: unify dir: %v", k, err)
		}
		db, err := os.ReadFile(spath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(db, sb.Bytes()) {
			t.Fatalf("building %d: directory-backed stream bytes differ from buffer-backed (%d vs %d bytes)",
				k, len(db), len(sb.Bytes()))
		}
		dm := *dmeta
		dm.Building = "" // the only field allowed to differ (dir base name)
		if !reflect.DeepEqual(&dm, meta) {
			t.Fatalf("building %d: sidecars differ across sources:\n  dir %+v\n  buf %+v", k, dmeta, meta)
		}

		blds[k] = &hierBuilding{
			out: out, flat: flat, flatDigest: d.sum(),
			stream: sb.Bytes(), meta: meta, streamPath: spath,
		}
	}
	return blds, apSet
}

// TestHierarchicalMatchesFlat is the campus determinism contract:
// RunHierarchical over {1, 2, 4} buildings × {1, 4} workers × 3 seeds,
// over buffer- and file-backed intermediate streams, must reproduce the
// test-side reference merge of the per-building flat runs — digest,
// exchange sequence, aggregated stats and every pass report.
func TestHierarchicalMatchesFlat(t *testing.T) {
	hourUS := hierTemplate().HourDur().US64()
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const maxB = 4
			blds, apSet := buildHierBuildings(t, seed, maxB)

			runHier := func(streams []*hmerge.Stream, workers int) (*core.Result, string, map[string]analysis.Report) {
				ccfg := core.DefaultConfig()
				ccfg.Workers = workers
				ccfg.KeepExchanges = true
				passes := hierPasses(t, apSet, hourUS)
				ccfg.Passes = analysis.CorePasses(passes)
				d := newHierDigest()
				res, err := core.RunHierarchical(streams, ccfg, &core.Sink{OnJFrame: d.observe})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return res, d.sum(), finalizeAll(passes)
			}

			for _, B := range []int{1, 2, 4} {
				// The flat reference: merge the per-building flat runs in
				// the test, by the Merger's own ordering contract. (A single
				// flat run over the union of traces is NOT an exact
				// reference — its global bootstrap walks a different
				// co-reception spanning tree and lands on offsets a few µs
				// apart. The hierarchical contract is per-building
				// bootstraps, aggregated.)
				jlists := make([][]*unify.JFrame, B)
				xlists := make([][]*llc.Exchange, B)
				var refStats unify.Stats
				var refLLC llc.Stats
				refOffsets := make(map[int32]int64)
				for k := 0; k < B; k++ {
					jlists[k] = blds[k].flat.JFrames
					xlists[k] = blds[k].flat.Exchanges
					refStats.Add(blds[k].meta.Unify)
					refLLC.Add(blds[k].flat.LLCStats)
					for r, off := range blds[k].meta.Bootstrap.OffsetUS {
						refOffsets[r] = off
					}
				}
				mergedJF := hierMergeJFrames(jlists)
				mergedEx := hierMergeExchanges(xlists)
				rd := newHierDigest()
				for _, j := range mergedJF {
					rd.observe(j)
				}
				refDigest := rd.sum()

				// Reference pass reports: drive the merged slices through
				// fresh passes, then hand result-consuming passes (summary,
				// tcploss) a synthesized Result carrying the aggregate stats
				// and a transport analyzer fed the same canonical exchange
				// sequence — exactly what the hierarchical pipeline gives
				// its inline passes.
				refTA := transport.NewAnalyzer()
				for _, ex := range mergedEx {
					refTA.AddExchange(ex)
				}
				fresh := hierPasses(t, apSet, hourUS)
				refRunner := analysis.Runner{Passes: fresh}
				refRunner.DriveSlices(mergedJF, mergedEx)
				refRunner.SetResult(&core.Result{
					UnifyStats: refStats,
					LLCStats:   refLLC,
					Transport:  refTA,
				})
				refReports := finalizeAll(fresh)

				check := func(label string, res *core.Result, digest string, reports map[string]analysis.Report) {
					t.Helper()
					if digest != refDigest {
						t.Errorf("%s: jframe stream digest differs from the flat reference merge", label)
					}
					requireExchangesEqual(t, label, res.Exchanges, mergedEx)
					if res.UnifyStats != refStats {
						t.Errorf("%s: unify stats differ from the per-building aggregate:\n  got  %+v\n  want %+v",
							label, res.UnifyStats, refStats)
					}
					if !reflect.DeepEqual(res.Bootstrap.OffsetUS, refOffsets) {
						t.Errorf("%s: bootstrap offsets differ from the flat run", label)
					}
					if res.LLCStats != refLLC {
						t.Errorf("%s: llc stats differ from the per-building aggregate:\n  got  %+v\n  want %+v",
							label, res.LLCStats, refLLC)
					}
					if res.Transport.Stats != refTA.Stats {
						t.Errorf("%s: transport stats differ from the flat reference:\n  got  %+v\n  want %+v",
							label, res.Transport.Stats, refTA.Stats)
					}
					for name, want := range refReports {
						got, ok := reports[name]
						if !ok {
							t.Errorf("%s: pass %q missing from hierarchical run", label, name)
							continue
						}
						if !reflect.DeepEqual(got, want) {
							t.Errorf("%s: pass %q differs from flat reference:\n  got  %+v\n  want %+v",
								label, name, got, want)
						}
					}
				}

				paths := make([]string, B)
				for _, w := range []int{1, 4} {
					streams := make([]*hmerge.Stream, B)
					for k := 0; k < B; k++ {
						streams[k] = hmerge.NewStream(blds[k].meta, bytes.NewReader(blds[k].stream))
						paths[k] = blds[k].streamPath
					}
					res, digest, reports := runHier(streams, w)
					check(fmt.Sprintf("B=%d buf/workers=%d", B, w), res, digest, reports)

					// File-backed streams through the sidecar/open path.
					fstreams, err := hmerge.OpenStreams(paths)
					if err != nil {
						t.Fatal(err)
					}
					fres, fdigest, freports := runHier(fstreams, w)
					for _, s := range fstreams {
						if err := s.Close(); err != nil {
							t.Fatal(err)
						}
					}
					check(fmt.Sprintf("B=%d file/workers=%d", B, w), fres, fdigest, freports)

					// A single building must also match its flat run exactly
					// (the degenerate hierarchy is the flat pipeline).
					if B == 1 {
						if digest != blds[0].flatDigest {
							t.Errorf("workers=%d: single-building digest differs from the flat run", w)
						}
						if res.LLCStats != blds[0].flat.LLCStats {
							t.Errorf("workers=%d: single-building llc stats differ:\n  got  %+v\n  want %+v",
								w, res.LLCStats, blds[0].flat.LLCStats)
						}
						if res.Transport.Stats != blds[0].flat.Transport.Stats {
							t.Errorf("workers=%d: single-building transport stats differ:\n  got  %+v\n  want %+v",
								w, res.Transport.Stats, blds[0].flat.Transport.Stats)
						}
					}
				}
			}
		})
	}
}

// TestHierarchicalWindowedPassParity mirrors TestWindowedPassParity over
// the global merge: a windowed pass driven continuously over the
// hierarchical pipeline's merged stream, finalized and evicted per window,
// must report exactly what a fresh pass fed only that window's
// subsequence reports — the contract that lets jigd sit on top of the
// campus merge unchanged.
func TestHierarchicalWindowedPassParity(t *testing.T) {
	const buildings = 2
	hourUS := hierTemplate().HourDur().US64()
	blds, apSet := buildHierBuildings(t, 1, buildings)

	streams := make([]*hmerge.Stream, buildings)
	for k, b := range blds {
		streams[k] = hmerge.NewStream(b.meta, bytes.NewReader(b.stream))
	}
	ccfg := core.DefaultConfig()
	ccfg.Workers = 1
	ccfg.KeepJFrames = true
	ccfg.KeepExchanges = true
	res, err := core.RunHierarchical(streams, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JFrames) == 0 || len(res.Exchanges) == 0 {
		t.Fatal("empty streams")
	}

	firstUS := res.JFrames[0].UnivUS
	lastUS := firstUS
	for _, j := range res.JFrames {
		if j.UnivUS > lastUS {
			lastUS = j.UnivUS
		}
	}
	for _, ex := range res.Exchanges {
		if ex.CloseUS > lastUS {
			lastUS = ex.CloseUS
		}
	}
	const windows = 3
	span := lastUS - firstUS + 1
	step := span / windows

	cont := hierPasses(t, apSet, hourUS)
	windowed := make([]analysis.WindowedPass, len(cont))
	for i, p := range cont {
		wp, ok := p.(analysis.WindowedPass)
		if !ok {
			t.Fatalf("pass %q does not implement WindowedPass", p.Name())
		}
		windowed[i] = wp
	}
	contRunner := analysis.Runner{Passes: cont}

	prev := firstUS - 1
	for k := 0; k < windows; k++ {
		end := firstUS + int64(k+1)*step - 1
		if k == windows-1 {
			end = lastUS
		}
		wj, wx := windowSlices(res.JFrames, res.Exchanges, prev, end)
		if len(wj) == 0 {
			t.Fatalf("window %d is empty; widen the scenario", k)
		}

		contRunner.DriveSlices(wj, wx)
		contReps := make(map[string]analysis.Report, len(windowed))
		for _, wp := range windowed {
			contReps[wp.Name()] = wp.FinalizeWindow(end)
			wp.Evict(end)
		}

		fresh := hierPasses(t, apSet, hourUS)
		fr := analysis.Runner{Passes: fresh}
		fr.DriveSlices(wj, wx)
		for _, p := range fresh {
			want := p.Finalize()
			if got := contReps[p.Name()]; !reflect.DeepEqual(got, want) {
				t.Errorf("window %d pass %q: windowed report over the global merge differs from one-shot:\n got:  %+v\n want: %+v",
					k, p.Name(), got, want)
			}
		}
		prev = end
	}
}
