package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/unify"
)

// resultCounter records every SetResult delivery.
type resultCounter struct {
	calls   int
	results []*core.Result
}

func (r *resultCounter) ObserveJFrame(*unify.JFrame)   {}
func (r *resultCounter) ObserveExchange(*llc.Exchange) {}
func (r *resultCounter) SetResult(res *core.Result)    { r.calls++; r.results = append(r.results, res) }

// TestSnapshotEveryUS pins the live-result hook: on the serial path the
// pipeline re-delivers the aggregate result to ResultSink passes as the
// watermark advances, with mid-run stats monotonically below the final
// ones, and still delivers the final SetResult.
func TestSnapshotEveryUS(t *testing.T) {
	cfg := scenario.Default()
	cfg.Pods, cfg.APs, cfg.Clients = 4, 4, 6
	cfg.Day = 20 * sim.Second
	cfg.Seed = 2
	out, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ccfg := core.DefaultConfig()
	ccfg.Workers = 1
	ccfg.SnapshotEveryUS = 2_000_000
	rc := &resultCounter{}
	ccfg.Passes = []core.Pass{rc}
	res, err := core.Run(core.TracesFromBuffers(out.Traces), out.ClockGroups, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// ~20 compressed seconds at 2 s snapshots: several mid-run deliveries
	// plus the final one.
	if rc.calls < 3 {
		t.Fatalf("SetResult calls = %d, want >= 3", rc.calls)
	}
	for i, r := range rc.results {
		if r != res {
			t.Fatalf("snapshot %d delivered a different Result pointer", i)
		}
	}
	if res.UnifyStats.JFrames == 0 {
		t.Fatal("final result has no jframes")
	}

	// The parallel path must reject the serial-only hook loudly.
	pcfg := core.DefaultConfig()
	pcfg.Workers = 4
	pcfg.SnapshotEveryUS = 2_000_000
	_, err = core.Run(core.TracesFromBuffers(out.Traces), out.ClockGroups, pcfg, nil)
	if err == nil || !strings.Contains(err.Error(), "SnapshotEveryUS") {
		t.Fatalf("parallel run with SnapshotEveryUS: err = %v, want serial-only error", err)
	}
}
